// T1 — real-thread throughput: TreeScan vs the O(n²) lattice scan and the
// snapshot baselines.
//
// Headline (the api-redesign acceptance criterion): the two LATTICE objects
// compared over MaxLattice<int64> — TreeScanRT (update: O(log n) register
// accesses with the double-refresh helping bound; scan: one root read)
// against LatticeScanRT (write_l / read_max, each one §6.2 scan = O(n²)
// accesses). Joins are branch-free max() with no allocation, so register
// access complexity — the thing the tree changes — dominates the wall time.
// Expectation at 8 threads, 90% update / 10% scan: ≥ 3× ops/sec.
//
// Context: the snapshot-object interface, where AtomicSnapshotRT's post()
// makes updates O(1) and shifts all cost to scans; plus the double-collect
// (obstruction-free), Afek et al. (helping), and mutex (blocking) baselines.
// Reported separately because update cost asymmetry makes a single headline
// number misleading there.
//
// Every cell becomes a gauge `t1.<impl>.t<threads>.mix<u>_<s>.ops_per_sec`
// in the metrics artifact (--metrics_out, default BENCH_t1.json); the CI
// smoke job runs with --ops_per_thread=500 and uploads the artifact.
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "rt/afek_snapshot_rt.hpp"
#include "rt/double_collect_rt.hpp"
#include "rt/lattice_scan_rt.hpp"
#include "rt/thread_harness.hpp"
#include "snapshot/baselines/mutex_snapshot.hpp"
#include "snapshot/tree_scan.hpp"
#include "util/rng.hpp"

namespace apram::bench {
namespace {

using MaxL = MaxLattice<std::int64_t>;

struct Mix {
  int update_pct;
  int scan_pct;
  std::string tag() const {
    return "mix" + std::to_string(update_pct) + "_" + std::to_string(scan_pct);
  }
};

// Runs `ops_per_thread` ops per thread, each an update with probability
// update_pct (deterministic per-thread Rng), and returns ops/sec.
template <class Update, class Scan>
double run_mix(int threads, std::uint64_t ops_per_thread, const Mix& mix,
               const Update& update, const Scan& scan) {
  rt::ThroughputRun tr(threads);
  std::vector<Rng> rngs;
  for (int p = 0; p < threads; ++p) {
    rngs.emplace_back(0xbe9c0000 + static_cast<std::uint64_t>(p) * 977 +
                      static_cast<std::uint64_t>(mix.update_pct));
  }
  std::vector<std::int64_t> next(static_cast<std::size_t>(threads), 0);
  return tr.run_ops(ops_per_thread, [&](int pid) {
    const auto up = static_cast<std::size_t>(pid);
    if (rngs[up].below(100) < static_cast<std::uint64_t>(mix.update_pct)) {
      update(pid, pid * 1'000'000'000LL + ++next[up]);
    } else {
      scan(pid);
    }
  });
}

std::string gauge_name(const std::string& impl, int threads, const Mix& mix) {
  return "t1." + impl + ".t" + std::to_string(threads) + "." + mix.tag() +
         ".ops_per_sec";
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_t1_throughput", flags);
  // 500 in the CI smoke job; the committed BENCH_t1.json uses the default.
  const auto ops_per_thread = static_cast<std::uint64_t>(
      flags.get_int("ops_per_thread", 6000));
  const int max_threads = static_cast<int>(flags.get_int("max_threads", 8));
  flags.check_unused();

  const std::vector<int> thread_counts = [&] {
    std::vector<int> ts;
    for (int t = 1; t <= max_threads; t *= 2) ts.push_back(t);
    return ts;
  }();
  const Mix mixes[] = {{90, 10}, {50, 50}, {10, 90}};

  // ---- headline: lattice objects, tree vs flat scan ----------------------
  Table head("T1: lattice-object throughput, TreeScanRT vs LatticeScanRT "
             "(MaxLattice<int64>, n = threads)",
             {"threads", "mix(u/s)", "tree_ops_s", "flat_ops_s", "speedup"});
  for (int t : thread_counts) {
    for (const Mix& mix : mixes) {
      snapshot::TreeScanRT<MaxL> tree(t);
      const double tree_ops = run_mix(
          t, ops_per_thread, mix,
          [&](int p, std::int64_t v) { tree.update(p, v); },
          [&](int p) { (void)tree.scan(p); });
      rt::LatticeScanRT<MaxL> flat(t);
      const double flat_ops = run_mix(
          t, ops_per_thread, mix,
          [&](int p, std::int64_t v) { flat.write_l(p, v); },
          [&](int p) { (void)flat.read_max(p); });
      const double speedup = flat_ops > 0.0 ? tree_ops / flat_ops : 0.0;
      bobs.registry()
          .gauge(gauge_name("tree", t, mix))
          .set(static_cast<std::int64_t>(tree_ops));
      bobs.registry()
          .gauge(gauge_name("flat", t, mix))
          .set(static_cast<std::int64_t>(flat_ops));
      bobs.registry()
          .gauge("t1.speedup_x100.t" + std::to_string(t) + "." + mix.tag())
          .set(static_cast<std::int64_t>(speedup * 100.0));
      head.add(t)
          .add(std::to_string(mix.update_pct) + "/" +
               std::to_string(mix.scan_pct))
          .add(tree_ops, 0)
          .add(flat_ops, 0)
          .add(speedup, 2)
          .end_row();
    }
  }
  head.print(std::cout);
  std::cout << "shape: tree updates touch 1 + 4..8·log2(n) registers vs the "
               "flat object's O(n^2) scan per op; the gap widens with "
               "threads and update share.\n\n";

  // ---- context: snapshot objects at the largest thread count -------------
  Table ctx("T1b: snapshot-object throughput (n = " +
                std::to_string(max_threads) +
                " threads; update cost asymmetry applies — see header)",
            {"impl", "mix(u/s)", "ops_s"});
  const int t = max_threads;
  for (const Mix& mix : mixes) {
    const auto row = [&](const std::string& impl, double ops) {
      bobs.registry()
          .gauge(gauge_name(impl, t, mix))
          .set(static_cast<std::int64_t>(ops));
      ctx.add(impl)
          .add(std::to_string(mix.update_pct) + "/" +
               std::to_string(mix.scan_pct))
          .add(ops, 0)
          .end_row();
    };
    const auto snap_mix = [&](auto& s) {
      return run_mix(
          t, ops_per_thread, mix,
          [&](int p, std::int64_t v) { s.update(p, v); },
          [&](int p) { (void)s.scan(p); });
    };
    {
      snapshot::TreeSnapshotRT<std::int64_t> s(t);
      row("tree_snap", snap_mix(s));
    }
    {
      rt::AtomicSnapshotRT<std::int64_t> s(t);
      row("aadgms_snap", snap_mix(s));
    }
    {
      rt::DoubleCollectSnapshotRT<std::int64_t> s(t);
      row("double_collect", snap_mix(s));
    }
    {
      rt::AfekSnapshotRT<std::int64_t> s(t);
      row("afek_snap", snap_mix(s));
    }
    {
      rt::MutexSnapshot<std::int64_t> s(t);
      row("mutex_snap", snap_mix(s));
    }
  }
  ctx.print(std::cout);
  bobs.emit();
  std::cout << "\nT1 done.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
