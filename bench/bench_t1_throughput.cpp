// T1 — real-thread throughput: TreeScan vs the O(n²) lattice scan and the
// snapshot baselines.
//
// Headline (the api-redesign acceptance criterion): the two LATTICE objects
// compared over MaxLattice<int64> — TreeScanRT (update: O(log n) register
// accesses with the double-refresh helping bound; scan: one root read)
// against LatticeScanRT (write_l / read_max, each one §6.2 scan = O(n²)
// accesses). Joins are branch-free max() with no allocation, so register
// access complexity — the thing the tree changes — dominates the wall time.
// Expectation at 8 threads, 90% update / 10% scan: ≥ 3× ops/sec.
//
// Context: the snapshot-object interface, where AtomicSnapshotRT's post()
// makes updates O(1) and shifts all cost to scans; plus the double-collect
// (obstruction-free), Afek et al. (helping), and mutex (blocking) baselines.
// Reported separately because update cost asymmetry makes a single headline
// number misleading there.
//
// Every cell becomes a gauge `t1.<impl>.t<threads>.mix<u>_<s>.ops_per_sec`
// in the metrics artifact (--metrics_out, default BENCH_t1.json), and every
// cell's per-op wall latency lands in histograms `<cell>.update_ns` /
// `<cell>.scan_ns` whose JSON carries p50/p90/p99/p99.9. The CI smoke job
// runs with --ops_per_thread=500 and uploads the artifact.
//
// --trace_out=<path> additionally runs a small traced TreeScanRT workload,
// writes a Perfetto-openable Chrome trace to <path>, and embeds the raw
// events in the metrics artifact so `apram-trace check --bound tree_update`
// can re-derive the update bound from the trace alone.
//
// Cache-line padding audit (see the alignas(64) static_asserts in
// src/rt/reclaim.hpp): the version arena keeps the control word, each
// slot's refcount, each slot's payload, and the per-writer free-list heads
// on separate cache lines, so a reader bumping a refcount never invalidates
// the line a concurrent reader is copying the payload from. Measured on the
// committed-baseline machine at the headline cell (t8, 90/10,
// RelWithDebInfo): padded 1.72M tree ops/s vs 1.38M with the alignas(64)
// audit stripped — the padding is worth ~24% and the static_asserts keep
// it from silently regressing under refactors.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/chrome_trace.hpp"
#include "rt/afek_snapshot_rt.hpp"
#include "rt/double_collect_rt.hpp"
#include "snapshot/lattice_scan.hpp"
#include "rt/thread_harness.hpp"
#include "snapshot/baselines/mutex_snapshot.hpp"
#include "snapshot/tree_snapshot.hpp"
#include "util/rng.hpp"

namespace apram::bench {
namespace {

using MaxL = MaxLattice<std::int64_t>;

struct Mix {
  int update_pct;
  int scan_pct;
  std::string tag() const {
    return "mix" + std::to_string(update_pct) + "_" + std::to_string(scan_pct);
  }
};

// Runs `ops_per_thread` ops per thread, each an update with probability
// update_pct (deterministic per-thread Rng), and returns ops/sec. Each op's
// wall latency is recorded into the cell's update/scan histogram (threads
// pin shard == pid, so recording is a lock-free fetch_add).
template <class Update, class Scan>
double run_mix(int threads, std::uint64_t ops_per_thread, const Mix& mix,
               const Update& update, const Scan& scan,
               obs::Histogram* update_ns, obs::Histogram* scan_ns) {
  rt::ThroughputRun tr(threads);
  std::vector<Rng> rngs;
  for (int p = 0; p < threads; ++p) {
    rngs.emplace_back(0xbe9c0000 + static_cast<std::uint64_t>(p) * 977 +
                      static_cast<std::uint64_t>(mix.update_pct));
  }
  std::vector<std::int64_t> next(static_cast<std::size_t>(threads), 0);
  return tr.run_ops(ops_per_thread, [&](int pid) {
    const auto up = static_cast<std::size_t>(pid);
    const bool is_update =
        rngs[up].below(100) < static_cast<std::uint64_t>(mix.update_pct);
    const auto t0 = std::chrono::steady_clock::now();
    if (is_update) {
      update(pid, pid * 1'000'000'000LL + ++next[up]);
    } else {
      scan(pid);
    }
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    (is_update ? update_ns : scan_ns)->record(ns);
  });
}

std::string cell_name(const std::string& impl, int threads, const Mix& mix) {
  return "t1." + impl + ".t" + std::to_string(threads) + "." + mix.tag();
}

std::string gauge_name(const std::string& impl, int threads, const Mix& mix) {
  return cell_name(impl, threads, mix) + ".ops_per_sec";
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_t1_throughput", flags);
  // 500 in the CI smoke job; the committed BENCH_t1.json uses the default.
  const auto ops_per_thread = static_cast<std::uint64_t>(
      flags.get_int("ops_per_thread", 6000));
  const int max_threads = static_cast<int>(flags.get_int("max_threads", 32));
  const std::string trace_out = flags.get_string("trace_out", "");
  flags.check_unused();

  // Per-cell latency histograms: `<cell>.update_ns` / `<cell>.scan_ns`,
  // exported with p50/p90/p99/p99.9 in the metrics JSON.
  const auto lat = [&](const std::string& impl, int threads, const Mix& mix,
                       const char* which) {
    return &bobs.registry().histogram(cell_name(impl, threads, mix) + "." +
                                      which);
  };

  const std::vector<int> thread_counts = [&] {
    std::vector<int> ts;
    for (int t = 1; t <= max_threads; t *= 2) ts.push_back(t);
    return ts;
  }();
  const Mix mixes[] = {{90, 10}, {50, 50}, {10, 90}};

  // ---- headline: lattice objects, tree vs flat scan ----------------------
  Table head("T1: lattice-object throughput, TreeScanRT vs LatticeScanRT "
             "(MaxLattice<int64>, n = threads)",
             {"threads", "mix(u/s)", "tree_ops_s", "flat_ops_s", "speedup"});
  for (int t : thread_counts) {
    for (const Mix& mix : mixes) {
      snapshot::TreeScanRT<MaxL> tree(t);
      const double tree_ops = run_mix(
          t, ops_per_thread, mix,
          [&](int p, std::int64_t v) { tree.update(p, v); },
          [&](int p) { (void)tree.scan(p); }, lat("tree", t, mix, "update_ns"),
          lat("tree", t, mix, "scan_ns"));
      rt::LatticeScanRT<MaxL> flat(t);
      const double flat_ops = run_mix(
          t, ops_per_thread, mix,
          [&](int p, std::int64_t v) { flat.write_l(p, v); },
          [&](int p) { (void)flat.read_max(p); },
          lat("flat", t, mix, "update_ns"), lat("flat", t, mix, "scan_ns"));
      const double speedup = flat_ops > 0.0 ? tree_ops / flat_ops : 0.0;
      bobs.registry()
          .gauge(gauge_name("tree", t, mix))
          .set(static_cast<std::int64_t>(tree_ops));
      bobs.registry()
          .gauge(gauge_name("flat", t, mix))
          .set(static_cast<std::int64_t>(flat_ops));
      // Reclamation accounting per cell: gauges `rt.<cell>.reclaim.*`
      // (live_versions / retired / recycled / acquire_contention). With the
      // default bounded registers, live_versions at quiescence is one per
      // register — if it ever tracks ops_per_thread instead, reclamation
      // broke and this artifact is the first place it shows.
      tree.export_reclaim_gauges(bobs.registry(), cell_name("tree", t, mix));
      flat.export_reclaim_gauges(bobs.registry(), cell_name("flat", t, mix));
      // Per-level contention profile of this cell's tree: gauges
      // `farray.<cell>.level<k>.{cas_attempts,cas_failures,first_refresh,
      // second_refresh,helped,walks,cas_fail_rate,double_refresh_rate}` —
      // the observatory's map of where the stamped-CAS races actually land.
      tree.export_contention_gauges(bobs.registry(),
                                    "farray." + cell_name("tree", t, mix));
      bobs.registry()
          .gauge("t1.speedup_x100.t" + std::to_string(t) + "." + mix.tag())
          .set(static_cast<std::int64_t>(speedup * 100.0));
      head.add(t)
          .add(std::to_string(mix.update_pct) + "/" +
               std::to_string(mix.scan_pct))
          .add(tree_ops, 0)
          .add(flat_ops, 0)
          .add(speedup, 2)
          .end_row();
    }
  }
  head.print(std::cout);
  std::cout << "shape: tree updates touch 1 + 4..8·log2(n) registers vs the "
               "flat object's O(n^2) scan per op; the gap widens with "
               "threads and update share.\n\n";

  // ---- contention-telemetry overhead budget (asserted in-binary) ---------
  // The observatory's promise is "always on": per-level CAS/refresh counters
  // on the hot path must cost <= 3% of an update. Estimate the cost from
  // first principles in THIS binary on THIS machine — a refresh level walk
  // records exactly ONE relaxed load+store increment on a process-local
  // sharded cell (the walk outcome; attempts/failures are derived at
  // export; NodeContention::on_level_walk explains why it is not a
  // fetch_add), an update walks height levels — and compare against the
  // measured t8/90-10 update p50. Exported as `t1.contention_overhead_ppm`;
  // the build aborts if the budget is blown, so a pessimized counter
  // layout cannot ship quietly.
  if (obs::kContentionEnabled && max_threads >= 8) {
    // Rotate over 4 cells so consecutive increments carry no address
    // dependency, matching the real pattern (a walk's h increments hit h
    // different nodes' cells).
    std::atomic<std::uint64_t> probe[4] = {};
    constexpr int kIters = 1 << 20;
    const auto f0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      std::atomic<std::uint64_t>& slot = probe[i & 3];
      slot.store(slot.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    }
    const double ns_per_add =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - f0)
                .count()) /
        kIters;
    const std::uint64_t landed = probe[0].load() + probe[1].load() +
                                 probe[2].load() + probe[3].load();
    APRAM_CHECK(landed == kIters);  // and the loop cannot be elided
    const int h = snapshot::tree_scan_height(8);
    const double per_update_ns = 1.0 * h * ns_per_add;
    const auto snap = bobs.registry()
                          .histogram(cell_name("tree", 8, {90, 10}) +
                                     ".update_ns")
                          .snapshot();
    const double p50 = snap.percentile(50.0);
    if (snap.count > 0 && p50 > 0.0) {
      const auto ppm =
          static_cast<std::int64_t>(per_update_ns / p50 * 1e6 + 0.5);
      bobs.registry().gauge("t1.contention_overhead_ppm").set(ppm);
      std::cout << "contention telemetry budget: " << per_update_ns
                << " ns/update estimated (" << ns_per_add
                << " ns/increment x 1 x height " << h << ") vs update p50 "
                << p50 << " ns -> " << ppm << " ppm (budget 30000)\n"
                << std::endl;
      APRAM_CHECK_MSG(ppm <= 30000,
                      "contention telemetry exceeds the 3% hot-path budget");
    }
  }

  // ---- context: snapshot objects at the largest thread count -------------
  Table ctx("T1b: snapshot-object throughput (n = " +
                std::to_string(max_threads) +
                " threads; update cost asymmetry applies — see header)",
            {"impl", "mix(u/s)", "ops_s"});
  const int t = max_threads;
  for (const Mix& mix : mixes) {
    const auto row = [&](const std::string& impl, double ops) {
      bobs.registry()
          .gauge(gauge_name(impl, t, mix))
          .set(static_cast<std::int64_t>(ops));
      ctx.add(impl)
          .add(std::to_string(mix.update_pct) + "/" +
               std::to_string(mix.scan_pct))
          .add(ops, 0)
          .end_row();
    };
    const auto snap_mix = [&](const std::string& impl, auto& s) {
      return run_mix(
          t, ops_per_thread, mix,
          [&](int p, std::int64_t v) { s.update(p, v); },
          [&](int p) { (void)s.scan(p); }, lat(impl, t, mix, "update_ns"),
          lat(impl, t, mix, "scan_ns"));
    };
    {
      snapshot::TreeSnapshotRT<std::int64_t> s(t);
      row("tree_snap", snap_mix("tree_snap", s));
    }
    {
      rt::AtomicSnapshotRT<std::int64_t> s(t);
      row("aadgms_snap", snap_mix("aadgms_snap", s));
    }
    {
      rt::DoubleCollectSnapshotRT<std::int64_t> s(t);
      row("double_collect", snap_mix("double_collect", s));
    }
    {
      rt::AfekSnapshotRT<std::int64_t> s(t);
      row("afek_snap", snap_mix("afek_snap", s));
    }
    {
      rt::MutexSnapshot<std::int64_t> s(t);
      row("mutex_snap", snap_mix("mutex_snap", s));
    }
  }
  ctx.print(std::cout);

  // ---- traced run: Perfetto artifact + analyzer input --------------------
  // A TreeScanRT workload with span/access tracing at up to 16 threads. To
  // keep rings honest at this thread count the tracer samples 1-in-4
  // operations (deterministic per pid; subset-exact, so `apram-trace check
  // --bound tree_update` still verifies every SAMPLED op against
  // 1 + 8*ceil(log2 n)), and `apram-trace heatmap` re-derives the per-level
  // double-refresh profile from the surviving events. The Chrome trace goes
  // to --trace_out; the raw events ride in the metrics JSON.
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_out.empty()) {
    const int tn = std::min(max_threads, 16);
    tracer =
        std::make_unique<obs::Tracer>(tn, /*capacity_per_ring=*/1 << 13);
    tracer->set_sampler(obs::SpanSampler{/*seed=*/0x71e5ca11, /*rate=*/4});
    snapshot::TreeScanRT<MaxL> tree(tn);
    tree.attach_obs(bobs.registry(), "t1.traced", tracer.get());
    rt::parallel_run(
        tn,
        [&](int pid) {
          for (int i = 0; i < 256; ++i) {
            tree.update(pid, pid * 1'000'000LL + i);
            (void)tree.scan(pid);
          }
        },
        tracer.get());
    tree.export_contention_gauges(bobs.registry(), "farray.t1.traced");
    obs::write_chrome_trace(trace_out, tracer->events(),
                            obs::TraceTimebase::kNanoseconds,
                            "bench_t1 traced TreeScanRT n=" +
                                std::to_string(tn));
    std::cout << "\ntraced TreeScanRT run (n=" << tn
              << ", 1-in-4 op sampling): " << trace_out
              << " — open in ui.perfetto.dev; raw events embedded in the "
                 "metrics artifact for apram-trace.\n";
  }
  bobs.emit(tracer.get());
  std::cout << "\nT1 done.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
