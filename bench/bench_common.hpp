// Shared helpers for the experiment binaries (bench/bench_e*.cpp).
//
// Every binary runs with no arguments (flags can narrow/widen sweeps),
// prints one or more tables to stdout, and finishes in seconds — together
// they regenerate every quantitative claim in the paper (see DESIGN.md §3
// for the experiment index and EXPERIMENTS.md for recorded results).
#pragma once

#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "agreement/approx_agreement.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace apram::bench {

// Per-binary observability bundle: the registry every measurement flows
// into, and the machine-readable JSON artifact CI asserts on. Construct it
// right after Flags (it claims --metrics_out; pass --metrics_out= to
// disable the artifact) and call emit() once at the end of run(). The
// default path routes through obs::artifact_path ($APRAM_ARTIFACT_DIR,
// else the binary's directory) so a source-dir invocation never litters
// the tree; an explicit --metrics_out is taken verbatim.
class BenchObs {
 public:
  BenchObs(const std::string& bench_name, Flags& flags)
      : name_(bench_name),
        path_(flags.get_string(
            "metrics_out",
            obs::artifact_path(bench_name + ".metrics.json"))) {}

  obs::Registry& registry() { return registry_; }

  void emit(const obs::Tracer* tracer = nullptr) {
    if (path_.empty()) return;
    obs::write_metrics_json(path_, registry_, tracer, name_);
    std::cout << "metrics artifact: " << path_ << "\n";
  }

 private:
  std::string name_;
  std::string path_;
  obs::Registry registry_;
};

// One approximate-agreement execution in the concurrent-participation
// regime (inputs installed first; see DESIGN.md §6), with the output phase
// interleaved by `sched`.
struct AgreementOutcome {
  std::vector<double> outputs;
  std::int64_t max_round = 0;
  std::uint64_t max_steps_per_proc = 0;  // output-phase steps only
  bool valid = false;                    // range(Y) ⊆ range(X), |Y| < ε
};

inline AgreementOutcome run_agreement_regime(const std::vector<double>& inputs,
                                             double eps,
                                             sim::Scheduler& sched) {
  const int n = static_cast<int>(inputs.size());
  sim::World w(n);
  ApproxAgreementSim aa(w, n, eps);

  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&aa, &inputs, pid](sim::Context ctx) -> sim::ProcessTask {
      co_await aa.input(ctx, inputs[static_cast<std::size_t>(pid)]);
    });
  }
  sim::RoundRobinScheduler rr;
  APRAM_CHECK(w.run(rr).all_done);

  std::vector<std::uint64_t> phase1_steps(static_cast<std::size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    phase1_steps[static_cast<std::size_t>(pid)] = w.counts(pid).total();
  }

  AgreementOutcome out;
  out.outputs.resize(inputs.size());
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&aa, &out, pid](sim::Context ctx) -> sim::ProcessTask {
      out.outputs[static_cast<std::size_t>(pid)] = co_await aa.output(ctx);
    });
  }
  APRAM_CHECK(w.run(sched, 50'000'000).all_done);

  for (int pid = 0; pid < n; ++pid) {
    out.max_round = std::max(out.max_round, aa.peek_entry(pid).round);
    out.max_steps_per_proc = std::max(
        out.max_steps_per_proc,
        w.counts(pid).total() - phase1_steps[static_cast<std::size_t>(pid)]);
  }
  const RealRange in = range_of(inputs);
  const RealRange y = range_of(out.outputs);
  out.valid = in.contains(y) && y.size() < eps;
  return out;
}

}  // namespace apram::bench
