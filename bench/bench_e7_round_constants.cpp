// E7 — round-complexity constants (the §4 closing remark / Hoest–Shavit).
//
// The paper notes a curious gap: its upper bound halves the range per round
// (log2(Δ/ε) rounds) while the two-process adversary only sustains a
// one-third shrink (log3(Δ/ε) rounds), and cites Hoest & Shavit for the
// resolution: log3 is tight for two processes, log2 for three or more.
//
// Reproduction with the tools of this repo:
//   (a) the measured adversary-iteration count against the two-process
//       midpoint object divided by log3(Δ/ε) — the constant should hover
//       near 1 (the adversary achieves the base-3 shrink, no better);
//   (b) the per-iteration gap-shrink factor the adversary sustains — lower
//       bounded by 1/3 per Lemma 6's three-way argument;
//   (c) Figure 2's measured rounds in the installed-input regime for
//       n = 2 vs n ≥ 3 (constant — the installed regime removes the
//       information asymmetry that makes rounds expensive; see DESIGN.md §6).
#include "agreement/adversary.hpp"
#include "bench_common.hpp"

namespace apram::bench {
namespace {

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_e7_round_constants", flags);
  flags.check_unused();

  Table ratio("E7a: adversary iterations vs log3(delta/eps), 2 processes",
              {"k", "eps=3^-k", "iterations", "iters/log3(ratio)"});
  for (int k = 2; k <= 8; ++k) {
    const double eps = std::pow(3.0, -k);
    const auto res = run_lower_bound_adversary(
        midpoint_agreement_factory(eps, 0.0, 1.0), eps);
    bobs.registry()
        .gauge("e7a.k" + std::to_string(k) + ".iterations")
        .set(res.iterations);
    ratio.add(k)
        .add(eps, 6)
        .add(res.iterations)
        .add(static_cast<double>(res.iterations) / k, 3)
        .end_row();
  }
  ratio.print(std::cout);

  Table shrink("E7b: sustained per-iteration gap shrink (geometric mean)",
               {"k", "final_gap", "mean_shrink/iter", "lemma6_floor"});
  for (int k : {4, 6, 8}) {
    const double eps = std::pow(3.0, -k);
    const auto res = run_lower_bound_adversary(
        midpoint_agreement_factory(eps, 0.0, 1.0), eps);
    // gap went 1.0 -> final_gap over `iterations` iterations.
    const double mean_shrink =
        std::pow(std::max(res.final_gap, eps / 3.0),
                 1.0 / std::max(1, res.iterations));
    shrink.add(k)
        .add(res.final_gap, 6)
        .add(mean_shrink, 4)
        .add(1.0 / 3.0, 4)
        .end_row();
    APRAM_CHECK_MSG(mean_shrink >= 1.0 / 3.0 - 1e-9,
                    "adversary lost more than 3x per iteration");
  }
  shrink.print(std::cout);

  Table rounds("E7c: Figure 2 rounds, installed-input regime (worst of 20 "
               "random schedules)",
               {"n", "delta/eps", "max_round"});
  for (int n : {2, 3, 8}) {
    for (int log_ratio : {4, 10}) {
      const double eps = 1.0 / std::pow(2.0, log_ratio);
      std::vector<double> inputs;
      for (int i = 0; i < n; ++i) {
        inputs.push_back(static_cast<double>(i) / std::max(1, n - 1));
      }
      std::int64_t worst = 0;
      for (std::uint64_t seed = 0; seed < 20; ++seed) {
        sim::RandomScheduler rs(seed, seed % 2 ? 0.8 : 0.0);
        worst = std::max(worst,
                         run_agreement_regime(inputs, eps, rs).max_round);
      }
      rounds.add(n)
          .add(std::int64_t{1} << log_ratio)
          .add(worst)
          .end_row();
    }
  }
  rounds.print(std::cout);
  bobs.emit();
  std::cout << "\nE7 done. shape: two-process adversary sustains the base-3 "
               "shrink (constant ~1x log3); installed-input Figure 2 "
               "converges in O(1) rounds for every n.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
