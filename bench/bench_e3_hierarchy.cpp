// E3 — Theorems 7 & 8: the wait-free hierarchy.
//
// Theorem 7: for every k there is an object (approximate agreement with
// ε = 3^-k on the unit interval) that is K-bounded wait-free for some
// K = O(nk) but not k-bounded wait-free.
// Theorem 8: with an unbounded input range there is a wait-free object with
// no bounded wait-free implementation at all.
//
// Reproduction: for each k, pair the measured adversarial lower bound
// (forced steps, midpoint object) with the measured upper bound K (worst
// per-process steps of Figure 2 across schedules, installed-input regime).
// Shape: forced steps grow with k while K stays within the Theorem 5
// envelope — and for Theorem 8, fixing ε and growing Δ drives the forced
// steps past any candidate bound.
#include "agreement/adversary.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"

namespace apram::bench {
namespace {

std::uint64_t measured_upper(double eps, int n, int seeds) {
  std::vector<double> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(static_cast<double>(i) / std::max(1, n - 1));
  }
  std::uint64_t worst = 0;
  {
    sim::RoundRobinScheduler rr;
    worst = run_agreement_regime(inputs, eps, rr).max_steps_per_proc;
  }
  for (int seed = 0; seed < seeds; ++seed) {
    sim::RandomScheduler rs(static_cast<std::uint64_t>(seed),
                            seed % 2 ? 0.8 : 0.0);
    worst = std::max(worst,
                     run_agreement_regime(inputs, eps, rs).max_steps_per_proc);
  }
  return worst;
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_e3_hierarchy", flags);
  const auto seeds = static_cast<int>(flags.get_int("seeds", 10));
  flags.check_unused();

  Table t7("E3a: Theorem 7 — not k-bounded, but K-bounded (n=2, delta=1)",
           {"k", "eps=3^-k", "forced_steps(lower)", "K_measured(upper)",
            "theorem5_K_bound"});
  std::uint64_t prev_forced = 0;
  for (int k = 1; k <= 7; ++k) {
    const double eps = std::pow(3.0, -k);
    const auto res = run_lower_bound_adversary(
        midpoint_agreement_factory(eps, 0.0, 1.0), eps);
    const auto forced =
        std::max(res.steps_while_gap_wide[0], res.steps_while_gap_wide[1]);
    const auto upper = measured_upper(eps, 2, seeds);
    const double bound =
        5.0 * (std::log2(1.0 / eps) + 3.0) + 16.0;  // (2n+1)log2 + O(n), n=2
    APRAM_CHECK_MSG(forced >= prev_forced, "forced steps must be monotone");
    prev_forced = forced;
    bobs.registry()
        .gauge("e3a.k" + std::to_string(k) + ".forced_steps")
        .set(static_cast<std::int64_t>(forced));
    t7.add(k)
        .add(eps, 6)
        .add(forced)
        .add(upper)
        .add(bound, 0)
        .end_row();
  }
  t7.print(std::cout);

  Table t8("E3b: Theorem 8 — unbounded input range defeats any fixed bound "
           "(eps=1/3, n=2)",
           {"delta", "forced_steps", "note"});
  prev_forced = 0;
  for (double delta : {1.0, 9.0, 81.0, 729.0, 6561.0}) {
    const double eps = 1.0 / 3.0;
    const auto res = run_lower_bound_adversary(
        midpoint_agreement_factory(eps, 0.0, delta), eps);
    const auto forced =
        std::max(res.steps_while_gap_wide[0], res.steps_while_gap_wide[1]);
    APRAM_CHECK_MSG(forced >= prev_forced, "forced steps must be monotone");
    prev_forced = forced;
    t8.add(delta, 0)
        .add(forced)
        .add("grows with log3(delta/eps): no K works for all inputs")
        .end_row();
  }
  t8.print(std::cout);
  bobs.emit();
  std::cout << "\nE3 PASS: forced steps grow without bound; measured K stays "
               "within the Theorem 5 envelope.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
