// E2 — Lemma 6 lower bound: an adversary forces ⌊log3(Δ/ε)⌋ steps.
//
// Claim: for any correct deterministic two-process implementation, the
// preference-game adversary keeps the gap ≥ Δ/3^k for k iterations, so some
// process executes ≥ ⌊log3(Δ/ε)⌋ steps before both may terminate.
//
// Reproduction: play the replay-based adversary (agreement/adversary.*)
// against the late-input-correct midpoint-convergence object. Shape to
// verify: measured iterations ≥ k for ε = 3^-k and forced steps grow
// linearly in k. A final row plays the game against literal Figure 2, where
// it collapses via the late-input boundary (DESIGN.md §6) — the reproduction
// finding that the lower bound presupposes correctness.
#include "agreement/adversary.hpp"
#include "bench_common.hpp"

namespace apram::bench {
namespace {

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_e2_agreement_lower", flags);
  const auto max_k = static_cast<int>(flags.get_int("max_k", 8));
  flags.check_unused();

  Table table("E2: Lemma 6 adversary vs midpoint-convergence object (delta=1)",
              {"k", "eps", "expect_iters>=", "iters", "steps_P", "steps_Q",
               "final_gap", "outputs_valid"});

  for (int k = 1; k <= max_k; ++k) {
    const double eps = std::pow(3.0, -k);
    const auto res = run_lower_bound_adversary(
        midpoint_agreement_factory(eps, 0.0, 1.0), eps);
    const RealRange in = range_of(std::vector<double>{0.0, 1.0});
    RealRange y;
    y.extend(res.outputs[0]);
    y.extend(res.outputs[1]);
    const bool valid = in.contains(y) && y.size() < eps;
    APRAM_CHECK_MSG(res.iterations >= k, "Lemma 6 bound not exhibited");
    bobs.registry()
        .gauge("e2.k" + std::to_string(k) + ".iterations")
        .set(res.iterations);
    table.add(k)
        .add(eps, 6)
        .add(k)
        .add(res.iterations)
        .add(res.steps_while_gap_wide[0])
        .add(res.steps_while_gap_wide[1])
        .add(res.final_gap, 6)
        .add(valid ? "yes" : "NO")
        .end_row();
  }
  table.print(std::cout);

  Table fig2("E2b: the same game vs literal Figure 2 (late-input boundary)",
             {"k", "eps", "iters", "output_gap", "note"});
  for (int k : {3, 5, 7}) {
    const double eps = std::pow(3.0, -k);
    const auto res = run_lower_bound_adversary(
        figure2_agreement_factory(eps, 0.0, 1.0), eps);
    fig2.add(k)
        .add(eps, 6)
        .add(res.iterations)
        .add(std::fabs(res.outputs[0] - res.outputs[1]), 4)
        .add("game collapses: decision precedes rival input")
        .end_row();
  }
  fig2.print(std::cout);
  bobs.emit();
  std::cout << "\nE2 PASS: adversary forced >= log3(delta/eps) iterations "
               "against the correct object.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
