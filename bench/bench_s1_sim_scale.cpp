// S1 — simulator scale: scheduler picks/s flatness and scenario throughput
// for huge Worlds.
//
// Headline (the sim-scale acceptance criterion): RoundRobin scheduler picks
// per second measured pick-only (no process stepped, so the number isolates
// the scheduler hot path: one RunnableSet successor query per pick) across
// n = 10³ … 10⁵ processes, and 10⁶ with --max_n=1000000. With the
// incrementally maintained runnable set the pick is O(1) in n, so the curve
// must be FLAT: the binary aborts if the slowest cell falls more than
// --flat_tolerance_x100 percent (default 10) below the fastest. Before the
// SoA refactor every pick was an O(n) scan and the same sweep collapsed by
// ~1000× from n=10³ to 10⁶.
//
// Context: end-to-end scenario throughput (grants/s) at the same sizes —
// Zipf-skewed writers with bursty open-loop arrivals and rolling
// crash/recovery churn (see src/sim/scenario.hpp). This includes frame
// materialization, register writes, and churn bookkeeping, so it is NOT
// expected to be flat, only to stay in the millions of grants/s.
//
// At --max_n=1000000 the binary additionally runs the acceptance scenario:
// a 10⁶-process World driving a 10⁷-grant Zipf workload to completion
// (--accept_steps grants), asserting all processes finish and every grant
// performed exactly one access.
//
// Every cell becomes a gauge `s1.rr_picks_per_sec.n<N>` /
// `s1.random_picks_per_sec.n<N>` / `s1.scenario_grants_per_sec.n<N>` in the
// metrics artifact. CI runs the sweep at n=10⁵ and gates
// s1.rr_picks_per_sec.n100000 normalized by s1.rr_picks_per_sec.n1000
// against the committed bench/results/BENCH_s1.json — the ratio IS the
// flatness claim, so machine speed cancels.
//
// --trace_out=<path> additionally runs a small traced scenario (n=256),
// writes a Perfetto-openable Chrome trace, and embeds the raw events in the
// metrics artifact so `apram-trace check --bound scenario_op=1` re-derives
// the one-access-per-op invariant from the trace alone.
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/chrome_trace.hpp"
#include "sim/scenario.hpp"

namespace apram::bench {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// A World with n lazily-spawned (pending, runnable, frameless) processes:
// the cheapest possible population for pick-only measurement.
std::unique_ptr<sim::World> pending_world(int n) {
  sim::World::Options opts;
  opts.lazy_spawn = true;
  opts.per_pid_metrics = false;
  auto w = std::make_unique<sim::World>(n, opts);
  for (int pid = 0; pid < n; ++pid) {
    w->spawn(pid, [](sim::Context) -> sim::ProcessTask { co_return; });
  }
  return w;
}

// Best-of-3 picks/s for `sched` driving pick() `picks` times with no steps
// taken in between (the World's runnable set never changes).
template <class MakeSched>
double pick_only_rate(sim::World& w, std::uint64_t picks,
                      const MakeSched& make_sched) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    auto sched = make_sched();
    const auto t0 = std::chrono::steady_clock::now();
    std::int64_t sink = 0;
    for (std::uint64_t i = 0; i < picks; ++i) sink += sched.pick(w);
    const double s = seconds_since(t0);
    APRAM_CHECK(sink >= 0);  // keep the loop observable
    if (s > 0.0) best = std::max(best, static_cast<double>(picks) / s);
  }
  return best;
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_s1_sim_scale", flags);
  // CI smoke runs with the defaults (top cell n=10⁵); pass
  // --max_n=1000000 for the full acceptance sweep.
  const int max_n = static_cast<int>(flags.get_int("max_n", 100'000));
  const auto picks =
      static_cast<std::uint64_t>(flags.get_int("picks", 2'000'000));
  const int sweep_ops = static_cast<int>(flags.get_int("sweep_ops", 8));
  const auto accept_steps =
      static_cast<std::uint64_t>(flags.get_int("accept_steps", 10'000'000));
  const int flat_tol =
      static_cast<int>(flags.get_int("flat_tolerance_x100", 10));
  const std::string trace_out = flags.get_string("trace_out", "");
  flags.check_unused();

  std::vector<int> sizes;
  for (int n = 1'000; n <= max_n; n *= 10) sizes.push_back(n);

  // ---- headline: pick-only scheduler rates -------------------------------
  Table head("S1: scheduler picks/s, pick-only (flat = O(1) pick)",
             {"n", "rr_picks_s", "random_picks_s"});
  double rr_min = 0.0, rr_max = 0.0;
  for (int n : sizes) {
    auto w = pending_world(n);
    const double rr = pick_only_rate(
        *w, picks, [] { return sim::RoundRobinScheduler(); });
    const double rnd = pick_only_rate(
        *w, picks, [] { return sim::RandomScheduler(0x51, 0.0); });
    bobs.registry()
        .gauge("s1.rr_picks_per_sec.n" + std::to_string(n))
        .set(static_cast<std::int64_t>(rr));
    bobs.registry()
        .gauge("s1.random_picks_per_sec.n" + std::to_string(n))
        .set(static_cast<std::int64_t>(rnd));
    rr_min = rr_min == 0.0 ? rr : std::min(rr_min, rr);
    rr_max = std::max(rr_max, rr);
    head.add(n).add(rr, 0).add(rnd, 0).end_row();
  }
  head.print(std::cout);
  const double flat_pct =
      rr_max > 0.0 ? 100.0 * (1.0 - rr_min / rr_max) : 0.0;
  std::cout << "rr flatness: slowest cell is " << flat_pct
            << "% below the fastest (tolerance " << flat_tol << "%).\n\n";
  APRAM_CHECK_MSG(rr_min >= rr_max * (1.0 - flat_tol / 100.0),
                  "RoundRobin picks/s is not flat in n: the O(1) scheduler "
                  "hot path regressed to size-dependent cost");

  // ---- context: end-to-end scenario throughput ---------------------------
  Table ctx("S1b: scenario grants/s (Zipf writers, bursts, churn — "
            "includes frame materialization; not expected flat)",
            {"n", "grants", "grants_s", "crashes"});
  for (int n : sizes) {
    sim::ScenarioOptions opts;
    opts.num_procs = n;
    opts.num_registers = 256;
    opts.ops_per_process = sweep_ops;
    opts.total_steps =
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(sweep_ops);
    opts.zipf_s = 1.0;
    opts.burst_every = std::max<std::uint64_t>(1, opts.total_steps / 64);
    opts.burst_size = std::max(1, n / 32);
    opts.churn_every = std::max<std::uint64_t>(1, opts.total_steps / 16);
    opts.churn_crashes = std::max(1, n / 1000);
    sim::World w(n, sim::scenario_world_options(opts));
    sim::RoundRobinScheduler rr;
    const auto t0 = std::chrono::steady_clock::now();
    const sim::ScenarioResult r = sim::run_scenario(w, rr, opts);
    const double s = seconds_since(t0);
    const double rate = s > 0.0 ? static_cast<double>(r.grants) / s : 0.0;
    bobs.registry()
        .gauge("s1.scenario_grants_per_sec.n" + std::to_string(n))
        .set(static_cast<std::int64_t>(rate));
    ctx.add(n).add(r.grants).add(rate, 0).add(r.crashes).end_row();
  }
  ctx.print(std::cout);

  // ---- acceptance: 10⁶ processes, 10⁷ grants, to completion --------------
  if (max_n >= 1'000'000) {
    const int n = 1'000'000;
    sim::ScenarioOptions opts;
    opts.num_procs = n;
    opts.num_registers = 1024;
    opts.ops_per_process =
        static_cast<int>(accept_steps / static_cast<std::uint64_t>(n));
    opts.total_steps = accept_steps;
    opts.zipf_s = 1.0;
    sim::World w(n, sim::scenario_world_options(opts));
    sim::RoundRobinScheduler rr;
    const auto t0 = std::chrono::steady_clock::now();
    const sim::ScenarioResult r = sim::run_scenario(w, rr, opts);
    const double s = seconds_since(t0);
    APRAM_CHECK_MSG(r.all_done, "acceptance scenario did not complete");
    APRAM_CHECK_MSG(r.accesses.total() == r.grants,
                    "a grant performed other than one access");
    bobs.registry()
        .gauge("s1.accept.grants_per_sec.n1000000")
        .set(static_cast<std::int64_t>(static_cast<double>(r.grants) / s));
    std::cout << "\nacceptance: n=10^6 world ran " << r.grants
              << " grants to completion in " << s << "s ("
              << static_cast<double>(r.grants) / s / 1e6 << "M grants/s).\n";
  }

  // ---- traced run: Perfetto artifact + analyzer input --------------------
  // A small traced scenario whose raw events ride in the metrics JSON, so
  // `apram-trace check BENCH_s1.json --bound scenario_op=1` re-derives the
  // one-access-per-op invariant from the trace alone.
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_out.empty()) {
    const int tn = 256;
    tracer = std::make_unique<obs::Tracer>(tn, /*capacity_per_ring=*/1 << 12);
    sim::ScenarioOptions opts;
    opts.num_procs = tn;
    opts.num_registers = 32;
    opts.ops_per_process = 8;
    opts.total_steps = static_cast<std::uint64_t>(tn) * 8u;
    sim::World::Options wopts = sim::scenario_world_options(opts);
    wopts.tracer = tracer.get();
    sim::World w(tn, wopts);
    sim::RoundRobinScheduler rr;
    const sim::ScenarioResult r = sim::run_scenario(w, rr, opts);
    APRAM_CHECK(r.all_done);
    obs::write_chrome_trace(trace_out, tracer->events(),
                            obs::TraceTimebase::kSimSteps,
                            "bench_s1 traced scenario n=" +
                                std::to_string(tn));
    std::cout << "\ntraced scenario run (n=" << tn << "): " << trace_out
              << " — open in ui.perfetto.dev; raw events embedded in the "
                 "metrics artifact for apram-trace.\n";
  }
  bobs.emit(tracer.get());
  std::cout << "\nS1 done.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
