// E9 (extension) — randomized consensus cost.
//
// §2's universality claim for randomized wait-free objects, quantified: how
// many commit-adopt rounds and shared-memory steps does the commit-adopt +
// conciliator consensus need in practice, as a function of the number of
// processes and of scheduler burstiness?
//
// Expected shape: expected rounds is O(1)-ish for identical inputs (commit
// in round 1 always), small and n-sensitive for split inputs; per-process
// steps per round are Θ(n) (two collects in commit-adopt + one in the
// conciliator). Safety (agreement + validity) is asserted on every run.
#include "bench_common.hpp"
#include "objects/randomized_consensus.hpp"
#include "util/rng.hpp"

namespace apram::bench {
namespace {

struct ConsensusStats {
  RunningStats steps_per_proc;
  RunningStats total_steps;
  int runs = 0;
  int timeouts = 0;
};

ConsensusStats measure(int n, bool split_inputs, double stickiness,
                       int trials) {
  ConsensusStats st;
  for (int trial = 0; trial < trials; ++trial) {
    sim::World w(n);
    RandomizedConsensusSim cons(w, n);
    std::vector<std::int64_t> decided(static_cast<std::size_t>(n), -1);
    for (int pid = 0; pid < n; ++pid) {
      const std::int64_t input = split_inputs ? pid % 2 : 1;
      w.spawn(pid, [&cons, &decided, pid, input,
                    trial](sim::Context ctx) -> sim::ProcessTask {
        decided[static_cast<std::size_t>(pid)] = co_await cons.propose(
            ctx, input,
            static_cast<std::uint64_t>(trial) * 131 +
                static_cast<std::uint64_t>(pid));
      });
    }
    sim::RandomScheduler sched(static_cast<std::uint64_t>(trial) * 31 + 7,
                               stickiness);
    if (!w.run(sched, 5'000'000).all_done) {
      ++st.timeouts;
      continue;
    }
    ++st.runs;
    // Safety, asserted on every completed run.
    for (int pid = 1; pid < n; ++pid) {
      APRAM_CHECK_MSG(decided[static_cast<std::size_t>(pid)] == decided[0],
                      "consensus agreement violated");
    }
    APRAM_CHECK_MSG(decided[0] == 0 || decided[0] == 1,
                    "consensus validity violated");
    std::uint64_t max_steps = 0;
    for (int pid = 0; pid < n; ++pid) {
      max_steps = std::max(max_steps, w.counts(pid).total());
    }
    st.steps_per_proc.add(static_cast<double>(max_steps));
    st.total_steps.add(static_cast<double>(w.total_counts().total()));
  }
  return st;
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_e9_consensus", flags);
  const auto trials = static_cast<int>(flags.get_int("trials", 30));
  flags.check_unused();

  Table table("E9: randomized consensus (commit-adopt + conciliator) cost, "
              "mean over trials",
              {"n", "inputs", "sched", "max_steps/proc", "total_steps",
               "agreed_runs"});
  for (int n : {2, 3, 5}) {
    for (bool split : {false, true}) {
      for (double sticky : {0.0, 0.8}) {
        const auto st = measure(n, split, sticky, trials);
        bobs.registry()
            .gauge("e9.n" + std::to_string(n) + (split ? ".split" : ".same") +
                   (sticky > 0 ? ".bursty" : ".uniform") + ".steps_per_proc")
            .set(static_cast<std::int64_t>(st.steps_per_proc.mean()));
        table.add(n)
            .add(split ? "split 0/1" : "identical")
            .add(sticky > 0 ? "bursty" : "uniform")
            .add(st.steps_per_proc.mean(), 1)
            .add(st.total_steps.mean(), 1)
            .add(std::to_string(st.runs) + "/" + std::to_string(trials))
            .end_row();
      }
    }
  }
  table.print(std::cout);
  bobs.emit();
  std::cout << "\nE9 done. shape: identical inputs commit in the first round "
               "(pure commit-adopt cost, Theta(n) steps/proc); split inputs "
               "add a geometrically-distributed number of coin rounds. "
               "Agreement and validity held in every completed run.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
