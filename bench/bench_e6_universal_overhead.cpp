// E6 — §5.4: the universal construction costs O(n²) reads+writes per
// operation.
//
// Claim: every operation of a commute/overwrite object built by Figure 4
// performs one atomic scan (n²−1 reads, n+1 writes) plus one anchor write —
// a worst-case synchronization overhead of O(n²), independent of schedule
// and of which operation runs.
//
// Reproduction: measure per-operation shared-memory deltas of the universal
// counter across n; fit the growth exponent of reads against n (expect 2.0);
// verify the cost is identical for inc, dec, reset, and read, and identical
// under contention.
//
// E6c/E6d extend the experiment with the normalized fast-path/slow-path
// simulator (apram::universal2): the same counter semantics at 1 read +
// 1 CAS per uncontended op instead of a full scan. E6c shows the per-op
// access gap on the sim backend; E6d measures real-thread throughput of
// both constructions at n=8 uncontended and asserts universal2 is at least
// 5x faster — the headline CI gates via tools/check_bench_regression.py.
// E6e records a traced contended run so `apram-trace check --bound
// u2_help=n-1` can certify the help bound offline from this artifact.
#include <chrono>
#include <memory>

#include "api/sim_backend.hpp"
#include "bench_common.hpp"
#include "obs/analyze.hpp"
#include "objects/counter.hpp"
#include "rt/thread_harness.hpp"
#include "snapshot/scan_stats.hpp"
#include "universal2/counter_rep.hpp"
#include "universal2/rt.hpp"

namespace apram::bench {
namespace {

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_e6_universal_overhead", flags);
  // Per-op cost of the paper construction grows with history length (the
  // linearize pass walks every logged entry), so its rt op count stays
  // small; universal2's is flat, so it can afford a real sample.
  const std::uint64_t rt_ops_paper =
      static_cast<std::uint64_t>(flags.get_int("rt_ops_paper", 300));
  const std::uint64_t rt_ops_u2 =
      static_cast<std::uint64_t>(flags.get_int("rt_ops_u2", 20000));
  flags.check_unused();

  Table table("E6: universal-construction cost per operation (solo)",
              {"n", "op", "reads", "writes", "total",
               "scan_reads+1w_expected"});
  std::vector<double> log_n, log_total;
  for (int n : {1, 2, 4, 8, 16, 24}) {
    const char* names[] = {"inc", "dec", "reset", "read"};
    for (int which = 0; which < 4; ++which) {
      sim::World w(n,
                   {.metrics = &bobs.registry(),
                    .metrics_prefix =
                        "e6.n" + std::to_string(n) + "." + names[which]});
      CounterSim c(w, n);
      w.spawn(0, [&, which](sim::Context ctx) -> sim::ProcessTask {
        switch (which) {
          case 0: co_await c.inc(ctx, 1); break;
          case 1: co_await c.dec(ctx, 1); break;
          case 2: co_await c.reset(ctx, 0); break;
          default: (void)co_await c.read(ctx); break;
        }
      });
      obs::CounterDelta dreads(w.metrics_reads(0));
      obs::CounterDelta dwrites(w.metrics_writes(0));
      w.run_solo(0);
      const std::uint64_t reads = dreads.delta();
      const std::uint64_t writes = dwrites.delta();
      const auto expected_reads = expected_scan_reads(n, ScanMode::kOptimized);
      const auto expected_writes =
          expected_scan_writes(n, ScanMode::kOptimized) + 1;
      APRAM_CHECK_MSG(reads == expected_reads && writes == expected_writes,
                      "universal op cost differs from scan+1 write");
      if (which == 0 && n >= 2) {
        log_n.push_back(std::log2(static_cast<double>(n)));
        log_total.push_back(std::log2(static_cast<double>(reads + writes)));
      }
      table.add(n)
          .add(names[which])
          .add(reads)
          .add(writes)
          .add(reads + writes)
          .add(std::to_string(expected_reads) + "r+" +
               std::to_string(expected_writes) + "w")
          .end_row();
    }
  }
  table.print(std::cout);

  const double exponent = linear_slope(log_n, log_total);
  std::cout << "growth exponent of total shared ops vs n (log-log slope): "
            << exponent << " (theory: -> 2.0 for large n)\n";
  APRAM_CHECK_MSG(exponent > 1.6 && exponent < 2.3,
                  "universal overhead is not quadratic");
  bobs.registry()
      .gauge("e6.exponent_milli")
      .set(static_cast<std::int64_t>(exponent * 1000.0));

  // Contention does not change the per-op cost (wait-free, no retries).
  Table contention("E6b: per-op cost with all n processes operating (n=6)",
                   {"pid", "ops", "reads/op", "writes/op"});
  {
    const int n = 6, ops = 3;
    sim::World w(n);
    CounterSim c(w, n);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&c, ops](sim::Context ctx) -> sim::ProcessTask {
        for (int i = 0; i < ops; ++i) co_await c.inc(ctx, 1);
      });
    }
    sim::RandomScheduler rs(13);
    APRAM_CHECK(w.run(rs).all_done);
    for (int pid = 0; pid < n; ++pid) {
      const double r =
          static_cast<double>(w.counts(pid).reads) / static_cast<double>(ops);
      const double wr =
          static_cast<double>(w.counts(pid).writes) / static_cast<double>(ops);
      APRAM_CHECK(r == static_cast<double>(expected_scan_reads(
                           n, ScanMode::kOptimized)));
      contention.add(pid).add(ops).add(r, 1).add(wr, 1).end_row();
    }
  }
  contention.print(std::cout);

  // E6c — the normalized fast path removes the scan entirely: an
  // uncontended universal2 inc is 1 read + 1 CAS regardless of n, against
  // the paper construction's scan + anchor write.
  Table cmp("E6c: solo inc cost — paper universal vs universal2 fast path",
            {"n", "paper_accesses", "u2_accesses", "gap_x"});
  for (int n : {2, 4, 8, 16, 24}) {
    const std::uint64_t paper_total =
        expected_scan_reads(n, ScanMode::kOptimized) +
        expected_scan_writes(n, ScanMode::kOptimized) + 1;
    sim::World w(n);
    api::SimBackend::Mem mem(w, "e6c");
    universal2::Counter2<api::SimBackend> c(
        mem, n, "c", {.max_fast_attempts = 3, .help_period = 0});
    // One warm-up op, then measure the steady-state per-op delta.
    w.spawn(0, [&c](sim::Context ctx) -> sim::ProcessTask {
      co_await c.inc(ctx, 1);
    });
    w.run_solo(0);
    const std::uint64_t before = w.counts(0).total();
    w.spawn(0, [&c](sim::Context ctx) -> sim::ProcessTask {
      co_await c.inc(ctx, 1);
    });
    w.run_solo(0);
    const std::uint64_t u2_total = w.counts(0).total() - before;
    APRAM_CHECK_MSG(u2_total == 2,
                    "universal2 fast-path inc must cost 1 read + 1 CAS");
    cmp.add(n)
        .add(paper_total)
        .add(u2_total)
        .add(static_cast<double>(paper_total) / static_cast<double>(u2_total),
             1)
        .end_row();
    bobs.registry()
        .gauge("e6.cmp.n" + std::to_string(n) + ".paper_accesses")
        .set(static_cast<std::int64_t>(paper_total));
    bobs.registry()
        .gauge("e6.cmp.n" + std::to_string(n) + ".u2_accesses")
        .set(static_cast<std::int64_t>(u2_total));
  }
  cmp.print(std::cout);

  // E6d — real threads, n=8, uncontended (each thread drives its own
  // object, all objects sized for 8 processes, so the paper construction
  // pays its full-width scan while universal2 stays on the fast path).
  Table rt_table("E6d: rt uncontended throughput at n=8 (per-thread objects)",
                 {"impl", "threads", "ops/thread", "ops_per_sec"});
  const int kThreads = 8;
  obs::LatencyRecorder paper_lat(bobs.registry(),
                                 "e6.rt.paper.n8.uncontended.op_ns");
  obs::LatencyRecorder u2_lat(bobs.registry(),
                              "e6.rt.u2.n8.uncontended.op_ns");
  double paper_ops_sec = 0.0;
  {
    std::vector<std::unique_ptr<universal2::PaperUniversalRT<CounterSpec>>>
        objs;
    for (int t = 0; t < kThreads; ++t) {
      objs.push_back(
          std::make_unique<universal2::PaperUniversalRT<CounterSpec>>(
              kThreads));
    }
    rt::ThroughputRun tr(kThreads);
    paper_ops_sec = tr.run_ops(rt_ops_paper, [&](int pid) {
      obs::LatencyRecorder::Timer timer(paper_lat);
      (void)objs[static_cast<std::size_t>(pid)]->execute(
          0, CounterSpec::inc(1));
    });
    tr.export_metrics(bobs.registry(), "e6.rt.paper.n8.uncontended");
  }
  double u2_ops_sec = 0.0;
  {
    std::vector<std::unique_ptr<universal2::Counter2RT>> objs;
    for (int t = 0; t < kThreads; ++t) {
      objs.push_back(std::make_unique<universal2::Counter2RT>(kThreads));
    }
    rt::ThroughputRun tr(kThreads);
    u2_ops_sec = tr.run_ops(rt_ops_u2, [&](int pid) {
      obs::LatencyRecorder::Timer timer(u2_lat);
      (void)objs[static_cast<std::size_t>(pid)]->inc(0, 1);
    });
    tr.export_metrics(bobs.registry(), "e6.rt.u2.n8.uncontended");
  }
  rt_table.add("paper")
      .add(kThreads)
      .add(rt_ops_paper)
      .add(paper_ops_sec, 0)
      .end_row();
  rt_table.add("universal2")
      .add(kThreads)
      .add(rt_ops_u2)
      .add(u2_ops_sec, 0)
      .end_row();
  rt_table.print(std::cout);
  const double speedup = u2_ops_sec / paper_ops_sec;
  std::cout << "universal2 / paper uncontended speedup at n=8: " << speedup
            << "x\n";
  bobs.registry()
      .gauge("e6.rt.paper.n8.uncontended.ops_per_sec")
      .set(static_cast<std::int64_t>(paper_ops_sec));
  bobs.registry()
      .gauge("e6.rt.u2.n8.uncontended.ops_per_sec")
      .set(static_cast<std::int64_t>(u2_ops_sec));
  bobs.registry()
      .gauge("e6.rt.u2_speedup_x100")
      .set(static_cast<std::int64_t>(speedup * 100.0));
  APRAM_CHECK_MSG(speedup >= 5.0,
                  "universal2 must beat the paper construction by >= 5x "
                  "uncontended at n=8");

  // E6e — traced contended run (sim, every op forced onto the slow path)
  // whose events ride the metrics artifact, so the help bound is
  // re-derivable offline:  apram-trace check <artifact> --bound u2_help=n-1
  obs::Tracer tracer(6, 1 << 16);
  {
    const int n = 6, ops = 8;
    sim::World w(n, {.tracer = &tracer});
    api::SimBackend::Mem mem(w, "e6e");
    universal2::Counter2<api::SimBackend> c(
        mem, n, "c", {.max_fast_attempts = 0, .help_period = 1});
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&c, ops](sim::Context ctx) -> sim::ProcessTask {
        for (int i = 0; i < ops; ++i) {
          co_await c.inc(ctx, 1);
        }
      });
    }
    sim::RandomScheduler rs(29);
    APRAM_CHECK(w.run(rs).all_done);
    const obs::TraceAnalysis a = obs::analyze(tracer.events());
    const obs::BoundReport report = obs::check_u2_help_bound(a, n);
    APRAM_CHECK_MSG(report.ok() && report.checked > 0,
                    "traced universal2 run violates the n-1 help bound");
    std::cout << "E6e traced run: " << report.checked
              << " complete universal2 ops, help bound " << report.formula
              << " holds.\n";
  }

  bobs.emit(&tracer);
  std::cout << "\nE6 PASS: every operation costs exactly one scan + one "
               "anchor write; growth is quadratic in n; universal2's "
               "normalized fast path is >= 5x faster uncontended at n=8.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
