// E6 — §5.4: the universal construction costs O(n²) reads+writes per
// operation.
//
// Claim: every operation of a commute/overwrite object built by Figure 4
// performs one atomic scan (n²−1 reads, n+1 writes) plus one anchor write —
// a worst-case synchronization overhead of O(n²), independent of schedule
// and of which operation runs.
//
// Reproduction: measure per-operation shared-memory deltas of the universal
// counter across n; fit the growth exponent of reads against n (expect 2.0);
// verify the cost is identical for inc, dec, reset, and read, and identical
// under contention.
#include "bench_common.hpp"
#include "objects/counter.hpp"
#include "snapshot/scan_stats.hpp"

namespace apram::bench {
namespace {

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_e6_universal_overhead", flags);
  flags.check_unused();

  Table table("E6: universal-construction cost per operation (solo)",
              {"n", "op", "reads", "writes", "total",
               "scan_reads+1w_expected"});
  std::vector<double> log_n, log_total;
  for (int n : {1, 2, 4, 8, 16, 24}) {
    const char* names[] = {"inc", "dec", "reset", "read"};
    for (int which = 0; which < 4; ++which) {
      sim::World w(n,
                   {.metrics = &bobs.registry(),
                    .metrics_prefix =
                        "e6.n" + std::to_string(n) + "." + names[which]});
      CounterSim c(w, n);
      w.spawn(0, [&, which](sim::Context ctx) -> sim::ProcessTask {
        switch (which) {
          case 0: co_await c.inc(ctx, 1); break;
          case 1: co_await c.dec(ctx, 1); break;
          case 2: co_await c.reset(ctx, 0); break;
          default: (void)co_await c.read(ctx); break;
        }
      });
      obs::CounterDelta dreads(w.metrics_reads(0));
      obs::CounterDelta dwrites(w.metrics_writes(0));
      w.run_solo(0);
      const std::uint64_t reads = dreads.delta();
      const std::uint64_t writes = dwrites.delta();
      const auto expected_reads = expected_scan_reads(n, ScanMode::kOptimized);
      const auto expected_writes =
          expected_scan_writes(n, ScanMode::kOptimized) + 1;
      APRAM_CHECK_MSG(reads == expected_reads && writes == expected_writes,
                      "universal op cost differs from scan+1 write");
      if (which == 0 && n >= 2) {
        log_n.push_back(std::log2(static_cast<double>(n)));
        log_total.push_back(std::log2(static_cast<double>(reads + writes)));
      }
      table.add(n)
          .add(names[which])
          .add(reads)
          .add(writes)
          .add(reads + writes)
          .add(std::to_string(expected_reads) + "r+" +
               std::to_string(expected_writes) + "w")
          .end_row();
    }
  }
  table.print(std::cout);

  const double exponent = linear_slope(log_n, log_total);
  std::cout << "growth exponent of total shared ops vs n (log-log slope): "
            << exponent << " (theory: -> 2.0 for large n)\n";
  APRAM_CHECK_MSG(exponent > 1.6 && exponent < 2.3,
                  "universal overhead is not quadratic");
  bobs.registry()
      .gauge("e6.exponent_milli")
      .set(static_cast<std::int64_t>(exponent * 1000.0));

  // Contention does not change the per-op cost (wait-free, no retries).
  Table contention("E6b: per-op cost with all n processes operating (n=6)",
                   {"pid", "ops", "reads/op", "writes/op"});
  {
    const int n = 6, ops = 3;
    sim::World w(n);
    CounterSim c(w, n);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&c, ops](sim::Context ctx) -> sim::ProcessTask {
        for (int i = 0; i < ops; ++i) co_await c.inc(ctx, 1);
      });
    }
    sim::RandomScheduler rs(13);
    APRAM_CHECK(w.run(rs).all_done);
    for (int pid = 0; pid < n; ++pid) {
      const double r =
          static_cast<double>(w.counts(pid).reads) / static_cast<double>(ops);
      const double wr =
          static_cast<double>(w.counts(pid).writes) / static_cast<double>(ops);
      APRAM_CHECK(r == static_cast<double>(expected_scan_reads(
                           n, ScanMode::kOptimized)));
      contention.add(pid).add(ops).add(r, 1).add(wr, 1).end_row();
    }
  }
  contention.print(std::cout);
  bobs.emit();
  std::cout << "\nE6 PASS: every operation costs exactly one scan + one "
               "anchor write; growth is quadratic in n.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
