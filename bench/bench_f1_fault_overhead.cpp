// F1 — fault-injection overhead.
//
// The fault layer is only honest if its probes are cheap enough to leave on:
// an instrumented register that slows the hot path distorts the very
// schedules the campaign wants to explore. Two tables:
//   (a) rt register access cost with no injector, an attached-but-idle
//       injector (all probabilities zero — the always-on configuration),
//       and an active injector (yields enabled);
//   (b) simulator scheduling throughput for a bare RandomScheduler vs the
//       Nemesis wrapper vs the full certifier stack (recording + nemesis),
//       i.e. what a campaign schedule costs over a plain run.
#include <chrono>
#include <functional>

#include "bench_common.hpp"
#include "fault/nemesis.hpp"
#include "fault/rt_inject.hpp"
#include "rt/register.hpp"
#include "rt/thread_harness.hpp"
#include "util/rng.hpp"

namespace apram::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ns_per_op(const std::function<void()>& body, std::uint64_t ops) {
  const auto t0 = Clock::now();
  body();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(ops);
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_f1_fault_overhead", flags);
  const auto ops = static_cast<std::uint64_t>(
      flags.get_int("ops", 2'000'000));
  const auto sim_writes = flags.get_int("sim_writes", 20'000);
  flags.check_unused();

  // ---- (a) rt register: injector cost at the access boundary ------------
  Table rt_table("F1a: rt SWMR register write cost (single writer thread)",
                 {"configuration", "ns/op"});
  {
    rt::SWMRRegister<std::uint64_t> reg(0);
    double ns = 0;
    rt::parallel_run(1, [&](int) {
      ns = ns_per_op([&] { for (std::uint64_t i = 0; i < ops; ++i) reg.write(i); },
                     ops);
    });
    rt_table.add("no injector").add(ns, 2).end_row();
  }
  {
    rt::SWMRRegister<std::uint64_t> reg(0);
    fault::RtInjector inj(fault::RtInjectOptions{});  // attached, all-zero
    reg.attach_injector(&inj);
    double ns = 0;
    rt::parallel_run(1, [&](int) {
      ns = ns_per_op([&] { for (std::uint64_t i = 0; i < ops; ++i) reg.write(i); },
                     ops);
    });
    rt_table.add("injector idle").add(ns, 2).end_row();
  }
  {
    rt::SWMRRegister<std::uint64_t> reg(0);
    fault::RtInjectOptions opts;
    opts.yield_prob = 0.1;
    fault::RtInjector inj(opts);
    reg.attach_injector(&inj);
    const std::uint64_t active_ops = ops / 10;  // yields dominate: fewer ops
    double ns = 0;
    rt::parallel_run(1, [&](int) {
      ns = ns_per_op(
          [&] { for (std::uint64_t i = 0; i < active_ops; ++i) reg.write(i); },
          active_ops);
    });
    rt_table.add("injector active (yield 10%)").add(ns, 2).end_row();
  }
  rt_table.print(std::cout);

  // ---- (b) sim: campaign scheduler stack vs bare random -----------------
  Table sim_table("F1b: simulator grant throughput (3 writers)",
                  {"scheduler stack", "steps", "Msteps/sec"});
  const auto make_exec = [&](sim::World& w,
                             std::vector<sim::Register<int>*>& regs) {
    for (int pid = 0; pid < 3; ++pid) {
      regs.push_back(&w.make_register<int>("r" + std::to_string(pid), 0, pid));
      w.spawn(pid, [&regs, pid, sim_writes](sim::Context ctx)
                  -> sim::ProcessTask {
        for (int i = 1; i <= sim_writes; ++i) {
          co_await ctx.write(*regs[static_cast<std::size_t>(pid)], i);
        }
      });
    }
  };
  const auto time_run = [&](const std::string& label, auto&& mk_and_run) {
    const auto t0 = Clock::now();
    const std::uint64_t steps = mk_and_run();
    const auto t1 = Clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    sim_table.add(label).add(steps).add(
        static_cast<double>(steps) / 1e6 / secs, 2);
    sim_table.end_row();
  };
  time_run("random", [&] {
    sim::World w(3);
    std::vector<sim::Register<int>*> regs;
    make_exec(w, regs);
    sim::RandomScheduler sched(1);
    w.run(sched);
    return w.global_step();
  });
  time_run("nemesis(random)", [&] {
    sim::World w(3);
    std::vector<sim::Register<int>*> regs;
    make_exec(w, regs);
    sim::RandomScheduler inner(1);
    Rng rng(7);
    fault::PlanOptions popts;
    const fault::FaultPlan plan = fault::random_plan(rng, 3, popts);
    fault::Nemesis sched(inner, plan);
    w.run(sched);
    return w.global_step();
  });
  time_run("recording(nemesis(random))", [&] {
    sim::World w(3);
    std::vector<sim::Register<int>*> regs;
    make_exec(w, regs);
    sim::RandomScheduler inner(1);
    Rng rng(7);
    fault::PlanOptions popts;
    const fault::FaultPlan plan = fault::random_plan(rng, 3, popts);
    fault::Nemesis nem(inner, plan);
    sim::RecordingScheduler sched(nem);
    w.run(sched);
    return w.global_step();
  });
  sim_table.print(std::cout);

  bobs.emit();
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
