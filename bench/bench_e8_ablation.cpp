// E8 — ablations of the design choices DESIGN.md calls out.
//
//   (a) Generic universal construction vs type-specific optimization
//       (§5.4's closing remark): the FastCounter collapses the precedence
//       graph into per-process totals — updates drop from O(n²) to a single
//       write, reads stay one scan.
//   (b) The §6.2 scan optimizations (plain vs optimized mode): exactly
//       n+2 reads and 1 write saved per scan.
//   (c) Helping (AADGMS) vs no helping (double-collect): retry distribution
//       under randomized contention — what wait-freedom buys.
#include "bench_common.hpp"
#include "objects/counter.hpp"
#include "objects/fast_counter.hpp"
#include "snapshot/baselines/double_collect.hpp"
#include "snapshot/scan_stats.hpp"
#include "util/rng.hpp"

namespace apram::bench {
namespace {

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_e8_ablation", flags);
  flags.check_unused();

  // ---- (a) universal vs fast counter ------------------------------------
  Table a("E8a: universal counter vs type-optimized FastCounter (per op, "
          "solo)",
          {"n", "object", "inc_reads", "inc_writes", "read_reads",
           "read_writes"});
  for (int n : {2, 4, 8, 16}) {
    {
      sim::World w(n, {.metrics = &bobs.registry(),
                       .metrics_prefix = "e8a.n" + std::to_string(n) + ".uni"});
      CounterSim c(w, n);
      w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
        co_await c.inc(ctx, 1);
      });
      obs::CounterDelta ir(w.metrics_reads(0));
      obs::CounterDelta iw(w.metrics_writes(0));
      w.run_solo(0);
      const std::uint64_t inc_reads = ir.delta(), inc_writes = iw.delta();
      w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
        (void)co_await c.read(ctx);
      });
      obs::CounterDelta rr(w.metrics_reads(0));
      obs::CounterDelta rw(w.metrics_writes(0));
      w.run_solo(0);
      a.add(n).add("universal").add(inc_reads).add(inc_writes).add(rr.delta())
          .add(rw.delta()).end_row();
    }
    {
      sim::World w(n,
                   {.metrics = &bobs.registry(),
                    .metrics_prefix = "e8a.n" + std::to_string(n) + ".fast"});
      FastCounterSim c(w, n);
      w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
        co_await c.inc(ctx, 1);
      });
      obs::CounterDelta ir(w.metrics_reads(0));
      obs::CounterDelta iw(w.metrics_writes(0));
      w.run_solo(0);
      const std::uint64_t inc_reads = ir.delta(), inc_writes = iw.delta();
      w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
        (void)co_await c.read(ctx);
      });
      obs::CounterDelta rr(w.metrics_reads(0));
      obs::CounterDelta rw(w.metrics_writes(0));
      w.run_solo(0);
      APRAM_CHECK_MSG(inc_reads == 0 && inc_writes == 1,
                      "fast counter update must be one write");
      a.add(n).add("fast").add(inc_reads).add(inc_writes).add(rr.delta())
          .add(rw.delta()).end_row();
    }
  }
  a.print(std::cout);
  std::cout << "shape: updates collapse from one full scan (O(n^2)) to one "
               "write; reads stay one scan for both.\n";

  // ---- (b) scan mode ablation --------------------------------------------
  Table b("E8b: §6.2 optimizations — plain vs optimized scan",
          {"n", "plain_reads", "opt_reads", "reads_saved", "plain_writes",
           "opt_writes", "writes_saved"});
  for (int n : {2, 4, 8, 16, 32}) {
    const auto pr = expected_scan_reads(n, ScanMode::kPlain);
    const auto orr = expected_scan_reads(n, ScanMode::kOptimized);
    const auto pw = expected_scan_writes(n, ScanMode::kPlain);
    const auto ow = expected_scan_writes(n, ScanMode::kOptimized);
    b.add(n).add(pr).add(orr).add(pr - orr).add(pw).add(ow).add(pw - ow)
        .end_row();
  }
  b.print(std::cout);

  // ---- (c) retry distribution without helping ----------------------------
  Table c("E8c: double-collect retry attempts under random contention "
          "(n=4, 3 updaters, 200 scans)",
          {"update_stickiness", "mean_attempts", "p95", "max"});
  for (double sticky : {0.0, 0.5, 0.9}) {
    std::vector<double> attempts;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const int n = 4;
      sim::World w(
          n, {.metrics = &bobs.registry(),
              .metrics_prefix = "e8c.s" +
                                std::to_string(static_cast<int>(sticky * 10)) +
                                ".seed" + std::to_string(seed)});
      DoubleCollectSnapshotSim<int> snap(w, n);
      w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
        for (int k = 0; k < 20; ++k) {
          obs::CounterDelta reads(ctx.world().metrics_reads(0));
          const auto view = co_await snap.scan(ctx, /*max_attempts=*/10'000);
          APRAM_CHECK(view.has_value());
          attempts.push_back(static_cast<double>(reads.delta()) / (2.0 * n));
        }
      });
      for (int pid = 1; pid < n; ++pid) {
        w.spawn(pid, [&, pid](sim::Context ctx) -> sim::ProcessTask {
          for (int i = 0; i < 100'000; ++i) {
            co_await snap.update(ctx, pid * 1000 + i);
            if (ctx.world().done(0)) co_return;
          }
        });
      }
      sim::RandomScheduler rs(seed, sticky);
      w.run(rs, 5'000'000);
    }
    RunningStats st;
    for (double x : attempts) st.add(x);
    c.add(sticky, 1)
        .add(st.mean(), 2)
        .add(percentile(attempts, 0.95), 2)
        .add(st.max(), 1)
        .end_row();
  }
  c.print(std::cout);
  bobs.emit();
  std::cout << "shape: without helping, retries explode under fine-grained "
               "interleaving (stickiness 0) and relax only when updates come "
               "in bursts; the wait-free scan costs exactly 1.0 'attempt' "
               "always (E4/E5).\n";
  std::cout << "\nE8 done.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
