// E5 — snapshot algorithm comparison (ours vs the §2 comparators).
//
// Claims reproduced:
//   * Our scan is wait-free with a fixed n²−1-read cost; the double-collect
//     baseline is only obstruction-free — an adversarial updater starves it
//     (retries grow without bound), while our cost is flat.
//   * The AADGMS snapshot [2] has "time complexity comparable to ours":
//     wait-free, O(n²) reads, but with retry variance and embedded-scan
//     update costs; our update is a single write.
//   * Against a blocking (mutex) snapshot on real threads, the wait-free
//     algorithms pay a constant-factor throughput cost when nothing goes
//     wrong — the price of progress guarantees.
//
// Tables: (a) simulator step counts per scan/update under increasing
// adversarial update pressure; (b) real-thread throughput of update/scan
// mixes for ours vs double-collect vs mutex.
#include <chrono>

#include "bench_common.hpp"
#include "rt/double_collect_rt.hpp"
#include "snapshot/lattice_scan.hpp"
#include "rt/thread_harness.hpp"
#include "snapshot/atomic_snapshot.hpp"
#include "snapshot/baselines/afek_snapshot.hpp"
#include "snapshot/baselines/double_collect.hpp"
#include "snapshot/baselines/mutex_snapshot.hpp"
#include "snapshot/scan_stats.hpp"

namespace apram::bench {
namespace {

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_e5_snapshot_compare", flags);
  const auto window_ms = flags.get_int("window_ms", 80);
  flags.check_unused();

  // ---- (a) simulator: scanner cost vs adversarial update pressure -------
  Table sim_table(
      "E5a: scanner reads to complete one scan vs update pressure (n=4; 0 = "
      "starved, never completed)",
      {"updates/read", "ours(wait-free)", "double-collect", "afek(AADGMS)"});

  const int n = 4;
  for (int pressure : {0, 1, 2, 4}) {
    sim::World w1(n);
    AtomicSnapshotSim<int> ours(w1, n, "ours");
    bool ours_done = false;
    w1.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
      (void)co_await ours.scan(ctx);
      ours_done = true;
    });
    w1.spawn(1, [&](sim::Context ctx) -> sim::ProcessTask {
      for (int i = 0; i < 200'000; ++i) co_await ours.update(ctx, i);
    });
    std::vector<int> schedule;
    while (schedule.size() < 100'000) {
      schedule.push_back(0);
      for (int j = 0; j < pressure; ++j) schedule.push_back(1);
    }
    sim::FixedScheduler s1(schedule, sim::FixedScheduler::Fallback::kStop);
    w1.run_steps(s1, 100'000);
    const std::uint64_t ours_reads = ours_done ? w1.counts(0).reads : 0;

    sim::World w2(n);
    DoubleCollectSnapshotSim<int> dc(w2, n);
    bool dc_done = false;
    w2.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
      const auto v = co_await dc.scan(ctx, /*max_attempts=*/5000);
      dc_done = v.has_value();
    });
    w2.spawn(1, [&](sim::Context ctx) -> sim::ProcessTask {
      for (int i = 0; i < 200'000; ++i) co_await dc.update(ctx, i);
    });
    sim::FixedScheduler s2(schedule, sim::FixedScheduler::Fallback::kStop);
    w2.run_steps(s2, 100'000);
    const std::uint64_t dc_reads = dc_done ? w2.counts(0).reads : 0;

    sim::World w3(n);
    AfekSnapshotSim<int> afek(w3, n);
    bool afek_done = false;
    w3.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
      (void)co_await afek.scan(ctx);
      afek_done = true;
    });
    w3.spawn(1, [&](sim::Context ctx) -> sim::ProcessTask {
      for (int i = 0; i < 200'000; ++i) co_await afek.update(ctx, i);
    });
    sim::FixedScheduler s3(schedule, sim::FixedScheduler::Fallback::kStop);
    w3.run_steps(s3, 100'000);
    const std::uint64_t afek_reads = afek_done ? w3.counts(0).reads : 0;

    sim_table.add(pressure)
        .add(ours_reads)
        .add(dc_reads)
        .add(afek_reads)
        .end_row();
  }
  sim_table.print(std::cout);
  std::cout << "shape: ours is flat at n^2-1 = " << (n * n - 1)
            << " reads regardless of pressure; double-collect grows and then "
               "starves; AADGMS stays bounded via helping.\n";

  // ---- (b) update costs ---------------------------------------------------
  Table upd("E5b: update cost (solo, simulator steps)",
            {"algorithm", "reads", "writes"});
  {
    sim::World w(n);
    AtomicSnapshotSim<int> snap(w, n);
    w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
      co_await snap.update(ctx, 1);
    });
    w.run_solo(0);
    upd.add("ours").add(w.counts(0).reads).add(w.counts(0).writes).end_row();
  }
  {
    sim::World w(n);
    DoubleCollectSnapshotSim<int> snap(w, n);
    w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
      co_await snap.update(ctx, 1);
    });
    w.run_solo(0);
    upd.add("double-collect")
        .add(w.counts(0).reads)
        .add(w.counts(0).writes)
        .end_row();
  }
  {
    sim::World w(n);
    AfekSnapshotSim<int> snap(w, n);
    w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
      co_await snap.update(ctx, 1);
    });
    w.run_solo(0);
    upd.add("afek (embedded scan)")
        .add(w.counts(0).reads)
        .add(w.counts(0).writes)
        .end_row();
  }
  upd.print(std::cout);

  // ---- (c) real threads: throughput of a mixed workload ------------------
  Table rt_table("E5c: real-thread ops/sec (1 scanner + n-1 updaters)",
                 {"n", "algorithm", "ops_per_sec"});
  for (int threads : {2, 4}) {
    {
      rt::AtomicSnapshotRT<std::int64_t> snap(threads);
      snap.attach_obs(bobs.registry(),
                      "e5c.ours.t" + std::to_string(threads));
      rt::ThroughputRun tr(threads);
      const double rate =
          tr.run(std::chrono::milliseconds(window_ms), [&](int pid) {
            if (pid == 0) {
              (void)snap.scan(pid);
            } else {
              snap.update(pid, pid);
            }
          });
      tr.export_metrics(bobs.registry(),
                        "e5c.ours.t" + std::to_string(threads));
      rt_table.add(threads).add("ours").add(rate, 0).end_row();
    }
    {
      rt::DoubleCollectSnapshotRT<std::int64_t> snap(threads);
      rt::ThroughputRun tr(threads);
      const double rate =
          tr.run(std::chrono::milliseconds(window_ms), [&](int pid) {
            if (pid == 0) {
              (void)snap.scan(pid);
            } else {
              snap.update(pid, pid);
            }
          });
      rt_table.add(threads).add("double-collect").add(rate, 0).end_row();
    }
    {
      rt::MutexSnapshot<std::int64_t> snap(threads);
      rt::ThroughputRun tr(threads);
      const double rate =
          tr.run(std::chrono::milliseconds(window_ms), [&](int pid) {
            if (pid == 0) {
              (void)snap.scan(pid);
            } else {
              snap.update(pid, pid);
            }
          });
      rt_table.add(threads).add("mutex(blocking)").add(rate, 0).end_row();
    }
  }
  rt_table.print(std::cout);
  bobs.emit();
  std::cout << "\nE5 done. shape: wait-free scan cost flat under adversarial "
               "pressure; double-collect starves; blocking baseline fastest "
               "only because nothing fails here.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
