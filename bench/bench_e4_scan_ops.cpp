// E4 — §6.2: exact operation counts of the lattice Scan.
//
// Claim: a Scan performs n²+n+1 reads and n+2 writes as written (kPlain),
// and n²−1 reads and n+1 writes after the stated optimizations (drop the
// final write; serve self-reads from the single-writer cache).
//
// Reproduction: measure the simulator's per-process read/write deltas for
// one Scan at each n and compare with the closed forms — these must match
// *exactly*, not approximately; any mismatch aborts. A second table shows
// the cost is schedule-independent (wait-freedom in the strongest sense).
#include "bench_common.hpp"
#include "snapshot/lattice_scan.hpp"
#include "snapshot/scan_stats.hpp"

namespace apram::bench {
namespace {

using MaxL = MaxLattice<std::int64_t>;

struct Measured {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

Measured measure_solo_scan(int n, ScanMode mode) {
  sim::World w(n);
  LatticeScanSim<MaxL> ls(w, n, "ls", mode);
  w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
    co_await ls.scan(ctx, 1);
  });
  StepDelta probe(w, 0);
  w.run_solo(0);
  const auto d = probe.delta();
  return {d.reads, d.writes};
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  flags.check_unused();

  Table table("E4: Scan operation counts (must match §6.2 exactly)",
              {"n", "mode", "reads", "reads_expected", "writes",
               "writes_expected"});
  for (int n : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    for (ScanMode mode : {ScanMode::kPlain, ScanMode::kOptimized}) {
      const auto m = measure_solo_scan(n, mode);
      const auto er = expected_scan_reads(n, mode);
      const auto ew = expected_scan_writes(n, mode);
      APRAM_CHECK_MSG(m.reads == er && m.writes == ew,
                      "scan op count mismatch with §6.2");
      table.add(n)
          .add(mode == ScanMode::kPlain ? "plain" : "optimized")
          .add(m.reads)
          .add(er)
          .add(m.writes)
          .add(ew)
          .end_row();
    }
  }
  table.print(std::cout);

  // Schedule independence: under heavy contention the per-scan cost is
  // byte-identical (straight-line algorithm, no retries).
  Table contention(
      "E4b: per-scan cost under contention (n=6, every process scanning)",
      {"schedule", "pid", "reads", "writes"});
  for (std::uint64_t seed : {0ULL, 7ULL, 99ULL}) {
    const int n = 6;
    sim::World w(n);
    LatticeScanSim<MaxL> ls(w, n, "ls");
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&ls, pid](sim::Context ctx) -> sim::ProcessTask {
        co_await ls.scan(ctx, pid);
      });
    }
    sim::RandomScheduler rs(seed);
    APRAM_CHECK(w.run(rs).all_done);
    for (int pid = 0; pid < n; ++pid) {
      APRAM_CHECK(w.counts(pid).reads ==
                  expected_scan_reads(n, ScanMode::kOptimized));
      APRAM_CHECK(w.counts(pid).writes ==
                  expected_scan_writes(n, ScanMode::kOptimized));
      if (pid == 0) {
        contention.add("rnd seed " + std::to_string(seed))
            .add(pid)
            .add(w.counts(pid).reads)
            .add(w.counts(pid).writes)
            .end_row();
      }
    }
  }
  contention.print(std::cout);
  std::cout << "\nE4 PASS: measured counts equal the closed forms at every "
               "n, in both modes, under every schedule.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
