// E4 — §6.2: exact operation counts of the lattice Scan.
//
// Claim: a Scan performs n²+n+1 reads and n+2 writes as written (kPlain),
// and n²−1 reads and n+1 writes after the stated optimizations (drop the
// final write; serve self-reads from the single-writer cache).
//
// Reproduction: every access is recorded through the apram::obs metrics
// registry attached to the World (no bespoke counters); the per-process
// read/write counters for one Scan must equal the closed forms *exactly* at
// each n — any mismatch aborts. A second table shows the cost is
// schedule-independent (wait-freedom in the strongest sense). The registry
// is dumped as a JSON artifact so CI can re-assert the counts offline.
//
// --trace_out=<path> additionally runs a traced contended world at
// --trace_n (default 4) processes, writes a Perfetto-openable Chrome trace
// to <path>, and embeds the raw span/access events in the metrics artifact
// so `apram-trace check --bound scan` can re-derive the n²−1 / n+1 bound
// from the trace alone — independently of the registry counters above.
#include <memory>

#include "bench_common.hpp"
#include "obs/chrome_trace.hpp"
#include "snapshot/lattice_scan.hpp"
#include "snapshot/scan_stats.hpp"

namespace apram::bench {
namespace {

using MaxL = MaxLattice<std::int64_t>;

struct Measured {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

Measured measure_solo_scan(obs::Registry& registry, int n, ScanMode mode) {
  const std::string prefix =
      "e4.n" + std::to_string(n) +
      (mode == ScanMode::kPlain ? ".plain" : ".optimized");
  sim::World w(n, {.metrics = &registry, .metrics_prefix = prefix});
  LatticeScanSim<MaxL> ls(w, n, "ls", mode);
  w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
    co_await ls.scan(ctx, 1);
  });
  obs::CounterDelta reads(w.metrics_reads(0));
  obs::CounterDelta writes(w.metrics_writes(0));
  w.run_solo(0);
  return {reads.delta(), writes.delta()};
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_e4_scan_ops", flags);
  const std::string trace_out = flags.get_string("trace_out", "");
  const int trace_n = static_cast<int>(flags.get_int("trace_n", 4));
  flags.check_unused();

  Table table("E4: Scan operation counts (must match §6.2 exactly)",
              {"n", "mode", "reads", "reads_expected", "writes",
               "writes_expected"});
  for (int n : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    for (ScanMode mode : {ScanMode::kPlain, ScanMode::kOptimized}) {
      const auto m = measure_solo_scan(bobs.registry(), n, mode);
      const auto er = expected_scan_reads(n, mode);
      const auto ew = expected_scan_writes(n, mode);
      APRAM_CHECK_MSG(m.reads == er && m.writes == ew,
                      "scan op count mismatch with §6.2");
      table.add(n)
          .add(mode == ScanMode::kPlain ? "plain" : "optimized")
          .add(m.reads)
          .add(er)
          .add(m.writes)
          .add(ew)
          .end_row();
    }
  }
  table.print(std::cout);

  // Schedule independence: under heavy contention the per-scan cost is
  // byte-identical (straight-line algorithm, no retries). Counts come from
  // the same registry, via the per-pid counters of each contended world.
  Table contention(
      "E4b: per-scan cost under contention (n=6, every process scanning)",
      {"schedule", "pid", "reads", "writes"});
  for (std::uint64_t seed : {0ULL, 7ULL, 99ULL}) {
    const int n = 6;
    sim::World w(n, {.metrics = &bobs.registry(),
                     .metrics_prefix = "e4b.seed" + std::to_string(seed)});
    LatticeScanSim<MaxL> ls(w, n, "ls");
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&ls, pid](sim::Context ctx) -> sim::ProcessTask {
        co_await ls.scan(ctx, pid);
      });
    }
    sim::RandomScheduler rs(seed);
    APRAM_CHECK(w.run(rs).all_done);
    for (int pid = 0; pid < n; ++pid) {
      APRAM_CHECK(w.metrics_reads(pid).value() ==
                  expected_scan_reads(n, ScanMode::kOptimized));
      APRAM_CHECK(w.metrics_writes(pid).value() ==
                  expected_scan_writes(n, ScanMode::kOptimized));
      if (pid == 0) {
        contention.add("rnd seed " + std::to_string(seed))
            .add(pid)
            .add(w.metrics_reads(pid).value())
            .add(w.metrics_writes(pid).value())
            .end_row();
      }
    }
  }
  contention.print(std::cout);

  // Traced contended world: every process runs one optimized Scan with span
  // tracing on, so the offline analyzer can re-count each op's accesses.
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_out.empty()) {
    const int n = trace_n;
    tracer = std::make_unique<obs::Tracer>(n, /*capacity_per_ring=*/1 << 12);
    sim::World w(n, {.metrics = &bobs.registry(),
                     .metrics_prefix = "e4.traced",
                     .tracer = tracer.get()});
    LatticeScanSim<MaxL> ls(w, n, "ls");
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&ls, pid](sim::Context ctx) -> sim::ProcessTask {
        co_await ls.scan(ctx, pid);
      });
    }
    sim::RandomScheduler rs(1);
    APRAM_CHECK(w.run(rs).all_done);
    obs::write_chrome_trace(trace_out, tracer->events(),
                            obs::TraceTimebase::kSimSteps,
                            "bench_e4 traced Scan n=" + std::to_string(n));
    std::cout << "\ntraced Scan world (n=" << n << "): " << trace_out
              << " — open in ui.perfetto.dev; raw events embedded in the "
                 "metrics artifact for apram-trace.\n";
  }
  bobs.emit(tracer.get());
  std::cout << "\nE4 PASS: registry-recorded counts equal the closed forms "
               "at every n, in both modes, under every schedule.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
