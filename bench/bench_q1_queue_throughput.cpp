// Q1 — polylog wait-free queue throughput: PolylogQueueRT vs a mutex+deque
// baseline.
//
// Headline: ops/sec at a 50/50 enqueue/dequeue mix across thread counts,
// gauge `q1.<impl>.t<threads>.mix50_50.ops_per_sec`, with per-op wall
// latency in histogram `<cell>.op_ns` (p50/p90/p99/p99.9 in the JSON — the
// p99 is the interesting number: the mutex baseline's tail carries the
// convoy effect, the wait-free queue's tail is the 1+8·log2(n) access
// bound). The polylog queue is NOT expected to beat an uncontended mutex on
// raw throughput — a lock-free fetch-add queue would; what it buys is the
// wait-free progress bound, and the regression gate holds the RATIO to the
// baseline steady (--normalize, generous tolerance) rather than chasing an
// absolute number.
//
// Certified traced runs: for n ∈ {4, 8, 16}, a traced workload is analyzed
// IN-PROCESS with check_queue_op_bound (enqueue/dequeue ≤ 12·⌈log2 n⌉²
// accesses — the Naderibeni–Ruppert O(log² n) envelope) and the binary
// aborts on violation, so every bench run is also a certification run. The
// n = 16 events are embedded in the metrics artifact, where CI re-checks
// them from the outside via `apram-trace check --bound queue_op=clog2n`.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/analyze.hpp"
#include "obs/chrome_trace.hpp"
#include "objects/polylog_queue.hpp"
#include "rt/thread_harness.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace apram::bench {
namespace {

// The blocking strawman: one lock, one deque. Same totalized-dequeue
// contract as the wait-free queue (-1 on empty).
class MutexQueue {
 public:
  explicit MutexQueue(int /*num_procs*/) {}

  void enqueue(int /*pid*/, std::int64_t v) {
    const std::lock_guard<std::mutex> g(mu_);
    q_.push_back(v);
  }
  std::int64_t dequeue(int /*pid*/) {
    const std::lock_guard<std::mutex> g(mu_);
    if (q_.empty()) return -1;
    const std::int64_t v = q_.front();
    q_.pop_front();
    return v;
  }

 private:
  std::mutex mu_;
  std::deque<std::int64_t> q_;
};

std::string cell_name(const std::string& impl, int threads) {
  return "q1." + impl + ".t" + std::to_string(threads) + ".mix50_50";
}

// 50/50 enqueue/dequeue mix; per-op latency into the cell's op_ns
// histogram. Returns ops/sec.
template <class Q>
double run_mix(Q& q, int threads, std::uint64_t ops_per_thread,
               obs::LatencyRecorder& op_ns) {
  rt::ThroughputRun tr(threads);
  std::vector<Rng> rngs;
  for (int p = 0; p < threads; ++p) {
    rngs.emplace_back(0x91ULL + static_cast<std::uint64_t>(p) * 977);
  }
  std::vector<std::int64_t> next(static_cast<std::size_t>(threads), 0);
  return tr.run_ops(ops_per_thread, [&](int pid) {
    const auto up = static_cast<std::size_t>(pid);
    const bool is_enq = rngs[up].below(100) < 50;
    const obs::LatencyRecorder::Timer t(op_ns);
    if (is_enq) {
      q.enqueue(pid, pid * 1'000'000'000LL + ++next[up]);
    } else {
      (void)q.dequeue(pid);
    }
  });
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_q1_queue_throughput", flags);
  // 500 in the CI smoke job; the committed BENCH_q1.json uses the default.
  const auto ops_per_thread = static_cast<std::uint64_t>(
      flags.get_int("ops_per_thread", 6000));
  const int max_threads = static_cast<int>(flags.get_int("max_threads", 32));
  const std::string trace_out = flags.get_string("trace_out", "");
  flags.check_unused();

  // ---- headline: polylog queue vs mutex baseline, 50/50 mix --------------
  Table head("Q1: FIFO queue throughput, PolylogQueueRT vs mutex+deque "
             "(50/50 enqueue/dequeue, n = threads)",
             {"threads", "polylog_ops_s", "mutex_ops_s", "ratio"});
  for (int t = 1; t <= max_threads; t *= 2) {
    obs::LatencyRecorder poly_ns(bobs.registry(),
                                 cell_name("polylog", t) + ".op_ns");
    PolylogQueueRT poly(t);
    const double poly_ops = run_mix(poly, t, ops_per_thread, poly_ns);

    obs::LatencyRecorder mutex_ns(bobs.registry(),
                                  cell_name("mutex", t) + ".op_ns");
    MutexQueue mq(t);
    const double mutex_ops = run_mix(mq, t, ops_per_thread, mutex_ns);

    bobs.registry()
        .gauge(cell_name("polylog", t) + ".ops_per_sec")
        .set(static_cast<std::int64_t>(poly_ops));
    bobs.registry()
        .gauge(cell_name("mutex", t) + ".ops_per_sec")
        .set(static_cast<std::int64_t>(mutex_ops));
    poly.export_reclaim_gauges(bobs.registry(), cell_name("polylog", t));
    // Per-level contention of the queue's FArray log tree (see bench_t1 for
    // the schema) — where enqueue-side CAS races sit as threads scale.
    poly.export_contention_gauges(bobs.registry(),
                                  "farray." + cell_name("polylog", t));
    head.add(t)
        .add(poly_ops, 0)
        .add(mutex_ops, 0)
        .add(mutex_ops > 0.0 ? poly_ops / mutex_ops : 0.0, 2)
        .end_row();
  }
  head.print(std::cout);
  std::cout << "shape: a polylog op touches 1 + 4..8·log2(n) registers "
               "(wait-free) vs one lock round-trip (blocking); the gate "
               "tracks the ratio, not the absolute.\n\n";

  // ---- certified traced runs: n in {4, 8, 16} ----------------------------
  // Every bench run re-derives the queue_op bound from its own trace; the
  // n = 16 tracer is kept for the artifact so CI checks it externally too.
  std::unique_ptr<obs::Tracer> keep;
  for (const int n : {4, 8, 16}) {
    auto tracer = std::make_unique<obs::Tracer>(n, /*capacity_per_ring=*/1
                                                       << 13);
    PolylogQueueRT q(n);
    q.attach_obs(bobs.registry(), "q1.traced.n" + std::to_string(n),
                 tracer.get());
    rt::parallel_run(
        n,
        [&](int pid) {
          for (int i = 0; i < 24; ++i) {
            q.enqueue(pid, pid * 1'000LL + i);
            if (i % 2 == 1) (void)q.dequeue(pid);
          }
        },
        tracer.get());
    const obs::TraceAnalysis a = obs::analyze(tracer->events());
    const obs::BoundReport report = obs::check_queue_op_bound(a, n);
    std::cout << "traced n=" << n << ": " << obs::format_report(report)
              << "\n";
    APRAM_CHECK_MSG(report.ok() && report.checked > 0,
                    "queue_op bound violated (or nothing checked) on the "
                    "traced bench_q1 run");
    if (n == 16) keep = std::move(tracer);
  }
  if (!trace_out.empty()) {
    obs::write_chrome_trace(trace_out, keep->events(),
                            obs::TraceTimebase::kNanoseconds,
                            "bench_q1 traced PolylogQueueRT n=16");
    std::cout << "traced PolylogQueueRT run (n=16): " << trace_out
              << " — open in ui.perfetto.dev; raw events embedded in the "
                 "metrics artifact for apram-trace.\n";
  }
  bobs.emit(keep.get());
  std::cout << "\nQ1 done.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
