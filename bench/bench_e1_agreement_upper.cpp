// E1 — Theorem 5 upper bound for wait-free approximate agreement.
//
// Claim: each process finishes within (2n+1)·log2(Δ/ε) + O(n) steps, every
// output lies inside the input range, and outputs are within ε.
//
// Reproduction: sweep Δ/ε and n; drive the output phase with round-robin and
// with the worst of many random (uniform and bursty) schedules; report the
// worst observed per-process step count and round count against the bound.
// Shape to verify: measured steps stay below the bound for every cell, and
// every run is valid. (In the installed-input regime convergence is
// typically far below the bound — see DESIGN.md §6 and bench E7.)
#include "bench_common.hpp"
#include "util/rng.hpp"

namespace apram::bench {
namespace {

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchObs bobs("bench_e1_agreement_upper", flags);
  const auto seeds = flags.get_int("seeds", 20);
  flags.check_unused();

  Table table("E1: Theorem 5 upper bound — max steps/process vs bound",
              {"n", "delta/eps", "sched", "max_steps", "bound", "max_round",
               "valid_runs"});

  for (int n : {2, 4, 8, 16}) {
    for (int log_ratio : {2, 6, 10, 14}) {
      const double delta = 1.0;
      const double eps = delta / std::pow(2.0, log_ratio);
      const double bound = (2.0 * n + 1.0) * (log_ratio + 3.0) + 8.0 * n;

      // Inputs spread across [0, delta] to realize the full range.
      std::vector<double> inputs;
      for (int i = 0; i < n; ++i) {
        inputs.push_back(delta * static_cast<double>(i) /
                         std::max(1, n - 1));
      }

      // Round-robin.
      {
        sim::RoundRobinScheduler rr;
        const auto out = run_agreement_regime(inputs, eps, rr);
        APRAM_CHECK_MSG(out.max_steps_per_proc <= bound,
                        "Theorem 5 bound violated (round-robin)");
        table.add(n)
            .add(std::int64_t{1} << log_ratio)
            .add("rr")
            .add(out.max_steps_per_proc)
            .add(bound, 0)
            .add(out.max_round)
            .add(out.valid ? "1/1" : "0/1")
            .end_row();
      }

      // Worst over random schedules.
      std::uint64_t worst_steps = 0;
      std::int64_t worst_round = 0;
      int valid = 0;
      for (std::int64_t seed = 0; seed < seeds; ++seed) {
        sim::RandomScheduler rs(static_cast<std::uint64_t>(seed),
                                seed % 2 ? 0.8 : 0.0);
        const auto out = run_agreement_regime(inputs, eps, rs);
        APRAM_CHECK_MSG(out.max_steps_per_proc <= bound,
                        "Theorem 5 bound violated (random)");
        worst_steps = std::max(worst_steps, out.max_steps_per_proc);
        worst_round = std::max(worst_round, out.max_round);
        valid += out.valid ? 1 : 0;
      }
      table.add(n)
          .add(std::int64_t{1} << log_ratio)
          .add("rnd*" + std::to_string(seeds))
          .add(worst_steps)
          .add(bound, 0)
          .add(worst_round)
          .add(std::to_string(valid) + "/" + std::to_string(seeds))
          .end_row();
      bobs.registry()
          .gauge("e1.n" + std::to_string(n) + ".r" +
                 std::to_string(std::int64_t{1} << log_ratio) + ".max_steps")
          .set(static_cast<std::int64_t>(worst_steps));
    }
  }
  table.print(std::cout);
  bobs.emit();
  std::cout << "\nE1 PASS: all runs valid and within the Theorem 5 bound.\n";
  return 0;
}

}  // namespace
}  // namespace apram::bench

int main(int argc, char** argv) { return apram::bench::run(argc, argv); }
