// Micro-benchmarks (google-benchmark) for the real-thread runtime: register
// read/write latency, snapshot scan/update latency vs n, counter ops.
// Single-threaded latency numbers — the multi-thread throughput shapes live
// in bench_e5_snapshot_compare.
#include <benchmark/benchmark.h>

#include <iostream>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/rt_probe.hpp"
#include "rt/fast_counter_rt.hpp"
#include "snapshot/lattice_scan.hpp"
#include "rt/register.hpp"

namespace apram::rt {
namespace {

// Shared registry so the probed benchmarks below feed the metrics artifact
// written by main(). Event counts depend on benchmark iteration counts and
// are interesting only as magnitudes, not exact values.
obs::Registry& bench_registry() {
  static obs::Registry reg;
  return reg;
}

void BM_RegisterRead(benchmark::State& state) {
  SWMRRegister<std::int64_t> reg(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.read());
  }
}
BENCHMARK(BM_RegisterRead);

void BM_RegisterWrite(benchmark::State& state) {
  SWMRRegister<std::int64_t> reg(0);
  std::int64_t i = 0;
  for (auto _ : state) {
    reg.write(++i);
  }
}
BENCHMARK(BM_RegisterWrite);

// Read-path cost of bounded reclamation, measured head to head: the default
// register's acquire/release read (one fetch_add + one fetch_sub on top of
// the copy) against the grow-only register's plain acquire-load. The delta
// is the per-read price of bounded memory — the regression gate in CI
// (tools/check_t1_regression.py) bounds the end-to-end effect at 10%.
void BM_RegisterReadUnbounded(benchmark::State& state) {
  UnboundedSWMRRegister<std::int64_t> reg(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.read());
  }
}
BENCHMARK(BM_RegisterReadUnbounded);

// Write-path comparison: arena alloc(+recycle)/publish/transfer against the
// grow-only deque push_back + release store. The unbounded variant's memory
// grows with the iteration count (this is exactly the leak the arena
// removes), so keep an eye on benchmark-time RSS if you raise iterations.
void BM_RegisterWriteUnbounded(benchmark::State& state) {
  UnboundedSWMRRegister<std::int64_t> reg(0);
  std::int64_t i = 0;
  for (auto _ : state) {
    reg.write(++i);
  }
}
BENCHMARK(BM_RegisterWriteUnbounded);

void BM_CasRegisterSwapBounded(benchmark::State& state) {
  BoundedCASValueRegister<std::int64_t> reg(1, 0);
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.compare_exchange(0, i, i + 1));
    ++i;
  }
}
BENCHMARK(BM_CasRegisterSwapBounded);

void BM_CasRegisterSwapUnbounded(benchmark::State& state) {
  UnboundedCASValueRegister<std::int64_t> reg(1, 0);
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.compare_exchange(0, i, i + 1));
    ++i;
  }
}
BENCHMARK(BM_CasRegisterSwapUnbounded);

// Same register paths with an obs::RtProbe attached: the delta against
// BM_RegisterRead/Write is the cost of the one-relaxed-fetch_add hot path
// (the budget documented in DESIGN.md).
void BM_RegisterReadProbed(benchmark::State& state) {
  auto& reg = bench_registry();
  obs::RtProbe probe{.reads = &reg.counter("micro.probed.reads"),
                     .writes = &reg.counter("micro.probed.writes"),
                     .cas_ops = &reg.counter("micro.probed.cas"),
                     .object = 0};
  SWMRRegister<std::int64_t> r(42);
  r.attach_probe(&probe);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.read());
  }
}
BENCHMARK(BM_RegisterReadProbed);

void BM_RegisterWriteProbed(benchmark::State& state) {
  auto& reg = bench_registry();
  obs::RtProbe probe{.reads = &reg.counter("micro.probed.reads"),
                     .writes = &reg.counter("micro.probed.writes"),
                     .cas_ops = &reg.counter("micro.probed.cas"),
                     .object = 0};
  SWMRRegister<std::int64_t> r(0);
  r.attach_probe(&probe);
  std::int64_t i = 0;
  for (auto _ : state) {
    r.write(++i);
  }
}
BENCHMARK(BM_RegisterWriteProbed);

void BM_SnapshotUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  AtomicSnapshotRT<std::int64_t> snap(n);
  std::int64_t i = 0;
  for (auto _ : state) {
    snap.update(0, ++i);
  }
  state.SetLabel("n=" + std::to_string(n));
}
BENCHMARK(BM_SnapshotUpdate)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_SnapshotScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  AtomicSnapshotRT<std::int64_t> snap(n);
  for (int p = 0; p < n; ++p) snap.update(p, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.scan(0));
  }
  state.SetLabel("n=" + std::to_string(n) + " (expect ~n^2 growth)");
}
BENCHMARK(BM_SnapshotScan)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_FastCounterInc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  FastCounterRT ctr(n);
  for (auto _ : state) {
    ctr.inc(0, 1);
  }
}
BENCHMARK(BM_FastCounterInc)->Arg(4)->Arg(16);

void BM_FastCounterRead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  FastCounterRT ctr(n);
  for (int p = 0; p < n; ++p) ctr.inc(p, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctr.read(0));
  }
}
BENCHMARK(BM_FastCounterRead)->Arg(4)->Arg(16);

}  // namespace
}  // namespace apram::rt

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  apram::obs::write_metrics_json("bench_micro_rt.metrics.json",
                                 apram::rt::bench_registry(), nullptr,
                                 "bench_micro_rt");
  std::cout << "metrics artifact: bench_micro_rt.metrics.json\n";
  return 0;
}
