// Micro-benchmarks (google-benchmark) for the real-thread runtime: register
// read/write latency, snapshot scan/update latency vs n, counter ops.
// Single-threaded latency numbers — the multi-thread throughput shapes live
// in bench_e5_snapshot_compare.
#include <benchmark/benchmark.h>

#include "rt/fast_counter_rt.hpp"
#include "rt/lattice_scan_rt.hpp"
#include "rt/register.hpp"

namespace apram::rt {
namespace {

void BM_RegisterRead(benchmark::State& state) {
  SWMRRegister<std::int64_t> reg(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.read());
  }
}
BENCHMARK(BM_RegisterRead);

void BM_RegisterWrite(benchmark::State& state) {
  SWMRRegister<std::int64_t> reg(0);
  std::int64_t i = 0;
  for (auto _ : state) {
    reg.write(++i);
  }
}
BENCHMARK(BM_RegisterWrite);

void BM_SnapshotUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  AtomicSnapshotRT<std::int64_t> snap(n);
  std::int64_t i = 0;
  for (auto _ : state) {
    snap.update(0, ++i);
  }
  state.SetLabel("n=" + std::to_string(n));
}
BENCHMARK(BM_SnapshotUpdate)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_SnapshotScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  AtomicSnapshotRT<std::int64_t> snap(n);
  for (int p = 0; p < n; ++p) snap.update(p, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.scan(0));
  }
  state.SetLabel("n=" + std::to_string(n) + " (expect ~n^2 growth)");
}
BENCHMARK(BM_SnapshotScan)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_FastCounterInc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  FastCounterRT ctr(n);
  for (auto _ : state) {
    ctr.inc(0, 1);
  }
}
BENCHMARK(BM_FastCounterInc)->Arg(4)->Arg(16);

void BM_FastCounterRead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  FastCounterRT ctr(n);
  for (int p = 0; p < n; ++p) ctr.inc(p, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctr.read(0));
  }
}
BENCHMARK(BM_FastCounterRead)->Arg(4)->Arg(16);

}  // namespace
}  // namespace apram::rt

BENCHMARK_MAIN();
