// Exhaustive schedule exploration: proofs-by-enumeration at small sizes.
//
// Where the randomized suites sample schedules, these tests enumerate EVERY
// interleaving of small programs and assert the paper's properties on each:
// Lemma 32 comparability for the scan, linearizability invariants for the
// counter, commit-adopt coherence, and the lost-update behaviour of naive
// registers (as a sanity check that the explorer actually visits the bad
// interleavings).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "objects/adopt_commit.hpp"
#include "objects/fast_counter.hpp"
#include "sim/explore.hpp"
#include "snapshot/atomic_snapshot.hpp"

namespace apram {
namespace {

using sim::Context;
using sim::Execution;
using sim::ExecutionFactory;
using sim::ProcessTask;
using sim::World;

// ---------------------------------------------------------------------------
// Explorer mechanics
// ---------------------------------------------------------------------------

// Two processes, two steps each: the interleavings are the 4!/(2!2!) = 6
// shuffles of AABB.
struct TinyExec final : Execution {
  TinyExec() : w(2) {
    reg = &w.make_register<int>("r", 0);
    for (int pid = 0; pid < 2; ++pid) {
      w.spawn(pid, [this](Context ctx) -> ProcessTask {
        co_await ctx.read(*reg);
        co_await ctx.read(*reg);
      });
    }
  }
  World& world() override { return w; }
  World w;
  sim::Register<int>* reg;
};

TEST(Explore, CountsAllInterleavings) {
  std::set<std::vector<int>> schedules;
  const auto stats = sim::explore_all_schedules(
      [] { return std::make_unique<TinyExec>(); },
      [&](Execution&, const std::vector<int>& schedule) {
        schedules.insert(schedule);
      });
  EXPECT_EQ(stats.executions, 6u);
  EXPECT_EQ(schedules.size(), 6u);
  EXPECT_EQ(stats.max_depth, 4u);
}

// The classic lost-update program: the explorer must find both outcomes.
struct LostUpdateExec final : Execution {
  LostUpdateExec() : w(2) {
    reg = &w.make_register<int>("r", 0);
    for (int pid = 0; pid < 2; ++pid) {
      w.spawn(pid, [this](Context ctx) -> ProcessTask {
        const int v = co_await ctx.read(*reg);
        co_await ctx.write(*reg, v + 1);
      });
    }
  }
  World& world() override { return w; }
  World w;
  sim::Register<int>* reg;
};

TEST(Explore, FindsBothLostUpdateOutcomes) {
  std::set<int> outcomes;
  sim::explore_all_schedules(
      [] { return std::make_unique<LostUpdateExec>(); },
      [&](Execution& e, const std::vector<int>&) {
        outcomes.insert(static_cast<LostUpdateExec&>(e).reg->peek());
      });
  EXPECT_EQ(outcomes, (std::set<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Lemma 32 comparability — every schedule, two processes.
// ---------------------------------------------------------------------------

struct SnapExec final : Execution {
  using L = TaggedVectorLattice<int>;
  SnapExec() : w(2), snap(w, 2, "s") {
    // P0: update then tagged scan; P1: tagged scan then update then scan.
    w.spawn(0, [this](Context ctx) -> ProcessTask {
      co_await snap.update(ctx, 10);
      views.push_back(co_await snap.scan_tagged(ctx));
    });
    w.spawn(1, [this](Context ctx) -> ProcessTask {
      views.push_back(co_await snap.scan_tagged(ctx));
      co_await snap.update(ctx, 20);
      views.push_back(co_await snap.scan_tagged(ctx));
    });
  }
  World& world() override { return w; }
  World w;
  AtomicSnapshotSim<int> snap;
  std::vector<L::Value> views;
};

TEST(Explore, ScanComparabilityHoldsOnEverySchedule) {
  using L = SnapExec::L;
  const auto stats = sim::explore_all_schedules(
      [] { return std::make_unique<SnapExec>(); },
      [&](Execution& e, const std::vector<int>&) {
        const auto& views = static_cast<SnapExec&>(e).views;
        for (std::size_t i = 0; i < views.size(); ++i) {
          for (std::size_t j = i + 1; j < views.size(); ++j) {
            ASSERT_TRUE(L::leq(views[i], views[j]) ||
                        L::leq(views[j], views[i]))
                << "incomparable scans found by exhaustive exploration";
          }
        }
      });
  // Sanity: this is a real search, thousands of executions.
  EXPECT_GT(stats.executions, 1000u);
}

// ---------------------------------------------------------------------------
// FastCounter conservation — every schedule.
// ---------------------------------------------------------------------------

struct CounterExec final : Execution {
  CounterExec() : w(2), ctr(w, 2, "c") {
    for (int pid = 0; pid < 2; ++pid) {
      w.spawn(pid, [this, pid](Context ctx) -> ProcessTask {
        co_await ctr.inc(ctx, 1);
        reads[static_cast<std::size_t>(pid)] = co_await ctr.read(ctx);
      });
    }
  }
  World& world() override { return w; }
  World w;
  FastCounterSim ctr;
  std::int64_t reads[2] = {-1, -1};
};

TEST(Explore, FastCounterReadsAlwaysBetweenOwnAndTotal) {
  sim::explore_all_schedules(
      [] { return std::make_unique<CounterExec>(); },
      [&](Execution& e, const std::vector<int>&) {
        const auto& ce = static_cast<CounterExec&>(e);
        for (int pid = 0; pid < 2; ++pid) {
          ASSERT_GE(ce.reads[pid], 1);  // own increment visible
          ASSERT_LE(ce.reads[pid], 2);  // no phantom increments
        }
      });
}

// ---------------------------------------------------------------------------
// Commit-adopt coherence (CA1–CA3) — every schedule, two processes.
// ---------------------------------------------------------------------------

struct CaExec final : Execution {
  CaExec(std::int64_t v0, std::int64_t v1) : w(2), ca(w, 2, "ca") {
    const std::int64_t inputs[2] = {v0, v1};
    for (int pid = 0; pid < 2; ++pid) {
      const std::int64_t v = inputs[pid];
      w.spawn(pid, [this, pid, v](Context ctx) -> ProcessTask {
        results[static_cast<std::size_t>(pid)] = co_await ca.propose(ctx, v);
      });
    }
  }
  World& world() override { return w; }
  World w;
  AdoptCommitSim ca;
  CaResult results[2];
};

TEST(Explore, CommitAdoptCoherenceOnEverySchedule) {
  // Differing proposals: CA1 (validity) + CA2 (coherence) on every schedule.
  sim::explore_all_schedules(
      [] { return std::make_unique<CaExec>(5, 9); },
      [&](Execution& e, const std::vector<int>&) {
        const auto& r = static_cast<CaExec&>(e).results;
        for (int pid = 0; pid < 2; ++pid) {
          ASSERT_TRUE(r[pid].value == 5 || r[pid].value == 9);  // CA1
        }
        const bool committed0 = r[0].verdict == CaVerdict::kCommit;
        const bool committed1 = r[1].verdict == CaVerdict::kCommit;
        if (committed0 || committed1) {
          ASSERT_EQ(r[0].value, r[1].value)  // CA2
              << "commit without coherence";
        }
      });
}

TEST(Explore, CommitAdoptConvergenceOnEverySchedule) {
  // Equal proposals: CA3 — everyone commits that value, on every schedule.
  sim::explore_all_schedules(
      [] { return std::make_unique<CaExec>(7, 7); },
      [&](Execution& e, const std::vector<int>&) {
        const auto& r = static_cast<CaExec&>(e).results;
        for (int pid = 0; pid < 2; ++pid) {
          ASSERT_EQ(r[pid].verdict, CaVerdict::kCommit);
          ASSERT_EQ(r[pid].value, 7);
        }
      });
}

}  // namespace
}  // namespace apram
