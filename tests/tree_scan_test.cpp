// TreeScan — the f-array-style wait-free snapshot (update O(log n), scan
// O(1)) — exercised across every verification tier the repo has:
//
//   * exact solo step counts against the closed forms, n ∈ {2, 4, 8, 16}
//   * the contention bound 1 + 8·⌈log2 n⌉ under randomized adversaries
//   * exhaustive schedule enumeration at n = 2 and a cheap n = 3 variant
//   * a seeded fault campaign (certify_wait_freedom) with per-pid bounds
//   * crash schedules injected at construction via World::Options
//   * sim-vs-rt access-count parity through the shared api backends
//
// The same TreeScan template instantiates against api::SimBackend here and
// api::RtBackend in the rt tests/benchmarks — one algorithm, two backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/rt_backend.hpp"
#include "api/sim_backend.hpp"
#include "fault/certifier.hpp"
#include "fault_seeds.hpp"
#include "obs/metrics.hpp"
#include "sim/explore.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "snapshot/tree_snapshot.hpp"

namespace apram::snapshot {
namespace {

using sim::Context;
using sim::Execution;
using sim::ProcessTask;
using sim::World;

using MaxL = MaxLattice<std::int64_t>;
using SimTree = TreeScan<api::SimBackend, MaxL>;
using SimSnap = TreeSnapshot<api::SimBackend, int>;

// ---------------------------------------------------------------------------
// Closed forms
// ---------------------------------------------------------------------------

TEST(TreeScan, ClosedFormsMatchTheStepComplexityTable) {
  EXPECT_EQ(tree_scan_height(1), 0);
  EXPECT_EQ(tree_scan_height(2), 1);
  EXPECT_EQ(tree_scan_height(3), 2);
  EXPECT_EQ(tree_scan_height(4), 2);
  EXPECT_EQ(tree_scan_height(5), 3);
  EXPECT_EQ(tree_scan_height(8), 3);
  EXPECT_EQ(tree_scan_height(16), 4);
  EXPECT_EQ(tree_scan_update_solo_accesses(4), 9u);    // 1 + 4·2
  EXPECT_EQ(tree_scan_update_max_accesses(4), 17u);    // 1 + 8·2
  EXPECT_EQ(tree_scan_update_solo_accesses(16), 17u);  // 1 + 4·4
  EXPECT_EQ(tree_scan_scan_accesses(), 1u);
}

// ---------------------------------------------------------------------------
// Sequential semantics (sim, solo runs)
// ---------------------------------------------------------------------------

TEST(TreeScan, SequentialUpdatesReachTheRoot) {
  for (int n : {1, 2, 3, 4, 5, 8}) {  // pow2 and padded shapes
    World w(n);
    api::SimBackend::Mem mem(w, "t");
    SimTree tree(mem, n);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        co_await tree.update(ctx, 100 + pid);
      });
      w.run_solo(pid);
    }
    std::int64_t got = -1;
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      got = co_await tree.scan(ctx);
    });
    w.run_solo(0);
    EXPECT_EQ(got, 100 + (n - 1)) << "n=" << n;
  }
}

TEST(TreeScan, SnapshotViewUnpacksPerProcessSlots) {
  const int n = 3;
  World w(n);
  api::SimBackend::Mem mem(w, "snap");
  SimSnap snap(mem, n);
  w.spawn(0, [&](Context ctx) -> ProcessTask { co_await snap.update(ctx, 7); });
  w.run_solo(0);
  w.spawn(2, [&](Context ctx) -> ProcessTask { co_await snap.update(ctx, 9); });
  w.run_solo(2);
  SimSnap::View view;
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    view = co_await snap.scan(ctx);
  });
  w.run_solo(1);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 7);
  EXPECT_FALSE(view[1].has_value());
  EXPECT_EQ(view[2], 9);
}

// ---------------------------------------------------------------------------
// Step counts: solo updates hit the closed form exactly; scans cost one
// access at every n (the acceptance criterion for n ∈ {2, 4, 8, 16}).
// ---------------------------------------------------------------------------

TEST(TreeScan, SoloUpdateMatchesClosedFormAndScanIsOneAccess) {
  std::set<std::uint64_t> scan_costs;
  for (int n : {2, 4, 8, 16}) {
    World w(n);
    api::SimBackend::Mem mem(w, "t");
    SimTree tree(mem, n);

    const auto before_update = w.counts(0);
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      co_await tree.update(ctx, 42);
    });
    w.run_solo(0);
    const auto after_update = w.counts(0);
    EXPECT_EQ(after_update.total() - before_update.total(),
              tree_scan_update_solo_accesses(n))
        << "n=" << n;
    // The split: h reads of the node + 2h child reads, 1 leaf write + h CAS.
    const auto h = static_cast<std::uint64_t>(tree_scan_height(n));
    EXPECT_EQ(after_update.reads - before_update.reads, 3 * h) << "n=" << n;
    EXPECT_EQ(after_update.writes - before_update.writes, 1 + h) << "n=" << n;

    const auto before_scan = w.counts(0);
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      (void)co_await tree.scan(ctx);
    });
    w.run_solo(0);
    const auto after_scan = w.counts(0);
    const std::uint64_t scan_cost = after_scan.total() - before_scan.total();
    EXPECT_EQ(scan_cost, tree_scan_scan_accesses()) << "n=" << n;
    scan_costs.insert(scan_cost);
  }
  // Scan cost is independent of n: one distinct value across all sizes.
  EXPECT_EQ(scan_costs.size(), 1u);
}

TEST(TreeScan, ContendedUpdatesStayWithinTheDoubleRefreshBound) {
  // The helping lemma caps every update at 1 + 8·height() accesses no matter
  // the schedule; hammer it with sticky and fine-grained random adversaries.
  for (int n : {4, 8}) {
    for (const std::uint64_t seed : {11u, 12u, 13u}) {
      for (const double sticky : {0.0, 0.6}) {
        World w(n);
        api::SimBackend::Mem mem(w, "t");
        SimTree tree(mem, n);
        const int kOps = 4;
        for (int pid = 0; pid < n; ++pid) {
          w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
            for (int i = 0; i < kOps; ++i) {
              co_await tree.update(ctx, pid * 100 + i);
            }
          });
        }
        sim::RandomScheduler rs(seed, sticky);
        ASSERT_TRUE(w.run(rs).all_done);
        for (int pid = 0; pid < n; ++pid) {
          EXPECT_LE(w.counts(pid).total(),
                    kOps * tree_scan_update_max_accesses(n))
              << "n=" << n << " pid=" << pid << " seed=" << seed;
        }
        std::int64_t got = -1;
        w.spawn(0, [&](Context ctx) -> ProcessTask {
          got = co_await tree.scan(ctx);
        });
        w.run_solo(0);
        EXPECT_EQ(got, (n - 1) * 100 + (kOps - 1));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized comparability: tagged root reads form a chain (Lemma 32 shape).
// ---------------------------------------------------------------------------

TEST(TreeScan, TaggedScansArePairwiseComparableUnderRandomSchedules) {
  using L = TaggedVectorLattice<int>;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const int n = 4;
    World w(n);
    api::SimBackend::Mem mem(w, "snap");
    SimSnap snap(mem, n);
    std::vector<L::Value> views;
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        co_await snap.update(ctx, pid * 10);
        views.push_back(co_await snap.tree().scan(ctx));
        co_await snap.update(ctx, pid * 10 + 1);
        views.push_back(co_await snap.tree().scan(ctx));
      });
    }
    sim::RandomScheduler rs(seed, /*stickiness=*/0.3);
    ASSERT_TRUE(w.run(rs).all_done);
    for (std::size_t i = 0; i < views.size(); ++i) {
      for (std::size_t j = i + 1; j < views.size(); ++j) {
        EXPECT_TRUE(L::leq(views[i], views[j]) || L::leq(views[j], views[i]))
            << "incomparable root reads, seed=" << seed;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Exhaustive enumeration — proofs-by-enumeration at small sizes.
// ---------------------------------------------------------------------------

struct TreePairExec final : Execution {
  using L = TaggedVectorLattice<int>;
  TreePairExec() : w(2), mem(w, "x"), snap(mem, 2) {
    w.spawn(0, [this](Context ctx) -> ProcessTask {
      co_await snap.update(ctx, 10);
      views[0] = co_await snap.tree().scan(ctx);
    });
    w.spawn(1, [this](Context ctx) -> ProcessTask {
      co_await snap.update(ctx, 20);
      views[1] = co_await snap.tree().scan(ctx);
    });
  }
  World& world() override { return w; }
  World w;
  api::SimBackend::Mem mem;
  SimSnap snap;
  L::Value views[2];
};

TEST(TreeScanExplore, ComparabilityAndOwnVisibilityOnEverySchedule) {
  using L = TreePairExec::L;
  const auto stats = sim::explore_all_schedules(
      [] { return std::make_unique<TreePairExec>(); },
      [&](Execution& e, const std::vector<int>&) {
        const auto& x = static_cast<TreePairExec&>(e);
        // Own contribution is at the root once update() returns (helping
        // lemma), and the two root reads are always comparable.
        for (int pid = 0; pid < 2; ++pid) {
          const auto own = L::singleton(2, static_cast<std::size_t>(pid), 1,
                                        10 * (pid + 1));
          ASSERT_TRUE(L::leq(own, x.views[pid])) << "pid " << pid;
        }
        ASSERT_TRUE(L::leq(x.views[0], x.views[1]) ||
                    L::leq(x.views[1], x.views[0]));
      });
  EXPECT_GT(stats.executions, 1000u);  // a real search, not a smoke test
}

// n = 3 exercises the padded tree (m = 4, one free padding leaf). One
// updater and two scanners keep the schedule space small: the solo update
// is exactly 9 accesses (no CAS contention from readers), so the space is
// 12!/(9!·2!·1!) = 660 interleavings.
struct TreePaddedExec final : Execution {
  TreePaddedExec() : w(3), mem(w, "x"), tree(mem, 3) {
    w.spawn(0, [this](Context ctx) -> ProcessTask {
      co_await tree.update(ctx, 10);
    });
    w.spawn(1, [this](Context ctx) -> ProcessTask {
      scans[0] = co_await tree.scan(ctx);
      scans[1] = co_await tree.scan(ctx);
    });
    w.spawn(2, [this](Context ctx) -> ProcessTask {
      scans[2] = co_await tree.scan(ctx);
    });
  }
  World& world() override { return w; }
  World w;
  api::SimBackend::Mem mem;
  SimTree tree;
  std::int64_t scans[3] = {-1, -1, -1};
};

TEST(TreeScanExplore, PaddedTreeScansAreMonotoneOnEverySchedule) {
  const std::int64_t bot = MaxL::bottom();
  const auto stats = sim::explore_all_schedules(
      [] { return std::make_unique<TreePaddedExec>(); },
      [&](Execution& e, const std::vector<int>&) {
        const auto& x = static_cast<TreePaddedExec&>(e);
        for (const std::int64_t s : {x.scans[0], x.scans[1], x.scans[2]}) {
          ASSERT_TRUE(s == bot || s == 10);  // nothing else ever at the root
        }
        ASSERT_LE(x.scans[0], x.scans[1]);  // same-process scans are monotone
      });
  EXPECT_EQ(stats.executions, 660u);
}

// ---------------------------------------------------------------------------
// Fault campaign: wait-freedom certification with exact per-pid bounds.
// ---------------------------------------------------------------------------

// n = 4 (height 2): three updaters (one update each: ≤ 6h = 12 reads,
// ≤ 1 + 2h = 5 writes) and a scanner (two scans: 2 reads, 0 writes).
struct TreeCampaignExec final : Execution {
  TreeCampaignExec() : w(4), mem(w, "t"), tree(mem, 4) {
    for (int pid = 0; pid < 3; ++pid) {
      w.spawn(pid, [this, pid](Context ctx) -> ProcessTask {
        co_await tree.update(ctx, 100 + pid);
      });
    }
    w.spawn(3, [this](Context ctx) -> ProcessTask {
      scans[0] = co_await tree.scan(ctx);
      scans[1] = co_await tree.scan(ctx);
    });
  }
  World& world() override { return w; }
  World w;
  api::SimBackend::Mem mem;
  SimTree tree;
  std::int64_t scans[2] = {-1, -1};
};

TEST(TreeScanFault, CampaignCertifiesLogarithmicStepBounds) {
  std::uint64_t total_schedules = 0;
  std::uint64_t total_faults = 0;
  for (const std::uint64_t base : fault_seeds::kCampaignBaseSeeds) {
    fault::CampaignOptions opts;
    opts.schedules = 60;
    opts.base_seed = base;
    opts.plan.never_crash = {3};  // the scanner is the measured process
    const fault::CampaignResult result = fault::certify_wait_freedom(
        [] { return std::make_unique<TreeCampaignExec>(); },
        fault::step_bound_judge({{12, 5}, {12, 5}, {12, 5}, {2, 0}}), opts);
    EXPECT_TRUE(result.certified())
        << "base_seed=" << base << ": "
        << (result.violations.empty() ? "no schedules ran"
                                      : result.violations[0].what);
    total_schedules += result.schedules_run;
    total_faults += result.crashes_fired + result.stall_deflections +
                    result.burst_grants;
  }
  EXPECT_GE(total_schedules, 300u);
  EXPECT_GT(total_faults, 0u);  // an adversary that never bites proves little
}

// ---------------------------------------------------------------------------
// Crash schedules via World::Options: a crashed updater's published leaf is
// recovered by its sibling's refresh (the helping lemma, crash flavour).
// ---------------------------------------------------------------------------

TEST(TreeScanFault, SiblingRefreshRecoversACrashedUpdatersLeaf) {
  const int n = 4;
  // pid 1 dies right after its leaf write (access 1 of its update).
  World w(n, {.crashes = {{.pid = 1, .at_access = 1}}});
  api::SimBackend::Mem mem(w, "t");
  SimTree tree(mem, n);
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    co_await tree.update(ctx, 999);
  });
  w.run_solo(1);  // stops at the crash; 999 sits in leaf 1 only
  std::int64_t before = -1;
  w.spawn(3, [&](Context ctx) -> ProcessTask {
    before = co_await tree.scan(ctx);
  });
  w.run_solo(3);
  EXPECT_EQ(before, MaxL::bottom());  // not yet propagated: crash was real

  // pid 0 shares the level-1 parent with pid 1, so its refresh reads the
  // orphaned leaf and carries 999 to the root.
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await tree.update(ctx, 100);
  });
  w.run_solo(0);
  std::int64_t after = -1;
  w.spawn(3, [&](Context ctx) -> ProcessTask {
    after = co_await tree.scan(ctx);
  });
  w.run_solo(3);
  EXPECT_EQ(after, 999);
}

// ---------------------------------------------------------------------------
// Sim-vs-rt parity: the same template over the two backends performs the
// same register accesses (rt CAS is split out of writes by RtProbe, so the
// comparison is rt.writes + rt.cas == sim writes).
// ---------------------------------------------------------------------------

TEST(TreeScan, SimAndRtBackendsPerformTheSameAccesses) {
  for (int n : {2, 4, 8}) {
    World w(n);
    api::SimBackend::Mem mem(w, "t");
    SimTree tree(mem, n);
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      co_await tree.update(ctx, 5);
      (void)co_await tree.scan(ctx);
    });
    w.run_solo(0);
    const auto sim_counts = w.counts(0);

    obs::Registry reg;
    TreeScanRT<MaxL> rt_tree(n);
    rt_tree.attach_obs(reg, "tree");
    rt_tree.update(0, 5);
    (void)rt_tree.scan(0);
    const std::uint64_t rt_reads = reg.counter("rt.tree.reads").value();
    const std::uint64_t rt_writes = reg.counter("rt.tree.writes").value();
    const std::uint64_t rt_cas = reg.counter("rt.tree.cas").value();
    EXPECT_EQ(rt_reads, sim_counts.reads) << "n=" << n;
    EXPECT_EQ(rt_writes + rt_cas, sim_counts.writes) << "n=" << n;
  }
}

TEST(TreeScan, RtWrappersMatchSequentialSemantics) {
  TreeSnapshotRT<int> snap(5);  // padded: m = 8
  snap.update(0, 1);
  snap.update(4, 9);
  const auto view = snap.scan(2);
  ASSERT_EQ(view.size(), 5u);
  EXPECT_EQ(view[0], 1);
  EXPECT_FALSE(view[1].has_value());
  EXPECT_EQ(view[4], 9);

  TreeScanRT<MaxL> solo(1);  // degenerate tree: the leaf is the root
  EXPECT_EQ(solo.scan(0), MaxL::bottom());
  solo.update(0, 3);
  EXPECT_EQ(solo.update_and_scan(0, 7), 7);
  EXPECT_EQ(solo.scan(0), 7);
}

}  // namespace
}  // namespace apram::snapshot
