// Tests for the extension modules: pseudo read-modify-write objects
// (Anderson & Grošelj, §2), lattice agreement (Attiya–Herlihy–Rachman, §2),
// the vector-clock lattice, and the end-to-end linearizability of the
// snapshot object itself (checked against a sequential snapshot spec).
#include <gtest/gtest.h>

#include <vector>

#include "algebra/check.hpp"
#include "lincheck/checker.hpp"
#include "objects/pseudo_rmw.hpp"
#include "sim/scheduler.hpp"
#include "snapshot/atomic_snapshot.hpp"
#include "snapshot/lattice_agreement.hpp"
#include "util/rng.hpp"

namespace apram {
namespace {

using sim::Context;
using sim::ProcessTask;
using sim::World;

// ---------------------------------------------------------------------------
// Pseudo read-modify-write
// ---------------------------------------------------------------------------

// The PRMW contract: the family's functions must commute semantically.
template <class F>
void check_family_commutes(Rng& rng, const std::vector<typename F::Fn>& fns) {
  for (int t = 0; t < 200; ++t) {
    auto s = F::initial();
    for (std::uint64_t i = 0, len = rng.below(4); i < len; ++i) {
      s = F::apply_fn(s, fns[rng.below(fns.size())]);
    }
    const auto& f = fns[rng.below(fns.size())];
    const auto& g = fns[rng.below(fns.size())];
    EXPECT_EQ(F::apply_fn(F::apply_fn(s, f), g),
              F::apply_fn(F::apply_fn(s, g), f));
  }
}

TEST(PseudoRmw, FamiliesCommute) {
  Rng rng(901);
  check_family_commutes<AddFamily>(rng, {1, -3, 7, 100});
  check_family_commutes<ModMulFamily>(rng, {2, 3, 5, 999983});
  check_family_commutes<OrFamily>(rng, {0x1, 0xF0, 0x8000, 0xDEAD});
}

TEST(PseudoRmw, SpecSatisfiesProperty1) {
  using Spec = PrmwSpec<ModMulFamily>;
  Rng rng(902);
  for (int t = 0; t < 300; ++t) {
    auto s = ModMulFamily::initial();
    for (std::uint64_t i = 0, len = rng.below(4); i < len; ++i) {
      s = ModMulFamily::apply_fn(s, rng.range(2, 50));
    }
    const auto p = rng.chance(0.5) ? Spec::apply_fn(rng.range(2, 50))
                                   : Spec::read();
    const auto q = rng.chance(0.5) ? Spec::apply_fn(rng.range(2, 50))
                                   : Spec::read();
    const auto v = validate_pair_at<Spec>(s, p, q);
    EXPECT_TRUE(v.declared_consistent);
    EXPECT_TRUE(v.property1);
  }
}

TEST(PseudoRmw, SequentialModMul) {
  World w(1);
  PseudoRmwSim<ModMulFamily> obj(w, 1);
  std::int64_t v = 0;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await obj.apply(ctx, 6);
    co_await obj.apply(ctx, 7);
    v = co_await obj.read(ctx);
  });
  w.run_solo(0);
  EXPECT_EQ(v, 42);
}

TEST(PseudoRmw, ConcurrentAppliesAllTakeEffectExactlyOnce) {
  // Multiplication mod p is cancellative, so the final value certifies that
  // every apply took effect exactly once, in some order.
  const int n = 3;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    World w(n);
    PseudoRmwSim<ModMulFamily> obj(w, n);
    const std::int64_t multipliers[n] = {2, 3, 5};
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        co_await obj.apply(ctx, multipliers[pid]);
        co_await obj.apply(ctx, multipliers[pid]);
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);

    World w2(1);
    PseudoRmwSim<ModMulFamily> probe(w2, 1);
    (void)probe;  // read via a fresh single-process world is not possible —
    // instead re-spawn a reader in the same world.
    std::int64_t v = 0;
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      v = co_await obj.read(ctx);
    });
    w.run_solo(0);
    EXPECT_EQ(v, 2LL * 2 * 3 * 3 * 5 * 5) << "seed=" << seed;
  }
}

TEST(PseudoRmw, OrFamilyAccumulatesAllMasks) {
  const int n = 4;
  World w(n);
  PseudoRmwSim<OrFamily> obj(w, n);
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      co_await obj.apply(ctx, std::uint64_t{1} << pid);
    });
  }
  sim::RandomScheduler sched(77);
  ASSERT_TRUE(w.run(sched).all_done);
  std::uint64_t v = 0;
  w.spawn(0, [&](Context ctx) -> ProcessTask { v = co_await obj.read(ctx); });
  w.run_solo(0);
  EXPECT_EQ(v, 0xFu);
}

TEST(PseudoRmw, WaitFreeUnderCrashes) {
  const int n = 3;
  World w(n);
  PseudoRmwSim<AddFamily> obj(w, n);
  std::int64_t seen = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    for (int i = 0; i < 50; ++i) co_await obj.apply(ctx, 1);
  });
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    for (int i = 0; i < 50; ++i) co_await obj.apply(ctx, 1);
  });
  w.spawn(2, [&](Context ctx) -> ProcessTask {
    seen = co_await obj.read(ctx);
  });
  sim::RoundRobinScheduler rr;
  sim::CrashingScheduler sched(rr, {{5, 0}, {9, 1}});
  EXPECT_TRUE(w.run(sched).all_done);
  EXPECT_GE(seen, 0);
  EXPECT_LE(seen, 100);
}

// ---------------------------------------------------------------------------
// Lattice agreement
// ---------------------------------------------------------------------------

TEST(LatticeAgreement, TaskPropertiesOnSetUnion) {
  using L = SetUnionLattice<int>;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const int n = 4;
    World w(n);
    LatticeAgreementSim<L> la(w, n);
    std::vector<L::Value> proposals(n);
    std::vector<L::Value> learned(n);
    for (int pid = 0; pid < n; ++pid) {
      proposals[static_cast<std::size_t>(pid)] = {pid * 10, pid * 10 + 1};
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        L::Value mine = proposals[static_cast<std::size_t>(pid)];
        learned[static_cast<std::size_t>(pid)] =
            co_await la.propose(ctx, std::move(mine));
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);

    L::Value all = L::bottom();
    for (const auto& p : proposals) all = L::join(all, p);
    for (int i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      // LA1: own proposal included.
      EXPECT_TRUE(L::leq(proposals[ui], learned[ui])) << "seed=" << seed;
      // LA2: nothing invented.
      EXPECT_TRUE(L::leq(learned[ui], all)) << "seed=" << seed;
      // LA3: pairwise comparable (chain).
      for (int j = i + 1; j < n; ++j) {
        const auto uj = static_cast<std::size_t>(j);
        EXPECT_TRUE(L::leq(learned[ui], learned[uj]) ||
                    L::leq(learned[uj], learned[ui]))
            << "seed=" << seed;
      }
    }
  }
}

TEST(LatticeAgreement, VectorClockCutsFormAChain) {
  using L = VectorClockLattice;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const int n = 3;
    World w(n);
    LatticeAgreementSim<L> la(w, n);
    std::vector<L::Value> learned(n);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        learned[static_cast<std::size_t>(pid)] = co_await la.propose(
            ctx, L::tick(3, static_cast<std::size_t>(pid),
                         static_cast<std::uint64_t>(pid) + 1));
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const auto ui = static_cast<std::size_t>(i);
        const auto uj = static_cast<std::size_t>(j);
        EXPECT_TRUE(L::leq(learned[ui], learned[uj]) ||
                    L::leq(learned[uj], learned[ui]));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot linearizability, end to end through the checker
// ---------------------------------------------------------------------------

// Sequential specification of an n-slot snapshot object (n fixed small).
struct SnapshotSpec3 {
  static constexpr int kSlots = 3;
  enum class Kind : std::uint8_t { kUpdate, kScan };

  struct Invocation {
    Kind kind = Kind::kScan;
    int pid = 0;
    std::int64_t value = 0;

    friend bool operator==(const Invocation&, const Invocation&) = default;
  };
  using State = std::vector<std::int64_t>;  // -1 = empty slot
  using Response = std::vector<std::int64_t>;

  static State initial() { return State(kSlots, -1); }

  static std::pair<State, Response> apply(const State& s,
                                          const Invocation& inv) {
    if (inv.kind == Kind::kUpdate) {
      State next = s;
      next[static_cast<std::size_t>(inv.pid)] = inv.value;
      return {std::move(next), {}};
    }
    return {s, s};
  }

  // Unused by the checker but required by the SequentialSpec concept.
  static bool commutes(const Invocation&, const Invocation&) { return false; }
  static bool overwrites(const Invocation&, const Invocation&) {
    return false;
  }

  static Invocation update(int pid, std::int64_t v) {
    return {Kind::kUpdate, pid, v};
  }
  static Invocation scan() { return {Kind::kScan, 0, 0}; }
};

TEST(SnapshotLinearizability, RecordedHistoriesCheckOut) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const int n = 3;
    World w(n);
    AtomicSnapshotSim<std::int64_t> snap(w, n);
    HistoryRecorder<SnapshotSpec3> rec;
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        for (int k = 0; k < 2; ++k) {
          const std::int64_t v = pid * 10 + k;
          const auto t1 = rec.begin(pid, SnapshotSpec3::update(pid, v),
                                    ctx.world().global_step());
          co_await snap.update(ctx, v);
          rec.end(t1, {}, ctx.world().global_step());

          const auto t2 =
              rec.begin(pid, SnapshotSpec3::scan(), ctx.world().global_step());
          const auto view = co_await snap.scan(ctx);
          std::vector<std::int64_t> flat;
          for (const auto& slot : view) flat.push_back(slot.value_or(-1));
          rec.end(t2, flat, ctx.world().global_step());
        }
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);
    EXPECT_TRUE(is_linearizable<SnapshotSpec3>(rec.ops())) << "seed=" << seed;
  }
}

TEST(SnapshotLinearizability, CheckerRejectsTornSnapshots) {
  // Sanity: a hand-built "scan" that pairs values which never coexisted must
  // be rejected.
  using S = SnapshotSpec3;
  std::vector<RecordedOp<S>> h;
  h.push_back({0, S::update(0, 1), {}, 0, 1});
  h.push_back({1, S::update(1, 5), {}, 2, 3});
  h.push_back({0, S::update(0, 2), {}, 4, 5});
  // A scan after everything that claims to see (1, 5): value 1 in slot 0 was
  // overwritten by 2 before the scan began.
  h.push_back({2, S::scan(), {1, 5, -1}, 6, 7});
  EXPECT_FALSE(is_linearizable<S>(h));
  // The consistent view passes.
  h.back().resp = {2, 5, -1};
  EXPECT_TRUE(is_linearizable<S>(h));
}

}  // namespace
}  // namespace apram
