// Fixed seed list for the fault-injection campaigns. The nightly CI job and
// the local stress suite both iterate exactly these base seeds, so a nightly
// failure reproduces locally (and in a debugger) with no seed hunting. Add
// seeds; do not remove them — history should stay replayable.
#pragma once

#include <cstdint>

namespace apram::fault_seeds {

inline constexpr std::uint64_t kCampaignBaseSeeds[] = {
    0x5eed0001, 0x5eed0002, 0x5eed0003, 0x5eed0004, 0x5eed0005,
};

inline constexpr int kNumCampaignBaseSeeds =
    static_cast<int>(sizeof(kCampaignBaseSeeds) / sizeof(std::uint64_t));

// universal2 (normalized fast/slow-path simulator) campaigns — crash/stall
// plans aimed at helpers and the help-queue head.
inline constexpr std::uint64_t kU2CampaignSeeds[] = {
    0x5eed1001, 0x5eed1002, 0x5eed1003,
};

inline constexpr int kNumU2CampaignSeeds =
    static_cast<int>(sizeof(kU2CampaignSeeds) / sizeof(std::uint64_t));

// Polylog-queue campaigns — crash plans aimed at the helper mid-refresh
// (a victim dies between its leaf append and the end of its root walk, and
// survivors' double-refresh must still cover or exclude the orphan
// coherently).
inline constexpr std::uint64_t kQueueCampaignSeeds[] = {
    0x5eed2001, 0x5eed2002, 0x5eed2003,
};

inline constexpr int kNumQueueCampaignSeeds =
    static_cast<int>(sizeof(kQueueCampaignSeeds) / sizeof(std::uint64_t));

// Union-find campaigns — crashes between a link CAS and the matching
// link-counter farray write (num_sets must stay an overcount-free bound).
inline constexpr std::uint64_t kUnionFindCampaignSeeds[] = {
    0x5eed3001, 0x5eed3002, 0x5eed3003,
};

inline constexpr int kNumUnionFindCampaignSeeds =
    static_cast<int>(sizeof(kUnionFindCampaignSeeds) / sizeof(std::uint64_t));

}  // namespace apram::fault_seeds
