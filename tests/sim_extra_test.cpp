// Additional simulator coverage: multi-phase respawn, scheduler fallbacks
// and stickiness, trace/step-accounting invariants, and the interaction of
// crash injection with partial runs.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"
#include "sim/world.hpp"

namespace apram::sim {
namespace {

TEST(Respawn, SecondProgramRunsAfterFirstCompletes) {
  World w(1);
  auto& reg = w.make_register<int>("r", 0);
  w.spawn(0, [&](Context ctx) -> ProcessTask { co_await ctx.write(reg, 1); });
  w.run_solo(0);
  EXPECT_TRUE(w.done(0));

  w.spawn(0, [&](Context ctx) -> ProcessTask {
    const int v = co_await ctx.read(reg);
    co_await ctx.write(reg, v + 10);
  });
  EXPECT_FALSE(w.done(0));
  w.run_solo(0);
  EXPECT_EQ(reg.peek(), 11);
}

TEST(Respawn, StepCountsAccumulateAcrossPrograms) {
  World w(1);
  auto& reg = w.make_register<int>("r", 0);
  for (int phase = 0; phase < 3; ++phase) {
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      co_await ctx.write(reg, 1);
      co_await ctx.write(reg, 2);
    });
    w.run_solo(0);
  }
  EXPECT_EQ(w.counts(0).writes, 6u);
}

TEST(Respawn, RunningProcessCannotBeRespawned) {
  World w(1);
  auto& reg = w.make_register<int>("r", 0);
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await ctx.read(reg);
    co_await ctx.read(reg);
  });
  w.step(0);  // mid-program
  EXPECT_DEATH(
      w.spawn(0, [&](Context ctx) -> ProcessTask { co_await ctx.read(reg); }),
      "spawned while running");
}

TEST(Respawn, CrashedProcessCannotBeRespawned) {
  World w(1);
  auto& reg = w.make_register<int>("r", 0);
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    for (int i = 0; i < 5; ++i) co_await ctx.read(reg);
  });
  w.crash(0);
  EXPECT_DEATH(
      w.spawn(0, [&](Context ctx) -> ProcessTask { co_await ctx.read(reg); }),
      "crashed");
}

TEST(FixedScheduler, RoundRobinFallbackFinishesTheRun) {
  World w(2);
  auto& reg = w.make_register<int>("r", 0);
  std::vector<int> order;
  for (int pid = 0; pid < 2; ++pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      for (int i = 0; i < 3; ++i) {
        co_await ctx.read(reg);
        order.push_back(pid);
      }
    });
  }
  FixedScheduler sched({1, 1}, FixedScheduler::Fallback::kRoundRobin);
  const auto r = w.run(sched);
  EXPECT_TRUE(r.all_done);
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 1);
}

TEST(FixedScheduler, StopFallbackLeavesWorkUnfinished) {
  World w(1);
  auto& reg = w.make_register<int>("r", 0);
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    for (int i = 0; i < 5; ++i) co_await ctx.read(reg);
  });
  FixedScheduler sched({0, 0});
  const auto r = w.run(sched);
  EXPECT_FALSE(r.all_done);
  EXPECT_EQ(r.steps_taken, 2u);
}

TEST(FixedScheduler, SkipsFinishedProcessEntries) {
  World w(2);
  auto& reg = w.make_register<int>("r", 0);
  for (int pid = 0; pid < 2; ++pid) {
    w.spawn(pid, [&](Context ctx) -> ProcessTask { co_await ctx.read(reg); });
  }
  // Pid 0 appears more often than it has steps; extras must be skipped.
  FixedScheduler sched({0, 0, 0, 1});
  const auto r = w.run(sched);
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(r.steps_taken, 2u);
}

TEST(RandomScheduler, StickinessKeepsBursts) {
  World w(2);
  auto& reg = w.make_register<int>("r", 0);
  std::vector<int> order;
  for (int pid = 0; pid < 2; ++pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      for (int i = 0; i < 50; ++i) {
        co_await ctx.read(reg);
        order.push_back(pid);
      }
    });
  }
  RandomScheduler sched(5, /*stickiness=*/0.95);
  w.run(sched);
  // Sticky schedules produce long runs: count alternations, which should be
  // far below the ~50 expected of a uniform interleaving.
  int alternations = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    alternations += order[i] != order[i - 1];
  }
  EXPECT_LT(alternations, 25);
}

TEST(Trace, GlobalStepMatchesTraceLength) {
  World w(2, {.trace = true});
  auto& reg = w.make_register<int>("r", 0);
  for (int pid = 0; pid < 2; ++pid) {
    w.spawn(pid, [&](Context ctx) -> ProcessTask {
      co_await ctx.read(reg);
      co_await ctx.write(reg, 1);
    });
  }
  RoundRobinScheduler rr;
  w.run(rr);
  EXPECT_EQ(w.trace().size(), w.global_step());
  // Steps in the trace are strictly increasing and attributed correctly.
  for (std::size_t i = 0; i < w.trace().size(); ++i) {
    EXPECT_EQ(w.trace()[i].step, i);
    EXPECT_TRUE(w.trace()[i].pid == 0 || w.trace()[i].pid == 1);
  }
}

TEST(Trace, ReadsAndWritesAttributedToRightRegisters) {
  World w(1, {.trace = true});
  auto& a = w.make_register<int>("a", 0);
  auto& b = w.make_register<int>("b", 0);
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await ctx.read(a);
    co_await ctx.write(b, 1);
    co_await ctx.read(b);
  });
  w.run_solo(0);
  ASSERT_EQ(w.trace().size(), 3u);
  EXPECT_EQ(w.trace()[0].register_id, a.id());
  EXPECT_FALSE(w.trace()[0].is_write);
  EXPECT_EQ(w.trace()[1].register_id, b.id());
  EXPECT_TRUE(w.trace()[1].is_write);
  EXPECT_EQ(w.trace()[2].register_id, b.id());
}

TEST(World, RegisterNamesAndIdsAreStable) {
  World w(1);
  auto& a = w.make_register<int>("alpha", 0);
  auto& b = w.make_register<int>("beta", 0, /*writer=*/0);
  EXPECT_EQ(a.id(), 0);
  EXPECT_EQ(b.id(), 1);
  EXPECT_EQ(w.register_at(0).name(), "alpha");
  EXPECT_EQ(w.register_at(1).writer(), 0);
  EXPECT_EQ(w.num_registers(), 2);
}

TEST(World, NumRunnableTracksLifecycle) {
  World w(3);
  auto& reg = w.make_register<int>("r", 0);
  EXPECT_EQ(w.num_runnable(), 0);  // nothing spawned yet
  for (int pid = 0; pid < 2; ++pid) {
    w.spawn(pid, [&](Context ctx) -> ProcessTask { co_await ctx.read(reg); });
  }
  EXPECT_EQ(w.num_runnable(), 2);
  w.crash(0);
  EXPECT_EQ(w.num_runnable(), 1);
  w.step(1);
  EXPECT_EQ(w.num_runnable(), 0);
  EXPECT_TRUE(w.all_done());  // crashed processes don't block completion
}

TEST(World, ZeroAccessProgramCompletesAtSpawn) {
  World w(1);
  bool ran = false;
  w.spawn(0, [&](Context) -> ProcessTask {
    ran = true;
    co_return;
  });
  EXPECT_TRUE(ran);
  EXPECT_TRUE(w.done(0));
  EXPECT_TRUE(w.all_done());
}

TEST(CrashingScheduler, CrashAtStepZeroPreventsAllProgress) {
  World w(2);
  auto& reg = w.make_register<int>("r", 0);
  for (int pid = 0; pid < 2; ++pid) {
    w.spawn(pid, [&](Context ctx) -> ProcessTask {
      for (int i = 0; i < 4; ++i) co_await ctx.read(reg);
    });
  }
  RoundRobinScheduler rr;
  CrashingScheduler sched(rr, {{0, 0}});
  w.run(sched);
  EXPECT_EQ(w.counts(0).reads, 0u);
  EXPECT_EQ(w.counts(1).reads, 4u);
}

}  // namespace
}  // namespace apram::sim
