// Unit tests for the util module: rng determinism, statistics, tables, flags.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace apram {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowHitsAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RunningStats, Basics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Percentile, MedianAndTails) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(LinearSlope, ExactLine) {
  std::vector<double> x{1, 2, 3, 4}, y{3, 5, 7, 9};
  EXPECT_NEAR(linear_slope(x, y), 2.0, 1e-12);
}

TEST(Table, RendersAllRows) {
  Table t("demo", {"a", "bb"});
  t.add(1).add("x").end_row();
  t.add(2).add("yy").end_row();
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("yy"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, FormatsDoubles) {
  Table t("d", {"v"});
  t.add(3.14159, 2).end_row();
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
}

}  // namespace
}  // namespace apram
