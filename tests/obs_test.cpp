// Tests for apram::obs — metrics registry, event tracer, exporters, and the
// trace → schedule → replay loop that makes sim traces replay artifacts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "api/sim_backend.hpp"
#include "obs/analyze.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/contention.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/replay_artifact.hpp"
#include "obs/rt_probe.hpp"
#include "obs/sampler.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "rt/register.hpp"
#include "rt/thread_harness.hpp"
#include "sim/replay.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "snapshot/atomic_snapshot.hpp"
#include "snapshot/lattice_scan.hpp"
#include "snapshot/tree_snapshot.hpp"

namespace apram::obs {
namespace {

// ---------------------------------------------------------------- metrics --

TEST(Metrics, CounterStartsAtZeroAndAddsUp) {
  Registry reg;
  Counter& c = reg.counter("x");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, RegistryReturnsSameHandleForSameName) {
  Registry reg;
  Counter& a = reg.counter("shared");
  Counter& b = reg.counter("shared");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Metrics, ConcurrentIncrementsAggregateExactly) {
  Registry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c, t] {
      pin_this_shard(t);
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : ts) t.join();
  // Exact, not approximate: every relaxed add lands on some shard and
  // value() sums all shards after the joins' happens-before edges.
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, GaugeSetAndAdd) {
  Registry reg;
  Gauge& g = reg.gauge("level");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(Metrics, HistogramBucketsAndMean) {
  Registry reg;
  Histogram& h = reg.histogram("lat");
  h.record(1);
  h.record(2);
  h.record(3);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 6u);
  EXPECT_DOUBLE_EQ(snap.mean(), 2.0);
}

TEST(Metrics, CounterDeltaMeasuresWindow) {
  Registry reg;
  Counter& c = reg.counter("ops");
  c.add(5);
  CounterDelta d(c);
  c.add(7);
  EXPECT_EQ(d.delta(), 7u);
  d.reset();
  c.add(2);
  EXPECT_EQ(d.delta(), 2u);
}

TEST(Metrics, KindCollisionAborts) {
  Registry reg;
  reg.counter("name");
  EXPECT_DEATH(reg.gauge("name"), "");
}

TEST(Metrics, ClampedPinKeepsTotalsExact) {
  // Shard ids ≥ kMaxShards clamp modulo kMaxShards: threads 1 and
  // kMaxShards+1 share a shard, per-shard attribution blurs, but the
  // aggregated total must stay exact.
  Registry reg;
  Counter& c = reg.counter("clamped");
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> ts;
  for (int shard : {1, kMaxShards + 1, 2 * kMaxShards + 1}) {
    ts.emplace_back([&c, shard] {
      pin_this_shard(shard);
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), 3u * kPerThread);
}

TEST(Metrics, ClampedPinCountsEveryOccurrenceAndWarnsOnce) {
  const std::uint64_t before = pinning_degraded();
  // The stderr warning is emitted only by the process-wide FIRST clamp, so
  // only the run that gets there first can assert on it.
  const bool first_in_process = before == 0;
  std::thread([first_in_process] {
    if (first_in_process) testing::internal::CaptureStderr();
    pin_this_shard(kMaxShards);  // clamps to shard 0
    if (first_in_process) {
      const std::string err = testing::internal::GetCapturedStderr();
      EXPECT_NE(err.find("pinning"), std::string::npos) << err;
    }
  }).join();
  EXPECT_EQ(pinning_degraded(), before + 1);

  // Later clamps count but stay quiet.
  std::thread([] {
    testing::internal::CaptureStderr();
    pin_this_shard(kMaxShards + 5);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  }).join();
  EXPECT_EQ(pinning_degraded(), before + 2);

  // In-range pins never count as degraded.
  std::thread([] { pin_this_shard(kMaxShards - 1); }).join();
  EXPECT_EQ(pinning_degraded(), before + 2);
}

TEST(Export, JsonCarriesThePinningDegradedGauge) {
  // Synthesized on every export so analyzers can assert attribution health
  // even for registries with no explicit gauges.
  Registry reg;
  reg.counter("x").add(1);
  const std::string json = to_json(reg, nullptr, "unit");
  EXPECT_NE(json.find("\"obs.pinning_degraded\": "), std::string::npos);
}

// ------------------------------------------------------------------ trace --

TEST(Trace, RecordsEventsInOrder) {
  Tracer tr(2, 16);
  tr.emit({1, 0, EventKind::kRead, 7, 0});
  tr.emit({2, 1, EventKind::kWrite, 8, 0});
  tr.emit({3, 0, EventKind::kCas, 9, 1});
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].kind, EventKind::kRead);
  EXPECT_EQ(evs[1].pid, 1);
  EXPECT_EQ(evs[2].arg, 1u);
  EXPECT_EQ(tr.recorded(), 3u);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(Trace, OverflowKeepsNewestEvents) {
  constexpr std::size_t kCap = 8;
  Tracer tr(1, kCap);
  for (std::uint64_t i = 0; i < 3 * kCap; ++i) {
    tr.emit({i, 0, EventKind::kUser, 0, i});
  }
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), kCap);
  // The oldest 2*kCap events were overwritten; the newest kCap survive.
  for (std::size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(evs[i].arg, 2 * kCap + i);
  }
  EXPECT_EQ(tr.recorded(), 3 * kCap);
  EXPECT_EQ(tr.dropped(), 2 * kCap);
}

TEST(Trace, DrainResetsRingsButKeepsTotals) {
  Tracer tr(1, 8);
  tr.emit({1, 0, EventKind::kUser, 0, 0});
  EXPECT_EQ(tr.drain().size(), 1u);
  EXPECT_TRUE(tr.events().empty());
  tr.emit({2, 0, EventKind::kUser, 0, 0});
  EXPECT_EQ(tr.events().size(), 1u);
  EXPECT_EQ(tr.recorded(), 2u);
}

// -------------------------------------------------------------- sim hooks --

TEST(SimObs, AttachMetricsCountsReadsAndWrites) {
  Registry reg;
  sim::World w(2, {.metrics = &reg});
  AtomicSnapshotSim<int> snap(w, 2);
  w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
    co_await snap.update(ctx, 5);
  });
  w.run_solo(0);
  // Registry-recorded counts agree with the world's bespoke counters.
  EXPECT_EQ(w.metrics_reads(0).value(), w.counts(0).reads);
  EXPECT_EQ(w.metrics_writes(0).value(), w.counts(0).writes);
  EXPECT_EQ(reg.counter("sim.reads").value(), w.counts(0).reads);
}

// The tentpole loop: trace a 3-process run, project the trace to a schedule,
// and replay it via sim/replay — the replayed run is step-identical.
TEST(SimObs, TraceOfThreeProcessRunReplaysIdentically) {
  struct Run : sim::Execution {
    Run(int n, obs::Tracer* t) : w(n, {.tracer = t}), snap(w, n) {}
    sim::World& world() override { return w; }
    sim::World w;
    AtomicSnapshotSim<int> snap;
    std::vector<int> scans;
  };
  const int n = 3;
  // The tracer is construction-time configuration (World::Options), so the
  // factory is parameterized by it; replay paths pass nullptr.
  auto make = [n](obs::Tracer* t) -> std::unique_ptr<sim::Execution> {
    auto run = std::make_unique<Run>(n, t);
    Run* r = run.get();
    for (int pid = 0; pid < n; ++pid) {
      r->w.spawn(pid, [r, pid](sim::Context ctx) -> sim::ProcessTask {
        co_await r->snap.update(ctx, pid + 1);
        const auto view = co_await r->snap.scan(ctx);
        std::int64_t sum = 0;
        for (const auto& v : view) sum += v.value_or(0);
        r->scans.push_back(static_cast<int>(sum));
      });
    }
    return run;
  };

  auto factory = [&make]() { return make(nullptr); };

  // Original run: random schedule, traced.
  Tracer tracer(n, 4096);
  auto orig = make(&tracer);
  sim::RandomScheduler sched(/*seed=*/7, /*stickiness=*/0.5);
  ASSERT_TRUE(orig->world().run(sched).all_done);
  const auto events = tracer.events();
  EXPECT_EQ(tracer.dropped(), 0u);

  // Project onto the access schedule and round-trip through the text format.
  const auto schedule = schedule_from_trace(events);
  std::stringstream ss;
  save_schedule(ss, schedule);
  const auto loaded = load_schedule(ss);
  ASSERT_EQ(loaded, schedule);

  // Replay through sim/replay: identical per-pid step counts and results.
  auto replayed_exec = sim::replay(factory, loaded);
  auto* replayed = static_cast<Run*>(replayed_exec.get());
  for (int pid = 0; pid < n; ++pid) {
    EXPECT_TRUE(replayed->w.done(pid));
    EXPECT_EQ(replayed->w.counts(pid).reads,
              orig->world().counts(pid).reads);
    EXPECT_EQ(replayed->w.counts(pid).writes,
              orig->world().counts(pid).writes);
  }
  EXPECT_EQ(replayed->scans, static_cast<Run*>(orig.get())->scans);

  // And the replayed run's own trace matches the original event-for-event.
  Tracer tracer2(n, 4096);
  auto traced_replay = make(&tracer2);
  sim::FixedScheduler fs(loaded, sim::FixedScheduler::Fallback::kStop);
  ASSERT_TRUE(traced_replay->world().run(fs).all_done);
  const auto events2 = tracer2.events();
  ASSERT_EQ(events2.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events2[i].when, events[i].when);
    EXPECT_EQ(events2[i].pid, events[i].pid);
    EXPECT_EQ(events2[i].kind, events[i].kind);
    EXPECT_EQ(events2[i].object, events[i].object);
  }
}

// --------------------------------------------------------------- rt hooks --

TEST(RtObs, ProbeCountsRegisterAccesses) {
  Registry reg;
  RtProbe probe{.reads = &reg.counter("r"),
                .writes = &reg.counter("w"),
                .cas_ops = &reg.counter("c"),
                .object = 0};
  rt::SWMRRegister<std::int64_t> r(0);
  r.attach_probe(&probe);
  r.write(9);
  EXPECT_EQ(r.read(), 9);
  EXPECT_EQ(r.read(), 9);
  EXPECT_EQ(reg.counter("r").value(), 2u);
  EXPECT_EQ(reg.counter("w").value(), 1u);

  rt::CASRegister<std::int64_t> cr(0);
  cr.attach_probe(&probe);
  std::int64_t expected = 0;
  EXPECT_TRUE(cr.compare_exchange(expected, 5));
  expected = 0;
  EXPECT_FALSE(cr.compare_exchange(expected, 7));
  EXPECT_EQ(expected, 5);
  EXPECT_EQ(reg.counter("c").value(), 2u);
}

TEST(RtObs, HarnessTracesSpawnAndDonePerThread) {
  Tracer tracer(4, 64);
  Registry reg;
  Counter& body_runs = reg.counter("body");
  rt::parallel_run(
      4,
      [&](int pid) {
        EXPECT_EQ(thread_pid(), pid);
        body_runs.add();
      },
      &tracer);
  EXPECT_EQ(body_runs.value(), 4u);
  const auto evs = tracer.events();
  int spawns = 0;
  int dones = 0;
  for (const auto& ev : evs) {
    if (ev.kind == EventKind::kSpawn) ++spawns;
    if (ev.kind == EventKind::kDone) ++dones;
  }
  EXPECT_EQ(spawns, 4);
  EXPECT_EQ(dones, 4);
  EXPECT_EQ(thread_pid(), -1);  // identity cleared outside the harness
}

TEST(RtObs, ProbedRegisterTracesUnderHarness) {
  Tracer tracer(2, 256);
  Registry reg;
  RtProbe probe{.reads = &reg.counter("r"),
                .writes = &reg.counter("w"),
                .tracer = &tracer,
                .object = 3};
  rt::SWMRRegister<std::int64_t> r(0);
  r.attach_probe(&probe);
  rt::parallel_run(
      2,
      [&](int pid) {
        if (pid == 0) {
          for (int i = 0; i < 10; ++i) r.write(i);
        } else {
          for (int i = 0; i < 10; ++i) (void)r.read();
        }
      },
      &tracer);
  EXPECT_EQ(reg.counter("w").value(), 10u);
  EXPECT_EQ(reg.counter("r").value(), 10u);
  int traced_accesses = 0;
  for (const auto& ev : tracer.events()) {
    if (ev.kind == EventKind::kRead || ev.kind == EventKind::kWrite) {
      EXPECT_EQ(ev.object, 3);
      ++traced_accesses;
    }
  }
  EXPECT_EQ(traced_accesses, 20);
}

// -------------------------------------------------------------- exporters --

TEST(Export, JsonContainsMetricsAndEvents) {
  Registry reg;
  reg.counter("reads").add(4);
  reg.gauge("depth").set(-2);
  reg.histogram("lat").record(8);
  Tracer tr(1, 8);
  tr.emit({5, 0, EventKind::kWrite, 2, 0});
  const std::string json = to_json(reg, &tr, "unit");
  EXPECT_NE(json.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"reads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"write\""), std::string::npos);
}

TEST(Export, TableListsEveryMetric) {
  Registry reg;
  reg.counter("a").add(1);
  reg.gauge("b").set(2);
  std::stringstream ss;
  registry_table(reg, "t").print(ss);
  EXPECT_NE(ss.str().find("a"), std::string::npos);
  EXPECT_NE(ss.str().find("b"), std::string::npos);
}

TEST(ReplayArtifact, ScheduleFileRoundTrips) {
  const std::vector<int> sched = {0, 1, 2, 1, 0, 2, 2};
  const std::string path = "obs_test.schedule.txt";
  write_schedule_file(path, sched);
  EXPECT_EQ(read_schedule_file(path), sched);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ percentiles --

TEST(Percentile, EmptyHistogramReportsZero) {
  Registry reg;
  const auto snap = reg.histogram("empty").snapshot();
  EXPECT_DOUBLE_EQ(snap.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(snap.percentile(99.9), 0.0);
}

TEST(Percentile, EdgeBucketsReturnTheirFloors) {
  Registry reg;
  // Bucket 0 holds only the value 0; the top bucket (values ≥ 2^63) has no
  // upper edge — both report their floor rather than interpolating.
  Histogram& zeros = reg.histogram("zeros");
  zeros.record(0);
  zeros.record(0);
  EXPECT_DOUBLE_EQ(zeros.snapshot().percentile(50), 0.0);

  Histogram& top = reg.histogram("top");
  top.record(~std::uint64_t{0});
  EXPECT_DOUBLE_EQ(top.snapshot().percentile(99),
                   static_cast<double>(std::uint64_t{1} << 63));
}

TEST(Percentile, InterpolatesInsideTheBucket) {
  Registry reg;
  Histogram& h = reg.histogram("lat");
  // One sample of 100 lands in bucket [64, 128): p50 is the bucket midpoint,
  // p100 its upper edge — exact-to-bucket-resolution semantics.
  h.record(100);
  const auto snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.percentile(50), 96.0);
  EXPECT_DOUBLE_EQ(snap.percentile(100), 128.0);
}

TEST(Percentile, ClampsAndStaysMonotone) {
  Registry reg;
  Histogram& h = reg.histogram("lat");
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const auto snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.percentile(-5), snap.percentile(0));
  EXPECT_DOUBLE_EQ(snap.percentile(200), snap.percentile(100));
  const double p50 = snap.percentile(50);
  const double p90 = snap.percentile(90);
  const double p99 = snap.percentile(99);
  const double p999 = snap.percentile(99.9);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, p999);
  EXPECT_GT(p50, 256.0);   // true p50 is 500; bucket resolution is 2×
  EXPECT_LE(p999, 1024.0);
}

TEST(Export, HistogramJsonCarriesPercentiles) {
  Registry reg;
  reg.histogram("lat").record(100);
  const std::string json = to_json(reg, nullptr, "unit");
  EXPECT_NE(json.find("\"p50\": "), std::string::npos);
  EXPECT_NE(json.find("\"p90\": "), std::string::npos);
  EXPECT_NE(json.find("\"p99\": "), std::string::npos);
  EXPECT_NE(json.find("\"p999\": "), std::string::npos);
}

// ------------------------------------------------------------------ spans --

using MaxL = MaxLattice<std::int64_t>;

TEST(Span, SimScanSpanTagsEveryAccessAndPhase) {
  const int n = 3;
  Tracer tracer(n, 4096);
  sim::World w(n, {.tracer = &tracer});
  LatticeScanSim<MaxL> ls(w, n, "ls");
  w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
    (void)co_await ls.scan(ctx, 1);
  });
  w.run_solo(0);

  std::uint64_t scan_op = 0;
  for (const auto& ev : tracer.events()) {
    if (ev.kind == EventKind::kOpBegin &&
        static_cast<OpKind>(ev.arg) == OpKind::kScan) {
      scan_op = ev.op;
    }
  }
  ASSERT_NE(scan_op, 0u);

  int accesses = 0;
  int phases = 0;
  bool closed = false;
  for (const auto& ev : tracer.events()) {
    if (ev.kind == EventKind::kRead || ev.kind == EventKind::kWrite) {
      EXPECT_EQ(ev.op, scan_op);  // every access owned by the scan span
      ++accesses;
    } else if (ev.kind == EventKind::kPhase) {
      EXPECT_EQ(static_cast<Phase>(ev.arg), Phase::kCollect);
      EXPECT_EQ(ev.op, scan_op);
      ++phases;
    } else if (ev.kind == EventKind::kOpEnd && ev.op == scan_op) {
      closed = true;
    }
  }
  // §6.2 optimized: n²−1 reads + n+1 writes; one kCollect phase per pass.
  EXPECT_EQ(accesses, n * n - 1 + n + 1);
  EXPECT_EQ(phases, n + 1);
  EXPECT_TRUE(closed);
}

TEST(Span, WriteLNestsAScanAndTheInnermostSpanOwnsAccesses) {
  const int n = 2;
  Tracer tracer(n, 4096);
  sim::World w(n, {.tracer = &tracer});
  LatticeScanSim<MaxL> ls(w, n, "ls");
  w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
    co_await ls.write_l(ctx, 7);
  });
  w.run_solo(0);

  std::uint64_t outer = 0;
  std::uint64_t inner = 0;
  for (const auto& ev : tracer.events()) {
    if (ev.kind != EventKind::kOpBegin) continue;
    if (static_cast<OpKind>(ev.arg) == OpKind::kWriteL) outer = ev.op;
    if (static_cast<OpKind>(ev.arg) == OpKind::kScan) inner = ev.op;
  }
  ASSERT_NE(outer, 0u);
  ASSERT_NE(inner, 0u);
  EXPECT_NE(outer, inner);
  int ends = 0;
  for (const auto& ev : tracer.events()) {
    if (ev.kind == EventKind::kRead || ev.kind == EventKind::kWrite) {
      EXPECT_EQ(ev.op, inner);  // nested scan is innermost → owns them
    }
    if (ev.kind == EventKind::kOpEnd) ++ends;
  }
  EXPECT_EQ(ends, 2);
}

TEST(Span, CrashLeavesTheSpanOpenInTheTrace) {
  const int n = 2;
  Tracer tracer(n, 4096);
  sim::World w(n, {.tracer = &tracer});
  LatticeScanSim<MaxL> ls(w, n, "ls");
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&ls, pid](sim::Context ctx) -> sim::ProcessTask {
      (void)co_await ls.scan(ctx, pid);
    });
  }
  w.schedule_crash(0, /*at_access=*/2);  // mid-scan, span still open
  sim::RoundRobinScheduler rr;
  EXPECT_TRUE(w.run(rr).all_done);
  EXPECT_TRUE(w.crashed(0));

  std::uint64_t crashed_op = 0;
  for (const auto& ev : tracer.events()) {
    if (ev.kind == EventKind::kOpBegin && ev.pid == 0) crashed_op = ev.op;
  }
  ASSERT_NE(crashed_op, 0u);
  bool crash_tagged = false;
  for (const auto& ev : tracer.events()) {
    // Explicit begin/end (not RAII) means the destroyed frame emits no
    // kOpEnd — the open span is the truth of the execution — and the crash
    // event itself carries the open op id.
    EXPECT_FALSE(ev.kind == EventKind::kOpEnd && ev.op == crashed_op);
    if (ev.kind == EventKind::kCrash && ev.op == crashed_op) {
      crash_tagged = true;
    }
  }
  EXPECT_TRUE(crash_tagged);
}

TEST(Span, RtAmbientSpanTagsProbedAccesses) {
  Tracer tracer(2, 256);
  Registry reg;
  RtProbe probe{.reads = &reg.counter("r"),
                .writes = &reg.counter("w"),
                .tracer = &tracer,
                .object = 3};
  rt::SWMRRegister<std::int64_t> r(0);
  r.attach_probe(&probe);
  rt::parallel_run(
      2,
      [&](int pid) {
        if (pid == 0) {
          SpanScope span(OpKind::kUser);
          r.write(1);
        } else {
          (void)r.read();  // outside any span → untagged
        }
      },
      &tracer);
  bool saw_write = false;
  bool saw_read = false;
  for (const auto& ev : tracer.events()) {
    if (ev.kind == EventKind::kWrite) {
      EXPECT_NE(ev.op, 0u);
      saw_write = true;
    }
    if (ev.kind == EventKind::kRead) {
      EXPECT_EQ(ev.op, 0u);
      saw_read = true;
    }
  }
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_read);
  EXPECT_EQ(thread_op(), 0u);  // ambient state cleared outside the harness
}

// ----------------------------------------------------------- chrome trace --

TEST(ChromeTrace, EmitsMetadataSpansAndInstants) {
  const std::vector<TraceEvent> evs = {
      {1, 0, EventKind::kOpBegin, -1,
       static_cast<std::uint64_t>(OpKind::kScan), 1},
      {2, 0, EventKind::kRead, 5, 0, 1},
      {3, 0, EventKind::kPhase, 0,
       static_cast<std::uint64_t>(Phase::kCollect), 1},
      {4, 0, EventKind::kOpEnd, -1,
       static_cast<std::uint64_t>(OpKind::kScan), 1},
  };
  std::stringstream ss;
  export_chrome_trace(ss, evs, TraceTimebase::kSimSteps, "unit");
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);  // process name
  EXPECT_NE(json.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"scan\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("phase:collect"), std::string::npos);
  EXPECT_NE(json.find("read r5"), std::string::npos);
}

TEST(ChromeTrace, DropsTruncatedOpsAndUnbalancedEnds) {
  const std::vector<TraceEvent> evs = {
      // Op 9's begin was overwritten (kTruncated marker): its end must not
      // render. A bare kOpEnd with no begin at all must not render either —
      // the viewer rejects unbalanced E events.
      {1, 0, EventKind::kTruncated, -1, 0, 9},
      {2, 0, EventKind::kOpEnd, -1, static_cast<std::uint64_t>(OpKind::kScan),
       9},
      {3, 1, EventKind::kOpEnd, -1, static_cast<std::uint64_t>(OpKind::kScan),
       11},
  };
  std::stringstream ss;
  export_chrome_trace(ss, evs, TraceTimebase::kSimSteps, "unit");
  const std::string json = ss.str();
  EXPECT_EQ(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\": \"E\""), std::string::npos);
}

TEST(ChromeTrace, HelpEventsDrawFlowArrowsFromTheHelpingCas) {
  const std::vector<TraceEvent> evs = {
      {1, 1, EventKind::kCas, 4, /*success=*/1, 0},  // pid 1's CAS on node 4
      {2, 0, EventKind::kHelp, 4, 0, 0},             // pid 0 was helped on 4
  };
  std::stringstream ss;
  export_chrome_trace(ss, evs, TraceTimebase::kSimSteps, "unit");
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"name\": \"helped\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
}

TEST(ChromeTrace, GoldenShapeForATinyDeterministicSimSchedule) {
  // A solo n=2 optimized Scan is fully deterministic: 3 reads + 3 writes at
  // global steps 0..5, one kScan span, n+1 = 3 collect phases. Only the op
  // id (a process-global counter) varies run to run, so the golden asserts
  // the exact event shape rather than a byte-identical file.
  const int n = 2;
  Tracer tracer(n, 1024);
  sim::World w(n, {.tracer = &tracer});
  LatticeScanSim<MaxL> ls(w, n, "ls");
  w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
    (void)co_await ls.scan(ctx, 1);
  });
  w.run_solo(0);

  std::stringstream ss;
  export_chrome_trace(ss, tracer.events(), TraceTimebase::kSimSteps,
                      "golden");
  const std::string json = ss.str();
  const auto count = [&](const std::string& needle) {
    int c = 0;
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + needle.size())) {
      ++c;
    }
    return c;
  };
  EXPECT_EQ(count("\"ph\": \"M\""), 2);  // process name + one pid track
  EXPECT_EQ(count("\"ph\": \"B\""), 1);
  EXPECT_EQ(count("\"ph\": \"E\""), 1);
  EXPECT_EQ(count("\"name\": \"scan\""), 1);
  EXPECT_EQ(count("phase:collect"), n + 1);
  EXPECT_EQ(count("\"name\": \"read"), n * n - 1);
  EXPECT_EQ(count("\"name\": \"write"), n + 1);
  // Step indices render directly as timestamps: the first access at step 0,
  // the last of the 6 at step 5, and the span close stamped at step 6 (the
  // global step after the final access). Nothing beyond that.
  EXPECT_NE(json.find("\"ts\": 0,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 5,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 6 "), std::string::npos);  // the E event
  EXPECT_EQ(json.find("\"ts\": 7"), std::string::npos);
}

// ------------------------------------------------------------- truncation --

TEST(Trace, OverflowSynthesizesTruncatedMarkers) {
  constexpr std::size_t kCap = 4;
  Tracer tr(1, kCap);
  tr.emit({1, 0, EventKind::kOpBegin, -1,
           static_cast<std::uint64_t>(OpKind::kScan), 42});
  for (std::uint64_t i = 0; i < 2 * kCap; ++i) {
    tr.emit({2 + i, 0, EventKind::kRead, 0, 0, 42});
  }
  tr.emit({20, 0, EventKind::kOpEnd, -1,
           static_cast<std::uint64_t>(OpKind::kScan), 42});
  // The ring overwrote op 42's kOpBegin; collect() marks the op truncated so
  // analyzers exclude it instead of under-counting its accesses.
  bool marker = false;
  for (const auto& ev : tr.events()) {
    if (ev.kind == EventKind::kTruncated && ev.op == 42) marker = true;
  }
  EXPECT_TRUE(marker);
}

TEST(Trace, NoMarkersWithoutOverflow) {
  Tracer tr(1, 64);
  tr.emit({1, 0, EventKind::kOpBegin, -1,
           static_cast<std::uint64_t>(OpKind::kScan), 7});
  tr.emit({2, 0, EventKind::kRead, 0, 0, 7});
  tr.emit({3, 0, EventKind::kOpEnd, -1,
           static_cast<std::uint64_t>(OpKind::kScan), 7});
  for (const auto& ev : tr.events()) {
    EXPECT_NE(ev.kind, EventKind::kTruncated);
  }
}

TEST(Trace, TwoSlotRingCountsDroppedEventsExactly) {
  // The conservation law on the smallest ring that can overflow:
  // recorded == survived + dropped, with synthesized kTruncated markers in
  // NONE of the buckets (they live only in the output vector).
  Tracer tr(1, 2);
  tr.emit({1, 0, EventKind::kOpBegin, -1,
           static_cast<std::uint64_t>(OpKind::kScan), 9});
  for (std::uint64_t i = 0; i < 3; ++i) {
    tr.emit({2 + i, 0, EventKind::kRead, 0, 0, 9});
  }
  tr.emit({8, 0, EventKind::kOpEnd, -1,
           static_cast<std::uint64_t>(OpKind::kScan), 9});
  // 5 emits into 2 slots: the newest 2 survive, exactly 3 were overwritten.
  EXPECT_EQ(tr.recorded(), 5u);
  EXPECT_EQ(tr.dropped(), 3u);

  Tracer::CollectStats stats;
  const auto evs = tr.events(stats);
  EXPECT_EQ(stats.survived, 2u);
  EXPECT_EQ(tr.recorded(), stats.survived + tr.dropped());
  // Op 9's kOpBegin was overwritten while its kOpEnd survived → exactly one
  // synthesized marker, appended to the output without touching a ring slot
  // or the drop count.
  EXPECT_EQ(stats.synthesized, 1u);
  EXPECT_EQ(evs.size(), stats.survived + stats.synthesized);
  int markers = 0;
  for (const auto& ev : evs) {
    if (ev.kind == EventKind::kTruncated) {
      EXPECT_EQ(ev.op, 9u);
      ++markers;
    }
  }
  EXPECT_EQ(markers, 1);
  // Collection is read-only: a second pass reports identical accounting.
  Tracer::CollectStats again;
  (void)tr.events(again);
  EXPECT_EQ(again.survived, stats.survived);
  EXPECT_EQ(again.synthesized, stats.synthesized);
  EXPECT_EQ(tr.dropped(), 3u);
}

// -------------------------------------------------------------- contention --

TEST(Contention, TelemetryAddsNoModelAccessesAndPinsSoloOutcomes) {
  // The closed form 1 + 4h counts MODEL register accesses; contention
  // telemetry ticks process-local memory only, so the count must hold
  // whether the counters are compiled in or out — the "bit-identical hot
  // path" half of the compile-out contract.
  const int n = 8;
  sim::World w(n);
  api::SimBackend::Mem mem(w, "t");
  snapshot::TreeScan<api::SimBackend, MaxL> tree(mem, n);
  w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
    co_await tree.update(ctx, 5);
  });
  w.run_solo(0);
  EXPECT_EQ(w.counts(0).total(), snapshot::tree_scan_update_solo_accesses(n));

  const auto h =
      static_cast<std::uint64_t>(snapshot::tree_scan_height(n));
  const ContentionTotals t = tree.contention().totals();
  if (kContentionEnabled) {
    // A solo walk installs first-try at every level: h walks, all
    // first-refresh, and the derived CAS counts follow the (1, 0) row of
    // the WalkOutcome table.
    EXPECT_EQ(t.walks(), h);
    EXPECT_EQ(t.first_refresh, h);
    EXPECT_EQ(t.second_refresh, 0u);
    EXPECT_EQ(t.helped, 0u);
    EXPECT_EQ(t.cas_attempts, h);
    EXPECT_EQ(t.cas_failures, 0u);
    EXPECT_DOUBLE_EQ(t.cas_fail_rate(), 0.0);
    EXPECT_DOUBLE_EQ(t.double_refresh_rate(), 0.0);
    // Per-level attribution: one first-try walk at every level 0..h-1.
    EXPECT_EQ(tree.contention().num_levels(), static_cast<int>(h));
    for (int lvl = 0; lvl < static_cast<int>(h); ++lvl) {
      EXPECT_EQ(tree.contention().level_totals(lvl).first_refresh, 1u)
          << "level " << lvl;
    }
    // Exported gauges carry the same numbers (per-level + totals).
    Registry reg;
    tree.export_contention_gauges(reg, "farray.unit");
    EXPECT_EQ(reg.gauge("farray.unit.walks").value(),
              static_cast<std::int64_t>(h));
    EXPECT_EQ(reg.gauge("farray.unit.cas_fail_rate").value(), 0);
    EXPECT_EQ(reg.gauge("farray.unit.level0.first_refresh").value(), 1);
  } else {
    // Compiled out: the identical API reads all-zero.
    EXPECT_EQ(t.walks(), 0u);
    EXPECT_EQ(t.cas_attempts, 0u);
    Registry reg;
    tree.export_contention_gauges(reg, "farray.unit");
    EXPECT_EQ(to_json(reg, nullptr, "unit").find("farray.unit"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------- sampler --

TEST(Sampler, DeterministicSubsetPerSeed) {
  const SpanSampler a{/*seed=*/0xfeedULL, /*rate=*/8};
  const SpanSampler b{/*seed=*/0xfeedULL, /*rate=*/8};
  const SpanSampler c{/*seed=*/0xbeefULL, /*rate=*/8};
  EXPECT_TRUE(a.active());

  std::set<std::uint64_t> kept_a;
  std::set<std::uint64_t> kept_c;
  for (std::uint64_t op = 1; op <= 4096; ++op) {
    EXPECT_EQ(a.keep(2, op), b.keep(2, op));  // same seed → same subset
    if (a.keep(2, op)) kept_a.insert(op);
    if (c.keep(2, op)) kept_c.insert(op);
  }
  // Roughly 1-in-8 (splitmix64 spreads uniformly; 2× slack either way).
  EXPECT_GT(kept_a.size(), 4096u / 16);
  EXPECT_LT(kept_a.size(), 4096u / 4);
  EXPECT_NE(kept_a, kept_c);  // different seeds → different subsets

  // The pid is part of the hash: two pids disagree somewhere.
  bool pid_differs = false;
  for (std::uint64_t op = 1; op <= 256 && !pid_differs; ++op) {
    pid_differs = a.keep(0, op) != a.keep(1, op);
  }
  EXPECT_TRUE(pid_differs);

  // op 0 (spawn/done/untagged accesses) is population metadata, never
  // sampled out; rate <= 1 keeps everything and reports inactive.
  EXPECT_TRUE(a.keep(5, 0));
  const SpanSampler all{/*seed=*/123, /*rate=*/1};
  EXPECT_FALSE(all.active());
  for (std::uint64_t op = 1; op <= 64; ++op) {
    EXPECT_TRUE(all.keep(0, op));
  }
}

TEST(Sampler, SampledTraceStillVerifiesTheTreeUpdateBound) {
  // Exact subset semantics end-to-end: install a 1-in-4 sampler, run a
  // contended TreeScan workload, and check the 1+8⌈log2 n⌉ bound on the
  // sampled population — kept spans are complete, so the bound verifies
  // exactly; only the population size shrinks.
  const int n = 4;
  constexpr int kOpsPerPid = 64;
  Tracer tracer(n, 1 << 14);
  tracer.set_sampler(SpanSampler{/*seed=*/42, /*rate=*/4});
  sim::World w(n, {.tracer = &tracer});
  api::SimBackend::Mem mem(w, "t");
  snapshot::TreeScan<api::SimBackend, MaxL> tree(mem, n);
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&tree, pid](sim::Context ctx) -> sim::ProcessTask {
      for (int i = 0; i < kOpsPerPid; ++i) {
        co_await tree.update(ctx, pid * 1000 + i);
      }
    });
  }
  sim::RandomScheduler sched(/*seed=*/11, /*stickiness=*/0.5);
  ASSERT_TRUE(w.run(sched).all_done);
  EXPECT_EQ(tracer.dropped(), 0u);     // the ring never overflowed...
  EXPECT_GT(tracer.sampled_out(), 0u);  // ...the sampler did the thinning

  const TraceAnalysis a = analyze(tracer.events());
  const BoundReport report = check_tree_update_bound(a, n);
  EXPECT_TRUE(report.ok()) << format_report(report);
  EXPECT_GT(report.checked, 0u);
  EXPECT_LT(report.checked,
            static_cast<std::uint64_t>(n) * kOpsPerPid);  // a strict subset
  EXPECT_EQ(report.excluded, 0u);  // sampling truncates nothing
}

// ----------------------------------------------------------------- flight --

TEST(Flight, DumpRoundTripsAndReplaysStepIdentically) {
  struct Run : sim::Execution {
    Run(int n, obs::Tracer* t) : w(n, {.tracer = t}), snap(w, n) {}
    sim::World& world() override { return w; }
    sim::World w;
    AtomicSnapshotSim<int> snap;
    std::vector<int> scans;
  };
  const int n = 3;
  auto make = [n](obs::Tracer* t) -> std::unique_ptr<sim::Execution> {
    auto run = std::make_unique<Run>(n, t);
    Run* r = run.get();
    for (int pid = 0; pid < n; ++pid) {
      r->w.spawn(pid, [r, pid](sim::Context ctx) -> sim::ProcessTask {
        co_await r->snap.update(ctx, pid + 1);
        const auto view = co_await r->snap.scan(ctx);
        std::int64_t sum = 0;
        for (const auto& v : view) sum += v.value_or(0);
        r->scans.push_back(static_cast<int>(sum));
      });
    }
    return run;
  };

  Tracer tracer(n, 4096);
  Registry reg;
  auto orig = make(&tracer);
  sim::RandomScheduler sched(/*seed=*/13, /*stickiness=*/0.5);
  ASSERT_TRUE(orig->world().run(sched).all_done);

  FlightRecorder rec(&reg, &tracer, "flighttest");
  const std::string dir = ::testing::TempDir();
  rec.set_dir(dir);
  bool hook_ran = false;
  rec.set_snapshot_hook([&] {
    hook_ran = true;
    reg.gauge("unit.snapshot_hook").set(1);
  });
  const std::string metrics_path = rec.dump("unit-test dump");
  EXPECT_TRUE(hook_ran);
  EXPECT_EQ(rec.dumps(), 1u);

  // The metrics artifact is a standard export: the snapshot-hook gauge, the
  // flight.* accounting, and the events all load back through the normal
  // analyzers.
  ASSERT_TRUE(metrics_json_has_events(metrics_path));
  const MetricsDoc doc = load_metrics_json(metrics_path);
  EXPECT_EQ(doc.gauges.at("unit.snapshot_hook"), 1);
  EXPECT_EQ(doc.gauges.at("flight.dumps"), 1);
  EXPECT_EQ(doc.gauges.at("flight.dropped"), 0);
  const auto live = tracer.events();
  EXPECT_EQ(doc.gauges.at("flight.survived"),
            static_cast<std::int64_t>(live.size()));
  const auto loaded = load_events_json(metrics_path);
  ASSERT_EQ(loaded.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(loaded[i].when, live[i].when);
    EXPECT_EQ(loaded[i].pid, live[i].pid);
    EXPECT_EQ(loaded[i].kind, live[i].kind);
    EXPECT_EQ(loaded[i].object, live[i].object);
    EXPECT_EQ(loaded[i].op, live[i].op);
  }

  // The companion .schedule replays the run step-identically.
  const std::string sched_path = dir + "/flighttest-0.schedule";
  ASSERT_TRUE(std::filesystem::exists(sched_path));
  auto factory = [&make]() { return make(nullptr); };
  auto replayed_exec = sim::replay(factory, read_schedule_file(sched_path));
  auto* replayed = static_cast<Run*>(replayed_exec.get());
  for (int pid = 0; pid < n; ++pid) {
    EXPECT_TRUE(replayed->w.done(pid));
    EXPECT_EQ(replayed->w.counts(pid).reads, orig->world().counts(pid).reads);
    EXPECT_EQ(replayed->w.counts(pid).writes,
              orig->world().counts(pid).writes);
  }
  EXPECT_EQ(replayed->scans, static_cast<Run*>(orig.get())->scans);

  // A second dump gets a fresh sequence number; neither clobbers the other.
  const std::string metrics_path2 = rec.dump("second dump");
  EXPECT_NE(metrics_path2, metrics_path);
  EXPECT_EQ(rec.dumps(), 2u);
  EXPECT_TRUE(std::filesystem::exists(metrics_path));
  EXPECT_TRUE(std::filesystem::exists(metrics_path2));
}

TEST(Flight, PanicDumpRoutesThroughTheInstalledRecorder) {
  // Library code calls panic_dump unconditionally; with nothing installed it
  // must be a silent no-op.
  EXPECT_EQ(panic_dump("nobody installed"), "");

  Registry reg;
  Tracer tr(1, 8);
  tr.emit({1, 0, EventKind::kUser, 0, 0});
  FlightRecorder rec(&reg, &tr, "panictest");
  rec.set_dir(::testing::TempDir());
  set_panic_recorder(&rec);
  const std::string path = panic_dump("unit panic");
  EXPECT_FALSE(path.empty());
  EXPECT_EQ(rec.dumps(), 1u);
  EXPECT_TRUE(std::filesystem::exists(path));

  set_panic_recorder(nullptr);
  EXPECT_EQ(panic_dump("after uninstall"), "");
  EXPECT_EQ(rec.dumps(), 1u);  // the uninstalled recorder never fires
}

}  // namespace
}  // namespace apram::obs
