// Tests for apram::obs — metrics registry, event tracer, exporters, and the
// trace → schedule → replay loop that makes sim traces replay artifacts.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/replay_artifact.hpp"
#include "obs/rt_probe.hpp"
#include "obs/trace.hpp"
#include "rt/register.hpp"
#include "rt/thread_harness.hpp"
#include "sim/replay.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "snapshot/atomic_snapshot.hpp"

namespace apram::obs {
namespace {

// ---------------------------------------------------------------- metrics --

TEST(Metrics, CounterStartsAtZeroAndAddsUp) {
  Registry reg;
  Counter& c = reg.counter("x");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, RegistryReturnsSameHandleForSameName) {
  Registry reg;
  Counter& a = reg.counter("shared");
  Counter& b = reg.counter("shared");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Metrics, ConcurrentIncrementsAggregateExactly) {
  Registry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c, t] {
      pin_this_shard(t);
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : ts) t.join();
  // Exact, not approximate: every relaxed add lands on some shard and
  // value() sums all shards after the joins' happens-before edges.
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, GaugeSetAndAdd) {
  Registry reg;
  Gauge& g = reg.gauge("level");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(Metrics, HistogramBucketsAndMean) {
  Registry reg;
  Histogram& h = reg.histogram("lat");
  h.record(1);
  h.record(2);
  h.record(3);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 6u);
  EXPECT_DOUBLE_EQ(snap.mean(), 2.0);
}

TEST(Metrics, CounterDeltaMeasuresWindow) {
  Registry reg;
  Counter& c = reg.counter("ops");
  c.add(5);
  CounterDelta d(c);
  c.add(7);
  EXPECT_EQ(d.delta(), 7u);
  d.reset();
  c.add(2);
  EXPECT_EQ(d.delta(), 2u);
}

TEST(Metrics, KindCollisionAborts) {
  Registry reg;
  reg.counter("name");
  EXPECT_DEATH(reg.gauge("name"), "");
}

// ------------------------------------------------------------------ trace --

TEST(Trace, RecordsEventsInOrder) {
  Tracer tr(2, 16);
  tr.emit({1, 0, EventKind::kRead, 7, 0});
  tr.emit({2, 1, EventKind::kWrite, 8, 0});
  tr.emit({3, 0, EventKind::kCas, 9, 1});
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].kind, EventKind::kRead);
  EXPECT_EQ(evs[1].pid, 1);
  EXPECT_EQ(evs[2].arg, 1u);
  EXPECT_EQ(tr.recorded(), 3u);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(Trace, OverflowKeepsNewestEvents) {
  constexpr std::size_t kCap = 8;
  Tracer tr(1, kCap);
  for (std::uint64_t i = 0; i < 3 * kCap; ++i) {
    tr.emit({i, 0, EventKind::kUser, 0, i});
  }
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), kCap);
  // The oldest 2*kCap events were overwritten; the newest kCap survive.
  for (std::size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(evs[i].arg, 2 * kCap + i);
  }
  EXPECT_EQ(tr.recorded(), 3 * kCap);
  EXPECT_EQ(tr.dropped(), 2 * kCap);
}

TEST(Trace, DrainResetsRingsButKeepsTotals) {
  Tracer tr(1, 8);
  tr.emit({1, 0, EventKind::kUser, 0, 0});
  EXPECT_EQ(tr.drain().size(), 1u);
  EXPECT_TRUE(tr.events().empty());
  tr.emit({2, 0, EventKind::kUser, 0, 0});
  EXPECT_EQ(tr.events().size(), 1u);
  EXPECT_EQ(tr.recorded(), 2u);
}

// -------------------------------------------------------------- sim hooks --

TEST(SimObs, AttachMetricsCountsReadsAndWrites) {
  Registry reg;
  sim::World w(2, {.metrics = &reg});
  AtomicSnapshotSim<int> snap(w, 2);
  w.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
    co_await snap.update(ctx, 5);
  });
  w.run_solo(0);
  // Registry-recorded counts agree with the world's bespoke counters.
  EXPECT_EQ(w.metrics_reads(0).value(), w.counts(0).reads);
  EXPECT_EQ(w.metrics_writes(0).value(), w.counts(0).writes);
  EXPECT_EQ(reg.counter("sim.reads").value(), w.counts(0).reads);
}

// The tentpole loop: trace a 3-process run, project the trace to a schedule,
// and replay it via sim/replay — the replayed run is step-identical.
TEST(SimObs, TraceOfThreeProcessRunReplaysIdentically) {
  struct Run : sim::Execution {
    Run(int n, obs::Tracer* t) : w(n, {.tracer = t}), snap(w, n) {}
    sim::World& world() override { return w; }
    sim::World w;
    AtomicSnapshotSim<int> snap;
    std::vector<int> scans;
  };
  const int n = 3;
  // The tracer is construction-time configuration (World::Options), so the
  // factory is parameterized by it; replay paths pass nullptr.
  auto make = [n](obs::Tracer* t) -> std::unique_ptr<sim::Execution> {
    auto run = std::make_unique<Run>(n, t);
    Run* r = run.get();
    for (int pid = 0; pid < n; ++pid) {
      r->w.spawn(pid, [r, pid](sim::Context ctx) -> sim::ProcessTask {
        co_await r->snap.update(ctx, pid + 1);
        const auto view = co_await r->snap.scan(ctx);
        std::int64_t sum = 0;
        for (const auto& v : view) sum += v.value_or(0);
        r->scans.push_back(static_cast<int>(sum));
      });
    }
    return run;
  };

  auto factory = [&make]() { return make(nullptr); };

  // Original run: random schedule, traced.
  Tracer tracer(n, 4096);
  auto orig = make(&tracer);
  sim::RandomScheduler sched(/*seed=*/7, /*stickiness=*/0.5);
  ASSERT_TRUE(orig->world().run(sched).all_done);
  const auto events = tracer.events();
  EXPECT_EQ(tracer.dropped(), 0u);

  // Project onto the access schedule and round-trip through the text format.
  const auto schedule = schedule_from_trace(events);
  std::stringstream ss;
  save_schedule(ss, schedule);
  const auto loaded = load_schedule(ss);
  ASSERT_EQ(loaded, schedule);

  // Replay through sim/replay: identical per-pid step counts and results.
  auto replayed_exec = sim::replay(factory, loaded);
  auto* replayed = static_cast<Run*>(replayed_exec.get());
  for (int pid = 0; pid < n; ++pid) {
    EXPECT_TRUE(replayed->w.done(pid));
    EXPECT_EQ(replayed->w.counts(pid).reads,
              orig->world().counts(pid).reads);
    EXPECT_EQ(replayed->w.counts(pid).writes,
              orig->world().counts(pid).writes);
  }
  EXPECT_EQ(replayed->scans, static_cast<Run*>(orig.get())->scans);

  // And the replayed run's own trace matches the original event-for-event.
  Tracer tracer2(n, 4096);
  auto traced_replay = make(&tracer2);
  sim::FixedScheduler fs(loaded, sim::FixedScheduler::Fallback::kStop);
  ASSERT_TRUE(traced_replay->world().run(fs).all_done);
  const auto events2 = tracer2.events();
  ASSERT_EQ(events2.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events2[i].when, events[i].when);
    EXPECT_EQ(events2[i].pid, events[i].pid);
    EXPECT_EQ(events2[i].kind, events[i].kind);
    EXPECT_EQ(events2[i].object, events[i].object);
  }
}

// --------------------------------------------------------------- rt hooks --

TEST(RtObs, ProbeCountsRegisterAccesses) {
  Registry reg;
  RtProbe probe{&reg.counter("r"), &reg.counter("w"), &reg.counter("c"),
                nullptr, 0};
  rt::SWMRRegister<std::int64_t> r(0);
  r.attach_probe(&probe);
  r.write(9);
  EXPECT_EQ(r.read(), 9);
  EXPECT_EQ(r.read(), 9);
  EXPECT_EQ(reg.counter("r").value(), 2u);
  EXPECT_EQ(reg.counter("w").value(), 1u);

  rt::CASRegister<std::int64_t> cr(0);
  cr.attach_probe(&probe);
  std::int64_t expected = 0;
  EXPECT_TRUE(cr.compare_exchange(expected, 5));
  expected = 0;
  EXPECT_FALSE(cr.compare_exchange(expected, 7));
  EXPECT_EQ(expected, 5);
  EXPECT_EQ(reg.counter("c").value(), 2u);
}

TEST(RtObs, HarnessTracesSpawnAndDonePerThread) {
  Tracer tracer(4, 64);
  Registry reg;
  Counter& body_runs = reg.counter("body");
  rt::parallel_run(
      4,
      [&](int pid) {
        EXPECT_EQ(thread_pid(), pid);
        body_runs.add();
      },
      &tracer);
  EXPECT_EQ(body_runs.value(), 4u);
  const auto evs = tracer.events();
  int spawns = 0;
  int dones = 0;
  for (const auto& ev : evs) {
    if (ev.kind == EventKind::kSpawn) ++spawns;
    if (ev.kind == EventKind::kDone) ++dones;
  }
  EXPECT_EQ(spawns, 4);
  EXPECT_EQ(dones, 4);
  EXPECT_EQ(thread_pid(), -1);  // identity cleared outside the harness
}

TEST(RtObs, ProbedRegisterTracesUnderHarness) {
  Tracer tracer(2, 256);
  Registry reg;
  RtProbe probe{&reg.counter("r"), &reg.counter("w"), nullptr, &tracer, 3};
  rt::SWMRRegister<std::int64_t> r(0);
  r.attach_probe(&probe);
  rt::parallel_run(
      2,
      [&](int pid) {
        if (pid == 0) {
          for (int i = 0; i < 10; ++i) r.write(i);
        } else {
          for (int i = 0; i < 10; ++i) (void)r.read();
        }
      },
      &tracer);
  EXPECT_EQ(reg.counter("w").value(), 10u);
  EXPECT_EQ(reg.counter("r").value(), 10u);
  int traced_accesses = 0;
  for (const auto& ev : tracer.events()) {
    if (ev.kind == EventKind::kRead || ev.kind == EventKind::kWrite) {
      EXPECT_EQ(ev.object, 3);
      ++traced_accesses;
    }
  }
  EXPECT_EQ(traced_accesses, 20);
}

// -------------------------------------------------------------- exporters --

TEST(Export, JsonContainsMetricsAndEvents) {
  Registry reg;
  reg.counter("reads").add(4);
  reg.gauge("depth").set(-2);
  reg.histogram("lat").record(8);
  Tracer tr(1, 8);
  tr.emit({5, 0, EventKind::kWrite, 2, 0});
  const std::string json = to_json(reg, &tr, "unit");
  EXPECT_NE(json.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"reads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"write\""), std::string::npos);
}

TEST(Export, TableListsEveryMetric) {
  Registry reg;
  reg.counter("a").add(1);
  reg.gauge("b").set(2);
  std::stringstream ss;
  registry_table(reg, "t").print(ss);
  EXPECT_NE(ss.str().find("a"), std::string::npos);
  EXPECT_NE(ss.str().find("b"), std::string::npos);
}

TEST(ReplayArtifact, ScheduleFileRoundTrips) {
  const std::vector<int> sched = {0, 1, 2, 1, 0, 2, 2};
  const std::string path = "obs_test.schedule.txt";
  write_schedule_file(path, sched);
  EXPECT_EQ(read_schedule_file(path), sched);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace apram::obs
