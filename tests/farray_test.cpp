// FArray — the generalized stamped-CAS aggregation tree — exercised over
// NON-lattice combiners (the whole point of the generalization):
//
//   * exact solo step counts against the closed forms, n ∈ {2, 4, 8, 16},
//     under SumCombiner (not idempotent — a lattice would double-count)
//   * fold order: MaxSuffixSumCombiner is associative but NOT commutative,
//     so the root must equal the strict left-to-right pid-order fold
//   * the contention bound 1 + 8·⌈log2 n⌉ under randomized adversaries
//   * exhaustive schedule enumeration at n = 2 (own-write visibility — the
//     helping lemma without any lattice order to lean on)
//   * sim-vs-rt access parity through the shared api backends
//
// snapshot::TreeScan (tree_scan_test.cpp) covers the lattice instantiation
// of the same machinery; this file is the non-lattice half of the contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "api/rt_backend.hpp"
#include "api/sim_backend.hpp"
#include "farray/farray.hpp"
#include "obs/metrics.hpp"
#include "sim/explore.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"

namespace apram::farray {
namespace {

using sim::Context;
using sim::Execution;
using sim::ProcessTask;
using sim::World;

using Sum = SumCombiner<std::int64_t>;
using SimSum = FArray<api::SimBackend, std::int64_t, Sum>;
using Suffix = MaxSuffixSumCombiner;
using SimSuffix = FArray<api::SimBackend, Suffix::Value, Suffix>;

// ---------------------------------------------------------------------------
// Combiner laws on concrete instances (the part the concept cannot state).
// ---------------------------------------------------------------------------

TEST(Combiner, LawsHoldOnConcreteInstances) {
  // Associativity + unit for the non-commutative combiner, on values where
  // operand order matters.
  const Suffix::Value a{5, 5};
  const Suffix::Value b{-3, 0};
  const Suffix::Value c{4, 4};
  const auto lhs = Suffix::combine(Suffix::combine(a, b), c);
  const auto rhs = Suffix::combine(a, Suffix::combine(b, c));
  EXPECT_EQ(lhs.total, rhs.total);
  EXPECT_EQ(lhs.best_suffix, rhs.best_suffix);
  const auto left_unit = Suffix::combine(Suffix::identity(), a);
  const auto right_unit = Suffix::combine(a, Suffix::identity());
  EXPECT_EQ(left_unit.total, a.total);
  EXPECT_EQ(left_unit.best_suffix, a.best_suffix);
  EXPECT_EQ(right_unit.total, a.total);
  EXPECT_EQ(right_unit.best_suffix, a.best_suffix);
  // And NOT commutative: swapping operands changes the answer (a then b ends
  // on the −3, so the best suffix is 5−3 = 2; b then a ends on the 5).
  EXPECT_EQ(Suffix::combine(a, b).best_suffix, 2);
  EXPECT_EQ(Suffix::combine(b, a).best_suffix, 5);

  EXPECT_EQ(Sum::combine(Sum::identity(), 7), 7);
  EXPECT_EQ(Sum::combine(3, 4), 7);
  static_assert(Combiner<Sum>);
  static_assert(Combiner<Suffix>);
  static_assert(Combiner<JoinCombiner<MaxLattice<std::int64_t>>>);
}

TEST(FArray, ClosedFormsMatchTheTreeScanTable) {
  EXPECT_EQ(farray_height(1), 0);
  EXPECT_EQ(farray_height(2), 1);
  EXPECT_EQ(farray_height(3), 2);
  EXPECT_EQ(farray_height(16), 4);
  EXPECT_EQ(farray_write_solo_accesses(4), 9u);   // 1 + 4·2
  EXPECT_EQ(farray_write_max_accesses(4), 17u);   // 1 + 8·2
  EXPECT_EQ(farray_write_solo_accesses(16), 17u); // 1 + 4·4
  EXPECT_EQ(farray_read_accesses(), 1u);
}

// ---------------------------------------------------------------------------
// Sequential semantics: the root is the pid-order fold of the leaves.
// ---------------------------------------------------------------------------

TEST(FArray, RootIsTheSumOfTheLeaves) {
  for (int n : {1, 2, 3, 4, 5, 8}) {  // pow2 and padded shapes
    World w(n);
    api::SimBackend::Mem mem(w, "fa");
    SimSum fa(mem, n);
    std::int64_t expected = 0;
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        co_await fa.write(ctx, 100 + pid);
      });
      w.run_solo(pid);
      expected += 100 + pid;
    }
    std::int64_t got = -1;
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      got = co_await fa.read_f(ctx);
    });
    w.run_solo(0);
    EXPECT_EQ(got, expected) << "n=" << n;

    // Overwriting a leaf replaces its contribution (writes are writes, not
    // joins — the non-idempotent combiner would expose double-counting).
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      co_await fa.write(ctx, 1);
    });
    w.run_solo(0);
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      got = co_await fa.read_f(ctx);
    });
    w.run_solo(0);
    EXPECT_EQ(got, expected - 100 + 1) << "n=" << n;
  }
}

TEST(FArray, NonCommutativeCombineFoldsInPidOrder) {
  const std::vector<std::int64_t> xs = {5, -3, 4, -2};
  const int n = static_cast<int>(xs.size());
  const auto leaf_value = [](std::int64_t x) {
    return Suffix::Value{x, x > 0 ? x : 0};
  };

  World w(n);
  api::SimBackend::Mem mem(w, "sfx");
  SimSuffix fa(mem, n);
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      co_await fa.write(ctx, leaf_value(xs[static_cast<std::size_t>(pid)]));
    });
    w.run_solo(pid);
  }
  Suffix::Value got;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    got = co_await fa.read_f(ctx);
  });
  w.run_solo(0);

  // Reference: strict left-to-right fold in pid order...
  Suffix::Value forward = Suffix::identity();
  Suffix::Value backward = Suffix::identity();
  for (int i = 0; i < n; ++i) {
    forward = Suffix::combine(forward, leaf_value(xs[static_cast<std::size_t>(i)]));
    backward = Suffix::combine(
        backward, leaf_value(xs[static_cast<std::size_t>(n - 1 - i)]));
  }
  EXPECT_EQ(got.total, forward.total);
  EXPECT_EQ(got.best_suffix, forward.best_suffix);
  // ...and the reversed fold differs on this input, so the equality above
  // actually pins the operand order rather than passing vacuously.
  ASSERT_NE(forward.best_suffix, backward.best_suffix);
}

// ---------------------------------------------------------------------------
// Step counts: exact solo closed forms at n ∈ {2, 4, 8, 16} under a
// non-lattice combine, and the contention bound under random adversaries.
// ---------------------------------------------------------------------------

TEST(FArray, SoloWriteMatchesClosedFormAndReadIsOneAccess) {
  std::set<std::uint64_t> read_costs;
  for (int n : {2, 4, 8, 16}) {
    World w(n);
    api::SimBackend::Mem mem(w, "fa");
    SimSum fa(mem, n);

    const auto before_write = w.counts(0);
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      co_await fa.write(ctx, 42);
    });
    w.run_solo(0);
    const auto after_write = w.counts(0);
    EXPECT_EQ(after_write.total() - before_write.total(),
              farray_write_solo_accesses(n))
        << "n=" << n;
    // The split: h node reads + 2h child reads, 1 leaf write + h CAS.
    const auto h = static_cast<std::uint64_t>(farray_height(n));
    EXPECT_EQ(after_write.reads - before_write.reads, 3 * h) << "n=" << n;
    EXPECT_EQ(after_write.writes - before_write.writes, 1 + h) << "n=" << n;

    const auto before_read = w.counts(0);
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      (void)co_await fa.read_f(ctx);
    });
    w.run_solo(0);
    const auto after_read = w.counts(0);
    const std::uint64_t read_cost = after_read.total() - before_read.total();
    EXPECT_EQ(read_cost, farray_read_accesses()) << "n=" << n;
    read_costs.insert(read_cost);
  }
  EXPECT_EQ(read_costs.size(), 1u);  // independent of n
}

// The same check under the non-commutative combiner: the access sequence is
// combiner-independent, so the closed forms hold for ANY refresher.
TEST(FArray, SoloWriteCostIsCombinerIndependent) {
  for (int n : {2, 4, 8, 16}) {
    World w(n);
    api::SimBackend::Mem mem(w, "sfx");
    SimSuffix fa(mem, n);
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      co_await fa.write(ctx, Suffix::Value{3, 3});
    });
    w.run_solo(0);
    EXPECT_EQ(w.counts(0).total(), farray_write_solo_accesses(n)) << "n=" << n;
  }
}

TEST(FArray, ContendedWritesStayWithinTheDoubleRefreshBound) {
  for (int n : {4, 8}) {
    for (const std::uint64_t seed : {21u, 22u, 23u}) {
      for (const double sticky : {0.0, 0.6}) {
        World w(n);
        api::SimBackend::Mem mem(w, "fa");
        SimSum fa(mem, n);
        const int kOps = 4;
        for (int pid = 0; pid < n; ++pid) {
          w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
            for (int i = 0; i < kOps; ++i) {
              co_await fa.write(ctx, pid * 100 + i);
            }
          });
        }
        sim::RandomScheduler rs(seed, sticky);
        ASSERT_TRUE(w.run(rs).all_done);
        for (int pid = 0; pid < n; ++pid) {
          EXPECT_LE(w.counts(pid).total(),
                    kOps * farray_write_max_accesses(n))
              << "n=" << n << " pid=" << pid << " seed=" << seed;
        }
        // Every leaf ends at its last write; the root is their sum.
        std::int64_t got = -1;
        w.spawn(0, [&](Context ctx) -> ProcessTask {
          got = co_await fa.read_f(ctx);
        });
        w.run_solo(0);
        std::int64_t expected = 0;
        for (int pid = 0; pid < n; ++pid) expected += pid * 100 + (kOps - 1);
        EXPECT_EQ(got, expected);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Exhaustive enumeration at n = 2: own-write visibility on EVERY schedule.
// With a sum there is no lattice order to argue through — the helping lemma
// alone must deliver the completed write to the root.
// ---------------------------------------------------------------------------

struct SumPairExec final : Execution {
  SumPairExec() : w(2), mem(w, "x"), fa(mem, 2) {
    w.spawn(0, [this](Context ctx) -> ProcessTask {
      co_await fa.write(ctx, 3);
      roots[0] = co_await fa.read_f(ctx);
    });
    w.spawn(1, [this](Context ctx) -> ProcessTask {
      co_await fa.write(ctx, 5);
      roots[1] = co_await fa.read_f(ctx);
    });
  }
  World& world() override { return w; }
  World w;
  api::SimBackend::Mem mem;
  SimSum fa;
  std::int64_t roots[2] = {-1, -1};
};

TEST(FArrayExplore, OwnWriteIsInTheRootOnEverySchedule) {
  const auto stats = sim::explore_all_schedules(
      [] { return std::make_unique<SumPairExec>(); },
      [&](Execution& e, const std::vector<int>&) {
        const auto& x = static_cast<SumPairExec&>(e);
        // A root read after one's own write includes that write (helping
        // lemma) and is one of the two reachable sums — never a torn or
        // double-counted value.
        ASSERT_TRUE(x.roots[0] == 3 || x.roots[0] == 8) << x.roots[0];
        ASSERT_TRUE(x.roots[1] == 5 || x.roots[1] == 8) << x.roots[1];
      });
  EXPECT_GT(stats.executions, 400u);  // C(12,6) = 924: a real search
}

// ---------------------------------------------------------------------------
// Sim-vs-rt parity: the same template over both backends performs the same
// register accesses (rt CAS splits out of writes, so rt.writes + rt.cas is
// compared against sim writes).
// ---------------------------------------------------------------------------

TEST(FArray, SimAndRtBackendsPerformTheSameAccesses) {
  for (int n : {2, 4, 8}) {
    World w(n);
    api::SimBackend::Mem mem(w, "fa");
    SimSum fa(mem, n);
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      co_await fa.write(ctx, 5);
      (void)co_await fa.read_f(ctx);
    });
    w.run_solo(0);
    const auto sim_counts = w.counts(0);

    obs::Registry reg;
    api::RtBackend::Mem rt_mem(n);
    FArray<api::RtBackend, std::int64_t, Sum> rt_fa(rt_mem, n);
    rt_mem.attach_obs(reg, "fa");
    rt_fa.write(api::RtBackend::Ctx{0}, 5).get();
    (void)rt_fa.read_f(api::RtBackend::Ctx{0}).get();
    const std::uint64_t rt_reads = reg.counter("rt.fa.reads").value();
    const std::uint64_t rt_writes = reg.counter("rt.fa.writes").value();
    const std::uint64_t rt_cas = reg.counter("rt.fa.cas").value();
    EXPECT_EQ(rt_reads, sim_counts.reads) << "n=" << n;
    EXPECT_EQ(rt_writes + rt_cas, sim_counts.writes) << "n=" << n;
  }
}

TEST(FArray, RtSumMatchesSequentialSemantics) {
  const int n = 5;  // padded: m = 8
  api::RtBackend::Mem mem(n);
  FArray<api::RtBackend, std::int64_t, Sum> fa(mem, n);
  for (int p = 0; p < n; ++p) {
    fa.write(api::RtBackend::Ctx{p}, p + 1).get();
  }
  EXPECT_EQ(fa.read_f(api::RtBackend::Ctx{0}).get(), 1 + 2 + 3 + 4 + 5);
  fa.write(api::RtBackend::Ctx{2}, 30).get();
  EXPECT_EQ(fa.read_f(api::RtBackend::Ctx{1}).get(), 1 + 2 + 30 + 4 + 5);

  api::RtBackend::Mem solo_mem(1);
  FArray<api::RtBackend, std::int64_t, Sum> solo(solo_mem, 1);
  EXPECT_EQ(solo.read_f(api::RtBackend::Ctx{0}).get(), 0);  // identity
  solo.write(api::RtBackend::Ctx{0}, 7).get();
  EXPECT_EQ(solo.read_f(api::RtBackend::Ctx{0}).get(), 7);
}

}  // namespace
}  // namespace apram::farray
