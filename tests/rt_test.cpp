// Real-thread runtime tests: SWMR register publication, snapshot scans under
// concurrent updaters, FastCounterRT conservation, approximate agreement
// with real threads, and the thread harness itself.
//
// These run on however many hardware threads exist (including 1); they rely
// on preemptive scheduling, not parallelism, so they are meaningful — if
// less adversarial — on a single core.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "agreement/approx_spec.hpp"
#include "obs/metrics.hpp"
#include "rt/approx_agreement_rt.hpp"
#include "rt/double_collect_rt.hpp"
#include "rt/fast_counter_rt.hpp"
#include "rt/reclaim.hpp"
#include "snapshot/lattice_scan.hpp"
#include "rt/register.hpp"
#include "rt/thread_harness.hpp"
#include "snapshot/baselines/mutex_snapshot.hpp"

namespace apram::rt {
namespace {

TEST(SWMRRegister, InitialValueReadable) {
  SWMRRegister<int> reg(42);
  EXPECT_EQ(reg.read(), 42);
  EXPECT_EQ(reg.versions(), 1u);
}

TEST(SWMRRegister, WriteThenRead) {
  SWMRRegister<std::string> reg("a");
  reg.write("b");
  reg.write("c");
  EXPECT_EQ(reg.read(), "c");
  EXPECT_EQ(reg.versions(), 3u);
}

TEST(SWMRRegister, ConcurrentReadersSeeSomeWrittenValue) {
  SWMRRegister<std::uint64_t> reg(0);
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> seen_bad(8, 0);
  parallel_run(3, [&](int pid) {
    if (pid == 0) {
      for (std::uint64_t i = 1; i <= 20000; ++i) reg.write(i);
      stop.store(true);
    } else {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t v = reg.read();
        // Single writer writing 1,2,3,...: reads must be monotone per reader.
        if (v < last) ++seen_bad[static_cast<std::size_t>(pid)];
        last = v;
      }
    }
  });
  EXPECT_EQ(seen_bad[1], 0u);
  EXPECT_EQ(seen_bad[2], 0u);
}

// --------------------------------------------------------- reclamation ----

TEST(VersionArena, HeldVersionSurvivesAHundredPublishes) {
  reclaim::VersionArena<std::string> arena(1, "v0");
  const auto ref = arena.acquire();
  for (int i = 1; i <= 100; ++i) {
    arena.publish(arena.alloc(0, "v" + std::to_string(i)));
  }
  // The pin: 100 publications later the acquired version is still intact.
  EXPECT_EQ(arena.get(ref), "v0");
  const auto held = arena.stats();
  EXPECT_EQ(held.allocated, 101u);
  EXPECT_EQ(held.live_versions(), 2u);  // the pin + the published version
  EXPECT_GE(held.recycled, 98u);        // everything else recycled around it

  arena.release(ref);  // last holder out retires the pinned version
  EXPECT_EQ(arena.stats().live_versions(), 1u);
  EXPECT_EQ(arena.stats().retired, held.retired + 1);
}

TEST(VersionArena, DeallocReturnsTheSlotForImmediateReuse) {
  reclaim::VersionArena<int> arena(1, 0);
  const auto before = arena.stats();
  const std::uint32_t a = arena.alloc(0, 1);
  arena.dealloc(a);  // the failed-CAS cleanup path
  const std::uint32_t b = arena.alloc(0, 2);
  EXPECT_EQ(a, b);  // LIFO free list hands the same slot back
  EXPECT_EQ(arena.stats().recycled - before.recycled, 1u);
  arena.dealloc(b);
  EXPECT_EQ(arena.stats().live_versions(), 1u);  // just the published initial
}

TEST(SWMRRegister, MemoryStaysBoundedAcrossManyWrites) {
  SWMRRegister<std::vector<int>> reg(std::vector<int>(8, 0));
  for (int i = 1; i <= 1000; ++i) reg.write(std::vector<int>(8, i));
  EXPECT_EQ(reg.read()[0], 1000);
  EXPECT_EQ(reg.versions(), 1001u);
#ifndef APRAM_RT_UNBOUNDED
  const auto s = reg.reclaim_stats();
  EXPECT_LE(s.live_versions(), 2u);  // memory ∝ holders, not writes
  EXPECT_GE(s.recycled, 990u);
#endif
}

TEST(CASValueRegister, FailedValueCompareAllocatesNothing) {
  CASValueRegister<int> reg(2, 10);
  const auto before = reg.reclaim_stats();
  EXPECT_FALSE(reg.compare_exchange(1, /*expected=*/99, 5));
  EXPECT_EQ(reg.read(), 10);
  EXPECT_EQ(reg.reclaim_stats().allocated, before.allocated);
}

TEST(CASValueRegister, SuccessfulSwapsRecycleSupersededVersions) {
  CASValueRegister<int> reg(1, 0);
  for (int i = 1; i <= 200; ++i) {
    EXPECT_TRUE(reg.compare_exchange(0, i - 1, i));
  }
  EXPECT_EQ(reg.read(), 200);
#ifndef APRAM_RT_UNBOUNDED
  EXPECT_LE(reg.reclaim_stats().live_versions(), 2u);
#endif
}

TEST(UnboundedRegisters, PaperModeKeepsEveryVersion) {
  // The escape-hatch classes are always compiled (APRAM_RT_UNBOUNDED only
  // flips which ones the default aliases name).
  UnboundedSWMRRegister<int> reg(0);
  for (int i = 1; i <= 10; ++i) reg.write(i);
  EXPECT_EQ(reg.read(), 10);
  EXPECT_EQ(reg.versions(), 11u);
  EXPECT_EQ(reg.reclaim_stats().live_versions(), 11u);  // nothing reclaimed

  UnboundedCASValueRegister<int> cas(2, 0);
  EXPECT_TRUE(cas.compare_exchange(0, 0, 1));
  EXPECT_FALSE(cas.compare_exchange(1, 0, 2));  // stale expected
  EXPECT_EQ(cas.read(), 1);
  EXPECT_EQ(cas.versions(), 2u);  // initial + the one successful swap
}

TEST(ThreadHarness, PinningBeyondShardCapIsCountedNotSilent) {
  const std::uint64_t before = obs::pinning_degraded();
  // kMaxShards+2 workers: the two clamped pins must be visible in the
  // counter (and warn once on stderr), not just a debug-build assert.
  parallel_run(obs::kMaxShards + 2, [](int) {});
  EXPECT_GE(obs::pinning_degraded() - before, 2u);
}

TEST(ThreadHarness, ParallelRunRunsEveryPid) {
  std::vector<std::atomic<int>> hits(5);
  parallel_run(5, [&](int pid) { hits[static_cast<std::size_t>(pid)] = pid + 1; });
  for (int i = 0; i < 5; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], i + 1);
}

TEST(LatticeScanRT, SequentialJoinSemantics) {
  LatticeScanRT<MaxLattice<std::int64_t>> ls(3);
  ls.write_l(0, 10);
  ls.write_l(1, 30);
  ls.write_l(2, 20);
  EXPECT_EQ(ls.read_max(0), 30);
  EXPECT_EQ(ls.read_max(2), 30);
}

TEST(AtomicSnapshotRT, SequentialUpdateScan) {
  AtomicSnapshotRT<int> snap(3);
  snap.update(0, 5);
  snap.update(2, 7);
  const auto view = snap.scan(1);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 5);
  EXPECT_FALSE(view[1].has_value());
  EXPECT_EQ(view[2], 7);
}

TEST(AtomicSnapshotRT, ScansAreMonotoneUnderConcurrentUpdates) {
  const int n = 4;
  AtomicSnapshotRT<std::uint64_t> snap(n);
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  parallel_run(n, [&](int pid) {
    if (pid == 0) {
      // Scanner: per-slot values must be non-decreasing across scans
      // (updaters write increasing values; comparable scans => monotone).
      std::vector<std::uint64_t> last(static_cast<std::size_t>(n), 0);
      for (int k = 0; k < 300; ++k) {
        const auto view = snap.scan(pid);
        for (std::size_t q = 0; q < view.size(); ++q) {
          const std::uint64_t v = view[q].value_or(0);
          if (v < last[q]) violation.store(true);
          last[q] = v;
        }
      }
      stop.store(true);
    } else {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        snap.update(pid, ++i);
      }
    }
  });
  EXPECT_FALSE(violation.load());
}

TEST(AtomicSnapshotRT, ScanSeesOwnPriorUpdate) {
  const int n = 3;
  AtomicSnapshotRT<std::uint64_t> snap(n);
  std::atomic<bool> bad{false};
  parallel_run(n, [&](int pid) {
    for (std::uint64_t i = 1; i <= 200; ++i) {
      snap.update(pid, i);
      const auto view = snap.scan(pid);
      const auto own = view[static_cast<std::size_t>(pid)];
      if (!own.has_value() || *own < i) bad.store(true);
    }
  });
  EXPECT_FALSE(bad.load());
}

TEST(FastCounterRT, ConservationUnderConcurrency) {
  const int n = 4, k = 500;
  FastCounterRT ctr(n);
  parallel_run(n, [&](int pid) {
    for (int i = 0; i < k; ++i) ctr.inc(pid, 1);
  });
  EXPECT_EQ(ctr.read(0), n * k);
}

TEST(FastCounterRT, DecrementsBalanceOut) {
  const int n = 4;
  FastCounterRT ctr(n);
  parallel_run(n, [&](int pid) {
    for (int i = 0; i < 100; ++i) {
      ctr.inc(pid, 2);
      ctr.dec(pid, 1);
    }
  });
  EXPECT_EQ(ctr.read(0), n * 100);
}

TEST(DoubleCollectRT, SequentialBehaviour) {
  DoubleCollectSnapshotRT<int> snap(2);
  snap.update(0, 9);
  std::uint64_t attempts = 0;
  const auto view = snap.scan(1, &attempts);
  EXPECT_EQ(view[0], 9);
  EXPECT_EQ(attempts, 1u);
}

TEST(MutexSnapshotRT, SequentialBehaviour) {
  MutexSnapshot<int> snap(2);
  snap.update(1, 4);
  const auto view = snap.scan(0);
  EXPECT_FALSE(view[0].has_value());
  EXPECT_EQ(view[1], 4);
}

TEST(ApproxAgreementRT, ThreadsConvergeWithinEpsilon) {
  const int n = 4;
  const double eps = 1.0 / 128.0;
  ApproxAgreementRT aa(n, eps);
  // Concurrent-participation regime: install all inputs first.
  const std::vector<double> inputs{-3.0, 1.5, 0.25, 2.75};
  for (int p = 0; p < n; ++p) aa.input(p, inputs[static_cast<std::size_t>(p)]);

  std::vector<double> outs(static_cast<std::size_t>(n));
  parallel_run(n, [&](int pid) {
    outs[static_cast<std::size_t>(pid)] = aa.output(pid);
  });
  const RealRange in = range_of(inputs);
  const RealRange out = range_of(outs);
  EXPECT_TRUE(in.contains(out));
  EXPECT_LT(out.size(), eps);
}

TEST(ApproxAgreementRT, RepeatedRunsAlwaysValid) {
  for (int trial = 0; trial < 10; ++trial) {
    const double eps = 0.01;
    ApproxAgreementRT aa(2, eps);
    aa.input(0, 0.0);
    aa.input(1, 1.0);
    std::vector<double> outs(2);
    parallel_run(2, [&](int pid) { outs[static_cast<std::size_t>(pid)] = aa.output(pid); });
    EXPECT_LT(std::fabs(outs[0] - outs[1]), eps) << "trial=" << trial;
    EXPECT_GE(std::min(outs[0], outs[1]), 0.0);
    EXPECT_LE(std::max(outs[0], outs[1]), 1.0);
  }
}

TEST(ThroughputRun, CountsOps) {
  ThroughputRun tr(2);
  std::atomic<std::uint64_t> total{0};
  const double rate = tr.run(std::chrono::milliseconds(50), [&](int) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_GT(rate, 0.0);
  std::uint64_t counted = 0;
  for (auto c : tr.ops_per_thread()) counted += c;
  EXPECT_EQ(counted, total.load());
}

}  // namespace
}  // namespace apram::rt
