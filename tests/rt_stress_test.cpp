// Real-thread stress tests with post-hoc linearizability checking.
//
// Threads hammer the rt objects while every operation's invocation/response
// window is timestamped from a global atomic counter; the recorded histories
// then go through the same Wing–Gong checker the simulator histories use.
// On a single core these interleavings come from preemption; on many cores
// from true parallelism — either way the checker accepts only genuinely
// linearizable behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "lincheck/checker.hpp"
#include "objects/specs.hpp"
#include "rt/afek_snapshot_rt.hpp"
#include "rt/fast_counter_rt.hpp"
#include "snapshot/lattice_scan.hpp"
#include "rt/thread_harness.hpp"
#include "rt_recorder.hpp"
#include "snapshot/tree_snapshot.hpp"

namespace apram::rt {
namespace {

using C = CounterSpec;

TEST(RtStress, FastCounterHistoriesAreLinearizable) {
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 3;
    FastCounterRT ctr(n);
    RtRecorder<C> rec;
    parallel_run(n, [&](int pid) {
      for (int i = 0; i < 3; ++i) {
        {
          const auto tok = rec.begin(pid, C::inc(1));
          ctr.inc(pid, 1);
          rec.end(tok, 0);
        }
        {
          const auto tok = rec.begin(pid, C::read());
          const std::int64_t v = ctr.read(pid);
          rec.end(tok, v);
        }
      }
    });
    auto history = rec.take();
    ASSERT_LE(history.size(), 64u);
    EXPECT_TRUE(is_linearizable<C>(std::move(history))) << "trial " << trial;
  }
}

TEST(RtStress, FastCounterConservationUnderLoad) {
  const int n = 4;
  FastCounterRT ctr(n);
  ThroughputRun tr(n);
  (void)tr.run(std::chrono::milliseconds(60), [&](int pid) {
    ctr.inc(pid, 1);
  });
  std::uint64_t total = 0;
  for (auto c : tr.ops_per_thread()) total += c;
  EXPECT_EQ(ctr.read(0), static_cast<std::int64_t>(total));
}

// Snapshot spec over 3 slots for the rt snapshot objects.
struct SnapSpec {
  static constexpr int kSlots = 3;
  enum class Kind : std::uint8_t { kUpdate, kScan };
  struct Invocation {
    Kind kind = Kind::kScan;
    int pid = 0;
    std::int64_t value = 0;
    friend bool operator==(const Invocation&, const Invocation&) = default;
  };
  using State = std::vector<std::int64_t>;
  using Response = std::vector<std::int64_t>;
  static State initial() { return State(kSlots, -1); }
  static std::pair<State, Response> apply(const State& s,
                                          const Invocation& inv) {
    if (inv.kind == Kind::kUpdate) {
      State next = s;
      next[static_cast<std::size_t>(inv.pid)] = inv.value;
      return {std::move(next), {}};
    }
    return {s, s};
  }
  static bool commutes(const Invocation&, const Invocation&) { return false; }
  static bool overwrites(const Invocation&, const Invocation&) {
    return false;
  }
};

template <class Snapshot>
void run_snapshot_lincheck_stress(int trials) {
  for (int trial = 0; trial < trials; ++trial) {
    const int n = 3;
    Snapshot snap(n);
    RtRecorder<SnapSpec> rec;
    parallel_run(n, [&](int pid) {
      for (int i = 0; i < 2; ++i) {
        {
          const std::int64_t v = pid * 100 + i;
          const auto tok =
              rec.begin(pid, {SnapSpec::Kind::kUpdate, pid, v});
          snap.update(pid, v);
          rec.end(tok, {});
        }
        {
          const auto tok = rec.begin(pid, {SnapSpec::Kind::kScan, 0, 0});
          const auto view = snap.scan(pid);
          std::vector<std::int64_t> flat;
          for (const auto& s : view) flat.push_back(s.value_or(-1));
          rec.end(tok, flat);
        }
      }
    });
    auto history = rec.take();
    EXPECT_TRUE(is_linearizable<SnapSpec>(std::move(history)))
        << "trial " << trial;
  }
}

TEST(RtStress, LatticeScanSnapshotHistoriesAreLinearizable) {
  run_snapshot_lincheck_stress<AtomicSnapshotRT<std::int64_t>>(8);
}

TEST(RtStress, AfekSnapshotHistoriesAreLinearizable) {
  run_snapshot_lincheck_stress<AfekSnapshotRT<std::int64_t>>(8);
}

TEST(RtStress, TreeSnapshotHistoriesAreLinearizable) {
  run_snapshot_lincheck_stress<snapshot::TreeSnapshotRT<std::int64_t>>(8);
}

TEST(RtStress, TreeScanRootIsMonotoneUnderConcurrentUpdates) {
  // Node monotonicity is the linchpin of the TreeScan linearizability
  // argument; hammer it with real parallelism on the MaxLattice instance.
  const int n = 4;
  snapshot::TreeScanRT<MaxLattice<std::int64_t>> tree(n);
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  parallel_run(n, [&](int pid) {
    if (pid == 0) {
      std::int64_t last = tree.scan(pid);
      for (int k = 0; k < 400; ++k) {
        const std::int64_t v = tree.scan(pid);
        if (v < last) violation.store(true);
        last = v;
      }
      stop.store(true);
    } else {
      std::int64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        tree.update(pid, pid * 1'000'000 + ++i);
      }
    }
  });
  EXPECT_FALSE(violation.load());
}

TEST(RtStress, AfekSnapshotSequentialBehaviour) {
  AfekSnapshotRT<int> snap(3);
  snap.update(0, 1);
  snap.update(2, 9);
  const auto view = snap.scan(1);
  EXPECT_EQ(view[0], 1);
  EXPECT_FALSE(view[1].has_value());
  EXPECT_EQ(view[2], 9);
}

TEST(RtStress, AfekScanIsMonotoneUnderConcurrentUpdates) {
  const int n = 3;
  AfekSnapshotRT<std::uint64_t> snap(n);
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  parallel_run(n, [&](int pid) {
    if (pid == 0) {
      std::vector<std::uint64_t> last(static_cast<std::size_t>(n), 0);
      for (int k = 0; k < 200; ++k) {
        const auto view = snap.scan(pid);
        for (std::size_t q = 0; q < view.size(); ++q) {
          const std::uint64_t v = view[q].value_or(0);
          if (v < last[q]) violation.store(true);
          last[q] = v;
        }
      }
      stop.store(true);
    } else {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) snap.update(pid, ++i);
    }
  });
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace apram::rt
