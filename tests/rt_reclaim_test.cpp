// Churn soak: bounded-memory certification for the rt versioned arena.
//
// The unbounded paper-mode registers leak one version per write by design;
// the bounded arena's whole claim is that memory is proportional to
// CONCURRENT HOLDERS, never to write count. These tests hammer that claim
// three ways and measure it two ways:
//
//   * live-version accounting — sampled concurrently from inside the run,
//     per register: live_versions must stay ≤ readers + writers + O(1)
//     (small slack for in-flight allocations and monotone-approximate
//     stats), never drift with the write count;
//   * process RSS from /proc/self/status — flat across epochs: each epoch
//     re-runs the same churn, so any per-write leak compounds visibly.
//
// The fault-campaign variant parks a reader BETWEEN acquire and dereference
// (fault::StallPoint::kHold) while a writer churns hundreds of versions past
// it: the pinned version must stay intact (checksummed payload) and the
// arena must keep recycling everything else around the pin.
//
// Epoch lengths are count-based, not time-based, so the soak is bounded
// wall-time on any machine (including the 1-CPU CI runner) and ASan/TSan
// runs simply take proportionally longer.
//
// On teardown the suite writes rt_reclaim.metrics.json (obs flat-JSON
// schema) with the soak's gauges — the reclaim-soak CI job uploads it as an
// artifact and asserts the RSS ceiling from it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "fault/rt_inject.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "rt/register.hpp"
#include "rt/thread_harness.hpp"
#include "snapshot/tree_snapshot.hpp"

namespace apram::rt {
namespace {

// Sanitizer allocators break the RSS-flatness assertion by design: ASan
// parks every freed block in a quarantine (256 MB by default) before real
// reuse, so recycling payloads inflates RSS until the quarantine caps out,
// and TSan's shadow has the same shape. Under sanitizers the live-version
// accounting (plus LSan itself at exit) carries the leak check; the plain
// build asserts RSS flatness directly.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitizedAllocator = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitizedAllocator = true;
#else
constexpr bool kSanitizedAllocator = false;
#endif
#else
constexpr bool kSanitizedAllocator = false;
#endif

// VmRSS of this process in kilobytes (0 if /proc is unavailable — the
// RSS-based assertions then auto-pass and the accounting assertions carry
// the test).
std::uint64_t vm_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::uint64_t kb = 0;
      for (char c : line) {
        if (c >= '0' && c <= '9') kb = kb * 10 + static_cast<std::uint64_t>(c - '0');
      }
      return kb;
    }
  }
  return 0;
}

// Soak-wide gauges, exported as the CI artifact on teardown.
obs::Registry& soak_registry() {
  static obs::Registry reg;
  return reg;
}

class ReclaimSoakEnv : public ::testing::Environment {
 public:
  void TearDown() override {
    soak_registry().gauge("soak.final_rss_kb").set(
        static_cast<std::int64_t>(vm_rss_kb()));
    // artifact_path keeps source-dir invocations from leaking the file
    // into the tree ($APRAM_ARTIFACT_DIR, else the test binary's dir).
    obs::write_metrics_json(obs::artifact_path("rt_reclaim.metrics.json"),
                            soak_registry(), nullptr, "rt_reclaim_soak");
  }
};

[[maybe_unused]] const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new ReclaimSoakEnv);

// Tracks the worst live_versions() seen by concurrent samplers.
struct LiveWatermark {
  std::atomic<std::uint64_t> max{0};
  void sample(std::uint64_t v) {
    std::uint64_t cur = max.load(std::memory_order_relaxed);
    while (v > cur && !max.compare_exchange_weak(cur, v,
                                                 std::memory_order_relaxed)) {
    }
  }
};

// ---------------------------------------------------------------------------
// SWMR churn: one writer republishing a heap-heavy payload, n-1 readers
// hammering the read path and sampling the live-version watermark.
// ---------------------------------------------------------------------------

TEST(ReclaimSoak, SwmrChurnKeepsLiveVersionsAndRssFlat) {
  constexpr int kThreads = 4;            // 1 writer + 3 readers
  constexpr int kEpochs = 6;
  constexpr std::uint64_t kWrites = 3000;
  constexpr std::size_t kPayloadWords = 128;  // ~1 KiB/version: leaks compound

  SWMRRegister<std::vector<std::uint64_t>> reg(
      std::vector<std::uint64_t>(kPayloadWords, 0));
  LiveWatermark peak;
  std::uint64_t rss_after_first_epoch = 0;

  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    std::atomic<bool> done{false};
    // Written values are globally monotone (base + i), not per-epoch: a
    // reader that catches the previous epoch's leftover version before this
    // epoch's writer publishes must not see its monotonicity "violated".
    const std::uint64_t base = static_cast<std::uint64_t>(epoch) * kWrites;
    parallel_run(kThreads, [&](int pid) {
      if (pid == 0) {
        for (std::uint64_t i = 1; i <= kWrites; ++i) {
          reg.write(std::vector<std::uint64_t>(kPayloadWords, base + i));
        }
        done.store(true, std::memory_order_release);
      } else {
        std::uint64_t last = 0;
        while (!done.load(std::memory_order_acquire)) {
          const auto v = reg.read();
          ASSERT_EQ(v.size(), kPayloadWords);
          ASSERT_EQ(v.front(), v.back());  // versions are internally uniform
          ASSERT_GE(v.front(), last);      // single writer => monotone
          last = v.front();
          peak.sample(reg.reclaim_stats().live_versions());
        }
      }
    });
    if (epoch == 0) rss_after_first_epoch = vm_rss_kb();
  }

  const auto s = reg.reclaim_stats();
  EXPECT_EQ(s.allocated, 1u + kWrites * kEpochs);

  const std::uint64_t rss_final = vm_rss_kb();
#ifndef APRAM_RT_UNBOUNDED
  // Live versions ≤ readers + writers + O(1): each reader holds ≤ 1 version
  // at a time, the writer ≤ 1 in-flight, plus the published one and slack
  // for monotone-approximate concurrent sampling.
  const std::uint64_t bound = kThreads + 4;
  EXPECT_LE(peak.max.load(), bound);
  EXPECT_LE(s.live_versions(), 2u);  // quiescent: published (+ slack)
  // recycled == allocated − (distinct slots ever used); distinct is bounded
  // by the peak concurrent demand, never the write count.
  EXPECT_GE(s.recycled, s.allocated - 32);

  // RSS flat across epochs: a per-write leak would add ~3 MiB per epoch
  // (kWrites × 1 KiB); allow generous allocator noise far below that.
  if (!kSanitizedAllocator && rss_after_first_epoch != 0 && rss_final != 0) {
    EXPECT_LE(rss_final, rss_after_first_epoch + 4096)
        << "RSS grew across identical churn epochs — per-write leak?";
  }
#else
  // Paper mode retains every version by design: the same churn that the
  // bounded arena absorbs shows up one-to-one in the live count.
  EXPECT_EQ(s.live_versions(), s.allocated);
  EXPECT_EQ(s.recycled, 0u);
#endif

  soak_registry().gauge("soak.swmr.peak_live_versions")
      .set(static_cast<std::int64_t>(peak.max.load()));
  soak_registry().gauge("soak.swmr.recycled")
      .set(static_cast<std::int64_t>(s.recycled));
  soak_registry().gauge("soak.swmr.rss_epoch1_kb")
      .set(static_cast<std::int64_t>(rss_after_first_epoch));
  soak_registry().gauge("soak.swmr.rss_final_kb")
      .set(static_cast<std::int64_t>(rss_final));
}

// ---------------------------------------------------------------------------
// CAS churn: every thread races compare_exchange on one multi-writer
// register. Losers must return their slots immediately (failed-CAS cleanup);
// the seq payload proves exactly one winner per transition.
// ---------------------------------------------------------------------------

struct SeqVal {
  std::uint64_t seq = 0;
  std::uint64_t author = 0;
  std::vector<std::uint64_t> blob;  // heap payload so loser leaks show in RSS
  friend bool operator==(const SeqVal& a, const SeqVal& b) {
    return a.seq == b.seq && a.author == b.author;
  }
};

TEST(ReclaimSoak, CasChurnCleansUpLosersAndConserves) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kAttemptsPerThread = 4000;
  constexpr std::size_t kBlobWords = 64;

  CASValueRegister<SeqVal> reg(kThreads, SeqVal{0, 0, {}});
  LiveWatermark peak;
  std::vector<std::uint64_t> wins(kThreads, 0);

  parallel_run(kThreads, [&](int pid) {
    std::uint64_t my_wins = 0;
    for (std::uint64_t i = 0; i < kAttemptsPerThread; ++i) {
      const SeqVal cur = reg.read();
      SeqVal next{cur.seq + 1, static_cast<std::uint64_t>(pid),
                  std::vector<std::uint64_t>(kBlobWords, cur.seq + 1)};
      if (reg.compare_exchange(pid, cur, std::move(next))) ++my_wins;
      if ((i & 63) == 0) peak.sample(reg.reclaim_stats().live_versions());
    }
    wins[static_cast<std::size_t>(pid)] = my_wins;
  });

  std::uint64_t total_wins = 0;
  for (auto w : wins) total_wins += w;
  const SeqVal last = reg.read();
  // Conservation: each successful CAS advances seq by exactly one.
  EXPECT_EQ(last.seq, total_wins);
  // Each of one thread's failures implies a distinct win by another thread
  // inside that attempt's window, so total wins ≥ one thread's attempts.
  EXPECT_GE(total_wins, kAttemptsPerThread);

  const auto s = reg.reclaim_stats();
#ifndef APRAM_RT_UNBOUNDED
  // Every attempt allocated at most one slot; every loser's slot and every
  // superseded version must be back on a free list at quiescence. A CASer
  // can hold its acquired version AND a prepared slot simultaneously, hence
  // the 2× in the in-flight bound.
  EXPECT_LE(s.live_versions(), 2u);
  EXPECT_LE(peak.max.load(), 2u * kThreads + 4);
#else
  EXPECT_EQ(s.live_versions(), s.allocated);  // grow-only by design
  EXPECT_EQ(s.recycled, 0u);
#endif

  soak_registry().gauge("soak.cas.peak_live_versions")
      .set(static_cast<std::int64_t>(peak.max.load()));
  soak_registry().gauge("soak.cas.acquire_contention")
      .set(static_cast<std::int64_t>(s.acquire_contention));
  soak_registry().gauge("soak.cas.wins")
      .set(static_cast<std::int64_t>(total_wins));
}

// ---------------------------------------------------------------------------
// Algorithm-level churn: a whole TreeSnapshotRT (CAS registers at internal
// nodes, SWMR at the leaves) under update/scan load, end to end through the
// RtBackend Mem — the bound must hold summed over every register of a real
// structure, not just a lone register.
// ---------------------------------------------------------------------------

TEST(ReclaimSoak, TreeSnapshotChurnStaysBounded) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 800;

  snapshot::TreeSnapshotRT<std::uint64_t> snap(kThreads);
  parallel_run(kThreads, [&](int pid) {
    for (int i = 1; i <= kOpsPerThread; ++i) {
      snap.update(pid, static_cast<std::uint64_t>(i));
      if ((i & 15) == 0) {
        const auto view = snap.scan(pid);
        ASSERT_EQ(view.size(), static_cast<std::size_t>(kThreads));
      }
    }
  });

  const auto s = snap.reclaim_stats();
#ifndef APRAM_RT_UNBOUNDED
  // Quiescent: one published version per register plus nothing else. The
  // tree has O(kThreads) registers; write count is ~100× larger, so this
  // bound genuinely separates bounded from unbounded behaviour.
  EXPECT_LE(s.live_versions(), 4u * kThreads + 8);
  EXPECT_GE(s.recycled + 64, s.allocated - s.live_versions());
#else
  EXPECT_EQ(s.live_versions(), s.allocated);  // grow-only by design
  EXPECT_EQ(s.recycled, 0u);
#endif

  snap.export_reclaim_gauges(soak_registry(), "soak_tree");
}

// ---------------------------------------------------------------------------
// Fault-campaign variant: a reader parked mid-read (between acquire and
// dereference) pins its version across hundreds of writes. The pinned
// version must read back intact, and the arena must keep recycling the
// other versions around the pin.
// ---------------------------------------------------------------------------

TEST(ReclaimSoak, StalledReaderPinsItsVersionAcrossChurn) {
  constexpr std::size_t kPayloadWords = 256;
  constexpr std::uint64_t kChurnWrites = 500;

  fault::RtInjector inj(fault::RtInjectOptions{});
  SWMRRegister<std::vector<std::uint64_t>> reg(
      std::vector<std::uint64_t>(kPayloadWords, 1));
  reg.attach_injector(&inj);

  std::atomic<bool> victim_read_intact{false};
  std::uint64_t live_during_stall = 0;
  std::uint64_t recycled_during_stall = 0;

  run_with_stall(
      /*num_threads=*/1,
      [&](int) {
        // Parks at the hold point of this read, version acquired.
        const auto v = reg.read();
        bool uniform = v.size() == kPayloadWords;
        for (auto w : v) uniform = uniform && (w == v.front());
        victim_read_intact.store(uniform, std::memory_order_release);
      },
      inj, /*victim=*/0, /*stall_after=*/0,
      [&] {
        // Victim is parked holding version 1. Churn past it: every new
        // version except the pin and the current one must recycle.
        const auto before = reg.reclaim_stats();
        for (std::uint64_t i = 2; i <= 1 + kChurnWrites; ++i) {
          reg.write(std::vector<std::uint64_t>(kPayloadWords, i));
        }
        const auto after = reg.reclaim_stats();
        live_during_stall = after.live_versions();
        recycled_during_stall = after.recycled - before.recycled;
      },
      nullptr, fault::StallPoint::kHold);

  // The pinned version was dereferenced AFTER hundreds of overwrites and
  // must still have been internally uniform — ASan would also flag the
  // use-after-free if the arena had recycled it.
  EXPECT_TRUE(victim_read_intact.load(std::memory_order_acquire));
  EXPECT_EQ(reg.read().front(), 1 + kChurnWrites);

#ifndef APRAM_RT_UNBOUNDED
  // While pinned: the held version + the published one + slack. The pin
  // must NOT stop recycling of the churned versions.
  EXPECT_LE(live_during_stall, 4u);
  EXPECT_GE(recycled_during_stall, kChurnWrites - 4);
  // Quiescent: the victim released; only the published version lives.
  EXPECT_LE(reg.reclaim_stats().live_versions(), 2u);
#endif

  soak_registry().gauge("soak.stall.live_during_stall")
      .set(static_cast<std::int64_t>(live_during_stall));
  soak_registry().gauge("soak.stall.recycled_during_stall")
      .set(static_cast<std::int64_t>(recycled_during_stall));
}

// Same stall, many readers: several victims would need several injectors
// (one stall at a time), so instead keep one pinned reader and add live
// readers streaming — reclamation must neither free the pin nor block the
// stream.
TEST(ReclaimSoak, StreamingReadersProgressPastAPinnedReader) {
  constexpr std::size_t kPayloadWords = 64;

  fault::RtInjector inj(fault::RtInjectOptions{});
  SWMRRegister<std::vector<std::uint64_t>> reg(
      std::vector<std::uint64_t>(kPayloadWords, 1));
  reg.attach_injector(&inj);

  std::atomic<std::uint64_t> streamed{0};
  run_with_stall(
      /*num_threads=*/3,
      [&](int pid) {
        if (pid == 0) {
          (void)reg.read();  // parks at the hold point
        } else {
          // Uninjected only for pid 0's quota: other pids never match the
          // stall, so they stream freely while the victim is parked.
          for (int i = 0; i < 500; ++i) {
            const auto v = reg.read();
            ASSERT_EQ(v.front(), v.back());
            streamed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      inj, /*victim=*/0, /*stall_after=*/0,
      [&] {
        for (std::uint64_t i = 2; i <= 200; ++i) {
          reg.write(std::vector<std::uint64_t>(kPayloadWords, i));
        }
      },
      nullptr, fault::StallPoint::kHold);

  EXPECT_EQ(streamed.load(), 2u * 500u);
  EXPECT_EQ(reg.read().front(), 200u);
}

}  // namespace
}  // namespace apram::rt
