// Additional object coverage: the join-map dictionary (algebra validation,
// sequential and concurrent semantics, linearizability), n > 2 commit-adopt
// property tests under random schedules, plain-mode universal construction,
// and lincheck round-trips for the grow-set and max-register specs.
#include <gtest/gtest.h>

#include <vector>

#include "algebra/check.hpp"
#include "lincheck/checker.hpp"
#include "objects/adopt_commit.hpp"
#include "objects/grow_set.hpp"
#include "objects/join_map.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace apram {
namespace {

using sim::Context;
using sim::ProcessTask;
using sim::World;

// ---------------------------------------------------------------------------
// JoinMap
// ---------------------------------------------------------------------------

JoinMapSpec::Invocation random_jm_inv(Rng& rng) {
  switch (rng.below(3)) {
    case 0: return JoinMapSpec::put(rng.range(0, 3), rng.range(0, 9));
    case 1: return JoinMapSpec::get(rng.range(0, 3));
    default: return JoinMapSpec::size();
  }
}

TEST(JoinMap, DeclaredAlgebraMatchesDefinitionsAndProperty1) {
  Rng rng(1201);
  for (int t = 0; t < 600; ++t) {
    auto s = JoinMapSpec::initial();
    for (std::uint64_t i = 0, len = rng.below(5); i < len; ++i) {
      s = JoinMapSpec::apply(s, random_jm_inv(rng)).first;
    }
    const auto p = random_jm_inv(rng);
    const auto q = random_jm_inv(rng);
    const auto v = validate_pair_at<JoinMapSpec>(s, p, q);
    EXPECT_TRUE(v.declared_consistent);
    EXPECT_TRUE(v.property1);
    EXPECT_TRUE(declared_property1<JoinMapSpec>(p, q));
  }
}

TEST(JoinMap, SequentialSemantics) {
  World w(1);
  JoinMapSim m(w, 1);
  std::optional<std::int64_t> got;
  std::optional<std::int64_t> missing;
  std::int64_t size = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await m.put(ctx, 1, 10);
    co_await m.put(ctx, 1, 7);   // lower value: no effect (join = max)
    co_await m.put(ctx, 2, 5);
    got = co_await m.get(ctx, 1);
    missing = co_await m.get(ctx, 99);
    size = co_await m.size(ctx);
  });
  w.run_solo(0);
  EXPECT_EQ(got, 10);
  EXPECT_FALSE(missing.has_value());
  EXPECT_EQ(size, 2);
}

TEST(JoinMap, ConcurrentPutsConvergeToPerKeyMax) {
  const int n = 3;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    World w(n);
    JoinMapSim m(w, n);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        co_await m.put(ctx, 0, pid + 1);       // all race on key 0
        co_await m.put(ctx, pid + 10, pid);    // private keys
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);
    std::optional<std::int64_t> hot;
    std::int64_t size = -1;
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      hot = co_await m.get(ctx, 0);
      size = co_await m.size(ctx);
    });
    w.run_solo(0);
    EXPECT_EQ(hot, n) << "seed=" << seed;  // max of {1..n}, nothing lost
    EXPECT_EQ(size, n + 1) << "seed=" << seed;
  }
}

TEST(JoinMap, HistoriesAreLinearizable) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const int n = 3;
    World w(n);
    JoinMapSim m(w, n);
    HistoryRecorder<JoinMapSpec> rec;
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        {
          const auto inv = JoinMapSpec::put(0, pid + 1);
          const auto tok = rec.begin(pid, inv, ctx.world().global_step());
          co_await m.put(ctx, 0, pid + 1);
          rec.end(tok, 0, ctx.world().global_step());
        }
        {
          const auto inv = JoinMapSpec::get(0);
          const auto tok = rec.begin(pid, inv, ctx.world().global_step());
          const auto got = co_await m.get(ctx, 0);
          rec.end(tok, got.value_or(JoinMapSpec::kMissing),
                  ctx.world().global_step());
        }
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);
    EXPECT_TRUE(is_linearizable<JoinMapSpec>(rec.ops())) << "seed=" << seed;
  }
}

// ---------------------------------------------------------------------------
// Commit-adopt at n > 2 (exhaustive coverage lives in explore_test)
// ---------------------------------------------------------------------------

TEST(AdoptCommitWide, CoherenceAndValidityUnderRandomSchedules) {
  for (int n : {3, 4}) {
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      World w(n);
      AdoptCommitSim ca(w, n, "ca");
      std::vector<CaResult> results(static_cast<std::size_t>(n));
      Rng rng(seed * 17 + static_cast<std::uint64_t>(n));
      std::vector<std::int64_t> inputs;
      for (int i = 0; i < n; ++i) inputs.push_back(rng.range(0, 2));
      for (int pid = 0; pid < n; ++pid) {
        w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
          results[static_cast<std::size_t>(pid)] = co_await ca.propose(
              ctx, inputs[static_cast<std::size_t>(pid)]);
        });
      }
      sim::RandomScheduler sched(seed, seed % 2 ? 0.75 : 0.0);
      ASSERT_TRUE(w.run(sched).all_done);

      std::int64_t committed = JoinMapSpec::kMissing;
      for (int pid = 0; pid < n; ++pid) {
        const auto& r = results[static_cast<std::size_t>(pid)];
        // CA1: the value was proposed by someone.
        EXPECT_TRUE(std::count(inputs.begin(), inputs.end(), r.value) > 0);
        if (r.verdict == CaVerdict::kCommit) {
          if (committed != JoinMapSpec::kMissing) {
            EXPECT_EQ(committed, r.value);  // commits agree
          }
          committed = r.value;
        }
      }
      if (committed != JoinMapSpec::kMissing) {
        for (int pid = 0; pid < n; ++pid) {
          // CA2: everyone's value equals the committed one.
          EXPECT_EQ(results[static_cast<std::size_t>(pid)].value, committed)
              << "n=" << n << " seed=" << seed;
        }
      }
    }
  }
}

TEST(AdoptCommitWide, UnanimousProposalsAlwaysCommit) {
  for (int n : {3, 5}) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      World w(n);
      AdoptCommitSim ca(w, n, "ca");
      std::vector<CaResult> results(static_cast<std::size_t>(n));
      for (int pid = 0; pid < n; ++pid) {
        w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
          results[static_cast<std::size_t>(pid)] = co_await ca.propose(ctx, 4);
        });
      }
      sim::RandomScheduler sched(seed);
      ASSERT_TRUE(w.run(sched).all_done);
      for (const auto& r : results) {
        EXPECT_EQ(r.verdict, CaVerdict::kCommit);  // CA3
        EXPECT_EQ(r.value, 4);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Plain-mode universal construction (the §6.2 ablation applies end to end)
// ---------------------------------------------------------------------------

TEST(PlainMode, GrowSetBehavesIdenticallyInPlainScanMode) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    World w(3);
    GrowSetSim s(w, 3, "g", ScanMode::kPlain);
    std::vector<std::int64_t> sizes(3, -1);
    for (int pid = 0; pid < 3; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        co_await s.insert(ctx, pid);
        sizes[static_cast<std::size_t>(pid)] = co_await s.size(ctx);
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);
    for (auto size : sizes) {
      EXPECT_GE(size, 1);
      EXPECT_LE(size, 3);
    }
  }
}

// ---------------------------------------------------------------------------
// MaxRegister lincheck round-trip
// ---------------------------------------------------------------------------

TEST(MaxRegisterLincheck, UniversalHistoriesAreLinearizable) {
  using S = MaxRegisterSpec;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const int n = 3;
    World w(n);
    UniversalObjectSim<S> u(w, n, "mr");
    HistoryRecorder<S> rec;
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        {
          const auto inv = S::write_max((pid + 1) * 10);
          const auto tok = rec.begin(pid, inv, ctx.world().global_step());
          co_await u.execute(ctx, inv);
          rec.end(tok, 0, ctx.world().global_step());
        }
        {
          const auto inv = S::read();
          const auto tok = rec.begin(pid, inv, ctx.world().global_step());
          const auto r = co_await u.execute(ctx, inv);
          rec.end(tok, r, ctx.world().global_step());
        }
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);
    EXPECT_TRUE(is_linearizable<S>(rec.ops())) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace apram
