// Thread-safe history recorder for real-thread lincheck tests.
//
// Operation windows are [t_before_call, t_after_call] on a shared logical
// clock (one atomic counter), which safely over-approximates concurrency:
// it never misses a real-time precedence, so a history the Wing–Gong
// checker accepts is genuinely linearizable. Shared between the rt stress
// suite and the TreeScan tests.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "lincheck/history.hpp"

namespace apram {

template <class Spec>
class RtRecorder {
 public:
  std::size_t begin(int pid, typename Spec::Invocation inv) {
    std::lock_guard<std::mutex> lock(mu_);
    ops_.push_back(RecordedOp<Spec>{pid, std::move(inv), {},
                                    clock_.fetch_add(1), kPending});
    return ops_.size() - 1;
  }
  void end(std::size_t token, typename Spec::Response resp) {
    const std::uint64_t now = clock_.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu_);
    ops_[token].resp = std::move(resp);
    ops_[token].respond_time = now;
  }
  std::vector<RecordedOp<Spec>> take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(ops_);
  }

 private:
  std::atomic<std::uint64_t> clock_{1};
  std::mutex mu_;
  std::vector<RecordedOp<Spec>> ops_;
};

}  // namespace apram
