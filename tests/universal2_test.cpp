// universal2 — the normalized fast-path/slow-path wait-free simulator
// (WaitFreeSim + HelpQueue) and its two clients, exercised across the
// repo's verification tiers:
//
//   * sequential semantics for Counter2 and SortedSet (sim, solo runs)
//   * exact fast-path step counts (counter mutation = 1 read + 1 CAS)
//   * the help-first discipline's periodic queue peek, priced exactly
//   * HelpQueue FIFO order, (stamp, pid) tie-break, retraction
//   * forced-slow-path runs (max_fast_attempts = 0) where every mutation
//     goes through announce → help → retire, including self-help solo
//   * randomized adversaries: concurrent counters sum exactly, concurrent
//     set operations keep membership consistent with the response history
//   * exhaustive schedule enumeration for inc-vs-read and enqueue-vs-enqueue
//   * crash injection: an enqueuer dying mid-publish either left no trace
//     or is completed by a helper — never a half-applied operation
//   * sim-vs-rt parity: the same template over both backends performs the
//     same register accesses; rt storms agree with the sequential spec
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "api/rt_backend.hpp"
#include "api/sim_backend.hpp"
#include "obs/analyze.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/thread_harness.hpp"
#include "sim/explore.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "universal2/counter_rep.hpp"
#include "universal2/help_queue.hpp"
#include "universal2/linked_list.hpp"
#include "universal2/rt.hpp"

namespace apram::universal2 {
namespace {

using sim::Context;
using sim::Execution;
using sim::ProcessTask;
using sim::World;

using SimCounter = Counter2<api::SimBackend>;
using SimSet = SortedSet<api::SimBackend>;
using SimQueue = HelpQueue<api::SimBackend, int>;

// ---------------------------------------------------------------------------
// Counter: sequential semantics (sim, solo runs)
// ---------------------------------------------------------------------------

TEST(U2Counter, SoloSequentialSemantics) {
  const int n = 4;
  World w(n);
  api::SimBackend::Mem mem(w, "u2");
  SimCounter c(mem, n, "c");
  std::int64_t got = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    std::int64_t r = co_await c.inc(ctx, 5);
    EXPECT_EQ(r, 0);  // mutators respond 0 (CounterSpec)
    co_await c.inc(ctx, 2);
    co_await c.dec(ctx, 3);
    got = co_await c.read(ctx);
  });
  w.run_solo(0);
  EXPECT_EQ(got, 4);

  // Another process sees the same object; reset overwrites everything.
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    co_await c.reset(ctx, 10);
    got = co_await c.read(ctx);
  });
  w.run_solo(1);
  EXPECT_EQ(got, 10);
  for (int p = 0; p < n; ++p) {
    EXPECT_EQ(c.sim().slow_path_entries(p), 0u) << "pid " << p;
  }
}

// ---------------------------------------------------------------------------
// Step counts: the uncontended fast path is O(1) — the whole point of the
// normalized construction, and the gap bench_e6 measures against the
// paper's O(n²) scan-per-op universal object.
// ---------------------------------------------------------------------------

TEST(U2Counter, UncontendedFastPathIsOneReadPlusOneCas) {
  for (int n : {2, 4, 8, 16}) {
    World w(n);
    api::SimBackend::Mem mem(w, "u2");
    SimCounter::Config cfg;
    cfg.help_period = 0;  // isolate the rep's own cost
    SimCounter c(mem, n, "c", cfg);

    const auto before = w.counts(0);
    w.spawn(0, [&](Context ctx) -> ProcessTask { co_await c.inc(ctx); });
    w.run_solo(0);
    const auto mid = w.counts(0);
    EXPECT_EQ(mid.total() - before.total(), 2u) << "n=" << n;
    EXPECT_EQ(mid.reads - before.reads, 1u) << "n=" << n;

    w.spawn(0, [&](Context ctx) -> ProcessTask { (void)co_await c.read(ctx); });
    w.run_solo(0);
    const auto after = w.counts(0);
    EXPECT_EQ(after.total() - mid.total(), 1u) << "n=" << n;  // read: 1 read
    EXPECT_EQ(c.sim().slow_path_entries(0), 0u);
  }
}

TEST(U2Counter, HelpPeriodAddsOneQueuePeekEveryKthOp) {
  const int n = 8;
  World w(n);
  api::SimBackend::Mem mem(w, "u2");
  SimCounter::Config cfg;
  cfg.help_period = 4;
  SimCounter c(mem, n, "c", cfg);

  // Ops 1 and 5 peek (ops_started ≡ 0 mod 4): n extra reads on an empty
  // queue. Ops 2–4 are pure fast path.
  const std::uint64_t expected[] = {static_cast<std::uint64_t>(n) + 2, 2, 2,
                                    2, static_cast<std::uint64_t>(n) + 2};
  for (const std::uint64_t want : expected) {
    const auto before = w.counts(0);
    w.spawn(0, [&](Context ctx) -> ProcessTask { co_await c.inc(ctx); });
    w.run_solo(0);
    const auto after = w.counts(0);
    EXPECT_EQ(after.total() - before.total(), want);
  }
  std::int64_t got = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask { got = co_await c.read(ctx); });
  w.run_solo(0);
  EXPECT_EQ(got, 5);
}

// ---------------------------------------------------------------------------
// Forced slow path: max_fast_attempts = 0 sends every mutation through
// announce → help → retire. Solo, the announcer helps itself to completion
// (nobody else is scheduled), so this exercises the full state machine.
// ---------------------------------------------------------------------------

TEST(U2Counter, ForcedSlowPathCompletesBySelfHelp) {
  const int n = 4;
  World w(n);
  api::SimBackend::Mem mem(w, "u2");
  SimCounter::Config cfg;
  cfg.max_fast_attempts = 0;
  SimCounter c(mem, n, "c", cfg);
  std::int64_t got = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await c.inc(ctx, 7);
    co_await c.dec(ctx, 2);
    got = co_await c.read(ctx);
  });
  w.run_solo(0);
  EXPECT_EQ(got, 5);
  EXPECT_EQ(c.sim().slow_path_entries(0), 2u);  // both mutations; read is fast

  // The announce was retracted and the state record retired.
  EXPECT_FALSE(c.sim().queue().cell_at(0).peek().active);
  EXPECT_EQ(static_cast<int>(c.sim().state_at(0).peek().stage),
            static_cast<int>(SimCounter::Sim::Stage::kIdle));
}

// ---------------------------------------------------------------------------
// Concurrency under randomized adversaries: final value is the exact sum,
// whatever the interleaving — including with the slow path forced on.
// ---------------------------------------------------------------------------

TEST(U2Counter, ConcurrentIncrementsSumExactlyUnderRandomSchedules) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (const double sticky : {0.0, 0.5}) {
      const int n = 4;
      const int kOps = 3;
      World w(n);
      api::SimBackend::Mem mem(w, "u2");
      SimCounter c(mem, n, "c");
      for (int pid = 0; pid < n; ++pid) {
        w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
          for (int i = 0; i < kOps; ++i) {
            co_await c.inc(ctx, pid + 1);
          }
        });
      }
      sim::RandomScheduler rs(seed, sticky);
      ASSERT_TRUE(w.run(rs).all_done);
      std::int64_t got = -1;
      w.spawn(0, [&](Context ctx) -> ProcessTask {
        got = co_await c.read(ctx);
      });
      w.run_solo(0);
      EXPECT_EQ(got, kOps * (1 + 2 + 3 + 4))
          << "seed=" << seed << " sticky=" << sticky;
    }
  }
}

TEST(U2Counter, ForcedSlowPathSumsExactlyAndAllRecordsRetire) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const int n = 4;
    const int kOps = 3;
    World w(n);
    api::SimBackend::Mem mem(w, "u2");
    SimCounter::Config cfg;
    cfg.max_fast_attempts = 0;  // every inc announces; helpers race
    cfg.help_period = 1;        // and every op helps first
    SimCounter c(mem, n, "c", cfg);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        for (int i = 0; i < kOps; ++i) {
          co_await c.inc(ctx, 1);
        }
      });
    }
    sim::RandomScheduler rs(seed, 0.3);
    ASSERT_TRUE(w.run(rs).all_done);
    std::int64_t got = -1;
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      got = co_await c.read(ctx);
    });
    w.run_solo(0);
    EXPECT_EQ(got, n * kOps) << "seed=" << seed;
    for (int p = 0; p < n; ++p) {
      EXPECT_EQ(c.sim().slow_path_entries(p),
                static_cast<std::uint64_t>(kOps));
      EXPECT_FALSE(c.sim().queue().cell_at(p).peek().active) << "pid " << p;
      EXPECT_EQ(static_cast<int>(c.sim().state_at(p).peek().stage),
                static_cast<int>(SimCounter::Sim::Stage::kIdle))
          << "pid " << p;
    }
  }
}

// ---------------------------------------------------------------------------
// HelpQueue: FIFO by (stamp, pid), bounded cost, retraction.
// ---------------------------------------------------------------------------

TEST(U2HelpQueue, FifoOrderAndRetraction) {
  const int n = 4;
  World w(n);
  api::SimBackend::Mem mem(w, "u2");
  SimQueue q(mem, n, "q");

  auto announce = [&](int pid, int op) {
    w.spawn(pid, [&, pid, op](Context ctx) -> ProcessTask {
      co_await q.enqueue(ctx, 1, op);
    });
    w.run_solo(pid);
  };
  auto head_pid = [&]() {
    int got = -1;
    w.spawn(1, [&](Context ctx) -> ProcessTask {
      std::optional<SimQueue::Head> h = co_await q.peek(ctx);
      got = h.has_value() ? h->pid : -1;
    });
    w.run_solo(1);
    return got;
  };
  auto retract = [&](int pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      co_await q.dequeue(ctx);
    });
    w.run_solo(pid);
  };

  EXPECT_EQ(head_pid(), -1);  // empty
  announce(2, 22);            // stamps: 2 → 1
  announce(0, 10);            //         0 → 2
  announce(3, 33);            //         3 → 3
  EXPECT_EQ(head_pid(), 2);   // FIFO: announce order, not pid order
  retract(2);
  EXPECT_EQ(head_pid(), 0);
  retract(0);
  EXPECT_EQ(head_pid(), 3);
  retract(3);
  EXPECT_EQ(head_pid(), -1);

  // Bounded cost: enqueue = n+2 accesses (bakery scan + own read + CAS),
  // peek = n reads, dequeue = 2.
  const auto before = w.counts(0);
  announce(0, 1);
  const auto mid = w.counts(0);
  EXPECT_EQ(mid.total() - before.total(), static_cast<std::uint64_t>(n) + 2);
  retract(0);
  const auto after = w.counts(0);
  EXPECT_EQ(after.total() - mid.total(), 2u);
}

// Exhaustive: two concurrent enqueuers, every interleaving. The head is
// always the active announce with minimum (stamp, pid); equal stamps (both
// scanned before either installed) break toward the lower pid.
struct QueuePairExec final : Execution {
  QueuePairExec() : w(2), mem(w, "u2"), q(mem, 2, "q") {
    w.spawn(0, [this](Context ctx) -> ProcessTask {
      co_await q.enqueue(ctx, 1, 10);
    });
    w.spawn(1, [this](Context ctx) -> ProcessTask {
      co_await q.enqueue(ctx, 1, 20);
    });
  }
  World& world() override { return w; }
  World w;
  api::SimBackend::Mem mem;
  SimQueue q;
};

TEST(U2HelpQueueExplore, HeadIsTheMinStampPidOnEverySchedule) {
  const auto stats = sim::explore_all_schedules(
      [] { return std::make_unique<QueuePairExec>(); },
      [&](Execution& e, const std::vector<int>&) {
        auto& x = static_cast<QueuePairExec&>(e);
        const auto c0 = x.q.cell_at(0).peek();
        const auto c1 = x.q.cell_at(1).peek();
        ASSERT_TRUE(c0.active && c1.active);
        // Stamps are 1 and 2 (serialized scans) or 1 and 1 (overlapping).
        ASSERT_GE(c0.stamp, 1u);
        ASSERT_GE(c1.stamp, 1u);
        ASSERT_LE(c0.stamp + c1.stamp, 3u);
        const int head = (c1.stamp < c0.stamp) ? 1 : 0;  // pid tie-break
        int got = -1;
        x.w.spawn(0, [&x, &got](Context ctx) -> ProcessTask {
          std::optional<SimQueue::Head> h = co_await x.q.peek(ctx);
          got = h.has_value() ? h->pid : -1;
        });
        x.w.run_solo(0);
        ASSERT_EQ(got, head);
      });
  EXPECT_GT(stats.executions, 10u);
}

// ---------------------------------------------------------------------------
// Counter explore: one inc racing one read — every schedule yields a
// linearizable outcome (read sees 0 or 1; the inc is applied exactly once).
// ---------------------------------------------------------------------------

struct CounterIncReadExec final : Execution {
  CounterIncReadExec() : w(2), mem(w, "u2") {
    SimCounter::Config cfg;
    cfg.help_period = 0;  // smallest schedule space: pure fast path
    c = std::make_unique<SimCounter>(mem, 2, "c", cfg);
    w.spawn(0, [this](Context ctx) -> ProcessTask {
      co_await c->inc(ctx);
    });
    w.spawn(1, [this](Context ctx) -> ProcessTask {
      seen = co_await c->read(ctx);
    });
  }
  World& world() override { return w; }
  World w;
  api::SimBackend::Mem mem;
  std::unique_ptr<SimCounter> c;
  std::int64_t seen = -1;
};

TEST(U2CounterExplore, IncVsReadIsLinearizableOnEverySchedule) {
  const auto stats = sim::explore_all_schedules(
      [] { return std::make_unique<CounterIncReadExec>(); },
      [&](Execution& e, const std::vector<int>&) {
        auto& x = static_cast<CounterIncReadExec&>(e);
        ASSERT_TRUE(x.seen == 0 || x.seen == 1);
        const auto cell = x.c->rep().cell_register().peek();
        ASSERT_EQ(cell.value, 1);        // applied exactly once
        ASSERT_EQ(cell.applied[0], 1u);  // and recorded in the table
      });
  EXPECT_GT(stats.executions, 1u);
}

// ---------------------------------------------------------------------------
// Crash injection: an enqueuer dying mid-slow-path. Depending on the crash
// offset the announce is either not yet published (no trace) or published,
// in which case any helper completes the operation exactly once.
// ---------------------------------------------------------------------------

TEST(U2Counter, CrashedAnnouncerIsCompletedByAHelperExactlyOnce) {
  const int n = 3;
  // Sweep the crash across every access of the forced-slow-path inc: before
  // the record install, mid-bakery-scan, after the announce, mid-self-help.
  for (std::uint64_t at = 0; at < 20; ++at) {
    World w(n, {.crashes = {{.pid = 1, .at_access = at}}});
    api::SimBackend::Mem mem(w, "u2");
    SimCounter::Config cfg;
    cfg.max_fast_attempts = 0;
    cfg.help_period = 1;  // every op helps first
    SimCounter c(mem, n, "c", cfg);
    w.spawn(1, [&](Context ctx) -> ProcessTask { co_await c.inc(ctx, 100); });
    w.run_solo(1);  // crashes somewhere inside (or completes, at large `at`)

    // Survivor pid 0 runs its own ops; its help-first pass adopts pid 1's
    // announce if one was published.
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      co_await c.inc(ctx, 1);
      co_await c.inc(ctx, 1);
    });
    w.run_solo(0);
    const auto cell = c.rep().cell_register().peek();
    // pid 1's inc is all-or-nothing: value is 2 (+100 iff its op was
    // announced in time), never a partial or doubled effect.
    EXPECT_TRUE(cell.value == 2 || cell.value == 102) << "at=" << at;
    EXPECT_EQ(cell.value == 102, cell.applied[1] == 1u) << "at=" << at;
  }
}

// ---------------------------------------------------------------------------
// SortedSet: sequential semantics (sim, solo runs)
// ---------------------------------------------------------------------------

TEST(U2Set, SoloSequentialSemantics) {
  const int n = 2;
  World w(n);
  api::SimBackend::Mem mem(w, "u2");
  SimSet s(mem, n, /*capacity_per_proc=*/8, "set");
  std::vector<std::int64_t> rs;
  std::vector<std::int64_t> keys;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    rs.push_back(co_await s.insert(ctx, 5));
    rs.push_back(co_await s.insert(ctx, 5));  // duplicate
    rs.push_back(co_await s.insert(ctx, 3));
    rs.push_back(co_await s.insert(ctx, 7));
    rs.push_back(co_await s.contains(ctx, 5));
    rs.push_back(co_await s.contains(ctx, 4));
    rs.push_back(co_await s.remove(ctx, 5));
    rs.push_back(co_await s.remove(ctx, 5));  // already gone
    rs.push_back(co_await s.contains(ctx, 5));
    keys = co_await s.rep().snapshot_keys(ctx);
  });
  w.run_solo(0);
  EXPECT_EQ(rs, (std::vector<std::int64_t>{1, 0, 1, 1, 1, 0, 1, 0, 0}));
  EXPECT_EQ(keys, (std::vector<std::int64_t>{3, 7}));

  // The other process observes the same list.
  std::int64_t got = -1;
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    got = co_await s.contains(ctx, 7);
  });
  w.run_solo(1);
  EXPECT_EQ(got, 1);
}

// Membership must equal the net of *acknowledged* operations, whatever the
// interleaving. Each process hammers a shared key range; afterwards the
// per-key balance of successful inserts minus successful removes is 0 or 1
// and matches the final membership.
void run_set_contention(std::uint64_t seed) {
  const int n = 4;
  World w(n);
  api::SimBackend::Mem mem(w, "u2");
  SimSet obj(mem, n, /*capacity_per_proc=*/64, "set");
  // Per-key net balance: +1 per acked insert, -1 per acked remove. Keys
  // 0..4 are contested by everyone.
  constexpr int kKeys = 5;
  std::int64_t net[kKeys] = {};
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      for (int round = 0; round < 3; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          std::int64_t a = co_await obj.insert(ctx, k);
          net[k] += a;
          if ((pid + round + k) % 2 == 0) {
            std::int64_t r = co_await obj.remove(ctx, k);
            net[k] -= r;
          }
          std::int64_t in = co_await obj.contains(ctx, k);
          EXPECT_TRUE(in == 0 || in == 1);
        }
      }
    });
  }
  sim::RandomScheduler rs(seed, 0.3);
  ASSERT_TRUE(w.run(rs).all_done);
  std::vector<std::int64_t> keys;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    keys = co_await obj.rep().snapshot_keys(ctx);
  });
  w.run_solo(0);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
      << "duplicate key in the list";
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(net[k] == 0 || net[k] == 1) << "key " << k;
    const bool present =
        std::find(keys.begin(), keys.end(), k) != keys.end();
    EXPECT_EQ(present, net[k] == 1) << "key " << k << " seed " << seed;
  }
}

TEST(U2Set, ContendedOpsKeepMembershipConsistentWithResponses) {
  for (const std::uint64_t seed : {31u, 32u, 33u, 34u}) {
    run_set_contention(seed);
  }
}

TEST(U2Set, ForcedSlowPathKeepsMembershipConsistent) {
  for (const std::uint64_t seed : {41u, 42u, 43u}) {
    const int n = 4;
    World w(n);
    api::SimBackend::Mem mem(w, "u2");
    SimSet::Config cfg;
    cfg.max_fast_attempts = 0;
    cfg.help_period = 1;
    SimSet s(mem, n, /*capacity_per_proc=*/64, "set", cfg);
    std::int64_t acked[4] = {};
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        // Everyone fights to insert the same three keys.
        for (const std::int64_t k : {7, 3, 9}) {
          std::int64_t a = co_await s.insert(ctx, k);
          acked[pid] += a;
        }
      });
    }
    sim::RandomScheduler rs(seed, 0.2);
    ASSERT_TRUE(w.run(rs).all_done);
    // Exactly one ack per key across all processes.
    EXPECT_EQ(acked[0] + acked[1] + acked[2] + acked[3], 3) << "seed=" << seed;
    std::vector<std::int64_t> keys;
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      keys = co_await s.rep().snapshot_keys(ctx);
    });
    w.run_solo(0);
    EXPECT_EQ(keys, (std::vector<std::int64_t>{3, 7, 9})) << "seed=" << seed;
    std::uint64_t slow = 0;
    for (int p = 0; p < n; ++p) slow += s.sim().slow_path_entries(p);
    EXPECT_GT(slow, 0u);
  }
}

// ---------------------------------------------------------------------------
// Sim-vs-rt parity: identical access sequences through both backends.
// ---------------------------------------------------------------------------

TEST(U2Counter, SimAndRtBackendsPerformTheSameAccesses) {
  for (int n : {2, 4, 8}) {
    World w(n);
    api::SimBackend::Mem mem(w, "u2c");
    SimCounter c(mem, n, "u2c");
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      co_await c.inc(ctx, 5);
      co_await c.dec(ctx, 2);
      (void)co_await c.read(ctx);
    });
    w.run_solo(0);
    const auto sim_counts = w.counts(0);

    obs::Registry reg;
    Counter2RT rt_c(n);
    rt_c.attach_obs(reg, "u2c");
    rt_c.inc(0, 5);
    rt_c.dec(0, 2);
    (void)rt_c.read(0);
    const std::uint64_t rt_reads = reg.counter("rt.u2c.reads").value();
    const std::uint64_t rt_writes = reg.counter("rt.u2c.writes").value();
    const std::uint64_t rt_cas = reg.counter("rt.u2c.cas").value();
    EXPECT_EQ(rt_reads, sim_counts.reads) << "n=" << n;
    EXPECT_EQ(rt_writes + rt_cas, sim_counts.writes) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// rt storms: real threads, real contention; totals must match the spec.
// ---------------------------------------------------------------------------

TEST(U2Rt, CounterIncStormSumsExactly) {
  const int n = 8;
  const int kOps = 2000;
  Counter2RT c(n);
  rt::parallel_run(n, [&](int pid) {
    for (int i = 0; i < kOps; ++i) {
      c.inc(pid, 1);
    }
  });
  EXPECT_EQ(c.read(0), static_cast<std::int64_t>(n) * kOps);
}

TEST(U2Rt, ForcedSlowPathCounterStormSumsExactly) {
  const int n = 4;
  const int kOps = 300;
  Counter2RT::Config cfg;
  cfg.max_fast_attempts = 0;
  cfg.help_period = 1;
  Counter2RT c(n, cfg);
  rt::parallel_run(n, [&](int pid) {
    for (int i = 0; i < kOps; ++i) {
      c.inc(pid, 1);
    }
  });
  EXPECT_EQ(c.read(0), static_cast<std::int64_t>(n) * kOps);
  std::uint64_t slow = 0;
  for (int p = 0; p < n; ++p) slow += c.slow_path_entries(p);
  EXPECT_EQ(slow, static_cast<std::uint64_t>(n) * kOps);
}

TEST(U2Rt, SortedSetStormMatchesAcknowledgedOperations) {
  const int n = 8;
  const int kDisjoint = 100;
  constexpr int kShared = 4;
  const int kRounds = 50;
  // Capacity: disjoint inserts + shared-key attempts (each prepare of an
  // absent key burns a node, helpers included) with generous slack.
  SortedSetRT set(n, /*capacity_per_proc=*/kDisjoint + 16 * kRounds + 64);
  std::atomic<std::int64_t> net[kShared];
  for (auto& a : net) a.store(0);
  rt::parallel_run(n, [&](int pid) {
    for (int i = 0; i < kDisjoint; ++i) {
      EXPECT_EQ(set.insert(pid, 1000 + pid * 1000 + i), 1);
    }
    for (int r = 0; r < kRounds; ++r) {
      for (int k = 0; k < kShared; ++k) {
        net[k].fetch_add(set.insert(pid, k));
        if ((pid + r) % 2 == 0) {
          net[k].fetch_sub(set.remove(pid, k));
        }
        const std::int64_t in = set.contains(pid, k);
        EXPECT_TRUE(in == 0 || in == 1);
      }
    }
  });
  const std::vector<std::int64_t> keys = set.snapshot_keys(0);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
  std::size_t disjoint_found = 0;
  for (const std::int64_t k : keys) {
    if (k >= 1000) ++disjoint_found;
  }
  EXPECT_EQ(disjoint_found, static_cast<std::size_t>(n) * kDisjoint);
  for (int k = 0; k < kShared; ++k) {
    const std::int64_t balance = net[k].load();
    ASSERT_TRUE(balance == 0 || balance == 1) << "key " << k;
    const bool present = std::find(keys.begin(), keys.end(), k) != keys.end();
    EXPECT_EQ(present, balance == 1) << "key " << k;
  }
}

// ---------------------------------------------------------------------------
// Help bound, re-derived from a trace: a complete universal2 op emits at
// most n−1 kHelp events (one per distinct helped process). The forced
// slow path with help_period=1 is the worst case — every op helps — and
// the padded negative control proves the checker can actually reject.
// ---------------------------------------------------------------------------

TEST(U2Trace, HelpBoundHoldsOnRealTracesAndRejectsPaddedOnes) {
  const int n = 4;
  obs::Tracer tracer(n, 1 << 16);
  {
    World w(n, {.tracer = &tracer});
    api::SimBackend::Mem mem(w, "u2");
    SimCounter::Config cfg;
    cfg.max_fast_attempts = 0;
    cfg.help_period = 1;
    SimCounter c(mem, n, "c", cfg);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        for (int i = 0; i < 3; ++i) {
          co_await c.inc(ctx, pid + 1);
        }
      });
    }
    sim::RandomScheduler rs(/*seed=*/99, 0.3);
    ASSERT_TRUE(w.run(rs).all_done);
  }
  std::vector<obs::TraceEvent> events = tracer.events();
  const obs::TraceAnalysis analysis = obs::analyze(events);
  const obs::BoundReport report = obs::check_u2_help_bound(analysis);
  EXPECT_TRUE(report.ok()) << obs::format_report(report);
  EXPECT_GT(report.checked, 0u);

  // Negative control: pad one complete op past the bound.
  const std::vector<const obs::OpStats*> complete =
      analysis.complete_of(obs::OpKind::kU2Execute);
  ASSERT_FALSE(complete.empty());
  for (int i = 0; i < n; ++i) {
    obs::TraceEvent help;
    help.kind = obs::EventKind::kHelp;
    help.pid = complete.front()->pid;
    help.op = complete.front()->op;
    events.push_back(help);
  }
  const obs::BoundReport padded =
      obs::check_u2_help_bound(obs::analyze(events));
  EXPECT_FALSE(padded.ok());
}

// ---------------------------------------------------------------------------
// The paper universal construction, backend-generic port: same semantics
// through the same facade bench_e6 uses as its baseline.
// ---------------------------------------------------------------------------

TEST(U2PaperUniversal, SimMatchesSequentialCounterSemantics) {
  const int n = 3;
  World w(n);
  api::SimBackend::Mem mem(w, "pu");
  PaperUniversal<api::SimBackend, CounterSpec> u(mem, n);
  std::int64_t got = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await u.execute(ctx, CounterSpec::inc(4));
    co_await u.execute(ctx, CounterSpec::dec(1));
    got = co_await u.execute(ctx, CounterSpec::read());
  });
  w.run_solo(0);
  EXPECT_EQ(got, 3);
  w.spawn(2, [&](Context ctx) -> ProcessTask {
    co_await u.execute(ctx, CounterSpec::inc(7));
    got = co_await u.execute(ctx, CounterSpec::read());
  });
  w.run_solo(2);
  EXPECT_EQ(got, 10);
  EXPECT_EQ(u.entries_created(0), 3u);
}

TEST(U2PaperUniversal, ConcurrentExecutionsAgreeUnderRandomSchedules) {
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    const int n = 3;
    World w(n);
    api::SimBackend::Mem mem(w, "pu");
    PaperUniversal<api::SimBackend, CounterSpec> u(mem, n);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        co_await u.execute(ctx, CounterSpec::inc(pid + 1));
        co_await u.execute(ctx, CounterSpec::inc(10));
      });
    }
    sim::RandomScheduler rs(seed, 0.4);
    ASSERT_TRUE(w.run(rs).all_done);
    std::int64_t got = -1;
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      got = co_await u.execute(ctx, CounterSpec::read());
    });
    w.run_solo(0);
    EXPECT_EQ(got, (1 + 2 + 3) + 3 * 10) << "seed=" << seed;
  }
}

TEST(U2PaperUniversal, RtWrapperMatchesSpecUnderThreads) {
  const int n = 4;
  const int kOps = 50;
  PaperUniversalRT<CounterSpec> u(n);
  rt::parallel_run(n, [&](int pid) {
    for (int i = 0; i < kOps; ++i) {
      u.execute(pid, CounterSpec::inc(1));
    }
  });
  EXPECT_EQ(u.execute(0, CounterSpec::read()),
            static_cast<std::int64_t>(n) * kOps);
}

}  // namespace
}  // namespace apram::universal2
