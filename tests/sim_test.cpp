// Unit tests for the asynchronous PRAM simulator: coroutine stepping,
// register semantics, schedulers, crash injection, replay determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/replay.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"

namespace apram::sim {
namespace {

// A process that copies `src` to `dst` k times (2k accesses).
ProcessTask copier(Context ctx, const Register<int>& src, Register<int>& dst,
                   int k) {
  for (int i = 0; i < k; ++i) {
    const int v = co_await ctx.read(src);
    co_await ctx.write(dst, v);
  }
}

TEST(World, SingleProcessRunsToCompletion) {
  World w(1);
  auto& src = w.make_register<int>("src", 7);
  auto& dst = w.make_register<int>("dst", 0);
  w.spawn(0, [&](Context ctx) { return copier(ctx, src, dst, 3); });
  const RunResult r = w.run_solo(0);
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(dst.peek(), 7);
  EXPECT_EQ(w.counts(0).reads, 3u);
  EXPECT_EQ(w.counts(0).writes, 3u);
  EXPECT_EQ(r.steps_taken, 6u);
}

TEST(World, StepGranularityIsOneAccess) {
  World w(1);
  auto& src = w.make_register<int>("src", 1);
  auto& dst = w.make_register<int>("dst", 0);
  w.spawn(0, [&](Context ctx) { return copier(ctx, src, dst, 1); });
  // First grant performs the read...
  w.step(0);
  EXPECT_EQ(w.counts(0).reads, 1u);
  EXPECT_EQ(w.counts(0).writes, 0u);
  EXPECT_EQ(dst.peek(), 0);
  // ...second grant performs the write.
  w.step(0);
  EXPECT_EQ(w.counts(0).writes, 1u);
  EXPECT_EQ(dst.peek(), 1);
  EXPECT_TRUE(w.done(0));
}

TEST(World, InterleavingIsSchedulerControlled) {
  // Classic lost-update interleaving: both processes read 0, both write 1.
  World w(2);
  auto& reg = w.make_register<int>("reg", 0);
  auto incr = [&](Context ctx) -> ProcessTask {
    const int v = co_await ctx.read(reg);
    co_await ctx.write(reg, v + 1);
  };
  w.spawn(0, incr);
  w.spawn(1, incr);
  FixedScheduler sched({0, 1, 0, 1});
  const RunResult r = w.run(sched);
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(reg.peek(), 1);  // the lost update happened, by construction
}

TEST(World, SequentialScheduleAvoidsLostUpdate) {
  World w(2);
  auto& reg = w.make_register<int>("reg", 0);
  auto incr = [&](Context ctx) -> ProcessTask {
    const int v = co_await ctx.read(reg);
    co_await ctx.write(reg, v + 1);
  };
  w.spawn(0, incr);
  w.spawn(1, incr);
  FixedScheduler sched({0, 0, 1, 1});
  w.run(sched);
  EXPECT_EQ(reg.peek(), 2);
}

TEST(World, SingleWriterEnforced) {
  World w(2);
  auto& reg = w.make_register<int>("owned", 0, /*writer=*/0);
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    co_await ctx.write(reg, 5);  // illegal: pid 1 writing pid 0's register
  });
  EXPECT_DEATH(w.step(1), "single-writer");
}

TEST(World, ReadOfForeignSingleWriterRegisterIsFine) {
  World w(2);
  auto& reg = w.make_register<int>("owned", 42, /*writer=*/0);
  int out = 0;
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    out = co_await ctx.read(reg);
  });
  w.run_solo(1);
  EXPECT_EQ(out, 42);
}

TEST(World, CrashStopsProcessButOthersFinish) {
  World w(2);
  auto& a = w.make_register<int>("a", 0);
  auto body = [&](Context ctx) -> ProcessTask {
    for (int i = 0; i < 10; ++i) co_await ctx.write(a, i);
  };
  w.spawn(0, body);
  w.spawn(1, body);
  w.step(0);
  w.crash(0);
  EXPECT_FALSE(w.runnable(0));
  RoundRobinScheduler rr;
  const RunResult r = w.run(rr);
  EXPECT_TRUE(r.all_done);  // all non-crashed processes finished
  EXPECT_TRUE(w.done(1));
  EXPECT_FALSE(w.done(0));
}

TEST(World, TraceRecordsAccesses) {
  World w(1, {.trace = true});
  auto& src = w.make_register<int>("src", 0);
  auto& dst = w.make_register<int>("dst", 0);
  w.spawn(0, [&](Context ctx) { return copier(ctx, src, dst, 2); });
  w.run_solo(0);
  ASSERT_EQ(w.trace().size(), 4u);
  EXPECT_FALSE(w.trace()[0].is_write);
  EXPECT_EQ(w.trace()[0].register_id, src.id());
  EXPECT_TRUE(w.trace()[1].is_write);
  EXPECT_EQ(w.trace()[1].register_id, dst.id());
  EXPECT_EQ(w.trace()[3].step, 3u);
}

// Sub-coroutine (SimCoro) composition: a shared-memory procedure awaited by
// the top-level process; suspensions inside must reach the scheduler.
SimCoro<int> sum_two(Context ctx, const Register<int>& x,
                     const Register<int>& y) {
  const int a = co_await ctx.read(x);
  const int b = co_await ctx.read(y);
  co_return a + b;
}

TEST(SimCoro, NestedProcedureStepsCountAndInterleave) {
  World w(2);
  auto& x = w.make_register<int>("x", 10);
  auto& y = w.make_register<int>("y", 20);
  int result = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    result = co_await sum_two(ctx, x, y);
  });
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    co_await ctx.write(y, 99);  // interleaved between P0's two reads
  });
  FixedScheduler sched({0, 1, 0});
  w.run(sched);
  EXPECT_EQ(result, 10 + 99);
  EXPECT_EQ(w.counts(0).reads, 2u);
  EXPECT_EQ(w.counts(1).writes, 1u);
}

SimCoro<int> doubly_nested(Context ctx, const Register<int>& x,
                           const Register<int>& y) {
  const int s = co_await sum_two(ctx, x, y);
  const int t = co_await sum_two(ctx, x, y);
  co_return s + t;
}

TEST(SimCoro, TwoLevelsOfNesting) {
  World w(1);
  auto& x = w.make_register<int>("x", 1);
  auto& y = w.make_register<int>("y", 2);
  int result = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    result = co_await doubly_nested(ctx, x, y);
  });
  const RunResult r = w.run_solo(0);
  EXPECT_EQ(result, 6);
  EXPECT_EQ(r.steps_taken, 4u);
}

TEST(SimCoro, VoidProcedure) {
  World w(1);
  auto& x = w.make_register<int>("x", 0);
  auto setter = [](Context ctx, Register<int>& r, int v) -> SimCoro<void> {
    co_await ctx.write(r, v);
  };
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await setter(ctx, x, 5);
    co_await setter(ctx, x, 6);
  });
  w.run_solo(0);
  EXPECT_EQ(x.peek(), 6);
}

TEST(Scheduler, RoundRobinIsFair) {
  World w(3);
  auto& reg = w.make_register<int>("r", 0);
  std::vector<int> order;
  for (int pid = 0; pid < 3; ++pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      co_await ctx.read(reg);
      order.push_back(pid);
      co_await ctx.read(reg);
      order.push_back(pid);
    });
  }
  RoundRobinScheduler rr;
  w.run(rr);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(Scheduler, RandomIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    World w(3);
    auto& reg = w.make_register<int>("r", 0);
    std::vector<int> order;
    for (int pid = 0; pid < 3; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        for (int i = 0; i < 5; ++i) {
          co_await ctx.read(reg);
          order.push_back(pid);
        }
      });
    }
    RandomScheduler rs(seed);
    w.run(rs);
    return order;
  };
  EXPECT_EQ(run_once(123), run_once(123));
  EXPECT_NE(run_once(123), run_once(456));
}

TEST(Scheduler, RecordingSchedulerReproducesRun) {
  auto build = [](std::vector<int>* order) {
    auto w = std::make_unique<World>(2);
    auto& reg = w->make_register<int>("r", 0);
    for (int pid = 0; pid < 2; ++pid) {
      w->spawn(pid, [&reg, order, pid](Context ctx) -> ProcessTask {
        for (int i = 0; i < 4; ++i) {
          co_await ctx.read(reg);
          order->push_back(pid);
        }
      });
    }
    return w;
  };

  std::vector<int> order1;
  auto w1 = build(&order1);
  RandomScheduler rs(99);
  RecordingScheduler rec(rs);
  w1->run(rec);

  std::vector<int> order2;
  auto w2 = build(&order2);
  FixedScheduler replay_sched(rec.picks());
  w2->run(replay_sched);

  EXPECT_EQ(order1, order2);
}

TEST(Scheduler, CrashingSchedulerInjectsFailure) {
  World w(2);
  auto& reg = w.make_register<int>("r", 0);
  for (int pid = 0; pid < 2; ++pid) {
    w.spawn(pid, [&](Context ctx) -> ProcessTask {
      for (int i = 0; i < 10; ++i) co_await ctx.read(reg);
    });
  }
  RoundRobinScheduler rr;
  CrashingScheduler cs(rr, {{4, 0}});  // crash pid 0 at global step 4
  const RunResult r = w.run(cs);
  EXPECT_TRUE(r.all_done);
  EXPECT_FALSE(w.done(0));
  EXPECT_TRUE(w.crashed(0));
  EXPECT_TRUE(w.done(1));
  EXPECT_LE(w.counts(0).reads, 4u);
  EXPECT_EQ(w.counts(1).reads, 10u);
}

TEST(World, MaxStepsGuardsNontermination) {
  World w(1);
  auto& reg = w.make_register<int>("r", 0);
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    for (;;) co_await ctx.read(reg);  // deliberately non-terminating
  });
  RoundRobinScheduler rr;
  EXPECT_DEATH(w.run(rr, 100), "max_steps");
}

// Replay: outputs after replaying a recorded prefix match the original run.
struct CounterExec final : Execution {
  explicit CounterExec(int procs) : w(procs) {
    reg = &w.make_register<int>("r", 0);
    outs.resize(static_cast<std::size_t>(procs), -1);
    for (int pid = 0; pid < procs; ++pid) {
      w.spawn(pid, [this, pid](Context ctx) -> ProcessTask {
        for (int i = 0; i < 3; ++i) {
          const int v = co_await ctx.read(*reg);
          co_await ctx.write(*reg, v + 1);
        }
        outs[static_cast<std::size_t>(pid)] = co_await ctx.read(*reg);
      });
    }
  }
  World& world() override { return w; }

  World w;
  Register<int>* reg = nullptr;
  std::vector<int> outs;
};

TEST(Replay, PrefixThenSoloIsDeterministic) {
  ExecutionFactory factory = [] { return std::make_unique<CounterExec>(2); };

  // Record a random partial run.
  auto live = factory();
  RandomScheduler rs(7);
  RecordingScheduler rec(rs);
  live->world().run_steps(rec, /*steps=*/5);

  auto a = replay_then_solo(factory, rec.picks(), /*pid=*/0);
  auto b = replay_then_solo(factory, rec.picks(), /*pid=*/0);
  auto& ea = static_cast<CounterExec&>(*a);
  auto& eb = static_cast<CounterExec&>(*b);
  EXPECT_EQ(ea.outs[0], eb.outs[0]);
  EXPECT_TRUE(ea.world().done(0));
  EXPECT_EQ(ea.reg->peek(), eb.reg->peek());
}

TEST(Replay, EmptyPrefixSoloMatchesRunSolo) {
  ExecutionFactory factory = [] { return std::make_unique<CounterExec>(2); };
  auto a = replay_then_solo(factory, {}, /*pid=*/1);
  auto& ea = static_cast<CounterExec&>(*a);
  EXPECT_EQ(ea.outs[1], 3);  // ran alone: three increments then read
}

}  // namespace
}  // namespace apram::sim
