// Tests for the million-process scale path: the RunnableSet the World's
// O(1) scheduler queries are built on, lazy coroutine-frame spawning, the
// epoch fix for RandomScheduler stickiness, the incremental
// CrashingScheduler, and the scenario suite (Zipf writers, bursty arrivals,
// crash/recovery churn, record/replay).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "sim/runnable_set.hpp"
#include "sim/scenario.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace apram::sim {
namespace {

// ------------------------------------------------------------ RunnableSet --

TEST(RunnableSet, AddRemoveContainsSize) {
  RunnableSet s(100);
  EXPECT_TRUE(s.empty());
  s.add(3);
  s.add(97);
  s.add(64);
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.contains(64));
  EXPECT_FALSE(s.contains(4));
  s.remove(64);
  EXPECT_FALSE(s.contains(64));
  EXPECT_EQ(s.size(), 2);
  s.add(64);
  EXPECT_TRUE(s.contains(64));
}

TEST(RunnableSet, NextAtOrAfterMatchesLinearScan) {
  // Pseudo-random membership over a size that spans several leaf words and
  // one upper level; every query must agree with the brute-force scan.
  const int n = 1000;
  RunnableSet s(n);
  std::vector<bool> in(static_cast<std::size_t>(n), false);
  Rng rng(7);
  for (int round = 0; round < 4000; ++round) {
    const int pid = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    if (in[static_cast<std::size_t>(pid)]) {
      s.remove(pid);
    } else {
      s.add(pid);
    }
    in[static_cast<std::size_t>(pid)] = !in[static_cast<std::size_t>(pid)];

    const int q = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    int expect = -1;
    for (int p = q; p < n; ++p) {
      if (in[static_cast<std::size_t>(p)]) {
        expect = p;
        break;
      }
    }
    ASSERT_EQ(s.next_at_or_after(q), expect) << "query " << q;
  }
}

TEST(RunnableSet, NextAtOrAfterCrossesWordAndLevelBoundaries) {
  // 64·64 = 4096 pids per level-1 word: members straddling those boundaries
  // exercise the climb-and-descend path.
  RunnableSet s(100'000);
  for (int pid : {0, 63, 64, 4095, 4096, 70'000, 99'999}) s.add(pid);
  EXPECT_EQ(s.next_at_or_after(0), 0);
  EXPECT_EQ(s.next_at_or_after(1), 63);
  EXPECT_EQ(s.next_at_or_after(64), 64);
  EXPECT_EQ(s.next_at_or_after(65), 4095);
  EXPECT_EQ(s.next_at_or_after(4096), 4096);
  EXPECT_EQ(s.next_at_or_after(4097), 70'000);
  EXPECT_EQ(s.next_at_or_after(70'001), 99'999);
  EXPECT_EQ(s.next_at_or_after(100'000), -1);
  s.remove(99'999);
  EXPECT_EQ(s.next_at_or_after(70'001), -1);
}

TEST(RunnableSet, DenseIndexEnumeratesExactlyTheMembers) {
  RunnableSet s(256);
  std::set<int> want;
  for (int pid = 0; pid < 256; pid += 3) {
    s.add(pid);
    want.insert(pid);
  }
  s.remove(99);
  want.erase(99);
  std::set<int> got;
  for (int i = 0; i < s.size(); ++i) got.insert(s.at(i));
  EXPECT_EQ(got, want);
}

// ------------------------------------------------------------- ZipfSampler --

TEST(ZipfSampler, SamplesStayInRangeAndSkewTowardLowRanks) {
  const int n = 64;
  ZipfSampler zipf(n, 1.5);
  Rng rng(11);
  std::vector<int> hits(static_cast<std::size_t>(n), 0);
  const int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    const int k = zipf.sample(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, n);
    ++hits[static_cast<std::size_t>(k)];
  }
  // Rank 0 dominates and the head holds most of the mass under s = 1.5.
  EXPECT_GT(hits[0], hits[1]);
  EXPECT_GT(hits[0], kDraws / 3);
  int head = 0;
  for (int k = 0; k < 8; ++k) head += hits[static_cast<std::size_t>(k)];
  EXPECT_GT(head, (kDraws * 8) / 10);
}

TEST(ZipfSampler, ZeroSkewIsRoughlyUniform) {
  const int n = 16;
  ZipfSampler zipf(n, 0.0);
  Rng rng(13);
  std::vector<int> hits(static_cast<std::size_t>(n), 0);
  const int kDraws = 64'000;
  for (int i = 0; i < kDraws; ++i) ++hits[static_cast<std::size_t>(zipf.sample(rng))];
  for (int k = 0; k < n; ++k) {
    EXPECT_GT(hits[static_cast<std::size_t>(k)], kDraws / n / 2) << k;
    EXPECT_LT(hits[static_cast<std::size_t>(k)], kDraws / n * 2) << k;
  }
}

// -------------------------------------------------------------- lazy spawn --

World::Options lazy_world() {
  World::Options o;
  o.lazy_spawn = true;
  return o;
}

TEST(LazySpawn, FrameMaterializesAtFirstGrantNotAtSpawn) {
  World w(1, lazy_world());
  auto& reg = w.make_register<int>("r", 0);
  bool body_entered = false;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    body_entered = true;
    co_await ctx.write(reg, 1);
  });
  // Spawned and runnable, but the body's local prefix has not run.
  EXPECT_TRUE(w.runnable(0));
  EXPECT_FALSE(body_entered);
  EXPECT_EQ(w.counts(0).total(), 0u);
  // The materializing grant runs the prefix AND performs the first access.
  w.step(0);
  EXPECT_TRUE(body_entered);
  EXPECT_EQ(w.counts(0).writes, 1u);
  EXPECT_EQ(reg.peek(), 1);
  EXPECT_TRUE(w.done(0));
}

TEST(LazySpawn, ZeroAccessProgramCompletesOnItsFirstGrant) {
  World w(1, lazy_world());
  int ran = 0;
  w.spawn(0, [&](Context) -> ProcessTask {
    ++ran;
    co_return;
  });
  EXPECT_TRUE(w.runnable(0));
  EXPECT_FALSE(w.done(0));
  // The grant materializes, runs to completion, performs zero accesses.
  EXPECT_FALSE(w.step(0));
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(w.done(0));
  EXPECT_EQ(w.counts(0).total(), 0u);
  EXPECT_EQ(w.global_step(), 0u);
}

TEST(LazySpawn, RunDrivesPendingProcessesToCompletion) {
  const int n = 32;
  World w(n, lazy_world());
  auto& reg = w.make_register<int>("r", 0, kAnyWriter);
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&reg, pid](Context ctx) -> ProcessTask {
      co_await ctx.write(reg, pid);
      (void)co_await ctx.read(reg);
    });
  }
  RoundRobinScheduler rr;
  const RunResult r = w.run(rr);
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(r.steps_taken, static_cast<std::uint64_t>(2 * n));
  EXPECT_EQ(w.total_counts().total(), static_cast<std::uint64_t>(2 * n));
}

// -------------------------------------------------------- revive & epochs --

TEST(World, ReviveRestartsACrashedPidAsANewIncarnation) {
  World w(2);
  auto& reg = w.make_register<int>("r", 0, kAnyWriter);
  const auto writer = [&](int val) {
    return [&reg, val](Context ctx) -> ProcessTask {
      co_await ctx.write(reg, val);
      co_await ctx.write(reg, val);
    };
  };
  w.spawn(0, writer(1));
  const std::uint32_t first_epoch = w.spawn_epoch(0);
  w.step(0);
  w.crash(0);
  EXPECT_TRUE(w.crashed(0));
  w.revive(0, writer(7));
  EXPECT_TRUE(w.runnable(0));
  EXPECT_GT(w.spawn_epoch(0), first_epoch);
  w.step(0);
  w.step(0);
  EXPECT_TRUE(w.done(0));
  // Counts accumulate across incarnations: 1 pre-crash + 2 post-revive.
  EXPECT_EQ(w.counts(0).writes, 3u);
  EXPECT_EQ(reg.peek(), 7);
}

TEST(RandomScheduler, StickinessDoesNotFollowAPidAcrossIncarnations) {
  // Regression: with stickiness 1.0 the scheduler re-picks last_ as long as
  // it is runnable. Before the epoch check it would keep doing so across a
  // crash+revive — the NEW incarnation silently inherited the sticky run,
  // and with continuous churn the other pid was never scheduled again. With
  // the fix every revive forces a fresh uniform draw, so over many cycles
  // both pids must receive grants.
  World w(2);
  auto& reg = w.make_register<int>("r", 0, kAnyWriter);
  const auto busy = [&reg](Context ctx) -> ProcessTask {
    for (int i = 0; i < 1'000'000; ++i) co_await ctx.write(reg, i);
  };
  w.spawn(0, busy);
  w.spawn(1, busy);
  RandomScheduler rnd(42, /*stickiness=*/1.0);
  std::set<int> granted;
  for (int cycle = 0; cycle < 64; ++cycle) {
    const int pid = rnd.pick(w);
    ASSERT_GE(pid, 0);
    granted.insert(pid);
    w.step(pid);
    w.crash(pid);
    w.revive(pid, busy);
  }
  EXPECT_EQ(granted.size(), 2u) << "sticky pick survived a re-incarnation";
}

TEST(RandomScheduler, IsDeterministicPerSeedAtScale) {
  const auto run_once = [](std::uint64_t seed) {
    const int n = 512;
    World w(n, lazy_world());
    auto& reg = w.make_register<std::uint64_t>("r", 0, kAnyWriter);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&reg, pid](Context ctx) -> ProcessTask {
        for (int i = 0; i < 8; ++i) {
          co_await ctx.write(reg, static_cast<std::uint64_t>(pid));
        }
      });
    }
    RandomScheduler rnd(seed, 0.25);
    RecordingScheduler rec(rnd);
    EXPECT_TRUE(w.run(rec).all_done);
    return rec.picks();
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

// ---------------------------------------------------- CrashingScheduler ----

ProcessTask spin_writer(Context ctx, Register<int>& reg, int k) {
  for (int i = 0; i < k; ++i) co_await ctx.write(reg, i);
}

TEST(CrashingScheduler, VictimStopsAfterExactlyItsQuota) {
  const int n = 8;
  World w(n);
  auto& reg = w.make_register<int>("r", 0, kAnyWriter);
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&](Context ctx) { return spin_writer(ctx, reg, 20); });
  }
  RoundRobinScheduler rr;
  CrashingScheduler cs(rr, {{7, 3}, {11, 5}});
  w.run(cs);
  // Victims performed exactly their quota before the injected crash; the
  // incremental check must not let a grant slip through past it.
  EXPECT_TRUE(w.crashed(3));
  EXPECT_EQ(w.counts(3).total(), 7u);
  EXPECT_TRUE(w.crashed(5));
  EXPECT_EQ(w.counts(5).total(), 11u);
  for (int pid : {0, 1, 2, 4, 6, 7}) {
    EXPECT_TRUE(w.done(pid)) << pid;
    EXPECT_EQ(w.counts(pid).total(), 20u) << pid;
  }
}

TEST(CrashingScheduler, ArmsVictimsThatSpawnMidRun) {
  World w(2);
  auto& reg = w.make_register<int>("r", 0, kAnyWriter);
  w.spawn(0, [&](Context ctx) { return spin_writer(ctx, reg, 10); });
  RoundRobinScheduler rr;
  CrashingScheduler cs(rr, {{4, 1}});
  w.run_steps(cs, 5);
  // Victim 1 spawns only now; its pending entry must arm on the next pick.
  w.spawn(1, [&](Context ctx) { return spin_writer(ctx, reg, 10); });
  w.run(cs);
  EXPECT_TRUE(w.done(0));
  EXPECT_TRUE(w.crashed(1));
  EXPECT_EQ(w.counts(1).total(), 4u);
}

TEST(CrashingScheduler, DetectsStepsTakenOutsideItsGrants) {
  World w(2);
  auto& reg = w.make_register<int>("r", 0, kAnyWriter);
  w.spawn(0, [&](Context ctx) { return spin_writer(ctx, reg, 10); });
  w.spawn(1, [&](Context ctx) { return spin_writer(ctx, reg, 10); });
  RoundRobinScheduler rr;
  CrashingScheduler cs(rr, {{3, 1}});
  w.run_steps(cs, 2);  // grants pid 0 then pid 1
  // Push the victim to its quota behind the scheduler's back; the global-
  // step mismatch must force a sweep on the next pick, so the crash fires
  // before the victim is granted a 4th access.
  w.step(1);
  w.step(1);
  w.run(cs);
  EXPECT_TRUE(w.done(0));
  EXPECT_TRUE(w.crashed(1));
  EXPECT_EQ(w.counts(1).total(), 3u);
}

// ---------------------------------------------------------------- scenario --

TEST(Scenario, UpFrontArrivalsRunToCompletion) {
  ScenarioOptions opts;
  opts.num_procs = 200;
  opts.num_registers = 32;
  opts.ops_per_process = 8;
  opts.total_steps = 100'000;
  World w(opts.num_procs, scenario_world_options(opts));
  RoundRobinScheduler rr;
  const ScenarioResult r = run_scenario(w, rr, opts);
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(r.arrived, 200u);
  EXPECT_EQ(r.completed, 200u);
  EXPECT_EQ(r.crashes, 0u);
  // Every op is exactly one write and every grant is exactly one access.
  EXPECT_EQ(r.accesses.writes, 200u * 8u);
  EXPECT_EQ(r.accesses.reads, 0u);
  EXPECT_EQ(r.grants, r.accesses.total());
}

TEST(Scenario, BurstyArrivalsAllEventuallyArriveAndFinish) {
  ScenarioOptions opts;
  opts.num_procs = 120;
  opts.num_registers = 16;
  opts.ops_per_process = 4;
  opts.total_steps = 50'000;
  opts.burst_every = 64;
  opts.burst_size = 25;  // deliberately not a divisor of num_procs
  World w(opts.num_procs, scenario_world_options(opts));
  RandomScheduler rnd(3);
  const ScenarioResult r = run_scenario(w, rnd, opts);
  EXPECT_EQ(r.arrived, 120u);
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(r.completed, 120u);
  EXPECT_EQ(r.accesses.writes, 120u * 4u);
}

TEST(Scenario, ChurnCrashesAndRevivesKeepTheRunLive) {
  ScenarioOptions opts;
  opts.num_procs = 100;
  opts.num_registers = 16;
  opts.ops_per_process = 32;
  opts.total_steps = 20'000;
  opts.churn_every = 500;
  opts.churn_crashes = 3;
  opts.recover = true;
  World w(opts.num_procs, scenario_world_options(opts));
  RandomScheduler rnd(17);
  const ScenarioResult r = run_scenario(w, rnd, opts);
  EXPECT_GT(r.crashes, 0u);
  EXPECT_EQ(r.revived, r.crashes);
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(r.completed, 100u);
}

TEST(Scenario, ChurnWithoutRecoveryLeavesVictimsCrashed) {
  ScenarioOptions opts;
  opts.num_procs = 100;
  opts.num_registers = 16;
  opts.ops_per_process = 64;
  opts.total_steps = 30'000;
  opts.churn_every = 200;
  opts.churn_crashes = 2;
  opts.recover = false;
  World w(opts.num_procs, scenario_world_options(opts));
  RoundRobinScheduler rr;
  const ScenarioResult r = run_scenario(w, rr, opts);
  EXPECT_GT(r.crashes, 0u);
  EXPECT_EQ(r.revived, 0u);
  EXPECT_TRUE(r.all_done);  // crashed pids are not runnable
  std::uint64_t crashed = 0;
  for (int pid = 0; pid < opts.num_procs; ++pid) {
    if (w.crashed(pid)) ++crashed;
  }
  EXPECT_EQ(crashed, r.crashes);
  EXPECT_EQ(r.completed + crashed, 100u);
}

TEST(Scenario, ZipfSkewConcentratesWritesOnHotRegisters) {
  ScenarioOptions opts;
  opts.num_procs = 256;
  opts.num_registers = 64;
  opts.ops_per_process = 16;
  opts.zipf_s = 1.5;
  opts.total_steps = 100'000;
  World::Options wopts = scenario_world_options(opts);
  wopts.trace = true;
  World w(opts.num_procs, wopts);
  RoundRobinScheduler rr;
  const ScenarioResult r = run_scenario(w, rr, opts);
  ASSERT_TRUE(r.all_done);
  std::map<int, std::uint64_t> per_reg;
  for (const AccessEvent& ev : w.trace()) {
    ASSERT_TRUE(ev.is_write);
    ++per_reg[ev.register_id];
  }
  // Register ids follow creation order, so id 0 is Zipf rank 0: the single
  // hottest register, holding well over the uniform share (1/64) of writes.
  const std::uint64_t total = 256u * 16u;
  EXPECT_GT(per_reg[0], total / 8);
  std::uint64_t head = 0;
  for (int id = 0; id < 8; ++id) head += per_reg[id];
  EXPECT_GT(head, (total * 7) / 10);
}

TEST(Scenario, RecordedRunReplaysStepIdentically) {
  ScenarioOptions opts;
  opts.num_procs = 80;
  opts.num_registers = 16;
  opts.ops_per_process = 8;
  opts.total_steps = 40'000;
  opts.burst_every = 100;
  opts.burst_size = 20;
  opts.churn_every = 300;
  opts.churn_crashes = 2;
  opts.recover = true;

  std::vector<int> picks;
  const ScenarioResult live =
      run_scenario_recorded(opts, /*sched_seed=*/9, /*stickiness=*/0.3, &picks);
  EXPECT_TRUE(live.all_done);
  EXPECT_EQ(static_cast<std::uint64_t>(picks.size()), live.grants);

  // FixedScheduler kFail aborts on any divergence, so surviving the replay
  // plus same_execution() pins the execution shape end to end.
  const ScenarioResult replayed = replay_scenario(opts, picks);
  EXPECT_TRUE(replayed.same_execution(live));
}

TEST(Scenario, SameSeedSameSchedulerIsReproducible) {
  ScenarioOptions opts;
  opts.num_procs = 64;
  opts.num_registers = 8;
  opts.ops_per_process = 8;
  opts.total_steps = 20'000;
  opts.churn_every = 128;
  opts.churn_crashes = 1;
  const ScenarioResult a = run_scenario_recorded(opts, 21, 0.0, nullptr);
  const ScenarioResult b = run_scenario_recorded(opts, 21, 0.0, nullptr);
  EXPECT_TRUE(a.same_execution(b));
}

}  // namespace
}  // namespace apram::sim
