// Tests for two-process randomized consensus (objects/randomized_consensus)
// and empirical checks of the approximate-agreement lemmas (Lemmas 1 and 3)
// on recorded executions.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "agreement/approx_agreement.hpp"
#include "objects/randomized_consensus.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace apram {
namespace {

using sim::Context;
using sim::ProcessTask;
using sim::World;

// ---------------------------------------------------------------------------
// Randomized consensus: safety on every run, termination across seeds.
// ---------------------------------------------------------------------------

struct ConsensusRun {
  std::int64_t decided[2] = {-1, -1};
  bool finished = false;
};

ConsensusRun run_consensus(std::int64_t in0, std::int64_t in1,
                           std::uint64_t sched_seed, std::uint64_t coin_seed,
                           std::uint64_t max_steps = 500'000) {
  World w(2);
  RandomizedConsensusSim cons(w, 2);
  ConsensusRun out;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    out.decided[0] = co_await cons.propose(ctx, in0, coin_seed);
  });
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    out.decided[1] = co_await cons.propose(ctx, in1, coin_seed + 777);
  });
  sim::RandomScheduler sched(sched_seed);
  out.finished = w.run(sched, max_steps).all_done;
  return out;
}

TEST(RandomizedConsensus, SoloProcessDecidesItsInput) {
  World w(2);
  RandomizedConsensusSim cons(w, 2);
  std::int64_t decided = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    decided = co_await cons.propose(ctx, 42, 1);
  });
  w.run_solo(0);
  EXPECT_EQ(decided, 42);
}

TEST(RandomizedConsensus, AgreementAndValidityAcrossManySeeds) {
  int terminated = 0;
  const int trials = 60;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    const auto r = run_consensus(0, 1, seed, seed * 13 + 1);
    if (!r.finished) continue;  // termination is probabilistic; counted below
    ++terminated;
    // Agreement: both decide the same value.
    EXPECT_EQ(r.decided[0], r.decided[1]) << "seed=" << seed;
    // Validity: the decision is someone's input.
    EXPECT_TRUE(r.decided[0] == 0 || r.decided[0] == 1) << "seed=" << seed;
  }
  // Against the oblivious random scheduler, essentially every run should
  // terminate well within the step cap.
  EXPECT_GE(terminated, trials - 2);
}

TEST(RandomizedConsensus, SameInputsDecideThatInput) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto r = run_consensus(7, 7, seed, seed + 3);
    ASSERT_TRUE(r.finished);
    EXPECT_EQ(r.decided[0], 7);
    EXPECT_EQ(r.decided[1], 7);
  }
}

TEST(RandomizedConsensus, LateRivalAdoptsTheDecision) {
  // P0 runs to completion alone (decides its input), then P1 runs: it must
  // adopt P0's frozen decision — the adopt-when-behind path.
  World w(2);
  RandomizedConsensusSim cons(w, 2);
  std::int64_t d0 = -1, d1 = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    d0 = co_await cons.propose(ctx, 100, 5);
  });
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    d1 = co_await cons.propose(ctx, 200, 6);
  });
  w.run_solo(0);
  w.run_solo(1);
  EXPECT_EQ(d0, 100);
  EXPECT_EQ(d1, 100);
}

TEST(RandomizedConsensus, NonBinaryInputsStayValid) {
  // Validity with arbitrary inputs: the decision must be one of the inputs,
  // even when the conciliator has to re-draw.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto r = run_consensus(1000, -77, seed, seed * 5 + 2);
    if (!r.finished) continue;
    EXPECT_EQ(r.decided[0], r.decided[1]) << "seed=" << seed;
    EXPECT_TRUE(r.decided[0] == 1000 || r.decided[0] == -77)
        << "decided " << r.decided[0] << ", seed=" << seed;
  }
}

TEST(RandomizedConsensus, ThreeProcessAgreementAndValidity) {
  int terminated = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    World w(3);
    RandomizedConsensusSim cons(w, 3);
    std::vector<std::int64_t> decided(3, -1);
    for (int pid = 0; pid < 3; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        decided[static_cast<std::size_t>(pid)] =
            co_await cons.propose(ctx, pid % 2, seed * 101 + pid);
      });
    }
    sim::RandomScheduler sched(seed, seed % 2 ? 0.7 : 0.0);
    if (!w.run(sched, 2'000'000).all_done) continue;
    ++terminated;
    EXPECT_EQ(decided[0], decided[1]) << "seed=" << seed;
    EXPECT_EQ(decided[1], decided[2]) << "seed=" << seed;
    EXPECT_TRUE(decided[0] == 0 || decided[0] == 1);
  }
  EXPECT_GE(terminated, 28);
}

TEST(RandomizedConsensus, SurvivorDecidesDespiteRivalCrash) {
  for (std::uint64_t crash_at = 1; crash_at < 12; ++crash_at) {
    World w(2);
    RandomizedConsensusSim cons(w, 2);
    std::int64_t d1 = -1;
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      (void)co_await cons.propose(ctx, 0, 9);
    });
    w.spawn(1, [&](Context ctx) -> ProcessTask {
      d1 = co_await cons.propose(ctx, 1, 10);
    });
    sim::RandomScheduler rnd(crash_at);
    sim::CrashingScheduler sched(rnd, {{crash_at, 0}});
    const auto res = w.run(sched, 500'000);
    EXPECT_TRUE(res.all_done);
    EXPECT_TRUE(d1 == 0 || d1 == 1) << "crash_at=" << crash_at;
  }
}

// ---------------------------------------------------------------------------
// Lemmas 1 and 3, checked on recorded Figure 2 executions.
// ---------------------------------------------------------------------------

// Reconstruct the X_r sets from the write log and check:
//   Lemma 1: range(X_r) ⊆ range(X_{r-1}) for r > 1
//   Lemma 3: |range(X_r)| ≤ |range(X_{r-1})| / 2
TEST(AgreementLemmas, RangesNestAndHalveOnRealExecutions) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const int n = 4;
    Rng rng(seed * 7 + 2);
    std::vector<double> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(rng.uniform(-5.0, 5.0));

    World w(n);
    ApproxAgreementSim aa(w, n, /*eps=*/1.0 / 256.0);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        co_await aa.input(ctx, inputs[static_cast<std::size_t>(pid)]);
      });
    }
    sim::RoundRobinScheduler rr;
    ASSERT_TRUE(w.run(rr).all_done);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        (void)co_await aa.output(ctx);
      });
    }
    sim::RandomScheduler sched(seed, seed % 2 ? 0.8 : 0.0);
    ASSERT_TRUE(w.run(sched, 10'000'000).all_done);

    std::map<std::int64_t, RealRange> x_ranges;
    for (const auto& rec : aa.write_log()) {
      x_ranges[rec.round].extend(rec.prefer);
    }
    ASSERT_FALSE(x_ranges.empty());
    for (auto it = std::next(x_ranges.begin()); it != x_ranges.end(); ++it) {
      const auto prev = std::prev(it);
      ASSERT_EQ(it->first, prev->first + 1) << "round gap, seed=" << seed;
      // Lemma 1: nesting.
      EXPECT_TRUE(prev->second.contains(it->second))
          << "Lemma 1 violated at round " << it->first << ", seed=" << seed;
      // Lemma 3: halving (with float-tolerant comparison).
      EXPECT_LE(it->second.size(), prev->second.size() / 2.0 + 1e-12)
          << "Lemma 3 violated at round " << it->first << ", seed=" << seed;
    }
  }
}

TEST(AgreementLemmas, WriteLogRecordsInputsAtRoundOne) {
  World w(2);
  ApproxAgreementSim aa(w, 2, 0.5);
  w.spawn(0, [&](Context ctx) -> ProcessTask { co_await aa.input(ctx, 3.0); });
  w.spawn(1, [&](Context ctx) -> ProcessTask { co_await aa.input(ctx, 4.0); });
  w.run_solo(0);
  w.run_solo(1);
  ASSERT_EQ(aa.write_log().size(), 2u);
  EXPECT_EQ(aa.write_log()[0].round, 1);
  EXPECT_DOUBLE_EQ(aa.write_log()[0].prefer, 3.0);
  EXPECT_EQ(aa.write_log()[1].pid, 1);
}

}  // namespace
}  // namespace apram
