// The fault campaign (label: stress). Not part of the tier-1 PR gate — the
// nightly CI job and local `ctest -L stress` run it.
//
// Scope pinned by the certification story:
//   * ≥ 1000 adversarial sim schedules against the snapshot object, exact
//     §6.2 step bounds, seeded crash/stall/burst plans (certify_wait_freedom)
//   * agreement campaigns holding the Theorem 5 step bound under faults
//   * ≥ 100 real-thread injection runs with linearizable recorded histories
//   * every emitted violation artifact reproduces its run step-identically
//
// All randomness derives from tests/fault_seeds.hpp, so a nightly failure
// reproduces locally without seed hunting. Artifacts land in
// $APRAM_FAULT_ARTIFACT_DIR when set (the CI job uploads that directory on
// failure) and in the gtest temp dir otherwise.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "agreement/approx_agreement.hpp"
#include "fault/certifier.hpp"
#include "fault/nemesis.hpp"
#include "fault/rt_inject.hpp"
#include "fault_seeds.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "objects/specs.hpp"
#include "rt/fast_counter_rt.hpp"
#include "rt/thread_harness.hpp"
#include "sim/world.hpp"
#include "snapshot/atomic_snapshot.hpp"
#include "util/rng.hpp"

namespace apram {
namespace {

using sim::Context;
using sim::Execution;
using sim::ProcessTask;
using sim::World;
using C = CounterSpec;

std::string artifact_dir(const std::string& subdir) {
  const char* env = std::getenv("APRAM_FAULT_ARTIFACT_DIR");
  const std::string base =
      env != nullptr ? std::string(env) : ::testing::TempDir() + "apram-fault";
  return base + "/" + subdir;
}

// ---------------------------------------------------------------------------
// Sim campaign 1: snapshot object, exact §6.2 bounds, ≥ 1000 schedules
// ---------------------------------------------------------------------------

// Two updaters (one update: 1 write each) and a scanner (two tagged scans:
// 2·(n²−1) = 16 reads, 2·(n+1) = 8 writes at n = 3, kOptimized).
struct SnapExec final : Execution {
  SnapExec() : w(3), snap(w, 3, "s") {
    for (int pid = 0; pid < 2; ++pid) {
      w.spawn(pid, [this, pid](Context ctx) -> ProcessTask {
        co_await snap.update(ctx, 100 + pid);
      });
    }
    w.spawn(2, [this](Context ctx) -> ProcessTask {
      views.push_back(co_await snap.scan_tagged(ctx));
      views.push_back(co_await snap.scan_tagged(ctx));
    });
  }
  World& world() override { return w; }
  World w;
  AtomicSnapshotSim<int> snap;
  std::vector<TaggedVectorLattice<int>::Value> views;
};

sim::ExecutionFactory snap_factory() {
  return [] { return std::make_unique<SnapExec>(); };
}

TEST(FaultCampaign, SnapshotThousandAdversarialSchedulesCertify) {
  std::uint64_t total_schedules = 0;
  std::uint64_t total_faults = 0;
  for (const std::uint64_t base : fault_seeds::kCampaignBaseSeeds) {
    fault::CampaignOptions opts;
    opts.schedules = 200;
    opts.base_seed = base;
    opts.plan.never_crash = {2};  // the scanner is the measured process
    opts.artifact_dir = artifact_dir("snapshot");
    const fault::CampaignResult result = fault::certify_wait_freedom(
        snap_factory(), fault::step_bound_judge({{0, 1}, {0, 1}, {16, 8}}),
        opts);
    EXPECT_TRUE(result.certified()) << "base_seed=" << base << ": "
        << (result.violations.empty()
                ? "no schedules ran"
                : result.violations[0].what + " (artifact: " +
                      result.violations[0].artifact_path + ")");
    total_schedules += result.schedules_run;
    total_faults += result.crashes_fired + result.stall_deflections +
                    result.burst_grants;
  }
  EXPECT_GE(total_schedules, 1000u);
  // A campaign that never fired a fault certified nothing adversarial.
  EXPECT_GT(total_faults, 0u);
}

// ---------------------------------------------------------------------------
// Sim campaign 2: approximate agreement, Theorem 5 bound under faults
// ---------------------------------------------------------------------------

struct AgreementExec final : Execution {
  AgreementExec() : w(3), agree(w, 3, /*epsilon=*/0.01, "agree") {
    const double inputs[] = {0.0, 1.0, 0.25};
    for (int pid = 0; pid < 3; ++pid) {
      w.spawn(pid, [this, pid, x = inputs[pid]](Context ctx) -> ProcessTask {
        co_await agree.input(ctx, x);
        outputs[static_cast<std::size_t>(pid)] = co_await agree.output(ctx);
      });
    }
  }
  World& world() override { return w; }
  World w;
  ApproxAgreementSim agree;
  double outputs[3] = {-1.0, -1.0, -1.0};
};

TEST(FaultCampaign, AgreementStepBoundHoldsUnderFaults) {
  // Theorem 5: (2n+1)·log2(Δ/ε) + O(n) steps per process, here with the
  // same generous constant slack the tier-1 bound test uses.
  const int n = 3;
  const double log_ratio = std::log2(1.0 / 0.01);
  const double bound = (2.0 * n + 1.0) * (log_ratio + 3.0) + 8.0 * n;
  const fault::Judge judge = [bound, n](sim::Execution& e) -> std::string {
    for (int pid = 0; pid < n; ++pid) {
      const double steps =
          static_cast<double>(e.world().counts(pid).total());
      if (steps > bound) {
        return "pid " + std::to_string(pid) + ": " +
               std::to_string(static_cast<std::uint64_t>(steps)) +
               " steps exceed the Theorem 5 bound " + std::to_string(bound);
      }
    }
    return "";
  };
  std::uint64_t total_schedules = 0;
  for (const std::uint64_t base : fault_seeds::kCampaignBaseSeeds) {
    fault::CampaignOptions opts;
    opts.schedules = 100;
    opts.base_seed = base;
    opts.plan.max_crashes = 2;  // at least one survivor
    opts.artifact_dir = artifact_dir("agreement");
    const fault::CampaignResult result = fault::certify_wait_freedom(
        [] { return std::make_unique<AgreementExec>(); }, judge, opts);
    EXPECT_TRUE(result.certified()) << "base_seed=" << base << ": "
        << (result.violations.empty() ? "no schedules ran"
                                      : result.violations[0].what);
    total_schedules += result.schedules_run;
  }
  EXPECT_GE(total_schedules, 500u);
}

// ---------------------------------------------------------------------------
// Rt campaign: ≥ 100 injection runs, all histories linearizable
// ---------------------------------------------------------------------------

TEST(FaultCampaign, RtInjectionHundredRunsLinearizable) {
  const int n = 3;
  const int ops_per_thread = 8;
  int runs = 0;
  for (const std::uint64_t base : fault_seeds::kCampaignBaseSeeds) {
    for (int rep = 0; rep < 20; ++rep, ++runs) {
      const std::uint64_t seed = base * 1000 + static_cast<std::uint64_t>(rep);
      fault::RtInjectOptions inj_opts;
      inj_opts.yield_prob = 0.5;
      inj_opts.sleep_prob = 0.05;
      inj_opts.sleep_max_us = 20;
      inj_opts.seed = seed;
      fault::RtInjector inj(inj_opts);
      rt::FastCounterRT counter(n);
      counter.attach_injector(&inj);

      std::atomic<std::uint64_t> clock{0};
      std::vector<std::vector<RecordedOp<C>>> per_thread(
          static_cast<std::size_t>(n));
      rt::parallel_run(n, [&](int pid) {
        auto& ops = per_thread[static_cast<std::size_t>(pid)];
        Rng rng(seed * 31 + static_cast<std::uint64_t>(pid));
        for (int i = 0; i < ops_per_thread; ++i) {
          RecordedOp<C> r;
          r.pid = pid;
          if (rng.chance(0.5)) {
            r.inv = C::inc(1);
            r.invoke_time = clock.fetch_add(1);
            counter.inc(pid);
            r.resp = 0;
          } else {
            r.inv = C::read();
            r.invoke_time = clock.fetch_add(1);
            r.resp = counter.read(pid);
          }
          r.respond_time = clock.fetch_add(1);
          ops.push_back(r);
        }
      });

      std::vector<RecordedOp<C>> history;
      for (const auto& ops : per_thread) {
        history.insert(history.end(), ops.begin(), ops.end());
      }
      ASSERT_TRUE(is_linearizable<C>(std::move(history))) << "seed=" << seed;
    }
  }
  EXPECT_GE(runs, 100);
}

TEST(FaultCampaign, RtStallAtEveryBoundaryLeavesAPendingOp) {
  // Calibrate the per-inc register access cost, then park the victim at
  // every access boundary of a two-inc program and check the mid-stall
  // history with the stalled inc as a genuine pending operation.
  std::uint64_t per_inc = 0;
  {
    fault::RtInjector inj(fault::RtInjectOptions{});
    rt::FastCounterRT calib(2);
    calib.attach_injector(&inj);
    rt::parallel_run(1, [&](int pid) { calib.inc(pid); });
    per_inc = inj.accesses(0);
    ASSERT_GT(per_inc, 0u);
  }
  for (std::uint64_t k = 0; k < 2 * per_inc; ++k) {
    fault::RtInjector inj(fault::RtInjectOptions{});
    rt::FastCounterRT counter(2);
    counter.attach_injector(&inj);
    std::int64_t probed = -1;
    rt::run_with_stall(
        /*num_threads=*/1,
        [&](int pid) {
          counter.inc(pid);
          counter.inc(pid);
        },
        inj, /*victim=*/0, /*stall_after=*/k,
        [&] { probed = counter.read(1); });

    // Parked at the top of access k+1: exactly floor(k / per_inc) incs
    // completed, the next one is pending (invoked, unresponded).
    const auto completed = static_cast<std::int64_t>(k / per_inc);
    std::vector<RecordedOp<C>> h;
    std::uint64_t t = 0;
    for (std::int64_t i = 0; i < completed; ++i) {
      RecordedOp<C> r;
      r.pid = 0;
      r.inv = C::inc(1);
      r.invoke_time = t++;
      r.resp = 0;
      r.respond_time = t++;
      h.push_back(r);
    }
    RecordedOp<C> pending;
    pending.pid = 0;
    pending.inv = C::inc(1);
    pending.invoke_time = t++;  // respond_time stays kPending
    h.push_back(pending);
    RecordedOp<C> probe;
    probe.pid = 1;
    probe.inv = C::read();
    probe.invoke_time = t++;
    probe.resp = probed;
    probe.respond_time = t++;
    h.push_back(probe);
    EXPECT_TRUE(is_linearizable<C>(h))
        << "stall_after=" << k << " probed=" << probed;
    // Released victim finishes: both incs land.
    EXPECT_EQ(counter.read(1), 2) << "stall_after=" << k;
  }
}

// ---------------------------------------------------------------------------
// Artifact self-test: every violation reproduces step-identically
// ---------------------------------------------------------------------------

TEST(FaultCampaign, EveryInjectedViolationReproducesStepIdentically) {
  const std::string dir = artifact_dir("selftest");
  std::filesystem::remove_all(dir);
  std::uint64_t artifacts_checked = 0;
  for (const std::uint64_t base : fault_seeds::kCampaignBaseSeeds) {
    fault::CampaignOptions opts;
    opts.schedules = 2;
    opts.base_seed = base;
    opts.plan.max_crashes = 0;
    opts.artifact_dir = dir;
    // Impossible bound: every scan starts with reads, so every schedule is
    // flagged and every flagged schedule must reproduce from its artifact.
    const fault::CampaignResult result = fault::certify_wait_freedom(
        snap_factory(), fault::step_bound_judge({{0, 1}, {0, 1}, {0, 8}}),
        opts);
    ASSERT_EQ(result.violations.size(), 2u) << "base_seed=" << base;
    for (const fault::Violation& v : result.violations) {
      ASSERT_FALSE(v.artifact_path.empty());
      ASSERT_TRUE(std::filesystem::exists(v.artifact_path));
      auto replayed = fault::replay_artifact(snap_factory(), v.artifact_path);
      World& w = replayed->world();
      std::vector<std::uint64_t> grants(3, 0);
      for (int pid : v.schedule) ++grants[static_cast<std::size_t>(pid)];
      for (int pid = 0; pid < 3; ++pid) {
        EXPECT_EQ(w.counts(pid).total(),
                  grants[static_cast<std::size_t>(pid)])
            << "seed=" << v.seed << " pid=" << pid;
      }
      EXPECT_EQ(w.global_step(), v.schedule.size()) << "seed=" << v.seed;
      auto replayed2 = fault::replay_artifact(snap_factory(), v.artifact_path);
      EXPECT_EQ(static_cast<SnapExec&>(*replayed).views,
                static_cast<SnapExec&>(*replayed2).views)
          << "seed=" << v.seed;
      ++artifacts_checked;
    }
  }
  EXPECT_EQ(artifacts_checked,
            2u * static_cast<std::uint64_t>(fault_seeds::kNumCampaignBaseSeeds));
}

}  // namespace
}  // namespace apram
