// Tests for the snapshot baselines (simulator flavours): functional
// correctness, the wait-freedom *failure* of double-collect under an
// adversarial updater (the property E5 quantifies), and the wait-freedom of
// the AADGMS helping snapshot.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/scheduler.hpp"
#include "snapshot/atomic_snapshot.hpp"
#include "snapshot/baselines/afek_snapshot.hpp"
#include "snapshot/baselines/double_collect.hpp"

namespace apram {
namespace {

using sim::Context;
using sim::ProcessTask;
using sim::World;

// ---------------------------------------------------------------------------
// Double-collect
// ---------------------------------------------------------------------------

TEST(DoubleCollect, SequentialScanSeesUpdates) {
  World w(2);
  DoubleCollectSnapshotSim<int> snap(w, 2);
  std::optional<std::vector<std::optional<int>>> view;
  w.spawn(0, [&](Context ctx) -> ProcessTask { co_await snap.update(ctx, 3); });
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    view = co_await snap.scan(ctx);
  });
  w.run_solo(0);
  w.run_solo(1);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ((*view)[0], 3);
  EXPECT_FALSE((*view)[1].has_value());
}

TEST(DoubleCollect, UncontendedScanCostsTwoCollects) {
  const int n = 4;
  World w(n);
  DoubleCollectSnapshotSim<int> snap(w, n);
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    (void)co_await snap.scan(ctx);
  });
  w.run_solo(0);
  EXPECT_EQ(w.counts(0).reads, static_cast<std::uint64_t>(2 * n));
}

TEST(DoubleCollect, AdversarialUpdaterStarvesTheScanner) {
  // The signature failure of the non-wait-free baseline: an updater that
  // writes between the scanner's two collects keeps the scan retrying
  // forever. We interleave deterministically: the scanner's bounded scan
  // gives up after `max_attempts`, which the wait-free scan never would.
  const int n = 2;
  World w(n);
  DoubleCollectSnapshotSim<int> snap(w, n);
  bool gave_up = false;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    const auto view = co_await snap.scan(ctx, /*max_attempts=*/50);
    gave_up = !view.has_value();
  });
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    for (int i = 0; i < 100000; ++i) co_await snap.update(ctx, i);
  });
  // Schedule: scanner reads slot0, slot1 (collect 1), then the updater
  // writes, then collect 2 — tags differ, retry, repeat.
  std::vector<int> schedule;
  for (int round = 0; round < 50; ++round) {
    schedule.insert(schedule.end(), {0, 0, 1, 0, 0});  // c1, write, c2
  }
  sim::FixedScheduler sched(schedule, sim::FixedScheduler::Fallback::kRoundRobin);
  w.run(sched, 2'000'000);
  EXPECT_TRUE(gave_up);
}

TEST(DoubleCollect, OurScanTerminatesUnderTheSameAdversary) {
  // Same adversarial pressure, wait-free scan: terminates in exactly n²-1
  // reads regardless.
  const int n = 2;
  World w(n);
  AtomicSnapshotSim<int> snap(w, n);
  bool done = false;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    (void)co_await snap.scan(ctx);
    done = true;
  });
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    for (int i = 0; i < 100000; ++i) co_await snap.update(ctx, i);
  });
  std::vector<int> schedule;
  for (int round = 0; round < 50; ++round) {
    schedule.insert(schedule.end(), {0, 0, 1, 0, 0});
  }
  sim::FixedScheduler sched(schedule, sim::FixedScheduler::Fallback::kRoundRobin);
  w.run(sched, 2'000'000);
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------------------------
// AADGMS (Afek et al.) helping snapshot
// ---------------------------------------------------------------------------

TEST(AfekSnapshot, SequentialScanSeesUpdates) {
  World w(3);
  AfekSnapshotSim<int> snap(w, 3);
  std::vector<std::optional<int>> view;
  w.spawn(0, [&](Context ctx) -> ProcessTask { co_await snap.update(ctx, 1); });
  w.spawn(1, [&](Context ctx) -> ProcessTask { co_await snap.update(ctx, 2); });
  w.spawn(2, [&](Context ctx) -> ProcessTask {
    view = co_await snap.scan(ctx);
  });
  w.run_solo(0);
  w.run_solo(1);
  w.run_solo(2);
  EXPECT_EQ(view[0], 1);
  EXPECT_EQ(view[1], 2);
  EXPECT_FALSE(view[2].has_value());
}

TEST(AfekSnapshot, ScanIsWaitFreeUnderAdversarialUpdates) {
  // The same adversary that starves double-collect: AADGMS borrows the
  // updater's embedded view after it moves twice, so the scan terminates.
  const int n = 2;
  World w(n);
  AfekSnapshotSim<int> snap(w, n);
  bool done = false;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    (void)co_await snap.scan(ctx);
    done = true;
  });
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    for (int i = 0; i < 100000; ++i) co_await snap.update(ctx, i);
  });
  // Interleave updater writes between the scanner's collects until the
  // scanner finishes.
  sim::RoundRobinScheduler rr;
  const auto r = w.run_steps(rr, 500'000);
  (void)r;
  EXPECT_TRUE(done);
}

TEST(AfekSnapshot, ScansAreMonotoneUnderRandomSchedules) {
  const int n = 3;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    World w(n);
    AfekSnapshotSim<std::uint64_t> snap(w, n);
    std::vector<std::vector<std::uint64_t>> per_scan;
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      for (int k = 0; k < 4; ++k) {
        const auto view = co_await snap.scan(ctx);
        std::vector<std::uint64_t> flat;
        for (const auto& s : view) flat.push_back(s.value_or(0));
        per_scan.push_back(flat);
      }
    });
    for (int pid = 1; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        for (std::uint64_t i = 1; i <= 6; ++i) {
          co_await snap.update(ctx, pid * 100 + i);
        }
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched, 10'000'000).all_done);
    // Updaters write increasing values; successive scans by the same
    // process must be slot-wise non-decreasing.
    for (std::size_t k = 1; k < per_scan.size(); ++k) {
      for (std::size_t q = 0; q < per_scan[k].size(); ++q) {
        EXPECT_GE(per_scan[k][q], per_scan[k - 1][q])
            << "seed=" << seed << " scan=" << k << " slot=" << q;
      }
    }
  }
}

TEST(AfekSnapshot, UpdateIncludesEmbeddedScanCost) {
  const int n = 3;
  World w(n);
  AfekSnapshotSim<int> snap(w, n);
  w.spawn(0, [&](Context ctx) -> ProcessTask { co_await snap.update(ctx, 1); });
  w.run_solo(0);
  // Solo update: one embedded scan (2n reads, clean first try) + own-slot
  // read + write.
  EXPECT_EQ(w.counts(0).reads, static_cast<std::uint64_t>(2 * n + 1));
  EXPECT_EQ(w.counts(0).writes, 1u);
}

}  // namespace
}  // namespace apram
