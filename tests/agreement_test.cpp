// Tests for approximate agreement: the Figure 1 spec oracle, the Figure 2
// algorithm under round-robin / random / crashing schedules, the Theorem 5
// step bound, and the Lemma 6 adversary (hierarchy Theorems 7–8).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "agreement/adversary.hpp"
#include "agreement/approx_agreement.hpp"
#include "agreement/midpoint_agreement.hpp"
#include "agreement/approx_spec.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"

namespace apram {
namespace {

using sim::Context;
using sim::ProcessTask;
using sim::World;

// ---------------------------------------------------------------------------
// RealRange / spec oracle
// ---------------------------------------------------------------------------

TEST(RealRange, EmptyHasSizeZero) {
  RealRange r;
  EXPECT_TRUE(r.empty);
  EXPECT_EQ(r.size(), 0.0);
}

TEST(RealRange, ExtendTracksMinMax) {
  RealRange r;
  r.extend(3.0);
  r.extend(-1.0);
  r.extend(2.0);
  EXPECT_DOUBLE_EQ(r.lo, -1.0);
  EXPECT_DOUBLE_EQ(r.hi, 3.0);
  EXPECT_DOUBLE_EQ(r.size(), 4.0);
  EXPECT_DOUBLE_EQ(r.midpoint(), 1.0);
}

TEST(RealRange, ContainsRange) {
  RealRange outer;
  outer.extend(0.0);
  outer.extend(10.0);
  RealRange inner;
  inner.extend(2.0);
  inner.extend(3.0);
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(RealRange{}));  // empty range always contained
}

TEST(ApproxSpec, AcceptsOutputsWithinEpsilonInsideInputs) {
  ApproxAgreementSpec spec(0.5);
  spec.add_input(0.0);
  spec.add_input(1.0);
  EXPECT_TRUE(spec.try_output(0.5));
  EXPECT_TRUE(spec.try_output(0.7));   // |{0.5, 0.7}| = 0.2 < 0.5
  EXPECT_FALSE(spec.try_output(0.0));  // would make |range(Y)| = 0.7 >= 0.5
  EXPECT_FALSE(spec.try_output(1.5));  // outside range(X)
}

TEST(ApproxSpec, RejectsOutputBeforeInput) {
  ApproxAgreementSpec spec(1.0);
  EXPECT_FALSE(spec.try_output(0.0));
}

// ---------------------------------------------------------------------------
// Figure 2 algorithm — functional correctness
// ---------------------------------------------------------------------------

struct AgreementRun {
  std::vector<double> outputs;
  std::vector<std::int64_t> rounds;
  std::uint64_t max_steps_per_proc = 0;
};

// The concurrent-participation regime the paper's Lemmas 1-4 analyze: every
// participant's input is installed (phase 1) before any output decides
// (phase 2). See DESIGN.md, "Late-input boundary": an output that completes
// before a distant input is even written returns legitimately early, and
// round-1 input writes are the one case Lemma 4's proof does not cover.
// Within this regime the scheduler below is still a full adversary over the
// output loop, which is where all the paper's bounds live.
AgreementRun run_agreement(const std::vector<double>& inputs, double eps,
                           sim::Scheduler& sched) {
  const int n = static_cast<int>(inputs.size());
  World w(n);
  ApproxAgreementSim aa(w, n, eps);
  AgreementRun out;
  out.outputs.resize(inputs.size());

  // Phase 1: all inputs.
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      co_await aa.input(ctx, inputs[static_cast<std::size_t>(pid)]);
    });
  }
  sim::RoundRobinScheduler rr;
  APRAM_CHECK(w.run(rr).all_done);

  // Phase 2: outputs, interleaved by the scheduler under test.
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      out.outputs[static_cast<std::size_t>(pid)] = co_await aa.output(ctx);
    });
  }
  const auto r = w.run(sched, /*max_steps=*/10'000'000);
  APRAM_CHECK(r.all_done);
  for (int pid = 0; pid < n; ++pid) {
    out.rounds.push_back(aa.peek_entry(pid).round);
    out.max_steps_per_proc =
        std::max(out.max_steps_per_proc, w.counts(pid).total());
  }
  return out;
}

void expect_valid(const std::vector<double>& inputs,
                  const std::vector<double>& outputs, double eps) {
  const RealRange in = range_of(inputs);
  const RealRange out = range_of(outputs);
  EXPECT_TRUE(in.contains(out)) << "outputs escape the input range";
  EXPECT_LT(out.size(), eps) << "outputs too far apart";
}

TEST(ApproxAgreement, SoloProcessReturnsItsInput) {
  World w(1);
  ApproxAgreementSim aa(w, 1, 0.25);
  double out = 0;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    out = co_await aa.decide(ctx, 3.75);
  });
  EXPECT_TRUE(w.run_solo(0).all_done);
  EXPECT_DOUBLE_EQ(out, 3.75);
}

TEST(ApproxAgreement, LateInputAnomalyIsExactlyTheLemma4Round1Gap) {
  // Documented boundary of the algorithm (DESIGN.md "Late-input boundary"):
  // P0 inputs 0 and returns it before P1's input(1) is written. P1 then
  // converges toward the *leaders* (itself, once it advances), halving once
  // and discarding P0's parked round-1 entry: it returns 0.5, not something
  // within epsilon of 0. Validity (outputs inside the input range) still
  // holds; epsilon-agreement provably cannot (Lemma 4's proof covers round-1
  // writes only when they precede the deciding scans — the
  // concurrent-participation regime used everywhere else in this suite).
  World w(2);
  ApproxAgreementSim aa(w, 2, 0.1);
  double out0 = -1, out1 = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    out0 = co_await aa.decide(ctx, 0.0);
  });
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    out1 = co_await aa.decide(ctx, 1.0);
  });
  w.run_solo(0);
  w.run_solo(1);
  EXPECT_DOUBLE_EQ(out0, 0.0);   // ran alone: returns its input
  EXPECT_DOUBLE_EQ(out1, 0.5);   // halves once toward the leader set
  // Validity is preserved even here:
  EXPECT_GE(out1, 0.0);
  EXPECT_LE(out1, 1.0);
}

TEST(ApproxAgreement, RoundRobinTwoProcesses) {
  sim::RoundRobinScheduler rr;
  const std::vector<double> inputs{0.0, 1.0};
  const auto run = run_agreement(inputs, 0.125, rr);
  expect_valid(inputs, run.outputs, 0.125);
}

TEST(ApproxAgreement, IdenticalInputsFinishImmediately) {
  sim::RoundRobinScheduler rr;
  const std::vector<double> inputs{0.5, 0.5, 0.5};
  const auto run = run_agreement(inputs, 0.01, rr);
  for (double y : run.outputs) EXPECT_DOUBLE_EQ(y, 0.5);
  // No process should ever advance past round 1.
  for (auto round : run.rounds) EXPECT_EQ(round, 1);
}

TEST(ApproxAgreement, InputIsIdempotent) {
  World w(1);
  ApproxAgreementSim aa(w, 1, 0.5);
  double out = 0;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await aa.input(ctx, 2.0);
    co_await aa.input(ctx, 99.0);  // must be ignored
    out = co_await aa.output(ctx);
  });
  w.run_solo(0);
  EXPECT_DOUBLE_EQ(out, 2.0);
}

class ApproxAgreementRandom
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ApproxAgreementRandom, ValidUnderManyRandomSchedules) {
  const auto [n, eps] = GetParam();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    std::vector<double> inputs;
    Rng rng(seed * 977 + 13);
    for (int i = 0; i < n; ++i) inputs.push_back(rng.uniform(-8.0, 8.0));
    sim::RandomScheduler sched(seed, seed % 2 ? 0.7 : 0.0);
    const auto run = run_agreement(inputs, eps, sched);
    expect_valid(inputs, run.outputs, eps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproxAgreementRandom,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(1.0, 0.25, 1.0 / 64.0)),
    [](const auto& info) {
      const int denom = static_cast<int>(1.0 / std::get<1>(info.param));
      return "n" + std::to_string(std::get<0>(info.param)) + "_epsInv" +
             std::to_string(denom);
    });

// ---------------------------------------------------------------------------
// Wait-freedom: survivors finish despite crashes (the defining property).
// ---------------------------------------------------------------------------

TEST(ApproxAgreement, SurvivorFinishesDespiteCrash) {
  for (std::uint64_t crash_at = 1; crash_at < 20; ++crash_at) {
    World w(2);
    ApproxAgreementSim aa(w, 2, 0.125);
    std::vector<double> outs(2, NAN);
    // Phase 1: both inputs.
    for (int pid = 0; pid < 2; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        co_await aa.input(ctx, pid == 0 ? 0.0 : 1.0);
      });
    }
    sim::RoundRobinScheduler rr0;
    ASSERT_TRUE(w.run(rr0).all_done);
    // Phase 2: outputs; crash pid 0 partway through. Crash triggers count the
    // VICTIM's own accesses (across respawns), so the phase-2 offset is
    // relative to the victim's phase-1 count.
    const std::uint64_t phase2 = w.counts(0).total();
    for (int pid = 0; pid < 2; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        outs[static_cast<std::size_t>(pid)] = co_await aa.output(ctx);
      });
    }
    sim::RoundRobinScheduler rr;
    sim::CrashingScheduler sched(rr, {{phase2 + crash_at, 0}});
    const auto r = w.run(sched, 1'000'000);
    EXPECT_TRUE(r.all_done);
    ASSERT_FALSE(std::isnan(outs[1])) << "crash_at=" << crash_at;
    // The survivor's output must lie in the input range; and if the crashed
    // process also managed to output, the pair must be within epsilon.
    EXPECT_GE(outs[1], 0.0);
    EXPECT_LE(outs[1], 1.0);
    if (!std::isnan(outs[0])) {
      EXPECT_LT(std::fabs(outs[0] - outs[1]), 0.125) << "crash_at=" << crash_at;
    }
  }
}

TEST(ApproxAgreement, ManyProcessesCrashAllButOne) {
  const int n = 5;
  World w(n);
  ApproxAgreementSim aa(w, n, 0.25);
  std::vector<double> outs(n, NAN);
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      co_await aa.input(ctx, pid);
    });
  }
  sim::RoundRobinScheduler rr0;
  ASSERT_TRUE(w.run(rr0).all_done);
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      outs[static_cast<std::size_t>(pid)] = co_await aa.output(ctx);
    });
  }
  // Victim-keyed triggers: each offset is on top of that pid's own phase-1
  // access count, so every crash lands partway through its phase-2 output.
  sim::RandomScheduler rnd(4242);
  sim::CrashingScheduler sched(rnd, {{w.counts(0).total() + 10, 0},
                                     {w.counts(1).total() + 12, 1},
                                     {w.counts(2).total() + 14, 2},
                                     {w.counts(3).total() + 16, 3}});
  const auto r = w.run(sched, 1'000'000);
  EXPECT_TRUE(r.all_done);
  EXPECT_FALSE(std::isnan(outs[n - 1]));
  EXPECT_GE(outs[n - 1], 0.0);
  EXPECT_LE(outs[n - 1], n - 1.0);
}

// ---------------------------------------------------------------------------
// Theorem 5: step bound (2n+1)·log2(Δ/ε) + O(n) per process.
// ---------------------------------------------------------------------------

TEST(ApproxAgreement, StepBoundHolds) {
  for (int log_ratio = 1; log_ratio <= 10; ++log_ratio) {
    const double delta = 1.0;
    const double eps = delta / std::pow(2.0, log_ratio);
    sim::RoundRobinScheduler rr;
    const std::vector<double> inputs{0.0, delta};
    const auto run = run_agreement(inputs, eps, rr);
    const int n = 2;
    // Generous constant slack on top of the theorem's bound.
    const double bound = (2.0 * n + 1.0) * (log_ratio + 3.0) + 8.0 * n;
    EXPECT_LE(static_cast<double>(run.max_steps_per_proc), bound)
        << "log2(delta/eps)=" << log_ratio;
  }
}

TEST(ApproxAgreement, ConstantRoundsInTheInstalledInputRegime) {
  // Reproduction finding (DESIGN.md §6): once every round-1 entry is
  // installed before outputs begin, all processes see the same leader set
  // and adopt the same midpoint, so Figure 2 converges in O(1) rounds
  // regardless of delta/epsilon. The log2/log3 round complexity of the
  // *task* (Theorem 5 / Lemma 6 / Hoest-Shavit) lives in executions where
  // the adversary also schedules the input writes — see the Adversary tests
  // below, played against the late-input-correct midpoint object.
  for (int log_ratio = 2; log_ratio <= 9; ++log_ratio) {
    const double eps = 1.0 / std::pow(2.0, log_ratio);
    sim::RoundRobinScheduler rr;
    const auto run = run_agreement({0.0, 1.0}, eps, rr);
    std::int64_t max_round = 0;
    for (auto r : run.rounds) max_round = std::max(max_round, r);
    EXPECT_LE(max_round, 4) << "log_ratio=" << log_ratio;
  }
}

// ---------------------------------------------------------------------------
// Lemma 6 adversary and the hierarchy (Theorems 7 & 8)
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Midpoint-convergence object (the correct two-process testbed)
// ---------------------------------------------------------------------------

TEST(MidpointAgreement, ValidUnderRandomSchedulesIncludingLateInputs) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(seed * 31 + 5);
    const double eps = 1.0 / static_cast<double>(1 << (1 + seed % 8));
    const double x0 = rng.uniform(-4.0, 4.0);
    const double x1 = rng.uniform(-4.0, 4.0);
    World w(2);
    MidpointAgreementSim m(w, 2, eps);
    std::vector<double> outs(2);
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      outs[0] = co_await m.decide(ctx, x0);
    });
    w.spawn(1, [&](Context ctx) -> ProcessTask {
      outs[1] = co_await m.decide(ctx, x1);
    });
    // No participation regime needed: random schedules may interleave the
    // inputs with the outputs arbitrarily.
    sim::RandomScheduler sched(seed, seed % 3 ? 0.0 : 0.8);
    ASSERT_TRUE(w.run(sched, 1'000'000).all_done) << "seed=" << seed;
    expect_valid({x0, x1}, outs, eps);
  }
}

TEST(MidpointAgreement, LateInputConvergesToTheEarlyDecision) {
  // The exact schedule that breaks Figure 2 (run P solo, then Q solo) is
  // handled: Q converges to P's frozen entry.
  World w(2);
  MidpointAgreementSim m(w, 2, 0.01);
  double out0 = -1, out1 = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask { out0 = co_await m.decide(ctx, 0.0); });
  w.spawn(1, [&](Context ctx) -> ProcessTask { out1 = co_await m.decide(ctx, 1.0); });
  w.run_solo(0);
  w.run_solo(1);
  EXPECT_DOUBLE_EQ(out0, 0.0);
  EXPECT_LT(std::fabs(out1 - out0), 0.01);
}

// ---------------------------------------------------------------------------
// Lemma 6 adversary and the hierarchy (Theorems 7 & 8)
// ---------------------------------------------------------------------------

TEST(Adversary, ForcesAtLeastLog3Iterations) {
  for (int k = 1; k <= 6; ++k) {
    const double eps = std::pow(3.0, -k);
    const auto res =
        run_lower_bound_adversary(midpoint_agreement_factory(eps, 0.0, 1.0), eps);
    EXPECT_GE(res.iterations, k) << "eps=3^-" << k;
    // Outputs must still satisfy the object's specification.
    expect_valid({0.0, 1.0}, {res.outputs[0], res.outputs[1]}, eps);
  }
}

TEST(Adversary, StepsGrowWithPrecision) {
  std::uint64_t prev = 0;
  for (int k = 1; k <= 5; ++k) {
    const double eps = std::pow(3.0, -k);
    const auto res =
        run_lower_bound_adversary(midpoint_agreement_factory(eps, 0.0, 1.0), eps);
    const auto steps =
        std::max(res.steps_while_gap_wide[0], res.steps_while_gap_wide[1]);
    EXPECT_GE(steps, prev) << "k=" << k;
    prev = steps;
  }
  EXPECT_GE(prev, 5u);  // the k=5 object really needs > O(1) steps
}

TEST(Hierarchy, NoUniformBoundAcrossEpsilons) {
  // Theorem 8's shape: for the unbounded-range object, no fixed k bounds all
  // executions. Equivalent finite observation: steps forced grow without
  // bound as delta/eps grows.
  const auto res_small = run_lower_bound_adversary(
      midpoint_agreement_factory(1.0 / 3.0, 0.0, 1.0), 1.0 / 3.0);
  const auto res_large = run_lower_bound_adversary(
      midpoint_agreement_factory(1.0 / 243.0, 0.0, 1.0), 1.0 / 243.0);
  const auto small_steps = std::max(res_small.steps_while_gap_wide[0],
                                    res_small.steps_while_gap_wide[1]);
  const auto large_steps = std::max(res_large.steps_while_gap_wide[0],
                                    res_large.steps_while_gap_wide[1]);
  EXPECT_GT(large_steps, small_steps + 3);
}

TEST(Adversary, ScheduleReplaysDeterministically) {
  const auto factory = midpoint_agreement_factory(1.0 / 27.0, 0.0, 1.0);
  const auto a = run_lower_bound_adversary(factory, 1.0 / 27.0);
  const auto b = run_lower_bound_adversary(factory, 1.0 / 27.0);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.outputs[0], b.outputs[0]);
  EXPECT_EQ(a.outputs[1], b.outputs[1]);
}

TEST(Adversary, Figure2GameSurfacesTheLateInputBoundary) {
  // Against literal Figure 2 the game collapses: the adversary exploits the
  // round-1 gap, one process decides with only its own input visible, and
  // the run ends after O(1) iterations — the reproduction finding of
  // DESIGN.md §6, pinned here as a regression.
  const double eps = std::pow(3.0, -5);
  const auto res =
      run_lower_bound_adversary(figure2_agreement_factory(eps, 0.0, 1.0), eps);
  EXPECT_LE(res.iterations, 3);
}

}  // namespace
}  // namespace apram
