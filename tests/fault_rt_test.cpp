// Real-thread fault injection tests: the RtInjector's access accounting,
// probabilistic perturbation, and the hard-stall machinery — ending with
// stalled (pending) operations fed through the linearizability checker.
//
// The sim side proves properties over ALL schedules; these tests prove the
// rt implementations survive schedules the OS actually produces once an
// injector shakes them. They run on any core count (including 1).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "fault/rt_inject.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "objects/specs.hpp"
#include "rt/fast_counter_rt.hpp"
#include "rt/register.hpp"
#include "rt/thread_harness.hpp"
#include "util/rng.hpp"

namespace apram::rt {
namespace {

using C = CounterSpec;

RecordedOp<C> op(int pid, C::Invocation inv, std::int64_t resp,
                 std::uint64_t t0, std::uint64_t t1) {
  return RecordedOp<C>{pid, inv, resp, t0, t1};
}

// ---------------------------------------------------------------------------
// Access accounting
// ---------------------------------------------------------------------------

TEST(RtInjector, CountsEveryRegisterAccessPerPid) {
  fault::RtInjector inj(fault::RtInjectOptions{});
  SWMRRegister<int> reg(0);
  reg.attach_injector(&inj);
  parallel_run(3, [&](int pid) {
    if (pid == 0) {
      for (int i = 0; i < 10; ++i) reg.write(i);  // 10 accesses
    } else {
      for (int i = 0; i < 5; ++i) reg.read();  // 5 accesses
    }
  });
  EXPECT_EQ(inj.accesses(0), 10u);
  EXPECT_EQ(inj.accesses(1), 5u);
  EXPECT_EQ(inj.accesses(2), 5u);
}

TEST(RtInjector, ThreadsWithoutAPidPassThroughUncounted) {
  fault::RtInjector inj(fault::RtInjectOptions{});
  SWMRRegister<int> reg(7);
  reg.attach_injector(&inj);
  // The main thread has no harness pid (obs::thread_pid() < 0): its accesses
  // are neither counted nor perturbed.
  EXPECT_EQ(reg.read(), 7);
  for (int pid = 0; pid < 4; ++pid) EXPECT_EQ(inj.accesses(pid), 0u);
}

TEST(RtInjector, DetachedRegisterInjectsNothing) {
  fault::RtInjector inj(fault::RtInjectOptions{});
  SWMRRegister<int> reg(0);
  parallel_run(1, [&](int) {
    for (int i = 0; i < 8; ++i) reg.write(i);
  });
  EXPECT_EQ(inj.accesses(0), 0u);
}

// ---------------------------------------------------------------------------
// Probabilistic perturbation
// ---------------------------------------------------------------------------

TEST(RtInjector, CertainYieldProbabilityYieldsOnEveryAccess) {
  fault::RtInjectOptions opts;
  opts.yield_prob = 1.0;
  fault::RtInjector inj(opts);
  SWMRRegister<int> reg(0);
  reg.attach_injector(&inj);
  parallel_run(2, [&](int pid) {
    for (int i = 0; i < 50; ++i) {
      if (pid == 0) reg.write(i); else reg.read();
    }
  });
  EXPECT_EQ(inj.yields_injected(), 100u);
  EXPECT_EQ(inj.sleeps_injected(), 0u);
}

TEST(RtInjector, SleepsFireAndTakePriorityOverYields) {
  fault::RtInjectOptions opts;
  opts.yield_prob = 1.0;
  opts.sleep_prob = 1.0;  // sleep wins when both would fire
  opts.sleep_max_us = 1;
  fault::RtInjector inj(opts);
  SWMRRegister<int> reg(0);
  reg.attach_injector(&inj);
  parallel_run(1, [&](int) {
    for (int i = 0; i < 10; ++i) reg.write(i);
  });
  EXPECT_EQ(inj.sleeps_injected(), 10u);
  EXPECT_EQ(inj.yields_injected(), 0u);
}

// ---------------------------------------------------------------------------
// Hard stall: the rt analogue of the sim's victim-keyed crash
// ---------------------------------------------------------------------------

TEST(RunWithStall, VictimParksAfterExactlyItsQuotaThenResumes) {
  fault::RtInjector inj(fault::RtInjectOptions{});
  SWMRRegister<int> reg(0);
  reg.attach_injector(&inj);
  int mid_stall_value = -1;
  run_with_stall(
      /*num_threads=*/1,
      [&](int) {
        for (int i = 1; i <= 100; ++i) reg.write(i);
      },
      inj, /*victim=*/0, /*stall_after=*/10,
      [&] {
        // The victim parked at the TOP of its 11th access: exactly ten
        // writes landed, mirroring "crash before the (S+1)-th access".
        mid_stall_value = reg.read();
      });
  EXPECT_EQ(mid_stall_value, 10);
  EXPECT_EQ(reg.read(), 100);  // released victim finished its program
  EXPECT_EQ(inj.accesses(0), 100u);
}

TEST(RunWithStall, HoldPointParksTheReaderWithItsVersionPinned) {
  // The kHold stall point parks the victim BETWEEN version acquire and
  // dereference — the exact window a reclamation bug would need to free a
  // held version. The victim's read completes only after release_stall(),
  // yet must return the value that was current when it parked, fully
  // intact, no matter how many writes landed in between.
  fault::RtInjector inj(fault::RtInjectOptions{});
  SWMRRegister<std::vector<int>> reg(std::vector<int>(32, 7));
  reg.attach_injector(&inj);
  std::vector<int> victim_saw;
  run_with_stall(
      /*num_threads=*/1,
      [&](int) { victim_saw = reg.read(); },
      inj, /*victim=*/0, /*stall_after=*/0,
      [&] {
        for (int i = 1; i <= 50; ++i) reg.write(std::vector<int>(32, i));
      },
      /*tracer=*/nullptr, fault::StallPoint::kHold);
  // Bounded build: the victim parked pre-dereference holding version 7 and
  // read it after the churn. Unbounded build: on_hold never fires, the
  // victim finishes first (completion wins) and sees version 7 trivially.
  ASSERT_EQ(victim_saw.size(), 32u);
  for (int v : victim_saw) EXPECT_EQ(v, 7);
  EXPECT_EQ(reg.read()[0], 50);
}

TEST(RunWithStall, HoldStallLeavesAccessAccountingExact) {
  // on_hold must not count as an access: a victim parked at the hold point
  // of its 3rd read still reports exactly its access count.
  fault::RtInjector inj(fault::RtInjectOptions{});
  SWMRRegister<int> reg(0);
  reg.attach_injector(&inj);
  run_with_stall(
      /*num_threads=*/1,
      [&](int) {
        for (int i = 0; i < 10; ++i) (void)reg.read();
      },
      inj, /*victim=*/0, /*stall_after=*/2, [] {},
      /*tracer=*/nullptr, fault::StallPoint::kHold);
  EXPECT_EQ(inj.accesses(0), 10u);
}

TEST(RunWithStall, CompletionWinsWhenVictimFinishesUnderThreshold) {
  fault::RtInjector inj(fault::RtInjectOptions{});
  SWMRRegister<int> reg(0);
  reg.attach_injector(&inj);
  bool while_stalled_ran = false;
  run_with_stall(
      /*num_threads=*/1,
      [&](int) {
        for (int i = 1; i <= 3; ++i) reg.write(i);
      },
      inj, /*victim=*/0, /*stall_after=*/1000,
      [&] { while_stalled_ran = true; });
  // The victim finished before reaching the stall point; the orchestration
  // still runs the observer and completes (no deadlock, no spurious park).
  EXPECT_TRUE(while_stalled_ran);
  EXPECT_EQ(reg.read(), 3);
}

// ---------------------------------------------------------------------------
// Linearizability under injection
// ---------------------------------------------------------------------------

// A stalled increment is exactly a pending operation in the checker's
// sense: invoked, never (yet) responded. The mid-stall probe's read must be
// consistent with the pending op either taking effect or not.
TEST(RunWithStall, StalledIncrementIsAPendingOpToTheChecker) {
  // Calibrate: how many register accesses does one inc cost under the
  // current scan implementation? (We pin the stall to the boundary between
  // the victim's first and second inc, wherever that lands.)
  std::uint64_t per_inc = 0;
  {
    fault::RtInjector inj(fault::RtInjectOptions{});
    FastCounterRT calib(2);
    calib.attach_injector(&inj);
    parallel_run(1, [&](int pid) { calib.inc(pid); });
    per_inc = inj.accesses(0);
    ASSERT_GT(per_inc, 0u);
  }

  fault::RtInjector inj(fault::RtInjectOptions{});
  FastCounterRT counter(2);  // pid 0 = victim; pid 1 = the probe's slot
  counter.attach_injector(&inj);
  std::int64_t probed = -1;
  run_with_stall(
      /*num_threads=*/1,
      [&](int pid) {
        counter.inc(pid);
        counter.inc(pid);  // parks at this inc's first register access
      },
      inj, /*victim=*/0, /*stall_after=*/per_inc,
      [&] {
        // Main thread (no pid: uninjected) probes through an unowned slot
        // while the victim is provably parked mid-operation.
        probed = counter.read(1);
      });

  // The park point precedes any publication of inc #2, so the probe saw
  // exactly the first increment.
  EXPECT_EQ(probed, 1);
  // The checker agrees the mid-stall history is linearizable with inc #2
  // pending: completed inc [0,1], pending inc invoked at 2, probe read at
  // [3,4] observing `probed`.
  std::vector<RecordedOp<C>> h{
      op(0, C::inc(1), 0, 0, 1),
      op(1, C::read(), probed, 3, 4),
  };
  RecordedOp<C> pending;
  pending.pid = 0;
  pending.inv = C::inc(1);
  pending.invoke_time = 2;  // respond_time stays kPending
  h.push_back(pending);
  EXPECT_TRUE(is_linearizable<C>(h));
  // After release + join both increments are visible.
  EXPECT_EQ(counter.read(1), 2);
}

// End-to-end: concurrent counter histories recorded under yield/sleep
// injection check out linearizable. Small here (tier 1); the thousand-run
// version lives in the stress campaign.
TEST(FaultRt, InjectedCounterHistoriesAreLinearizable) {
  const int n = 3;
  const int ops_per_thread = 6;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    fault::RtInjectOptions opts;
    opts.yield_prob = 0.5;
    opts.sleep_prob = 0.1;
    opts.sleep_max_us = 5;
    opts.seed = seed;
    fault::RtInjector inj(opts);
    FastCounterRT counter(n);
    counter.attach_injector(&inj);

    std::atomic<std::uint64_t> clock{0};
    std::vector<std::vector<RecordedOp<C>>> per_thread(
        static_cast<std::size_t>(n));
    parallel_run(n, [&](int pid) {
      auto& ops = per_thread[static_cast<std::size_t>(pid)];
      Rng rng(seed * 977 + static_cast<std::uint64_t>(pid));
      for (int i = 0; i < ops_per_thread; ++i) {
        RecordedOp<C> r;
        r.pid = pid;
        if (rng.chance(0.5)) {
          r.inv = C::inc(1);
          r.invoke_time = clock.fetch_add(1);
          counter.inc(pid);
          r.resp = 0;
        } else {
          r.inv = C::read();
          r.invoke_time = clock.fetch_add(1);
          r.resp = counter.read(pid);
        }
        r.respond_time = clock.fetch_add(1);
        ops.push_back(r);
      }
    });

    std::vector<RecordedOp<C>> history;
    for (const auto& ops : per_thread) {
      history.insert(history.end(), ops.begin(), ops.end());
    }
    EXPECT_TRUE(is_linearizable<C>(std::move(history))) << "seed=" << seed;
    EXPECT_GT(inj.yields_injected() + inj.sleeps_injected(), 0u);
  }
}

}  // namespace
}  // namespace apram::rt
