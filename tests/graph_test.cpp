// Tests for the digraph substrate and the Figure 3 lingraph construction:
// Lemmas 16, 17, 18, 20, and 23 property-tested over randomized histories.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "algebra/spec.hpp"
#include "graph/digraph.hpp"
#include "graph/lingraph.hpp"
#include "objects/specs.hpp"
#include "util/rng.hpp"

namespace apram {
namespace {

// ---------------------------------------------------------------------------
// Digraph basics
// ---------------------------------------------------------------------------

TEST(Digraph, EdgesAndPaths) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_path(0, 2));
  EXPECT_FALSE(g.has_path(2, 0));
  EXPECT_FALSE(g.has_path(0, 3));
}

TEST(Digraph, CycleDetection) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.edge_would_cycle(2, 0));
  EXPECT_TRUE(g.edge_would_cycle(1, 1));
  EXPECT_FALSE(g.edge_would_cycle(0, 2));
  EXPECT_TRUE(g.is_acyclic());
}

TEST(Digraph, DuplicateEdgeIsIdempotent) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.successors(0).size(), 1u);
}

TEST(Digraph, TopoOrderDeterministicMinIndexFirst) {
  Digraph g(4);
  g.add_edge(3, 1);
  g.add_edge(3, 0);
  // 2 is isolated; ready set starts {2, 3} -> 2 first, then 3, then 0, 1.
  EXPECT_EQ(g.topo_order(), (std::vector<int>{2, 3, 0, 1}));
}

TEST(Digraph, TopoOrderRespectsEdgesOnRandomDags) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.below(12));
    Digraph g(n);
    for (int e = 0; e < n * 2; ++e) {
      // Only forward edges (u < v): guaranteed acyclic.
      const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)));
      const int v = u + 1 +
                    static_cast<int>(rng.below(static_cast<std::uint64_t>(n - u - 1)));
      if (!g.has_edge(u, v)) g.add_edge(u, v);
    }
    const auto order = g.topo_order();
    std::vector<int> pos(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
    for (int u = 0; u < n; ++u) {
      for (int v : g.successors(u)) {
        EXPECT_LT(pos[static_cast<std::size_t>(u)], pos[static_cast<std::size_t>(v)]);
      }
    }
    EXPECT_TRUE(g.is_acyclic());
  }
}

TEST(Digraph, PredecessorsAndInDegree) {
  Digraph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  EXPECT_EQ(g.predecessors(2), (std::vector<int>{0, 1}));
  EXPECT_EQ(g.in_degree(2), 2);
  EXPECT_EQ(g.in_degree(0), 0);
}

// ---------------------------------------------------------------------------
// Randomized concurrent histories for the lingraph lemmas
// ---------------------------------------------------------------------------
//
// Generate a random set of counter operations with random (invocation,
// response-interval) windows; precedence edge p -> q iff p's window ends
// before q's begins. This produces interval orders — exactly the precedence
// structure concurrent histories have.

struct FakeOp {
  int pid;
  CounterSpec::Invocation inv;
  int start, end;  // half-open interval [start, end)
};

struct FakeHistory {
  std::vector<FakeOp> ops;
  Digraph precedence{0};

  bool concurrent(int a, int b) const {
    return !precedence.has_path(a, b) && !precedence.has_path(b, a);
  }
};

FakeHistory random_history(Rng& rng, int num_procs, int num_ops) {
  FakeHistory h;
  std::vector<int> clock(static_cast<std::size_t>(num_procs), 0);
  for (int i = 0; i < num_ops; ++i) {
    FakeOp op;
    op.pid = static_cast<int>(rng.below(static_cast<std::uint64_t>(num_procs)));
    switch (rng.below(4)) {
      case 0: op.inv = CounterSpec::inc(1); break;
      case 1: op.inv = CounterSpec::dec(1); break;
      case 2: op.inv = CounterSpec::reset(static_cast<std::int64_t>(i)); break;
      default: op.inv = CounterSpec::read(); break;
    }
    // Per-process sequential windows with random global overlap.
    op.start = clock[static_cast<std::size_t>(op.pid)] +
               static_cast<int>(rng.below(3));
    op.end = op.start + 1 + static_cast<int>(rng.below(5));
    clock[static_cast<std::size_t>(op.pid)] = op.end;
    h.ops.push_back(op);
  }
  h.precedence = Digraph(num_ops);
  for (int a = 0; a < num_ops; ++a) {
    for (int b = 0; b < num_ops; ++b) {
      if (a != b && h.ops[static_cast<std::size_t>(a)].end <=
                        h.ops[static_cast<std::size_t>(b)].start) {
        if (!h.precedence.has_edge(a, b)) h.precedence.add_edge(a, b);
      }
    }
  }
  return h;
}

DominatesFn dominance_of(const FakeHistory& h) {
  return [&h](int a, int b) {
    const auto& oa = h.ops[static_cast<std::size_t>(a)];
    const auto& ob = h.ops[static_cast<std::size_t>(b)];
    return dominates<CounterSpec>(oa.inv, oa.pid, ob.inv, ob.pid);
  };
}

TEST(LinGraph, Lemma18Acyclic) {
  Rng rng(501);
  for (int trial = 0; trial < 60; ++trial) {
    const auto h = random_history(rng, 3, 3 + static_cast<int>(rng.below(12)));
    const Digraph lg = lingraph(h.precedence, dominance_of(h));
    EXPECT_TRUE(lg.is_acyclic());
  }
}

TEST(LinGraph, PrecedenceEdgesPreserved) {
  Rng rng(502);
  for (int trial = 0; trial < 40; ++trial) {
    const auto h = random_history(rng, 3, 10);
    const Digraph lg = lingraph(h.precedence, dominance_of(h));
    for (int u = 0; u < h.precedence.num_nodes(); ++u) {
      for (int v : h.precedence.successors(u)) {
        EXPECT_TRUE(lg.has_edge(u, v));
      }
    }
  }
}

TEST(LinGraph, Lemma16ConcurrentDominatingPairsConnected) {
  Rng rng(503);
  for (int trial = 0; trial < 60; ++trial) {
    const auto h = random_history(rng, 3, 10);
    const auto dom = dominance_of(h);
    const Digraph lg = lingraph(h.precedence, dom);
    const int k = h.precedence.num_nodes();
    for (int a = 0; a < k; ++a) {
      for (int b = 0; b < k; ++b) {
        if (a != b && h.concurrent(a, b) && dom(a, b)) {
          EXPECT_TRUE(lg.has_path(a, b) || lg.has_path(b, a))
              << "Lemma 16 violated at trial " << trial;
        }
      }
    }
  }
}

TEST(LinGraph, Lemma17UnrelatedPairsCommute) {
  Rng rng(504);
  for (int trial = 0; trial < 60; ++trial) {
    const auto h = random_history(rng, 3, 10);
    const Digraph lg = lingraph(h.precedence, dominance_of(h));
    const int k = lg.num_nodes();
    for (int a = 0; a < k; ++a) {
      for (int b = a + 1; b < k; ++b) {
        if (!lg.has_path(a, b) && !lg.has_path(b, a)) {
          EXPECT_TRUE(CounterSpec::commutes(
              h.ops[static_cast<std::size_t>(a)].inv,
              h.ops[static_cast<std::size_t>(b)].inv))
              << "Lemma 17 violated at trial " << trial;
        }
      }
    }
  }
}

// Lemma 20 (via determinism of responses): all linearizations of a graph are
// equivalent. We can't enumerate all topological sorts cheaply, so we check
// the strong observable consequence used by the construction: the final
// state and the response of every *read-class* operation are identical
// across several randomized valid linearizations.
std::vector<int> random_topo(const Digraph& g, Rng& rng) {
  const int n = g.num_nodes();
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (int u = 0; u < n; ++u) {
    for (int v : g.successors(u)) ++indeg[static_cast<std::size_t>(v)];
  }
  std::vector<int> ready, order;
  for (int v = 0; v < n; ++v) {
    if (indeg[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    const auto pick = rng.below(ready.size());
    const int u = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
    order.push_back(u);
    for (int v : g.successors(u)) {
      if (--indeg[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
  }
  return order;
}

TEST(LinGraph, Lemma20AllLinearizationsAgreeOnOutcome) {
  Rng rng(505);
  for (int trial = 0; trial < 40; ++trial) {
    const auto h = random_history(rng, 3, 9);
    const Digraph lg = lingraph(h.precedence, dominance_of(h));

    std::int64_t ref_state = 0;
    std::map<int, std::int64_t> ref_reads;
    for (int variant = 0; variant < 6; ++variant) {
      const auto order = random_topo(lg, rng);
      std::vector<CounterSpec::Invocation> invs;
      for (int i : order) invs.push_back(h.ops[static_cast<std::size_t>(i)].inv);
      const auto run = run_sequential<CounterSpec>(invs);

      std::map<int, std::int64_t> reads;
      for (std::size_t k = 0; k < order.size(); ++k) {
        if (h.ops[static_cast<std::size_t>(order[k])].inv.kind ==
            CounterSpec::Kind::kRead) {
          reads[order[k]] = run.responses[k];
        }
      }
      if (variant == 0) {
        ref_state = run.final_state;
        ref_reads = reads;
      } else {
        EXPECT_EQ(run.final_state, ref_state) << "trial " << trial;
        EXPECT_EQ(reads, ref_reads) << "trial " << trial;
      }
    }
  }
}

TEST(LinGraph, Lemma23RemovingSinkYieldsSubgraph) {
  Rng rng(506);
  for (int trial = 0; trial < 40; ++trial) {
    const auto h = random_history(rng, 3, 8);
    const auto dom = dominance_of(h);
    const Digraph lg = lingraph(h.precedence, dom);
    const int k = lg.num_nodes();

    // Find a node with no outgoing edges in L(G) (a sink).
    int sink = -1;
    for (int v = 0; v < k && sink < 0; ++v) {
      if (lg.successors(v).empty()) sink = v;
    }
    ASSERT_GE(sink, 0);  // acyclic graphs always have a sink

    // G' = G - sink, with node ids compacted.
    std::vector<int> remap(static_cast<std::size_t>(k), -1);
    int next = 0;
    for (int v = 0; v < k; ++v) {
      if (v != sink) remap[static_cast<std::size_t>(v)] = next++;
    }
    Digraph prec2(k - 1);
    for (int u = 0; u < k; ++u) {
      if (u == sink) continue;
      for (int v : h.precedence.successors(u)) {
        if (v == sink) continue;
        if (!prec2.has_edge(remap[static_cast<std::size_t>(u)],
                            remap[static_cast<std::size_t>(v)])) {
          prec2.add_edge(remap[static_cast<std::size_t>(u)],
                         remap[static_cast<std::size_t>(v)]);
        }
      }
    }
    // The sink of L(G) may still have precedence successors in G; Lemma 23
    // applies to operations with no outgoing edges in G. Only proceed when
    // the chosen node is also a G-sink.
    bool g_sink = h.precedence.successors(sink).empty();
    if (!g_sink) continue;

    const Digraph lg2 = lingraph(
        prec2, [&](int a2, int b2) {
          // Translate compacted ids back to originals.
          int a = -1, b = -1;
          for (int v = 0; v < k; ++v) {
            if (remap[static_cast<std::size_t>(v)] == a2) a = v;
            if (remap[static_cast<std::size_t>(v)] == b2) b = v;
          }
          return dom(a, b);
        });

    // Every edge of L(G') exists in L(G) (Lemma 23).
    for (int u2 = 0; u2 < lg2.num_nodes(); ++u2) {
      for (int v2 : lg2.successors(u2)) {
        int u = -1, v = -1;
        for (int w = 0; w < k; ++w) {
          if (remap[static_cast<std::size_t>(w)] == u2) u = w;
          if (remap[static_cast<std::size_t>(w)] == v2) v = w;
        }
        EXPECT_TRUE(lg.has_edge(u, v)) << "Lemma 23 violated, trial " << trial;
      }
    }
  }
}

TEST(Linearize, DominatedOperationsComeEarlierWhenConcurrent) {
  // Two concurrent ops: a read (dominated) and an inc (dominator). The
  // linearization must place the read first, so the read cannot observe the
  // concurrent increment.
  FakeHistory h;
  h.ops = {{0, CounterSpec::read(), 0, 10}, {1, CounterSpec::inc(1), 0, 10}};
  h.precedence = Digraph(2);
  const auto order = linearize(h.precedence, dominance_of(h));
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Linearize, PrecedenceBeatsEverything) {
  // read precedes inc in real time: the dominance edge (read earlier) agrees
  // with precedence; but inc preceding read forces the read later.
  FakeHistory h;
  h.ops = {{0, CounterSpec::inc(1), 0, 1}, {1, CounterSpec::read(), 2, 3}};
  h.precedence = Digraph(2);
  h.precedence.add_edge(0, 1);
  const auto order = linearize(h.precedence, dominance_of(h));
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace apram
