// Tests for the linearizability checker itself (known-good and known-bad
// histories), then end-to-end: recorded histories of the universal counter
// and of the FastCounter under random schedules must check linearizable.
#include <gtest/gtest.h>

#include <vector>

#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "objects/counter.hpp"
#include "objects/fast_counter.hpp"
#include "objects/specs.hpp"
#include "sim/scheduler.hpp"

namespace apram {
namespace {

using sim::Context;
using sim::ProcessTask;
using sim::World;
using C = CounterSpec;

RecordedOp<C> op(int pid, C::Invocation inv, std::int64_t resp,
                 std::uint64_t t0, std::uint64_t t1) {
  return RecordedOp<C>{pid, inv, resp, t0, t1};
}

// ---------------------------------------------------------------------------
// Checker unit tests on hand-built histories
// ---------------------------------------------------------------------------

TEST(Checker, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(is_linearizable<C>({}));
}

TEST(Checker, SequentialHistoryLegal) {
  EXPECT_TRUE(is_linearizable<C>({
      op(0, C::inc(5), 0, 0, 1),
      op(0, C::read(), 5, 2, 3),
  }));
}

TEST(Checker, SequentialHistoryWithWrongResponseIllegal) {
  EXPECT_FALSE(is_linearizable<C>({
      op(0, C::inc(5), 0, 0, 1),
      op(0, C::read(), 4, 2, 3),  // should read 5
  }));
}

TEST(Checker, ConcurrentReadsMayLinearizeEitherSide) {
  // inc(1) overlaps a read; read may return 0 (before) or 1 (after).
  for (std::int64_t r : {0, 1}) {
    EXPECT_TRUE(is_linearizable<C>({
        op(0, C::inc(1), 0, 0, 10),
        op(1, C::read(), r, 5, 6),
    })) << "read=" << r;
  }
  EXPECT_FALSE(is_linearizable<C>({
      op(0, C::inc(1), 0, 0, 10),
      op(1, C::read(), 2, 5, 6),
  }));
}

TEST(Checker, RealTimeOrderIsRespected) {
  // inc completes before the read starts, so the read must see it.
  EXPECT_FALSE(is_linearizable<C>({
      op(0, C::inc(1), 0, 0, 1),
      op(1, C::read(), 0, 2, 3),  // stale read: illegal
  }));
}

TEST(Checker, NewOldInversionIsIllegal) {
  // Two sequential reads around a concurrent inc: the second read cannot
  // observe less than the first.
  EXPECT_FALSE(is_linearizable<C>({
      op(0, C::inc(1), 0, 0, 100),
      op(1, C::read(), 1, 10, 11),
      op(1, C::read(), 0, 12, 13),
  }));
  EXPECT_TRUE(is_linearizable<C>({
      op(0, C::inc(1), 0, 0, 100),
      op(1, C::read(), 0, 10, 11),
      op(1, C::read(), 1, 12, 13),
  }));
}

TEST(Checker, PendingOpMayTakeEffectOrNot) {
  // A pending inc (crashed before responding) may or may not be observed.
  for (std::int64_t r : {0, 1}) {
    std::vector<RecordedOp<C>> h{
        op(1, C::read(), r, 10, 11),
    };
    RecordedOp<C> pending;
    pending.pid = 0;
    pending.inv = C::inc(1);
    pending.invoke_time = 0;  // respond_time stays kPending
    h.push_back(pending);
    EXPECT_TRUE(is_linearizable<C>(h)) << "read=" << r;
  }
  // But it cannot be observed twice / with the wrong amount.
  std::vector<RecordedOp<C>> h{
      op(1, C::read(), 2, 10, 11),
  };
  RecordedOp<C> pending;
  pending.pid = 0;
  pending.inv = C::inc(1);
  pending.invoke_time = 0;
  h.push_back(pending);
  EXPECT_FALSE(is_linearizable<C>(h));
}

TEST(Checker, ResetSemantics) {
  EXPECT_TRUE(is_linearizable<C>({
      op(0, C::inc(7), 0, 0, 1),
      op(1, C::reset(0), 0, 2, 3),
      op(0, C::read(), 0, 4, 5),
  }));
  EXPECT_FALSE(is_linearizable<C>({
      op(0, C::inc(7), 0, 0, 1),
      op(1, C::reset(0), 0, 2, 3),
      op(0, C::read(), 7, 4, 5),  // reset already completed: 7 impossible
  }));
}

TEST(Checker, WitnessIsAValidLinearization) {
  std::vector<RecordedOp<C>> h{
      op(0, C::inc(1), 0, 0, 10),
      op(1, C::read(), 1, 5, 6),
      op(0, C::read(), 1, 11, 12),
  };
  LinearizabilityChecker<C> checker(h);
  ASSERT_TRUE(checker.check());
  const auto& w = checker.witness();
  ASSERT_EQ(w.size(), 3u);
  // Replay the witness: all responses must match.
  auto state = C::initial();
  for (std::size_t i : w) {
    auto [next, resp] = C::apply(state, h[i].inv);
    EXPECT_EQ(resp, h[i].resp);
    state = next;
  }
}

TEST(Checker, CheckIsIdempotent) {
  // Regression: check() must be re-runnable — the memo and witness are
  // cleared on entry, so a second call returns the same verdict and the
  // same witness instead of reading stale state.
  std::vector<RecordedOp<C>> h{
      op(0, C::inc(1), 0, 0, 10),
      op(1, C::read(), 1, 5, 6),
  };
  LinearizabilityChecker<C> checker(h);
  ASSERT_TRUE(checker.check());
  const std::vector<std::size_t> first = checker.witness();
  ASSERT_TRUE(checker.check());
  EXPECT_EQ(checker.witness(), first);
}

TEST(Checker, WitnessEmptyUnlessLastCheckSucceeded) {
  std::vector<RecordedOp<C>> bad{
      op(0, C::inc(1), 0, 0, 1),
      op(0, C::read(), 7, 2, 3),  // impossible response
  };
  LinearizabilityChecker<C> checker(bad);
  EXPECT_FALSE(checker.check());
  EXPECT_TRUE(checker.witness().empty());
  // And again: a repeated failing check stays failing with an empty witness.
  EXPECT_FALSE(checker.check());
  EXPECT_TRUE(checker.witness().empty());
}

// ---------------------------------------------------------------------------
// End-to-end: recorded histories from the simulator check out.
// ---------------------------------------------------------------------------

template <class CounterT>
std::vector<RecordedOp<C>> record_counter_run(std::uint64_t seed, int n,
                                              int ops_per_proc,
                                              bool inject_crashes) {
  World w(n);
  CounterT c(w, n);
  HistoryRecorder<C> rec;
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      Rng rng(seed * 131 + static_cast<std::uint64_t>(pid));
      for (int i = 0; i < ops_per_proc; ++i) {
        if (rng.chance(0.5)) {
          const auto inv = C::inc(1);
          const auto tok = rec.begin(pid, inv, ctx.world().global_step());
          co_await c.inc(ctx, 1);
          rec.end(tok, 0, ctx.world().global_step());
        } else {
          const auto inv = C::read();
          const auto tok = rec.begin(pid, inv, ctx.world().global_step());
          const std::int64_t r = co_await c.read(ctx);
          rec.end(tok, r, ctx.world().global_step());
        }
      }
    });
  }
  sim::RandomScheduler rnd(seed);
  if (inject_crashes) {
    sim::CrashingScheduler sched(rnd, {{30 + seed % 7, 0}});
    w.run(sched);
  } else {
    w.run(rnd);
  }
  return rec.ops();
}

TEST(EndToEnd, UniversalCounterHistoriesAreLinearizable) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    auto h = record_counter_run<CounterSim>(seed, 3, 3, false);
    EXPECT_TRUE(is_linearizable<C>(std::move(h))) << "seed=" << seed;
  }
}

TEST(EndToEnd, UniversalCounterHistoriesWithCrashesAreLinearizable) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    auto h = record_counter_run<CounterSim>(seed, 3, 3, true);
    EXPECT_TRUE(is_linearizable<C>(std::move(h))) << "seed=" << seed;
  }
}

TEST(EndToEnd, FastCounterHistoriesAreLinearizable) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    auto h = record_counter_run<FastCounterSim>(seed, 3, 3, false);
    EXPECT_TRUE(is_linearizable<C>(std::move(h))) << "seed=" << seed;
  }
}

TEST(EndToEnd, CheckerCatchesABrokenCounter) {
  // Sanity for the whole methodology: a racy (non-atomic) counter built on
  // raw registers must produce non-linearizable histories under contention.
  // We build the classic lost-update schedule deterministically.
  World w(2);
  auto& reg = w.make_register<std::int64_t>("naive", 0);
  HistoryRecorder<C> rec;
  for (int pid = 0; pid < 2; ++pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      const auto tok = rec.begin(pid, C::inc(1), ctx.world().global_step());
      const std::int64_t v = co_await ctx.read(reg);
      co_await ctx.write(reg, v + 1);
      rec.end(tok, 0, ctx.world().global_step());
    });
  }
  sim::FixedScheduler sched({0, 1, 0, 1});
  w.run(sched);
  // Append a read of the final value: 1, though two incs completed.
  auto h = rec.ops();
  h.push_back(op(0, C::read(), reg.peek(), 1000, 1001));
  EXPECT_EQ(reg.peek(), 1);
  EXPECT_FALSE(is_linearizable<C>(std::move(h)));
}

}  // namespace
}  // namespace apram
