// Lattice-law property tests: every Semilattice instance must satisfy
// associativity, commutativity, idempotence, bottom-identity, and the
// leq/join consistency law. Randomized value generation per instance.
#include <gtest/gtest.h>

#include <cstdint>

#include "lattice/lattice.hpp"
#include "util/rng.hpp"

namespace apram {
namespace {

// Per-lattice random value generators.
template <class L>
struct Gen;

template <>
struct Gen<MaxLattice<std::int64_t>> {
  static std::int64_t value(Rng& rng) { return rng.range(-1000, 1000); }
};

template <>
struct Gen<SetUnionLattice<int>> {
  static std::set<int> value(Rng& rng) {
    std::set<int> s;
    const auto k = rng.below(6);
    for (std::uint64_t i = 0; i < k; ++i) s.insert(static_cast<int>(rng.below(10)));
    return s;
  }
};

template <>
struct Gen<TaggedVectorLattice<int>> {
  // Tags within one cell are written by a single process, so in any real
  // execution equal tags imply equal values. The generator maintains that
  // invariant by deriving each value from (cell index, tag).
  static std::vector<TaggedCell<int>> value(Rng& rng) {
    std::vector<TaggedCell<int>> v(rng.below(5));
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i].tag = rng.below(4);  // include tag 0 = bottom cells
      v[i].value = static_cast<int>(i * 1000 + v[i].tag);
    }
    return v;
  }
};

using Pair = PairLattice<MaxLattice<std::int64_t>, SetUnionLattice<int>>;
template <>
struct Gen<Pair> {
  static Pair::Value value(Rng& rng) {
    return {Gen<MaxLattice<std::int64_t>>::value(rng),
            Gen<SetUnionLattice<int>>::value(rng)};
  }
};

template <class L>
class LatticeLaws : public ::testing::Test {};

using LatticeTypes =
    ::testing::Types<MaxLattice<std::int64_t>, SetUnionLattice<int>,
                     TaggedVectorLattice<int>, Pair>;
TYPED_TEST_SUITE(LatticeLaws, LatticeTypes);

constexpr int kTrials = 500;

TYPED_TEST(LatticeLaws, JoinIsCommutative) {
  Rng rng(101);
  for (int t = 0; t < kTrials; ++t) {
    const auto a = Gen<TypeParam>::value(rng);
    const auto b = Gen<TypeParam>::value(rng);
    EXPECT_TRUE(TypeParam::eq(TypeParam::join(a, b), TypeParam::join(b, a)));
  }
}

TYPED_TEST(LatticeLaws, JoinIsAssociative) {
  Rng rng(102);
  for (int t = 0; t < kTrials; ++t) {
    const auto a = Gen<TypeParam>::value(rng);
    const auto b = Gen<TypeParam>::value(rng);
    const auto c = Gen<TypeParam>::value(rng);
    EXPECT_TRUE(TypeParam::eq(TypeParam::join(TypeParam::join(a, b), c),
                              TypeParam::join(a, TypeParam::join(b, c))));
  }
}

TYPED_TEST(LatticeLaws, JoinIsIdempotent) {
  Rng rng(103);
  for (int t = 0; t < kTrials; ++t) {
    const auto a = Gen<TypeParam>::value(rng);
    EXPECT_TRUE(TypeParam::eq(TypeParam::join(a, a), a));
  }
}

TYPED_TEST(LatticeLaws, BottomIsIdentity) {
  Rng rng(104);
  for (int t = 0; t < kTrials; ++t) {
    const auto a = Gen<TypeParam>::value(rng);
    EXPECT_TRUE(TypeParam::eq(TypeParam::join(TypeParam::bottom(), a), a));
    EXPECT_TRUE(TypeParam::leq(TypeParam::bottom(), a));
  }
}

TYPED_TEST(LatticeLaws, LeqConsistentWithJoin) {
  Rng rng(105);
  for (int t = 0; t < kTrials; ++t) {
    const auto a = Gen<TypeParam>::value(rng);
    const auto b = Gen<TypeParam>::value(rng);
    // leq(a, b) <=> join(a, b) == b (up to lattice equality)
    EXPECT_EQ(TypeParam::leq(a, b), TypeParam::eq(TypeParam::join(a, b), b));
    // a and b are both <= join(a, b)
    const auto j = TypeParam::join(a, b);
    EXPECT_TRUE(TypeParam::leq(a, j));
    EXPECT_TRUE(TypeParam::leq(b, j));
  }
}

TYPED_TEST(LatticeLaws, LeqIsPartialOrder) {
  Rng rng(106);
  for (int t = 0; t < kTrials; ++t) {
    const auto a = Gen<TypeParam>::value(rng);
    const auto b = Gen<TypeParam>::value(rng);
    const auto c = Gen<TypeParam>::value(rng);
    EXPECT_TRUE(TypeParam::leq(a, a));  // reflexive
    if (TypeParam::leq(a, b) && TypeParam::leq(b, a)) {
      EXPECT_TRUE(TypeParam::eq(a, b));  // antisymmetric
    }
    if (TypeParam::leq(a, b) && TypeParam::leq(b, c)) {
      EXPECT_TRUE(TypeParam::leq(a, c));  // transitive
    }
  }
}

// TaggedVectorLattice-specific behaviour used by the snapshot object.

TEST(TaggedVector, SingletonHasOneLiveCell) {
  const auto v = TaggedVectorLattice<int>::singleton(4, 2, 7, 99);
  ASSERT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(v[i].tag, i == 2 ? 7u : 0u);
  }
  EXPECT_EQ(v[2].value, 99);
}

TEST(TaggedVector, JoinTakesPerCellMaxTag) {
  using L = TaggedVectorLattice<int>;
  auto a = L::singleton(3, 0, 5, 10);
  auto b = L::singleton(3, 0, 9, 20);
  b[1] = TaggedCell<int>{1, 30};
  const auto j = L::join(a, b);
  EXPECT_EQ(j[0].tag, 9u);
  EXPECT_EQ(j[0].value, 20);
  EXPECT_EQ(j[1].value, 30);
  EXPECT_EQ(j[2].tag, 0u);
}

TEST(TaggedVector, JoinWidensMixedSizes) {
  using L = TaggedVectorLattice<int>;
  const auto small = L::singleton(1, 0, 2, 5);
  const auto large = L::singleton(3, 2, 1, 7);
  const auto j = L::join(small, large);
  ASSERT_EQ(j.size(), 3u);
  EXPECT_EQ(j[0].value, 5);
  EXPECT_EQ(j[2].value, 7);
}

TEST(MaxLatticeTest, JoinIsMax) {
  using L = MaxLattice<std::int64_t>;
  EXPECT_EQ(L::join(3, 9), 9);
  EXPECT_TRUE(L::leq(3, 9));
  EXPECT_FALSE(L::leq(9, 3));
}

TEST(SetUnionLatticeTest, JoinIsUnion) {
  using L = SetUnionLattice<int>;
  EXPECT_EQ(L::join({1, 2}, {2, 3}), (std::set<int>{1, 2, 3}));
  EXPECT_TRUE(L::leq({1}, {1, 2}));
  EXPECT_FALSE(L::leq({1, 4}, {1, 2}));
}

}  // namespace
}  // namespace apram
