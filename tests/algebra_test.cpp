// Tests for the §5.1–5.2 algebra: declared commute/overwrite tables checked
// against Definitions 10–11 over randomized reachable states; Property 1 for
// the constructible specs; Property-1 *failure* for the consensus-strength
// negative examples; Lemma 12 (overwrites transitivity) and Lemma 15
// (dominance is a strict partial order).
#include <gtest/gtest.h>

#include <vector>

#include "algebra/check.hpp"
#include "algebra/spec.hpp"
#include "objects/specs.hpp"
#include "util/rng.hpp"

namespace apram {
namespace {

// Random invocation generators per spec.
template <class S>
struct GenInv;

template <>
struct GenInv<CounterSpec> {
  static CounterSpec::Invocation inv(Rng& rng) {
    switch (rng.below(4)) {
      case 0: return CounterSpec::inc(rng.range(0, 5));
      case 1: return CounterSpec::dec(rng.range(0, 5));
      case 2: return CounterSpec::reset(rng.range(-3, 3));
      default: return CounterSpec::read();
    }
  }
};

template <>
struct GenInv<GrowSetSpec> {
  static GrowSetSpec::Invocation inv(Rng& rng) {
    switch (rng.below(3)) {
      case 0: return GrowSetSpec::insert(rng.range(0, 6));
      case 1: return GrowSetSpec::has(rng.range(0, 6));
      default: return GrowSetSpec::size();
    }
  }
};

template <>
struct GenInv<MaxRegisterSpec> {
  static MaxRegisterSpec::Invocation inv(Rng& rng) {
    if (rng.chance(0.5)) return MaxRegisterSpec::write_max(rng.range(0, 20));
    return MaxRegisterSpec::read();
  }
};

template <>
struct GenInv<StickyRegisterSpec> {
  static StickyRegisterSpec::Invocation inv(Rng& rng) {
    if (rng.chance(0.5)) return StickyRegisterSpec::write(rng.range(0, 5));
    return StickyRegisterSpec::read();
  }
};

template <>
struct GenInv<QueueSpec> {
  static QueueSpec::Invocation inv(Rng& rng) {
    if (rng.chance(0.5)) return QueueSpec::enq(rng.range(0, 5));
    return QueueSpec::deq();
  }
};

// Reachable state: apply a short random invocation sequence.
template <class S>
typename S::State random_state(Rng& rng) {
  auto s = S::initial();
  const auto len = rng.below(6);
  for (std::uint64_t i = 0; i < len; ++i) {
    s = S::apply(s, GenInv<S>::inv(rng)).first;
  }
  return s;
}

template <class S>
class ConstructibleAlgebra : public ::testing::Test {};

using ConstructibleSpecs =
    ::testing::Types<CounterSpec, GrowSetSpec, MaxRegisterSpec>;
TYPED_TEST_SUITE(ConstructibleAlgebra, ConstructibleSpecs);

constexpr int kTrials = 800;

TYPED_TEST(ConstructibleAlgebra, DeclaredRelationsMatchDefinitions) {
  Rng rng(301);
  for (int t = 0; t < kTrials; ++t) {
    const auto s = random_state<TypeParam>(rng);
    const auto p = GenInv<TypeParam>::inv(rng);
    const auto q = GenInv<TypeParam>::inv(rng);
    const auto v = validate_pair_at<TypeParam>(s, p, q);
    EXPECT_TRUE(v.declared_consistent)
        << "declared commute/overwrite violated at a reachable state";
  }
}

TYPED_TEST(ConstructibleAlgebra, Property1HoldsSemantically) {
  Rng rng(302);
  for (int t = 0; t < kTrials; ++t) {
    const auto s = random_state<TypeParam>(rng);
    const auto p = GenInv<TypeParam>::inv(rng);
    const auto q = GenInv<TypeParam>::inv(rng);
    EXPECT_TRUE(validate_pair_at<TypeParam>(s, p, q).property1);
  }
}

TYPED_TEST(ConstructibleAlgebra, Property1HoldsAtDeclarationLevel) {
  Rng rng(303);
  for (int t = 0; t < kTrials; ++t) {
    const auto p = GenInv<TypeParam>::inv(rng);
    const auto q = GenInv<TypeParam>::inv(rng);
    EXPECT_TRUE(declared_property1<TypeParam>(p, q));
  }
}

// Lemma 12: overwrites is transitive (checked on the declaration tables,
// which the universal construction consumes).
TYPED_TEST(ConstructibleAlgebra, OverwritesIsTransitive) {
  Rng rng(304);
  for (int t = 0; t < kTrials; ++t) {
    const auto p = GenInv<TypeParam>::inv(rng);
    const auto q = GenInv<TypeParam>::inv(rng);
    const auto r = GenInv<TypeParam>::inv(rng);
    if (TypeParam::overwrites(r, q) && TypeParam::overwrites(q, p)) {
      EXPECT_TRUE(TypeParam::overwrites(r, p));
    }
  }
}

// Lemma 15: dominance is a strict partial order.
TYPED_TEST(ConstructibleAlgebra, DominanceIsStrictPartialOrder) {
  Rng rng(305);
  for (int t = 0; t < kTrials; ++t) {
    const auto p = GenInv<TypeParam>::inv(rng);
    const auto q = GenInv<TypeParam>::inv(rng);
    const auto r = GenInv<TypeParam>::inv(rng);
    const int pp = static_cast<int>(rng.below(4));
    const int qp = static_cast<int>(rng.below(4));
    const int rp = static_cast<int>(rng.below(4));

    // Irreflexive (same op, same process).
    EXPECT_FALSE((dominates<TypeParam>(p, pp, p, pp)));
    // Antisymmetric.
    if (dominates<TypeParam>(p, pp, q, qp)) {
      EXPECT_FALSE((dominates<TypeParam>(q, qp, p, pp)));
    }
    // Transitive.
    if (dominates<TypeParam>(r, rp, q, qp) &&
        dominates<TypeParam>(q, qp, p, pp)) {
      EXPECT_TRUE((dominates<TypeParam>(r, rp, p, pp)));
    }
  }
}

// ---------------------------------------------------------------------------
// Negative examples: consensus-strength specs must violate Property 1.
// ---------------------------------------------------------------------------

TEST(NegativeSpecs, StickyRegisterViolatesProperty1) {
  // Two writes of different values: neither commute nor overwrite.
  const auto w1 = StickyRegisterSpec::write(1);
  const auto w2 = StickyRegisterSpec::write(2);
  const auto s = StickyRegisterSpec::initial();
  EXPECT_FALSE((commutes_at<StickyRegisterSpec>(s, w1, w2)));
  EXPECT_FALSE((overwrites_at<StickyRegisterSpec>(s, w1, w2)));
  EXPECT_FALSE((overwrites_at<StickyRegisterSpec>(s, w2, w1)));
  EXPECT_FALSE((declared_property1<StickyRegisterSpec>(w1, w2)));
}

TEST(NegativeSpecs, QueueViolatesProperty1) {
  const auto e1 = QueueSpec::enq(1);
  const auto e2 = QueueSpec::enq(2);
  const auto s = QueueSpec::initial();
  EXPECT_FALSE((commutes_at<QueueSpec>(s, e1, e2)));
  EXPECT_FALSE((overwrites_at<QueueSpec>(s, e1, e2)));
  EXPECT_FALSE((overwrites_at<QueueSpec>(s, e2, e1)));
}

TEST(NegativeSpecs, QueueDeqDoesNotCommuteWithEnqOnEmpty) {
  const auto s = QueueSpec::initial();
  EXPECT_FALSE((commutes_at<QueueSpec>(s, QueueSpec::enq(7), QueueSpec::deq())));
}

// The declared tables of the negative specs are still *sound* (they only
// declare what is semantically true) — they are just not total enough to
// satisfy Property 1.
TEST(NegativeSpecs, DeclaredTablesAreSound) {
  Rng rng(307);
  for (int t = 0; t < kTrials; ++t) {
    {
      const auto s = random_state<StickyRegisterSpec>(rng);
      const auto p = GenInv<StickyRegisterSpec>::inv(rng);
      const auto q = GenInv<StickyRegisterSpec>::inv(rng);
      EXPECT_TRUE((validate_pair_at<StickyRegisterSpec>(s, p, q))
                      .declared_consistent);
    }
    {
      const auto s = random_state<QueueSpec>(rng);
      const auto p = GenInv<QueueSpec>::inv(rng);
      const auto q = GenInv<QueueSpec>::inv(rng);
      EXPECT_TRUE((validate_pair_at<QueueSpec>(s, p, q)).declared_consistent);
    }
  }
}

// ---------------------------------------------------------------------------
// Spot checks of the intended algebra (documented examples from the paper).
// ---------------------------------------------------------------------------

TEST(CounterAlgebra, PaperExamples) {
  using C = CounterSpec;
  // "inc and dec operations commute"
  EXPECT_TRUE(C::commutes(C::inc(2), C::dec(3)));
  EXPECT_TRUE(C::commutes(C::inc(1), C::inc(1)));
  // "every operation overwrites read"
  EXPECT_TRUE(C::overwrites(C::inc(1), C::read()));
  EXPECT_TRUE(C::overwrites(C::reset(0), C::read()));
  EXPECT_TRUE(C::overwrites(C::read(), C::read()));
  // "reset overwrites every operation"
  EXPECT_TRUE(C::overwrites(C::reset(5), C::inc(1)));
  EXPECT_TRUE(C::overwrites(C::reset(5), C::reset(9)));
  // read does not overwrite a mutation
  EXPECT_FALSE(C::overwrites(C::read(), C::inc(1)));
}

TEST(CounterAlgebra, DominanceExamples) {
  using C = CounterSpec;
  // reset dominates inc regardless of pid order.
  EXPECT_TRUE((dominates<C>(C::reset(0), 0, C::inc(1), 5)));
  EXPECT_FALSE((dominates<C>(C::inc(1), 5, C::reset(0), 0)));
  // mutual overwriting (two resets) breaks ties by pid.
  EXPECT_TRUE((dominates<C>(C::reset(1), 3, C::reset(2), 1)));
  EXPECT_FALSE((dominates<C>(C::reset(1), 1, C::reset(2), 3)));
  // commuting incs: no dominance either way.
  EXPECT_FALSE((dominates<C>(C::inc(1), 0, C::inc(1), 1)));
  EXPECT_FALSE((dominates<C>(C::inc(1), 1, C::inc(1), 0)));
}

TEST(RunSequential, CounterHistory) {
  using C = CounterSpec;
  const std::vector<C::Invocation> invs{C::inc(5), C::dec(2), C::read(),
                                        C::reset(10), C::read()};
  const auto run = run_sequential<C>(invs);
  EXPECT_EQ(run.final_state, 10);
  ASSERT_EQ(run.responses.size(), 5u);
  EXPECT_EQ(run.responses[2], 3);
  EXPECT_EQ(run.responses[4], 10);
}

TEST(RunSequential, GrowSetHistory) {
  using G = GrowSetSpec;
  const std::vector<G::Invocation> invs{G::insert(1), G::insert(1),
                                        G::insert(2), G::has(1), G::has(9),
                                        G::size()};
  const auto run = run_sequential<G>(invs);
  EXPECT_EQ(run.responses[3], 1);
  EXPECT_EQ(run.responses[4], 0);
  EXPECT_EQ(run.responses[5], 2);
}

}  // namespace
}  // namespace apram
