// Tests for the Section 6 atomic scan and the snapshot object built on it.
//
// Covers: Figure 5 semantics on several lattices, the exact §6.2 operation
// counts, Lemma 32 comparability of concurrent Scan results under randomized
// schedules, monotonicity (Lemma 29), snapshot view correctness, and
// wait-freedom under crash failures.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "lattice/lattice.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "snapshot/atomic_snapshot.hpp"
#include "snapshot/lattice_scan.hpp"
#include "snapshot/scan_stats.hpp"

namespace apram {
namespace {

using sim::Context;
using sim::ProcessTask;
using sim::World;

using MaxL = MaxLattice<std::int64_t>;

// ---------------------------------------------------------------------------
// Basic Figure 5 semantics
// ---------------------------------------------------------------------------

TEST(LatticeScan, SoloScanReturnsOwnContribution) {
  World w(1);
  LatticeScanSim<MaxL> ls(w, 1, "ls");
  std::int64_t out = 0;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    out = co_await ls.scan(ctx, 42);
  });
  EXPECT_TRUE(w.run_solo(0).all_done);
  EXPECT_EQ(out, 42);
}

TEST(LatticeScan, ReadMaxSeesEarlierWriteL) {
  World w(2);
  LatticeScanSim<MaxL> ls(w, 2, "ls");
  std::int64_t out = 0;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await ls.write_l(ctx, 99);
  });
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    out = co_await ls.read_max(ctx);
  });
  w.run_solo(0);
  w.run_solo(1);
  EXPECT_EQ(out, 99);
}

TEST(LatticeScan, ReadMaxWithNoWritesIsBottom) {
  World w(2);
  LatticeScanSim<MaxL> ls(w, 2, "ls");
  std::int64_t out = 123;
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    out = co_await ls.read_max(ctx);
  });
  w.run_solo(1);
  EXPECT_EQ(out, MaxL::bottom());
}

TEST(LatticeScan, SetUnionAccumulatesAcrossProcesses) {
  using SetL = SetUnionLattice<int>;
  World w(3);
  LatticeScanSim<SetL> ls(w, 3, "ls");
  std::set<int> out;
  for (int pid = 0; pid < 3; ++pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      if (pid < 2) {
        // Note: no initializer_list inside a coroutine (GCC 12 frame bug).
        std::set<int> mine;
        mine.insert(pid * 10);
        mine.insert(pid * 10 + 1);
        co_await ls.write_l(ctx, std::move(mine));
      } else {
        out = co_await ls.read_max(ctx);
      }
    });
  }
  w.run_solo(0);
  w.run_solo(1);
  w.run_solo(2);
  EXPECT_EQ(out, (std::set<int>{0, 1, 10, 11}));
}

TEST(LatticeScan, PostIsVisibleToLaterScan) {
  World w(2);
  LatticeScanSim<MaxL> ls(w, 2, "ls");
  std::int64_t out = 0;
  w.spawn(0, [&](Context ctx) -> ProcessTask { co_await ls.post(ctx, 7); });
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    out = co_await ls.read_max(ctx);
  });
  w.run_solo(0);
  w.run_solo(1);
  EXPECT_EQ(out, 7);
}

// ---------------------------------------------------------------------------
// §6.2 exact operation counts (the paper's Table-equivalent, also bench E4)
// ---------------------------------------------------------------------------

class ScanOpCounts : public ::testing::TestWithParam<std::tuple<int, ScanMode>> {
};

TEST_P(ScanOpCounts, MatchesClosedForm) {
  const auto [n, mode] = GetParam();
  obs::Registry registry;
  World w(n, {.metrics = &registry});
  LatticeScanSim<MaxL> ls(w, n, "ls", mode);
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await ls.scan(ctx, 5);
  });
  obs::CounterDelta reads(w.metrics_reads(0));
  obs::CounterDelta writes(w.metrics_writes(0));
  w.run_solo(0);
  EXPECT_EQ(reads.delta(), expected_scan_reads(n, mode)) << "n=" << n;
  EXPECT_EQ(writes.delta(), expected_scan_writes(n, mode)) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ScanOpCounts,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16),
                       ::testing::Values(ScanMode::kPlain,
                                         ScanMode::kOptimized)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == ScanMode::kPlain ? "_plain"
                                                          : "_optimized");
    });

TEST(ScanOpCountsExtra, CostIsTheSameOnRepeatedScans) {
  World w(4);
  LatticeScanSim<MaxL> ls(w, 4, "ls");
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    for (int i = 0; i < 3; ++i) co_await ls.scan(ctx, i);
  });
  w.run_solo(0);
  EXPECT_EQ(w.counts(0).reads, 3 * expected_scan_reads(4, ScanMode::kOptimized));
  EXPECT_EQ(w.counts(0).writes,
            3 * expected_scan_writes(4, ScanMode::kOptimized));
}

TEST(ScanOpCountsExtra, PostCostsOneWrite) {
  World w(4);
  LatticeScanSim<MaxL> ls(w, 4, "ls", ScanMode::kOptimized);
  w.spawn(0, [&](Context ctx) -> ProcessTask { co_await ls.post(ctx, 1); });
  w.run_solo(0);
  EXPECT_EQ(w.counts(0).reads, 0u);
  EXPECT_EQ(w.counts(0).writes, 1u);
}

// ---------------------------------------------------------------------------
// Lemma 32: concurrent Scan results are pairwise comparable.
// Lemma 29: a process's successive scans are monotonically nondecreasing.
// ---------------------------------------------------------------------------

struct ComparabilityRig {
  static constexpr int kScansPerProc = 3;

  explicit ComparabilityRig(int n, ScanMode mode, std::uint64_t /*seed*/)
      : world(n), ls(world, n, "ls", mode) {
    results.resize(static_cast<std::size_t>(n));
    for (int pid = 0; pid < n; ++pid) {
      world.spawn(pid, [this, pid, n](Context ctx) -> ProcessTask {
        for (int k = 0; k < kScansPerProc; ++k) {
          // Every scan also contributes a fresh value, maximizing contention
          // on the lattice state.
          const auto v = static_cast<std::int64_t>(pid * 1000 + k);
          results[static_cast<std::size_t>(pid)].push_back(
              co_await ls.scan(ctx, v));
          (void)n;
        }
      });
    }
  }

  World world;
  LatticeScanSim<MaxL> ls;
  std::vector<std::vector<std::int64_t>> results;  // [pid][scan index]
};

class ScanComparability : public ::testing::TestWithParam<int> {};

TEST_P(ScanComparability, AllReturnsComparableUnderRandomSchedules) {
  const int n = GetParam();
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    ComparabilityRig rig(n, seed % 2 ? ScanMode::kPlain : ScanMode::kOptimized,
                         seed);
    sim::RandomScheduler sched(seed, /*stickiness=*/seed % 3 == 0 ? 0.8 : 0.0);
    ASSERT_TRUE(rig.world.run(sched).all_done);

    // MaxLattice is totally ordered, so comparability is trivially true for
    // the values; the strong check is monotonicity per process...
    for (int pid = 0; pid < n; ++pid) {
      const auto& rs = rig.results[static_cast<std::size_t>(pid)];
      for (std::size_t k = 1; k < rs.size(); ++k) {
        EXPECT_LE(rs[k - 1], rs[k]) << "pid=" << pid << " seed=" << seed;
      }
      // ...and self-inclusion: a scan's result includes its own contribution.
      for (std::size_t k = 0; k < rs.size(); ++k) {
        EXPECT_GE(rs[k], pid * 1000 + static_cast<std::int64_t>(k));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, ScanComparability, ::testing::Values(2, 3, 5),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// The genuinely partial-order comparability check (Lemma 32) needs a lattice
// with incomparable elements: use tagged vectors via the snapshot object.
class SnapshotComparability : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotComparability, TaggedViewsArePairwiseComparable) {
  using L = TaggedVectorLattice<int>;
  const int n = GetParam();
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    World w(n);
    AtomicSnapshotSim<int> snap(w, n, "snap");
    std::vector<L::Value> views;
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        for (int k = 0; k < 3; ++k) {
          co_await snap.update(ctx, pid * 100 + k);
          views.push_back(co_await snap.scan_tagged(ctx));
        }
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);

    for (std::size_t i = 0; i < views.size(); ++i) {
      for (std::size_t j = i + 1; j < views.size(); ++j) {
        EXPECT_TRUE(L::leq(views[i], views[j]) || L::leq(views[j], views[i]))
            << "incomparable scans, seed=" << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, SnapshotComparability,
                         ::testing::Values(2, 3, 4),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Snapshot object semantics
// ---------------------------------------------------------------------------

TEST(AtomicSnapshot, EmptySlotsAreNullopt) {
  World w(3);
  AtomicSnapshotSim<int> snap(w, 3, "snap");
  SnapshotView<int> view;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await snap.update(ctx, 11);
    view = co_await snap.scan(ctx);
  });
  w.run_solo(0);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 11);
  EXPECT_FALSE(view[1].has_value());
  EXPECT_FALSE(view[2].has_value());
}

TEST(AtomicSnapshot, LatestUpdateWinsPerSlot) {
  World w(2);
  AtomicSnapshotSim<int> snap(w, 2, "snap");
  SnapshotView<int> view;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await snap.update(ctx, 1);
    co_await snap.update(ctx, 2);
    co_await snap.update(ctx, 3);
  });
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    view = co_await snap.scan(ctx);
  });
  w.run_solo(0);
  w.run_solo(1);
  EXPECT_EQ(view[0], 3);
}

TEST(AtomicSnapshot, UpdateAndScanIncludesOwnValue) {
  World w(2);
  AtomicSnapshotSim<int> snap(w, 2, "snap");
  SnapshotView<int> view;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    view = co_await snap.update_and_scan(ctx, 5);
  });
  w.run_solo(0);
  EXPECT_EQ(view[0], 5);
}

TEST(AtomicSnapshot, ScanReflectsCompletedUpdatesOfOthers) {
  // Real-time order: if update(v) completes before scan starts, the scan
  // must contain v (or something newer in that slot).
  World w(3);
  AtomicSnapshotSim<int> snap(w, 3, "snap");
  SnapshotView<int> view;
  w.spawn(0, [&](Context ctx) -> ProcessTask { co_await snap.update(ctx, 1); });
  w.spawn(1, [&](Context ctx) -> ProcessTask { co_await snap.update(ctx, 2); });
  w.spawn(2, [&](Context ctx) -> ProcessTask {
    view = co_await snap.scan(ctx);
  });
  w.run_solo(0);
  w.run_solo(1);
  w.run_solo(2);
  EXPECT_EQ(view[0], 1);
  EXPECT_EQ(view[1], 2);
}

// ---------------------------------------------------------------------------
// Wait-freedom: scans complete despite other processes crashing mid-update.
// ---------------------------------------------------------------------------

TEST(AtomicSnapshot, ScanCompletesDespiteCrashes) {
  const int n = 4;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    World w(n);
    AtomicSnapshotSim<int> snap(w, n, "snap");
    bool scanned = false;
    for (int pid = 0; pid + 1 < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        for (int k = 0; k < 100; ++k) co_await snap.update(ctx, pid * 10 + k);
      });
    }
    w.spawn(n - 1, [&](Context ctx) -> ProcessTask {
      (void)co_await snap.scan(ctx);
      scanned = true;
    });
    sim::RandomScheduler rnd(seed);
    // Crash all updaters at staggered points; the scanner must still finish.
    sim::CrashingScheduler sched(rnd, {{5 + seed, 0}, {9 + seed, 1}, {13 + seed, 2}});
    const auto r = w.run(sched);
    EXPECT_TRUE(r.all_done);
    EXPECT_TRUE(scanned) << "seed=" << seed;
  }
}

TEST(LatticeScan, ScanStepBoundIsExactEvenUnderContention) {
  // Wait-freedom in the strongest sense: the per-scan step count does not
  // depend on the schedule at all — it is a straight-line algorithm.
  const int n = 3;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    World w(n);
    LatticeScanSim<MaxL> ls(w, n, "ls");
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        co_await ls.scan(ctx, pid);
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);
    for (int pid = 0; pid < n; ++pid) {
      EXPECT_EQ(w.counts(pid).reads, expected_scan_reads(n, ScanMode::kOptimized));
      EXPECT_EQ(w.counts(pid).writes,
                expected_scan_writes(n, ScanMode::kOptimized));
    }
  }
}

}  // namespace
}  // namespace apram
