// PolylogQueue and UnionFind — the two farray clients — across the repo's
// verification tiers:
//
//   queue: sequential FIFO semantics, exact solo step counts (enqueue
//   1 + 4h, dequeue 2 + 4h), linearizability against QueueSpec under random
//   schedules, exhaustive n = 2 enumeration with a per-schedule lincheck,
//   a seeded fault campaign (crash the helper mid-refresh), and an rt
//   multi-thread smoke with per-producer FIFO order.
//
//   union-find: agreement with the sequential oracle on the full same-set
//   matrix, linearizability of unite/find/same_set against UnionFindSpec,
//   one-read num_sets checked as an overcount-free bound (exact in
//   quiescence, pinned by a targeted paused-linker schedule — num_sets is
//   deliberately NOT in the lincheck spec, see union_find.hpp), and a
//   seeded fault campaign with the (bounded, see union_find.hpp) retry
//   budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <vector>

#include "api/rt_backend.hpp"
#include "api/sim_backend.hpp"
#include "fault/certifier.hpp"
#include "fault_seeds.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "objects/polylog_queue.hpp"
#include "objects/specs.hpp"
#include "objects/union_find.hpp"
#include "rt/thread_harness.hpp"
#include "sim/explore.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace apram {
namespace {

using sim::Context;
using sim::Execution;
using sim::ProcessTask;
using sim::World;

using SimQueue = PolylogQueue<api::SimBackend>;
using SimUF = UnionFind<api::SimBackend>;
using QSpec = QueueSpec;
using UFSpec = UnionFindSpec<8>;

// ---------------------------------------------------------------------------
// Queue: sequential semantics
// ---------------------------------------------------------------------------

TEST(PolylogQueue, SoloRunsAreFifoAcrossProcesses) {
  const int n = 3;
  World w(n);
  api::SimBackend::Mem mem(w, "q");
  SimQueue q(mem, n);

  const auto enq = [&](int pid, std::int64_t v) {
    w.spawn(pid, [&, v](Context ctx) -> ProcessTask {
      co_await q.enqueue(ctx, v);
    });
    w.run_solo(pid);
  };
  const auto deq = [&](int pid) {
    std::int64_t got = -2;
    w.spawn(pid, [&](Context ctx) -> ProcessTask {
      got = co_await q.dequeue(ctx);
    });
    w.run_solo(pid);
    return got;
  };

  EXPECT_EQ(deq(0), -1);  // empty: totalized dequeue
  enq(0, 10);
  enq(1, 20);
  enq(2, 30);
  EXPECT_EQ(deq(1), 10);  // FIFO across producers, any consumer
  enq(0, 40);
  EXPECT_EQ(deq(2), 20);
  EXPECT_EQ(deq(2), 30);
  EXPECT_EQ(deq(0), 40);
  EXPECT_EQ(deq(1), -1);
}

// ---------------------------------------------------------------------------
// Queue: exact solo step counts (the register-model costs the queue_op
// trace bound certifies with margin).
// ---------------------------------------------------------------------------

TEST(PolylogQueue, SoloOpsMatchTheClosedForms) {
  for (int n : {1, 2, 4, 8, 16}) {
    World w(n);
    api::SimBackend::Mem mem(w, "q");
    SimQueue q(mem, n);
    const auto h = static_cast<std::uint64_t>(farray::farray_height(n));

    w.spawn(0, [&](Context ctx) -> ProcessTask {
      co_await q.enqueue(ctx, 7);
    });
    w.run_solo(0);
    const auto after_enq = w.counts(0);
    // enqueue = farray write: 1 leaf write + h·(3 reads + 1 CAS).
    EXPECT_EQ(after_enq.total(), 1 + 4 * h) << "n=" << n;
    EXPECT_EQ(after_enq.reads, 3 * h) << "n=" << n;
    EXPECT_EQ(after_enq.writes, 1 + h) << "n=" << n;

    std::int64_t got = -2;
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      got = co_await q.dequeue(ctx);
    });
    w.run_solo(0);
    const auto after_deq = w.counts(0);
    EXPECT_EQ(got, 7) << "n=" << n;
    // dequeue = enqueue's cost + one root read.
    EXPECT_EQ(after_deq.total() - after_enq.total(), 2 + 4 * h) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Queue: linearizability under random schedules (QueueSpec is the repo's
// Property-1 NEGATIVE example — not constructible from reads and writes —
// so checking the CAS-based implementation against it is the point).
// ---------------------------------------------------------------------------

std::vector<RecordedOp<QSpec>> record_queue_run(std::uint64_t seed, int n,
                                                int ops_per_proc) {
  World w(n);
  api::SimBackend::Mem mem(w, "q");
  SimQueue q(mem, n);
  HistoryRecorder<QSpec> rec;
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
      Rng rng(seed * 977 + static_cast<std::uint64_t>(pid));
      for (int i = 0; i < ops_per_proc; ++i) {
        if (rng.chance(0.55)) {
          const auto inv = QSpec::enq(pid * 100 + i);
          const auto tok = rec.begin(pid, inv, ctx.world().global_step());
          co_await q.enqueue(ctx, pid * 100 + i);
          rec.end(tok, 0, ctx.world().global_step());
        } else {
          const auto inv = QSpec::deq();
          const auto tok = rec.begin(pid, inv, ctx.world().global_step());
          const std::int64_t r = co_await q.dequeue(ctx);
          rec.end(tok, r, ctx.world().global_step());
        }
      }
    });
  }
  sim::RandomScheduler sched(seed, /*stickiness=*/0.3);
  EXPECT_TRUE(w.run(sched).all_done);
  return rec.ops();
}

TEST(PolylogQueue, RandomScheduleHistoriesAreLinearizable) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    auto h = record_queue_run(seed, 3, 3);
    EXPECT_TRUE(is_linearizable<QSpec>(std::move(h))) << "seed=" << seed;
  }
}

// ---------------------------------------------------------------------------
// Queue: exhaustive n = 2 enumeration, lincheck on every schedule.
// ---------------------------------------------------------------------------

struct QueuePairExec final : Execution {
  QueuePairExec() : w(2), mem(w, "x"), q(mem, 2) {
    w.spawn(0, [this](Context ctx) -> ProcessTask {
      const auto tok = rec.begin(0, QSpec::enq(1), ctx.world().global_step());
      co_await q.enqueue(ctx, 1);
      rec.end(tok, 0, ctx.world().global_step());
    });
    w.spawn(1, [this](Context ctx) -> ProcessTask {
      const auto tok = rec.begin(1, QSpec::deq(), ctx.world().global_step());
      deq_result = co_await q.dequeue(ctx);
      rec.end(tok, deq_result, ctx.world().global_step());
    });
  }
  World& world() override { return w; }
  World w;
  api::SimBackend::Mem mem;
  SimQueue q;
  HistoryRecorder<QSpec> rec;
  std::int64_t deq_result = -2;
};

TEST(PolylogQueueExplore, EveryScheduleLinearizes) {
  const auto stats = sim::explore_all_schedules(
      [] { return std::make_unique<QueuePairExec>(); },
      [&](Execution& e, const std::vector<int>&) {
        auto& x = static_cast<QueuePairExec&>(e);
        ASSERT_TRUE(x.deq_result == -1 || x.deq_result == 1) << x.deq_result;
        ASSERT_TRUE(is_linearizable<QSpec>(x.rec.ops()));
      });
  // Solo lengths are 5 (enqueue) and 6 (dequeue), which alone would give
  // C(11,5) = 462 interleavings; schedules where a CAS loses the race take a
  // second refresh attempt and branch further, so the full tree is larger.
  EXPECT_GE(stats.executions, 462u);
}

// ---------------------------------------------------------------------------
// Queue: fault campaign — crash the helper mid-refresh. Three producers
// enqueue once each (any of them may die between the leaf append and the
// end of the root walk); the never-crashed consumer dequeues twice and must
// stay within its closed-form budget regardless.
// ---------------------------------------------------------------------------

struct QueueCampaignExec final : Execution {
  QueueCampaignExec() : w(4), mem(w, "q"), q(mem, 4) {
    for (int pid = 0; pid < 3; ++pid) {
      w.spawn(pid, [this, pid](Context ctx) -> ProcessTask {
        co_await q.enqueue(ctx, 100 + pid);
      });
    }
    w.spawn(3, [this](Context ctx) -> ProcessTask {
      deqs[0] = co_await q.dequeue(ctx);
      deqs[1] = co_await q.dequeue(ctx);
    });
  }
  World& world() override { return w; }
  World w;
  api::SimBackend::Mem mem;
  SimQueue q;
  std::int64_t deqs[2] = {-2, -2};
};

TEST(PolylogQueueFault, CampaignCertifiesLogarithmicStepBounds) {
  std::uint64_t total_schedules = 0;
  std::uint64_t total_faults = 0;
  for (const std::uint64_t base : fault_seeds::kQueueCampaignSeeds) {
    fault::CampaignOptions opts;
    opts.schedules = 60;
    opts.base_seed = base;
    opts.plan.never_crash = {3};  // the consumer is the measured process
    // n = 4, h = 2. Contended enqueue ≤ 6h reads + (1 + 2h) writes; each
    // dequeue adds one root read; the consumer performs two dequeues.
    const fault::CampaignResult result = fault::certify_wait_freedom(
        [] { return std::make_unique<QueueCampaignExec>(); },
        fault::step_bound_judge({{12, 5}, {12, 5}, {12, 5}, {26, 10}}), opts);
    EXPECT_TRUE(result.certified())
        << "base_seed=" << base << ": "
        << (result.violations.empty() ? "no schedules ran"
                                      : result.violations[0].what);
    total_schedules += result.schedules_run;
    total_faults += result.crashes_fired + result.stall_deflections +
                    result.burst_grants;
  }
  EXPECT_GE(total_schedules, 180u);
  EXPECT_GT(total_faults, 0u);
}

// ---------------------------------------------------------------------------
// Queue: rt smoke — producers/consumers on real threads; every value is
// dequeued exactly once and per-producer FIFO order is preserved.
// ---------------------------------------------------------------------------

TEST(PolylogQueueRt, ThreadsPreservePerProducerFifoAndLoseNothing) {
  const int n = 4;
  const int kPerThread = 32;
  PolylogQueueRT q(n);

  std::vector<std::vector<std::int64_t>> popped(static_cast<std::size_t>(n));
  rt::parallel_run(n, [&](int pid) {
    for (int i = 0; i < kPerThread; ++i) {
      q.enqueue(pid, pid * 1000 + i);
      if (i % 2 == 1) {
        const std::int64_t v = q.dequeue(pid);
        if (v != -1) popped[static_cast<std::size_t>(pid)].push_back(v);
      }
    }
  });

  // Single-threaded drain: -1 now really means empty.
  std::vector<std::int64_t> drained;
  for (std::int64_t v = q.dequeue(0); v != -1; v = q.dequeue(0)) {
    drained.push_back(v);
  }

  std::vector<std::int64_t> all;
  for (const auto& per_pid : popped) {
    all.insert(all.end(), per_pid.begin(), per_pid.end());
  }
  all.insert(all.end(), drained.begin(), drained.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(n) * kPerThread);
  std::sort(all.begin(), all.end());
  for (int pid = 0; pid < n; ++pid) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(pid * kPerThread + i)],
                pid * 1000 + i);
    }
  }

  // A consumer's successive dequeues follow the linearization order, so the
  // values it took from any single producer must be ascending; the drain is
  // one more consumer sequence.
  const auto check_per_producer_order = [&](const std::vector<std::int64_t>& seq) {
    std::map<std::int64_t, std::int64_t> last_of;  // producer -> last value
    for (const std::int64_t v : seq) {
      const std::int64_t producer = v / 1000;
      const auto it = last_of.find(producer);
      if (it != last_of.end()) EXPECT_LT(it->second, v);
      last_of[producer] = v;
    }
  };
  for (const auto& per_pid : popped) check_per_producer_order(per_pid);
  check_per_producer_order(drained);
}

// ---------------------------------------------------------------------------
// Union-find: agreement with the sequential oracle.
// ---------------------------------------------------------------------------

// Oracle partition: unions are order-independent, so any completed run must
// agree with a sequential DSU over the same pairs.
struct Oracle {
  std::vector<std::int32_t> rep;
  explicit Oracle(int u) : rep(static_cast<std::size_t>(u)) {
    std::iota(rep.begin(), rep.end(), 0);
  }
  void unite(std::int32_t a, std::int32_t b) {
    const std::int32_t ra = rep[static_cast<std::size_t>(a)];
    const std::int32_t rb = rep[static_cast<std::size_t>(b)];
    if (ra == rb) return;
    const std::int32_t lo = std::min(ra, rb);
    const std::int32_t hi = std::max(ra, rb);
    for (auto& r : rep) {
      if (r == hi) r = lo;
    }
  }
  bool same(std::int32_t a, std::int32_t b) const {
    return rep[static_cast<std::size_t>(a)] ==
           rep[static_cast<std::size_t>(b)];
  }
  std::int64_t sets() const {
    std::int64_t out = 0;
    for (std::size_t i = 0; i < rep.size(); ++i) {
      if (rep[i] == static_cast<std::int32_t>(i)) ++out;
    }
    return out;
  }
};

TEST(UnionFind, ConcurrentUnionsMatchTheOracleMatrixAndOneReadNumSets) {
  const int n = 4;
  const int kUniverse = 8;
  const std::vector<std::pair<std::int32_t, std::int32_t>> pairs[4] = {
      {{0, 1}, {2, 3}},
      {{1, 2}},
      {{4, 5}, {5, 6}},
      {{6, 4}},
  };
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    World w(n);
    api::SimBackend::Mem mem(w, "uf");
    SimUF uf(mem, n, kUniverse);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        for (const auto& [a, b] : pairs[pid]) {
          co_await uf.unite(ctx, a, b);
        }
      });
    }
    sim::RandomScheduler sched(seed, /*stickiness=*/0.3);
    ASSERT_TRUE(w.run(sched).all_done);

    Oracle oracle(kUniverse);
    for (const auto& per_pid : pairs) {
      for (const auto& [a, b] : per_pid) oracle.unite(a, b);
    }
    for (std::int32_t a = 0; a < kUniverse; ++a) {
      std::int32_t root = -1;
      for (std::int32_t b = 0; b < kUniverse; ++b) {
        bool same = false;
        w.spawn(0, [&, a, b](Context ctx) -> ProcessTask {
          same = co_await uf.same_set(ctx, a, b);
        });
        w.run_solo(0);
        EXPECT_EQ(same, oracle.same(a, b))
            << "seed=" << seed << " a=" << a << " b=" << b;
      }
      w.spawn(0, [&, a](Context ctx) -> ProcessTask {
        root = co_await uf.find(ctx, a);
      });
      w.run_solo(0);
      // Min-wins linking: the representative is the set's minimum.
      EXPECT_EQ(root, oracle.rep[static_cast<std::size_t>(a)]) << "seed=" << seed;
    }

    std::int64_t sets = -1;
    const auto before = w.counts(1);
    w.spawn(1, [&](Context ctx) -> ProcessTask {
      sets = co_await uf.num_sets(ctx);
    });
    w.run_solo(1);
    EXPECT_EQ(sets, oracle.sets()) << "seed=" << seed;
    EXPECT_EQ(w.counts(1).total() - before.total(), 1u);  // ONE root read
  }
}

// ---------------------------------------------------------------------------
// Union-find: unite/find/same_set linearize against the exact sequential
// spec. num_sets rides along in the mix but is NOT recorded into the
// lincheck history (it has no exact sequential semantics — union_find.hpp);
// instead every concurrent observation is checked against its bound
// contract: final true count ≤ r ≤ U, and exact once quiescent.
// ---------------------------------------------------------------------------

TEST(UnionFind, RandomScheduleHistoriesAreLinearizable) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const int n = 3;
    World w(n);
    api::SimBackend::Mem mem(w, "uf");
    SimUF uf(mem, n, 8);
    HistoryRecorder<UFSpec> rec;
    std::vector<std::pair<std::int32_t, std::int32_t>> united;
    std::vector<std::int64_t> numset_obs;
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        Rng rng(seed * 313 + static_cast<std::uint64_t>(pid));
        for (int i = 0; i < 3; ++i) {
          const auto a = static_cast<std::int32_t>(rng.below(8));
          const auto b = static_cast<std::int32_t>(rng.below(8));
          const double dice = rng.uniform();
          if (dice < 0.4) {
            const auto inv = UFSpec::unite(a, b);
            const auto tok = rec.begin(pid, inv, ctx.world().global_step());
            co_await uf.unite(ctx, a, b);
            rec.end(tok, 0, ctx.world().global_step());
            united.emplace_back(a, b);
          } else if (dice < 0.6) {
            const auto inv = UFSpec::find(a);
            const auto tok = rec.begin(pid, inv, ctx.world().global_step());
            const std::int32_t r = co_await uf.find(ctx, a);
            rec.end(tok, r, ctx.world().global_step());
          } else if (dice < 0.8) {
            const auto inv = UFSpec::same_set(a, b);
            const auto tok = rec.begin(pid, inv, ctx.world().global_step());
            const bool r = co_await uf.same_set(ctx, a, b);
            rec.end(tok, r ? 1 : 0, ctx.world().global_step());
          } else {
            numset_obs.push_back(co_await uf.num_sets(ctx));
          }
        }
      });
    }
    sim::RandomScheduler sched(seed, /*stickiness=*/0.2);
    ASSERT_TRUE(w.run(sched).all_done);
    EXPECT_TRUE(is_linearizable<UFSpec>(rec.ops())) << "seed=" << seed;

    // Bound contract for the concurrent num_sets observations: the true
    // count only decreases over a run, and r never undercounts, so every
    // observation sits in [final true count, U].
    Oracle oracle(8);
    for (const auto& [a, b] : united) oracle.unite(a, b);
    for (const std::int64_t r : numset_obs) {
      EXPECT_GE(r, oracle.sets()) << "seed=" << seed;
      EXPECT_LE(r, 8) << "seed=" << seed;
    }
    // Quiescent (every unite completed, none crashed): exact.
    std::int64_t final_sets = -1;
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      final_sets = co_await uf.num_sets(ctx);
    });
    w.run_solo(0);
    EXPECT_EQ(final_sets, oracle.sets()) << "seed=" << seed;
  }
}

// ---------------------------------------------------------------------------
// Union-find: num_sets bound semantics, pinned. Pause a unite in the exact
// window between its link CAS and its link-counter farray write: same_set
// already observes the merge while num_sets still reports the pre-union
// count — the history an exact num_sets spec would reject, and precisely
// what the bound contract allows. Resuming the linker restores exactness;
// crashing it instead pins the permanent inflation (the counter leaf is
// SWMR, so nobody can ever complete the crashed linker's write).
// ---------------------------------------------------------------------------

TEST(UnionFind, NumSetsIsAnOvercountFreeBoundInTheLinkCounterWindow) {
  for (const bool crash_linker : {false, true}) {
    const int kUniverse = 4;
    World w(2);
    api::SimBackend::Mem mem(w, "uf");
    SimUF uf(mem, 2, kUniverse);

    w.spawn(0, [&](Context ctx) -> ProcessTask {
      co_await uf.unite(ctx, 0, 1);
    });
    // Solo unite(0,1) on a fresh forest: read parent[0], read parent[1],
    // link CAS — exactly 3 accesses. Grant exactly those; pid 0 is now
    // suspended AT its farray leaf write: linked, not yet counted.
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(w.step(0));

    const auto query = [&](std::int64_t& sets_out, bool& same_out) {
      w.spawn(1, [&](Context ctx) -> ProcessTask {
        same_out = co_await uf.same_set(ctx, 0, 1);
        sets_out = co_await uf.num_sets(ctx);
      });
      w.run_solo(1);
    };

    bool same = false;
    std::int64_t sets = -1;
    query(sets, same);
    EXPECT_TRUE(same);           // the link CAS is visible...
    EXPECT_EQ(sets, kUniverse);  // ...but not yet counted: bound, not truth.

    if (crash_linker) {
      w.crash(0);
      query(sets, same);
      EXPECT_TRUE(same);
      EXPECT_EQ(sets, kUniverse);  // inflated by one, permanently
    } else {
      ASSERT_TRUE(w.run_solo(0).all_done);  // leaf write + refresh walk
      query(sets, same);
      EXPECT_TRUE(same);
      EXPECT_EQ(sets, kUniverse - 1);  // quiescent again: exact
    }
  }
}

// ---------------------------------------------------------------------------
// Union-find: fault campaign. Not wait-free but BOUNDED (a unite retries at
// most once per rival successful link, of which there are < U), so a
// schedule-independent per-pid budget still exists and the certifier's
// completion check (1) plus these generous bounds certify it.
// ---------------------------------------------------------------------------

struct UnionFindCampaignExec final : Execution {
  UnionFindCampaignExec() : w(4), mem(w, "uf"), uf(mem, 4, 6) {
    w.spawn(0, [this](Context ctx) -> ProcessTask {
      co_await uf.unite(ctx, 0, 1);
    });
    w.spawn(1, [this](Context ctx) -> ProcessTask {
      co_await uf.unite(ctx, 1, 2);
    });
    w.spawn(2, [this](Context ctx) -> ProcessTask {
      co_await uf.unite(ctx, 3, 4);
    });
    w.spawn(3, [this](Context ctx) -> ProcessTask {
      root = co_await uf.find(ctx, 2);
      sets = co_await uf.num_sets(ctx);
    });
  }
  World& world() override { return w; }
  World w;
  api::SimBackend::Mem mem;
  SimUF uf;
  std::int32_t root = -1;
  std::int64_t sets = -1;
};

TEST(UnionFindFault, CampaignStaysWithinTheBoundedRetryBudget) {
  std::uint64_t total_schedules = 0;
  for (const std::uint64_t base : fault_seeds::kUnionFindCampaignSeeds) {
    fault::CampaignOptions opts;
    opts.schedules = 60;
    opts.base_seed = base;
    opts.plan.never_crash = {3};  // the querier is the measured process
    const fault::CampaignResult result = fault::certify_wait_freedom(
        [] { return std::make_unique<UnionFindCampaignExec>(); },
        fault::step_bound_judge({{250, 120}, {250, 120}, {250, 120}, {20, 10}}),
        opts);
    EXPECT_TRUE(result.certified())
        << "base_seed=" << base << ": "
        << (result.violations.empty() ? "no schedules ran"
                                      : result.violations[0].what);
    total_schedules += result.schedules_run;
  }
  EXPECT_GE(total_schedules, 180u);
}

// ---------------------------------------------------------------------------
// Union-find: rt smoke.
// ---------------------------------------------------------------------------

TEST(UnionFindRt, ThreadsAgreeOnThePartition) {
  const int n = 4;
  UnionFindRT uf(n, 12);
  rt::parallel_run(n, [&](int pid) {
    uf.unite(pid, pid, pid + 4);
    uf.unite(pid, pid + 4, pid + 8);
  });
  Oracle oracle(12);
  for (int pid = 0; pid < n; ++pid) {
    oracle.unite(pid, pid + 4);
    oracle.unite(pid + 4, pid + 8);
  }
  for (std::int32_t a = 0; a < 12; ++a) {
    EXPECT_EQ(uf.find(0, a), oracle.rep[static_cast<std::size_t>(a)]);
    for (std::int32_t b = 0; b < 12; ++b) {
      EXPECT_EQ(uf.same_set(1, a, b), oracle.same(a, b));
    }
  }
  EXPECT_EQ(uf.num_sets(2), oracle.sets());
}

}  // namespace
}  // namespace apram
