// Tests for apram::obs — the offline trace analyzer (obs/analyze.hpp) that
// re-derives the paper's per-operation bounds from span-tagged traces, and
// the `events` JSON loader the apram-trace CLI feeds it with.
//
// The point of these tests: the bound checks must pass on REAL traces of the
// real algorithms (not hand-built fixtures) at several n, must count §6.2's
// closed forms exactly, and must FAIL when the trace is padded with extra
// accesses — a checker that cannot reject a bad trace verifies nothing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/sim_backend.hpp"
#include "obs/analyze.hpp"
#include "obs/contention.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "objects/polylog_queue.hpp"
#include "snapshot/lattice_scan.hpp"
#include "snapshot/tree_snapshot.hpp"

namespace apram::obs {
namespace {

using MaxL = MaxLattice<std::int64_t>;

// Runs every process through one optimized lattice Scan under a random
// schedule and returns the collected trace.
std::vector<TraceEvent> traced_scans(int n, std::uint64_t seed) {
  Tracer tracer(n, 1 << 12);
  sim::World w(n, {.tracer = &tracer});
  LatticeScanSim<MaxL> ls(w, n, "ls");
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&ls, pid](sim::Context ctx) -> sim::ProcessTask {
      (void)co_await ls.scan(ctx, pid);
    });
  }
  sim::RandomScheduler rs(seed);
  APRAM_CHECK(w.run(rs).all_done);
  return tracer.events();
}

// Runs every process through one TreeScan update + one scan.
std::vector<TraceEvent> traced_tree_ops(int n, std::uint64_t seed) {
  Tracer tracer(n, 1 << 12);
  sim::World w(n, {.tracer = &tracer});
  api::SimBackend::Mem mem(w, "t");
  snapshot::TreeScan<api::SimBackend, MaxL> tree(mem, n);
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&tree, pid](sim::Context ctx) -> sim::ProcessTask {
      co_await tree.update(ctx, 100 + pid);
      (void)co_await tree.scan(ctx);
    });
  }
  sim::RandomScheduler rs(seed);
  APRAM_CHECK(w.run(rs).all_done);
  return tracer.events();
}

// ------------------------------------------------------------- op recovery --

TEST(Analyze, RecoversExactScanCountsFromTheTraceAlone) {
  const int n = 4;
  const auto analysis = analyze(traced_scans(n, /*seed=*/3));
  EXPECT_EQ(analysis.num_pids, n);
  EXPECT_EQ(analysis.truncated_ops, 0u);
  EXPECT_EQ(analysis.open_ops, 0u);

  const auto scans = analysis.complete_of(OpKind::kScan);
  ASSERT_EQ(scans.size(), static_cast<std::size_t>(n));
  for (const OpStats* op : scans) {
    // §6.2 optimized closed forms, re-derived from span-tagged events with
    // no help from the registry counters: n²−1 reads, n+1 writes.
    EXPECT_EQ(op->reads, static_cast<std::uint64_t>(n * n - 1));
    EXPECT_EQ(op->writes, static_cast<std::uint64_t>(n + 1));
    EXPECT_EQ(op->cas_ops, 0u);
    EXPECT_EQ(op->phases, static_cast<std::uint64_t>(n + 1));
    EXPECT_TRUE(op->complete());
    EXPECT_LT(op->begin, op->end);
  }
}

TEST(Analyze, FindAndUntaggedAccessesBehave) {
  const std::vector<TraceEvent> evs = {
      {1, 0, EventKind::kOpBegin, -1,
       static_cast<std::uint64_t>(OpKind::kUser), 5},
      {2, 0, EventKind::kRead, 0, 0, 5},
      {3, 0, EventKind::kRead, 0, 0, 0},  // outside any span
      {4, 0, EventKind::kOpEnd, -1,
       static_cast<std::uint64_t>(OpKind::kUser), 5},
  };
  const auto a = analyze(evs);
  EXPECT_EQ(a.untagged_accesses, 1u);
  ASSERT_NE(a.find(5), nullptr);
  EXPECT_EQ(a.find(5)->reads, 1u);
  EXPECT_EQ(a.find(99), nullptr);
}

// ------------------------------------------------------------ bound checks --

TEST(Analyze, ScanBoundHoldsAtSeveralN) {
  for (int n : {2, 4, 8}) {
    const auto analysis = analyze(traced_scans(n, /*seed=*/7 + n));
    const auto report = check_scan_bound(analysis, n);
    EXPECT_TRUE(report.ok()) << format_report(report);
    EXPECT_EQ(report.checked, static_cast<std::uint64_t>(n)) << "n=" << n;
    EXPECT_EQ(report.excluded, 0u);
    EXPECT_EQ(report.formula, bound_formula("scan"));
  }
}

TEST(Analyze, TreeBoundsHoldAtSeveralN) {
  for (int n : {2, 4, 8}) {
    const auto analysis = analyze(traced_tree_ops(n, /*seed=*/11 + n));
    const auto update = check_tree_update_bound(analysis, n);
    EXPECT_TRUE(update.ok()) << format_report(update);
    EXPECT_EQ(update.checked, static_cast<std::uint64_t>(n)) << "n=" << n;
    const auto scan = check_tree_scan_bound(analysis);
    EXPECT_TRUE(scan.ok()) << format_report(scan);
    EXPECT_EQ(scan.checked, static_cast<std::uint64_t>(n)) << "n=" << n;
  }
}

TEST(Analyze, NDefaultsToTheTracesPidCount) {
  const int n = 4;
  const auto analysis = analyze(traced_scans(n, /*seed=*/23));
  const auto report = check_scan_bound(analysis);  // n not supplied
  EXPECT_TRUE(report.ok()) << format_report(report);
  EXPECT_EQ(report.checked, static_cast<std::uint64_t>(n));
}

// The negative control: a trace padded with extra tagged reads must FAIL the
// §6.2 bound. The real scans sit exactly at n²−1, so one forged read tips
// one op over.
TEST(Analyze, PaddedTraceFailsTheScanBound) {
  const int n = 4;
  auto events = traced_scans(n, /*seed=*/5);
  std::uint64_t victim = 0;
  for (const auto& ev : events) {
    if (ev.kind == EventKind::kOpBegin &&
        static_cast<OpKind>(ev.arg) == OpKind::kScan) {
      victim = ev.op;
      break;
    }
  }
  ASSERT_NE(victim, 0u);
  events.push_back({events.back().when + 1, 0, EventKind::kRead, 0, 0,
                    victim});

  const auto report = check_scan_bound(analyze(events), n);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].op, victim);
  EXPECT_NE(format_report(report).find("FAIL"), std::string::npos);
}

TEST(Analyze, TruncatedAndOpenOpsAreExcludedNotChecked) {
  const auto scan_arg = static_cast<std::uint64_t>(OpKind::kScan);
  const std::vector<TraceEvent> evs = {
      // Op 1: truncated (marker, no surviving begin) — 1 read survived of
      // an unknown total; counting it would silently under-check.
      {1, 0, EventKind::kTruncated, -1, 0, 1},
      {2, 0, EventKind::kRead, 0, 0, 1},
      {3, 0, EventKind::kOpEnd, -1, scan_arg, 1},
      // Op 2: begun, never ended (crashed mid-op).
      {4, 1, EventKind::kOpBegin, -1, scan_arg, 2},
      {5, 1, EventKind::kRead, 0, 0, 2},
  };
  const auto a = analyze(evs);
  EXPECT_EQ(a.truncated_ops, 1u);
  EXPECT_EQ(a.open_ops, 1u);
  const auto report = check_scan_bound(a, 2);
  EXPECT_TRUE(report.ok());  // vacuous: nothing eligible…
  EXPECT_EQ(report.checked, 0u);
  EXPECT_EQ(report.excluded, 2u);  // …and both exclusions are reported
}

TEST(Analyze, AgreementBoundChecksOutputOps) {
  const auto out_arg = static_cast<std::uint64_t>(OpKind::kOutput);
  std::vector<TraceEvent> evs = {
      {1, 0, EventKind::kOpBegin, -1, out_arg, 1},
  };
  for (std::uint64_t i = 0; i < 10; ++i) {
    evs.push_back({2 + i, 0, EventKind::kRead, 0, 0, 1});
  }
  evs.push_back({20, 0, EventKind::kOpEnd, -1, out_arg, 1});
  // Theorem 5 with n=2, log2(Δ/ε)=3: (2n+1)(log_ratio+3) + 8n = 46.
  const auto ok = check_agreement_bound(analyze(evs), /*log_ratio=*/3.0,
                                        /*n=*/2);
  EXPECT_TRUE(ok.ok()) << format_report(ok);
  EXPECT_EQ(ok.checked, 1u);

  for (std::uint64_t i = 0; i < 40; ++i) {  // now 50 accesses > 46
    evs.insert(evs.end() - 1, {12 + i, 0, EventKind::kRead, 0, 0, 1});
  }
  const auto bad = check_agreement_bound(analyze(evs), /*log_ratio=*/3.0,
                                         /*n=*/2);
  EXPECT_FALSE(bad.ok());
}

TEST(Analyze, BoundFormulaNamesAreStable) {
  // The CLI requires --bound name=formula to match these strings exactly —
  // they are the contract between CI invocations and the analyzer.
  EXPECT_EQ(bound_formula("scan"), "n^2-1");
  EXPECT_EQ(bound_formula("tree_update"), "1+8ceil(log2n)");
  EXPECT_EQ(bound_formula("tree_scan"), "1");
  EXPECT_EQ(bound_formula("agreement"), "(2n+1)(log2(delta/eps)+3)+8n");
  EXPECT_EQ(bound_formula("queue_op"), "clog2n");
  EXPECT_EQ(bound_formula("nope"), "");
}

TEST(Analyze, QueueOpBoundHoldsOnRealTracedRuns) {
  for (int n : {2, 4, 8}) {
    Tracer tracer(n, 1 << 12);
    sim::World w(n, {.tracer = &tracer});
    api::SimBackend::Mem mem(w, "q");
    PolylogQueue<api::SimBackend> q(mem, n);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&q, pid](sim::Context ctx) -> sim::ProcessTask {
        co_await q.enqueue(ctx, pid * 10);
        (void)co_await q.dequeue(ctx);
      });
    }
    sim::RandomScheduler rs(/*seed=*/17 + n);
    APRAM_CHECK(w.run(rs).all_done);

    const auto a = analyze(tracer.events());
    const auto report = check_queue_op_bound(a, n);
    EXPECT_TRUE(report.ok()) << "n=" << n << ": " << format_report(report);
    // One enqueue and one dequeue per process must have been checked.
    EXPECT_EQ(report.checked, static_cast<std::uint64_t>(2 * n));
    EXPECT_EQ(report.formula, bound_formula("queue_op"));
  }
}

// --------------------------------------------------------------- JSON load --

TEST(Analyze, LoadEventsJsonRoundTripsThroughTheMetricsArtifact) {
  const int n = 4;
  Registry reg;
  Tracer tracer(n, 1 << 12);
  {
    sim::World w(n, {.metrics = &reg, .tracer = &tracer});
    LatticeScanSim<MaxL> ls(w, n, "ls");
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&ls, pid](sim::Context ctx) -> sim::ProcessTask {
        (void)co_await ls.scan(ctx, pid);
      });
    }
    sim::RandomScheduler rs(2);
    APRAM_CHECK(w.run(rs).all_done);
  }
  const std::string path = "analyze_test.metrics.json";
  write_metrics_json(path, reg, &tracer, "analyze_test");

  const auto loaded = load_events_json(path);
  const auto direct = tracer.events();
  ASSERT_EQ(loaded.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(loaded[i].when, direct[i].when);
    EXPECT_EQ(loaded[i].pid, direct[i].pid);
    EXPECT_EQ(loaded[i].kind, direct[i].kind);
    EXPECT_EQ(loaded[i].object, direct[i].object);
    EXPECT_EQ(loaded[i].arg, direct[i].arg);
    EXPECT_EQ(loaded[i].op, direct[i].op);
  }

  // End-to-end: the artifact round-trip still satisfies the §6.2 bound.
  const auto report = check_scan_bound(analyze(loaded), n);
  EXPECT_TRUE(report.ok()) << format_report(report);
  EXPECT_EQ(report.checked, static_cast<std::uint64_t>(n));
  std::remove(path.c_str());
}

TEST(Analyze, MetricsJsonHasEventsProbesTheArtifactShape) {
  Registry reg;
  reg.counter("x").add(1);
  Tracer tracer(1, 8);
  tracer.emit({1, 0, EventKind::kUser, 0, 0});

  const std::string with = "analyze_test.with_events.json";
  const std::string without = "analyze_test.without_events.json";
  write_metrics_json(with, reg, &tracer, "probe");
  write_metrics_json(without, reg, nullptr, "probe");
  // The probe is what lets apram-trace fall back to gauge-derived analysis
  // instead of aborting on tracer-less artifacts (BENCH_t1.json et al.).
  EXPECT_TRUE(metrics_json_has_events(with));
  EXPECT_FALSE(metrics_json_has_events(without));
  EXPECT_FALSE(metrics_json_has_events("analyze_test.does_not_exist.json"));
  std::remove(with.c_str());
  std::remove(without.c_str());
}

TEST(Analyze, LoadMetricsJsonReadsCountersGaugesAndHistograms) {
  Registry reg;
  reg.counter("ops.total").add(42);
  reg.gauge("depth").set(-3);
  Histogram& h = reg.histogram("lat");
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  const std::string path = "analyze_test.doc.json";
  write_metrics_json(path, reg, nullptr, "doc-test");

  const MetricsDoc doc = load_metrics_json(path);
  EXPECT_EQ(doc.name, "doc-test");
  EXPECT_EQ(doc.counters.at("ops.total"), 42u);
  EXPECT_EQ(doc.gauges.at("depth"), -3);
  const auto& lat = doc.histograms.at("lat");
  EXPECT_EQ(lat.count, 100u);
  EXPECT_EQ(lat.sum, 5050u);
  EXPECT_NEAR(lat.mean, 50.5, 0.01);
  EXPECT_GT(lat.p99, lat.p50);
  std::remove(path.c_str());
}

// ------------------------------------------------------ heatmap/help graph --

TEST(Analyze, HeatmapClassifiesWalkOutcomesFromSyntheticEvents) {
  const auto upd = static_cast<std::uint64_t>(OpKind::kTreeUpdate);
  const auto refresh = static_cast<std::uint64_t>(Phase::kRefresh);
  const std::vector<TraceEvent> evs = {
      // Op 1 (pid 0): level 0 installs first-try on register 10; level 1
      // loses once then installs on register 11 (a second refresh).
      {1, 0, EventKind::kOpBegin, -1, upd, 1},
      {2, 0, EventKind::kPhase, 0, refresh, 1},
      {3, 0, EventKind::kCas, 10, 1, 1},
      {4, 0, EventKind::kPhase, 1, refresh, 1},
      {5, 0, EventKind::kCas, 11, 0, 1},
      {6, 0, EventKind::kCas, 11, 1, 1},
      {7, 0, EventKind::kOpEnd, -1, upd, 1},
      // Op 2 (pid 1): level 1 loses both attempts — fully helped.
      {8, 1, EventKind::kOpBegin, -1, upd, 2},
      {9, 1, EventKind::kPhase, 1, refresh, 2},
      {10, 1, EventKind::kCas, 11, 0, 2},
      {11, 1, EventKind::kCas, 11, 0, 2},
      {12, 1, EventKind::kHelp, 11, 0, 2},
      {13, 1, EventKind::kOpEnd, -1, upd, 2},
  };
  const ContentionHeatmap hm = contention_heatmap(evs);
  ASSERT_EQ(hm.levels.size(), 2u);
  EXPECT_EQ(hm.refresh_ops, 2u);
  EXPECT_EQ(hm.levels[0].first_refresh, 1u);
  EXPECT_EQ(hm.levels[0].cas_attempts, 1u);
  EXPECT_EQ(hm.levels[0].cas_failures, 0u);
  EXPECT_EQ(hm.levels[1].second_refresh, 1u);
  EXPECT_EQ(hm.levels[1].helped, 1u);
  EXPECT_EQ(hm.levels[1].cas_attempts, 4u);
  EXPECT_EQ(hm.levels[1].cas_failures, 3u);
  // Per-node rows keyed by the CAS target's register id.
  EXPECT_EQ(hm.nodes.at(10).first_refresh, 1u);
  EXPECT_EQ(hm.nodes.at(11).walks(), 2u);
  EXPECT_EQ(hm.node_level.at(11), 1);
  // Level 1's double-refresh rate (100%) dominates level 0's (0%).
  EXPECT_EQ(hm.peak_level(), 1);
}

TEST(Analyze, HeatmapCrossChecksTheOnlineContentionCounters) {
  // The same first/second/helped split, derived two independent ways — from
  // the trace's refresh-phase grammar and from the NodeContention counters
  // the tree bumps online — must agree level by level at quiescence.
  const int n = 8;
  constexpr int kOpsPerPid = 8;
  Tracer tracer(n, 1 << 14);
  sim::World w(n, {.tracer = &tracer});
  api::SimBackend::Mem mem(w, "t");
  snapshot::TreeScan<api::SimBackend, MaxL> tree(mem, n);
  for (int pid = 0; pid < n; ++pid) {
    w.spawn(pid, [&tree, pid](sim::Context ctx) -> sim::ProcessTask {
      for (int i = 0; i < kOpsPerPid; ++i) {
        co_await tree.update(ctx, pid * 100 + i);
      }
    });
  }
  sim::RandomScheduler rs(/*seed=*/29);
  APRAM_CHECK(w.run(rs).all_done);
  ASSERT_EQ(tracer.dropped(), 0u);

  const ContentionHeatmap hm = contention_heatmap(tracer.events());
  EXPECT_EQ(hm.refresh_ops,
            static_cast<std::uint64_t>(n) * kOpsPerPid);
  if (!kContentionEnabled) return;  // the online half is compiled out
  const NodeContention& online = tree.contention();
  ASSERT_EQ(static_cast<int>(hm.levels.size()), online.num_levels());
  for (std::size_t lvl = 0; lvl < hm.levels.size(); ++lvl) {
    const ContentionTotals a = hm.levels[lvl];
    const ContentionTotals b = online.level_totals(static_cast<int>(lvl));
    EXPECT_EQ(a.first_refresh, b.first_refresh) << "level " << lvl;
    EXPECT_EQ(a.second_refresh, b.second_refresh) << "level " << lvl;
    EXPECT_EQ(a.helped, b.helped) << "level " << lvl;
    // The online side DERIVES attempts/failures from outcomes under the
    // double-refresh lemma; the trace COUNTS real kCas events. Equality here
    // is the executed-code proof of the lemma's (1,0)/(2,1)/(2,2) table.
    EXPECT_EQ(a.cas_attempts, b.cas_attempts) << "level " << lvl;
    EXPECT_EQ(a.cas_failures, b.cas_failures) << "level " << lvl;
  }
}

TEST(Analyze, HelpGraphCountsU2EdgesAndIgnoresFarrayHelps) {
  const auto exec = static_cast<std::uint64_t>(OpKind::kU2Execute);
  const auto upd = static_cast<std::uint64_t>(OpKind::kTreeUpdate);
  const std::vector<TraceEvent> evs = {
      // Op 1 (pid 0): a u2 op that helped pids 1 and 2.
      {1, 0, EventKind::kOpBegin, -1, exec, 1},
      {2, 0, EventKind::kHelp, 1, 0, 1},
      {3, 0, EventKind::kHelp, 2, 0, 1},
      {4, 0, EventKind::kOpEnd, -1, exec, 1},
      // Op 2 (pid 1): helped pid 2.
      {5, 1, EventKind::kOpBegin, -1, exec, 2},
      {6, 1, EventKind::kHelp, 2, 0, 2},
      {7, 1, EventKind::kOpEnd, -1, exec, 2},
      // Op 3 (pid 2): a farray update; its kHelp carries a tree NODE id in
      // `object`, not a pid — must not become an edge.
      {8, 2, EventKind::kOpBegin, -1, upd, 3},
      {9, 2, EventKind::kHelp, 5, 0, 3},
      {10, 2, EventKind::kOpEnd, -1, upd, 3},
  };
  const HelpGraph g = help_graph(evs);
  EXPECT_EQ(g.ops_seen, 2u);
  EXPECT_EQ(g.total_helps, 3u);
  EXPECT_EQ(g.num_pids, 3);
  EXPECT_EQ(g.edges.at({0, 1}), 1u);
  EXPECT_EQ(g.edges.at({0, 2}), 1u);
  EXPECT_EQ(g.edges.at({1, 2}), 1u);
  EXPECT_EQ(g.max_distinct_helped, 2u);
  EXPECT_EQ(g.given(0), 2u);
  EXPECT_EQ(g.received(2), 2u);
  EXPECT_EQ(g.given(2), 0u);
}

TEST(AnalyzeDeath, LoadAbortsOnGarbageAndMissingFiles) {
  const std::string path = "analyze_test.garbage.json";
  {
    std::ofstream out(path);
    out << "{ \"name\": \"no events key here\" }";
  }
  EXPECT_DEATH((void)load_events_json(path), "");
  EXPECT_DEATH((void)load_events_json("analyze_test.does_not_exist.json"),
               "");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace apram::obs
