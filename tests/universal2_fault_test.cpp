// universal2 under fault injection (stress tier; nightly in CI).
//
// The normalized fast/slow-path simulator's whole reason to exist is that
// announced operations survive their owner: a process that crashes or
// stalls after publishing its state record is finished by helpers, and a
// dead announce parked at the help-queue head must not wedge anyone else
// (WaitFreeSim's self-help step). These campaigns drive exactly those
// cases:
//
//   * seeded certify_wait_freedom campaigns over the counter and the
//     sorted-list set, with crash/stall/burst plans from
//     fault_seeds::kU2CampaignSeeds — every non-crashed process must
//     complete, and the object state must be exactly consistent with the
//     applied-evidence (no lost, partial, or doubled operations)
//   * a deterministic crash sweep over every access offset of a forced
//     slow-path insert (mid-bakery-scan, mid-announce, mid-self-help, …)
//   * an rt stall test parking a slow-path thread mid-operation while a
//     third process keeps operating through it (queue-head stall)
//
// Artifacts land in $APRAM_FAULT_ARTIFACT_DIR when set (the CI job uploads
// that directory on failure) and in the gtest temp dir otherwise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/rt_backend.hpp"
#include "api/sim_backend.hpp"
#include "fault/certifier.hpp"
#include "fault/rt_inject.hpp"
#include "fault_seeds.hpp"
#include "rt/thread_harness.hpp"
#include "sim/world.hpp"
#include "universal2/counter_rep.hpp"
#include "universal2/linked_list.hpp"
#include "universal2/rt.hpp"

namespace apram::universal2 {
namespace {

using sim::Context;
using sim::Execution;
using sim::ProcessTask;
using sim::World;

using SimCounter = Counter2<api::SimBackend>;
using SimSet = SortedSet<api::SimBackend>;

std::string artifact_dir(const std::string& subdir) {
  const char* env = std::getenv("APRAM_FAULT_ARTIFACT_DIR");
  const std::string base =
      env != nullptr ? std::string(env) : ::testing::TempDir() + "apram-fault";
  return base + "/" + subdir;
}

// ---------------------------------------------------------------------------
// Counter campaign. Three mutators (pid p: two incs of p+1) and a measured
// reader (pid 3, never crashed). The judge re-derives consistency from the
// cell's applied-table: the value must equal exactly the sum of the applied
// evidence — an operation that took effect without being recorded, was
// recorded without taking effect, or took effect twice all break the
// equation — and the reader's two reads plus the final value must be
// monotone (inc-only workload).
// ---------------------------------------------------------------------------

struct CounterCampaignExec final : Execution {
  explicit CounterCampaignExec(SimCounter::Config cfg)
      : w(4), mem(w, "u2"), c(mem, 4, "c", cfg) {
    for (int pid = 0; pid < 3; ++pid) {
      w.spawn(pid, [this, pid](Context ctx) -> ProcessTask {
        co_await c.inc(ctx, pid + 1);
        co_await c.inc(ctx, pid + 1);
      });
    }
    w.spawn(3, [this](Context ctx) -> ProcessTask {
      reads[0] = co_await c.read(ctx);
      reads[1] = co_await c.read(ctx);
    });
  }
  World& world() override { return w; }
  World w;
  api::SimBackend::Mem mem;
  SimCounter c;
  std::int64_t reads[2] = {-1, -1};
};

fault::Judge counter_judge() {
  return [](Execution& e) -> std::string {
    auto& x = static_cast<CounterCampaignExec&>(e);
    const auto cell = x.c.rep().cell_register().peek();
    std::int64_t expected = 0;
    for (int p = 0; p < 3; ++p) {
      const std::uint64_t applied = cell.applied[static_cast<std::size_t>(p)];
      if (applied > 2) return "pid " + std::to_string(p) + " over-applied";
      expected += static_cast<std::int64_t>(applied) * (p + 1);
    }
    if (cell.value != expected) {
      return "value " + std::to_string(cell.value) +
             " != applied evidence " + std::to_string(expected);
    }
    // The reader never crashes: both reads completed, inc-only => monotone.
    if (x.reads[0] < 0 || x.reads[1] < x.reads[0] ||
        cell.value < x.reads[1]) {
      return "non-monotone reads " + std::to_string(x.reads[0]) + "," +
             std::to_string(x.reads[1]) + " final " +
             std::to_string(cell.value);
    }
    return "";
  };
}

void run_counter_campaign(SimCounter::Config cfg, const std::string& subdir) {
  std::uint64_t total_schedules = 0;
  std::uint64_t total_faults = 0;
  for (const std::uint64_t base : fault_seeds::kU2CampaignSeeds) {
    fault::CampaignOptions opts;
    opts.schedules = 150;
    opts.base_seed = base;
    opts.plan.max_crashes = 2;
    opts.plan.never_crash = {3};  // the reader is the measured process
    opts.artifact_dir = artifact_dir(subdir);
    const fault::CampaignResult result = fault::certify_wait_freedom(
        [cfg] { return std::make_unique<CounterCampaignExec>(cfg); },
        counter_judge(), opts);
    EXPECT_TRUE(result.certified())
        << "base_seed=" << base << ": "
        << (result.violations.empty() ? "no schedules ran"
                                      : result.violations[0].what);
    total_schedules += result.schedules_run;
    total_faults += result.crashes_fired + result.stall_deflections +
                    result.burst_grants;
  }
  EXPECT_GE(total_schedules, 450u);
  EXPECT_GT(total_faults, 0u);  // an adversary that never bites proves little
}

TEST(U2FaultCampaign, CounterFastPathSurvivesCrashesAndStalls) {
  SimCounter::Config cfg;  // defaults: fast path + periodic helping
  cfg.help_period = 2;
  run_counter_campaign(cfg, "u2-counter-fast");
}

TEST(U2FaultCampaign, CounterForcedSlowPathSurvivesCrashesAndStalls) {
  SimCounter::Config cfg;
  cfg.max_fast_attempts = 0;  // every mutation announces; helpers race
  cfg.help_period = 1;
  run_counter_campaign(cfg, "u2-counter-slow");
}

// ---------------------------------------------------------------------------
// Sorted-list campaign. Each worker inserts a private key, then fights over
// a shared key. Private keys are never removed, so: acked => present, and
// present => the applied evidence exists (the insert's node is reachable
// and unmarked). The measured process (pid 3) additionally checks its own
// acks in-line.
// ---------------------------------------------------------------------------

struct SetCampaignExec final : Execution {
  explicit SetCampaignExec(SimSet::Config cfg)
      : w(4), mem(w, "u2"), s(mem, 4, /*capacity_per_proc=*/64, "set", cfg) {
    for (int pid = 0; pid < 4; ++pid) {
      w.spawn(pid, [this, pid](Context ctx) -> ProcessTask {
        acked[pid] = co_await s.insert(ctx, 100 + pid);
        shared_acks[pid] += co_await s.insert(ctx, 7);
        shared_acks[pid] -= co_await s.remove(ctx, 7);
        (void)co_await s.contains(ctx, 7);
      });
    }
  }
  World& world() override { return w; }
  World w;
  api::SimBackend::Mem mem;
  SimSet s;
  std::int64_t acked[4] = {0, 0, 0, 0};
  std::int64_t shared_acks[4] = {0, 0, 0, 0};
};

fault::Judge set_judge() {
  return [](Execution& e) -> std::string {
    auto& x = static_cast<SetCampaignExec&>(e);
    std::vector<std::int64_t> keys;
    x.w.spawn(3, [&x, &keys](Context ctx) -> ProcessTask {
      keys = co_await x.s.rep().snapshot_keys(ctx);
    });
    x.w.run_solo(3);
    if (!std::is_sorted(keys.begin(), keys.end())) return "keys not sorted";
    if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
      return "duplicate key";
    }
    for (int p = 0; p < 4; ++p) {
      const bool present =
          std::find(keys.begin(), keys.end(), 100 + p) != keys.end();
      // An acked private insert can never be lost (nobody removes it).
      if (x.acked[p] == 1 && !present) {
        return "acked insert of key " + std::to_string(100 + p) + " lost";
      }
    }
    // pid 3 never crashes: its private insert must have been acked.
    if (x.acked[3] != 1) return "survivor's insert not acknowledged";
    return "";
  };
}

TEST(U2FaultCampaign, SortedListSurvivesCrashesAndStalls) {
  for (const bool forced : {false, true}) {
    SimSet::Config cfg;
    if (forced) {
      cfg.max_fast_attempts = 0;
      cfg.help_period = 1;
    }
    std::uint64_t total_schedules = 0;
    for (const std::uint64_t base : fault_seeds::kU2CampaignSeeds) {
      fault::CampaignOptions opts;
      opts.schedules = 100;
      opts.base_seed = base;
      opts.plan.max_crashes = 2;
      opts.plan.never_crash = {3};
      opts.artifact_dir =
          artifact_dir(forced ? "u2-set-slow" : "u2-set-fast");
      const fault::CampaignResult result = fault::certify_wait_freedom(
          [cfg] { return std::make_unique<SetCampaignExec>(cfg); },
          set_judge(), opts);
      EXPECT_TRUE(result.certified())
          << "forced=" << forced << " base_seed=" << base << ": "
          << (result.violations.empty() ? "no schedules ran"
                                        : result.violations[0].what);
      total_schedules += result.schedules_run;
    }
    EXPECT_GE(total_schedules, 300u);
  }
}

// ---------------------------------------------------------------------------
// Deterministic crash sweep: kill a forced-slow-path inserter at every
// access offset — before the record install, mid-bakery-scan, right after
// the announce CAS, mid-self-help — then let a survivor run. The insert is
// all-or-nothing and the survivor is never blocked by the corpse at the
// queue head.
// ---------------------------------------------------------------------------

TEST(U2Fault, InserterCrashSweepIsAllOrNothing) {
  const int n = 3;
  for (std::uint64_t at = 0; at < 40; ++at) {
    World w(n, {.crashes = {{.pid = 1, .at_access = at}}});
    api::SimBackend::Mem mem(w, "u2");
    SimSet::Config cfg;
    cfg.max_fast_attempts = 0;
    cfg.help_period = 1;
    SimSet s(mem, n, /*capacity_per_proc=*/16, "set", cfg);
    w.spawn(1, [&](Context ctx) -> ProcessTask {
      (void)co_await s.insert(ctx, 42);
    });
    w.run_solo(1);  // crashes somewhere inside (or completes at large `at`)

    // The survivor operates through whatever pid 1 left behind (possibly a
    // dead announce at the queue head) and must finish.
    std::int64_t own = -1;
    std::int64_t seen42 = -1;
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      own = co_await s.insert(ctx, 10);
      seen42 = co_await s.contains(ctx, 42);
    });
    w.run_solo(0);
    EXPECT_EQ(own, 1) << "at=" << at;

    std::vector<std::int64_t> keys;
    w.spawn(2, [&](Context ctx) -> ProcessTask {
      keys = co_await s.rep().snapshot_keys(ctx);
    });
    w.run_solo(2);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end())) << "at=" << at;
    EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
        << "at=" << at;
    const bool present =
        std::find(keys.begin(), keys.end(), 42) != keys.end();
    EXPECT_EQ(seen42, present ? 1 : 0) << "at=" << at;
    EXPECT_TRUE(std::find(keys.begin(), keys.end(), 10) != keys.end())
        << "at=" << at;
    // All-or-nothing: 42 appears at most once (checked by the duplicate
    // scan above) and only with its full insert applied — if the survivor's
    // help completed the crashed insert, contains() agrees.
  }
}

// ---------------------------------------------------------------------------
// Queue-head stall on real threads: park a forced-slow-path thread
// mid-operation (its announce may sit at the queue head) and drive another
// process through it from the main thread, using a spare pid slot.
// ---------------------------------------------------------------------------

TEST(U2FaultRt, StalledSlowPathThreadDoesNotBlockOthers) {
  const int n = 4;  // threads 0..2 run; pid 3 is the while-stalled driver
  const int kOps = 40;
  for (const std::uint64_t stall_after : {3u, 7u, 11u, 19u}) {
    Counter2RT::Config cfg;
    cfg.max_fast_attempts = 0;
    cfg.help_period = 1;
    Counter2RT c(n, cfg);
    fault::RtInjector inj(fault::RtInjectOptions{});
    c.attach_injector(&inj);
    std::int64_t while_stalled_sum = 0;
    rt::run_with_stall(
        /*num_threads=*/3,
        [&](int pid) {
          for (int i = 0; i < kOps; ++i) {
            c.inc(pid, 1);
          }
        },
        inj, /*victim=*/1, stall_after,
        [&]() {
          // The victim is parked mid-slow-path; pid 3 must still finish.
          for (int i = 0; i < 5; ++i) {
            c.inc(3, 1);
          }
          while_stalled_sum = c.read(3);
          EXPECT_GE(while_stalled_sum, 5);
        });
    EXPECT_EQ(c.read(0), 3 * kOps + 5) << "stall_after=" << stall_after;
  }
}

}  // namespace
}  // namespace apram::universal2
