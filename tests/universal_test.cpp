// Tests for the Figure 4 universal construction and the objects built on it:
// counter, grow-set, max-register / Lamport clock, and the FastCounter
// type-optimized variant. Correctness is checked sequentially, under random
// schedules (invariant-based), under crashes (wait-freedom), and for the
// §5.4 O(n²) step cost.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/universal.hpp"
#include "obs/metrics.hpp"
#include "objects/counter.hpp"
#include "objects/fast_counter.hpp"
#include "objects/grow_set.hpp"
#include "objects/logical_clock.hpp"
#include "sim/scheduler.hpp"
#include "snapshot/scan_stats.hpp"

namespace apram {
namespace {

using sim::Context;
using sim::ProcessTask;
using sim::World;

// ---------------------------------------------------------------------------
// Sequential behaviour through the full construction
// ---------------------------------------------------------------------------

TEST(UniversalCounter, SequentialSemantics) {
  World w(1);
  CounterSim c(w, 1);
  std::int64_t v1 = -1, v2 = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await c.inc(ctx, 5);
    co_await c.dec(ctx, 2);
    v1 = co_await c.read(ctx);
    co_await c.reset(ctx, 100);
    co_await c.inc(ctx, 1);
    v2 = co_await c.read(ctx);
  });
  EXPECT_TRUE(w.run_solo(0).all_done);
  EXPECT_EQ(v1, 3);
  EXPECT_EQ(v2, 101);
}

TEST(UniversalCounter, TwoProcessesSequentialComposition) {
  World w(2);
  CounterSim c(w, 2);
  std::int64_t seen = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask { co_await c.inc(ctx, 7); });
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    seen = co_await c.read(ctx);
  });
  w.run_solo(0);
  w.run_solo(1);
  EXPECT_EQ(seen, 7);
}

TEST(UniversalGrowSet, SequentialSemantics) {
  World w(1);
  GrowSetSim s(w, 1);
  bool has3 = false, has9 = true;
  std::int64_t size = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await s.insert(ctx, 3);
    co_await s.insert(ctx, 4);
    co_await s.insert(ctx, 3);
    has3 = co_await s.has(ctx, 3);
    has9 = co_await s.has(ctx, 9);
    size = co_await s.size(ctx);
  });
  w.run_solo(0);
  EXPECT_TRUE(has3);
  EXPECT_FALSE(has9);
  EXPECT_EQ(size, 2);
}

// ---------------------------------------------------------------------------
// Concurrent invariants under random schedules
// ---------------------------------------------------------------------------

TEST(UniversalCounter, IncrementsNeverLostUnderRandomSchedules) {
  // n processes each do k increments of 1 concurrently, then one process
  // reads: the final value must be exactly n*k (inc/dec commute, so the
  // linearization must contain all of them exactly once).
  const int n = 3, k = 4;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    World w(n);
    CounterSim c(w, n);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        for (int i = 0; i < k; ++i) co_await c.inc(ctx, 1);
        (void)pid;
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);

    // Check the final linearized value via a fresh read by process 0.
    std::int64_t total = -1;
    World w2(1);  // dummy to satisfy API symmetry; reuse w's object instead
    (void)w2;
    // Spawn a second-phase reader in the same world.
    // (Processes are one-shot; create a reader program on pid 0's behalf is
    // not possible — instead recompute from the object's current history.)
    const auto hist = c.universal().current_history();
    std::vector<CounterSpec::Invocation> invs;
    for (const auto* e : hist) invs.push_back(e->inv);
    total = run_sequential<CounterSpec>(invs).final_state;
    EXPECT_EQ(total, n * k) << "seed=" << seed;
  }
}

TEST(UniversalCounter, ReadsAreMonotoneUnderIncOnlyWorkload) {
  // With only increments, any process's successive reads must be
  // non-decreasing, and each read must be at least the number of increments
  // the reader itself completed.
  const int n = 3;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    World w(n);
    CounterSim c(w, n);
    std::vector<std::vector<std::int64_t>> reads(static_cast<std::size_t>(n));
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        for (int i = 0; i < 3; ++i) {
          co_await c.inc(ctx, 1);
          const std::int64_t r = co_await c.read(ctx);
          reads[static_cast<std::size_t>(pid)].push_back(r);
        }
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);
    for (int pid = 0; pid < n; ++pid) {
      const auto& rs = reads[static_cast<std::size_t>(pid)];
      for (std::size_t i = 0; i < rs.size(); ++i) {
        EXPECT_GE(rs[i], static_cast<std::int64_t>(i) + 1);
        EXPECT_LE(rs[i], static_cast<std::int64_t>(n) * 3);
        if (i > 0) {
          EXPECT_GE(rs[i], rs[i - 1]);
        }
      }
    }
  }
}

TEST(UniversalGrowSet, InsertsAreNeverLost) {
  const int n = 3;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    World w(n);
    GrowSetSim s(w, n);
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(n), -1);
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        co_await s.insert(ctx, pid * 10);
        co_await s.insert(ctx, pid * 10 + 1);
        const bool mine = co_await s.has(ctx, pid * 10);
        EXPECT_TRUE(mine);  // own insert must be visible to own query
        sizes[static_cast<std::size_t>(pid)] = co_await s.size(ctx);
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);
    for (auto size : sizes) {
      EXPECT_GE(size, 2);      // saw at least its own two inserts
      EXPECT_LE(size, 2 * n);  // and no phantom elements
    }
  }
}

TEST(UniversalCounter, ResetOverwritesConcurrentIncrements) {
  // Process 1 resets to 0 *after* all of process 0's increments completed:
  // any later read must not see the increments resurrected.
  World w(3);
  CounterSim c(w, 3);
  std::int64_t after = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    for (int i = 0; i < 3; ++i) co_await c.inc(ctx, 10);
  });
  w.spawn(1, [&](Context ctx) -> ProcessTask { co_await c.reset(ctx, 0); });
  w.spawn(2, [&](Context ctx) -> ProcessTask {
    after = co_await c.read(ctx);
  });
  w.run_solo(0);
  w.run_solo(1);
  w.run_solo(2);
  EXPECT_EQ(after, 0);
}

// ---------------------------------------------------------------------------
// Wait-freedom under crashes
// ---------------------------------------------------------------------------

TEST(UniversalCounter, SurvivorCompletesDespiteCrashes) {
  const int n = 4;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    World w(n);
    CounterSim c(w, n);
    std::int64_t survivor_read = -1;
    for (int pid = 0; pid + 1 < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        for (int i = 0; i < 50; ++i) co_await c.inc(ctx, 1);
        (void)pid;
      });
    }
    w.spawn(n - 1, [&](Context ctx) -> ProcessTask {
      co_await c.inc(ctx, 1);
      survivor_read = co_await c.read(ctx);
    });
    sim::RandomScheduler rnd(seed);
    sim::CrashingScheduler sched(
        rnd, {{20 + seed, 0}, {30 + seed, 1}, {40 + seed, 2}});
    const auto r = w.run(sched);
    EXPECT_TRUE(r.all_done);
    EXPECT_GE(survivor_read, 1) << "seed=" << seed;
  }
}

// ---------------------------------------------------------------------------
// §5.4 cost: O(n²) shared accesses per operation, independent of schedule.
// ---------------------------------------------------------------------------

TEST(UniversalCounter, PerOperationSharedAccessCostIsScanPlusOneWrite) {
  for (int n : {1, 2, 4, 8}) {
    obs::Registry registry;
    World w(n, {.metrics = &registry});
    CounterSim c(w, n);
    w.spawn(0, [&](Context ctx) -> ProcessTask {
      co_await c.inc(ctx, 1);
    });
    obs::CounterDelta reads(w.metrics_reads(0));
    obs::CounterDelta writes(w.metrics_writes(0));
    w.run_solo(0);
    EXPECT_EQ(reads.delta(), expected_scan_reads(n, ScanMode::kOptimized));
    EXPECT_EQ(writes.delta(),
              expected_scan_writes(n, ScanMode::kOptimized) + 1);
  }
}

// ---------------------------------------------------------------------------
// Lamport clock
// ---------------------------------------------------------------------------

TEST(LamportClock, TickIsStrictlyIncreasingPerProcess) {
  World w(2);
  LamportClockSim clk(w, 2);
  std::vector<std::int64_t> stamps;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    for (int i = 0; i < 4; ++i) {
      const std::int64_t t = co_await clk.tick(ctx);
      stamps.push_back(t);
    }
  });
  w.run_solo(0);
  ASSERT_EQ(stamps.size(), 4u);
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_GT(stamps[i], stamps[i - 1]);
  }
}

TEST(LamportClock, ObserveAdvancesPastMessageTimestamp) {
  World w(1);
  LamportClockSim clk(w, 1);
  std::int64_t t = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    t = co_await clk.observe(ctx, 41);
  });
  w.run_solo(0);
  EXPECT_GE(t, 42);
}

TEST(LamportClock, HappenedBeforeIsRespectedAcrossProcesses) {
  // P0 ticks (event a), then P1 observes a's timestamp (message receipt):
  // the receipt's stamp must exceed a's.
  World w(2);
  LamportClockSim clk(w, 2);
  std::int64_t ta = -1, tb = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask { ta = co_await clk.tick(ctx); });
  w.run_solo(0);
  w.spawn(1, [&](Context ctx) -> ProcessTask {
    tb = co_await clk.observe(ctx, ta);
  });
  w.run_solo(1);
  EXPECT_GT(tb, ta);
}

TEST(LamportClock, StampsAreGloballyUniqueUnderConcurrency) {
  const int n = 3;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    World w(n);
    LamportClockSim clk(w, n);
    std::vector<LamportClockSim::Stamp> all;
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&](Context ctx) -> ProcessTask {
        for (int i = 0; i < 3; ++i) {
          const auto st = co_await clk.stamp(ctx);
          all.push_back(st);
        }
      });
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);
    auto sorted = all;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << "duplicate (time, pid) stamp, seed=" << seed;
  }
}

// ---------------------------------------------------------------------------
// FastCounter (type-optimized) agrees with the universal counter
// ---------------------------------------------------------------------------

TEST(FastCounter, SequentialSemantics) {
  World w(1);
  FastCounterSim c(w, 1);
  std::int64_t v = -1;
  w.spawn(0, [&](Context ctx) -> ProcessTask {
    co_await c.inc(ctx, 5);
    co_await c.dec(ctx, 3);
    co_await c.inc(ctx, 1);
    v = co_await c.read(ctx);
  });
  w.run_solo(0);
  EXPECT_EQ(v, 3);
}

TEST(FastCounter, ConcurrentIncrementsAllCounted) {
  const int n = 4, k = 5;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    World w(n);
    FastCounterSim c(w, n);
    std::int64_t last = -1;
    for (int pid = 0; pid < n; ++pid) {
      w.spawn(pid, [&, pid](Context ctx) -> ProcessTask {
        for (int i = 0; i < k; ++i) co_await c.inc(ctx, 1);
        if (pid == 0) last = co_await c.read(ctx);
      });
    }
    // Ensure pid 0 reads last: run others first under random, then pid 0.
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(w.run(sched).all_done);
    // pid 0's read happened at some point; it must be between its own k and n*k.
    EXPECT_GE(last, k);
    EXPECT_LE(last, n * k);
  }
}

TEST(FastCounter, UpdateCostIsOneWrite) {
  obs::Registry registry;
  World w(6, {.metrics = &registry});
  FastCounterSim c(w, 6);
  w.spawn(0, [&](Context ctx) -> ProcessTask { co_await c.inc(ctx, 1); });
  obs::CounterDelta reads(w.metrics_reads(0));
  obs::CounterDelta writes(w.metrics_writes(0));
  w.run_solo(0);
  EXPECT_EQ(reads.delta(), 0u);
  EXPECT_EQ(writes.delta(), 1u);
}

}  // namespace
}  // namespace apram
