// Fault injection and wait-freedom certification (sim side).
//
// Covers: victim-keyed crash semantics (CrashingScheduler and
// World::schedule_crash), strict/lenient replay divergence handling, the
// Nemesis scheduler-combinator (crash/stall/burst plans), the campaign
// certifier with step-bound judges, replay artifacts for violations, and
// exhaustive exploration of crash-during-Scan interleavings.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fault/certifier.hpp"
#include "fault/nemesis.hpp"
#include "sim/explore.hpp"
#include "sim/replay.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "snapshot/atomic_snapshot.hpp"

namespace apram {
namespace {

using sim::Context;
using sim::Execution;
using sim::ProcessTask;
using sim::World;

// A process performing `k` writes of 1..k to its own register.
ProcessTask writer(Context ctx, sim::Register<int>& reg, int k) {
  for (int i = 1; i <= k; ++i) co_await ctx.write(reg, i);
}

// ---------------------------------------------------------------------------
// Victim-keyed crash semantics: {S, pid} == "pid performs exactly S accesses"
// ---------------------------------------------------------------------------

TEST(CrashSemantics, VictimPerformsExactlyItsQuota) {
  // Whatever the interleaving, a quota of 4 own accesses means exactly 4 —
  // the crash point must not drift with the other processes' steps.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    World w(3);
    auto& r0 = w.make_register<int>("r0", 0, 0);
    auto& r1 = w.make_register<int>("r1", 0, 1);
    auto& r2 = w.make_register<int>("r2", 0, 2);
    w.spawn(0, [&](Context ctx) { return writer(ctx, r0, 10); });
    w.spawn(1, [&](Context ctx) { return writer(ctx, r1, 10); });
    w.spawn(2, [&](Context ctx) { return writer(ctx, r2, 10); });
    sim::RandomScheduler rnd(seed);
    sim::CrashingScheduler sched(rnd, {{4, 0}});
    EXPECT_TRUE(w.run(sched).all_done);
    EXPECT_TRUE(w.crashed(0));
    EXPECT_EQ(w.counts(0).total(), 4u) << "seed=" << seed;
    EXPECT_EQ(r0.peek(), 4);  // last completed write
    EXPECT_EQ(r1.peek(), 10);
    EXPECT_EQ(r2.peek(), 10);
  }
}

TEST(CrashSemantics, WriterCrashesOneStepBeforeFinalWrite) {
  // The off-by-one this pins down: quota k-1 on a k-write program means the
  // final write is the one that never happens.
  const int k = 6;
  World w(2);
  auto& reg = w.make_register<int>("reg", 0, 0);
  auto& other = w.make_register<int>("other", 0, 1);
  w.spawn(0, [&](Context ctx) { return writer(ctx, reg, k); });
  w.spawn(1, [&](Context ctx) { return writer(ctx, other, 3); });
  sim::RoundRobinScheduler rr;
  sim::CrashingScheduler sched(rr, {{static_cast<std::uint64_t>(k - 1), 0}});
  EXPECT_TRUE(w.run(sched).all_done);
  EXPECT_TRUE(w.crashed(0));
  EXPECT_EQ(w.counts(0).writes, static_cast<std::uint64_t>(k - 1));
  EXPECT_EQ(reg.peek(), k - 1);  // the k-th write was lost to the crash
}

TEST(CrashSemantics, CompletionWins) {
  // A quota past the program's length never fires: the process finishes.
  World w(1);
  auto& reg = w.make_register<int>("reg", 0);
  w.spawn(0, [&](Context ctx) { return writer(ctx, reg, 5); });
  sim::RoundRobinScheduler rr;
  sim::CrashingScheduler sched(rr, {{5, 0}});
  EXPECT_TRUE(w.run(sched).all_done);
  EXPECT_FALSE(w.crashed(0));
  EXPECT_TRUE(w.done(0));
  EXPECT_EQ(reg.peek(), 5);
}

TEST(CrashSemantics, QuotaZeroPreventsAllAccesses) {
  World w(2);
  auto& reg = w.make_register<int>("reg", 0, 0);
  auto& other = w.make_register<int>("other", 0, 1);
  w.spawn(0, [&](Context ctx) { return writer(ctx, reg, 5); });
  w.spawn(1, [&](Context ctx) { return writer(ctx, other, 5); });
  sim::RoundRobinScheduler rr;
  sim::CrashingScheduler sched(rr, {{0, 0}});
  EXPECT_TRUE(w.run(sched).all_done);
  EXPECT_TRUE(w.crashed(0));
  EXPECT_EQ(w.counts(0).total(), 0u);
  EXPECT_EQ(reg.peek(), 0);
}

TEST(CrashSemantics, ScheduleCrashOnWorldMatchesScheduler) {
  // World::schedule_crash gives the same semantics without a scheduler
  // wrapper — usable under explore/replay, which own the scheduler.
  World w(1);
  auto& reg = w.make_register<int>("reg", 0);
  w.spawn(0, [&](Context ctx) { return writer(ctx, reg, 9); });
  w.schedule_crash(0, 3);
  sim::RoundRobinScheduler rr;
  EXPECT_TRUE(w.run(rr).all_done);
  EXPECT_TRUE(w.crashed(0));
  EXPECT_EQ(w.counts(0).total(), 3u);
  EXPECT_EQ(reg.peek(), 3);
}

TEST(CrashSemantics, ScheduleCrashFiresImmediatelyWhenThresholdMet) {
  World w(1);
  auto& reg = w.make_register<int>("reg", 0);
  w.spawn(0, [&](Context ctx) { return writer(ctx, reg, 9); });
  w.step(0);
  w.step(0);
  w.schedule_crash(0, 2);  // already at 2 accesses: fires on the spot
  EXPECT_TRUE(w.crashed(0));
  EXPECT_EQ(w.counts(0).total(), 2u);
}

// ---------------------------------------------------------------------------
// Strict vs lenient replay divergence
// ---------------------------------------------------------------------------

// Two processes, two writes each. Schedules that grant pid 0 a third step
// diverge while pid 1 is still runnable, so the scheduler is actually
// consulted about the bogus entry (a world where everything already
// finished would just end the run).
struct TwoByTwoExec final : Execution {
  TwoByTwoExec() : w(2) {
    r0 = &w.make_register<int>("r0", 0, 0);
    r1 = &w.make_register<int>("r1", 0, 1);
    w.spawn(0, [this](Context ctx) { return writer(ctx, *r0, 2); });
    w.spawn(1, [this](Context ctx) { return writer(ctx, *r1, 2); });
  }
  World& world() override { return w; }
  World w;
  sim::Register<int>* r0;
  sim::Register<int>* r1;
};

TEST(ReplayModeDeathTest, StrictReplayAbortsOnDivergence) {
  // The third grant schedules a process that is already done: a schedule
  // that does not match its execution must fail loudly, not drift.
  EXPECT_DEATH(
      sim::replay([] { return std::make_unique<TwoByTwoExec>(); }, {0, 0, 0},
                  sim::ReplayMode::kStrict),
      "diverged");
}

TEST(ReplayMode, LenientReplaySkipsDivergentEntries) {
  auto exec = sim::replay([] { return std::make_unique<TwoByTwoExec>(); },
                          {0, 0, 0}, sim::ReplayMode::kLenient);
  EXPECT_TRUE(exec->world().done(0));
  EXPECT_EQ(exec->world().counts(0).total(), 2u);
  EXPECT_EQ(exec->world().counts(1).total(), 0u);  // bogus entry skipped
}

TEST(ReplayMode, StrictReplayOfFaithfulScheduleSucceeds) {
  auto exec = sim::replay([] { return std::make_unique<TwoByTwoExec>(); },
                          {0, 1, 1, 0});  // strict is the default
  EXPECT_TRUE(exec->world().all_done());
  EXPECT_EQ(static_cast<TwoByTwoExec&>(*exec).r0->peek(), 2);
  EXPECT_EQ(static_cast<TwoByTwoExec&>(*exec).r1->peek(), 2);
}

TEST(FixedSchedulerDeathTest, StrictModeNamesTheDivergencePosition) {
  TwoByTwoExec exec;
  sim::FixedScheduler sched({0, 0, 0}, sim::FixedScheduler::Fallback::kStop,
                            sim::FixedScheduler::Divergence::kFail);
  EXPECT_DEATH(exec.w.run(sched), "diverged at position 2");
}

// ---------------------------------------------------------------------------
// Nemesis: seeded crash/stall/burst plans over any inner scheduler
// ---------------------------------------------------------------------------

struct ThreeWriterExec final : Execution {
  explicit ThreeWriterExec(int k = 10) : w(3) {
    for (int pid = 0; pid < 3; ++pid) {
      regs.push_back(&w.make_register<int>("r" + std::to_string(pid), 0, pid));
    }
    for (int pid = 0; pid < 3; ++pid) {
      w.spawn(pid, [this, pid, k](Context ctx) {
        return writer(ctx, *regs[static_cast<std::size_t>(pid)], k);
      });
    }
  }
  World& world() override { return w; }
  World w;
  std::vector<sim::Register<int>*> regs;
};

TEST(Nemesis, SameSeedSamePlanSameSchedule) {
  auto run_once = [](std::uint64_t seed) {
    Rng rng(seed);
    fault::FaultPlan plan = fault::random_plan(rng, 3, {});
    ThreeWriterExec exec;
    sim::RandomScheduler inner(seed * 77 + 1);
    fault::Nemesis nemesis(inner, plan);
    sim::RecordingScheduler rec(nemesis);
    exec.w.run_steps(rec, 10'000);
    return rec.picks();
  };
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_EQ(run_once(seed), run_once(seed)) << "seed=" << seed;
  }
}

TEST(Nemesis, CrashFaultsFireVictimKeyed) {
  ThreeWriterExec exec;
  fault::FaultPlan plan;
  plan.crashes.push_back(fault::CrashFault{1, 4});
  sim::RoundRobinScheduler inner;
  fault::Nemesis nemesis(inner, plan);
  EXPECT_TRUE(exec.w.run(nemesis).all_done);
  EXPECT_EQ(nemesis.crashes_fired(), 1u);
  EXPECT_TRUE(exec.w.crashed(1));
  EXPECT_EQ(exec.w.counts(1).total(), 4u);
  EXPECT_EQ(exec.w.counts(0).total(), 10u);
  EXPECT_EQ(exec.w.counts(2).total(), 10u);
}

TEST(Nemesis, StallWindowStarvesTheVictim) {
  // Pid 0 is stalled for a 20-step window: it must receive no grants inside
  // the window, yet still finish afterwards.
  ThreeWriterExec exec;
  fault::FaultPlan plan;
  plan.stalls.push_back(fault::StallFault{0, 0, 20});
  sim::RoundRobinScheduler inner;
  fault::Nemesis nemesis(inner, plan);
  sim::RecordingScheduler rec(nemesis);
  EXPECT_TRUE(exec.w.run(rec).all_done);
  EXPECT_GT(nemesis.stall_deflections(), 0u);
  const auto& picks = rec.picks();
  for (std::size_t i = 0; i < 20 && i < picks.size(); ++i) {
    EXPECT_NE(picks[i], 0) << "grant " << i << " went to the stalled victim";
  }
  EXPECT_TRUE(exec.w.done(0));
}

TEST(Nemesis, StallOfEveryProcessYieldsInsteadOfDeadlocking) {
  ThreeWriterExec exec;
  fault::FaultPlan plan;
  for (int pid = 0; pid < 3; ++pid) {
    plan.stalls.push_back(fault::StallFault{pid, 0, 1'000'000});
  }
  sim::RoundRobinScheduler inner;
  fault::Nemesis nemesis(inner, plan);
  EXPECT_TRUE(exec.w.run(nemesis).all_done);
}

TEST(Nemesis, BurstWindowSchedulesOnePidExclusively) {
  ThreeWriterExec exec;
  fault::FaultPlan plan;
  plan.bursts.push_back(fault::BurstFault{2, 0, 6});
  sim::RoundRobinScheduler inner;
  fault::Nemesis nemesis(inner, plan);
  sim::RecordingScheduler rec(nemesis);
  EXPECT_TRUE(exec.w.run(rec).all_done);
  EXPECT_EQ(nemesis.burst_grants(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(rec.picks()[i], 2) << "grant " << i << " escaped the burst";
  }
}

TEST(RandomPlan, RespectsNeverCrashAndSurvivorFloor) {
  Rng rng(123);
  fault::PlanOptions opts;
  opts.max_crashes = 8;  // more than the process count: the floor must bind
  opts.never_crash = {2};
  for (int i = 0; i < 200; ++i) {
    const fault::FaultPlan plan = fault::random_plan(rng, 3, opts);
    std::set<int> victims;
    for (const auto& c : plan.crashes) {
      EXPECT_NE(c.pid, 2);
      EXPECT_TRUE(victims.insert(c.pid).second) << "duplicate crash victim";
    }
    EXPECT_LE(plan.crashes.size(), 2u);
  }
}

TEST(RandomPlan, DescribeMentionsEveryFault) {
  fault::FaultPlan plan;
  plan.crashes.push_back(fault::CrashFault{0, 5});
  plan.stalls.push_back(fault::StallFault{1, 10, 8});
  const std::string s = plan.describe();
  EXPECT_NE(s.find("crash(p0@5)"), std::string::npos) << s;
  EXPECT_NE(s.find("stall(p1,10+8)"), std::string::npos) << s;
  EXPECT_EQ(fault::FaultPlan{}.describe(), "plan: (none)");
}

// ---------------------------------------------------------------------------
// Certifier: campaigns over the snapshot object
// ---------------------------------------------------------------------------

// Two updaters (one update each: 1 write) and one scanner (two tagged scans,
// each n²−1 reads + n+1 writes for n=3 in kOptimized mode: 8r+4w).
struct SnapCampaignExec final : Execution {
  SnapCampaignExec() : w(3), snap(w, 3, "s") {
    for (int pid = 0; pid < 2; ++pid) {
      w.spawn(pid, [this, pid](Context ctx) -> ProcessTask {
        co_await snap.update(ctx, 100 + pid);
      });
    }
    w.spawn(2, [this](Context ctx) -> ProcessTask {
      views.push_back(co_await snap.scan_tagged(ctx));
      views.push_back(co_await snap.scan_tagged(ctx));
    });
  }
  World& world() override { return w; }
  World w;
  AtomicSnapshotSim<int> snap;
  std::vector<TaggedVectorLattice<int>::Value> views;
};

sim::ExecutionFactory snap_factory() {
  return [] { return std::make_unique<SnapCampaignExec>(); };
}

// §6.2 bounds for the scenario above, exact (no slack).
std::vector<fault::StepBound> snap_bounds() {
  return {{0, 1}, {0, 1}, {16, 8}};
}

TEST(Certifier, SnapshotCampaignCertifies) {
  fault::CampaignOptions opts;
  opts.schedules = 60;
  opts.base_seed = 1000;
  opts.plan.never_crash = {2};  // the scanner is the measured process
  const fault::CampaignResult result = fault::certify_wait_freedom(
      snap_factory(), fault::step_bound_judge(snap_bounds()), opts);
  EXPECT_TRUE(result.certified());
  EXPECT_EQ(result.schedules_run, 60);
  EXPECT_TRUE(result.violations.empty());
  // The campaign must actually have exercised faults, not just clean runs.
  EXPECT_GT(result.crashes_fired + result.stall_deflections +
                result.burst_grants,
            0u);
}

TEST(Certifier, ImpossibleBoundProducesViolationWithSchedule) {
  fault::CampaignOptions opts;
  opts.schedules = 3;
  opts.base_seed = 7;
  opts.plan.max_crashes = 0;  // all three run: the scanner must exceed 1 read
  std::vector<fault::StepBound> bounds = snap_bounds();
  bounds[2].reads = 1;
  const fault::CampaignResult result = fault::certify_wait_freedom(
      snap_factory(), fault::step_bound_judge(bounds), opts);
  ASSERT_EQ(result.violations.size(), 3u);
  for (const auto& v : result.violations) {
    EXPECT_NE(v.what.find("reads exceed bound 1"), std::string::npos)
        << v.what;
    EXPECT_FALSE(v.schedule.empty());
    EXPECT_TRUE(v.artifact_path.empty());  // no artifact_dir configured
  }
}

TEST(Certifier, ViolationArtifactReplaysStepIdentically) {
  // Self-test required by the campaign design: inject a violation, then
  // reproduce the flagged run from its emitted artifact, step for step.
  const std::string dir = ::testing::TempDir() + "apram-fault-artifacts";
  std::filesystem::remove_all(dir);

  fault::CampaignOptions opts;
  opts.schedules = 1;
  opts.base_seed = 42;
  opts.artifact_dir = dir;
  std::vector<fault::StepBound> bounds = snap_bounds();
  bounds[2].reads = 0;  // impossible: every scan starts with reads
  const fault::CampaignResult result = fault::certify_wait_freedom(
      snap_factory(), fault::step_bound_judge(bounds), opts);
  ASSERT_EQ(result.violations.size(), 1u);
  const fault::Violation& v = result.violations[0];
  ASSERT_FALSE(v.artifact_path.empty());
  ASSERT_TRUE(std::filesystem::exists(v.artifact_path));

  // Strict replay reconstructs the run: every process performs exactly the
  // accesses the recorded schedule granted it, in the same global order.
  auto replayed = fault::replay_artifact(snap_factory(), v.artifact_path);
  World& w = replayed->world();
  std::vector<std::uint64_t> grants(3, 0);
  for (int pid : v.schedule) ++grants[static_cast<std::size_t>(pid)];
  for (int pid = 0; pid < 3; ++pid) {
    EXPECT_EQ(w.counts(pid).total(), grants[static_cast<std::size_t>(pid)]);
  }
  EXPECT_EQ(w.global_step(), v.schedule.size());

  // And it is deterministic: replaying the artifact twice gives identical
  // scanner views.
  auto replayed2 = fault::replay_artifact(snap_factory(), v.artifact_path);
  EXPECT_EQ(static_cast<SnapCampaignExec&>(*replayed).views,
            static_cast<SnapCampaignExec&>(*replayed2).views);

  std::filesystem::remove_all(dir);
}

TEST(Certifier, DetectsGenuineWaitFreedomFailure) {
  // A spin-lock-ish program that is NOT wait-free: pid 1 spins until pid 0
  // sets a flag; crash pid 0 before the store and pid 1 spins forever. The
  // certifier must report an incomplete execution, not hang.
  struct SpinExec final : Execution {
    SpinExec() : w(2) {
      flag = &w.make_register<int>("flag", 0, 0);
      w.spawn(0, [this](Context ctx) -> ProcessTask {
        co_await ctx.write(*flag, 1);
      });
      w.spawn(1, [this](Context ctx) -> ProcessTask {
        while (co_await ctx.read(*flag) == 0) {
        }
      });
    }
    World& world() override { return w; }
    World w;
    sim::Register<int>* flag;
  };

  fault::CampaignOptions opts;
  opts.schedules = 40;
  opts.base_seed = 5000;
  opts.max_steps = 2'000;
  opts.plan.crash_horizon = 1;  // crashes (if drawn) land before the store
  const fault::CampaignResult result = fault::certify_wait_freedom(
      [] { return std::make_unique<SpinExec>(); }, nullptr, opts);
  ASSERT_FALSE(result.certified());
  bool found = false;
  for (const auto& v : result.violations) {
    if (v.what.find("wait-freedom violation") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Exhaustive exploration: crash-during-Scan on every interleaving
// ---------------------------------------------------------------------------

// Two updaters (one update each) and a scanner doing two tagged scans; an
// optional victim-keyed crash installed via World::schedule_crash. With
// at_access == 0 an updater contributes nothing; with at_access == 1 the
// updater completes first (completion wins) and the crash never fires.
struct SnapCrashExec final : Execution {
  SnapCrashExec(int victim, std::uint64_t at) : w(3), snap(w, 3, "s") {
    for (int pid = 0; pid < 2; ++pid) {
      w.spawn(pid, [this, pid](Context ctx) -> ProcessTask {
        co_await snap.update(ctx, 100 + pid);
      });
    }
    w.spawn(2, [this](Context ctx) -> ProcessTask {
      views.push_back(co_await snap.scan_tagged(ctx));
      views.push_back(co_await snap.scan_tagged(ctx));
    });
    if (victim >= 0) w.schedule_crash(victim, at);
  }
  World& world() override { return w; }
  World w;
  AtomicSnapshotSim<int> snap;
  std::vector<TaggedVectorLattice<int>::Value> views;
};

// Tag of `pid`'s cell in a tagged view. The lattice's ⊥ is the EMPTY vector
// (width-flexible; join widens on demand), so a scan completing before any
// update legitimately returns a view narrower than n — a missing cell reads
// as tag 0, never as an out-of-bounds index.
std::uint64_t tag_of(const TaggedVectorLattice<int>::Value& view, int pid) {
  const auto i = static_cast<std::size_t>(pid);
  return i < view.size() ? view[i].tag : 0;
}

TEST(ExploreWithCrashes, ScanSurvivesCrashAtEveryPossibleStep) {
  using L = TaggedVectorLattice<int>;
  // Campaigns: no crash, then each updater crashed at each of its possible
  // own-access points (0 = before its only write; 1 = past the program, so
  // completion wins and the run must look crash-free to the scanner).
  struct Campaign {
    int victim;
    std::uint64_t at;
  };
  const Campaign campaigns[] = {{-1, 0}, {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  for (const Campaign& c : campaigns) {
    const auto stats = sim::explore_all_schedules(
        [&] { return std::make_unique<SnapCrashExec>(c.victim, c.at); },
        [&](Execution& e, const std::vector<int>&) {
          auto& se = static_cast<SnapCrashExec&>(e);
          // Wait-freedom: the scanner always completes with the exact §6.2
          // cost — two optimized scans at n=3: 2·(n²−1)=16 reads,
          // 2·(n+1)=8 writes — crash or no crash.
          ASSERT_TRUE(se.w.done(2));
          ASSERT_EQ(se.w.counts(2).reads, 16u);
          ASSERT_EQ(se.w.counts(2).writes, 8u);
          // Lemma 32: the two views are comparable, and monotone in time.
          ASSERT_EQ(se.views.size(), 2u);
          ASSERT_TRUE(L::leq(se.views[0], se.views[1]));
          // A victim crashed before its write contributes nothing.
          if (c.victim >= 0 && c.at == 0) {
            ASSERT_TRUE(se.w.crashed(c.victim));
            ASSERT_EQ(tag_of(se.views[1], c.victim), 0u);
          }
          // at == 1 exceeds the updater's single access: completion wins.
          if (c.victim >= 0 && c.at == 1) {
            ASSERT_FALSE(se.w.crashed(c.victim));
            ASSERT_TRUE(se.w.done(c.victim));
          }
        });
    // 24 scanner steps interleaved with the surviving updater writes: a
    // real search, dozens-to-hundreds of executions per campaign.
    EXPECT_GT(stats.executions, 20u)
        << "victim=" << c.victim << " at=" << c.at;
  }
}

}  // namespace
}  // namespace apram
