# Empty compiler generated dependencies file for shared_statistics.
# This may be replaced when dependencies are built.
