file(REMOVE_RECURSE
  "CMakeFiles/shared_statistics.dir/shared_statistics.cpp.o"
  "CMakeFiles/shared_statistics.dir/shared_statistics.cpp.o.d"
  "shared_statistics"
  "shared_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
