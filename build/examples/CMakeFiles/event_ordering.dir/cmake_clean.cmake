file(REMOVE_RECURSE
  "CMakeFiles/event_ordering.dir/event_ordering.cpp.o"
  "CMakeFiles/event_ordering.dir/event_ordering.cpp.o.d"
  "event_ordering"
  "event_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
