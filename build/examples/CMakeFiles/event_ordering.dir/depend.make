# Empty dependencies file for event_ordering.
# This may be replaced when dependencies are built.
