# Empty dependencies file for bench_e2_agreement_lower.
# This may be replaced when dependencies are built.
