# Empty dependencies file for bench_e4_scan_ops.
# This may be replaced when dependencies are built.
