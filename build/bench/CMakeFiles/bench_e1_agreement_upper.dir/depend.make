# Empty dependencies file for bench_e1_agreement_upper.
# This may be replaced when dependencies are built.
