# Empty dependencies file for bench_e9_consensus.
# This may be replaced when dependencies are built.
