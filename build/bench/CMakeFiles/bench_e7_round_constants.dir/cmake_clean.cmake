file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_round_constants.dir/bench_e7_round_constants.cpp.o"
  "CMakeFiles/bench_e7_round_constants.dir/bench_e7_round_constants.cpp.o.d"
  "bench_e7_round_constants"
  "bench_e7_round_constants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_round_constants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
