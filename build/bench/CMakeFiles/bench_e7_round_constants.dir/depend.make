# Empty dependencies file for bench_e7_round_constants.
# This may be replaced when dependencies are built.
