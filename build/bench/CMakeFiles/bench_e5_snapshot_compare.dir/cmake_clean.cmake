file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_snapshot_compare.dir/bench_e5_snapshot_compare.cpp.o"
  "CMakeFiles/bench_e5_snapshot_compare.dir/bench_e5_snapshot_compare.cpp.o.d"
  "bench_e5_snapshot_compare"
  "bench_e5_snapshot_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_snapshot_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
