# Empty compiler generated dependencies file for bench_e5_snapshot_compare.
# This may be replaced when dependencies are built.
