file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_rt.dir/bench_micro_rt.cpp.o"
  "CMakeFiles/bench_micro_rt.dir/bench_micro_rt.cpp.o.d"
  "bench_micro_rt"
  "bench_micro_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
