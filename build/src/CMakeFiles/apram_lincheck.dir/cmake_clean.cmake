file(REMOVE_RECURSE
  "CMakeFiles/apram_lincheck.dir/lincheck/checker.cpp.o"
  "CMakeFiles/apram_lincheck.dir/lincheck/checker.cpp.o.d"
  "CMakeFiles/apram_lincheck.dir/lincheck/history.cpp.o"
  "CMakeFiles/apram_lincheck.dir/lincheck/history.cpp.o.d"
  "libapram_lincheck.a"
  "libapram_lincheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apram_lincheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
