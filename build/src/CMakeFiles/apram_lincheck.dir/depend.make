# Empty dependencies file for apram_lincheck.
# This may be replaced when dependencies are built.
