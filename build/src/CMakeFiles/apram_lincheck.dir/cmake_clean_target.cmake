file(REMOVE_RECURSE
  "libapram_lincheck.a"
)
