# Empty compiler generated dependencies file for apram_sim.
# This may be replaced when dependencies are built.
