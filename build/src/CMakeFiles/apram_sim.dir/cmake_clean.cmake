file(REMOVE_RECURSE
  "CMakeFiles/apram_sim.dir/sim/explore.cpp.o"
  "CMakeFiles/apram_sim.dir/sim/explore.cpp.o.d"
  "CMakeFiles/apram_sim.dir/sim/replay.cpp.o"
  "CMakeFiles/apram_sim.dir/sim/replay.cpp.o.d"
  "CMakeFiles/apram_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/apram_sim.dir/sim/scheduler.cpp.o.d"
  "CMakeFiles/apram_sim.dir/sim/world.cpp.o"
  "CMakeFiles/apram_sim.dir/sim/world.cpp.o.d"
  "libapram_sim.a"
  "libapram_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apram_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
