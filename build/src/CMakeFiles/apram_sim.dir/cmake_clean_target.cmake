file(REMOVE_RECURSE
  "libapram_sim.a"
)
