
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/explore.cpp" "src/CMakeFiles/apram_sim.dir/sim/explore.cpp.o" "gcc" "src/CMakeFiles/apram_sim.dir/sim/explore.cpp.o.d"
  "/root/repo/src/sim/replay.cpp" "src/CMakeFiles/apram_sim.dir/sim/replay.cpp.o" "gcc" "src/CMakeFiles/apram_sim.dir/sim/replay.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/apram_sim.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/apram_sim.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/CMakeFiles/apram_sim.dir/sim/world.cpp.o" "gcc" "src/CMakeFiles/apram_sim.dir/sim/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/apram_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
