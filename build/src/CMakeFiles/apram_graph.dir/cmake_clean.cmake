file(REMOVE_RECURSE
  "CMakeFiles/apram_graph.dir/graph/digraph.cpp.o"
  "CMakeFiles/apram_graph.dir/graph/digraph.cpp.o.d"
  "CMakeFiles/apram_graph.dir/graph/lingraph.cpp.o"
  "CMakeFiles/apram_graph.dir/graph/lingraph.cpp.o.d"
  "libapram_graph.a"
  "libapram_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apram_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
