file(REMOVE_RECURSE
  "libapram_graph.a"
)
