
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/digraph.cpp" "src/CMakeFiles/apram_graph.dir/graph/digraph.cpp.o" "gcc" "src/CMakeFiles/apram_graph.dir/graph/digraph.cpp.o.d"
  "/root/repo/src/graph/lingraph.cpp" "src/CMakeFiles/apram_graph.dir/graph/lingraph.cpp.o" "gcc" "src/CMakeFiles/apram_graph.dir/graph/lingraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/apram_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apram_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
