# Empty dependencies file for apram_graph.
# This may be replaced when dependencies are built.
