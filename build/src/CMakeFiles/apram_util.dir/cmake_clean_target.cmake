file(REMOVE_RECURSE
  "libapram_util.a"
)
