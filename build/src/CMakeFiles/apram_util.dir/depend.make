# Empty dependencies file for apram_util.
# This may be replaced when dependencies are built.
