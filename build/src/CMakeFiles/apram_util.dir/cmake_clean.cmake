file(REMOVE_RECURSE
  "CMakeFiles/apram_util.dir/util/flags.cpp.o"
  "CMakeFiles/apram_util.dir/util/flags.cpp.o.d"
  "CMakeFiles/apram_util.dir/util/rng.cpp.o"
  "CMakeFiles/apram_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/apram_util.dir/util/stats.cpp.o"
  "CMakeFiles/apram_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/apram_util.dir/util/table.cpp.o"
  "CMakeFiles/apram_util.dir/util/table.cpp.o.d"
  "libapram_util.a"
  "libapram_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apram_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
