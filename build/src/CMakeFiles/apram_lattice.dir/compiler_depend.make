# Empty compiler generated dependencies file for apram_lattice.
# This may be replaced when dependencies are built.
