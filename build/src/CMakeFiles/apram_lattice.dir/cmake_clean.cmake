file(REMOVE_RECURSE
  "CMakeFiles/apram_lattice.dir/lattice/lattice.cpp.o"
  "CMakeFiles/apram_lattice.dir/lattice/lattice.cpp.o.d"
  "libapram_lattice.a"
  "libapram_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apram_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
