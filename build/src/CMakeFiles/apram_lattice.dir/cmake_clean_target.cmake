file(REMOVE_RECURSE
  "libapram_lattice.a"
)
