file(REMOVE_RECURSE
  "CMakeFiles/apram_core.dir/core/universal_stats.cpp.o"
  "CMakeFiles/apram_core.dir/core/universal_stats.cpp.o.d"
  "libapram_core.a"
  "libapram_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apram_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
