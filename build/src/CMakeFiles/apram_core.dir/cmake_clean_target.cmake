file(REMOVE_RECURSE
  "libapram_core.a"
)
