# Empty compiler generated dependencies file for apram_core.
# This may be replaced when dependencies are built.
