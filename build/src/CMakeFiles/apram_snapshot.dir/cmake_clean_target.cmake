file(REMOVE_RECURSE
  "libapram_snapshot.a"
)
