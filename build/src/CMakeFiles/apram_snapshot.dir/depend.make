# Empty dependencies file for apram_snapshot.
# This may be replaced when dependencies are built.
