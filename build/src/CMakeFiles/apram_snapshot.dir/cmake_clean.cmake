file(REMOVE_RECURSE
  "CMakeFiles/apram_snapshot.dir/snapshot/baselines/mutex_snapshot.cpp.o"
  "CMakeFiles/apram_snapshot.dir/snapshot/baselines/mutex_snapshot.cpp.o.d"
  "CMakeFiles/apram_snapshot.dir/snapshot/scan_stats.cpp.o"
  "CMakeFiles/apram_snapshot.dir/snapshot/scan_stats.cpp.o.d"
  "libapram_snapshot.a"
  "libapram_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apram_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
