file(REMOVE_RECURSE
  "libapram_objects.a"
)
