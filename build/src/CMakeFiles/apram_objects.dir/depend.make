# Empty dependencies file for apram_objects.
# This may be replaced when dependencies are built.
