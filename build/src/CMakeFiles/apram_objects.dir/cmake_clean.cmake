file(REMOVE_RECURSE
  "CMakeFiles/apram_objects.dir/objects/specs.cpp.o"
  "CMakeFiles/apram_objects.dir/objects/specs.cpp.o.d"
  "libapram_objects.a"
  "libapram_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apram_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
