# Empty compiler generated dependencies file for apram_agreement.
# This may be replaced when dependencies are built.
