
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agreement/adversary.cpp" "src/CMakeFiles/apram_agreement.dir/agreement/adversary.cpp.o" "gcc" "src/CMakeFiles/apram_agreement.dir/agreement/adversary.cpp.o.d"
  "/root/repo/src/agreement/approx_spec.cpp" "src/CMakeFiles/apram_agreement.dir/agreement/approx_spec.cpp.o" "gcc" "src/CMakeFiles/apram_agreement.dir/agreement/approx_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/apram_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apram_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
