file(REMOVE_RECURSE
  "CMakeFiles/apram_agreement.dir/agreement/adversary.cpp.o"
  "CMakeFiles/apram_agreement.dir/agreement/adversary.cpp.o.d"
  "CMakeFiles/apram_agreement.dir/agreement/approx_spec.cpp.o"
  "CMakeFiles/apram_agreement.dir/agreement/approx_spec.cpp.o.d"
  "libapram_agreement.a"
  "libapram_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apram_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
