file(REMOVE_RECURSE
  "libapram_agreement.a"
)
