# Empty dependencies file for apram_algebra.
# This may be replaced when dependencies are built.
