file(REMOVE_RECURSE
  "libapram_algebra.a"
)
