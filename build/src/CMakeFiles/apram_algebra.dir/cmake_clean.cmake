file(REMOVE_RECURSE
  "CMakeFiles/apram_algebra.dir/algebra/semantics.cpp.o"
  "CMakeFiles/apram_algebra.dir/algebra/semantics.cpp.o.d"
  "libapram_algebra.a"
  "libapram_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apram_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
