file(REMOVE_RECURSE
  "CMakeFiles/apram_rt.dir/rt/arena.cpp.o"
  "CMakeFiles/apram_rt.dir/rt/arena.cpp.o.d"
  "CMakeFiles/apram_rt.dir/rt/thread_harness.cpp.o"
  "CMakeFiles/apram_rt.dir/rt/thread_harness.cpp.o.d"
  "libapram_rt.a"
  "libapram_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apram_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
