# Empty dependencies file for apram_rt.
# This may be replaced when dependencies are built.
