file(REMOVE_RECURSE
  "libapram_rt.a"
)
