# Empty dependencies file for sim_extra_test.
# This may be replaced when dependencies are built.
