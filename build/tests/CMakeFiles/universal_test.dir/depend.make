# Empty dependencies file for universal_test.
# This may be replaced when dependencies are built.
