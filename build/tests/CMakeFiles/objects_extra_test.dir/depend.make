# Empty dependencies file for objects_extra_test.
# This may be replaced when dependencies are built.
