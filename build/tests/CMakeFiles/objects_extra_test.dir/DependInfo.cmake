
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/objects_extra_test.cpp" "tests/CMakeFiles/objects_extra_test.dir/objects_extra_test.cpp.o" "gcc" "tests/CMakeFiles/objects_extra_test.dir/objects_extra_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/apram_agreement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apram_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apram_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apram_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apram_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apram_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apram_lincheck.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apram_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apram_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apram_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apram_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
