file(REMOVE_RECURSE
  "CMakeFiles/objects_extra_test.dir/objects_extra_test.cpp.o"
  "CMakeFiles/objects_extra_test.dir/objects_extra_test.cpp.o.d"
  "objects_extra_test"
  "objects_extra_test.pdb"
  "objects_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objects_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
