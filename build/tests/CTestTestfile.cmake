# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/lattice_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/agreement_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/universal_test[1]_include.cmake")
include("/root/repo/build/tests/lincheck_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_test[1]_include.cmake")
include("/root/repo/build/tests/explore_test[1]_include.cmake")
include("/root/repo/build/tests/rt_stress_test[1]_include.cmake")
include("/root/repo/build/tests/sim_extra_test[1]_include.cmake")
include("/root/repo/build/tests/objects_extra_test[1]_include.cmake")
