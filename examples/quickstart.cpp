// Quickstart: the three layers of libapram in ~100 lines.
//
//   1. Simulate an asynchronous PRAM world and take an atomic snapshot.
//   2. Build a wait-free shared counter with the universal construction.
//   3. Run the same snapshot algorithm on real threads.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "objects/counter.hpp"
#include "snapshot/lattice_scan.hpp"
#include "rt/thread_harness.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "snapshot/atomic_snapshot.hpp"

using namespace apram;

int main() {
  // --- 1. Atomic snapshot in the simulator --------------------------------
  //
  // Three simulated processes share a snapshot object. Each installs a value
  // and takes an instantaneous view of all slots; a seeded random scheduler
  // interleaves them at single-register-access granularity.
  {
    sim::World world(3);
    AtomicSnapshotSim<int> snapshot(world, 3, "snap");

    std::vector<SnapshotView<int>> views(3);
    for (int pid = 0; pid < 3; ++pid) {
      world.spawn(pid, [&, pid](sim::Context ctx) -> sim::ProcessTask {
        co_await snapshot.update(ctx, (pid + 1) * 100);
        views[static_cast<std::size_t>(pid)] = co_await snapshot.scan(ctx);
      });
    }
    sim::RandomScheduler sched(/*seed=*/2024);
    world.run(sched);

    std::printf("1) simulated snapshot views (one row per process):\n");
    for (int pid = 0; pid < 3; ++pid) {
      std::printf("   P%d saw: ", pid);
      for (const auto& slot : views[static_cast<std::size_t>(pid)]) {
        if (slot.has_value()) {
          std::printf("%4d ", *slot);
        } else {
          std::printf("   - ");
        }
      }
      std::printf("\n");
    }
    std::printf("   (%llu shared-memory steps total; every scan cost "
                "exactly n^2-1 = 8 reads)\n\n",
                static_cast<unsigned long long>(world.total_counts().total()));
  }

  // --- 2. Wait-free counter via the universal construction ----------------
  //
  // CounterSpec satisfies Property 1 (inc/dec commute, reset overwrites
  // everything, everything overwrites read), so Figure 4 turns its
  // sequential spec into a wait-free linearizable object.
  {
    sim::World world(2);
    CounterSim counter(world, 2, "ctr");
    std::int64_t observed = 0;

    world.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
      co_await counter.inc(ctx, 5);
      co_await counter.inc(ctx, 5);
    });
    world.spawn(1, [&](sim::Context ctx) -> sim::ProcessTask {
      co_await counter.dec(ctx, 3);
      observed = co_await counter.read(ctx);
    });
    // Run P0 to completion, then P1: the read is the last operation, so
    // linearizability forces it to see 5 + 5 - 3 = 7. (Under a concurrent
    // schedule the read may legally linearize earlier and see less — the
    // tests in tests/lincheck_test.cpp check exactly that.)
    world.run_solo(0);
    world.run_solo(1);
    std::printf("2) universal wait-free counter: 5 + 5 - 3, read -> %lld\n\n",
                static_cast<long long>(observed));
  }

  // --- 3. The same snapshot on real threads -------------------------------
  {
    const int threads = 4;
    rt::AtomicSnapshotRT<int> snapshot(threads);
    rt::parallel_run(threads, [&](int pid) {
      snapshot.update(pid, pid * 11);
      (void)snapshot.scan(pid);
    });
    const auto final_view = snapshot.scan(0);
    std::printf("3) real-thread snapshot final view: ");
    for (const auto& slot : final_view) {
      std::printf("%d ", slot.value_or(-1));
    }
    std::printf("\n");
  }
  return 0;
}
