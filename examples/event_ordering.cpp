// Distributed event ordering with a wait-free Lamport clock.
//
// Scenario (§5.1: "logical clocks [33]"): worker replicas log events and
// exchange messages. Each replica stamps its events from a shared wait-free
// logical clock built on a max-register via the universal construction;
// message receipts advance the receiver's clock past the sender's stamp, so
// causally-ordered events get increasing timestamps, while (stamp, pid)
// pairs give a total order for the combined log.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "objects/logical_clock.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"

using namespace apram;

struct LoggedEvent {
  LamportClockSim::Stamp stamp;
  int pid;
  std::string what;
};

int main() {
  const int workers = 3;
  sim::World world(workers);
  LamportClockSim clock(world, workers, "clk");

  std::vector<LoggedEvent> log;
  // Mailboxes: mailbox[i] carries a (stamped) message for worker i.
  std::vector<std::int64_t> mailbox(workers, -1);

  // Worker 0: does local work, then "sends" to worker 1 (out-of-band data
  // channel; the clock is the shared object under test).
  world.spawn(0, [&](sim::Context ctx) -> sim::ProcessTask {
    auto s1 = co_await clock.stamp(ctx);
    log.push_back({s1, 0, "w0: prepare batch"});
    auto s2 = co_await clock.stamp(ctx);
    log.push_back({s2, 0, "w0: send batch -> w1"});
    mailbox[1] = s2.time;
  });

  // Worker 1: works, receives w0's message, then emits a causally-later
  // event.
  world.spawn(1, [&](sim::Context ctx) -> sim::ProcessTask {
    auto s1 = co_await clock.stamp(ctx);
    log.push_back({s1, 1, "w1: local housekeeping"});
    // Busy-wait-free "poll": in the simulator, just check the mailbox each
    // time we are scheduled; a real system would use its transport.
    while (mailbox[1] < 0) {
      co_await clock.now(ctx);  // a step, so the scheduler can interleave
    }
    const auto t = co_await clock.observe(ctx, mailbox[1]);
    log.push_back({{t, 1}, 1, "w1: received batch (causal edge from w0)"});
    auto s2 = co_await clock.stamp(ctx);
    log.push_back({s2, 1, "w1: process batch"});
  });

  // Worker 2: independent events, concurrent with everything.
  world.spawn(2, [&](sim::Context ctx) -> sim::ProcessTask {
    for (int i = 0; i < 3; ++i) {
      auto s = co_await clock.stamp(ctx);
      log.push_back({s, 2, "w2: heartbeat " + std::to_string(i)});
    }
  });

  sim::RandomScheduler sched(/*seed=*/5150);
  world.run(sched);

  std::sort(log.begin(), log.end(),
            [](const LoggedEvent& a, const LoggedEvent& b) {
              return a.stamp < b.stamp;
            });

  std::printf("combined log in (lamport, pid) order:\n");
  for (const auto& e : log) {
    std::printf("  t=%3lld.%d  %s\n", static_cast<long long>(e.stamp.time),
                e.stamp.pid, e.what.c_str());
  }

  // Check the causal edge: "send" strictly precedes "received".
  std::int64_t sent = -1, received = -1;
  for (const auto& e : log) {
    if (e.what.find("send batch") != std::string::npos) sent = e.stamp.time;
    if (e.what.find("received batch") != std::string::npos) {
      received = e.stamp.time;
    }
  }
  std::printf("causality: send@%lld < receive@%lld — %s\n",
              static_cast<long long>(sent), static_cast<long long>(received),
              sent < received ? "ok" : "VIOLATED");
  return sent < received ? 0 : 1;
}
