// Sensor fusion with wait-free approximate agreement.
//
// Scenario (the paper's §4 object in a systems costume): n redundant sensors
// each take a noisy reading of the same physical quantity. Before acting,
// the replicas must settle on readings within a tolerance ε of each other —
// without locks, and even if some replicas stall or crash mid-protocol.
//
// We run the Figure 2 algorithm in the concurrent-participation regime
// (every sensor posts its reading, then everyone converges), under a bursty
// random scheduler, with one replica crashing partway through. The
// survivors still settle within ε, and the settled band lies inside the
// span of the raw readings.
#include <cstdio>
#include <vector>

#include "agreement/approx_agreement.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

using namespace apram;

int main() {
  const int sensors = 6;
  const double true_value = 20.0;  // degrees
  const double tolerance = 0.05;   // settle within 0.05 degrees

  Rng rng(424242);
  std::vector<double> readings;
  for (int i = 0; i < sensors; ++i) {
    readings.push_back(true_value + rng.uniform(-1.5, 1.5));
  }

  sim::World world(sensors);
  ApproxAgreementSim agreement(world, sensors, tolerance, "fuse");

  // Phase 1: every sensor posts its raw reading.
  for (int pid = 0; pid < sensors; ++pid) {
    world.spawn(pid, [&, pid](sim::Context ctx) -> sim::ProcessTask {
      co_await agreement.input(ctx, readings[static_cast<std::size_t>(pid)]);
    });
  }
  sim::RoundRobinScheduler rr;
  world.run(rr);

  // Phase 2: everyone converges; sensor 3 dies mid-protocol.
  std::vector<double> settled(sensors, -1.0);
  std::vector<bool> finished(sensors, false);
  for (int pid = 0; pid < sensors; ++pid) {
    world.spawn(pid, [&, pid](sim::Context ctx) -> sim::ProcessTask {
      settled[static_cast<std::size_t>(pid)] = co_await agreement.output(ctx);
      finished[static_cast<std::size_t>(pid)] = true;
    });
  }
  sim::RandomScheduler random_sched(/*seed=*/99, /*stickiness=*/0.8);
  // The trigger counts sensor 3's OWN accesses: 7 accesses into its phase-2
  // output call (on top of its phase-1 work), it dies.
  sim::CrashingScheduler sched(random_sched,
                               {{world.counts(3).total() + 7, /*pid=*/3}});
  world.run(sched);

  std::printf("raw readings        : ");
  for (double r : readings) std::printf("%7.3f ", r);
  std::printf("\nsettled (wait-free) : ");
  for (int pid = 0; pid < sensors; ++pid) {
    if (finished[static_cast<std::size_t>(pid)]) {
      std::printf("%7.3f ", settled[static_cast<std::size_t>(pid)]);
    } else {
      std::printf("crashed ");
    }
  }
  std::printf("\n");

  double lo = 1e9, hi = -1e9;
  for (int pid = 0; pid < sensors; ++pid) {
    if (!finished[static_cast<std::size_t>(pid)]) continue;
    lo = std::min(lo, settled[static_cast<std::size_t>(pid)]);
    hi = std::max(hi, settled[static_cast<std::size_t>(pid)]);
  }
  std::printf("settled band width  : %.4f (tolerance %.4f) — %s\n", hi - lo,
              tolerance, (hi - lo) < tolerance ? "within tolerance" : "FAIL");
  std::printf("note: sensor 3 crashed mid-protocol; the survivors settled "
              "anyway (wait-freedom).\n");
  return (hi - lo) < tolerance ? 0 : 1;
}
