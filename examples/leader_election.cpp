// Leader election with randomized wait-free consensus.
//
// Scenario: replicas of a service wake up concurrently and must agree on a
// single leader to own a recovery task — using nothing but shared read/write
// registers. Deterministic consensus is impossible in this model (the
// paper's §1 impossibility context), but the randomized commit-adopt +
// conciliator construction decides in a couple of rounds in practice.
//
// The demo elects a leader among 4 replicas across several independent
// epochs and verifies that every epoch ends with exactly one agreed leader,
// even though each replica proposes itself.
#include <cstdio>
#include <vector>

#include "objects/randomized_consensus.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"

using namespace apram;

int main() {
  const int replicas = 4;
  const int epochs = 5;
  bool all_ok = true;

  for (int epoch = 0; epoch < epochs; ++epoch) {
    sim::World world(replicas);
    RandomizedConsensusSim election(world, replicas, "elect");

    std::vector<std::int64_t> elected(replicas, -1);
    for (int pid = 0; pid < replicas; ++pid) {
      world.spawn(pid, [&, pid](sim::Context ctx) -> sim::ProcessTask {
        // Every replica proposes itself as leader.
        elected[static_cast<std::size_t>(pid)] = co_await election.propose(
            ctx, pid, /*coin_seed=*/static_cast<std::uint64_t>(epoch) * 1000 +
                          static_cast<std::uint64_t>(pid));
      });
    }
    sim::RandomScheduler sched(static_cast<std::uint64_t>(epoch) * 7919 + 17,
                               /*stickiness=*/epoch % 2 ? 0.6 : 0.0);
    const auto result = world.run(sched, 5'000'000);

    bool agreed = result.all_done;
    for (int pid = 1; pid < replicas && agreed; ++pid) {
      agreed = elected[static_cast<std::size_t>(pid)] == elected[0];
    }
    const bool valid = elected[0] >= 0 && elected[0] < replicas;
    all_ok = all_ok && agreed && valid;

    std::printf("epoch %d: votes {", epoch);
    for (int pid = 0; pid < replicas; ++pid) {
      std::printf("%s%lld", pid ? ", " : "",
                  static_cast<long long>(elected[static_cast<std::size_t>(pid)]));
    }
    std::printf("} -> leader = replica %lld, %llu shared steps  %s\n",
                static_cast<long long>(elected[0]),
                static_cast<unsigned long long>(world.total_counts().total()),
                agreed && valid ? "[agreed]" : "[DISAGREEMENT]");
  }

  std::printf("\n%s\n", all_ok
                            ? "every epoch elected exactly one leader, "
                              "wait-free, from reads and writes only."
                            : "ELECTION FAILED");
  return all_ok ? 0 : 1;
}
