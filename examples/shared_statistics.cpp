// Consistent live statistics with wait-free snapshots (real threads).
//
// Scenario: worker threads stream items through a pipeline and keep two
// per-worker tallies — items admitted and items completed. An observer
// thread periodically reports "in flight" = admitted − completed, summed
// across workers.
//
// The catch: reading tallies one register at a time can pair an old
// `admitted` with a new `completed` (or the reverse) and report nonsense —
// including *negative* in-flight counts. Reading them through one atomic
// snapshot makes every report a consistent cut: in-flight is always between
// 0 and the pipeline's capacity.
//
// Each worker publishes both tallies in its snapshot slot; the invariant
// holds in every single snapshot view but is routinely violated by the
// naive register-by-register observer.
#include <atomic>
#include <cstdio>

#include "snapshot/lattice_scan.hpp"
#include "rt/register.hpp"
#include "rt/thread_harness.hpp"

using namespace apram;

namespace {

struct Tally {
  std::int64_t admitted = 0;
  std::int64_t completed = 0;

  friend bool operator==(const Tally&, const Tally&) = default;
};

constexpr int kWorkers = 3;
constexpr int kItemsPerWorker = 30000;
constexpr std::int64_t kWindow = 4;  // per-worker in-flight bound

}  // namespace

int main() {
  // Consistent path: both tallies live in ONE snapshot slot per worker.
  rt::AtomicSnapshotRT<Tally> snapshot(kWorkers + 1);  // +1 = observer slot
  // Naive path: two separate registers per worker.
  std::vector<std::unique_ptr<rt::SWMRRegister<std::int64_t>>> admitted_reg;
  std::vector<std::unique_ptr<rt::SWMRRegister<std::int64_t>>> completed_reg;
  for (int i = 0; i < kWorkers; ++i) {
    admitted_reg.push_back(std::make_unique<rt::SWMRRegister<std::int64_t>>(0));
    completed_reg.push_back(std::make_unique<rt::SWMRRegister<std::int64_t>>(0));
  }

  std::atomic<bool> done{false};
  std::atomic<std::int64_t> naive_violations{0};
  std::atomic<std::int64_t> snapshot_violations{0};
  std::atomic<std::int64_t> reports{0};

  rt::parallel_run(kWorkers + 1, [&](int pid) {
    if (pid < kWorkers) {
      // Worker: admit a small burst, then complete it.
      Tally t;
      for (int item = 0; item < kItemsPerWorker; ++item) {
        ++t.admitted;
        // Publish "admitted" first in both schemes (same store order).
        admitted_reg[static_cast<std::size_t>(pid)]->write(t.admitted);
        snapshot.update(pid, t);
        if (t.admitted - t.completed == kWindow) {
          t.completed += kWindow;
          completed_reg[static_cast<std::size_t>(pid)]->write(t.completed);
          snapshot.update(pid, t);
        }
      }
      t.completed = t.admitted;  // drain
      completed_reg[static_cast<std::size_t>(pid)]->write(t.completed);
      snapshot.update(pid, t);
      if (pid == 0) done.store(true);  // first worker done ends the demo
    } else {
      // Observer: compare the two read paths until workers finish.
      while (!done.load(std::memory_order_acquire)) {
        // Naive: completed read BEFORE admitted, per worker — a stale
        // admitted paired with a fresh completed goes negative.
        std::int64_t naive_inflight = 0;
        for (int w = 0; w < kWorkers; ++w) {
          const std::int64_t c =
              completed_reg[static_cast<std::size_t>(w)]->read();
          const std::int64_t a =
              admitted_reg[static_cast<std::size_t>(w)]->read();
          naive_inflight += a - c;
        }
        if (naive_inflight < 0 || naive_inflight > kWorkers * kWindow) {
          naive_violations.fetch_add(1, std::memory_order_relaxed);
        }

        // Consistent: one snapshot — per-slot tallies are internally
        // consistent and the cut is instantaneous.
        std::int64_t snap_inflight = 0;
        for (const auto& slot : snapshot.scan(kWorkers)) {
          if (slot.has_value()) {
            snap_inflight += slot->admitted - slot->completed;
          }
        }
        if (snap_inflight < 0 || snap_inflight > kWorkers * kWindow) {
          snapshot_violations.fetch_add(1, std::memory_order_relaxed);
        }
        reports.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::printf("observer reports           : %lld\n",
              static_cast<long long>(reports.load()));
  std::printf("naive-path invariant breaks: %lld\n",
              static_cast<long long>(naive_violations.load()));
  std::printf("snapshot-path breaks       : %lld  (must be 0)\n",
              static_cast<long long>(snapshot_violations.load()));
  std::printf("\nthe snapshot path is a consistent cut: 'in flight' stays in "
              "[0, %lld] in every report.\n",
              static_cast<long long>(kWorkers * kWindow));
  return snapshot_violations.load() == 0 ? 0 : 1;
}
