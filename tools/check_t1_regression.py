#!/usr/bin/env python3
"""Gate bench_t1 tree throughput against the committed baseline.

Thin wrapper over the generic gate (tools/check_bench_regression.py) with
the bench_t1 cells baked in: the headline is TreeScanRT ops/s at 8
threads, 90/10 update/scan mix, normalized by the LatticeScanRT flat
object measured in the SAME run — both implementations ride the identical
register read/write hot path, so machine speed and runner noise cancel,
and what remains is the tree-vs-flat shape — the thing a read-path
regression (e.g. in the version-arena acquire/release) actually moves.

    expected_tree = baseline_tree * (current_flat / baseline_flat)
    fail if current_tree < (1 - tolerance) * expected_tree

Multiple current artifacts may be passed; the gate takes the BEST ratio
(scheduler noise is one-sided; a real regression depresses every run).
Iteration counts should match the baseline's (the default
--ops_per_thread): the tree/flat ratio drifts at very low iteration
counts where startup costs dominate.

Usage:
    tools/check_t1_regression.py build/gate1.json build/gate2.json \
        --baseline bench/results/BENCH_t1.json [--tolerance 0.03]
"""

import argparse
import sys

from check_bench_regression import run_gate

HEADLINE_TREE = "t1.tree.t8.mix90_10.ops_per_sec"
HEADLINE_FLAT = "t1.flat.t8.mix90_10.ops_per_sec"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "current",
        nargs="+",
        help="BENCH_t1.json artifact(s) from the run(s) under test; the "
        "gate passes if ANY run is within tolerance",
    )
    ap.add_argument(
        "--baseline",
        default="bench/results/BENCH_t1.json",
        help="committed baseline metrics (default: %(default)s)",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.03,
        help="allowed fractional regression of the normalized tree "
        "throughput (default: %(default)s — the obs-v3 acceptance budget: "
        "always-on contention telemetry must cost <= 3%%)",
    )
    ap.add_argument(
        "--require-gauges", action="append", default=[],
        help="gauge-name prefix that must appear in every current artifact "
        "(repeatable); see check_bench_regression.py",
    )
    args = ap.parse_args()
    return run_gate(args.current, args.baseline, HEADLINE_TREE,
                    HEADLINE_FLAT, args.tolerance,
                    require_gauges=args.require_gauges)


if __name__ == "__main__":
    sys.exit(main())
