#!/usr/bin/env python3
"""Gate bench_t1 tree throughput against the committed baseline.

Compares the headline cell — TreeScanRT ops/s at 8 threads, 90/10
update/scan mix — between freshly produced BENCH_t1.json artifacts and the
committed bench/results/BENCH_t1.json, and fails (exit 1) if the current
number regresses by more than --tolerance (default 10%).

Raw wall-clock ratios across different machines (dev box vs shared CI
runner) are meaningless, so the gate normalizes by the LatticeScanRT flat
object measured in the SAME run: both implementations ride the identical
register read/write hot path, so machine speed and runner noise cancel,
and what remains is the tree-vs-flat shape — the thing a read-path
regression (e.g. in the version-arena acquire/release) actually moves.

    expected_tree = baseline_tree * (current_flat / baseline_flat)
    fail if current_tree < (1 - tolerance) * expected_tree

Multiple current artifacts may be passed; the gate takes the BEST ratio.
Scheduler noise on a shared runner is one-sided (it only slows a cell
down), while a real regression depresses every run — so best-of-N rejects
noise without loosening the tolerance. Iteration counts should match the
baseline's (the default --ops_per_thread): the tree/flat ratio drifts at
very low iteration counts where startup costs dominate.

Usage:
    tools/check_t1_regression.py build/gate1.json build/gate2.json \
        --baseline bench/results/BENCH_t1.json [--tolerance 0.10]
"""

import argparse
import json
import sys

HEADLINE_TREE = "t1.tree.t8.mix90_10.ops_per_sec"
HEADLINE_FLAT = "t1.flat.t8.mix90_10.ops_per_sec"


def gauge(path, name):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read metrics from {path}: {e}")
    gauges = doc.get("gauges", {})
    if name not in gauges:
        sys.exit(f"error: gauge {name!r} missing from {path}")
    value = float(gauges[name])
    if value <= 0:
        sys.exit(f"error: gauge {name!r} in {path} is non-positive ({value})")
    return value


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "current",
        nargs="+",
        help="BENCH_t1.json artifact(s) from the run(s) under test; the "
        "gate passes if ANY run is within tolerance",
    )
    ap.add_argument(
        "--baseline",
        default="bench/results/BENCH_t1.json",
        help="committed baseline metrics (default: %(default)s)",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional regression of the normalized tree "
        "throughput (default: %(default)s)",
    )
    args = ap.parse_args()

    base_tree = gauge(args.baseline, HEADLINE_TREE)
    base_flat = gauge(args.baseline, HEADLINE_FLAT)
    print(f"baseline : tree={base_tree:>12.0f} flat={base_flat:>12.0f} ops/s")

    best_ratio = 0.0
    for path in args.current:
        cur_tree = gauge(path, HEADLINE_TREE)
        cur_flat = gauge(path, HEADLINE_FLAT)
        machine_scale = cur_flat / base_flat
        expected_tree = base_tree * machine_scale
        ratio = cur_tree / expected_tree
        best_ratio = max(best_ratio, ratio)
        print(
            f"{path}: tree={cur_tree:.0f} flat={cur_flat:.0f} "
            f"scale={machine_scale:.3f} ratio={ratio:.3f}"
        )

    print(f"best ratio (current / flat-normalized expected) : "
          f"{best_ratio:.3f} (gate: >= {1.0 - args.tolerance:.3f})")

    if best_ratio < 1.0 - args.tolerance:
        print(
            f"FAIL: tree throughput at t8 mix90_10 is "
            f"{(1.0 - best_ratio) * 100.0:.1f}% below the flat-normalized "
            f"baseline in every run (tolerance "
            f"{args.tolerance * 100.0:.0f}%)."
        )
        return 1
    print("OK: tree throughput within tolerance of the baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
