#!/usr/bin/env bash
# Checks that every tracked C++ source file satisfies .clang-format.
# Usage: tools/check_format.sh [--fix]
#
# Exits 0 when everything is formatted (or when no clang-format binary is
# available — local toolchains may not ship one; CI installs it). Exits 1
# and lists offending files otherwise.
set -u

cd "$(dirname "$0")/.."

FIX=0
if [ "${1:-}" = "--fix" ]; then
  FIX=1
fi

CLANG_FORMAT=""
for candidate in clang-format clang-format-18 clang-format-17 \
                 clang-format-16 clang-format-15 clang-format-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    CLANG_FORMAT="$candidate"
    break
  fi
done

if [ -z "$CLANG_FORMAT" ]; then
  echo "check_format: no clang-format binary found; skipping (install one" \
       "or run in CI, which provides it)."
  exit 0
fi

FILES=$(git ls-files '*.cpp' '*.hpp' '*.cc' '*.h' | grep -v '^build')
if [ -z "$FILES" ]; then
  echo "check_format: no C++ files tracked."
  exit 0
fi

if [ "$FIX" = 1 ]; then
  # shellcheck disable=SC2086
  $CLANG_FORMAT -i $FILES
  echo "check_format: reformatted $(echo "$FILES" | wc -l) files."
  exit 0
fi

STATUS=0
for f in $FILES; do
  if ! $CLANG_FORMAT --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    STATUS=1
  fi
done

if [ "$STATUS" = 0 ]; then
  echo "check_format: OK ($(echo "$FILES" | wc -l) files, $CLANG_FORMAT)."
else
  echo "check_format: run tools/check_format.sh --fix"
fi
exit "$STATUS"
