#!/usr/bin/env python3
"""Generic bench-artifact regression gate.

Compares one headline gauge (higher is better) between freshly produced
metrics artifacts and a committed baseline, and fails (exit 1) if the
current number regresses by more than --tolerance.

Raw wall-clock ratios across different machines (dev box vs shared CI
runner) are meaningless, so the gate normalizes by a second gauge measured
in the SAME run — a companion implementation riding the identical hot path,
so machine speed and runner noise cancel and what remains is the shape
difference the gate actually protects:

    expected = baseline_headline * (current_norm / baseline_norm)
    fail if current_headline < (1 - tolerance) * expected

Multiple current artifacts may be passed; the gate takes the BEST ratio.
Scheduler noise on a shared runner is one-sided (it only slows a cell
down), while a real regression depresses every run — so best-of-N rejects
noise without loosening the tolerance.

Optionally the gate also checks a latency histogram's p99 (lower is
better), normalized by the inverse machine scale:

    expected_p99 = baseline_p99 / (current_norm / baseline_norm)
    fail if current_p99 > (1 + p99_tolerance) * expected_p99

Tail latency is far noisier than throughput, so --p99-tolerance defaults
to 1.0 (the current p99 may be up to 2x the scaled baseline).

Usage:
    tools/check_bench_regression.py build/run1.json build/run2.json \
        --baseline bench/results/BENCH_e6.json \
        --headline e6.rt.u2.n8.uncontended.ops_per_sec \
        --normalize e6.rt.paper.n8.uncontended.ops_per_sec \
        [--tolerance 0.10] \
        [--p99 e6.rt.u2.n8.uncontended.op_ns] [--p99-tolerance 1.0]
"""

import argparse
import json
import sys


def _load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read metrics from {path}: {e}")


def gauge(doc, path, name):
    gauges = doc.get("gauges", {})
    if name not in gauges:
        sys.exit(f"error: gauge {name!r} missing from {path}")
    value = float(gauges[name])
    if value <= 0:
        sys.exit(f"error: gauge {name!r} in {path} is non-positive ({value})")
    return value


def hist_p99(doc, path, name):
    hists = doc.get("histograms", {})
    if name not in hists:
        sys.exit(f"error: histogram {name!r} missing from {path}")
    p99 = float(hists[name].get("p99", 0.0))
    if p99 <= 0:
        sys.exit(f"error: histogram {name!r} in {path} has no p99 ({p99})")
    return p99


def check_required_gauges(doc, path, prefixes):
    """Every prefix must match at least one exported gauge — a bench run
    that silently stopped exporting its telemetry (contention counters,
    reclaim accounting) must fail the gate, not pass with less evidence."""
    gauges = doc.get("gauges", {})
    missing = [p for p in prefixes
               if not any(name.startswith(p) for name in gauges)]
    if missing:
        sys.exit(f"error: {path} exports no gauge matching required "
                 f"prefix(es): {', '.join(missing)}")


def run_gate(current_paths, baseline_path, headline, normalize,
             tolerance=0.10, p99=None, p99_tolerance=1.0,
             require_gauges=None):
    """Returns a process exit code (0 pass, 1 fail)."""
    base = _load(baseline_path)
    base_head = gauge(base, baseline_path, headline)
    base_norm = gauge(base, baseline_path, normalize)
    print(f"baseline : {headline}={base_head:.0f} "
          f"{normalize}={base_norm:.0f}")
    base_p99 = hist_p99(base, baseline_path, p99) if p99 else None

    best_ratio = 0.0
    best_p99_ratio = float("inf")
    for path in current_paths:
        cur = _load(path)
        if require_gauges:
            check_required_gauges(cur, path, require_gauges)
        cur_head = gauge(cur, path, headline)
        cur_norm = gauge(cur, path, normalize)
        machine_scale = cur_norm / base_norm
        ratio = cur_head / (base_head * machine_scale)
        best_ratio = max(best_ratio, ratio)
        line = (f"{path}: headline={cur_head:.0f} norm={cur_norm:.0f} "
                f"scale={machine_scale:.3f} ratio={ratio:.3f}")
        if p99:
            cur_p99 = hist_p99(cur, path, p99)
            p99_ratio = cur_p99 / (base_p99 / machine_scale)
            best_p99_ratio = min(best_p99_ratio, p99_ratio)
            line += f" p99={cur_p99:.0f}ns p99_ratio={p99_ratio:.3f}"
        print(line)

    print(f"best throughput ratio (current / normalized expected): "
          f"{best_ratio:.3f} (gate: >= {1.0 - tolerance:.3f})")

    failed = False
    if best_ratio < 1.0 - tolerance:
        print(f"FAIL: {headline} is {(1.0 - best_ratio) * 100.0:.1f}% below "
              f"the normalized baseline in every run (tolerance "
              f"{tolerance * 100.0:.0f}%).")
        failed = True
    if p99:
        print(f"best p99 ratio (current / normalized expected): "
              f"{best_p99_ratio:.3f} (gate: <= {1.0 + p99_tolerance:.3f})")
        if best_p99_ratio > 1.0 + p99_tolerance:
            print(f"FAIL: {p99} p99 is {best_p99_ratio:.2f}x the normalized "
                  f"baseline in every run (tolerance allows "
                  f"{1.0 + p99_tolerance:.2f}x).")
            failed = True
    if failed:
        return 1
    print("OK: within tolerance of the baseline.")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "current",
        nargs="+",
        help="metrics artifact(s) from the run(s) under test; the gate "
        "passes if ANY run is within tolerance",
    )
    ap.add_argument("--baseline", required=True,
                    help="committed baseline metrics artifact")
    ap.add_argument("--headline", required=True,
                    help="gauge under test (higher is better)")
    ap.add_argument(
        "--normalize", required=True,
        help="same-run gauge used to cancel machine speed (e.g. a companion "
        "implementation on the identical hot path)",
    )
    ap.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional regression of the normalized headline "
        "(default: %(default)s)",
    )
    ap.add_argument(
        "--p99", default=None,
        help="optional latency histogram whose p99 (lower is better) is "
        "also gated",
    )
    ap.add_argument(
        "--p99-tolerance", type=float, default=1.0,
        help="allowed fractional increase of the normalized p99 "
        "(default: %(default)s, i.e. up to 2x)",
    )
    ap.add_argument(
        "--require-gauges", action="append", default=[],
        help="gauge-name prefix that must match at least one gauge in every "
        "current artifact (repeatable); guards against telemetry silently "
        "disappearing from a bench",
    )
    args = ap.parse_args()
    return run_gate(args.current, args.baseline, args.headline,
                    args.normalize, args.tolerance, args.p99,
                    args.p99_tolerance, args.require_gauges)


if __name__ == "__main__":
    sys.exit(main())
