// apram-trace — offline trace analyzer CLI.
//
// Re-derives the paper's per-operation bounds from a --metrics_out JSON
// artifact (obs/export.hpp schema, "events" array) with no access to the
// program that produced it:
//
//   apram-trace summary <metrics.json>
//       Per-op-kind table: op count, access min/mean/max, helps, plus the
//       truncated/open-op and untagged-access totals.
//
//   apram-trace check <metrics.json> --bound scan --bound tree_update ...
//       Checks every complete operation of the named kinds against the
//       closed forms (obs/analyze.hpp). `--bound name=formula` additionally
//       requires `formula` (spaces stripped) to match the canonical formula
//       — a checksum that CI and the analyzer agree on which theorem is
//       being re-derived:
//
//         --bound scan=n^2-1
//         --bound tree_update=1+8ceil(log2n)
//         --bound tree_scan=1
//         --bound agreement --log_ratio <log2(delta/eps)>
//         --bound u2_help=n-1
//         --bound queue_op=clog2n
//
//       `--n N` overrides the process count (default: max pid + 1 in the
//       trace). Exit 0 iff every requested bound checked at least one
//       complete op and found no violation; a bound that checks zero ops
//       fails — a check that verified nothing must not pass CI.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/analyze.hpp"

namespace {

using apram::obs::BoundReport;
using apram::obs::OpKind;
using apram::obs::OpStats;
using apram::obs::TraceAnalysis;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  apram-trace summary <metrics.json>\n"
      "  apram-trace check <metrics.json> --bound <name[=formula]>...\n"
      "               [--n N] [--log_ratio X]\n"
      "  apram-trace heatmap <metrics.json> [--top K] [--json <out.json>]\n"
      "  apram-trace helpgraph <metrics.json> [--n N]\n"
      "  apram-trace diff <baseline.json> <current.json> [--top K]\n"
      "               [--fail-above PCT]\n"
      "bounds: scan[=n^2-1]  tree_update[=1+8ceil(log2n)]  tree_scan[=1]\n"
      "        agreement[=(2n+1)(log2(delta/eps)+3)+8n] (needs --log_ratio)\n"
      "        u2_help[=n-1]  scenario_op[=1]  queue_op[=clog2n]\n");
  std::exit(2);
}

std::string strip_spaces(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

int run_summary(const std::string& path) {
  const TraceAnalysis a =
      apram::obs::analyze(apram::obs::load_events_json(path));

  std::printf("%-12s %6s %10s %10s %10s %7s\n", "op kind", "ops", "min",
              "mean", "max", "helps");
  static const OpKind kKinds[] = {
      OpKind::kScan,    OpKind::kWriteL,     OpKind::kReadMax,
      OpKind::kPost,    OpKind::kTreeUpdate, OpKind::kTreeScan,
      OpKind::kInput,   OpKind::kOutput,     OpKind::kExecute,
      OpKind::kUser,    OpKind::kU2Execute,  OpKind::kU2Insert,
      OpKind::kU2Remove, OpKind::kU2Contains, OpKind::kScenarioOp,
      OpKind::kEnqueue, OpKind::kDequeue,     OpKind::kUnion,
      OpKind::kFind,
  };
  for (OpKind kind : kKinds) {
    const std::vector<const OpStats*> ops = a.complete_of(kind);
    if (ops.empty()) continue;
    std::uint64_t lo = ~0ull, hi = 0, sum = 0, helps = 0;
    for (const OpStats* s : ops) {
      lo = std::min(lo, s->accesses());
      hi = std::max(hi, s->accesses());
      sum += s->accesses();
      helps += s->helps;
    }
    std::printf("%-12s %6zu %10llu %10.1f %10llu %7llu\n",
                apram::obs::op_kind_name(kind), ops.size(),
                static_cast<unsigned long long>(lo),
                static_cast<double>(sum) / static_cast<double>(ops.size()),
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(helps));
  }
  std::printf("pids: %d   truncated ops: %llu   open ops: %llu   "
              "untagged accesses: %llu\n",
              a.num_pids, static_cast<unsigned long long>(a.truncated_ops),
              static_cast<unsigned long long>(a.open_ops),
              static_cast<unsigned long long>(a.untagged_accesses));
  return 0;
}

int run_check(const std::string& path, const std::vector<std::string>& bounds,
              int n, double log_ratio) {
  const TraceAnalysis a =
      apram::obs::analyze(apram::obs::load_events_json(path));

  bool ok = true;
  for (const std::string& spec : bounds) {
    std::string name = spec;
    std::string formula;
    const std::size_t eq = spec.find('=');
    if (eq != std::string::npos) {
      name = spec.substr(0, eq);
      formula = strip_spaces(spec.substr(eq + 1));
    }
    const std::string canonical = apram::obs::bound_formula(name);
    if (canonical.empty()) {
      std::fprintf(stderr, "unknown bound name: %s\n", name.c_str());
      return 2;
    }
    if (!formula.empty() && formula != canonical) {
      std::fprintf(stderr,
                   "bound formula mismatch for %s: got \"%s\", the analyzer "
                   "derives \"%s\"\n",
                   name.c_str(), formula.c_str(), canonical.c_str());
      return 2;
    }

    BoundReport report;
    if (name == "scan") {
      report = apram::obs::check_scan_bound(a, n);
    } else if (name == "tree_update") {
      report = apram::obs::check_tree_update_bound(a, n);
    } else if (name == "tree_scan") {
      report = apram::obs::check_tree_scan_bound(a);
    } else if (name == "u2_help") {
      report = apram::obs::check_u2_help_bound(a, n);
    } else if (name == "scenario_op") {
      report = apram::obs::check_scenario_op_bound(a);
    } else if (name == "queue_op") {
      report = apram::obs::check_queue_op_bound(a, n);
    } else {
      if (log_ratio < 0.0) {
        std::fprintf(stderr, "--bound agreement requires --log_ratio\n");
        return 2;
      }
      report = apram::obs::check_agreement_bound(a, log_ratio, n);
    }

    std::printf("%s\n", apram::obs::format_report(report).c_str());
    if (!report.ok()) ok = false;
    if (report.checked == 0) {
      std::printf("FAIL %s: zero complete ops in the trace — nothing was "
                  "verified\n",
                  report.name.c_str());
      ok = false;
    }
  }
  if (a.truncated_ops != 0) {
    std::printf("note: %llu truncated op(s) excluded (ring overwrite)\n",
                static_cast<unsigned long long>(a.truncated_ops));
  }
  return ok ? 0 : 1;
}

// --- heatmap ---------------------------------------------------------------

using apram::obs::ContentionHeatmap;
using apram::obs::ContentionTotals;
using apram::obs::MetricsDoc;

// One table row in both the text and JSON renderings.
struct HeatRow {
  std::string label;
  ContentionTotals t;
};

void print_heat_table(const std::vector<HeatRow>& rows) {
  std::printf("%-10s %8s %8s %8s %8s %8s %8s %8s %8s\n", "level", "walks",
              "cas_att", "cas_fail", "fail%", "first", "second", "helped",
              "2xref%");
  for (const HeatRow& r : rows) {
    std::printf("%-10s %8llu %8llu %8llu %7.2f%% %8llu %8llu %8llu %7.2f%%\n",
                r.label.c_str(), static_cast<unsigned long long>(r.t.walks()),
                static_cast<unsigned long long>(r.t.cas_attempts),
                static_cast<unsigned long long>(r.t.cas_failures),
                100.0 * r.t.cas_fail_rate(),
                static_cast<unsigned long long>(r.t.first_refresh),
                static_cast<unsigned long long>(r.t.second_refresh),
                static_cast<unsigned long long>(r.t.helped),
                100.0 * r.t.double_refresh_rate());
  }
}

void write_heat_json(const std::string& path, const std::string& source,
                     const std::vector<HeatRow>& rows, int peak_level) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n  \"source\": \"%s\",\n  \"peak_level\": %d,\n"
              "  \"rows\": [\n", source.c_str(), peak_level);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ContentionTotals& t = rows[i].t;
    std::fprintf(
        f,
        "    {\"label\": \"%s\", \"walks\": %llu, \"cas_attempts\": %llu, "
        "\"cas_failures\": %llu, \"first_refresh\": %llu, "
        "\"second_refresh\": %llu, \"helped\": %llu, "
        "\"cas_fail_rate\": %.6f, \"double_refresh_rate\": %.6f}%s\n",
        rows[i].label.c_str(), static_cast<unsigned long long>(t.walks()),
        static_cast<unsigned long long>(t.cas_attempts),
        static_cast<unsigned long long>(t.cas_failures),
        static_cast<unsigned long long>(t.first_refresh),
        static_cast<unsigned long long>(t.second_refresh),
        static_cast<unsigned long long>(t.helped), t.cas_fail_rate(),
        t.double_refresh_rate(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

// Gauge-derived fallback: reassemble per-level ContentionTotals from
// `<prefix>.level<k>.<field>` gauge names (obs/contention.cpp's export
// schema). Returns rows grouped per structure prefix.
std::vector<HeatRow> heat_rows_from_gauges(const MetricsDoc& doc) {
  std::vector<HeatRow> rows;
  std::map<std::string, ContentionTotals> by_scope;  // "<prefix>.level<k>"
  for (const auto& [name, value] : doc.gauges) {
    const std::size_t at = name.rfind(".level");
    if (at == std::string::npos) continue;
    const std::size_t dot = name.find('.', at + 1);
    if (dot == std::string::npos) continue;
    // digits between ".level" and the next '.'
    const std::string digits = name.substr(at + 6, dot - (at + 6));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const std::string scope = name.substr(0, dot);
    const std::string field = name.substr(dot + 1);
    ContentionTotals& t = by_scope[scope];
    const auto v = static_cast<std::uint64_t>(value);
    if (field == "cas_attempts") t.cas_attempts = v;
    else if (field == "cas_failures") t.cas_failures = v;
    else if (field == "first_refresh") t.first_refresh = v;
    else if (field == "second_refresh") t.second_refresh = v;
    else if (field == "helped") t.helped = v;
    // walks / *_rate are derived; recomputed by ContentionTotals itself.
  }
  for (auto& [scope, t] : by_scope) rows.push_back({scope, t});
  // Numeric level order within each prefix: ".level2" before ".level10".
  std::sort(rows.begin(), rows.end(), [](const HeatRow& a, const HeatRow& b) {
    const std::size_t pa = a.label.rfind(".level");
    const std::size_t pb = b.label.rfind(".level");
    const std::string sa = a.label.substr(0, pa);
    const std::string sb = b.label.substr(0, pb);
    if (sa != sb) return sa < sb;
    return std::atoi(a.label.c_str() + pa + 6) <
           std::atoi(b.label.c_str() + pb + 6);
  });
  return rows;
}

int run_heatmap(const std::string& path, int top,
                const std::string& json_out) {
  // Trace-derived when the artifact carries events; otherwise reassembled
  // from the exported contention gauges (rates recomputed from raw counts
  // either way).
  std::vector<apram::obs::TraceEvent> events;
  const MetricsDoc doc = apram::obs::load_metrics_json(path);
  if (apram::obs::metrics_json_has_events(path)) {
    events = apram::obs::load_events_json(path);
  }

  std::vector<HeatRow> rows;
  std::string source;
  int peak = -1;
  if (!events.empty()) {
    source = "trace";
    const ContentionHeatmap hm = apram::obs::contention_heatmap(events);
    for (std::size_t l = 0; l < hm.levels.size(); ++l) {
      rows.push_back({"level" + std::to_string(l), hm.levels[l]});
    }
    peak = hm.peak_level();
    std::printf("contention heatmap (trace-derived): %s\n", path.c_str());
    std::printf("refresh ops: %llu   levels: %zu   peak level: %d%s\n",
                static_cast<unsigned long long>(hm.refresh_ops),
                hm.levels.size(), peak,
                peak >= 0 && peak + 1 == static_cast<int>(hm.levels.size())
                    ? " (root)"
                    : "");
    print_heat_table(rows);
    // Hottest individual nodes by lost CASes — the register ids come from
    // the trace, so they are comparable within one structure only.
    std::vector<std::pair<int, ContentionTotals>> hot(hm.nodes.begin(),
                                                      hm.nodes.end());
    std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
      return a.second.cas_failures > b.second.cas_failures;
    });
    if (!hot.empty()) {
      std::printf("hottest nodes (by lost CASes):\n");
      for (std::size_t i = 0;
           i < hot.size() && i < static_cast<std::size_t>(top); ++i) {
        const auto lvl = hm.node_level.find(hot[i].first);
        std::printf(
            "  reg %-6d level %-3d walks %-8llu cas_fail %-8llu 2xref %.2f%%\n",
            hot[i].first, lvl == hm.node_level.end() ? -1 : lvl->second,
            static_cast<unsigned long long>(hot[i].second.walks()),
            static_cast<unsigned long long>(hot[i].second.cas_failures),
            100.0 * hot[i].second.double_refresh_rate());
      }
    }
  } else {
    source = "gauges";
    rows = heat_rows_from_gauges(doc);
    if (rows.empty()) {
      std::fprintf(stderr,
                   "%s has neither trace events nor contention gauges — "
                   "nothing to map\n",
                   path.c_str());
      return 1;
    }
    // Peak = highest double-refresh rate among walked scopes (ties → later
    // row, i.e. the higher level of its structure).
    double best = -1.0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].t.walks() == 0) continue;
      const double r = rows[i].t.double_refresh_rate();
      if (r >= best) {
        best = r;
        peak = static_cast<int>(i);
      }
    }
    std::printf("contention heatmap (gauge-derived): %s\n", path.c_str());
    print_heat_table(rows);
    if (peak >= 0) {
      std::printf("peak row: %s\n", rows[static_cast<std::size_t>(peak)]
                                        .label.c_str());
    }
  }
  if (!json_out.empty()) write_heat_json(json_out, source, rows, peak);
  return 0;
}

// --- helpgraph -------------------------------------------------------------

int run_helpgraph(const std::string& path, int n) {
  const std::vector<apram::obs::TraceEvent> events =
      apram::obs::load_events_json(path);
  const apram::obs::HelpGraph g = apram::obs::help_graph(events);
  const TraceAnalysis a = apram::obs::analyze(events);
  const int procs = n > 0 ? n : a.num_pids;

  std::printf("help graph: %s\n", path.c_str());
  std::printf("u2 ops: %llu   help edges: %zu   total helps: %llu   "
              "max distinct helped per op: %llu (bound n-1 = %d)\n",
              static_cast<unsigned long long>(g.ops_seen), g.edges.size(),
              static_cast<unsigned long long>(g.total_helps),
              static_cast<unsigned long long>(g.max_distinct_helped),
              procs - 1);
  for (const auto& [edge, count] : g.edges) {
    std::printf("  p%-3d -> p%-3d %8llu\n", edge.first, edge.second,
                static_cast<unsigned long long>(count));
  }
  std::printf("%-6s %10s %10s\n", "pid", "given", "received");
  for (int p = 0; p < g.num_pids; ++p) {
    const std::uint64_t gv = g.given(p);
    const std::uint64_t rc = g.received(p);
    if (gv == 0 && rc == 0) continue;
    std::printf("p%-5d %10llu %10llu\n", p,
                static_cast<unsigned long long>(gv),
                static_cast<unsigned long long>(rc));
  }

  if (g.ops_seen == 0) {
    std::printf("FAIL helpgraph: no universal2 ops in the trace — nothing "
                "was verified\n");
    return 1;
  }

  // Cross-check: the graph's per-op maximum must tell the same story as the
  // independent span-walk bound check. Disagreement means one of the two
  // derivations is wrong — fail loudly either way.
  const BoundReport report = apram::obs::check_u2_help_bound(a, procs);
  std::printf("%s\n", apram::obs::format_report(report).c_str());
  const bool graph_ok =
      g.max_distinct_helped <= static_cast<std::uint64_t>(procs - 1);
  if (graph_ok != report.ok()) {
    std::printf("FAIL helpgraph: graph verdict (%s) disagrees with "
                "u2_help bound check (%s)\n", graph_ok ? "ok" : "violation",
                report.ok() ? "ok" : "violation");
    return 1;
  }
  return graph_ok ? 0 : 1;
}

// --- diff ------------------------------------------------------------------

int run_diff(const std::string& base_path, const std::string& cur_path,
             int top, double fail_above_pct) {
  const MetricsDoc base = apram::obs::load_metrics_json(base_path);
  const MetricsDoc cur = apram::obs::load_metrics_json(cur_path);

  struct Delta {
    std::string name;
    double before = 0, after = 0, rel = 0;  // rel = (after-before)/|before|
  };
  std::vector<Delta> deltas;
  std::vector<std::string> added, removed;

  auto scan = [&](auto& base_map, auto& cur_map, const char* section) {
    for (const auto& [name, bv] : base_map) {
      auto it = cur_map.find(name);
      if (it == cur_map.end()) {
        removed.push_back(std::string(section) + "." + name);
        continue;
      }
      const double b = static_cast<double>(bv);
      const double c = static_cast<double>(it->second);
      if (b == c) continue;
      const double rel = b != 0.0 ? (c - b) / std::abs(b)
                                  : (c > 0 ? 1.0 : -1.0);
      deltas.push_back({std::string(section) + "." + name, b, c, rel});
    }
    for (const auto& [name, cv] : cur_map) {
      if (base_map.find(name) == base_map.end()) {
        added.push_back(std::string(section) + "." + name);
      }
    }
  };
  scan(base.counters, cur.counters, "counter");
  scan(base.gauges, cur.gauges, "gauge");
  for (const auto& [name, bh] : base.histograms) {
    auto it = cur.histograms.find(name);
    if (it == cur.histograms.end()) {
      removed.push_back("histogram." + name);
      continue;
    }
    auto hist_delta = [&](const char* stat, double b, double c) {
      if (b == c) return;
      const double rel = b != 0.0 ? (c - b) / std::abs(b)
                                  : (c > 0 ? 1.0 : -1.0);
      deltas.push_back({"histogram." + name + "." + stat, b, c, rel});
    };
    hist_delta("p50", bh.p50, it->second.p50);
    hist_delta("p99", bh.p99, it->second.p99);
    hist_delta("mean", bh.mean, it->second.mean);
  }
  for (const auto& [name, ch] : cur.histograms) {
    if (base.histograms.find(name) == base.histograms.end()) {
      added.push_back("histogram." + name);
    }
  }

  std::sort(deltas.begin(), deltas.end(), [](const Delta& a, const Delta& b) {
    return std::abs(a.rel) > std::abs(b.rel);
  });

  std::printf("metrics diff: %s -> %s\n", base_path.c_str(),
              cur_path.c_str());
  std::printf("%zu changed, %zu added, %zu removed (top %d by |relative "
              "change|)\n", deltas.size(), added.size(), removed.size(), top);
  for (std::size_t i = 0;
       i < deltas.size() && i < static_cast<std::size_t>(top); ++i) {
    std::printf("  %+9.2f%%  %-50s %14.6g -> %.6g\n", 100.0 * deltas[i].rel,
                deltas[i].name.c_str(), deltas[i].before, deltas[i].after);
  }
  for (const std::string& name : added) {
    std::printf("  added:   %s\n", name.c_str());
  }
  for (const std::string& name : removed) {
    std::printf("  removed: %s\n", name.c_str());
  }

  if (fail_above_pct >= 0.0) {
    bool failed = false;
    for (const Delta& d : deltas) {
      if (std::abs(d.rel) * 100.0 > fail_above_pct) {
        std::printf("FAIL diff: %s changed %.2f%% (> %.2f%%)\n",
                    d.name.c_str(), 100.0 * d.rel, fail_above_pct);
        failed = true;
      }
    }
    if (failed) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];

  std::vector<std::string> bounds;
  std::string path2, json_out;
  int n = 0, top = 10;
  double log_ratio = -1.0, fail_above = -1.0;
  int i = 3;
  if (cmd == "diff") {
    if (argc < 4) usage();
    path2 = argv[3];
    i = 4;
  }
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (arg == flag && i + 1 < argc) return argv[++i];
      usage();
    };
    if (arg.rfind("--bound", 0) == 0) {
      bounds.push_back(value("--bound"));
    } else if (arg.rfind("--n", 0) == 0 && arg.rfind("--log", 0) != 0) {
      n = std::atoi(value("--n").c_str());
    } else if (arg.rfind("--log_ratio", 0) == 0) {
      log_ratio = std::atof(value("--log_ratio").c_str());
    } else if (arg.rfind("--top", 0) == 0) {
      top = std::atoi(value("--top").c_str());
    } else if (arg.rfind("--json", 0) == 0) {
      json_out = value("--json");
    } else if (arg.rfind("--fail-above", 0) == 0) {
      fail_above = std::atof(value("--fail-above").c_str());
    } else {
      usage();
    }
  }

  if (cmd == "summary") {
    if (!bounds.empty()) usage();
    return run_summary(path);
  }
  if (cmd == "check") {
    if (bounds.empty()) usage();
    return run_check(path, bounds, n, log_ratio);
  }
  if (cmd == "heatmap") return run_heatmap(path, top, json_out);
  if (cmd == "helpgraph") return run_helpgraph(path, n);
  if (cmd == "diff") return run_diff(path, path2, top, fail_above);
  usage();
}
