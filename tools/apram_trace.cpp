// apram-trace — offline trace analyzer CLI.
//
// Re-derives the paper's per-operation bounds from a --metrics_out JSON
// artifact (obs/export.hpp schema, "events" array) with no access to the
// program that produced it:
//
//   apram-trace summary <metrics.json>
//       Per-op-kind table: op count, access min/mean/max, helps, plus the
//       truncated/open-op and untagged-access totals.
//
//   apram-trace check <metrics.json> --bound scan --bound tree_update ...
//       Checks every complete operation of the named kinds against the
//       closed forms (obs/analyze.hpp). `--bound name=formula` additionally
//       requires `formula` (spaces stripped) to match the canonical formula
//       — a checksum that CI and the analyzer agree on which theorem is
//       being re-derived:
//
//         --bound scan=n^2-1
//         --bound tree_update=1+8ceil(log2n)
//         --bound tree_scan=1
//         --bound agreement --log_ratio <log2(delta/eps)>
//         --bound u2_help=n-1
//         --bound queue_op=clog2n
//
//       `--n N` overrides the process count (default: max pid + 1 in the
//       trace). Exit 0 iff every requested bound checked at least one
//       complete op and found no violation; a bound that checks zero ops
//       fails — a check that verified nothing must not pass CI.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/analyze.hpp"

namespace {

using apram::obs::BoundReport;
using apram::obs::OpKind;
using apram::obs::OpStats;
using apram::obs::TraceAnalysis;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  apram-trace summary <metrics.json>\n"
      "  apram-trace check <metrics.json> --bound <name[=formula]>...\n"
      "               [--n N] [--log_ratio X]\n"
      "bounds: scan[=n^2-1]  tree_update[=1+8ceil(log2n)]  tree_scan[=1]\n"
      "        agreement[=(2n+1)(log2(delta/eps)+3)+8n] (needs --log_ratio)\n"
      "        u2_help[=n-1]  scenario_op[=1]  queue_op[=clog2n]\n");
  std::exit(2);
}

std::string strip_spaces(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

int run_summary(const std::string& path) {
  const TraceAnalysis a =
      apram::obs::analyze(apram::obs::load_events_json(path));

  std::printf("%-12s %6s %10s %10s %10s %7s\n", "op kind", "ops", "min",
              "mean", "max", "helps");
  static const OpKind kKinds[] = {
      OpKind::kScan,    OpKind::kWriteL,     OpKind::kReadMax,
      OpKind::kPost,    OpKind::kTreeUpdate, OpKind::kTreeScan,
      OpKind::kInput,   OpKind::kOutput,     OpKind::kExecute,
      OpKind::kUser,    OpKind::kU2Execute,  OpKind::kU2Insert,
      OpKind::kU2Remove, OpKind::kU2Contains, OpKind::kScenarioOp,
      OpKind::kEnqueue, OpKind::kDequeue,     OpKind::kUnion,
      OpKind::kFind,
  };
  for (OpKind kind : kKinds) {
    const std::vector<const OpStats*> ops = a.complete_of(kind);
    if (ops.empty()) continue;
    std::uint64_t lo = ~0ull, hi = 0, sum = 0, helps = 0;
    for (const OpStats* s : ops) {
      lo = std::min(lo, s->accesses());
      hi = std::max(hi, s->accesses());
      sum += s->accesses();
      helps += s->helps;
    }
    std::printf("%-12s %6zu %10llu %10.1f %10llu %7llu\n",
                apram::obs::op_kind_name(kind), ops.size(),
                static_cast<unsigned long long>(lo),
                static_cast<double>(sum) / static_cast<double>(ops.size()),
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(helps));
  }
  std::printf("pids: %d   truncated ops: %llu   open ops: %llu   "
              "untagged accesses: %llu\n",
              a.num_pids, static_cast<unsigned long long>(a.truncated_ops),
              static_cast<unsigned long long>(a.open_ops),
              static_cast<unsigned long long>(a.untagged_accesses));
  return 0;
}

int run_check(const std::string& path, const std::vector<std::string>& bounds,
              int n, double log_ratio) {
  const TraceAnalysis a =
      apram::obs::analyze(apram::obs::load_events_json(path));

  bool ok = true;
  for (const std::string& spec : bounds) {
    std::string name = spec;
    std::string formula;
    const std::size_t eq = spec.find('=');
    if (eq != std::string::npos) {
      name = spec.substr(0, eq);
      formula = strip_spaces(spec.substr(eq + 1));
    }
    const std::string canonical = apram::obs::bound_formula(name);
    if (canonical.empty()) {
      std::fprintf(stderr, "unknown bound name: %s\n", name.c_str());
      return 2;
    }
    if (!formula.empty() && formula != canonical) {
      std::fprintf(stderr,
                   "bound formula mismatch for %s: got \"%s\", the analyzer "
                   "derives \"%s\"\n",
                   name.c_str(), formula.c_str(), canonical.c_str());
      return 2;
    }

    BoundReport report;
    if (name == "scan") {
      report = apram::obs::check_scan_bound(a, n);
    } else if (name == "tree_update") {
      report = apram::obs::check_tree_update_bound(a, n);
    } else if (name == "tree_scan") {
      report = apram::obs::check_tree_scan_bound(a);
    } else if (name == "u2_help") {
      report = apram::obs::check_u2_help_bound(a, n);
    } else if (name == "scenario_op") {
      report = apram::obs::check_scenario_op_bound(a);
    } else if (name == "queue_op") {
      report = apram::obs::check_queue_op_bound(a, n);
    } else {
      if (log_ratio < 0.0) {
        std::fprintf(stderr, "--bound agreement requires --log_ratio\n");
        return 2;
      }
      report = apram::obs::check_agreement_bound(a, log_ratio, n);
    }

    std::printf("%s\n", apram::obs::format_report(report).c_str());
    if (!report.ok()) ok = false;
    if (report.checked == 0) {
      std::printf("FAIL %s: zero complete ops in the trace — nothing was "
                  "verified\n",
                  report.name.c_str());
      ok = false;
    }
  }
  if (a.truncated_ops != 0) {
    std::printf("note: %llu truncated op(s) excluded (ring overwrite)\n",
                static_cast<unsigned long long>(a.truncated_ops));
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];

  std::vector<std::string> bounds;
  int n = 0;
  double log_ratio = -1.0;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (arg == flag && i + 1 < argc) return argv[++i];
      usage();
    };
    if (arg.rfind("--bound", 0) == 0) {
      bounds.push_back(value("--bound"));
    } else if (arg.rfind("--n", 0) == 0 && arg.rfind("--log", 0) != 0) {
      n = std::atoi(value("--n").c_str());
    } else if (arg.rfind("--log_ratio", 0) == 0) {
      log_ratio = std::atof(value("--log_ratio").c_str());
    } else {
      usage();
    }
  }

  if (cmd == "summary") {
    if (!bounds.empty()) usage();
    return run_summary(path);
  }
  if (cmd == "check") {
    if (bounds.empty()) usage();
    return run_check(path, bounds, n, log_ratio);
  }
  usage();
}
