#include "core/universal.hpp"
#include "objects/specs.hpp"

namespace apram {

// Anchor translation unit: instantiate the universal construction for the
// counter spec so template errors surface in the library build, not only in
// client code.
template class UniversalObjectSim<CounterSpec>;

}  // namespace apram
