// The generic wait-free construction for commute/overwrite objects
// (Figure 4, §5.4).
//
// Representation: a shared precedence graph of *entries*, one per completed
// operation. An entry records the invocation, the response, and n pointers
// to the latest entry of every process at the time the operation started
// (its snapshot *view*). The graph is rooted in an anchor array (the atomic
// snapshot object of §6): root[P] points to P's most recent entry.
//
// execute(P, inv):
//   Step 1 — take an atomic snapshot of the anchor array; collect the
//            entries reachable from it (the precedence graph); build its
//            linearization graph (Figure 3); topologically sort it; run the
//            sequential specification over that linearization to obtain the
//            state, and from it the response to `inv`.
//   Step 2 — create the entry and publish it with a single anchor write.
//
// Shared-memory cost: one snapshot scan (O(n²) reads/writes, §6.2) plus one
// anchor write — the O(n²) overhead Theorem/§5.4 promises. Traversal of the
// (immutable, already-published) entries is local bookkeeping; the paper
// accounts it as construction overhead, not as shared-memory steps.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "algebra/spec.hpp"
#include "core/universal_linearize.hpp"
#include "obs/span.hpp"
#include "snapshot/atomic_snapshot.hpp"

namespace apram {

template <SequentialSpec S>
class UniversalObjectSim {
 public:
  struct Entry {
    int pid = -1;
    std::uint64_t seq = 0;  // per-process operation index (1-based)
    typename S::Invocation inv{};
    typename S::Response resp{};
    std::vector<const Entry*> preceding;  // anchor view at operation start
  };

  UniversalObjectSim(sim::World& world, int num_procs, const std::string& name,
                     ScanMode mode = ScanMode::kOptimized)
      : n_(num_procs),
        root_(world, num_procs, name + ".root", mode),
        next_seq_(static_cast<std::size_t>(num_procs), 1) {}

  int num_procs() const { return n_; }

  // Figure 4's execute().
  sim::SimCoro<typename S::Response> execute(sim::Context ctx,
                                             typename S::Invocation inv) {
    const int p = ctx.pid();
    ctx.op_begin(obs::OpKind::kExecute);

    // Step 1: atomic scan of the root array -> view.
    ctx.op_phase(obs::Phase::kCollect);
    SnapshotView<const Entry*> view = co_await root_.scan(ctx);

    // Construct the linearization of the precedence graph rooted at the
    // view and compute the response from the resulting sequential history.
    const Linearized lin = linearize_view(view);
    auto [state, responses] = replay_history(lin);
    (void)responses;
    auto [next_state, resp] = S::apply(state, inv);
    (void)next_state;

    // Create the entry, filling in response and precedence edges.
    Entry& e = arena_.emplace_back();
    e.pid = p;
    e.seq = next_seq_[static_cast<std::size_t>(p)]++;
    e.inv = std::move(inv);
    e.resp = resp;
    e.preceding.resize(static_cast<std::size_t>(n_), nullptr);
    for (int q = 0; q < n_; ++q) {
      const auto& slot = view[static_cast<std::size_t>(q)];
      if (slot.has_value()) e.preceding[static_cast<std::size_t>(q)] = *slot;
    }

    // Step 2: write out the entry (one anchor write).
    ctx.op_phase(obs::Phase::kPublish);
    co_await root_.update(ctx, &e);
    ctx.op_end(obs::OpKind::kExecute);
    co_return resp;
  }

  // --- Introspection for tests and benches --------------------------------

  // The linearized history of the entries reachable from the *current*
  // anchor state (no simulation steps; test-only).
  std::vector<const Entry*> current_history() const {
    SnapshotView<const Entry*> view(static_cast<std::size_t>(n_));
    for (int q = 0; q < n_; ++q) {
      // peek the lattice registers directly through the snapshot object
      view[static_cast<std::size_t>(q)] = std::nullopt;
    }
    // Rebuild from the last published values: use the snapshot's level-0
    // registers, which hold every process's latest post.
    using L = typename AtomicSnapshotSim<const Entry*>::Lattice;
    typename L::Value joined = L::bottom();
    for (int q = 0; q < n_; ++q) {
      joined = L::join(
          joined, root_.lattice_scan().register_at(q, 0).peek());
    }
    for (std::size_t q = 0; q < joined.size(); ++q) {
      if (joined[q].tag != 0) view[q] = joined[q].value;
    }
    const Linearized lin = linearize_view(view);
    return lin.entries;
  }

  std::size_t entries_created() const { return arena_.size(); }

 private:
  struct Linearized {
    std::vector<const Entry*> entries;  // in linearization order
  };

  // Collects the entries reachable from `view`, builds the precedence DAG
  // (direct `preceding` edges; reachability supplies the rest), applies the
  // Figure 3 construction, and returns the entries in linearization order.
  // Shared with universal2::PaperUniversal via core/universal_linearize.hpp.
  Linearized linearize_view(const SnapshotView<const Entry*>& view) const {
    return Linearized{linearize_entries<S, Entry>(view)};
  }

  // Runs the sequential spec over a linearized history.
  static std::pair<typename S::State, std::vector<typename S::Response>>
  replay_history(const Linearized& lin) {
    std::vector<typename S::Invocation> invs;
    invs.reserve(lin.entries.size());
    for (const Entry* e : lin.entries) invs.push_back(e->inv);
    auto run = run_sequential<S>(invs);
    return {std::move(run.final_state), std::move(run.responses)};
  }

  int n_;
  AtomicSnapshotSim<const Entry*> root_;
  std::deque<Entry> arena_;  // stable addresses; owned by the object
  std::vector<std::uint64_t> next_seq_;
};

}  // namespace apram
