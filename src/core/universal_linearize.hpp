// Shared linearization logic of the universal construction (Figure 3/4).
//
// Extracted from core/universal.hpp so both the sim-only
// UniversalObjectSim and the backend-generic universal2::PaperUniversal
// (the apples-to-apples baseline in bench_e6) run the identical algorithm:
// discover the entries reachable from a snapshot view, build the
// precedence DAG from the direct `preceding` pointers, and linearize it
// with Definition 14 dominance as the tie-break.
//
// Entry is any type exposing `pid`, `seq`, `inv` (an S::Invocation) and
// `preceding` (a vector of const Entry*). The canonical node order is
// (pid, seq) — stable across processes and replays, so identical views
// linearize identically everywhere (the agreement property Figure 4 needs).
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "algebra/spec.hpp"
#include "graph/lingraph.hpp"

namespace apram {

template <SequentialSpec S, class Entry>
std::vector<const Entry*> linearize_entries(
    const std::vector<std::optional<const Entry*>>& view) {
  // Discover reachable entries.
  std::vector<const Entry*> stack;
  std::map<const Entry*, int> seen;  // entry -> discovery marker
  for (const auto& slot : view) {
    if (slot.has_value() && *slot != nullptr && !seen.count(*slot)) {
      seen.emplace(*slot, 0);
      stack.push_back(*slot);
    }
  }
  std::vector<const Entry*> nodes;
  while (!stack.empty()) {
    const Entry* e = stack.back();
    stack.pop_back();
    nodes.push_back(e);
    for (const Entry* pred : e->preceding) {
      if (pred != nullptr && !seen.count(pred)) {
        seen.emplace(pred, 0);
        stack.push_back(pred);
      }
    }
  }

  // Canonical node order: by (pid, seq).
  std::sort(nodes.begin(), nodes.end(), [](const Entry* a, const Entry* b) {
    return std::make_pair(a->pid, a->seq) < std::make_pair(b->pid, b->seq);
  });
  std::map<const Entry*, int> index;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    index.emplace(nodes[i], static_cast<int>(i));
  }

  // Precedence DAG from the direct preceding pointers.
  Digraph prec(static_cast<int>(nodes.size()));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const Entry* pred : nodes[i]->preceding) {
      if (pred == nullptr) continue;
      const int pi = index.at(pred);
      if (pi != static_cast<int>(i) &&
          !prec.has_edge(pi, static_cast<int>(i))) {
        prec.add_edge(pi, static_cast<int>(i));
      }
    }
  }

  const std::vector<int> order = linearize(prec, [&](int a, int b) {
    const Entry* ea = nodes[static_cast<std::size_t>(a)];
    const Entry* eb = nodes[static_cast<std::size_t>(b)];
    return dominates<S>(ea->inv, ea->pid, eb->inv, eb->pid);
  });

  std::vector<const Entry*> out;
  out.reserve(order.size());
  for (int i : order) out.push_back(nodes[static_cast<std::size_t>(i)]);
  return out;
}

}  // namespace apram
