// libapram — umbrella header.
//
// Wait-free data structures in the asynchronous PRAM model, after
// Aspnes & Herlihy (SPAA 1990). Including this header pulls in the whole
// public API; the individual headers are self-contained if you want less.
//
// Layering (bottom to top):
//
//   util/       — rng, stats, tables, flags               (no dependencies)
//   obs/        — observability: sharded metrics registry, ring-buffer
//                 event tracer, JSON/table exporters, replay artifacts
//   sim/        — the asynchronous PRAM simulator: coroutine processes,
//                 atomic registers, schedulers, deterministic replay
//   lattice/    — ∨-semilattices (max, set-union, tagged-vector, product)
//   snapshot/   — the §6 lattice Scan and atomic snapshot object, plus the
//                 double-collect / AADGMS / mutex baselines
//   agreement/  — §4 approximate agreement (Figure 2), the midpoint
//                 two-process testbed, and the Lemma 6 adversary
//   algebra/    — §5.1 sequential specs and the commute/overwrite algebra
//   graph/      — §5.3 precedence graphs and the Figure 3 lingraph
//   core/       — §5.4 universal construction for commute/overwrite objects
//   objects/    — counter, grow-set, max-register, Lamport clock,
//                 type-optimized FastCounter, pseudo read-modify-write
//   lincheck/   — history recording and a Wing–Gong linearizability checker
//   rt/         — real-thread (std::atomic) runtime: SWMR registers, the
//                 same scan/snapshot/agreement algorithms, thread harness
#pragma once

#include "agreement/adversary.hpp"
#include "agreement/approx_agreement.hpp"
#include "agreement/approx_spec.hpp"
#include "agreement/midpoint_agreement.hpp"
#include "algebra/check.hpp"
#include "algebra/spec.hpp"
#include "core/universal.hpp"
#include "graph/digraph.hpp"
#include "graph/lingraph.hpp"
#include "lattice/lattice.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "objects/adopt_commit.hpp"
#include "objects/counter.hpp"
#include "objects/fast_counter.hpp"
#include "objects/grow_set.hpp"
#include "objects/join_map.hpp"
#include "objects/logical_clock.hpp"
#include "objects/pseudo_rmw.hpp"
#include "objects/randomized_consensus.hpp"
#include "objects/specs.hpp"
#include "obs/analyze.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/replay_artifact.hpp"
#include "obs/rt_probe.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "rt/afek_snapshot_rt.hpp"
#include "rt/approx_agreement_rt.hpp"
#include "rt/double_collect_rt.hpp"
#include "rt/fast_counter_rt.hpp"
#include "rt/register.hpp"
#include "rt/thread_harness.hpp"
#include "sim/explore.hpp"
#include "sim/replay.hpp"
#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "snapshot/atomic_snapshot.hpp"
#include "snapshot/baselines/afek_snapshot.hpp"
#include "snapshot/baselines/double_collect.hpp"
#include "snapshot/baselines/mutex_snapshot.hpp"
#include "snapshot/lattice_agreement.hpp"
#include "snapshot/lattice_scan.hpp"
#include "snapshot/scan_stats.hpp"
