#include "util/rng.hpp"

// Header-only; this translation unit exists so the target has a definition
// anchor and the header is compiled standalone at least once.
