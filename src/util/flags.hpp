// Minimal command-line flag parsing for bench and example binaries.
//
// Accepted syntax: --name=value or --name value. Unknown flags abort with a
// usage message so typos in experiment sweeps fail loudly instead of running
// the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace apram {

class Flags {
 public:
  Flags(int argc, char** argv);

  std::int64_t get_int(const std::string& name, std::int64_t def);
  double get_double(const std::string& name, double def);
  std::string get_string(const std::string& name, std::string def);
  bool get_bool(const std::string& name, bool def);

  // Call after all get_* calls: aborts if any provided flag was never read.
  void check_unused() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace apram
