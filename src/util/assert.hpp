// Lightweight always-on assertion macros for libapram.
//
// Unlike <cassert>, these fire in release builds too: the library's
// correctness claims (linearizability, lattice laws, step bounds) are the
// whole point of the project, so internal invariant violations must never be
// silently ignored in optimized benchmark runs.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace apram {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "[apram] assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace apram

#define APRAM_CHECK(expr)                                          \
  do {                                                             \
    if (!(expr)) ::apram::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define APRAM_CHECK_MSG(expr, msg)                                \
  do {                                                            \
    if (!(expr)) ::apram::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

// Debug-only variant (compiled out under NDEBUG) for checks on hot paths or
// in conditions that are survivable-but-suspicious in release builds — e.g.
// pin_this_shard clamping a shard index beyond kMaxShards.
#ifdef NDEBUG
#define APRAM_DCHECK_MSG(expr, msg) \
  do {                              \
  } while (0)
#else
#define APRAM_DCHECK_MSG(expr, msg) APRAM_CHECK_MSG(expr, msg)
#endif
