#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace apram {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  APRAM_CHECK(!columns_.empty());
}

Table& Table::add(std::string cell) {
  pending_.push_back(std::move(cell));
  return *this;
}

Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }

Table& Table::add(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return add(os.str());
}

Table& Table::end_row() {
  APRAM_CHECK_MSG(pending_.size() == columns_.size(),
                  "row has wrong number of cells");
  rows_.push_back(std::move(pending_));
  pending_.clear();
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }

  os << "\n== " << title_ << " ==\n";
  auto rule = [&] {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(widths[c])) << cells[c] << ' ';
    }
    os << "|\n";
  };
  rule();
  line(columns_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace apram
