// Plain-text table rendering for the experiment harness.
//
// Every bench binary prints its results as one or more of these tables so the
// paper-shaped output (rows of parameters and measured quantities) is easy to
// eyeball and to diff between runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace apram {

class Table {
 public:
  explicit Table(std::string title, std::vector<std::string> columns);

  // Row assembly: call add_* once per column, then end_row().
  Table& add(std::string cell);
  Table& add(std::int64_t v);
  Table& add(std::uint64_t v);
  Table& add(int v) { return add(static_cast<std::int64_t>(v)); }
  Table& add(double v, int precision = 3);
  Table& end_row();

  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

}  // namespace apram
