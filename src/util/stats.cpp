#include "util/stats.hpp"

namespace apram {

double percentile(std::vector<double> samples, double q) {
  APRAM_CHECK(!samples.empty());
  APRAM_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double linear_slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  APRAM_CHECK(x.size() == y.size());
  APRAM_CHECK(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  APRAM_CHECK_MSG(denom != 0.0, "degenerate x values in linear_slope");
  return (n * sxy - sx * sy) / denom;
}

}  // namespace apram
