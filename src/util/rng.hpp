// Deterministic, seedable pseudo-random number generation.
//
// Every randomized component in libapram (random schedulers, workload
// generators, property tests) draws from an explicitly seeded Rng so that
// any failure is reproducible from its seed. The generator is xoshiro256**,
// seeded through SplitMix64 per the authors' recommendation.
#pragma once

#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace apram {

// SplitMix64: used to expand a single 64-bit seed into generator state.
// Also useful directly as a cheap hash/mixer.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 — fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Unbiased integer in [0, bound) via Lemire's rejection method.
  std::uint64_t below(std::uint64_t bound) {
    APRAM_CHECK(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Integer in the closed interval [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    APRAM_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace apram
