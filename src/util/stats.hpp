// Small statistics helpers used by tests and the experiment harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace apram {

// Streaming min/max/mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Batch percentile computation over a sample vector.
// q in [0, 1]; uses linear interpolation between order statistics.
double percentile(std::vector<double> samples, double q);

// Least-squares slope of y against x. Used by benches to report the measured
// growth exponent/coefficient (e.g. rounds per doubling of delta/epsilon).
double linear_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace apram
