#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>

namespace apram {

namespace {

[[noreturn]] void usage_error(const std::string& program,
                              const std::string& detail) {
  std::fprintf(stderr, "%s: %s\nflags take the form --name=value\n",
               program.c_str(), detail.c_str());
  std::exit(2);
}

}  // namespace

Flags::Flags(int argc, char** argv) : program_(argc > 0 ? argv[0] : "bench") {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) usage_error(program_, "bad argument: " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag == boolean true
    }
  }
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) {
  used_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double def) {
  used_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::get_string(const std::string& name, std::string def) {
  used_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool Flags::get_bool(const std::string& name, bool def) {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

void Flags::check_unused() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!used_.count(name)) usage_error(program_, "unknown flag: --" + name);
  }
}

}  // namespace apram
