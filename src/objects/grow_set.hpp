// Wait-free grow-only set ("certain kinds of set abstractions", §5.1) via
// the universal construction: inserts commute, queries are overwritten.
#pragma once

#include <string>

#include "core/universal.hpp"
#include "objects/specs.hpp"

namespace apram {

class GrowSetSim {
 public:
  GrowSetSim(sim::World& world, int num_procs,
             const std::string& name = "gset",
             ScanMode mode = ScanMode::kOptimized)
      : u_(world, num_procs, name, mode) {}

  sim::SimCoro<void> insert(sim::Context ctx, std::int64_t x) {
    co_await u_.execute(ctx, GrowSetSpec::insert(x));
  }
  sim::SimCoro<bool> has(sim::Context ctx, std::int64_t x) {
    const std::int64_t r = co_await u_.execute(ctx, GrowSetSpec::has(x));
    co_return r != 0;
  }
  sim::SimCoro<std::int64_t> size(sim::Context ctx) {
    const std::int64_t r = co_await u_.execute(ctx, GrowSetSpec::size());
    co_return r;
  }

 private:
  UniversalObjectSim<GrowSetSpec> u_;
};

}  // namespace apram
