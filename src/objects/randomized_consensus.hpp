// Randomized wait-free consensus from atomic registers.
//
// §1/§2 context: deterministic consensus is impossible from reads and writes
// [23, 26] — which is exactly why Property 1 excludes consensus-strength
// objects — but "the asynchronous PRAM model is universal for randomized
// wait-free objects" [6]. This object demonstrates the claim with the
// classical commit-adopt + conciliator round structure, which keeps safety
// deterministic and pushes all randomness into liveness:
//
//   round r:
//     (verdict, v) := commit_adopt[r].propose(preference);
//     if verdict == commit  -> decide v;
//     preference := conciliator[r].refine(v);
//
// The conciliator is itself a shared object: post your preference, collect
// everyone's; if every posted preference you saw equals yours, KEEP it
// (never flip on agreement — this is what makes a commit in round r force a
// commit in round r+1: everyone left round r holding v, so nobody sees
// disagreement and nobody flips); only on observed disagreement re-draw
// uniformly among the values seen (all proposed, so validity is preserved
// for arbitrary inputs).
//
// Agreement and validity hold under EVERY schedule (commit-adopt coherence +
// the keep-on-agreement rule). Termination holds with probability 1 against
// an oblivious adversary: in each disagreeing round all coins land the same
// way with probability ≥ n^-n.
//
// Rounds consume pre-allocated instances; the pool size bounds only the
// demonstration (exceeding it aborts loudly), not the algorithm.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "objects/adopt_commit.hpp"
#include "util/rng.hpp"

namespace apram {

// One-shot conciliator: keep on unanimity, local-coin on disagreement.
class ConciliatorSim {
 public:
  ConciliatorSim(sim::World& world, int num_procs, const std::string& name)
      : n_(num_procs) {
    for (int p = 0; p < n_; ++p) {
      c_.push_back(&world.make_register<Slot>(
          name + ".C[" + std::to_string(p) + "]", Slot{}, /*writer=*/p));
    }
  }

  sim::SimCoro<std::int64_t> refine(sim::Context ctx, std::int64_t pref,
                                    Rng& coin) {
    const int p = ctx.pid();
    co_await ctx.write(*c_[static_cast<std::size_t>(p)], Slot{true, pref});
    std::vector<std::int64_t> seen;
    bool disagreement = false;
    for (int q = 0; q < n_; ++q) {
      const Slot s = co_await ctx.read(*c_[static_cast<std::size_t>(q)]);
      if (!s.set) continue;
      seen.push_back(s.value);
      if (s.value != pref) disagreement = true;
    }
    if (disagreement) {
      // Re-draw uniformly among the posted (hence valid) values.
      co_return seen[coin.below(seen.size())];
    }
    co_return pref;
  }

 private:
  struct Slot {
    bool set = false;
    std::int64_t value = 0;
  };

  int n_;
  std::vector<sim::Register<Slot>*> c_;
};

class RandomizedConsensusSim {
 public:
  RandomizedConsensusSim(sim::World& world, int num_procs,
                         const std::string& name = "cons",
                         int max_rounds = 64)
      : n_(num_procs) {
    rounds_.reserve(static_cast<std::size_t>(max_rounds));
    for (int r = 0; r < max_rounds; ++r) {
      rounds_.push_back(Round{
          std::make_unique<AdoptCommitSim>(world, num_procs,
                                           name + ".ca" + std::to_string(r)),
          std::make_unique<ConciliatorSim>(
              world, num_procs, name + ".co" + std::to_string(r))});
    }
  }

  int num_procs() const { return n_; }

  // Proposes `input`; returns the decided value. `coin_seed` seeds the
  // caller's local coin — use distinct seeds per process.
  sim::SimCoro<std::int64_t> propose(sim::Context ctx, std::int64_t input,
                                     std::uint64_t coin_seed) {
    Rng coin(coin_seed * 0x9e3779b97f4a7c15ULL +
             static_cast<std::uint64_t>(ctx.pid()) + 1);
    std::int64_t preference = input;

    for (auto& round : rounds_) {
      const CaResult res = co_await round.ca->propose(ctx, preference);
      if (res.verdict == CaVerdict::kCommit) {
        co_return res.value;
      }
      preference = co_await round.conciliator->refine(ctx, res.value, coin);
    }
    APRAM_CHECK_MSG(false, "consensus round pool exhausted (vanishingly "
                           "unlikely under an oblivious adversary)");
    co_return preference;
  }

 private:
  struct Round {
    std::unique_ptr<AdoptCommitSim> ca;
    std::unique_ptr<ConciliatorSim> conciliator;
  };

  int n_;
  std::vector<Round> rounds_;
};

}  // namespace apram
