// Pseudo read-modify-write objects (Anderson & Grošelj, §2 related work).
//
// "Let F be a set of functions that commute with one another. A pseudo
// read-modify-write instruction is parameterized by a function f from F.
// When applied to a memory location holding a value v, it replaces the
// contents with f(v), but does not return a value."
//
// Because the functions commute and return nothing, apply(f)/apply(g)
// commute as operations, and everything overwrites read — so every PRMW
// object satisfies Property 1 and drops straight into the §5.4 universal
// construction. (Anderson & Grošelj build a bounded-register version; here
// we inherit this repo's unbounded-register realization.)
//
// A function family F provides:
//   using State;  using Fn;                     // Fn must be ==-comparable
//   static State initial();
//   static State apply_fn(const State&, const Fn&);
// with the *semantic contract* that apply_fn(apply_fn(s, f), g) ==
// apply_fn(apply_fn(s, g), f) for all f, g — property-checked in the tests.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "core/universal.hpp"

namespace apram {

template <class F>
struct PrmwSpec {
  enum class Kind : std::uint8_t { kApply, kRead };

  struct Invocation {
    Kind kind = Kind::kRead;
    typename F::Fn fn{};

    friend bool operator==(const Invocation&, const Invocation&) = default;
  };
  using State = typename F::State;
  using Response = State;  // read returns the value; apply returns initial()

  static State initial() { return F::initial(); }

  static std::pair<State, Response> apply(const State& s,
                                          const Invocation& inv) {
    if (inv.kind == Kind::kApply) {
      return {F::apply_fn(s, inv.fn), F::initial()};
    }
    return {s, s};
  }

  static bool commutes(const Invocation& p, const Invocation& q) {
    if (p.kind == Kind::kApply && q.kind == Kind::kApply) return true;
    return p.kind == Kind::kRead && q.kind == Kind::kRead;
  }

  static bool overwrites(const Invocation& q, const Invocation& p) {
    (void)q;
    return p.kind == Kind::kRead;  // everything overwrites a read
  }

  static Invocation apply_fn(typename F::Fn fn) {
    return {Kind::kApply, std::move(fn)};
  }
  static Invocation read() { return {Kind::kRead, {}}; }
};

// Wait-free PRMW object over family F, via the universal construction.
template <class F>
class PseudoRmwSim {
 public:
  using Spec = PrmwSpec<F>;

  PseudoRmwSim(sim::World& world, int num_procs,
               const std::string& name = "prmw",
               ScanMode mode = ScanMode::kOptimized)
      : u_(world, num_procs, name, mode) {}

  sim::SimCoro<void> apply(sim::Context ctx, typename F::Fn fn) {
    co_await u_.execute(ctx, Spec::apply_fn(std::move(fn)));
  }

  sim::SimCoro<typename F::State> read(sim::Context ctx) {
    typename F::State s = co_await u_.execute(ctx, Spec::read());
    co_return s;
  }

 private:
  UniversalObjectSim<Spec> u_;
};

// ---------------------------------------------------------------------------
// Ready-made commuting families
// ---------------------------------------------------------------------------

// Additive family: v -> v + a. (The counter without reset, as a PRMW.)
struct AddFamily {
  using State = std::int64_t;
  using Fn = std::int64_t;  // the addend
  static State initial() { return 0; }
  static State apply_fn(const State& s, const Fn& a) { return s + a; }
};

// Multiplicative family modulo a prime: v -> v * m (mod p). Commutes, is not
// representable as per-process sums — a PRMW that FastCounter-style
// contribution tricks cannot express, but the universal construction can.
struct ModMulFamily {
  static constexpr std::int64_t kModulus = 1'000'000'007;
  using State = std::int64_t;
  using Fn = std::int64_t;  // the multiplier
  static State initial() { return 1; }
  static State apply_fn(const State& s, const Fn& m) {
    return static_cast<State>((static_cast<__int128>(s) * m) % kModulus);
  }
};

// Bitwise-OR family: v -> v | mask (a grow-only bitset).
struct OrFamily {
  using State = std::uint64_t;
  using Fn = std::uint64_t;  // the mask
  static State initial() { return 0; }
  static State apply_fn(const State& s, const Fn& mask) { return s | mask; }
};

}  // namespace apram
