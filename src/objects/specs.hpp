// Sequential specifications for the concrete data types of §5.1.
//
// Positive examples (satisfy Property 1, constructible):
//   CounterSpec     — inc/dec commute; reset overwrites everything;
//                     everything overwrites read. The paper's flagship
//                     example (shared counters, logical clocks [33],
//                     randomized consensus [6]).
//   GrowSetSpec     — insert-only set: inserts commute, membership/size
//                     queries are overwritten by everything.
//   MaxRegisterSpec — write-max register: writes commute (join semantics),
//                     reads are overwritten. The building block for Lamport
//                     logical clocks.
//
//   UnionFindSpec   — disjoint-set union with min-element representatives:
//                     unions commute (partition join), queries are
//                     overwritten by everything. Oracle for
//                     objects/union_find.hpp, whose min-wins linking makes
//                     find() deterministic enough to lincheck exactly.
//
// Negative examples (violate Property 1, hence *not* constructible from
// reads and writes — they solve two-process consensus [23, 26]):
//   StickyRegisterSpec — first write wins; two writes neither commute nor
//                        overwrite.
//   QueueSpec          — FIFO queue; enqueues neither commute nor overwrite.
//                        (Beyond Property 1's read/write scope, it IS
//                        implementable from CAS: objects/polylog_queue.hpp
//                        linchecks against this spec.)
//
// The declared commutes/overwrites tables are validated against the
// semantic Definitions 10–11 by tests/algebra_test.cpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace apram {

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

struct CounterSpec {
  enum class Kind : std::uint8_t { kInc, kDec, kReset, kRead };

  struct Invocation {
    Kind kind = Kind::kRead;
    std::int64_t amount = 0;

    friend bool operator==(const Invocation&, const Invocation&) = default;
  };
  using State = std::int64_t;
  using Response = std::int64_t;  // read: the value; mutators: 0

  static State initial() { return 0; }

  static std::pair<State, Response> apply(const State& s,
                                          const Invocation& inv) {
    switch (inv.kind) {
      case Kind::kInc:
        return {s + inv.amount, 0};
      case Kind::kDec:
        return {s - inv.amount, 0};
      case Kind::kReset:
        return {inv.amount, 0};
      case Kind::kRead:
        return {s, s};
    }
    return {s, 0};
  }

  static bool is_mutation(Kind k) { return k != Kind::kRead; }

  static bool commutes(const Invocation& p, const Invocation& q) {
    const bool p_delta = p.kind == Kind::kInc || p.kind == Kind::kDec;
    const bool q_delta = q.kind == Kind::kInc || q.kind == Kind::kDec;
    if (p_delta && q_delta) return true;                       // inc/dec pairs
    return p.kind == Kind::kRead && q.kind == Kind::kRead;     // read pairs
  }

  // overwrites(q, p): q destroys all evidence of p.
  static bool overwrites(const Invocation& q, const Invocation& p) {
    if (q.kind == Kind::kReset) return true;   // reset overwrites everything
    if (p.kind == Kind::kRead) return true;    // everything overwrites read
    return false;
  }

  // Convenience constructors.
  static Invocation inc(std::int64_t by = 1) { return {Kind::kInc, by}; }
  static Invocation dec(std::int64_t by = 1) { return {Kind::kDec, by}; }
  static Invocation reset(std::int64_t to = 0) { return {Kind::kReset, to}; }
  static Invocation read() { return {Kind::kRead, 0}; }
};

// ---------------------------------------------------------------------------
// Grow-only set over small integers
// ---------------------------------------------------------------------------

struct GrowSetSpec {
  enum class Kind : std::uint8_t { kInsert, kHas, kSize };

  struct Invocation {
    Kind kind = Kind::kSize;
    std::int64_t element = 0;

    friend bool operator==(const Invocation&, const Invocation&) = default;
  };
  using State = std::set<std::int64_t>;
  using Response = std::int64_t;  // has: 0/1; size: cardinality; insert: 0

  static State initial() { return {}; }

  static std::pair<State, Response> apply(const State& s,
                                          const Invocation& inv) {
    switch (inv.kind) {
      case Kind::kInsert: {
        State next = s;
        next.insert(inv.element);
        return {std::move(next), 0};
      }
      case Kind::kHas:
        return {s, s.count(inv.element) ? 1 : 0};
      case Kind::kSize:
        return {s, static_cast<Response>(s.size())};
    }
    return {s, 0};
  }

  static bool is_query(Kind k) { return k != Kind::kInsert; }

  static bool commutes(const Invocation& p, const Invocation& q) {
    if (p.kind == Kind::kInsert && q.kind == Kind::kInsert) return true;
    return is_query(p.kind) && is_query(q.kind);  // queries commute
  }

  static bool overwrites(const Invocation& q, const Invocation& p) {
    (void)q;
    return is_query(p.kind);  // everything overwrites a query
  }

  static Invocation insert(std::int64_t x) { return {Kind::kInsert, x}; }
  static Invocation has(std::int64_t x) { return {Kind::kHas, x}; }
  static Invocation size() { return {Kind::kSize, 0}; }
};

// ---------------------------------------------------------------------------
// Max-register (write-max / read) — the logical-clock substrate
// ---------------------------------------------------------------------------

struct MaxRegisterSpec {
  enum class Kind : std::uint8_t { kWriteMax, kRead };

  struct Invocation {
    Kind kind = Kind::kRead;
    std::int64_t value = 0;

    friend bool operator==(const Invocation&, const Invocation&) = default;
  };
  using State = std::int64_t;
  using Response = std::int64_t;

  static State initial() { return 0; }

  static std::pair<State, Response> apply(const State& s,
                                          const Invocation& inv) {
    if (inv.kind == Kind::kWriteMax) {
      return {s > inv.value ? s : inv.value, 0};
    }
    return {s, s};
  }

  static bool commutes(const Invocation& p, const Invocation& q) {
    if (p.kind == Kind::kWriteMax && q.kind == Kind::kWriteMax) return true;
    return p.kind == Kind::kRead && q.kind == Kind::kRead;
  }

  static bool overwrites(const Invocation& q, const Invocation& p) {
    (void)q;
    return p.kind == Kind::kRead;  // everything overwrites a read
  }

  static Invocation write_max(std::int64_t v) { return {Kind::kWriteMax, v}; }
  static Invocation read() { return {Kind::kRead, 0}; }
};

// ---------------------------------------------------------------------------
// Disjoint-set union over a fixed universe {0, …, U-1}
// ---------------------------------------------------------------------------
//
// Representatives are canonical: find(x) returns the MINIMUM element of x's
// set, matching objects/union_find.hpp's min-wins linking — so the
// concurrent object and this sequential oracle agree response-for-response.
//
// Deliberately NO num_sets invocation here: the object's num_sets is an
// overcount-free bound, not a linearizable query (its link-counter farray
// write trails the link CAS — see union_find.hpp), so it has no exact
// sequential semantics to check against.
template <int kUniverse = 8>
struct UnionFindSpec {
  enum class Kind : std::uint8_t { kUnion, kFind, kSameSet };

  struct Invocation {
    Kind kind = Kind::kFind;
    std::int32_t a = 0;
    std::int32_t b = 0;

    friend bool operator==(const Invocation&, const Invocation&) = default;
  };
  // rep[i] = min element of i's set (so i is a representative iff
  // rep[i] == i). Lexicographic operator< for free via std::vector.
  using State = std::vector<std::int32_t>;
  using Response = std::int64_t;

  static State initial() {
    State s(static_cast<std::size_t>(kUniverse));
    std::iota(s.begin(), s.end(), 0);
    return s;
  }

  static std::pair<State, Response> apply(const State& s,
                                          const Invocation& inv) {
    const auto rep = [&s](std::int32_t x) {
      return s[static_cast<std::size_t>(x)];
    };
    switch (inv.kind) {
      case Kind::kUnion: {
        const std::int32_t ra = rep(inv.a);
        const std::int32_t rb = rep(inv.b);
        if (ra == rb) return {s, 0};
        const std::int32_t lo = std::min(ra, rb);
        const std::int32_t hi = std::max(ra, rb);
        State next = s;
        for (std::int32_t& r : next) {
          if (r == hi) r = lo;
        }
        return {std::move(next), 0};
      }
      case Kind::kFind:
        return {s, rep(inv.a)};
      case Kind::kSameSet:
        return {s, rep(inv.a) == rep(inv.b) ? 1 : 0};
    }
    return {s, 0};
  }

  static bool is_query(Kind k) { return k != Kind::kUnion; }

  static bool commutes(const Invocation& p, const Invocation& q) {
    // Unions commute: merging is a join on the partition lattice.
    if (p.kind == Kind::kUnion && q.kind == Kind::kUnion) return true;
    return is_query(p.kind) && is_query(q.kind);
  }

  static bool overwrites(const Invocation& q, const Invocation& p) {
    (void)q;
    return is_query(p.kind);  // everything overwrites a query
  }

  static Invocation unite(std::int32_t a, std::int32_t b) {
    return {Kind::kUnion, a, b};
  }
  static Invocation find(std::int32_t a) { return {Kind::kFind, a, 0}; }
  static Invocation same_set(std::int32_t a, std::int32_t b) {
    return {Kind::kSameSet, a, b};
  }
};

// ---------------------------------------------------------------------------
// Negative examples — these violate Property 1 and must be rejected.
// ---------------------------------------------------------------------------

// Write-once ("sticky") register: the first write wins. Solves consensus,
// so it cannot satisfy Property 1.
struct StickyRegisterSpec {
  enum class Kind : std::uint8_t { kWrite, kRead };

  struct Invocation {
    Kind kind = Kind::kRead;
    std::int64_t value = 0;

    friend bool operator==(const Invocation&, const Invocation&) = default;
  };
  struct State {
    bool written = false;
    std::int64_t value = 0;

    friend bool operator==(const State&, const State&) = default;
  };
  using Response = std::int64_t;

  static State initial() { return {}; }

  static std::pair<State, Response> apply(const State& s,
                                          const Invocation& inv) {
    if (inv.kind == Kind::kWrite) {
      if (s.written) return {s, 0};
      return {State{true, inv.value}, 0};
    }
    return {s, s.written ? s.value : -1};
  }

  static bool commutes(const Invocation& p, const Invocation& q) {
    return p.kind == Kind::kRead && q.kind == Kind::kRead;
  }

  static bool overwrites(const Invocation& q, const Invocation& p) {
    (void)q;
    return p.kind == Kind::kRead;
  }

  static Invocation write(std::int64_t v) { return {Kind::kWrite, v}; }
  static Invocation read() { return {Kind::kRead, 0}; }
};

// Bounded FIFO queue with totalized dequeue (returns -1 on empty).
struct QueueSpec {
  enum class Kind : std::uint8_t { kEnq, kDeq };

  struct Invocation {
    Kind kind = Kind::kDeq;
    std::int64_t value = 0;

    friend bool operator==(const Invocation&, const Invocation&) = default;
  };
  using State = std::deque<std::int64_t>;
  using Response = std::int64_t;

  static State initial() { return {}; }

  static std::pair<State, Response> apply(const State& s,
                                          const Invocation& inv) {
    State next = s;
    if (inv.kind == Kind::kEnq) {
      next.push_back(inv.value);
      return {std::move(next), 0};
    }
    if (next.empty()) return {std::move(next), -1};
    const Response front = next.front();
    next.pop_front();
    return {std::move(next), front};
  }

  static bool commutes(const Invocation&, const Invocation&) { return false; }
  static bool overwrites(const Invocation&, const Invocation&) {
    return false;
  }

  static Invocation enq(std::int64_t v) { return {Kind::kEnq, v}; }
  static Invocation deq() { return {Kind::kDeq, 0}; }
};

}  // namespace apram
