// Type-optimized wait-free counter (the §5.4 closing remark: "for any
// particular data type, it should be possible to apply type-specific
// optimizations to discard most of the precedence graph").
//
// For a counter without reset, the entire precedence graph collapses to one
// running total per process: inc/dec(amount) adds to the caller's published
// contribution (a single snapshot-object update — one shared write), and
// read() takes one snapshot scan and sums the contributions. Linearizable
// because the underlying snapshot is atomic and contributions are
// per-process monotone histories.
//
// Cost per op: update O(1), read O(n²) — versus the generic construction's
// O(n²) for *every* operation plus graph maintenance. Bench E8 quantifies
// the gap.
#pragma once

#include <cstdint>
#include <string>

#include "snapshot/atomic_snapshot.hpp"

namespace apram {

class FastCounterSim {
 public:
  FastCounterSim(sim::World& world, int num_procs,
                 const std::string& name = "fctr",
                 ScanMode mode = ScanMode::kOptimized)
      : snap_(world, num_procs, name, mode),
        contribution_(static_cast<std::size_t>(num_procs), 0) {}

  sim::SimCoro<void> inc(sim::Context ctx, std::int64_t by = 1) {
    co_await add(ctx, by);
  }
  sim::SimCoro<void> dec(sim::Context ctx, std::int64_t by = 1) {
    co_await add(ctx, -by);
  }

  sim::SimCoro<std::int64_t> read(sim::Context ctx) {
    SnapshotView<std::int64_t> view = co_await snap_.scan(ctx);
    std::int64_t sum = 0;
    for (const auto& c : view) {
      if (c.has_value()) sum += *c;
    }
    co_return sum;
  }

 private:
  sim::SimCoro<void> add(sim::Context ctx, std::int64_t delta) {
    auto& mine = contribution_[static_cast<std::size_t>(ctx.pid())];
    mine += delta;
    co_await snap_.update(ctx, mine);
  }

  AtomicSnapshotSim<std::int64_t> snap_;
  // Each process's running total; only entry pid is touched by process pid,
  // and the authoritative copy lives in the snapshot object.
  std::vector<std::int64_t> contribution_;
};

}  // namespace apram
