// Commit-adopt (Gafni) — the wait-free agreement detector.
//
// A one-shot object: each process proposes a value and receives a verdict
// (kCommit, v) or (kAdopt, v) with the classic guarantees:
//
//   (CA1) validity    — the returned value was proposed by someone;
//   (CA2) coherence   — if any process returns (kCommit, v), every process
//                       returns verdict value v (commit or adopt);
//   (CA3) convergence — if all proposals equal v, everyone gets (kCommit, v).
//
// Construction (two collect phases over single-writer registers):
//
//   A[p] := v;           collect A;
//   B[p] := (v, strong = "A showed only v");   collect B;
//   if every strong entry seen carries v and I was strong -> (kCommit, v)
//   elif some strong entry carries v'                     -> (kAdopt, v')
//   else                                                  -> (kAdopt, my v)
//
// Commit-adopt is the safety half of randomized consensus: agreement comes
// from CA2 deterministically, and coins are only needed to make everyone
// propose the same value eventually (see objects/randomized_consensus.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/world.hpp"

namespace apram {

enum class CaVerdict : std::uint8_t { kCommit, kAdopt };

struct CaResult {
  CaVerdict verdict = CaVerdict::kAdopt;
  std::int64_t value = 0;
};

class AdoptCommitSim {
 public:
  AdoptCommitSim(sim::World& world, int num_procs, const std::string& name)
      : n_(num_procs) {
    for (int p = 0; p < n_; ++p) {
      a_.push_back(&world.make_register<SlotA>(
          name + ".A[" + std::to_string(p) + "]", SlotA{}, /*writer=*/p));
      b_.push_back(&world.make_register<SlotB>(
          name + ".B[" + std::to_string(p) + "]", SlotB{}, /*writer=*/p));
    }
  }

  int num_procs() const { return n_; }

  // One-shot per process. Cost: 2 writes + 2n reads.
  sim::SimCoro<CaResult> propose(sim::Context ctx, std::int64_t v) {
    const int p = ctx.pid();

    co_await ctx.write(*a_[static_cast<std::size_t>(p)], SlotA{true, v});

    bool only_v = true;
    for (int q = 0; q < n_; ++q) {
      const SlotA s = co_await ctx.read(*a_[static_cast<std::size_t>(q)]);
      if (s.set && s.value != v) only_v = false;
    }

    co_await ctx.write(*b_[static_cast<std::size_t>(p)],
                       SlotB{true, v, only_v});

    bool saw_other_weak_or_conflicting = false;
    bool saw_strong = false;
    std::int64_t strong_value = v;
    for (int q = 0; q < n_; ++q) {
      const SlotB s = co_await ctx.read(*b_[static_cast<std::size_t>(q)]);
      if (!s.set) continue;
      if (s.strong) {
        saw_strong = true;
        strong_value = s.value;
      }
      if (!s.strong || s.value != v) saw_other_weak_or_conflicting = true;
    }

    if (only_v && !saw_other_weak_or_conflicting) {
      co_return CaResult{CaVerdict::kCommit, v};
    }
    if (saw_strong) {
      co_return CaResult{CaVerdict::kAdopt, strong_value};
    }
    co_return CaResult{CaVerdict::kAdopt, v};
  }

 private:
  struct SlotA {
    bool set = false;
    std::int64_t value = 0;
  };
  struct SlotB {
    bool set = false;
    std::int64_t value = 0;
    bool strong = false;
  };

  int n_;
  std::vector<sim::Register<SlotA>*> a_;
  std::vector<sim::Register<SlotB>*> b_;
};

}  // namespace apram
