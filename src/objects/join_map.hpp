// Wait-free join-map: a dictionary whose per-key values merge by max.
//
// Another member of the §5.1 commute/overwrite class ("certain kinds of set
// abstractions"): put(k, v) raises key k to at least v. Puts commute — even
// on the same key, because the per-key merge is a join (max) and the
// response is void. Lookups and size queries are overwritten by everything.
// The natural use is tracking per-entity high-water marks (largest offset
// acknowledged per partition, newest version per document, ...).
#pragma once

#include <map>
#include <string>
#include <utility>

#include "core/universal.hpp"

namespace apram {

struct JoinMapSpec {
  enum class Kind : std::uint8_t { kPut, kGet, kSize };

  struct Invocation {
    Kind kind = Kind::kSize;
    std::int64_t key = 0;
    std::int64_t value = 0;

    friend bool operator==(const Invocation&, const Invocation&) = default;
  };
  using State = std::map<std::int64_t, std::int64_t>;
  using Response = std::int64_t;  // get: value or kMissing; size: count

  static constexpr Response kMissing = std::numeric_limits<std::int64_t>::min();

  static State initial() { return {}; }

  static std::pair<State, Response> apply(const State& s,
                                          const Invocation& inv) {
    switch (inv.kind) {
      case Kind::kPut: {
        State next = s;
        auto [it, inserted] = next.try_emplace(inv.key, inv.value);
        if (!inserted && it->second < inv.value) it->second = inv.value;
        return {std::move(next), 0};
      }
      case Kind::kGet: {
        auto it = s.find(inv.key);
        return {s, it == s.end() ? kMissing : it->second};
      }
      case Kind::kSize:
        return {s, static_cast<Response>(s.size())};
    }
    return {s, 0};
  }

  static bool is_query(Kind k) { return k != Kind::kPut; }

  static bool commutes(const Invocation& p, const Invocation& q) {
    if (p.kind == Kind::kPut && q.kind == Kind::kPut) return true;
    return is_query(p.kind) && is_query(q.kind);
  }

  static bool overwrites(const Invocation& q, const Invocation& p) {
    (void)q;
    return is_query(p.kind);  // everything overwrites a query
  }

  static Invocation put(std::int64_t k, std::int64_t v) {
    return {Kind::kPut, k, v};
  }
  static Invocation get(std::int64_t k) { return {Kind::kGet, k, 0}; }
  static Invocation size() { return {Kind::kSize, 0, 0}; }
};

class JoinMapSim {
 public:
  JoinMapSim(sim::World& world, int num_procs,
             const std::string& name = "jmap",
             ScanMode mode = ScanMode::kOptimized)
      : u_(world, num_procs, name, mode) {}

  sim::SimCoro<void> put(sim::Context ctx, std::int64_t k, std::int64_t v) {
    co_await u_.execute(ctx, JoinMapSpec::put(k, v));
  }
  // Returns the value for k, or nullopt if absent.
  sim::SimCoro<std::optional<std::int64_t>> get(sim::Context ctx,
                                                std::int64_t k) {
    const std::int64_t r = co_await u_.execute(ctx, JoinMapSpec::get(k));
    if (r == JoinMapSpec::kMissing) co_return std::nullopt;
    co_return r;
  }
  sim::SimCoro<std::int64_t> size(sim::Context ctx) {
    const std::int64_t r = co_await u_.execute(ctx, JoinMapSpec::size());
    co_return r;
  }

 private:
  UniversalObjectSim<JoinMapSpec> u_;
};

}  // namespace apram
