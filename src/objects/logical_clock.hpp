// Lamport logical clock [33] built on a wait-free max-register.
//
// The max-register (write-max / read) satisfies Property 1: write-max
// operations commute (join semantics, void responses) and everything
// overwrites read. A Lamport clock is then:
//
//   now()        — read the clock.
//   tick()       — advance past the current reading for a local event;
//                  returns the event's timestamp.
//   observe(t)   — merge a timestamp received in a message: advance the
//                  clock past max(now, t).
//
// Timestamps are made globally unique by pairing with the process id
// (standard Lamport tie-breaking); stamp() returns such a pair.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "core/universal.hpp"
#include "objects/specs.hpp"

namespace apram {

class LamportClockSim {
 public:
  // A globally unique, totally ordered timestamp.
  struct Stamp {
    std::int64_t time = 0;
    int pid = -1;

    friend auto operator<=>(const Stamp&, const Stamp&) = default;
  };

  LamportClockSim(sim::World& world, int num_procs,
                  const std::string& name = "clock",
                  ScanMode mode = ScanMode::kOptimized)
      : u_(world, num_procs, name, mode) {}

  sim::SimCoro<std::int64_t> now(sim::Context ctx) {
    const std::int64_t r = co_await u_.execute(ctx, MaxRegisterSpec::read());
    co_return r;
  }

  // Local event: returns a reading strictly greater than any value read
  // from the clock before this call by this process.
  sim::SimCoro<std::int64_t> tick(sim::Context ctx) {
    const std::int64_t seen =
        co_await u_.execute(ctx, MaxRegisterSpec::read());
    const std::int64_t stamp = seen + 1;
    co_await u_.execute(ctx, MaxRegisterSpec::write_max(stamp));
    co_return stamp;
  }

  // Message receipt carrying timestamp t: clock advances past both the
  // local reading and t.
  sim::SimCoro<std::int64_t> observe(sim::Context ctx, std::int64_t t) {
    const std::int64_t seen =
        co_await u_.execute(ctx, MaxRegisterSpec::read());
    const std::int64_t stamp = (seen > t ? seen : t) + 1;
    co_await u_.execute(ctx, MaxRegisterSpec::write_max(stamp));
    co_return stamp;
  }

  sim::SimCoro<Stamp> stamp(sim::Context ctx) {
    const std::int64_t t = co_await tick(ctx);
    co_return Stamp{t, ctx.pid()};
  }

 private:
  UniversalObjectSim<MaxRegisterSpec> u_;
};

}  // namespace apram
