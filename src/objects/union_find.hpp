// UnionFind — a concurrent disjoint-set forest in the Jayanti–Tarjan style
// ("Concurrent Disjoint Set Union", PODC'16 / Distributed Computing 2021):
// a CAS-based parent forest with min-wins linking and path halving, plus an
// FArray side-structure that makes num_sets a ONE-READ query (an
// overcount-free bound, exact in quiescence — see below).
//
// Representation. parent[i] is a multi-writer CAS register over element
// ids; i is a root iff parent[i] == i. Links always point the larger root
// at the smaller (CAS(parent[max], max, min)), so
//
//   (a) parent values only DECREASE — parent[x] goes x → p1 > p2 > …, each
//       halving CAS installs the grandparent (< parent). A plain
//       value-compared CAS is therefore ABA-free here by monotonicity, no
//       stamps needed.
//   (b) the root of a set is always its MINIMUM element — find() has a
//       deterministic sequential meaning (UnionFindSpec in specs.hpp), so
//       histories lincheck against an exact oracle.
//
// find uses path halving: read parent[x], read parent[parent[x]], CAS the
// shortcut (failure ignored — some rival already compressed or linked), hop
// to the grandparent. unite retries find+link until the roots agree or its
// link CAS lands.
//
// Progress: LOCK-FREE, not wait-free — a unite's link CAS can lose to
// rivals, but only to *successful* links, and there are at most U-1 of
// those ever, so system-wide progress is bounded (and every fault-campaign
// run here terminates within a schedule-independent step budget). Making
// DSU wait-free is open territory; the paper-faithful wait-free citizens of
// this repo are the farray clients, and this object shows the SAME farray
// tree composing with a lock-free core:
//
// num_sets in one read: after each successful link, the linker
// farray-writes its personal count of successful links into
// FArray<B, int64, SumCombiner>; the root then reads Σ links, and
// num_sets = U − Σ links (every successful link reduces the number of sets
// by exactly one, and link CASes never succeed twice for the same merge).
//
// num_sets is NOT linearizable — it is an overcount-free BOUND. A link
// becomes visible to find/same_set at the link CAS, but is counted only at
// the farray write a few steps later, and the farray leaves are per-process
// SWMR, so no helper can complete a paused linker's write. In that window
// same_set can observe a merge that num_sets has not yet subtracted. What
// num_sets(r) DOES guarantee:
//
//   true set count at every instant of the read  ≤  r  ≤  U − (links
//   counted before the op began),
//
// i.e. r never undercounts (links are counted at most once, only after
// they succeed), r is non-increasing across reads that see later roots,
// and in quiescence — all unites finished, none crashed mid-unite — r is
// exact (a COMPLETED unite has completed its counter write, by the farray
// helping lemma). A process that crashes between its link CAS and its
// counter write inflates the bound by one permanently; the fault campaigns
// in tests/fault_seeds.hpp exercise exactly that window. Because of this,
// num_sets is NOT part of the exact lincheck spec (UnionFindSpec covers
// unite/find/same_set only); its bound semantics are pinned by a targeted
// paused-linker schedule in queue_uf_test.cpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algebra/combiner.hpp"
#include "api/backend.hpp"
#include "api/rt_backend.hpp"
#include "api/sim_backend.hpp"
#include "farray/farray.hpp"
#include "obs/span.hpp"
#include "util/assert.hpp"

namespace apram {

template <class B>
  requires api::BackendFor<B, std::int64_t> &&
           api::CasBackendFor<B, std::int32_t> &&
           api::CasBackendFor<B, farray::Stamped<std::int64_t>>
class UnionFind {
 public:
  using Ctx = typename B::Ctx;
  template <class T>
  using Coro = typename B::template Coro<T>;
  using LinkCounter = farray::FArray<B, std::int64_t, SumCombiner<std::int64_t>>;

  UnionFind(typename B::Mem& mem, int num_procs, int universe)
      : n_(num_procs), u_(universe), links_(mem, num_procs) {
    APRAM_CHECK(universe >= 1);
    parent_.reserve(static_cast<std::size_t>(u_));
    for (std::int32_t i = 0; i < u_; ++i) {
      parent_.push_back(&mem.template make_cas<std::int32_t>(
          "parent[" + std::to_string(i) + "]", i));
    }
    locals_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      locals_.push_back(std::make_unique<Local>());
    }
  }

  int num_procs() const { return n_; }
  int universe() const { return u_; }

  // The minimum element of x's set (see (b) above).
  Coro<std::int32_t> find(Ctx ctx, std::int32_t x) {
    ctx.op_begin(obs::OpKind::kFind);
    std::int32_t r = co_await find_root(ctx, x);
    ctx.op_end(obs::OpKind::kFind);
    co_return r;
  }

  // Merges a's and b's sets (no-op if already merged).
  Coro<void> unite(Ctx ctx, std::int32_t a, std::int32_t b) {
    ctx.op_begin(obs::OpKind::kUnion);
    while (true) {
      std::int32_t ra = co_await find_root(ctx, a);
      std::int32_t rb = co_await find_root(ctx, b);
      if (ra == rb) break;
      const std::int32_t lo = std::min(ra, rb);
      const std::int32_t hi = std::max(ra, rb);
      bool linked = co_await ctx.cas(parent(hi), hi, lo);
      if (linked) {
        Local& l = *locals_[static_cast<std::size_t>(ctx.pid())];
        ++l.links;
        co_await links_.write(ctx, l.links);
        break;
      }
      // parent[hi] can only have moved off hi via a rival's successful
      // link (halving never changes a root), so losing here means the
      // forest merged under us — re-find and retry. At most U-1 links ever
      // succeed, so the retry count is bounded by U, not just lock-free.
    }
    ctx.op_end(obs::OpKind::kUnion);
  }

  // Whether a and b are in the same set, linearizably: if the roots differ,
  // re-check that ra is STILL a root — then at the moment find_root(b)
  // returned rb, ra was a's root and rb ≠ ra was b's, a witness instant of
  // separateness. If ra got linked away meanwhile, retry.
  Coro<bool> same_set(Ctx ctx, std::int32_t a, std::int32_t b) {
    ctx.op_begin(obs::OpKind::kFind);
    bool result = false;
    while (true) {
      std::int32_t ra = co_await find_root(ctx, a);
      std::int32_t rb = co_await find_root(ctx, b);
      if (ra == rb) {
        result = true;
        break;
      }
      std::int32_t pra = co_await ctx.read(parent(ra));
      if (pra == ra) {
        result = false;
        break;
      }
    }
    ctx.op_end(obs::OpKind::kFind);
    co_return result;
  }

  // Overcount-free bound on the number of sets, in ONE shared read beyond
  // the span bookkeeping: U − (sum of counted links) off the FArray root.
  // Never less than the true set count; exact in quiescence; may lag a
  // concurrent (or crashed) unite whose link CAS landed but whose counter
  // write has not — see the header comment. NOT linearizable.
  Coro<std::int64_t> num_sets(Ctx ctx) {
    ctx.op_begin(obs::OpKind::kFind);
    std::int64_t total_links = co_await links_.read_f(ctx);
    ctx.op_end(obs::OpKind::kFind);
    co_return static_cast<std::int64_t>(u_) - total_links;
  }

  // Test/debug access.
  const typename B::template CasReg<std::int32_t>& parent_at(int i) const {
    return parent(i);
  }
  LinkCounter& link_counter() { return links_; }

 private:
  struct alignas(64) Local {
    std::int64_t links = 0;  // my successful link CASes so far
  };

  // Path-halving find; x decreases every hop, so it terminates in ≤ U hops
  // regardless of concurrency.
  Coro<std::int32_t> find_root(Ctx ctx, std::int32_t x) {
    while (true) {
      std::int32_t px = co_await ctx.read(parent(x));
      if (px == x) co_return x;
      std::int32_t ppx = co_await ctx.read(parent(px));
      if (ppx == px) co_return px;
      // Benign shortcut: failure means a rival already moved parent[x]
      // further down (values only decrease), which is just as good.
      bool shortened = co_await ctx.cas(parent(x), px, ppx);
      (void)shortened;
      x = ppx;
    }
  }

  typename B::template CasReg<std::int32_t>& parent(int i) const {
    APRAM_CHECK(i >= 0 && i < u_);
    return *parent_[static_cast<std::size_t>(i)];
  }

  int n_;
  int u_;
  LinkCounter links_;
  std::vector<typename B::template CasReg<std::int32_t>*> parent_;  // [U]
  std::vector<std::unique_ptr<Local>> locals_;                      // [n]
};

// --------------------------------------------------------------------------
// rt convenience wrapper (int-pid call style).

class UnionFindRT {
 public:
  UnionFindRT(int num_procs, int universe)
      : mem_(num_procs), impl_(mem_, num_procs, universe) {}

  int num_procs() const { return impl_.num_procs(); }
  int universe() const { return impl_.universe(); }

  std::int32_t find(int p, std::int32_t x) {
    return impl_.find(api::RtBackend::Ctx{p}, x).get();
  }
  void unite(int p, std::int32_t a, std::int32_t b) {
    impl_.unite(api::RtBackend::Ctx{p}, a, b).get();
  }
  bool same_set(int p, std::int32_t a, std::int32_t b) {
    return impl_.same_set(api::RtBackend::Ctx{p}, a, b).get();
  }
  std::int64_t num_sets(int p) {
    return impl_.num_sets(api::RtBackend::Ctx{p}).get();
  }

  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    mem_.attach_obs(registry, name, tracer);
  }
  void attach_injector(fault::RtInjector* injector) {
    mem_.attach_injector(injector);
  }
  rt::reclaim::ReclaimStats reclaim_stats() const {
    return mem_.reclaim_stats();
  }
  void export_reclaim_gauges(obs::Registry& registry,
                             const std::string& name) const {
    mem_.export_reclaim_gauges(registry, name);
  }

 private:
  api::RtBackend::Mem mem_;
  UnionFind<api::RtBackend> impl_;
};

}  // namespace apram
