// Wait-free shared counter (§5.1's flagship example), as a thin façade over
// the universal construction. inc/dec commute, reset overwrites everything,
// and every operation overwrites read — so CounterSpec satisfies Property 1
// and the Figure 4 construction applies directly.
#pragma once

#include <string>

#include "core/universal.hpp"
#include "objects/specs.hpp"

namespace apram {

class CounterSim {
 public:
  CounterSim(sim::World& world, int num_procs, const std::string& name = "ctr",
             ScanMode mode = ScanMode::kOptimized)
      : u_(world, num_procs, name, mode) {}

  sim::SimCoro<void> inc(sim::Context ctx, std::int64_t by = 1) {
    co_await u_.execute(ctx, CounterSpec::inc(by));
  }
  sim::SimCoro<void> dec(sim::Context ctx, std::int64_t by = 1) {
    co_await u_.execute(ctx, CounterSpec::dec(by));
  }
  sim::SimCoro<void> reset(sim::Context ctx, std::int64_t to = 0) {
    co_await u_.execute(ctx, CounterSpec::reset(to));
  }
  sim::SimCoro<std::int64_t> read(sim::Context ctx) {
    const std::int64_t r = co_await u_.execute(ctx, CounterSpec::read());
    co_return r;
  }

  UniversalObjectSim<CounterSpec>& universal() { return u_; }

 private:
  UniversalObjectSim<CounterSpec> u_;
};

}  // namespace apram
