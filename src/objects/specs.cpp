#include "objects/specs.hpp"

// Header-only module; anchor translation unit.
