// PolylogQueue — a wait-free FIFO queue with polylogarithmic step
// complexity, after Naderibeni & Ruppert ("A Wait-free Queue with
// Polylogarithmic Step Complexity", arXiv:2305.07229), built on the farray
// tree (farray/farray.hpp).
//
// Construction. Each process appends its operations (enqueue(v) / dequeue)
// to a single-writer log; a tournament tree over the n logs — the farray
// with an order-accumulating refresher instead of a pure combine — agrees
// on ONE total order of all operations:
//
//   node value = an immutable chain of blocks; each successful stamped-CAS
//   install appends one block holding exactly the child entries not yet
//   covered (the chain records, per install, the child chains it consumed,
//   so the diff is computed by walking the child chain back to the recorded
//   base — no rescans, no duplicates). CAS lineage makes every node's chain
//   PREFIX-STABLE: installs only extend, so once an operation has a
//   position at the root, that position never changes.
//
// The double-refresh helping lemma (see farray/farray.hpp — it is purely
// temporal, so it applies to this refresher verbatim) guarantees that when
// an operation's root-path walk returns, the operation is in the root
// chain. The root order is the linearization: it extends real-time order
// (an op enters the tree only after its invocation, and is at the root
// before its response), and responses are COMPUTED from it — a dequeue
// reads the root once and replays the FIFO semantics over the prefix up to
// its own entry, so agreement on responses is agreement on the order, and
// no per-item CAS races (hence no unbounded retry loops) exist anywhere.
// Replay is process-local: each process keeps a cursor into the (prefix-
// stable) root order, so total local replay work is amortized O(1) per
// entry and zero shared accesses.
//
// Step counts (shared accesses; h = ⌈log2 n⌉, exact solo for n a power of
// two):
//
//   enqueue:  1 + 4h solo, ≤ 1 + 8h contended  (leaf append + root path)
//   dequeue:  2 + 4h solo, ≤ 2 + 8h contended  (+ one root read)
//
// apram-trace certifies both under `--bound queue_op` against the paper's
// O(log² n) envelope (12·⌈log2 n⌉² — our register-model cost is O(log n)
// REGISTER accesses because a node's whole chain lives in one register; the
// paper pays the extra log factor to keep node values word-sized, the same
// modelling convention as TaggedVectorLattice's O(n) register values).
// Space is unbounded (the chain holds the full history), matching the
// repo's paper-mode registers (-DAPRAM_RT_UNBOUNDED) honesty note.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/backend.hpp"
#include "api/rt_backend.hpp"
#include "api/sim_backend.hpp"
#include "farray/farray.hpp"
#include "obs/span.hpp"
#include "util/assert.hpp"

namespace apram {

// One operation in a log: (pid, seq) is its identity, seq 1-based per pid.
struct QueueOp {
  std::int32_t pid = 0;
  std::uint32_t seq = 0;
  bool is_enq = false;
  std::int64_t value = 0;  // enqueue payload
};

// One immutable block of a chain. A chain (Ptr; nullptr = empty) is the
// value of a leaf or internal-node register; blocks are shared across
// registers by shared_ptr, so copying a register value is O(1).
struct QueueLog {
  using Ptr = std::shared_ptr<const QueueLog>;

  Ptr prev;                  // rest of this chain
  std::vector<QueueOp> ops;  // entries this install appended, in order
  std::uint64_t len = 0;     // cumulative entries including this block
  // Child chains this install consumed (internal nodes only): the next
  // install diffs the then-current child chains against these bases.
  Ptr left_base;
  Ptr right_base;

  QueueLog() = default;
  QueueLog(const QueueLog&) = delete;
  QueueLog& operator=(const QueueLog&) = delete;

  // Iterative teardown: chains reach the full history, and a recursive
  // shared_ptr cascade (prev → prev → …) would overflow the stack.
  ~QueueLog() {
    std::vector<Ptr> work;
    work.push_back(std::move(prev));
    work.push_back(std::move(left_base));
    work.push_back(std::move(right_base));
    while (!work.empty()) {
      Ptr c = std::move(work.back());
      work.pop_back();
      if (c && c.use_count() == 1) {
        // Sole owner: strip the links so `c`'s destructor is shallow.
        auto& b = const_cast<QueueLog&>(*c);
        work.push_back(std::move(b.prev));
        work.push_back(std::move(b.left_base));
        work.push_back(std::move(b.right_base));
      }
    }
  }
};

using QueueChain = QueueLog::Ptr;

inline std::uint64_t queue_chain_len(const QueueChain& c) {
  return c ? c->len : 0;
}

// The order-accumulating node refresher (farray::NodeRefresherFor): extend
// the node's current chain with whatever the children appended since the
// last install. Pure in its three inputs — the consumed bases ride inside
// the chain value itself.
struct QueueOrderRefresh {
  static QueueChain identity() { return nullptr; }

  static QueueChain refresh(const QueueChain& cur, QueueChain l,
                            QueueChain r) {
    auto b = std::make_shared<QueueLog>();
    append_diff(b->ops, l, cur ? cur->left_base : nullptr);
    append_diff(b->ops, r, cur ? cur->right_base : nullptr);
    b->prev = cur;
    b->len = queue_chain_len(cur) + b->ops.size();
    b->left_base = std::move(l);
    b->right_base = std::move(r);
    return b;
  }

 private:
  // Entries of `now` newer than `base`. `base` is always an ancestor block
  // of `now` (chains only extend, and `base` was read from this child
  // earlier), so the walk terminates by pointer equality.
  static void append_diff(std::vector<QueueOp>& out, const QueueChain& now,
                          const QueueChain& base) {
    std::vector<const QueueLog*> fresh;
    for (const QueueLog* b = now.get(); b != base.get(); b = b->prev.get()) {
      APRAM_CHECK_MSG(b != nullptr, "queue chain base is not an ancestor");
      fresh.push_back(b);
    }
    for (auto it = fresh.rbegin(); it != fresh.rend(); ++it) {
      out.insert(out.end(), (*it)->ops.begin(), (*it)->ops.end());
    }
  }
};

template <class B>
  requires api::BackendFor<B, QueueChain> &&
           api::CasBackendFor<B, farray::Stamped<QueueChain>>
class PolylogQueue {
 public:
  using Ctx = typename B::Ctx;
  template <class T>
  using Coro = typename B::template Coro<T>;
  using Tree = farray::FArrayTree<B, QueueChain, QueueOrderRefresh>;

  PolylogQueue(typename B::Mem& mem, int num_procs) : tree_(mem, num_procs) {
    locals_.reserve(static_cast<std::size_t>(num_procs));
    for (int p = 0; p < num_procs; ++p) {
      locals_.push_back(std::make_unique<Local>());
    }
  }

  int num_procs() const { return tree_.num_procs(); }
  int height() const { return tree_.height(); }

  // Appends the value; on return the enqueue has a fixed position in the
  // agreed total order. 1 + 4h accesses solo, ≤ 1 + 8h contended.
  Coro<void> enqueue(Ctx ctx, std::int64_t v) {
    const int p = ctx.pid();
    Local& l = local(p);
    ctx.op_begin(obs::OpKind::kEnqueue);
    QueueChain leaf = append_own(l, p, /*is_enq=*/true, v);
    co_await tree_.write(ctx, std::move(leaf));
    ctx.op_end(obs::OpKind::kEnqueue);
  }

  // Removes and returns the oldest value, or -1 when the queue is empty at
  // the dequeue's linearization point (QueueSpec's totalized dequeue).
  // 2 + 4h accesses solo, ≤ 2 + 8h contended.
  Coro<std::int64_t> dequeue(Ctx ctx) {
    const int p = ctx.pid();
    Local& l = local(p);
    ctx.op_begin(obs::OpKind::kDequeue);
    const std::uint32_t seq = l.num_ops + 1;
    QueueChain leaf = append_own(l, p, /*is_enq=*/false, 0);
    co_await tree_.write(ctx, std::move(leaf));
    QueueChain root = co_await tree_.read_f(ctx);
    const std::int64_t resp = replay_to(l, p, seq, root);
    ctx.op_end(obs::OpKind::kDequeue);
    co_return resp;
  }

  // Test/debug: the agreed total order so far (root chain length).
  Tree& tree() { return tree_; }

  void export_contention_gauges(obs::Registry& registry,
                                const std::string& prefix) const {
    tree_.export_contention_gauges(registry, prefix);
  }

 private:
  struct alignas(64) Local {
    QueueChain leaf;            // mirror of own leaf register (single writer)
    std::uint32_t num_ops = 0;  // == queue_chain_len(leaf)
    // FIFO replay cursor over the root order. The root chain is
    // prefix-stable, so the cursor never rewinds and replay work is
    // amortized O(1) per linearized entry.
    std::uint64_t consumed = 0;  // root entries already replayed
    std::uint64_t front = 0;     // next enqueue (by root order) to hand out
    std::vector<std::int64_t> enq_values;  // enqueue payloads in root order
  };

  Local& local(int p) { return *locals_[static_cast<std::size_t>(p)]; }

  QueueChain append_own(Local& l, int pid, bool is_enq, std::int64_t v) {
    auto b = std::make_shared<QueueLog>();
    b->prev = l.leaf;
    b->ops.push_back(QueueOp{static_cast<std::int32_t>(pid), l.num_ops + 1,
                             is_enq, v});
    b->len = l.num_ops + 1;
    l.leaf = b;
    ++l.num_ops;
    return b;
  }

  // Replays the FIFO semantics over the root order up to (and including)
  // entry (pid, seq) — which the helping lemma guarantees is present —
  // returning that dequeue's response. Local work only.
  std::int64_t replay_to(Local& l, int pid, std::uint32_t seq,
                         const QueueChain& root) {
    std::vector<const QueueLog*> blocks;
    for (const QueueLog* b = root.get(); b != nullptr && b->len > l.consumed;
         b = b->prev.get()) {
      blocks.push_back(b);
    }
    for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
      const QueueLog* b = *it;
      const std::uint64_t start = b->len - b->ops.size();
      std::size_t i =
          l.consumed > start ? static_cast<std::size_t>(l.consumed - start)
                             : 0;
      for (; i < b->ops.size(); ++i) {
        const QueueOp& op = b->ops[i];
        ++l.consumed;
        std::int64_t resp = 0;
        if (op.is_enq) {
          l.enq_values.push_back(op.value);
        } else {
          resp = -1;
          if (l.front < l.enq_values.size()) {
            resp = l.enq_values[static_cast<std::size_t>(l.front)];
            ++l.front;
          }
        }
        if (op.pid == pid && op.seq == seq) return resp;
      }
    }
    APRAM_CHECK_MSG(false,
                    "dequeue missing from the root after its refresh walk — "
                    "the double-refresh helping lemma was violated");
    return -1;
  }

  Tree tree_;
  std::vector<std::unique_ptr<Local>> locals_;  // [n]
};

// --------------------------------------------------------------------------
// rt convenience wrapper (int-pid call style; thread p calls only pid p's
// entry points — the Local replay state is single-threaded per pid).

class PolylogQueueRT {
 public:
  explicit PolylogQueueRT(int num_procs)
      : mem_(num_procs), impl_(mem_, num_procs) {}

  int num_procs() const { return impl_.num_procs(); }

  void enqueue(int p, std::int64_t v) {
    impl_.enqueue(api::RtBackend::Ctx{p}, v).get();
  }
  std::int64_t dequeue(int p) {
    return impl_.dequeue(api::RtBackend::Ctx{p}).get();
  }

  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    mem_.attach_obs(registry, name, tracer);
  }
  void attach_injector(fault::RtInjector* injector) {
    mem_.attach_injector(injector);
  }
  rt::reclaim::ReclaimStats reclaim_stats() const {
    return mem_.reclaim_stats();
  }
  void export_reclaim_gauges(obs::Registry& registry,
                             const std::string& name) const {
    mem_.export_reclaim_gauges(registry, name);
  }
  void export_contention_gauges(obs::Registry& registry,
                                const std::string& prefix) const {
    impl_.export_contention_gauges(registry, prefix);
  }

 private:
  api::RtBackend::Mem mem_;
  PolylogQueue<api::RtBackend> impl_;
};

}  // namespace apram
