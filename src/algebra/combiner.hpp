// Combiner — the algebraic requirement of an f-array (Obryk's
// Write-and-f-array; Jayanti's f-arrays): a monoid over the leaf type.
//
// A Semilattice (lattice/lattice.hpp) demands idempotence and an order;
// farray::FArray needs neither. The tree maintains f(x_0, …, x_{n-1}) for an
// arbitrary *associative* combine with a unit, so sums, products, max-suffix
// structures and full sequence merges all qualify — not just lattice joins.
//
// Laws (checked by tests/farray_test.cpp on concrete instances; not
// expressible in the concept):
//
//   combine(a, combine(b, c)) == combine(combine(a, b), c)   associativity
//   combine(identity(), a) == combine(a, identity()) == a    unit
//
// Commutativity is NOT required: the tree folds leaves strictly
// left-to-right (leaf p is the p-th operand), so order-sensitive combines —
// max-suffix sums, sequence concatenation — are fair game.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>

#include "lattice/lattice.hpp"

namespace apram {

// F combines values of type T: the form FArray<B, T, F> requires.
template <class F, class T>
concept CombinerFor = requires(T a, T b) {
  { F::identity() } -> std::convertible_to<T>;
  { F::combine(std::move(a), std::move(b)) } -> std::convertible_to<T>;
};

// Self-describing combiner (carries its value type), the shape of the
// instances below — parallel to Semilattice's `typename L::Value`.
template <class F>
concept Combiner =
    requires { typename F::Value; } && CombinerFor<F, typename F::Value>;

// --- instances -------------------------------------------------------------

// (T, +, 0) — the canonical non-lattice combine (not idempotent). An FArray
// over it is a wait-free "sum register": leaf p holds p's contribution, the
// root reads the global total in one access.
template <class T>
struct SumCombiner {
  using Value = T;
  static Value identity() { return T{}; }
  static Value combine(Value a, Value b) { return a + b; }
};

// (T, max, lowest) as a plain combiner — the monoid face of MaxLattice,
// handy for Lamport-style timestamp generation off a one-read root.
template <class T>
struct MaxCombiner {
  using Value = T;
  static Value identity() { return std::numeric_limits<T>::lowest(); }
  static Value combine(Value a, Value b) { return std::max(a, b); }
};

// Maximum suffix sum — associative but NOT commutative (swapping operands
// changes which side contributes the suffix), so it exercises the fold-order
// contract above. Value tracks the segment's total and its best suffix sum;
// identity is the empty segment.
struct MaxSuffixSumCombiner {
  struct Value {
    std::int64_t total = 0;
    std::int64_t best_suffix = 0;  // max over suffixes (including empty)

    friend bool operator==(const Value&, const Value&) = default;
  };

  static Value identity() { return {}; }
  static Value combine(Value a, Value b) {
    return Value{a.total + b.total,
                 std::max(b.best_suffix, b.total + a.best_suffix)};
  }
};

// Any join-semilattice is a combiner (join is associative, bottom is the
// unit) — the adapter snapshot::TreeScan rides FArray through.
template <Semilattice L>
struct JoinCombiner {
  using Value = typename L::Value;
  static Value identity() { return L::bottom(); }
  static Value combine(Value a, Value b) {
    return L::join(std::move(a), std::move(b));
  }
};

}  // namespace apram
