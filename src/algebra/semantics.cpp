#include "algebra/check.hpp"
#include "algebra/spec.hpp"

// The algebra module is header-only templates; this translation unit anchors
// the library target and compiles the headers standalone.
