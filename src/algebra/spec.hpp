// Sequential specifications and the commute/overwrite algebra (§5.1–5.2).
//
// An object type is described by a SequentialSpec: a state machine with
// total, deterministic operations. On top of the state machine, the spec
// declares the algebraic relations the paper's construction consumes:
//
//   commutes(p, q)     — Definition 10: after any legal history, p·q and q·p
//                        are both legal and equivalent.
//   overwrites(q, p)   — Definition 11: after any legal history, p·q is
//                        legal and equivalent to q alone ("q destroys all
//                        evidence of p").
//
// Property 1 (the constructibility criterion): every pair of operations
// either commutes or one overwrites the other. The declared relations are
// validated against their definitions by the randomized semantic checkers in
// algebra/check.hpp, so a spec cannot quietly lie about its algebra.
//
// Definition 14 (dominance) breaks overwrite ties by process index; it is
// the strict partial order the linearization-graph construction uses.
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace apram {

template <class S>
concept SequentialSpec = requires(const typename S::State& state,
                                  const typename S::Invocation& p,
                                  const typename S::Invocation& q) {
  typename S::State;
  typename S::Invocation;
  typename S::Response;
  { S::initial() } -> std::same_as<typename S::State>;
  {
    S::apply(state, p)
  } -> std::same_as<std::pair<typename S::State, typename S::Response>>;
  { S::commutes(p, q) } -> std::same_as<bool>;
  { S::overwrites(q, p) } -> std::same_as<bool>;
};

// A completed operation: who ran it, what was invoked, what it returned.
// (pid, seq) is a unique identity; seq is per-process and increasing.
template <class S>
struct Op {
  int pid = -1;
  std::uint64_t seq = 0;
  typename S::Invocation inv{};
  typename S::Response resp{};
};

// Definition 14: p (of process ppid) dominates q (of process qpid) iff
//   (1) p overwrites q but not vice versa, or
//   (2) they overwrite each other and ppid > qpid.
template <SequentialSpec S>
bool dominates(const typename S::Invocation& p, int ppid,
               const typename S::Invocation& q, int qpid) {
  const bool pq = S::overwrites(p, q);
  const bool qp = S::overwrites(q, p);
  if (pq && !qp) return true;
  if (pq && qp) return ppid > qpid;
  return false;
}

// Runs a sequence of invocations from the initial state; returns the final
// state and every response. This is the "sequential implementation of the
// object" that Figure 4's Step 1 consults.
template <SequentialSpec S>
struct SequentialRun {
  typename S::State final_state;
  std::vector<typename S::Response> responses;
};

template <SequentialSpec S>
SequentialRun<S> run_sequential(std::span<const typename S::Invocation> invs) {
  SequentialRun<S> out{S::initial(), {}};
  out.responses.reserve(invs.size());
  for (const auto& inv : invs) {
    auto [next, resp] = S::apply(out.final_state, inv);
    out.final_state = std::move(next);
    out.responses.push_back(std::move(resp));
  }
  return out;
}

}  // namespace apram
