// Semantic validation of a spec's declared algebra (Definitions 9–11).
//
// For total deterministic specifications, "H·p legal" means p's recorded
// response equals the one the state machine produces after H, and two
// histories are equivalent iff they leave behavior-identical states. These
// checkers evaluate the definitions at a concrete reachable state:
//
//   commutes at s:    resp(q | s·p) == resp(q | s), resp(p | s·q) == resp(p | s),
//                     and state(s·p·q) == state(s·q·p)
//   q overwrites p at s:  resp(q | s·p) == resp(q | s) and
//                         state(s·p·q) == state(s·q)
//
// The property tests sample many reachable states (random invocation
// sequences) and require the declared relations to match the semantic ones
// everywhere — and require Property 1 to hold semantically.
//
// State equivalence defaults to operator==; a spec whose representation is
// finer than its observable behavior can provide `static bool
// state_equivalent(const State&, const State&)` to override.
#pragma once

#include "algebra/spec.hpp"

namespace apram {

namespace detail {

template <class S>
concept HasStateEquivalent = requires(const typename S::State& a,
                                      const typename S::State& b) {
  { S::state_equivalent(a, b) } -> std::same_as<bool>;
};

template <class S>
bool states_equal(const typename S::State& a, const typename S::State& b) {
  if constexpr (HasStateEquivalent<S>) {
    return S::state_equivalent(a, b);
  } else {
    return a == b;
  }
}

}  // namespace detail

// Definition 10 instantiated at state s.
template <SequentialSpec S>
bool commutes_at(const typename S::State& s, const typename S::Invocation& p,
                 const typename S::Invocation& q) {
  const auto [sp, rp] = S::apply(s, p);
  const auto [sq, rq] = S::apply(s, q);
  const auto [spq, rq_after_p] = S::apply(sp, q);
  const auto [sqp, rp_after_q] = S::apply(sq, p);
  return rq_after_p == rq && rp_after_q == rp &&
         detail::states_equal<S>(spq, sqp);
}

// Definition 11 instantiated at state s: does q overwrite p here?
template <SequentialSpec S>
bool overwrites_at(const typename S::State& s, const typename S::Invocation& q,
                   const typename S::Invocation& p) {
  const auto [sp, rp] = S::apply(s, p);
  (void)rp;
  const auto [sq, rq] = S::apply(s, q);
  const auto [spq, rq_after_p] = S::apply(sp, q);
  return rq_after_p == rq && detail::states_equal<S>(spq, sq);
}

// Result of validating one (p, q) pair at one state.
struct AlgebraVerdict {
  bool declared_consistent = true;  // declared relations hold semantically
  bool property1 = true;            // commute-or-overwrite holds semantically
};

template <SequentialSpec S>
AlgebraVerdict validate_pair_at(const typename S::State& s,
                                const typename S::Invocation& p,
                                const typename S::Invocation& q) {
  AlgebraVerdict v;
  const bool sem_comm = commutes_at<S>(s, p, q);
  const bool sem_q_over_p = overwrites_at<S>(s, q, p);
  const bool sem_p_over_q = overwrites_at<S>(s, p, q);

  // Declared relations are universally quantified over histories, so a
  // declaration of "true" must hold at every sampled state.
  if (S::commutes(p, q) && !sem_comm) v.declared_consistent = false;
  if (S::overwrites(q, p) && !sem_q_over_p) v.declared_consistent = false;
  if (S::overwrites(p, q) && !sem_p_over_q) v.declared_consistent = false;

  v.property1 = sem_comm || sem_q_over_p || sem_p_over_q;
  return v;
}

// Property 1 at the *declaration* level (what the universal construction
// actually relies on): every pair commutes or one overwrites the other.
template <SequentialSpec S>
bool declared_property1(const typename S::Invocation& p,
                        const typename S::Invocation& q) {
  return S::commutes(p, q) || S::overwrites(p, q) || S::overwrites(q, p);
}

}  // namespace apram
