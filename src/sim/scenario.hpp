// Scenario suite — production-shaped workloads for huge simulated Worlds.
//
// The unit tests pin exact interleavings at n ≤ 16; the scenario driver
// exercises the opposite regime: 10⁵–10⁶ processes, millions of grants, and
// the traffic shapes a real deployment sees —
//
//   * Zipf-skewed writers: every process performs `ops_per_process` writes
//     to registers drawn from a Zipf(s) distribution, so a handful of hot
//     registers absorb most of the traffic (s = 0 degenerates to uniform);
//   * bursty open-loop arrivals: processes are spawned in bursts of
//     `burst_size` every `burst_every` grants, on a clock that does NOT
//     wait for existing work to drain (arrivals are open-loop, like user
//     traffic);
//   * rolling crash/recovery churn: every `churn_every` grants,
//     `churn_crashes` random live processes are crashed and (optionally)
//     revived as fresh incarnations;
//   * replayed adversary schedules: a recorded scenario run replays
//     step-identically on a fresh World (run_scenario_recorded /
//     replay_scenario), which is how adversarial schedules found at scale
//     are preserved and re-examined.
//
// Every write is wrapped in an obs kScenarioOp span (free when no tracer is
// attached), so a traced run lets `apram-trace check --bound scenario_op=1`
// re-derive the per-op cost at n far beyond the unit tests. The driver is
// deterministic given (options, scheduler): all randomness — register
// choice, churn victims, body seeds — derives from ScenarioOptions::seed
// and the scheduler's pick sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace apram::sim {

// Zipf(s) sampler over {0, …, n−1}: P(k) ∝ 1/(k+1)^s, via a precomputed CDF
// and binary search. s = 0 is the uniform distribution.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s);
  int sample(Rng& rng) const;
  int size() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

struct ScenarioOptions {
  int num_procs = 1000;
  int num_registers = 256;      // multi-writer targets of the Zipf choice
  std::uint64_t total_steps = 100'000;  // scenario clock, in grants
  int ops_per_process = 16;     // writes per process incarnation
  double zipf_s = 1.0;          // register skew; 0 = uniform
  std::uint64_t seed = 1;       // body seeds + churn victim choice

  // Open-loop bursty arrivals: burst_size spawns every burst_every grants
  // until all num_procs have arrived. 0/0 (default) spawns everyone up
  // front.
  std::uint64_t burst_every = 0;
  int burst_size = 0;

  // Rolling churn: every churn_every grants, crash churn_crashes random
  // live processes; with `recover`, each victim is revived immediately as
  // a new incarnation. 0/0 disables churn.
  std::uint64_t churn_every = 0;
  int churn_crashes = 0;
  bool recover = true;
};

struct ScenarioResult {
  std::uint64_t grants = 0;    // scheduler grants actually performed
  std::uint64_t arrived = 0;   // spawns (bursts), excluding revivals
  std::uint64_t crashes = 0;   // churn crashes injected
  std::uint64_t revived = 0;   // churn recoveries
  std::uint64_t completed = 0; // pids in the done state at the end
  bool all_done = false;
  StepCounts accesses;         // World::total_counts() at the end

  // Same execution shape — what a step-identical replay must reproduce.
  bool same_execution(const ScenarioResult& o) const {
    return grants == o.grants && arrived == o.arrived &&
           crashes == o.crashes && revived == o.revived &&
           completed == o.completed && all_done == o.all_done &&
           accesses.reads == o.accesses.reads &&
           accesses.writes == o.accesses.writes;
  }
};

// World::Options tuned for scenario scale: lazy frames (a burst of 10⁵
// arrivals costs closures, not coroutine frames) and no per-pid metric
// counters. Pass to the World constructor alongside any tracer/metrics.
World::Options scenario_world_options(const ScenarioOptions& opts);

// Drives `opts` on a caller-built World (num_procs must match) under
// `sched`. Creates the scenario's registers in `w`; call on a fresh World.
ScenarioResult run_scenario(World& w, Scheduler& sched,
                            const ScenarioOptions& opts);

// Runs the scenario on an internal World under a seeded RandomScheduler
// wrapped in a RecordingScheduler; the pick sequence lands in *picks_out
// (if non-null) for replay_scenario.
ScenarioResult run_scenario_recorded(const ScenarioOptions& opts,
                                     std::uint64_t sched_seed,
                                     double stickiness,
                                     std::vector<int>* picks_out);

// Replays a recorded pick sequence on a fresh World with strict divergence
// checking (FixedScheduler kFail): aborts if the execution drifts from the
// recorded one, returns a result that must satisfy same_execution().
ScenarioResult replay_scenario(const ScenarioOptions& opts,
                               const std::vector<int>& picks);

}  // namespace apram::sim
