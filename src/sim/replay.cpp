#include "sim/replay.hpp"

namespace apram::sim {

std::unique_ptr<Execution> replay(const ExecutionFactory& factory,
                                  const std::vector<int>& prefix,
                                  ReplayMode mode) {
  auto exec = factory();
  APRAM_CHECK(exec != nullptr);
  FixedScheduler sched(prefix, FixedScheduler::Fallback::kStop,
                       mode == ReplayMode::kStrict
                           ? FixedScheduler::Divergence::kFail
                           : FixedScheduler::Divergence::kSkip);
  exec->world().run(sched);
  return exec;
}

std::unique_ptr<Execution> replay_then_solo(const ExecutionFactory& factory,
                                            const std::vector<int>& prefix,
                                            int pid, std::uint64_t solo_cap,
                                            ReplayMode mode) {
  auto exec = replay(factory, prefix, mode);
  exec->world().run_solo(pid, solo_cap);
  return exec;
}

}  // namespace apram::sim
