#include "sim/replay.hpp"

namespace apram::sim {

std::unique_ptr<Execution> replay(const ExecutionFactory& factory,
                                  const std::vector<int>& prefix) {
  auto exec = factory();
  APRAM_CHECK(exec != nullptr);
  FixedScheduler sched(prefix, FixedScheduler::Fallback::kStop);
  exec->world().run(sched);
  return exec;
}

std::unique_ptr<Execution> replay_then_solo(const ExecutionFactory& factory,
                                            const std::vector<int>& prefix,
                                            int pid, std::uint64_t solo_cap) {
  auto exec = replay(factory, prefix);
  exec->world().run_solo(pid, solo_cap);
  return exec;
}

}  // namespace apram::sim
