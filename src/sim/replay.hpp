// Deterministic replay.
//
// Simulator executions are pure functions of (program, schedule). That makes
// "what would process P return if it ran alone from here?" — the preference
// oracle at the heart of the Lemma 6 adversary — computable without cloning
// coroutine state: rebuild the world from its factory, replay the recorded
// schedule prefix, then run P solo.
//
// An Execution bundles a World with whatever output slots the program under
// test exposes; the factory must produce byte-identical behaviour on every
// call (seeded RNGs only, no wall-clock or address-dependent logic).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/world.hpp"

namespace apram::sim {

class Execution {
 public:
  virtual ~Execution() = default;
  virtual World& world() = 0;
};

using ExecutionFactory = std::function<std::unique_ptr<Execution>()>;

// How replay treats a prefix entry whose pid is not runnable at that point:
//   kStrict  — abort loudly (FixedScheduler::Divergence::kFail). The default:
//              a recorded schedule that stops matching its execution means a
//              corrupt/truncated artifact or a non-deterministic factory,
//              and drifting past the divergence would silently replay some
//              OTHER execution.
//   kLenient — skip the entry (the pre-strict behaviour). For callers that
//              extend prefixes speculatively past completion points
//              (sim/explore's DFS, the Lemma 6 adversary).
enum class ReplayMode { kStrict, kLenient };

// Replays `prefix` on a fresh execution and returns it, positioned right
// after the prefix.
std::unique_ptr<Execution> replay(const ExecutionFactory& factory,
                                  const std::vector<int>& prefix,
                                  ReplayMode mode = ReplayMode::kStrict);

// Replays `prefix`, then runs `pid` alone until its process completes.
// Aborts if the solo run exceeds `solo_cap` steps (a wait-freedom failure).
std::unique_ptr<Execution> replay_then_solo(
    const ExecutionFactory& factory, const std::vector<int>& prefix, int pid,
    std::uint64_t solo_cap = World::kDefaultMaxSteps,
    ReplayMode mode = ReplayMode::kStrict);

}  // namespace apram::sim
