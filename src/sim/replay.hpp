// Deterministic replay.
//
// Simulator executions are pure functions of (program, schedule). That makes
// "what would process P return if it ran alone from here?" — the preference
// oracle at the heart of the Lemma 6 adversary — computable without cloning
// coroutine state: rebuild the world from its factory, replay the recorded
// schedule prefix, then run P solo.
//
// An Execution bundles a World with whatever output slots the program under
// test exposes; the factory must produce byte-identical behaviour on every
// call (seeded RNGs only, no wall-clock or address-dependent logic).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/world.hpp"

namespace apram::sim {

class Execution {
 public:
  virtual ~Execution() = default;
  virtual World& world() = 0;
};

using ExecutionFactory = std::function<std::unique_ptr<Execution>()>;

// Replays `prefix` (skipping entries for already-finished processes) on a
// fresh execution and returns it, positioned right after the prefix.
std::unique_ptr<Execution> replay(const ExecutionFactory& factory,
                                  const std::vector<int>& prefix);

// Replays `prefix`, then runs `pid` alone until its process completes.
// Aborts if the solo run exceeds `solo_cap` steps (a wait-freedom failure).
std::unique_ptr<Execution> replay_then_solo(
    const ExecutionFactory& factory, const std::vector<int>& prefix, int pid,
    std::uint64_t solo_cap = World::kDefaultMaxSteps);

}  // namespace apram::sim
