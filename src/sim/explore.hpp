// Exhaustive schedule exploration — bounded model checking for the
// simulator.
//
// For small programs, the space of schedules is small enough to enumerate
// *completely*: every interleaving of atomic steps, including all crash-free
// adversarial behaviours. explore_all_schedules() walks that space by
// depth-first search over schedule prefixes, reconstructing each execution
// deterministically through the Execution factory (the same replay mechanism
// the Lemma 6 adversary uses), and invokes a caller-supplied check on every
// completed execution.
//
// This turns randomized property tests into proofs-by-enumeration at small
// sizes: e.g. "scan comparability holds under EVERY schedule of 2 updaters
// and 1 scanner", not just the sampled ones.
//
// Cost: O(branches^depth) replays, each O(depth) steps — keep total steps
// under ~20 and processes ≤ 3. The explorer prunes by process symmetry only
// implicitly (none), so size limits are the caller's responsibility; an
// explicit cap aborts loudly rather than silently truncating coverage.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/replay.hpp"

namespace apram::sim {

struct ExploreStats {
  std::uint64_t executions = 0;     // complete executions checked
  std::uint64_t max_depth = 0;      // longest schedule seen
};

// Enumerates every schedule of the factory's world. For each complete
// execution (all processes done), calls `check(execution, schedule)`; the
// check should assert/record whatever property it cares about.
//
// `max_executions` guards against accidental explosion (aborts if hit).
ExploreStats explore_all_schedules(
    const ExecutionFactory& factory,
    const std::function<void(Execution&, const std::vector<int>&)>& check,
    std::uint64_t max_executions = 2'000'000);

}  // namespace apram::sim
