// Coroutine plumbing for the asynchronous PRAM simulator.
//
// A simulated process is a C++20 coroutine that suspends at every shared
// memory access; the enclosing World resumes it one atomic step at a time
// under the control of a Scheduler. Two coroutine types are defined here:
//
//  * ProcessTask — the top-level coroutine of a simulated process. It starts
//    suspended and, when it finally completes, simply parks at its final
//    suspend point so the World can observe `done()`.
//
//  * SimCoro<T> — an awaitable sub-coroutine, used to write shared-memory
//    procedures (e.g. the Figure 5 Scan) as reusable building blocks. When a
//    process `co_await`s a SimCoro, control transfers symmetrically into the
//    child; when the child suspends on a register access, the whole process
//    is suspended (the World records the innermost handle as the process's
//    resume point); when the child completes, control transfers back to the
//    parent without bouncing through the scheduler.
//
// No coroutine here ever touches a thread: the simulator is single-threaded
// and deterministic by construction.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "util/assert.hpp"

namespace apram::sim {

// ---------------------------------------------------------------------------
// ProcessTask
// ---------------------------------------------------------------------------

class [[nodiscard]] ProcessTask {
 public:
  struct promise_type {
    ProcessTask get_return_object() {
      return ProcessTask{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }

    std::exception_ptr exception;
  };

  ProcessTask() = default;
  explicit ProcessTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  ProcessTask(ProcessTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  ProcessTask& operator=(ProcessTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ProcessTask(const ProcessTask&) = delete;
  ProcessTask& operator=(const ProcessTask&) = delete;
  ~ProcessTask() { destroy(); }

  std::coroutine_handle<promise_type> handle() const { return handle_; }
  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  // Rethrows any exception that escaped the process body.
  void check() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

// ---------------------------------------------------------------------------
// SimCoro<T>
// ---------------------------------------------------------------------------

namespace detail {

// Final awaiter shared by SimCoro promises: symmetric-transfers back to the
// awaiting (parent) coroutine, or to noop if awaited nowhere (not expected).
template <class Promise>
struct FinalTransferAwaiter {
  bool await_ready() noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

}  // namespace detail

template <class T>
class [[nodiscard]] SimCoro {
 public:
  struct promise_type {
    SimCoro get_return_object() {
      return SimCoro{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalTransferAwaiter<promise_type> final_suspend() noexcept {
      return {};
    }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { exception = std::current_exception(); }

    std::coroutine_handle<> continuation;
    std::optional<T> value;
    std::exception_ptr exception;
  };

  explicit SimCoro(std::coroutine_handle<promise_type> h) : handle_(h) {}
  SimCoro(SimCoro&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  SimCoro(const SimCoro&) = delete;
  SimCoro& operator=(const SimCoro&) = delete;
  SimCoro& operator=(SimCoro&&) = delete;
  ~SimCoro() {
    if (handle_) handle_.destroy();
  }

  // Awaitable interface: start the child immediately via symmetric transfer.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    APRAM_CHECK_MSG(p.value.has_value(), "SimCoro finished without a value");
    return std::move(*p.value);
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] SimCoro<void> {
 public:
  struct promise_type {
    SimCoro get_return_object() {
      return SimCoro{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalTransferAwaiter<promise_type> final_suspend() noexcept {
      return {};
    }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }

    std::coroutine_handle<> continuation;
    std::exception_ptr exception;
  };

  explicit SimCoro(std::coroutine_handle<promise_type> h) : handle_(h) {}
  SimCoro(SimCoro&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  SimCoro(const SimCoro&) = delete;
  SimCoro& operator=(const SimCoro&) = delete;
  SimCoro& operator=(SimCoro&&) = delete;
  ~SimCoro() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace apram::sim
