#include "sim/world.hpp"

#include "sim/scheduler.hpp"

namespace apram::sim {

World::World(int num_procs) : World(num_procs, Options{}) {}

World::World(int num_procs, const Options& options)
    : state_(static_cast<std::size_t>(num_procs), ProcState::kUnspawned),
      counts_(static_cast<std::size_t>(num_procs)),
      resume_(static_cast<std::size_t>(num_procs)),
      crash_at_(static_cast<std::size_t>(num_procs), kNoScheduledCrash),
      epoch_(static_cast<std::size_t>(num_procs), 0),
      bodies_(static_cast<std::size_t>(num_procs)),
      runnable_(num_procs) {
  APRAM_CHECK(num_procs > 0);
  apply_options(options);
}

void World::apply_options(const Options& options) {
  if (options.trace) trace_enabled_ = true;
  if (options.lazy_spawn) lazy_spawn_ = true;
  if (options.metrics != nullptr) {
    attach_metrics_impl(*options.metrics, options.metrics_prefix,
                        options.per_pid_metrics);
  }
  if (options.tracer != nullptr) set_tracer_impl(options.tracer);
  default_max_steps_ = options.max_steps;
  for (const CrashPoint& c : options.crashes) {
    schedule_crash(c.pid, c.at_access);
  }
}

World::~World() = default;

void World::spawn(int pid, ProcessFn fn) {
  spawn_impl(pid, std::move(fn), /*allow_crashed=*/false);
}

void World::revive(int pid, ProcessFn fn) {
  spawn_impl(pid, std::move(fn), /*allow_crashed=*/true);
}

void World::spawn_impl(int pid, ProcessFn fn, bool allow_crashed) {
  const ProcState s = state(pid);
  // A process may be re-spawned with a new program once its previous one
  // completed (multi-phase test harnesses use this); overlapping programs
  // are errors, and resurrecting crashed processes takes revive().
  if (!allow_crashed) {
    APRAM_CHECK_MSG(s != ProcState::kCrashed,
                    "crashed process cannot be re-spawned");
  }
  APRAM_CHECK_MSG(s == ProcState::kUnspawned || s == ProcState::kDone ||
                      s == ProcState::kCrashed,
                  "process spawned while running");
  Body& b = bodies_[static_cast<std::size_t>(pid)];
  b.task = ProcessTask{};  // old frame (if any) dies before its closure
  b.fn = std::move(fn);
  ++epoch_[static_cast<std::size_t>(pid)];
  state_[static_cast<std::size_t>(pid)] = ProcState::kPending;
  runnable_.add(pid);
  emit_lifecycle(pid, obs::EventKind::kSpawn);
  if (lazy_spawn_) {
    // No frame yet; the first grant materializes it. A crash threshold the
    // counts already meet still fires now, exactly as an eager spawn would.
    maybe_fire_scheduled_crash(pid);
    return;
  }
  materialize(pid);
}

void World::materialize(int pid) {
  APRAM_CHECK(state(pid) == ProcState::kPending);
  Body& b = bodies_[static_cast<std::size_t>(pid)];
  b.task = b.fn(Context{this, pid});
  APRAM_CHECK(b.task.valid());
  state_[static_cast<std::size_t>(pid)] = ProcState::kLive;
  resume_[static_cast<std::size_t>(pid)] = b.task.handle();
  // Prime the coroutine: run the local (free) prefix of the body up to its
  // first shared-memory access. Afterwards every scheduler grant performs
  // exactly one atomic access, so steps == reads + writes.
  resume_[static_cast<std::size_t>(pid)].resume();
  if (b.task.handle().done()) {
    finish(pid);
  } else {
    maybe_fire_scheduled_crash(pid);  // covers crash_at == current total
  }
}

void World::finish(int pid) {
  state_[static_cast<std::size_t>(pid)] = ProcState::kDone;
  runnable_.remove(pid);
  resume_[static_cast<std::size_t>(pid)] = nullptr;
  Body& b = bodies_[static_cast<std::size_t>(pid)];
  b.task.check();  // propagate any exception from the process body
  // Retire the frame and the closure now rather than at re-spawn: a million
  // finished processes must not hold a million frames.
  b.task = ProcessTask{};
  b.fn = nullptr;
  emit_lifecycle(pid, obs::EventKind::kDone);
}

void World::crash(int pid) {
  if (runnable(pid)) runnable_.remove(pid);
  state_[static_cast<std::size_t>(pid)] = ProcState::kCrashed;
  resume_[static_cast<std::size_t>(pid)] = nullptr;
  Body& b = bodies_[static_cast<std::size_t>(pid)];
  b.task = ProcessTask{};  // destroying a suspended frame is well-defined
  b.fn = nullptr;
  emit_lifecycle(pid, obs::EventKind::kCrash);
}

void World::schedule_crash(int pid, std::uint64_t at_access) {
  APRAM_CHECK_MSG(state(pid) != ProcState::kCrashed,
                  "schedule_crash on a crashed process");
  crash_at_[static_cast<std::size_t>(pid)] = at_access;
  maybe_fire_scheduled_crash(pid);
}

void World::maybe_fire_scheduled_crash(int pid) {
  // Completion wins: a process that finished its program below the
  // threshold keeps its result. Unspawned processes wait for spawn().
  const ProcState s = state_[static_cast<std::size_t>(pid)];
  if (s != ProcState::kLive && s != ProcState::kPending) return;
  if (counts_[static_cast<std::size_t>(pid)].total() >=
      crash_at_[static_cast<std::size_t>(pid)]) {
    crash(pid);
  }
}

void World::attach_metrics_impl(obs::Registry& registry,
                                const std::string& prefix, bool per_pid) {
  obs_reads_total_ = &registry.counter(prefix + ".reads");
  obs_writes_total_ = &registry.counter(prefix + ".writes");
  obs_reads_.clear();
  obs_writes_.clear();
  if (!per_pid) return;
  obs_reads_.assign(state_.size(), nullptr);
  obs_writes_.assign(state_.size(), nullptr);
  for (int pid = 0; pid < num_procs(); ++pid) {
    const std::string suffix = ".p" + std::to_string(pid);
    obs_reads_[static_cast<std::size_t>(pid)] =
        &registry.counter(prefix + ".reads" + suffix);
    obs_writes_[static_cast<std::size_t>(pid)] =
        &registry.counter(prefix + ".writes" + suffix);
  }
}

void World::detach_metrics() {
  obs_reads_total_ = nullptr;
  obs_writes_total_ = nullptr;
  obs_reads_.clear();
  obs_writes_.clear();
}

void World::set_tracer_impl(obs::Tracer* tracer) {
  APRAM_CHECK_MSG(tracer == nullptr || tracer->num_rings() >= num_procs(),
                  "tracer needs one ring per process");
  tracer_ = tracer;
  // Span stacks are only needed (and only paid for) with a tracer attached.
  if (tracer_ != nullptr && spans_.empty()) {
    spans_.resize(state_.size());
  }
}

void World::emit_lifecycle(int pid, obs::EventKind kind) {
  if (tracer_ == nullptr) return;
  // A kCrash event carries the victim's innermost open op id: the span stays
  // open in the trace, which is the truth of that execution.
  tracer_->emit(obs::TraceEvent{global_step_, pid, kind, /*object=*/-1,
                                /*arg=*/0, current_op(pid)});
}

void World::op_begin(int pid, obs::OpKind kind) {
  if (tracer_ == nullptr) return;
  const std::uint64_t id = tracer_->next_op_id();
  spans_[static_cast<std::size_t>(pid)].push(id, kind);
  tracer_->emit(obs::TraceEvent{global_step_, pid, obs::EventKind::kOpBegin,
                                /*object=*/-1,
                                static_cast<std::uint64_t>(kind), id});
}

void World::op_end(int pid, obs::OpKind kind) {
  if (tracer_ == nullptr) return;
  obs::SpanStack& spans = spans_[static_cast<std::size_t>(pid)];
  // Tolerate a tracer attached mid-operation (apply_options on a live
  // World): the end of an un-begun span is dropped, not an underflow.
  if (spans.depth == 0) return;
  const obs::SpanStack::Frame frame = spans.pop();
  tracer_->emit(obs::TraceEvent{global_step_, pid, obs::EventKind::kOpEnd,
                                /*object=*/-1,
                                static_cast<std::uint64_t>(kind),
                                frame.op_id});
}

void World::op_phase(int pid, obs::Phase phase, int index) {
  if (tracer_ == nullptr) return;
  tracer_->emit(obs::TraceEvent{global_step_, pid, obs::EventKind::kPhase,
                                index, static_cast<std::uint64_t>(phase),
                                current_op(pid)});
}

void World::op_help(int pid, int object) {
  if (tracer_ == nullptr) return;
  tracer_->emit(obs::TraceEvent{global_step_, pid, obs::EventKind::kHelp,
                                object, /*arg=*/0, current_op(pid)});
}

void World::count_access(int pid, int register_id, bool is_write) {
  StepCounts& c = counts_[static_cast<std::size_t>(pid)];
  if (is_write) {
    ++c.writes;
    if (obs_writes_total_ != nullptr) {
      obs_writes_total_->add_shard(0, 1);
      if (!obs_writes_.empty()) {
        obs_writes_[static_cast<std::size_t>(pid)]->add_shard(0, 1);
      }
    }
  } else {
    ++c.reads;
    if (obs_reads_total_ != nullptr) {
      obs_reads_total_->add_shard(0, 1);
      if (!obs_reads_.empty()) {
        obs_reads_[static_cast<std::size_t>(pid)]->add_shard(0, 1);
      }
    }
  }
  if (trace_enabled_) {
    trace_.push_back(AccessEvent{global_step_, pid, register_id, is_write});
  }
  if (tracer_ != nullptr) {
    tracer_->emit(obs::TraceEvent{
        global_step_, pid,
        is_write ? obs::EventKind::kWrite : obs::EventKind::kRead,
        register_id, /*arg=*/0, current_op(pid)});
  }
  ++global_step_;
}

void World::count_cas(int pid, int register_id, bool success) {
  ++counts_[static_cast<std::size_t>(pid)].writes;
  if (obs_writes_total_ != nullptr) {
    obs_writes_total_->add_shard(0, 1);
    if (!obs_writes_.empty()) {
      obs_writes_[static_cast<std::size_t>(pid)]->add_shard(0, 1);
    }
  }
  if (trace_enabled_) {
    trace_.push_back(
        AccessEvent{global_step_, pid, register_id, /*is_write=*/true});
  }
  if (tracer_ != nullptr) {
    tracer_->emit(obs::TraceEvent{global_step_, pid, obs::EventKind::kCas,
                                  register_id, success ? 1u : 0u,
                                  current_op(pid)});
  }
  ++global_step_;
}

bool World::step(int pid) {
  const ProcState s = state(pid);
  APRAM_CHECK_MSG(s != ProcState::kUnspawned, "stepping an unspawned process");
  APRAM_CHECK_MSG(s != ProcState::kDone, "stepping a finished process");
  APRAM_CHECK_MSG(s != ProcState::kCrashed, "stepping a crashed process");
  if (s == ProcState::kPending) {
    materialize(pid);
    // A zero-access program (or one whose crash threshold fires at the
    // materialization point) consumed this grant without an access.
    if (state_[static_cast<std::size_t>(pid)] != ProcState::kLive) {
      return false;
    }
  }
  const std::coroutine_handle<> h = resume_[static_cast<std::size_t>(pid)];
  APRAM_CHECK(h);
  h.resume();

  if (bodies_[static_cast<std::size_t>(pid)].task.handle().done()) {
    finish(pid);
    return false;
  }
  maybe_fire_scheduled_crash(pid);
  return state_[static_cast<std::size_t>(pid)] == ProcState::kLive;
}

RunResult World::run(Scheduler& sched, std::uint64_t max_steps) {
  if (max_steps == kUseOptions) max_steps = default_max_steps_;
  RunResult result;
  while (!all_done()) {
    APRAM_CHECK_MSG(result.steps_taken < max_steps,
                    "run() exceeded max_steps: non-terminating execution "
                    "(wait-freedom violation?)");
    const int pid = sched.pick(*this);
    if (pid < 0) break;  // scheduler declines to continue
    APRAM_CHECK_MSG(runnable(pid), "scheduler picked a non-runnable process");
    step(pid);
    ++result.steps_taken;
  }
  result.all_done = all_done();
  return result;
}

RunResult World::run_steps(Scheduler& sched, std::uint64_t steps) {
  RunResult result;
  while (result.steps_taken < steps && !all_done()) {
    const int pid = sched.pick(*this);
    if (pid < 0) break;
    APRAM_CHECK_MSG(runnable(pid), "scheduler picked a non-runnable process");
    step(pid);
    ++result.steps_taken;
  }
  result.all_done = all_done();
  return result;
}

RunResult World::run_solo(int pid, std::uint64_t max_steps) {
  if (max_steps == kUseOptions) max_steps = default_max_steps_;
  RunResult result;
  while (runnable(pid)) {
    APRAM_CHECK_MSG(result.steps_taken < max_steps,
                    "run_solo() exceeded max_steps: process does not "
                    "terminate in isolation");
    step(pid);
    ++result.steps_taken;
  }
  result.all_done = all_done();
  return result;
}

StepCounts World::total_counts() const {
  StepCounts total;
  for (const StepCounts& c : counts_) {
    total.reads += c.reads;
    total.writes += c.writes;
  }
  return total;
}

}  // namespace apram::sim
