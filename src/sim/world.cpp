#include "sim/world.hpp"

#include "sim/scheduler.hpp"

namespace apram::sim {

World::World(int num_procs) : World(num_procs, Options{}) {}

World::World(int num_procs, const Options& options) {
  APRAM_CHECK(num_procs > 0);
  procs_.resize(static_cast<std::size_t>(num_procs));
  apply_options(options);
}

void World::apply_options(const Options& options) {
  if (options.trace) trace_enabled_ = true;
  if (options.metrics != nullptr) {
    attach_metrics_impl(*options.metrics, options.metrics_prefix);
  }
  if (options.tracer != nullptr) set_tracer_impl(options.tracer);
  default_max_steps_ = options.max_steps;
  for (const CrashPoint& c : options.crashes) {
    schedule_crash(c.pid, c.at_access);
  }
}

World::~World() = default;

void World::spawn(int pid, ProcessFn fn) {
  Proc& p = proc(pid);
  // A process may be re-spawned with a new program once its previous one
  // completed (multi-phase test harnesses use this); overlapping programs
  // and resurrecting crashed processes are errors.
  APRAM_CHECK_MSG(!p.crashed, "crashed process cannot be re-spawned");
  APRAM_CHECK_MSG(!p.task.valid() || p.done, "process spawned while running");
  p.task = ProcessTask{};
  p.done = false;
  p.fn = std::move(fn);
  p.task = p.fn(Context{this, pid});
  APRAM_CHECK(p.task.valid());
  p.resume_point = p.task.handle();
  // Prime the coroutine: run the local (free) prefix of the body up to its
  // first shared-memory access. Afterwards every scheduler grant performs
  // exactly one atomic access, so steps == reads + writes.
  emit_lifecycle(pid, obs::EventKind::kSpawn);
  p.resume_point.resume();
  if (p.task.handle().done()) {
    p.done = true;
    p.task.check();
    emit_lifecycle(pid, obs::EventKind::kDone);
  } else {
    maybe_fire_scheduled_crash(pid);  // covers crash_at == current total
  }
}

bool World::all_done() const {
  for (const Proc& p : procs_) {
    if (p.task.valid() && !p.done && !p.crashed) return false;
  }
  return true;
}

int World::num_runnable() const {
  int n = 0;
  for (int pid = 0; pid < num_procs(); ++pid) n += runnable(pid) ? 1 : 0;
  return n;
}

void World::crash(int pid) {
  proc(pid).crashed = true;
  emit_lifecycle(pid, obs::EventKind::kCrash);
}

void World::schedule_crash(int pid, std::uint64_t at_access) {
  Proc& p = proc(pid);
  APRAM_CHECK_MSG(!p.crashed, "schedule_crash on a crashed process");
  p.crash_at = at_access;
  maybe_fire_scheduled_crash(pid);
}

void World::maybe_fire_scheduled_crash(int pid) {
  const Proc& p = proc(pid);
  // Completion wins: a process that finished its program below the
  // threshold keeps its result. Unspawned processes wait for spawn().
  if (!p.task.valid() || p.done || p.crashed) return;
  if (p.counts.total() >= p.crash_at) crash(pid);
}

void World::attach_metrics_impl(obs::Registry& registry,
                                const std::string& prefix) {
  obs_reads_total_ = &registry.counter(prefix + ".reads");
  obs_writes_total_ = &registry.counter(prefix + ".writes");
  obs_reads_.assign(procs_.size(), nullptr);
  obs_writes_.assign(procs_.size(), nullptr);
  for (int pid = 0; pid < num_procs(); ++pid) {
    const std::string suffix = ".p" + std::to_string(pid);
    obs_reads_[static_cast<std::size_t>(pid)] =
        &registry.counter(prefix + ".reads" + suffix);
    obs_writes_[static_cast<std::size_t>(pid)] =
        &registry.counter(prefix + ".writes" + suffix);
  }
}

void World::detach_metrics() {
  obs_reads_total_ = nullptr;
  obs_writes_total_ = nullptr;
  obs_reads_.clear();
  obs_writes_.clear();
}

void World::set_tracer_impl(obs::Tracer* tracer) {
  APRAM_CHECK_MSG(tracer == nullptr || tracer->num_rings() >= num_procs(),
                  "tracer needs one ring per process");
  tracer_ = tracer;
}

void World::emit_lifecycle(int pid, obs::EventKind kind) {
  if (tracer_ == nullptr) return;
  // A kCrash event carries the victim's innermost open op id: the span stays
  // open in the trace, which is the truth of that execution.
  tracer_->emit(obs::TraceEvent{global_step_, pid, kind, /*object=*/-1,
                                /*arg=*/0, proc(pid).spans.current()});
}

void World::op_begin(int pid, obs::OpKind kind) {
  if (tracer_ == nullptr) return;
  const std::uint64_t id = tracer_->next_op_id();
  proc(pid).spans.push(id, kind);
  tracer_->emit(obs::TraceEvent{global_step_, pid, obs::EventKind::kOpBegin,
                                /*object=*/-1,
                                static_cast<std::uint64_t>(kind), id});
}

void World::op_end(int pid, obs::OpKind kind) {
  if (tracer_ == nullptr) return;
  Proc& p = proc(pid);
  // Tolerate a tracer attached mid-operation (apply_options on a live
  // World): the end of an un-begun span is dropped, not an underflow.
  if (p.spans.depth == 0) return;
  const obs::SpanStack::Frame frame = p.spans.pop();
  tracer_->emit(obs::TraceEvent{global_step_, pid, obs::EventKind::kOpEnd,
                                /*object=*/-1,
                                static_cast<std::uint64_t>(kind),
                                frame.op_id});
}

void World::op_phase(int pid, obs::Phase phase, int index) {
  if (tracer_ == nullptr) return;
  tracer_->emit(obs::TraceEvent{global_step_, pid, obs::EventKind::kPhase,
                                index, static_cast<std::uint64_t>(phase),
                                proc(pid).spans.current()});
}

void World::op_help(int pid, int object) {
  if (tracer_ == nullptr) return;
  tracer_->emit(obs::TraceEvent{global_step_, pid, obs::EventKind::kHelp,
                                object, /*arg=*/0,
                                proc(pid).spans.current()});
}

void World::count_access(int pid, int register_id, bool is_write) {
  Proc& p = proc(pid);
  if (is_write) {
    ++p.counts.writes;
    if (obs_writes_total_ != nullptr) {
      obs_writes_total_->add_shard(0, 1);
      obs_writes_[static_cast<std::size_t>(pid)]->add_shard(0, 1);
    }
  } else {
    ++p.counts.reads;
    if (obs_reads_total_ != nullptr) {
      obs_reads_total_->add_shard(0, 1);
      obs_reads_[static_cast<std::size_t>(pid)]->add_shard(0, 1);
    }
  }
  if (trace_enabled_) {
    trace_.push_back(AccessEvent{global_step_, pid, register_id, is_write});
  }
  if (tracer_ != nullptr) {
    tracer_->emit(obs::TraceEvent{
        global_step_, pid,
        is_write ? obs::EventKind::kWrite : obs::EventKind::kRead,
        register_id, /*arg=*/0, proc(pid).spans.current()});
  }
  ++global_step_;
}

void World::count_cas(int pid, int register_id, bool success) {
  Proc& p = proc(pid);
  ++p.counts.writes;
  if (obs_writes_total_ != nullptr) {
    obs_writes_total_->add_shard(0, 1);
    obs_writes_[static_cast<std::size_t>(pid)]->add_shard(0, 1);
  }
  if (trace_enabled_) {
    trace_.push_back(
        AccessEvent{global_step_, pid, register_id, /*is_write=*/true});
  }
  if (tracer_ != nullptr) {
    tracer_->emit(obs::TraceEvent{global_step_, pid, obs::EventKind::kCas,
                                  register_id, success ? 1u : 0u,
                                  proc(pid).spans.current()});
  }
  ++global_step_;
}

bool World::step(int pid) {
  Proc& p = proc(pid);
  APRAM_CHECK_MSG(p.task.valid(), "stepping an unspawned process");
  APRAM_CHECK_MSG(!p.done, "stepping a finished process");
  APRAM_CHECK_MSG(!p.crashed, "stepping a crashed process");
  APRAM_CHECK(p.resume_point);

  p.resume_point.resume();

  if (p.task.handle().done()) {
    p.done = true;
    p.task.check();  // propagate any exception from the process body
    emit_lifecycle(pid, obs::EventKind::kDone);
    return false;
  }
  maybe_fire_scheduled_crash(pid);
  return runnable(pid);
}

RunResult World::run(Scheduler& sched, std::uint64_t max_steps) {
  if (max_steps == kUseOptions) max_steps = default_max_steps_;
  RunResult result;
  while (!all_done()) {
    APRAM_CHECK_MSG(result.steps_taken < max_steps,
                    "run() exceeded max_steps: non-terminating execution "
                    "(wait-freedom violation?)");
    const int pid = sched.pick(*this);
    if (pid < 0) break;  // scheduler declines to continue
    APRAM_CHECK_MSG(runnable(pid), "scheduler picked a non-runnable process");
    step(pid);
    ++result.steps_taken;
  }
  result.all_done = all_done();
  return result;
}

RunResult World::run_steps(Scheduler& sched, std::uint64_t steps) {
  RunResult result;
  while (result.steps_taken < steps && !all_done()) {
    const int pid = sched.pick(*this);
    if (pid < 0) break;
    APRAM_CHECK_MSG(runnable(pid), "scheduler picked a non-runnable process");
    step(pid);
    ++result.steps_taken;
  }
  result.all_done = all_done();
  return result;
}

RunResult World::run_solo(int pid, std::uint64_t max_steps) {
  if (max_steps == kUseOptions) max_steps = default_max_steps_;
  RunResult result;
  while (runnable(pid)) {
    APRAM_CHECK_MSG(result.steps_taken < max_steps,
                    "run_solo() exceeded max_steps: process does not "
                    "terminate in isolation");
    step(pid);
    ++result.steps_taken;
  }
  result.all_done = all_done();
  return result;
}

StepCounts World::total_counts() const {
  StepCounts total;
  for (const Proc& p : procs_) {
    total.reads += p.counts.reads;
    total.writes += p.counts.writes;
  }
  return total;
}

}  // namespace apram::sim
