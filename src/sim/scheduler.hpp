// Schedulers — the adversary's half of the asynchronous PRAM model.
//
// A Scheduler decides, before each atomic step, which runnable process moves
// next. The model places no fairness constraints on this choice; wait-free
// algorithms must terminate under *every* scheduler, including ones that
// stall or crash other processes. The concrete schedulers here cover the
// executions the paper's proofs quantify over:
//
//   RoundRobinScheduler   — fair interleaving (the "synchronous-ish" case)
//   RandomScheduler       — seeded uniform interleavings, optionally biased
//   FixedScheduler        — replays an explicit schedule (determinism/replay)
//   RecordingScheduler    — wraps another scheduler and records its picks
//   CrashingScheduler     — wraps another scheduler, crashing chosen pids at
//                           chosen global steps (failure injection)
//   SoloScheduler         — runs a single process to completion
//
// Programmable adversaries (e.g. the Lemma 6 lower-bound adversary) live
// with the algorithms they attack.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/world.hpp"
#include "util/rng.hpp"

namespace apram::sim {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  // Returns the pid of a runnable process to grant the next step, or -1 to
  // stop the run. The World is passed mutably so failure-injecting and
  // adversarial schedulers can crash processes.
  virtual int pick(World& w) = 0;
};

class RoundRobinScheduler final : public Scheduler {
 public:
  int pick(World& w) override;

 private:
  int next_ = 0;
};

// Uniform random over runnable processes; with `stickiness` in (0,1), the
// previously scheduled process is rescheduled with that probability first,
// producing bursty interleavings that stress algorithms differently from
// pure uniform choice.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed, double stickiness = 0.0)
      : rng_(seed), stickiness_(stickiness) {}

  int pick(World& w) override;

 private:
  Rng rng_;
  double stickiness_;
  int last_ = -1;
};

// Replays a fixed pid sequence; after it is exhausted (or when the scheduled
// pid is not runnable) behaviour depends on `fallback`:
//   kStop       — pick() returns -1
//   kRoundRobin — continue round-robin over runnable processes
class FixedScheduler final : public Scheduler {
 public:
  enum class Fallback { kStop, kRoundRobin };

  explicit FixedScheduler(std::vector<int> schedule,
                          Fallback fallback = Fallback::kStop)
      : schedule_(std::move(schedule)), fallback_(fallback) {}

  int pick(World& w) override;

  std::size_t position() const { return pos_; }

 private:
  std::vector<int> schedule_;
  std::size_t pos_ = 0;
  Fallback fallback_;
  RoundRobinScheduler rr_;
};

class RecordingScheduler final : public Scheduler {
 public:
  explicit RecordingScheduler(Scheduler& inner) : inner_(&inner) {}

  int pick(World& w) override;

  const std::vector<int>& picks() const { return picks_; }

 private:
  Scheduler* inner_;
  std::vector<int> picks_;
};

// Crashes process `pid` just before global step `at_step` would be granted.
class CrashingScheduler final : public Scheduler {
 public:
  CrashingScheduler(Scheduler& inner,
                    std::vector<std::pair<std::uint64_t, int>> crashes);

  int pick(World& w) override;

 private:
  Scheduler* inner_;
  std::multimap<std::uint64_t, int> crashes_;  // step -> pid
};

class SoloScheduler final : public Scheduler {
 public:
  explicit SoloScheduler(int pid) : pid_(pid) {}
  int pick(World& w) override {
    return w.runnable(pid_) ? pid_ : -1;
  }

 private:
  int pid_;
};

}  // namespace apram::sim
