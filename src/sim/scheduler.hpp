// Schedulers — the adversary's half of the asynchronous PRAM model.
//
// A Scheduler decides, before each atomic step, which runnable process moves
// next. The model places no fairness constraints on this choice; wait-free
// algorithms must terminate under *every* scheduler, including ones that
// stall or crash other processes. The concrete schedulers here cover the
// executions the paper's proofs quantify over:
//
//   RoundRobinScheduler   — fair interleaving (the "synchronous-ish" case)
//   RandomScheduler       — seeded uniform interleavings, optionally biased
//   FixedScheduler        — replays an explicit schedule (determinism/replay)
//   RecordingScheduler    — wraps another scheduler and records its picks
//   CrashingScheduler     — wraps another scheduler, crashing chosen pids
//                           after a chosen number of their own steps
//                           (failure injection)
//   SoloScheduler         — runs a single process to completion
//
// All pick() implementations are O(1) amortized in the number of processes,
// riding the World's incrementally maintained runnable set — a World with
// 10⁶ processes pays the same per grant as one with 10. RoundRobin's pick
// ORDER is unchanged from the historical O(n) scan (first runnable pid at
// or after the cursor, wrapping), so recorded schedules and exploration
// results are bit-identical; RandomScheduler draws from the same uniform
// distribution but maps seeds to different sequences than the pre-SoA
// version (it samples the runnable set's dense index instead of rebuilding
// a sorted pid vector per pick).
//
// Programmable adversaries (e.g. the Lemma 6 lower-bound adversary) live
// with the algorithms they attack.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/world.hpp"
#include "util/rng.hpp"

namespace apram::sim {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  // Returns the pid of a runnable process to grant the next step, or -1 to
  // stop the run. The World is passed mutably so failure-injecting and
  // adversarial schedulers can crash processes.
  virtual int pick(World& w) = 0;
};

class RoundRobinScheduler final : public Scheduler {
 public:
  int pick(World& w) override;

 private:
  int next_ = 0;
};

// Uniform random over runnable processes; with `stickiness` in (0,1), the
// previously scheduled process is rescheduled with that probability first,
// producing bursty interleavings that stress algorithms differently from
// pure uniform choice. The sticky pid is incarnation-checked: a pid that
// crashed (or finished) and was re-spawned since the last pick is a new
// process and never inherits the old one's burst.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed, double stickiness = 0.0)
      : rng_(seed), stickiness_(stickiness) {}

  int pick(World& w) override;

 private:
  Rng rng_;
  double stickiness_;
  int last_ = -1;
  std::uint32_t last_epoch_ = 0;  // World::spawn_epoch at the sticky pick
};

// Replays a fixed pid sequence; after it is exhausted behaviour depends on
// `fallback`:
//   kStop       — pick() returns -1
//   kRoundRobin — continue round-robin over runnable processes
//
// A scheduled pid that is not runnable (finished, crashed, out of range) is
// a *divergence*: the execution being driven no longer matches the one the
// schedule was recorded from. `divergence` selects the response:
//   kSkip — drop the entry and move on. Use for speculative prefix
//           extension (sim/explore, the Lemma 6 adversary), where schedules
//           legitimately overrun a process's completion point.
//   kFail — abort with the position, pid, and reason. Use for replay of
//           recorded schedules (sim/replay, campaign artifacts), where a
//           divergence means the artifact is corrupt or the program under
//           replay is not deterministic.
class FixedScheduler final : public Scheduler {
 public:
  enum class Fallback { kStop, kRoundRobin };
  enum class Divergence { kSkip, kFail };

  explicit FixedScheduler(std::vector<int> schedule,
                          Fallback fallback = Fallback::kStop,
                          Divergence divergence = Divergence::kSkip)
      : schedule_(std::move(schedule)),
        fallback_(fallback),
        divergence_(divergence) {}

  int pick(World& w) override;

  std::size_t position() const { return pos_; }

 private:
  std::vector<int> schedule_;
  std::size_t pos_ = 0;
  Fallback fallback_;
  Divergence divergence_;
  RoundRobinScheduler rr_;
};

class RecordingScheduler final : public Scheduler {
 public:
  explicit RecordingScheduler(Scheduler& inner) : inner_(&inner) {}

  int pick(World& w) override;

  const std::vector<int>& picks() const { return picks_; }

 private:
  Scheduler* inner_;
  std::vector<int> picks_;
};

// Crash injection keyed to the victim's OWN step count. A pair {S, pid}
// crashes `pid` before its (S+1)-th shared-memory access: the victim
// performs exactly S accesses, or fewer only because its program is shorter
// — a process that completes before reaching S is never crashed (completion
// wins, matching the model where a finished process has nothing left to
// lose). Unlike a global-step trigger, this pins the crash point *within
// the victim's operation* independently of how the other processes are
// interleaved, which is what "crash a writer one step before its final
// write" needs to mean under an arbitrary scheduler.
//
// Cost: O(1) per pick once every victim has spawned. A victim's count only
// changes when a grant goes to that victim, so between picks only the
// previously granted pid needs re-checking; entries for not-yet-spawned
// victims are re-scanned per pick until they spawn, and any step taken
// outside this scheduler's grants (detected by a global-step mismatch)
// forces one full re-scan — semantics are exactly the historical
// every-entry-every-pick sweep, without its O(k) rewrite per grant.
class CrashingScheduler final : public Scheduler {
 public:
  CrashingScheduler(Scheduler& inner,
                    std::vector<std::pair<std::uint64_t, int>> crashes);

  int pick(World& w) override;

 private:
  // Fires/retires the armed entry for `pid`, if any.
  void check_victim(World& w, int pid);
  // Re-evaluates every entry: drains newly spawned victims from pending_
  // into armed_, drops finished/crashed victims, fires met quotas.
  void sweep(World& w);

  Scheduler* inner_;
  std::vector<std::pair<std::uint64_t, int>> pending_;  // victims not spawned
  std::unordered_map<int, std::uint64_t> armed_;  // live victim → min quota
  bool primed_ = false;
  int last_ = -1;                   // pid granted by the previous pick
  std::uint64_t expected_step_ = 0; // predicted global_step at the next pick
};

class SoloScheduler final : public Scheduler {
 public:
  explicit SoloScheduler(int pid) : pid_(pid) {}
  int pick(World& w) override {
    return w.runnable(pid_) ? pid_ : -1;
  }

 private:
  int pid_;
};

}  // namespace apram::sim
