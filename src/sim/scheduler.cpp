#include "sim/scheduler.hpp"

namespace apram::sim {

int RoundRobinScheduler::pick(World& w) {
  const int n = w.num_procs();
  for (int i = 0; i < n; ++i) {
    const int pid = (next_ + i) % n;
    if (w.runnable(pid)) {
      next_ = (pid + 1) % n;
      return pid;
    }
  }
  return -1;
}

int RandomScheduler::pick(World& w) {
  if (stickiness_ > 0.0 && last_ >= 0 && w.runnable(last_) &&
      rng_.chance(stickiness_)) {
    return last_;
  }
  std::vector<int> runnable;
  runnable.reserve(static_cast<std::size_t>(w.num_procs()));
  for (int pid = 0; pid < w.num_procs(); ++pid) {
    if (w.runnable(pid)) runnable.push_back(pid);
  }
  if (runnable.empty()) return -1;
  last_ = runnable[rng_.below(runnable.size())];
  return last_;
}

int FixedScheduler::pick(World& w) {
  while (pos_ < schedule_.size()) {
    const int pid = schedule_[pos_];
    ++pos_;
    if (pid >= 0 && pid < w.num_procs() && w.runnable(pid)) return pid;
    // A scheduled pid that already finished (or crashed) is skipped: replay
    // prefixes may extend past a process's completion point.
  }
  if (fallback_ == Fallback::kRoundRobin) return rr_.pick(w);
  return -1;
}

int RecordingScheduler::pick(World& w) {
  const int pid = inner_->pick(w);
  if (pid >= 0) picks_.push_back(pid);
  return pid;
}

CrashingScheduler::CrashingScheduler(
    Scheduler& inner, std::vector<std::pair<std::uint64_t, int>> crashes)
    : inner_(&inner) {
  for (const auto& [step, pid] : crashes) crashes_.emplace(step, pid);
}

int CrashingScheduler::pick(World& w) {
  // Fire all crashes whose trigger step has been reached.
  while (!crashes_.empty() && crashes_.begin()->first <= w.global_step()) {
    const int victim = crashes_.begin()->second;
    crashes_.erase(crashes_.begin());
    if (!w.done(victim)) w.crash(victim);
  }
  return inner_->pick(w);
}

}  // namespace apram::sim
