#include "sim/scheduler.hpp"

#include <string>

namespace apram::sim {

int RoundRobinScheduler::pick(World& w) {
  // First runnable pid at or after the cursor, wrapping once — the same
  // order as the historical linear scan, via the runnable set's O(1)
  // successor query.
  int pid = w.next_runnable_at_or_after(next_);
  if (pid < 0 && next_ > 0) pid = w.next_runnable_at_or_after(0);
  if (pid < 0) return -1;
  next_ = (pid + 1) % w.num_procs();
  return pid;
}

int RandomScheduler::pick(World& w) {
  // The sticky shortcut only applies to the same incarnation that was
  // granted last time: a crash + revive (or done + spawn) bumps the
  // World's spawn epoch and the new process starts with a fresh draw.
  if (stickiness_ > 0.0 && last_ >= 0 && w.runnable(last_) &&
      w.spawn_epoch(last_) == last_epoch_ && rng_.chance(stickiness_)) {
    return last_;
  }
  const int n = w.num_runnable();
  if (n == 0) return -1;
  last_ = w.runnable_at(
      static_cast<int>(rng_.below(static_cast<std::uint64_t>(n))));
  last_epoch_ = w.spawn_epoch(last_);
  return last_;
}

int FixedScheduler::pick(World& w) {
  while (pos_ < schedule_.size()) {
    const int pid = schedule_[pos_];
    ++pos_;
    if (pid >= 0 && pid < w.num_procs() && w.runnable(pid)) return pid;
    if (divergence_ == Divergence::kFail) {
      const char* why = (pid < 0 || pid >= w.num_procs()) ? "out of range"
                        : !w.spawned(pid)                 ? "never spawned"
                        : w.crashed(pid)                  ? "crashed"
                                                          : "already done";
      const std::string msg =
          "schedule diverged at position " + std::to_string(pos_ - 1) +
          ": pid " + std::to_string(pid) + " is not runnable (" + why +
          "); the schedule does not match this execution";
      APRAM_CHECK_MSG(false, msg.c_str());
    }
    // kSkip: a scheduled pid that already finished (or crashed) is dropped —
    // speculative prefixes may extend past a process's completion point.
  }
  if (fallback_ == Fallback::kRoundRobin) return rr_.pick(w);
  return -1;
}

int RecordingScheduler::pick(World& w) {
  const int pid = inner_->pick(w);
  if (pid >= 0) picks_.push_back(pid);
  return pid;
}

CrashingScheduler::CrashingScheduler(
    Scheduler& inner, std::vector<std::pair<std::uint64_t, int>> crashes)
    : inner_(&inner), pending_(std::move(crashes)) {}

void CrashingScheduler::check_victim(World& w, int pid) {
  auto it = armed_.find(pid);
  if (it == armed_.end()) return;
  if (w.done(pid) || w.crashed(pid)) {
    armed_.erase(it);  // completion wins; a crash retires the entry too
    return;
  }
  if (w.counts(pid).total() >= it->second) {
    w.crash(pid);
    armed_.erase(it);
  }
}

void CrashingScheduler::sweep(World& w) {
  // Arm entries whose victim has spawned. Several entries for one victim
  // collapse to the minimum quota: the smallest fires first, and both a
  // fired crash and a completion retire every entry for that victim.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const auto [quota, victim] = pending_[i];
    if (!w.spawned(victim)) {
      pending_[keep++] = pending_[i];
      continue;
    }
    auto [it, inserted] = armed_.try_emplace(victim, quota);
    if (!inserted && quota < it->second) it->second = quota;
  }
  pending_.resize(keep);

  for (auto it = armed_.begin(); it != armed_.end();) {
    const int victim = it->first;
    if (w.done(victim) || w.crashed(victim)) {
      it = armed_.erase(it);
      continue;
    }
    if (w.counts(victim).total() >= it->second) {
      w.crash(victim);
      it = armed_.erase(it);
      continue;
    }
    ++it;
  }
}

int CrashingScheduler::pick(World& w) {
  // The check runs before the next grant is chosen, so a victim with quota
  // S is crashed after its S-th access and before its (S+1)-th. Between two
  // of our picks only the granted pid's count can change, so checking
  // `last_` alone is exact — unless steps happened outside our grants
  // (global-step mismatch) or some victims are still unspawned, both of
  // which fall back to a full sweep.
  if (!primed_ || !pending_.empty() || w.global_step() != expected_step_) {
    sweep(w);
    primed_ = true;
  } else if (last_ >= 0) {
    check_victim(w, last_);
  }
  const int pid = inner_->pick(w);
  last_ = pid;
  expected_step_ = w.global_step() + 1;
  return pid;
}

}  // namespace apram::sim
