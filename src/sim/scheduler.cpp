#include "sim/scheduler.hpp"

#include <string>

namespace apram::sim {

int RoundRobinScheduler::pick(World& w) {
  const int n = w.num_procs();
  for (int i = 0; i < n; ++i) {
    const int pid = (next_ + i) % n;
    if (w.runnable(pid)) {
      next_ = (pid + 1) % n;
      return pid;
    }
  }
  return -1;
}

int RandomScheduler::pick(World& w) {
  if (stickiness_ > 0.0 && last_ >= 0 && w.runnable(last_) &&
      rng_.chance(stickiness_)) {
    return last_;
  }
  std::vector<int> runnable;
  runnable.reserve(static_cast<std::size_t>(w.num_procs()));
  for (int pid = 0; pid < w.num_procs(); ++pid) {
    if (w.runnable(pid)) runnable.push_back(pid);
  }
  if (runnable.empty()) return -1;
  last_ = runnable[rng_.below(runnable.size())];
  return last_;
}

int FixedScheduler::pick(World& w) {
  while (pos_ < schedule_.size()) {
    const int pid = schedule_[pos_];
    ++pos_;
    if (pid >= 0 && pid < w.num_procs() && w.runnable(pid)) return pid;
    if (divergence_ == Divergence::kFail) {
      const char* why = (pid < 0 || pid >= w.num_procs()) ? "out of range"
                        : !w.spawned(pid)                 ? "never spawned"
                        : w.crashed(pid)                  ? "crashed"
                                                          : "already done";
      const std::string msg =
          "schedule diverged at position " + std::to_string(pos_ - 1) +
          ": pid " + std::to_string(pid) + " is not runnable (" + why +
          "); the schedule does not match this execution";
      APRAM_CHECK_MSG(false, msg.c_str());
    }
    // kSkip: a scheduled pid that already finished (or crashed) is dropped —
    // speculative prefixes may extend past a process's completion point.
  }
  if (fallback_ == Fallback::kRoundRobin) return rr_.pick(w);
  return -1;
}

int RecordingScheduler::pick(World& w) {
  const int pid = inner_->pick(w);
  if (pid >= 0) picks_.push_back(pid);
  return pid;
}

CrashingScheduler::CrashingScheduler(
    Scheduler& inner, std::vector<std::pair<std::uint64_t, int>> crashes)
    : inner_(&inner), crashes_(std::move(crashes)) {}

int CrashingScheduler::pick(World& w) {
  // Fire every crash whose victim has taken its quota of own steps. The
  // check runs before the next grant is chosen, so a victim with quota S is
  // crashed after its S-th access and before its (S+1)-th. Entries whose
  // victim already finished (or crashed) are dropped: completion wins.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < crashes_.size(); ++i) {
    const auto [quota, victim] = crashes_[i];
    if (!w.spawned(victim)) {
      crashes_[keep++] = crashes_[i];  // not started yet: keep waiting
      continue;
    }
    if (w.done(victim) || w.crashed(victim)) continue;
    if (w.counts(victim).total() >= quota) {
      w.crash(victim);
      continue;
    }
    crashes_[keep++] = crashes_[i];
  }
  crashes_.resize(keep);
  return inner_->pick(w);
}

}  // namespace apram::sim
