// World — the asynchronous PRAM machine.
//
// A World owns a set of shared registers and a set of processes (coroutines).
// Execution proceeds in atomic steps: a Scheduler picks a runnable process,
// the World resumes it, and the process performs exactly one shared-memory
// access (read or write) before suspending again. This is precisely the
// model of Section 3 of Aspnes & Herlihy: asynchronous processes whose only
// interaction is atomic reads and writes of shared registers, interleaved in
// an arbitrary (here: scheduler-chosen) order.
//
// The World counts reads and writes per process — the step-complexity
// measure used by all the paper's theorems — and can optionally record a
// full access trace for debugging and for history-based linearizability
// checking.
//
// Per-process state is stored structure-of-arrays (one status byte, one
// counts struct, one resume handle per pid in parallel vectors) rather than
// as an array of process objects: Worlds sized for the north star's
// 10⁵–10⁶ processes spend most steps touching one byte and one counter,
// and the hot arrays stay cache-dense. Coroutine frames — the only
// per-process allocation that is not O(1) — are created eagerly at spawn()
// by default (the documented semantics: spawn runs the body's local prefix
// up to its first access), or lazily at the first scheduler grant when
// Options::lazy_spawn is set, so a spawned-but-never-scheduled process
// costs only its stored closure. Frames are destroyed as soon as a process
// finishes or crashes, bounding memory across long respawn churn.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/coro.hpp"
#include "sim/register.hpp"
#include "sim/runnable_set.hpp"
#include "util/assert.hpp"

namespace apram::sim {

class Scheduler;

// One entry of the optional access trace.
struct AccessEvent {
  std::uint64_t step;  // global step index (0-based)
  int pid;
  int register_id;
  bool is_write;
};

// Per-process step counters — the canonical obs reads/writes/total triple
// (kept under the historical name; see obs::AccessCounts).
using StepCounts = obs::AccessCounts;

// Outcome of World::run.
struct RunResult {
  bool all_done = false;          // every non-crashed process completed
  std::uint64_t steps_taken = 0;  // scheduler grants performed during run()
};

class World {
 public:
  // Default grant budget of run()/run_solo(); the kUseOptions sentinel makes
  // those calls fall back to Options::max_steps.
  static constexpr std::uint64_t kDefaultMaxSteps = 100'000'000;
  static constexpr std::uint64_t kUseOptions = 0;

  // Construction-time configuration. One struct instead of a pile of
  // setters: everything here is fixed before the first step, which is also
  // what determinism wants (a trace/metrics sink attached mid-run splits an
  // execution into differently-instrumented halves).
  struct CrashPoint {
    int pid = 0;
    std::uint64_t at_access = 0;  // see schedule_crash
  };
  struct Options {
    bool trace = false;               // record the AccessEvent trace
    obs::Registry* metrics = nullptr; // mirror accesses into this registry
    std::string metrics_prefix = "sim";
    obs::Tracer* tracer = nullptr;    // per-step obs events (ring per pid)
    // Default grant budget for run()/run_solo() calls that do not pass an
    // explicit budget. Wait-free code exceeding it is a genuine bug.
    std::uint64_t max_steps = kDefaultMaxSteps;
    std::vector<CrashPoint> crashes;  // victim-keyed crash schedule
    // Defer coroutine-frame creation to the first scheduler grant. Off by
    // default: eager spawn is the documented semantics (a zero-access
    // program is done() immediately after spawn()). Scenario drivers turn
    // this on so 10⁶ spawned-but-not-yet-scheduled processes cost only
    // their closures.
    bool lazy_spawn = false;
    // Mirror accesses into per-pid counters `<prefix>.reads.p<pid>` /
    // `.writes.p<pid>` in addition to the totals. Off for huge Worlds:
    // 10⁶ processes would mean 2·10⁶ string-keyed counters.
    bool per_pid_metrics = true;
  };

  explicit World(int num_procs);
  World(int num_procs, const Options& options);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int num_procs() const { return static_cast<int>(state_.size()); }

  // --- Registers -----------------------------------------------------------

  // Creates a register owned by this World; the reference stays valid for the
  // World's lifetime. `writer` is the pid allowed to write it (kAnyWriter for
  // multi-writer registers).
  template <class T>
  Register<T>& make_register(std::string name, T initial,
                             int writer = kAnyWriter) {
    auto reg = std::make_unique<Register<T>>(
        std::move(name), static_cast<int>(registers_.size()), writer,
        std::move(initial));
    auto& ref = *reg;
    registers_.push_back(std::move(reg));
    return ref;
  }

  const RegisterBase& register_at(int id) const {
    APRAM_CHECK(id >= 0 && id < static_cast<int>(registers_.size()));
    return *registers_[static_cast<std::size_t>(id)];
  }
  int num_registers() const { return static_cast<int>(registers_.size()); }

  // --- Processes -----------------------------------------------------------

  using ProcessFn = std::function<ProcessTask(Context)>;

  // Installs the body of process `pid`. The callable is kept alive until the
  // process is re-spawned (coroutine frames reference the closure's
  // captures). A process whose program completed may be spawned again with a
  // fresh program — step counts accumulate across programs.
  void spawn(int pid, ProcessFn fn);

  // spawn() that additionally accepts a crashed pid: the recovered process
  // is a NEW incarnation (spawn_epoch advances) whose step counts continue
  // to accumulate. This is the scenario suite's rolling crash/recovery
  // churn; plain spawn() keeps the paper's crashes-are-permanent semantics.
  void revive(int pid, ProcessFn fn);

  bool spawned(int pid) const { return state(pid) != ProcState::kUnspawned; }
  bool done(int pid) const { return state(pid) == ProcState::kDone; }
  bool crashed(int pid) const { return state(pid) == ProcState::kCrashed; }
  bool runnable(int pid) const {
    const ProcState s = state(pid);
    return s == ProcState::kLive || s == ProcState::kPending;
  }
  bool all_done() const { return runnable_.empty(); }
  int num_runnable() const { return runnable_.size(); }

  // Incarnation counter: 0 before the first spawn, +1 per spawn()/revive().
  // Schedulers that cache a pid across picks compare epochs to avoid
  // conflating two incarnations of the same pid (RandomScheduler
  // stickiness).
  std::uint32_t spawn_epoch(int pid) const {
    APRAM_CHECK(pid >= 0 && pid < num_procs());
    return epoch_[static_cast<std::size_t>(pid)];
  }

  // --- Runnable-set queries (O(1); the scheduler hot path) -----------------

  // Smallest runnable pid ≥ `pid`, or -1 if none (no wrap-around) — the
  // successor order RoundRobinScheduler's fairness is defined by.
  int next_runnable_at_or_after(int pid) const {
    return runnable_.next_at_or_after(pid);
  }

  // The i-th runnable pid, 0 ≤ i < num_runnable(), in an unspecified but
  // deterministic order — uniform sampling over i is uniform over runnable
  // pids (RandomScheduler).
  int runnable_at(int i) const { return runnable_.at(i); }

  // Permanently halts a process (models a crash failure). Wait-free code run
  // by the other processes must still complete.
  void crash(int pid);

  // Schedules a crash keyed to the process's OWN accesses: `pid` is crashed
  // as soon as its cumulative access count (reads + writes, across respawns)
  // reaches `at_access` — i.e. before its (at_access+1)-th access — no
  // matter which scheduler drives the run. Fires immediately if the
  // threshold is already met. Completion wins: a process whose program
  // finishes below the threshold is never crashed. This is how fault plans
  // inject crashes under schedulers they do not control (explore, replay).
  void schedule_crash(int pid, std::uint64_t at_access);

  // --- Execution -----------------------------------------------------------

  // Grants one atomic step to `pid`. Returns true if the process is still
  // runnable afterwards. Under lazy_spawn the first grant to a pending
  // process materializes its frame, runs the free local prefix, and then
  // performs the first access — still one access per grant, except for a
  // zero-access program whose materializing grant performs none.
  bool step(int pid);

  // Repeatedly asks `sched` for the next process until all processes finish,
  // the scheduler declines (pick() < 0), or `max_steps` grants have been
  // made. Exceeding max_steps with unfinished processes aborts: for the
  // wait-free algorithms in this library that is a genuine bug, so tests set
  // max_steps to the theoretical bound plus slack. Passing kUseOptions (0)
  // uses the budget from Options::max_steps.
  RunResult run(Scheduler& sched, std::uint64_t max_steps = kUseOptions);

  // Takes at most `steps` grants and then returns normally — for partial
  // executions (schedule recording, bounded exploration). Unlike run(),
  // reaching the step budget is not an error.
  RunResult run_steps(Scheduler& sched, std::uint64_t steps);

  // Convenience: run only `pid` until it completes (the "solo execution"
  // used to define preferences in Lemma 6).
  RunResult run_solo(int pid, std::uint64_t max_steps = kUseOptions);

  // --- Accounting ----------------------------------------------------------

  const StepCounts& counts(int pid) const {
    APRAM_CHECK(pid >= 0 && pid < num_procs());
    return counts_[static_cast<std::size_t>(pid)];
  }
  StepCounts total_counts() const;
  std::uint64_t global_step() const { return global_step_; }

  const std::vector<AccessEvent>& trace() const { return trace_; }

  // --- Observability (apram::obs) ------------------------------------------

  // Applies Options to an already-built World. For infrastructure that
  // receives a World it did not construct (the fault certifier, replay
  // drivers); everything else should pass Options to the constructor.
  // Only non-default fields take effect: `trace` enables (never disables)
  // the access trace, `metrics`/`tracer` attach when non-null, and every
  // entry of `crashes` is scheduled. `max_steps` replaces the run budget.
  //
  // Metrics attachment mirrors every subsequent access into per-pid counters
  // `<prefix>.reads.p<pid>` / `<prefix>.writes.p<pid>` plus the totals
  // `<prefix>.reads` and `<prefix>.writes`; the registry must outlive the
  // World (or a detach_metrics call). A tracer gets one obs event per atomic
  // step (kRead/kWrite/kCas with the register id at the current global step)
  // plus kSpawn/kDone/kCrash lifecycle events, and needs a ring per process.
  void apply_options(const Options& options);

  void detach_metrics();
  obs::Tracer* tracer() const { return tracer_; }

  // The attached reads/writes counter pair for `pid`, as a region-delta
  // handle: `auto d = w.access_delta(0); ...; d.delta().reads`. Aborts
  // unless metrics are attached.
  obs::AccessDelta access_delta(int pid) const {
    return obs::AccessDelta(metrics_reads(pid), metrics_writes(pid));
  }

  // Attached per-pid counters, for obs::CounterDelta-style region
  // measurement. Aborts unless attach_metrics was called with
  // per_pid_metrics (the default).
  const obs::Counter& metrics_reads(int pid) const {
    APRAM_CHECK_MSG(!obs_reads_.empty(), "attach_metrics not called");
    APRAM_CHECK(pid >= 0 && pid < num_procs());
    return *obs_reads_[static_cast<std::size_t>(pid)];
  }
  const obs::Counter& metrics_writes(int pid) const {
    APRAM_CHECK_MSG(!obs_writes_.empty(), "attach_metrics not called");
    APRAM_CHECK(pid >= 0 && pid < num_procs());
    return *obs_writes_[static_cast<std::size_t>(pid)];
  }

 private:
  friend class Context;
  template <class T>
  friend struct ReadAwaiter;
  template <class T>
  friend struct WriteAwaiter;
  template <class T>
  friend struct CasAwaiter;

  // Process lifecycle. kPending exists only under lazy_spawn: the body is
  // installed and the pid is runnable, but no coroutine frame exists yet.
  enum class ProcState : std::uint8_t {
    kUnspawned = 0,
    kPending,   // spawned, frame not yet materialized (lazy_spawn)
    kLive,      // frame exists, suspended at an access point
    kDone,      // program completed; frame destroyed
    kCrashed,   // halted; frame destroyed
  };

  // Cold per-process storage: the installed body and its coroutine task.
  // fn is declared before task so the frame (task) is destroyed before the
  // closure its captures live in.
  struct Body {
    ProcessFn fn;
    ProcessTask task;
  };

  void attach_metrics_impl(obs::Registry& registry, const std::string& prefix,
                           bool per_pid);
  void set_tracer_impl(obs::Tracer* tracer);

  static constexpr std::uint64_t kNoScheduledCrash =
      ~static_cast<std::uint64_t>(0);

  ProcState state(int pid) const {
    APRAM_CHECK(pid >= 0 && pid < num_procs());
    return state_[static_cast<std::size_t>(pid)];
  }

  void spawn_impl(int pid, ProcessFn fn, bool allow_crashed);
  // Creates the frame of a kPending process and runs its free local prefix
  // up to the first access (or to completion / a scheduled crash).
  void materialize(int pid);
  // kLive → kDone: retire the frame, propagate body exceptions, emit kDone.
  void finish(int pid);

  // Called from access awaiters.
  void note_suspend(int pid, std::coroutine_handle<> h) {
    resume_[static_cast<std::size_t>(pid)] = h;
  }
  void count_access(int pid, int register_id, bool is_write);
  // A CAS is one atomic step, counted as one write (see obs::AccessCounts);
  // the trace records it as kCas with arg = success.
  void count_cas(int pid, int register_id, bool success);
  void check_write_allowed(int pid, const RegisterBase& reg) {
    APRAM_CHECK_MSG(
        reg.writer() == kAnyWriter || reg.writer() == pid,
        "single-writer register written by a foreign process");
  }

  void emit_lifecycle(int pid, obs::EventKind kind);
  void maybe_fire_scheduled_crash(int pid);
  std::uint64_t current_op(int pid) const {
    return spans_.empty() ? 0 : spans_[static_cast<std::size_t>(pid)].current();
  }

  // Operation-span markers, called through Context::op_begin etc. Local
  // bookkeeping at the current global step — zero model steps. No-ops
  // without a tracer, so the per-proc span stacks stay balanced whether or
  // not instrumentation is attached.
  void op_begin(int pid, obs::OpKind kind);
  void op_end(int pid, obs::OpKind kind);
  void op_phase(int pid, obs::Phase phase, int index);
  void op_help(int pid, int object);

  // Hot per-process state, structure-of-arrays (indexed by pid).
  std::vector<ProcState> state_;
  std::vector<StepCounts> counts_;
  std::vector<std::coroutine_handle<>> resume_;
  std::vector<std::uint64_t> crash_at_;   // see schedule_crash
  std::vector<std::uint32_t> epoch_;      // see spawn_epoch
  std::vector<Body> bodies_;              // cold: closures + frames
  std::vector<obs::SpanStack> spans_;     // sized only when a tracer attaches
  RunnableSet runnable_;                  // pids with state kPending/kLive

  std::vector<std::unique_ptr<RegisterBase>> registers_;
  std::uint64_t global_step_ = 0;
  std::uint64_t default_max_steps_ = kDefaultMaxSteps;
  bool trace_enabled_ = false;
  bool lazy_spawn_ = false;
  std::vector<AccessEvent> trace_;

  // obs hooks; null/empty when not attached. The simulator is single-
  // threaded, so counter updates go to shard 0 directly.
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* obs_reads_total_ = nullptr;
  obs::Counter* obs_writes_total_ = nullptr;
  std::vector<obs::Counter*> obs_reads_;
  std::vector<obs::Counter*> obs_writes_;
};

// ---------------------------------------------------------------------------
// Access awaiters (implementation of Context::read / Context::write)
// ---------------------------------------------------------------------------
//
// The access happens in await_resume, i.e. at the instant the scheduler
// grants the step — not when the process decides to make it. Everything the
// process computes between two accesses is local and free, matching the
// PRAM cost model where only shared-memory operations are counted.

template <class T>
struct ReadAwaiter {
  World* world;
  int pid;
  const Register<T>* reg;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    world->note_suspend(pid, h);
  }
  T await_resume() {
    world->count_access(pid, reg->id(), /*is_write=*/false);
    return reg->peek();
  }
};

template <class T>
struct WriteAwaiter {
  World* world;
  int pid;
  Register<T>* reg;
  T value;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    world->note_suspend(pid, h);
  }
  void await_resume() {
    world->check_write_allowed(pid, *reg);
    world->count_access(pid, reg->id(), /*is_write=*/true);
    reg->poke(std::move(value));
  }
};

// Compare-and-swap: at the granted step, atomically compare the register's
// value to `expected` (T's operator==) and install `desired` on a match.
// Returns whether the swap happened.
template <class T>
struct CasAwaiter {
  World* world;
  int pid;
  Register<T>* reg;
  T expected;
  T desired;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    world->note_suspend(pid, h);
  }
  bool await_resume() {
    world->check_write_allowed(pid, *reg);
    const bool ok = reg->peek() == expected;
    world->count_cas(pid, reg->id(), ok);
    if (ok) reg->poke(std::move(desired));
    return ok;
  }
};

template <class T>
auto Context::read(const Register<T>& reg) const {
  APRAM_CHECK(world_ != nullptr);
  return ReadAwaiter<T>{world_, pid_, &reg};
}

template <class T>
auto Context::write(Register<T>& reg, T value) const {
  APRAM_CHECK(world_ != nullptr);
  return WriteAwaiter<T>{world_, pid_, &reg, std::move(value)};
}

template <class T>
auto Context::cas(Register<T>& reg, T expected, T desired) const {
  APRAM_CHECK(world_ != nullptr);
  return CasAwaiter<T>{world_, pid_, &reg, std::move(expected),
                       std::move(desired)};
}

inline void Context::op_begin(obs::OpKind kind) const {
  APRAM_CHECK(world_ != nullptr);
  world_->op_begin(pid_, kind);
}

inline void Context::op_end(obs::OpKind kind) const {
  APRAM_CHECK(world_ != nullptr);
  world_->op_end(pid_, kind);
}

inline void Context::op_phase(obs::Phase phase, int index) const {
  APRAM_CHECK(world_ != nullptr);
  world_->op_phase(pid_, phase, index);
}

inline void Context::op_help(int object) const {
  APRAM_CHECK(world_ != nullptr);
  world_->op_help(pid_, object);
}

}  // namespace apram::sim
