#include "sim/explore.hpp"

#include "util/assert.hpp"

namespace apram::sim {

namespace {

struct Explorer {
  const ExecutionFactory& factory;
  const std::function<void(Execution&, const std::vector<int>&)>& check;
  std::uint64_t max_executions;
  ExploreStats stats;
  std::vector<int> prefix;

  void dfs() {
    // Rebuild the execution at this node (deterministic replay). Lenient
    // mode: DFS prefixes are extended speculatively and may legitimately
    // overrun a process's completion point.
    auto exec = replay(factory, prefix, ReplayMode::kLenient);
    World& w = exec->world();
    stats.max_depth = std::max(stats.max_depth,
                               static_cast<std::uint64_t>(prefix.size()));
    if (w.all_done()) {
      ++stats.executions;
      APRAM_CHECK_MSG(stats.executions <= max_executions,
                      "explore_all_schedules exceeded max_executions; "
                      "shrink the program under test");
      check(*exec, prefix);
      return;
    }
    for (int pid = 0; pid < w.num_procs(); ++pid) {
      if (!w.runnable(pid)) continue;
      prefix.push_back(pid);
      dfs();
      prefix.pop_back();
    }
  }
};

}  // namespace

ExploreStats explore_all_schedules(
    const ExecutionFactory& factory,
    const std::function<void(Execution&, const std::vector<int>&)>& check,
    std::uint64_t max_executions) {
  Explorer ex{factory, check, max_executions, {}, {}};
  ex.dfs();
  return ex.stats;
}

}  // namespace apram::sim
