// RunnableSet — the World's incrementally maintained set of runnable pids.
//
// Million-process Worlds need three queries the old per-pick scans cannot
// afford: "how many processes are runnable" (World::all_done / num_runnable,
// previously O(n) per call), "the first runnable pid at or after p"
// (RoundRobinScheduler's fairness order, previously an O(n) wrap-around
// scan), and "a uniformly random runnable pid" (RandomScheduler, previously
// an O(n) vector rebuild per pick). This structure maintains all three under
// O(1)-amortized add/remove:
//
//   * a dense swap-remove array (ids_/pos_) gives size() and uniform
//     sampling by index in O(1);
//   * a hierarchical bitmap (levels_) gives next_at_or_after(p) — the
//     SMALLEST runnable pid ≥ p, the exact order the old linear scan
//     produced — in O(log64 n) word operations, i.e. ≤ 4 for 16M processes.
//
// Determinism: contents are a pure function of the add/remove history (no
// hashing, no addresses), so replay and explore reconstruct identical
// schedules. The dense array's ORDER depends on that history too — uniform
// sampling over it is distribution-identical to sampling the sorted pid
// list, but a different seed→sequence mapping than the pre-SoA scheduler
// (see RandomScheduler's header note).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace apram::sim {

class RunnableSet {
 public:
  explicit RunnableSet(int n) : n_(n), pos_(static_cast<std::size_t>(n), -1) {
    APRAM_CHECK(n > 0);
    std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
    for (;;) {
      levels_.emplace_back(words, 0);
      if (words == 1) break;
      words = (words + 63) / 64;
    }
  }

  int size() const { return static_cast<int>(ids_.size()); }
  bool empty() const { return ids_.empty(); }

  bool contains(int pid) const {
    return pos_[static_cast<std::size_t>(pid)] >= 0;
  }

  // The i-th member in insertion/swap order (NOT pid order) — O(1), for
  // uniform sampling.
  int at(int i) const {
    APRAM_CHECK(i >= 0 && i < size());
    return ids_[static_cast<std::size_t>(i)];
  }

  void add(int pid) {
    APRAM_CHECK(pid >= 0 && pid < n_);
    APRAM_CHECK_MSG(!contains(pid), "RunnableSet::add of a present pid");
    pos_[static_cast<std::size_t>(pid)] = static_cast<int>(ids_.size());
    ids_.push_back(pid);
    std::size_t idx = static_cast<std::size_t>(pid);
    for (std::vector<std::uint64_t>& level : levels_) {
      std::uint64_t& word = level[idx >> 6];
      const std::uint64_t bit = 1ull << (idx & 63);
      if (word & bit) break;  // parents already set
      word |= bit;
      idx >>= 6;
    }
  }

  void remove(int pid) {
    APRAM_CHECK(pid >= 0 && pid < n_);
    int& p = pos_[static_cast<std::size_t>(pid)];
    APRAM_CHECK_MSG(p >= 0, "RunnableSet::remove of an absent pid");
    const int moved = ids_.back();
    ids_[static_cast<std::size_t>(p)] = moved;
    pos_[static_cast<std::size_t>(moved)] = p;
    ids_.pop_back();
    p = -1;
    std::size_t idx = static_cast<std::size_t>(pid);
    for (std::vector<std::uint64_t>& level : levels_) {
      std::uint64_t& word = level[idx >> 6];
      word &= ~(1ull << (idx & 63));
      if (word != 0) break;  // siblings keep the parent bit alive
      idx >>= 6;
    }
  }

  // Smallest member ≥ pid, or -1 if none — the successor query RoundRobin
  // fairness is defined by. Constant levels, so O(1) for any realistic n.
  int next_at_or_after(int pid) const {
    if (pid < 0) pid = 0;
    if (pid >= n_) return -1;
    std::size_t idx = static_cast<std::size_t>(pid);
    // Check the leaf word containing pid (bits ≥ pid), then climb looking
    // for a set bit strictly after the current subtree.
    {
      const std::uint64_t m = levels_[0][idx >> 6] & (~0ull << (idx & 63));
      if (m != 0) {
        return static_cast<int>(((idx >> 6) << 6) +
                                static_cast<std::size_t>(std::countr_zero(m)));
      }
    }
    std::size_t child = idx >> 6;  // word index at the level below
    for (std::size_t lvl = 1; lvl < levels_.size(); ++lvl) {
      const std::size_t bit = child & 63;
      const std::uint64_t after =
          bit == 63 ? 0 : (levels_[lvl][child >> 6] & (~0ull << (bit + 1)));
      if (after != 0) {
        // Descend along the leftmost set path back to the leaf level.
        std::size_t i = ((child >> 6) << 6) +
                        static_cast<std::size_t>(std::countr_zero(after));
        for (std::size_t down = lvl; down > 0; --down) {
          const std::uint64_t w = levels_[down - 1][i];
          APRAM_CHECK(w != 0);
          i = (i << 6) + static_cast<std::size_t>(std::countr_zero(w));
        }
        return static_cast<int>(i);
      }
      child >>= 6;
    }
    return -1;
  }

 private:
  int n_;
  std::vector<int> ids_;   // dense members, swap-remove order
  std::vector<int> pos_;   // pid → index in ids_, -1 when absent
  // levels_[0]: one bit per pid; levels_[k+1]: one bit per 64-word block of
  // levels_[k] (set iff any bit below is set). Last level is a single word.
  std::vector<std::vector<std::uint64_t>> levels_;
};

}  // namespace apram::sim
