// Shared atomic registers of the simulated asynchronous PRAM.
//
// A Register<T> is an atomic shared-memory cell. Processes access it only
// through a Context (their capability object), and every access —
// `co_await ctx.read(reg)` or `co_await ctx.write(reg, v)` — is exactly one
// atomic step of the model: the process suspends, the scheduler grants it the
// next step, and the access takes effect at the moment of resumption.
//
// Registers may optionally be declared single-writer (the common case in the
// paper: "multi-reader, single-writer registers in which process P writes the
// P-th array element"); writes by any other process abort the simulation.
#pragma once

#include <coroutine>
#include <cstdint>
#include <string>
#include <utility>

#include "obs/span.hpp"
#include "sim/coro.hpp"
#include "util/assert.hpp"

namespace apram::sim {

class World;
class Context;

inline constexpr int kAnyWriter = -1;

// Type-erased base so the World can own heterogeneous registers and give
// them stable identities for tracing.
class RegisterBase {
 public:
  RegisterBase(std::string name, int id, int writer)
      : name_(std::move(name)), id_(id), writer_(writer) {}
  virtual ~RegisterBase() = default;
  RegisterBase(const RegisterBase&) = delete;
  RegisterBase& operator=(const RegisterBase&) = delete;

  const std::string& name() const { return name_; }
  int id() const { return id_; }
  int writer() const { return writer_; }

 private:
  std::string name_;
  int id_;
  int writer_;  // pid of the unique writer, or kAnyWriter
};

template <class T>
class Register final : public RegisterBase {
 public:
  Register(std::string name, int id, int writer, T initial)
      : RegisterBase(std::move(name), id, writer),
        value_(std::move(initial)) {}

  // Raw, step-free access. Only for test setup/inspection and for the World;
  // simulated processes must go through Context.
  const T& peek() const { return value_; }
  void poke(T v) { value_ = std::move(v); }

 private:
  friend class Context;
  T value_;
};

// Context: handed to each process body; the only way simulated code touches
// shared memory. Copyable by value but only valid while its World lives.
class Context {
 public:
  Context() = default;
  Context(World* world, int pid) : world_(world), pid_(pid) {}

  int pid() const { return pid_; }
  World& world() const { return *world_; }

  template <class T>
  auto read(const Register<T>& reg) const;

  template <class T>
  auto write(Register<T>& reg, T value) const;

  // Atomic compare-and-swap: one step of the extended model (counted as one
  // write; traced as obs::EventKind::kCas). The comparison uses T's
  // operator==, which must identify distinct writes for ABA-freedom — see
  // farray/farray.hpp's Stamped<T> for the standard recipe.
  template <class T>
  auto cas(Register<T>& reg, T expected, T desired) const;

  // Operation-span markers (obs/span.hpp): local bookkeeping, zero model
  // steps, no suspension. With no tracer attached they are no-ops, so
  // algorithms call them unconditionally. Explicit begin/end (not RAII) so a
  // crashed coroutine frame leaves its span open in the trace — which is the
  // truth of that execution. Defined in sim/world.hpp.
  void op_begin(obs::OpKind kind) const;
  void op_end(obs::OpKind kind) const;
  void op_phase(obs::Phase phase, int index = -1) const;
  void op_help(int object) const;

 private:
  World* world_ = nullptr;
  int pid_ = -1;
};

}  // namespace apram::sim
