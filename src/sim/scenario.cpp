#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

namespace apram::sim {

ZipfSampler::ZipfSampler(int n, double s) {
  APRAM_CHECK(n > 0);
  APRAM_CHECK(s >= 0.0);
  cdf_.resize(static_cast<std::size_t>(n));
  double acc = 0.0;
  for (int k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[static_cast<std::size_t>(k)] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding at the top end
}

int ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

namespace {

constexpr std::uint64_t kNever = ~static_cast<std::uint64_t>(0);

// Shared read-only scenario state, captured by every process body. Owned by
// shared_ptr because lazily spawned bodies can outlive the run_scenario
// call that created them.
struct Shared {
  Shared(int num_regs, double zipf_s, int ops)
      : zipf(num_regs, zipf_s), ops_per_process(ops) {}

  ZipfSampler zipf;
  int ops_per_process;
  std::vector<Register<std::uint64_t>*> regs;
};

World::ProcessFn make_zipf_writer(std::shared_ptr<const Shared> sh,
                                  std::uint64_t body_seed) {
  return [sh = std::move(sh), body_seed](Context ctx) -> ProcessTask {
    Rng rng(body_seed);
    for (int i = 0; i < sh->ops_per_process; ++i) {
      Register<std::uint64_t>& reg =
          *sh->regs[static_cast<std::size_t>(sh->zipf.sample(rng))];
      ctx.op_begin(obs::OpKind::kScenarioOp);
      co_await ctx.write(reg, rng.next());
      ctx.op_end(obs::OpKind::kScenarioOp);
    }
  };
}

std::uint64_t body_seed(std::uint64_t scenario_seed, std::uint64_t nonce) {
  std::uint64_t s = scenario_seed + 0x9e3779b97f4a7c15ULL * (nonce + 1);
  return splitmix64(s);
}

}  // namespace

World::Options scenario_world_options(const ScenarioOptions& opts) {
  World::Options w;
  w.lazy_spawn = true;
  w.per_pid_metrics = false;
  w.max_steps = std::max<std::uint64_t>(World::kDefaultMaxSteps,
                                        opts.total_steps + 1);
  return w;
}

ScenarioResult run_scenario(World& w, Scheduler& sched,
                            const ScenarioOptions& opts) {
  APRAM_CHECK(opts.num_procs > 0);
  APRAM_CHECK_MSG(w.num_procs() >= opts.num_procs,
                  "scenario needs a World with at least num_procs processes");
  APRAM_CHECK(opts.ops_per_process >= 0);

  auto sh = std::make_shared<Shared>(opts.num_registers, opts.zipf_s,
                                     opts.ops_per_process);
  sh->regs.reserve(static_cast<std::size_t>(opts.num_registers));
  for (int i = 0; i < opts.num_registers; ++i) {
    sh->regs.push_back(&w.make_register<std::uint64_t>(
        "s.reg" + std::to_string(i), 0, kAnyWriter));
  }

  // All driver-side randomness (churn victims) comes from this stream; the
  // per-body streams are keyed by an arrival nonce. Both are functions of
  // opts.seed and the scheduler's pick sequence alone, which is what makes
  // a recorded scenario replayable.
  Rng drng(body_seed(opts.seed, 0xc4a5));
  std::uint64_t nonce = 0;
  int arrived = 0;
  ScenarioResult r;

  const auto arrive = [&](int k) {
    for (; k > 0 && arrived < opts.num_procs; --k) {
      w.spawn(arrived, make_zipf_writer(sh, body_seed(opts.seed, ++nonce)));
      ++arrived;
      ++r.arrived;
    }
  };
  const auto churn = [&] {
    for (int i = 0; i < opts.churn_crashes && w.num_runnable() > 0; ++i) {
      const int victim = w.runnable_at(static_cast<int>(
          drng.below(static_cast<std::uint64_t>(w.num_runnable()))));
      w.crash(victim);
      ++r.crashes;
      if (opts.recover) {
        w.revive(victim, make_zipf_writer(sh, body_seed(opts.seed, ++nonce)));
        ++r.revived;
      }
    }
  };

  const bool bursty = opts.burst_every > 0 && opts.burst_size > 0;
  arrive(bursty ? opts.burst_size : opts.num_procs);
  std::uint64_t next_burst = bursty && arrived < opts.num_procs
                                 ? opts.burst_every
                                 : kNever;
  const bool churny = opts.churn_every > 0 && opts.churn_crashes > 0;
  std::uint64_t next_churn = churny ? opts.churn_every : kNever;

  // The scenario clock counts grants while work exists and fast-forwards to
  // the next arrival/churn boundary when the World runs dry — arrivals are
  // open-loop, they do not wait for the previous burst to finish.
  std::uint64_t clock = 0;
  while (clock < opts.total_steps) {
    const std::uint64_t until = std::min(
        {opts.total_steps, next_burst, next_churn});
    if (!w.all_done() && until > clock) {
      r.grants += w.run_steps(sched, until - clock).steps_taken;
    }
    clock = until;
    bool boundary = false;
    if (clock == next_burst) {
      arrive(opts.burst_size);
      next_burst =
          arrived < opts.num_procs ? next_burst + opts.burst_every : kNever;
      boundary = true;
    }
    if (clock == next_churn) {
      churn();
      next_churn += opts.churn_every;
      boundary = true;
    }
    // Nothing runnable, nothing scheduled to arrive: the scenario is over.
    if (!boundary && w.all_done()) break;
  }

  for (int pid = 0; pid < opts.num_procs; ++pid) {
    if (w.done(pid)) ++r.completed;
  }
  r.all_done = w.all_done();
  r.accesses = w.total_counts();
  return r;
}

ScenarioResult run_scenario_recorded(const ScenarioOptions& opts,
                                     std::uint64_t sched_seed,
                                     double stickiness,
                                     std::vector<int>* picks_out) {
  World w(opts.num_procs, scenario_world_options(opts));
  RandomScheduler rnd(sched_seed, stickiness);
  RecordingScheduler rec(rnd);
  ScenarioResult r = run_scenario(w, rec, opts);
  if (picks_out != nullptr) *picks_out = rec.picks();
  return r;
}

ScenarioResult replay_scenario(const ScenarioOptions& opts,
                               const std::vector<int>& picks) {
  World w(opts.num_procs, scenario_world_options(opts));
  FixedScheduler fixed(picks, FixedScheduler::Fallback::kStop,
                       FixedScheduler::Divergence::kFail);
  return run_scenario(w, fixed, opts);
}

}  // namespace apram::sim
