#include "lincheck/checker.hpp"

// Header-only module; anchor translation unit. (Instantiations live in the
// tests to keep the module's dependencies minimal.)
