// Wing–Gong style linearizability checker.
//
// Searches for a legal sequential witness: a total order of the history's
// operations that (a) extends the real-time precedence order and (b) replays
// through the sequential specification with every completed operation
// producing exactly its recorded response. Pending operations may either
// take effect (with whatever response the spec gives) or be dropped.
//
// The search is exponential in the worst case; memoization on (done-mask,
// state) keeps it tractable for the history sizes the tests generate
// (≤ ~30 operations). Histories must have at most 64 operations.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "lincheck/history.hpp"
#include "obs/flight.hpp"
#include "util/assert.hpp"

namespace apram {

template <SequentialSpec S>
class LinearizabilityChecker {
 public:
  explicit LinearizabilityChecker(std::vector<RecordedOp<S>> history)
      : ops_(std::move(history)) {
    APRAM_CHECK_MSG(ops_.size() <= 64, "history too large for bitmask search");
  }

  // True iff the history is linearizable with respect to S. Idempotent:
  // repeated calls return the same verdict and leave the same witness, with
  // no state leaking from one search into the next.
  bool check() {
    memo_.clear();
    witness_.clear();
    const bool ok = search(0, S::initial());
    if (!ok) {
      // Guarantee the witness() postcondition even if a future edit to
      // search() ever pushes onto a failing path: a failed check must never
      // expose a partial (or stale) linearization.
      witness_.clear();
      // A non-linearizable history is a correctness emergency: freeze the
      // run's trace + metrics while they still exist (no-op unless a flight
      // recorder is installed — obs::set_panic_recorder).
      obs::panic_dump("linearizability check failed");
      return false;
    }
    // The witness is accumulated on the unwind, deepest-first; reverse it
    // into linearization order. Dropped pending ops do not appear.
    std::reverse(witness_.begin(), witness_.end());
    return true;
  }

  // A witness order (indices into the history, excluding any dropped pending
  // operations). Empty unless the most recent check() returned true.
  const std::vector<std::size_t>& witness() const { return witness_; }

 private:
  using Mask = std::uint64_t;

  bool all_done(Mask done) const {
    return done == ((ops_.size() == 64)
                        ? ~Mask{0}
                        : ((Mask{1} << ops_.size()) - 1));
  }

  // Op i may linearize next if every operation that precedes it in real
  // time has already been placed.
  bool ready(std::size_t i, Mask done) const {
    for (std::size_t j = 0; j < ops_.size(); ++j) {
      if (j == i || (done >> j) & 1) continue;
      if (precedes<S>(ops_[j], ops_[i])) return false;
    }
    return true;
  }

  bool search(Mask done, const typename S::State& state) {
    if (all_done(done)) return true;
    const auto key = std::make_pair(done, state);
    auto [it, inserted] = memo_.emplace(key, false);
    if (!inserted) return false;  // visited and failed (or in progress)

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if ((done >> i) & 1) continue;
      if (!ready(i, done)) continue;
      const auto [next_state, resp] = S::apply(state, ops_[i].inv);
      if (ops_[i].pending()) {
        // Option A: the pending op took effect (any response is fine).
        if (search(done | (Mask{1} << i), next_state)) {
          witness_.push_back(i);
          return true;
        }
        // Option B: the pending op never took effect.
        if (search(done | (Mask{1} << i), state)) {
          return true;
        }
      } else if (resp == ops_[i].resp) {
        if (search(done | (Mask{1} << i), next_state)) {
          witness_.push_back(i);
          return true;
        }
      }
    }
    return false;
  }

  std::vector<RecordedOp<S>> ops_;
  std::map<std::pair<Mask, typename S::State>, bool> memo_;
  std::vector<std::size_t> witness_;
};

template <SequentialSpec S>
bool is_linearizable(std::vector<RecordedOp<S>> history) {
  LinearizabilityChecker<S> checker(std::move(history));
  return checker.check();
}

}  // namespace apram
