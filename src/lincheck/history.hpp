// Concurrent histories for linearizability checking (§3.2).
//
// A RecordedOp is one completed (or pending) operation: who invoked what,
// what came back, and the global-time window [invoke_time, respond_time) the
// operation occupied. The real-time precedence relation is derived from the
// windows: p precedes q iff p's response time is at most q's invocation
// time. Pending operations (no response — e.g. the caller crashed) have
// respond_time = kPending and may, per the definition of linearizability, be
// completed with any legal response or dropped entirely.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "algebra/spec.hpp"

namespace apram {

inline constexpr std::uint64_t kPending =
    std::numeric_limits<std::uint64_t>::max();

template <SequentialSpec S>
struct RecordedOp {
  int pid = -1;
  typename S::Invocation inv{};
  typename S::Response resp{};
  std::uint64_t invoke_time = 0;
  std::uint64_t respond_time = kPending;

  bool pending() const { return respond_time == kPending; }
};

// Does a precede b in real time?
template <SequentialSpec S>
bool precedes(const RecordedOp<S>& a, const RecordedOp<S>& b) {
  return !a.pending() && a.respond_time <= b.invoke_time;
}

// A recording helper for simulator tests: wraps an object call with
// timestamps taken from the world's global step counter.
template <SequentialSpec S>
class HistoryRecorder {
 public:
  // Marks an invocation; returns a token to close with.
  std::size_t begin(int pid, typename S::Invocation inv,
                    std::uint64_t now) {
    RecordedOp<S> op;
    op.pid = pid;
    op.inv = std::move(inv);
    op.invoke_time = now;
    ops_.push_back(std::move(op));
    return ops_.size() - 1;
  }

  void end(std::size_t token, typename S::Response resp, std::uint64_t now) {
    ops_[token].resp = std::move(resp);
    ops_[token].respond_time = now;
  }

  const std::vector<RecordedOp<S>>& ops() const { return ops_; }
  std::vector<RecordedOp<S>>& mutable_ops() { return ops_; }

 private:
  std::vector<RecordedOp<S>> ops_;
};

}  // namespace apram
