#include "lincheck/history.hpp"

// Header-only module; anchor translation unit.
