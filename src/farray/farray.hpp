// apram::farray — the reusable stamped-CAS aggregation tree ("f-array").
//
// Generalizes the tree that used to live inside snapshot::TreeScan into a
// first-class primitive, following Obryk's Write-and-f-array (1407.6153) and
// Jayanti's f-arrays: process p owns leaf p of a perfect binary tree whose
// internal nodes cache f over their subtree's leaves,
//
//   write(p, v):  set p's leaf (1 write), then walk the root path refreshing
//                 each node to f(children) — ≤ 1 + 8·⌈log2 n⌉ accesses.
//   read_f():     read the root — 1 access, independent of n.
//
// where f is an arbitrary *associative* combine with a unit (the Combiner
// concept in algebra/combiner.hpp) — lattice join is just one instance.
//
// Layout (heap indexing over m = bit_ceil(n) leaf slots): internal nodes are
// 1..m-1 with children of i at 2i and 2i+1; leaf p sits at slot m+p; child
// slots ≥ m beyond n-1 are padding and fold as the identity for free. n == 1
// has no internal nodes — the root IS the single leaf. Leaves fold strictly
// left-to-right, so non-commutative combines see operands in pid order.
//
// Registers. Leaves are single-writer registers. Internal nodes are
// multi-writer CAS registers holding Stamped<T>: a refresh reads the node
// (cur), reads both children, and CASes {cur.seq+1, f(children)} over cur.
// Stamped equality compares seq only; every successful CAS installs a fresh
// seq, so value-equality identifies writes and the CAS is ABA-free (what
// CASValueRegister's pointer swap and the simulator's operator== CAS both
// require).
//
// Double-refresh helping lemma (why TWO attempts per node suffice, for ANY
// refresher — no lattice order needed): suppose both of P's CASes at node u
// fail. Each failure means a rival installed in the window [P's node read,
// P's CAS]. Take W2 = the install that beat P's second CAS. The value W2's
// node read saw was installed no earlier than W1 (the install that failed
// P's first CAS, itself after P's first node read), so W2's child reads
// happen after P's first node read — and hence after P completed the child
// level. W2's install is therefore computed from child values that already
// contain P's contribution, and it lands before P's second CAS returns.
// Inductively the root covers the contribution by the time write() returns.
//
// What survives the generalization and what does not: the helping lemma
// above is purely temporal — it never compares values, so it holds verbatim
// for arbitrary f. What is lost without idempotence + order is node
// MONOTONICITY: for a semilattice, successive root values form a chain (any
// two reads comparable — snapshot::TreeScan's Lemma 32 face); for a general
// combine, a root read is a one-access f-summary whose operands are each
// leaf's current-or-recent value, with the completed-write guarantee above.
// Clients that need a total order over *operations* (objects/polylog_queue)
// get it by making the node value itself an order: see NodeRefresherFor.
//
// Step counts (exact for n a power of two; upper bounds otherwise, since
// padding-leaf folds are free and h = ⌈log2 n⌉):
//
//   write, solo:       1 + 4h   (per level: node read + 2 child reads + CAS)
//   write, contended:  ≤ 1 + 8h (each level retried once)
//   read_f:            1        (independent of n)
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "algebra/combiner.hpp"
#include "api/backend.hpp"
#include "obs/contention.hpp"
#include "obs/span.hpp"
#include "util/assert.hpp"

namespace apram::farray {

// A value plus a write-identifying stamp. operator== compares ONLY seq: two
// Stamped values are "equal" iff they are the same write, which is exactly
// the identity a value-compared CAS needs to be ABA-free.
template <class T>
struct Stamped {
  std::uint64_t seq = 0;
  T v{};

  friend bool operator==(const Stamped& a, const Stamped& b) {
    return a.seq == b.seq;
  }
};

// Tree height h = log2(bit_ceil(n)) — constexpr so tests can assert against
// closed forms.
constexpr int farray_height(int num_procs) {
  int m = 1;
  int h = 0;
  while (m < num_procs) {
    m *= 2;
    ++h;
  }
  return h;
}

// Exact when n is a power of two; an upper bound otherwise (padding-leaf
// folds cost nothing).
constexpr std::uint64_t farray_write_solo_accesses(int num_procs) {
  return 1 + 4ull * static_cast<std::uint64_t>(farray_height(num_procs));
}

// Worst case under contention: every level needs both refresh attempts.
constexpr std::uint64_t farray_write_max_accesses(int num_procs) {
  return 1 + 8ull * static_cast<std::uint64_t>(farray_height(num_procs));
}

constexpr std::uint64_t farray_read_accesses() { return 1; }

// The node-recompute hook: given the node's current value and the two child
// values just read, produce the value to install. Pure combiners recompute
// f(left, right) from scratch and ignore `cur`; order-accumulating clients
// (the polylog queue's operation log) EXTEND `cur` with what the children
// added. The helping lemma holds for any refresher — it argues about when
// the child reads happened, never about the value computed from them.
template <class R, class T>
concept NodeRefresherFor = requires(const T& cur, T l, T r) {
  { R::identity() } -> std::convertible_to<T>;
  { R::refresh(cur, std::move(l), std::move(r)) } -> std::convertible_to<T>;
};

// Refresher of a pure combiner: nodes hold f(subtree), recomputed from the
// children on every install. Missing (padding) children fold as identity on
// the correct side, preserving left-to-right operand order.
template <class T, class F>
  requires CombinerFor<F, T>
struct CombineRefresh {
  static T identity() { return F::identity(); }
  static T refresh(const T& /*cur*/, T l, T r) {
    return F::combine(std::move(l), std::move(r));
  }
};

// The tree machinery, parameterized over the refresher. Most users want the
// FArray alias below; objects/polylog_queue.hpp instantiates this directly
// with its log-appending refresher.
//
// Span discipline: write()/read_f() emit NO op spans of their own — the
// client owns the op kind (kTreeUpdate, kEnqueue, …) and opens the span
// around the call; the tree contributes the per-level Phase::kRefresh marks
// and the kHelp event when both CASes of a level lose.
template <class B, class T, class R>
  requires NodeRefresherFor<R, T> && api::BackendFor<B, T> &&
           api::CasBackendFor<B, Stamped<T>>
class FArrayTree {
 public:
  using Value = T;
  using Node = Stamped<T>;
  using Ctx = typename B::Ctx;
  template <class U>
  using Coro = typename B::template Coro<U>;

  FArrayTree(typename B::Mem& mem, int num_procs) : n_(num_procs) {
    APRAM_CHECK(num_procs >= 1);
    m_ = 1;
    while (m_ < n_) m_ *= 2;
    leaves_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      leaves_.push_back(&mem.template make<Value>(
          "leaf[" + std::to_string(p) + "]", R::identity(), /*writer=*/p));
    }
    nodes_.assign(static_cast<std::size_t>(m_), nullptr);
    for (int i = 1; i < m_; ++i) {
      nodes_[static_cast<std::size_t>(i)] = &mem.template make_cas<Node>(
          "node[" + std::to_string(i) + "]", Node{0, R::identity()});
    }
    // Contention cells mirror the heap indexing (cell u = node u; cell 0
    // unused). Node u sits at depth ⌊log2 u⌋, so its refresh level — the
    // loop counter in refresh_path — is height−1−depth (root = top level).
    contention_ = obs::NodeContention(m_, n_);
    const int h = height();
    for (int i = 1; i < m_; ++i) {
      int depth = 0;
      for (int v = i; v > 1; v /= 2) ++depth;
      contention_.set_level(i, h - 1 - depth);
    }
  }

  int num_procs() const { return n_; }
  int height() const { return farray_height(n_); }

  // Sets the caller's leaf to v and propagates: on return the root value
  // covers this write (see the helping lemma above). ≤ 1 + 8·height()
  // accesses; the caller must be inside its own op span.
  //
  // Style note: every co_await sits alone in its own statement (GCC 12
  // wrong-code workaround, as in lattice_scan.hpp).
  Coro<void> write(Ctx ctx, Value v) {
    const int p = ctx.pid();
    co_await ctx.write(leaf(p), std::move(v));
    co_await refresh_path(ctx, p);
  }

  // Walks p's root path, double-refreshing each node. Exposed for clients
  // whose leaf write needs custom packaging but whose propagation is
  // standard (the queue appends a log entry, then calls this).
  Coro<void> refresh_path(Ctx ctx, int p) {
    int u = (m_ + p) / 2;  // 0 when m_ == 1: the leaf is the root
    int level = 0;
    while (u >= 1) {
      ctx.op_phase(obs::Phase::kRefresh, level);
      bool installed = false;
      int installed_attempt = -1;
      for (int attempt = 0; attempt < 2; ++attempt) {
        Node cur = co_await ctx.read(node(u));
        const int lc = 2 * u;
        const int rc = 2 * u + 1;
        Value lv = R::identity();
        Value rv = R::identity();
        if (lc >= m_) {
          if (lc - m_ < n_) {
            Value read_l = co_await ctx.read(leaf(lc - m_));
            lv = std::move(read_l);
          }
        } else {
          Node ls = co_await ctx.read(node(lc));
          lv = std::move(ls.v);
        }
        if (rc >= m_) {
          if (rc - m_ < n_) {
            Value read_r = co_await ctx.read(leaf(rc - m_));
            rv = std::move(read_r);
          }
        } else {
          Node rs = co_await ctx.read(node(rc));
          rv = std::move(rs.v);
        }
        Node next{cur.seq + 1, R::refresh(cur.v, std::move(lv), std::move(rv))};
        bool ok = co_await ctx.cas(node(u), std::move(cur), std::move(next));
        if (ok) {
          installed = true;
          installed_attempt = attempt;
          break;
        }
      }
      // Both CASes lost: the double-refresh lemma says a rival's install
      // covered this contribution — the op was helped at node u.
      if (!installed) ctx.op_help(u);
      // Contention telemetry: process-local relaxed counters, zero model
      // registers touched (compiled out under APRAM_OBS_CONTENTION=OFF).
      contention_.on_level_walk(
          p, u,
          !installed ? obs::WalkOutcome::kHelped
                     : (installed_attempt == 0
                            ? obs::WalkOutcome::kFirstRefresh
                            : obs::WalkOutcome::kSecondRefresh));
      u /= 2;
      ++level;
    }
  }

  // f over all leaves as of some recent instant covering every completed
  // write. One register access.
  Coro<Value> read_f(Ctx ctx) {
    if (m_ == 1) {
      Value v = co_await ctx.read(leaf(0));
      co_return v;
    }
    Node root = co_await ctx.read(node(1));
    co_return std::move(root.v);
  }

  // Test/debug access.
  const typename B::template Reg<Value>& leaf_at(int p) const {
    return leaf(p);
  }
  const typename B::template CasReg<Node>& node_at(int i) const {
    return node(i);
  }

  // Per-node contention telemetry (obs/contention.hpp); cell u = heap node
  // u. Exact at quiescence; empty/no-op when compiled out.
  const obs::NodeContention& contention() const { return contention_; }
  void export_contention_gauges(obs::Registry& registry,
                                const std::string& prefix) const {
    contention_.export_gauges(registry, prefix);
  }

 private:
  typename B::template Reg<Value>& leaf(int p) const {
    APRAM_CHECK(p >= 0 && p < n_);
    return *leaves_[static_cast<std::size_t>(p)];
  }
  typename B::template CasReg<Node>& node(int i) const {
    APRAM_CHECK(i >= 1 && i < m_);
    return *nodes_[static_cast<std::size_t>(i)];
  }

  int n_;
  int m_;  // bit_ceil(n): number of leaf slots of the perfect tree
  std::vector<typename B::template Reg<Value>*> leaves_;   // [n]
  std::vector<typename B::template CasReg<Node>*> nodes_;  // [m], 0 unused
  mutable obs::NodeContention contention_;  // cell u = node u, 0 unused
};

// The public f-array: FArray<B, T, F> maintains f(leaf_0, …, leaf_{n-1})
// for a Combiner F over T (write = set own leaf + propagate; read_f = one
// root read).
template <class B, class T, class F>
  requires CombinerFor<F, T>
using FArray = FArrayTree<B, T, CombineRefresh<T, F>>;

}  // namespace apram::farray
