// apram::fault — nemesis-style fault campaigns for the simulator.
//
// Wait-freedom quantifies over EVERY adversary, including ones that crash,
// starve, and burst-schedule processes. A Nemesis is a scheduler combinator
// that layers a seeded FaultPlan over any inner scheduler:
//
//   * crashes — victim-keyed, like CrashingScheduler: {pid, at_access}
//     halts pid before its (at_access+1)-th own access, wherever the inner
//     scheduler put that access in the interleaving.
//   * stalls  — starvation windows [from_step, from_step+duration) in
//     global steps: while active, picks of the stalled pid are deflected to
//     some other runnable process. A stall never deadlocks the run: if
//     every runnable process is stalled, the stall yields (an adversary
//     that blocks everyone forever just ends the execution, which proves
//     nothing about step bounds).
//   * bursts  — windows in which one pid is scheduled exclusively,
//     modelling the bursty interleavings that break non-wait-free code.
//
// A Nemesis is a pure function of (inner scheduler, plan): runs are exactly
// reproducible from the campaign seed, and a RecordingScheduler wrapped
// around it captures the full interleaving as a replay artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace apram::fault {

struct CrashFault {
  int pid = 0;
  std::uint64_t at_access = 0;  // victim's own access count, 0-based
};

struct StallFault {
  int pid = 0;
  std::uint64_t from_step = 0;  // global step, inclusive
  std::uint64_t duration = 1;
};

struct BurstFault {
  int pid = 0;
  std::uint64_t from_step = 0;  // global step, inclusive
  std::uint64_t duration = 1;
};

struct FaultPlan {
  std::vector<CrashFault> crashes;
  std::vector<StallFault> stalls;
  std::vector<BurstFault> bursts;

  bool empty() const {
    return crashes.empty() && stalls.empty() && bursts.empty();
  }
  // One line, human-readable — written into replay-artifact comments.
  std::string describe() const;
};

// Knobs for random_plan(). Horizons are in the relevant unit: crash
// triggers count victim accesses, stall/burst windows count global steps.
struct PlanOptions {
  int max_crashes = 1;
  int max_stalls = 2;
  int max_bursts = 2;
  std::uint64_t crash_horizon = 64;  // at_access drawn from [0, crash_horizon)
  std::uint64_t step_horizon = 256;  // windows start in [0, step_horizon)
  std::uint64_t max_window = 64;     // window duration in [1, max_window]
  std::vector<int> never_crash;      // pids exempt from crash faults
};

// Draws a plan from `rng`. At most num_procs-1 distinct pids are crashed, so
// at least one process always survives to be measured.
FaultPlan random_plan(Rng& rng, int num_procs, const PlanOptions& opts);

class Nemesis final : public sim::Scheduler {
 public:
  Nemesis(sim::Scheduler& inner, FaultPlan plan);

  int pick(sim::World& w) override;

  // Campaign accounting (summed by the certifier).
  std::uint64_t crashes_fired() const { return crashes_fired_; }
  std::uint64_t stall_deflections() const { return stall_deflections_; }
  std::uint64_t burst_grants() const { return burst_grants_; }

 private:
  bool stalled(int pid, std::uint64_t step) const;

  sim::Scheduler* inner_;
  FaultPlan plan_;
  std::vector<CrashFault> pending_crashes_;
  std::uint64_t crashes_fired_ = 0;
  std::uint64_t stall_deflections_ = 0;
  std::uint64_t burst_grants_ = 0;
  int rr_cursor_ = 0;  // deflection fallback position
};

}  // namespace apram::fault
