#include "fault/rt_inject.hpp"

#include <chrono>
#include <thread>

#include "obs/rt_probe.hpp"
#include "util/assert.hpp"

namespace apram::fault {

RtInjector::RtInjector(const RtInjectOptions& opts)
    : opts_(opts),
      per_thread_(new PerThread[static_cast<std::size_t>(opts.num_pids)]) {
  APRAM_CHECK(opts_.num_pids >= 1);
  APRAM_CHECK(opts_.sleep_max_us >= 1);
  std::uint64_t sm = opts_.seed;
  for (int pid = 0; pid < opts_.num_pids; ++pid) {
    per_thread_[static_cast<std::size_t>(pid)].rng.reseed(splitmix64(sm));
  }
}

void RtInjector::on_access() {
  const int pid = obs::thread_pid();
  if (pid < 0 || pid >= opts_.num_pids) return;
  PerThread& me = per_thread_[static_cast<std::size_t>(pid)];
  const std::uint64_t k =
      me.accesses.fetch_add(1, std::memory_order_relaxed) + 1;

  // Hard stall: park before performing the (after+1)-th access. The CAS on
  // stall_armed_ admits exactly one parking, even if the victim races
  // through several accesses past the threshold.
  if (stall_armed_.load(std::memory_order_acquire) &&
      stall_point_.load(std::memory_order_relaxed) == StallPoint::kAccess &&
      stall_pid_.load(std::memory_order_relaxed) == pid &&
      k > stall_after_.load(std::memory_order_relaxed)) {
    bool expected = true;
    if (stall_armed_.compare_exchange_strong(expected, false,
                                             std::memory_order_acq_rel)) {
      stall_engaged_.store(true, std::memory_order_release);
      while (!stall_release_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
  }

  if (opts_.sleep_prob > 0.0 && me.rng.chance(opts_.sleep_prob)) {
    sleeps_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(
        1 + me.rng.below(static_cast<std::uint64_t>(opts_.sleep_max_us))));
  } else if (opts_.yield_prob > 0.0 && me.rng.chance(opts_.yield_prob)) {
    yields_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
}

void RtInjector::on_hold() {
  // The hold window exists only in the bounded registers' read path; this
  // hook fires with the caller's version acquired and not yet dereferenced.
  // It intentionally skips the access counter and the probabilistic
  // perturbation — on_access at the top of the same operation already did
  // both — so it is free for everyone but an armed kHold victim.
  if (!stall_armed_.load(std::memory_order_acquire)) return;
  if (stall_point_.load(std::memory_order_relaxed) != StallPoint::kHold) {
    return;
  }
  const int pid = obs::thread_pid();
  if (pid < 0 || pid >= opts_.num_pids ||
      stall_pid_.load(std::memory_order_relaxed) != pid) {
    return;
  }
  const std::uint64_t k = per_thread_[static_cast<std::size_t>(pid)]
                              .accesses.load(std::memory_order_relaxed);
  if (k <= stall_after_.load(std::memory_order_relaxed)) return;
  bool expected = true;
  if (stall_armed_.compare_exchange_strong(expected, false,
                                           std::memory_order_acq_rel)) {
    stall_engaged_.store(true, std::memory_order_release);
    while (!stall_release_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
}

void RtInjector::arm_stall(int pid, std::uint64_t after, StallPoint point) {
  APRAM_CHECK(pid >= 0 && pid < opts_.num_pids);
  APRAM_CHECK_MSG(!stall_armed_.load(std::memory_order_acquire) &&
                      !stall_engaged_.load(std::memory_order_acquire),
                  "a stall is already armed or engaged");
  stall_release_.store(false, std::memory_order_relaxed);
  stall_engaged_.store(false, std::memory_order_relaxed);
  stall_pid_.store(pid, std::memory_order_relaxed);
  stall_after_.store(after, std::memory_order_relaxed);
  stall_point_.store(point, std::memory_order_relaxed);
  stall_armed_.store(true, std::memory_order_release);
}

void RtInjector::release_stall() {
  // Disarm first so a victim that has not parked yet cannot park after the
  // release (arm raced with a fast victim that finished its program).
  stall_armed_.store(false, std::memory_order_release);
  stall_release_.store(true, std::memory_order_release);
  stall_engaged_.store(false, std::memory_order_release);
}

std::uint64_t RtInjector::accesses(int pid) const {
  APRAM_CHECK(pid >= 0 && pid < opts_.num_pids);
  return per_thread_[static_cast<std::size_t>(pid)].accesses.load(
      std::memory_order_relaxed);
}

}  // namespace apram::fault
