#include "fault/certifier.hpp"

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/replay_artifact.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace apram::fault {

Judge step_bound_judge(std::vector<StepBound> bounds) {
  return [bounds = std::move(bounds)](sim::Execution& exec) -> std::string {
    sim::World& w = exec.world();
    const int n = std::min(w.num_procs(), static_cast<int>(bounds.size()));
    for (int pid = 0; pid < n; ++pid) {
      const std::uint64_t reads = w.metrics_reads(pid).value();
      const std::uint64_t writes = w.metrics_writes(pid).value();
      const StepBound& b = bounds[static_cast<std::size_t>(pid)];
      if (reads > b.reads) {
        return "pid " + std::to_string(pid) + ": " + std::to_string(reads) +
               " reads exceed bound " + std::to_string(b.reads);
      }
      if (writes > b.writes) {
        return "pid " + std::to_string(pid) + ": " + std::to_string(writes) +
               " writes exceed bound " + std::to_string(b.writes);
      }
    }
    return "";
  };
}

namespace {

// One campaign iteration. Everything the run does derives from `seed`, so a
// violation is reproducible from its seed alone even without the artifact.
void run_one(const sim::ExecutionFactory& factory, const Judge& judge,
             const CampaignOptions& opts, std::uint64_t seed,
             CampaignResult& result) {
  Rng rng(seed);
  const std::uint64_t sched_seed = rng.next();
  const double stickiness =
      opts.max_stickiness > 0.0 ? rng.uniform(0.0, opts.max_stickiness) : 0.0;

  // The registry must outlive the World it is attached to. When artifacts
  // are requested, a tracer rides along so a violation ships with its full
  // event trace (spans included) in both metrics-JSON and Perfetto form.
  obs::Registry registry(/*num_shards=*/1);
  std::unique_ptr<sim::Execution> exec = factory();
  sim::World& w = exec->world();
  std::unique_ptr<obs::Tracer> tracer;
  if (!opts.artifact_dir.empty()) {
    tracer = std::make_unique<obs::Tracer>(w.num_procs(),
                                           /*capacity_per_ring=*/1 << 12);
  }
  sim::World::Options wopts;
  wopts.metrics = &registry;
  wopts.metrics_prefix = "cert";
  wopts.tracer = tracer.get();
  w.apply_options(wopts);

  // Flight recorder: the violation branch dumps through it, and installing
  // it as the process panic recorder means a lincheck failure (or any
  // panic_dump caller) inside the judge freezes THIS run's trace + metrics.
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (!opts.artifact_dir.empty()) {
    std::filesystem::create_directories(opts.artifact_dir);
    recorder = std::make_unique<obs::FlightRecorder>(
        &registry, tracer.get(),
        "violation-seed" + std::to_string(seed) + ".flight");
    recorder->set_dir(opts.artifact_dir);
    obs::set_panic_recorder(recorder.get());
  }

  const FaultPlan plan = random_plan(rng, w.num_procs(), opts.plan);

  sim::RandomScheduler random(sched_seed, stickiness);
  Nemesis nemesis(random, plan);
  sim::RecordingScheduler rec(nemesis);
  const sim::RunResult run = w.run_steps(rec, opts.max_steps);

  result.crashes_fired += nemesis.crashes_fired();
  result.stall_deflections += nemesis.stall_deflections();
  result.burst_grants += nemesis.burst_grants();

  std::string what;
  if (!run.all_done) {
    what = "wait-freedom violation: execution incomplete after " +
           std::to_string(run.steps_taken) + " grants";
  } else if (judge) {
    what = judge(*exec);
  }
  if (what.empty()) {
    if (recorder != nullptr) obs::set_panic_recorder(nullptr);
    return;
  }

  Violation v;
  v.seed = seed;
  v.what = what;
  v.schedule = rec.picks();
  if (!opts.artifact_dir.empty()) {
    const std::string stem =
        opts.artifact_dir + "/violation-seed" + std::to_string(seed);
    // The replay artifact is the scheduler's OWN recording — complete from
    // grant zero, unlike the flight dump's trace-derived schedule, which
    // covers only the events the rings still held.
    v.artifact_path = stem + ".schedule";
    obs::write_schedule_file(
        v.artifact_path, v.schedule,
        {"seed " + std::to_string(seed), "violation: " + what,
         plan.describe()});
    v.flight_path = recorder->dump(what);
    obs::write_chrome_trace(stem + ".trace.json", tracer->events(),
                            obs::TraceTimebase::kSimSteps,
                            "fault-campaign seed " + std::to_string(seed));
  }
  if (recorder != nullptr) obs::set_panic_recorder(nullptr);
  result.violations.push_back(std::move(v));
}

}  // namespace

CampaignResult certify_wait_freedom(const sim::ExecutionFactory& factory,
                                    const Judge& judge,
                                    const CampaignOptions& opts) {
  APRAM_CHECK(opts.schedules > 0);
  CampaignResult result;
  for (int i = 0; i < opts.schedules; ++i) {
    run_one(factory, judge, opts,
            opts.base_seed + static_cast<std::uint64_t>(i), result);
    ++result.schedules_run;
  }
  return result;
}

std::unique_ptr<sim::Execution> replay_artifact(
    const sim::ExecutionFactory& factory, const std::string& path) {
  // The recorded grant sequence is self-contained: a crashed victim's grants
  // simply stop at its crash point, so replaying the grants reproduces every
  // access — including the victim's — without re-firing the crash itself.
  return sim::replay(factory, obs::read_schedule_file(path),
                     sim::ReplayMode::kStrict);
}

}  // namespace apram::fault
