// apram::fault — seeded fault injection for real-thread (rt) registers.
//
// The sim side can interleave accesses arbitrarily; real threads mostly run
// in lockstep unless something perturbs them. An RtInjector is that
// perturbation: attached to rt registers (attach_injector), it fires at
// every access boundary of every harness thread and, driven by a per-thread
// seeded Rng, injects
//
//   * yields  — sched_yield with probability yield_prob, shaking the
//     interleaving without changing timing scale, and
//   * sleeps  — a short random sleep (≤ sleep_max_us) with probability
//     sleep_prob, opening wide windows in which the other threads run many
//     operations against the sleeper's half-finished state.
//
// It also implements a HARD STALL: arm_stall(pid, after) parks pid's thread
// on its (after+1)-th access — after exactly `after` accesses, mirroring the
// sim's victim-keyed crash point — until release_stall(). While the victim
// is parked, the other threads (and the main thread) keep operating; the
// harness's run_with_stall() uses this to generate histories with a genuine
// pending operation for the linearizability checker. A stalled thread is a
// crash the scheduler cannot distinguish from slowness — exactly the failure
// model wait-freedom is about.
//
// The stall can be aimed at either of two points (StallPoint):
//   * kAccess — the top of the access, before it takes effect (the default,
//     and the model's canonical adversary move), or
//   * kHold   — inside a bounded register's read, between the reader's
//     version acquire and its dereference (registers call on_hold() there).
//     A victim parked at kHold holds a version reference indefinitely while
//     every other thread keeps writing: the precise window in which a broken
//     reclamation scheme would free memory out from under a reader. on_hold
//     never perturbs probabilistically and never counts as an access — it is
//     purely the hard-stall hook, so access accounting stays exact.
//
// Threads without a model pid (obs::thread_pid() < 0, e.g. the main thread
// probing a register mid-stall) pass through uninjected.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/rng.hpp"

namespace apram::fault {

struct RtInjectOptions {
  double yield_prob = 0.0;
  double sleep_prob = 0.0;
  int sleep_max_us = 50;  // sleep duration drawn from [1, sleep_max_us]
  std::uint64_t seed = 1;
  int num_pids = 64;  // threads with pid >= num_pids pass through
};

// Where an armed hard stall parks its victim.
enum class StallPoint : int {
  kAccess = 0,  // top of the access, before it takes effect
  kHold = 1,    // between a bounded reader's acquire and its dereference
};

class RtInjector {
 public:
  explicit RtInjector(const RtInjectOptions& opts);
  RtInjector(const RtInjector&) = delete;
  RtInjector& operator=(const RtInjector&) = delete;

  // Called by instrumented registers at the top of every access. Wait-free
  // for every thread except an armed kAccess stall victim, which blocks
  // here until release_stall().
  void on_access();

  // Called by bounded registers between a reader's version acquire and its
  // dereference. Parks an armed kHold victim (holding its version!) until
  // release_stall(); a no-op for everyone else. Never counts as an access,
  // never perturbs probabilistically.
  void on_hold();

  // Parks `pid`'s thread at `point` once it has performed `after` accesses
  // (so for kAccess, the victim's (after+1)-th access does not happen until
  // release_stall(); for kHold, the victim parks inside its first read at or
  // past that threshold, holding the acquired version). One stall may be
  // armed at a time; re-arming requires a release first.
  void arm_stall(int pid, std::uint64_t after,
                 StallPoint point = StallPoint::kAccess);
  void release_stall();
  bool stall_engaged() const {
    return stall_engaged_.load(std::memory_order_acquire);
  }

  // Accounting (exact at quiescence).
  std::uint64_t accesses(int pid) const;
  std::uint64_t yields_injected() const {
    return yields_.load(std::memory_order_relaxed);
  }
  std::uint64_t sleeps_injected() const {
    return sleeps_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) PerThread {
    Rng rng;
    std::atomic<std::uint64_t> accesses{0};
  };

  RtInjectOptions opts_;
  std::unique_ptr<PerThread[]> per_thread_;

  // Stall plumbing. armed_ hands exactly one thread (the victim, via CAS)
  // into the parked state; stall_engaged_ tells the orchestrating thread the
  // victim has arrived; stall_release_ lets it out.
  std::atomic<bool> stall_armed_{false};
  std::atomic<int> stall_pid_{-1};
  std::atomic<std::uint64_t> stall_after_{0};
  std::atomic<StallPoint> stall_point_{StallPoint::kAccess};
  std::atomic<bool> stall_engaged_{false};
  std::atomic<bool> stall_release_{false};

  std::atomic<std::uint64_t> yields_{0};
  std::atomic<std::uint64_t> sleeps_{0};
};

}  // namespace apram::fault
