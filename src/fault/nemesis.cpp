#include "fault/nemesis.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace apram::fault {

std::string FaultPlan::describe() const {
  std::string s = "plan:";
  if (empty()) return s + " (none)";
  for (const CrashFault& c : crashes) {
    s += " crash(p" + std::to_string(c.pid) + "@" +
         std::to_string(c.at_access) + ")";
  }
  for (const StallFault& f : stalls) {
    s += " stall(p" + std::to_string(f.pid) + "," +
         std::to_string(f.from_step) + "+" + std::to_string(f.duration) + ")";
  }
  for (const BurstFault& b : bursts) {
    s += " burst(p" + std::to_string(b.pid) + "," +
         std::to_string(b.from_step) + "+" + std::to_string(b.duration) + ")";
  }
  return s;
}

FaultPlan random_plan(Rng& rng, int num_procs, const PlanOptions& opts) {
  APRAM_CHECK(num_procs >= 1);
  APRAM_CHECK(opts.crash_horizon > 0 && opts.step_horizon > 0 &&
              opts.max_window > 0);
  FaultPlan plan;

  // Crash victims: distinct pids, never from never_crash, and never ALL of
  // them — wait-freedom is measured on survivors, so keep at least one.
  std::vector<int> eligible;
  for (int pid = 0; pid < num_procs; ++pid) {
    if (std::find(opts.never_crash.begin(), opts.never_crash.end(), pid) ==
        opts.never_crash.end()) {
      eligible.push_back(pid);
    }
  }
  std::uint64_t budget = static_cast<std::uint64_t>(
      std::min<std::size_t>(static_cast<std::size_t>(opts.max_crashes),
                            eligible.size()));
  if (opts.never_crash.empty() && budget >= static_cast<std::uint64_t>(num_procs)) {
    budget = static_cast<std::uint64_t>(num_procs) - 1;
  }
  if (budget > 0) {
    const std::uint64_t n_crashes = rng.below(budget + 1);
    for (std::uint64_t i = 0; i < n_crashes; ++i) {
      const std::size_t j = rng.below(eligible.size());
      plan.crashes.push_back(
          CrashFault{eligible[j], rng.below(opts.crash_horizon)});
      eligible.erase(eligible.begin() + static_cast<std::ptrdiff_t>(j));
    }
  }

  const std::uint64_t n_stalls =
      rng.below(static_cast<std::uint64_t>(opts.max_stalls) + 1);
  for (std::uint64_t i = 0; i < n_stalls; ++i) {
    plan.stalls.push_back(
        StallFault{static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(num_procs))),
                   rng.below(opts.step_horizon),
                   1 + rng.below(opts.max_window)});
  }

  const std::uint64_t n_bursts =
      rng.below(static_cast<std::uint64_t>(opts.max_bursts) + 1);
  for (std::uint64_t i = 0; i < n_bursts; ++i) {
    plan.bursts.push_back(
        BurstFault{static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(num_procs))),
                   rng.below(opts.step_horizon),
                   1 + rng.below(opts.max_window)});
  }
  return plan;
}

Nemesis::Nemesis(sim::Scheduler& inner, FaultPlan plan)
    : inner_(&inner), plan_(std::move(plan)), pending_crashes_(plan_.crashes) {}

bool Nemesis::stalled(int pid, std::uint64_t step) const {
  for (const StallFault& f : plan_.stalls) {
    if (f.pid == pid && step >= f.from_step &&
        step < f.from_step + f.duration) {
      return true;
    }
  }
  return false;
}

int Nemesis::pick(sim::World& w) {
  // 1) Fire due crashes (victim-keyed; completion wins, as in
  //    CrashingScheduler).
  std::size_t keep = 0;
  for (std::size_t i = 0; i < pending_crashes_.size(); ++i) {
    const CrashFault c = pending_crashes_[i];
    if (!w.spawned(c.pid)) {
      pending_crashes_[keep++] = c;
      continue;
    }
    if (w.done(c.pid) || w.crashed(c.pid)) continue;
    if (w.counts(c.pid).total() >= c.at_access) {
      w.crash(c.pid);
      ++crashes_fired_;
      continue;
    }
    pending_crashes_[keep++] = c;
  }
  pending_crashes_.resize(keep);

  const std::uint64_t step = w.global_step();

  // 2) An active burst window pre-empts the inner scheduler entirely.
  for (const BurstFault& b : plan_.bursts) {
    if (step >= b.from_step && step < b.from_step + b.duration &&
        w.runnable(b.pid) && !stalled(b.pid, step)) {
      ++burst_grants_;
      return b.pid;
    }
  }

  // 3) Delegate; deflect picks of stalled pids onto some other runnable
  //    process (round-robin so the deflection target rotates).
  const int pid = inner_->pick(w);
  if (pid < 0 || !stalled(pid, step)) return pid;
  const int n = w.num_procs();
  for (int i = 0; i < n; ++i) {
    const int cand = (rr_cursor_ + i) % n;
    if (cand != pid && w.runnable(cand) && !stalled(cand, step)) {
      rr_cursor_ = (cand + 1) % n;
      ++stall_deflections_;
      return cand;
    }
  }
  // Every runnable process is inside a stall window: the stall yields (see
  // header — an adversary that freezes everyone ends the run, proving
  // nothing about step bounds).
  return pid;
}

}  // namespace apram::fault
