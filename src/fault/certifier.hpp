// apram::fault — wait-freedom certification campaigns.
//
// certify_wait_freedom() runs an algorithm (packaged as a deterministic
// sim::ExecutionFactory) under a campaign of seeded adversaries: for each
// schedule i, seed base_seed+i derives a RandomScheduler (with random
// stickiness), a random FaultPlan (crashes/stalls/bursts), and a Nemesis
// combining them. Every run must
//
//   (1) complete — every non-crashed process finishes within max_steps
//       grants (wait-freedom: bounded own-steps under every adversary), and
//   (2) satisfy the caller's Judge — typically a per-operation step bound
//       read from the obs metrics registry the certifier attaches, e.g.
//       Scan ≤ n²−1 reads + n+1 writes (§6.2) or the agreement bound
//       (2n+1)·log2(Δ/ε) + O(n) (Theorem 5).
//
// Violations are recorded with the full interleaving (captured by a
// RecordingScheduler around the Nemesis) and — when artifact_dir is set —
// written as an annotated replay artifact plus a metrics JSON dump.
// replay_artifact() re-executes an artifact strictly (ReplayMode::kStrict),
// reproducing the violating run step-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/nemesis.hpp"
#include "obs/metrics.hpp"
#include "sim/replay.hpp"

namespace apram::fault {

// Per-pid bound on an execution's accesses, checked against the obs
// counters the certifier attaches (`cert.reads.p<pid>` etc.). The canonical
// reads/writes triple lives in obs (see obs::AccessCounts); this is the
// historical name for it.
using StepBound = obs::AccessCounts;

// Inspects a finished campaign execution; returns "" when the property
// holds, else a one-line description of the violation.
using Judge = std::function<std::string(sim::Execution&)>;

struct CampaignOptions {
  int schedules = 1000;
  std::uint64_t base_seed = 1;
  double max_stickiness = 0.9;  // per-run stickiness in [0, max_stickiness)
  PlanOptions plan;
  std::uint64_t max_steps = 1'000'000;  // per-run grant budget
  std::string artifact_dir;  // "" disables artifact emission
};

struct Violation {
  std::uint64_t seed = 0;
  std::string what;
  std::vector<int> schedule;   // the full recorded interleaving
  std::string artifact_path;   // "" when artifact emission is disabled
  std::string flight_path;     // flight-recorder metrics dump (obs/flight.hpp)
};

struct CampaignResult {
  int schedules_run = 0;
  std::uint64_t crashes_fired = 0;
  std::uint64_t stall_deflections = 0;
  std::uint64_t burst_grants = 0;
  std::vector<Violation> violations;

  bool certified() const { return schedules_run > 0 && violations.empty(); }
};

// Judge asserting counts(pid) ≤ bounds[pid] for every pid with a bound
// (crashed processes took fewer steps, so the bound applies uniformly).
Judge step_bound_judge(std::vector<StepBound> bounds);

CampaignResult certify_wait_freedom(const sim::ExecutionFactory& factory,
                                    const Judge& judge,
                                    const CampaignOptions& opts);

// Strict replay of a campaign artifact's schedule on a fresh execution.
std::unique_ptr<sim::Execution> replay_artifact(
    const sim::ExecutionFactory& factory, const std::string& path);

}  // namespace apram::fault
