#include "obs/span.hpp"

#include "obs/rt_probe.hpp"

namespace apram::obs {

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kNone:
      return "none";
    case OpKind::kScan:
      return "scan";
    case OpKind::kWriteL:
      return "write_l";
    case OpKind::kReadMax:
      return "read_max";
    case OpKind::kPost:
      return "post";
    case OpKind::kTreeUpdate:
      return "tree_update";
    case OpKind::kTreeScan:
      return "tree_scan";
    case OpKind::kInput:
      return "input";
    case OpKind::kOutput:
      return "output";
    case OpKind::kExecute:
      return "execute";
    case OpKind::kUser:
      return "user";
    case OpKind::kU2Execute:
      return "u2_execute";
    case OpKind::kU2Insert:
      return "u2_insert";
    case OpKind::kU2Remove:
      return "u2_remove";
    case OpKind::kU2Contains:
      return "u2_contains";
    case OpKind::kScenarioOp:
      return "scenario_op";
    case OpKind::kEnqueue:
      return "enqueue";
    case OpKind::kDequeue:
      return "dequeue";
    case OpKind::kUnion:
      return "union";
    case OpKind::kFind:
      return "find";
  }
  return "?";
}

OpKind op_kind_from_name(const std::string& name) {
  static constexpr OpKind kAll[] = {
      OpKind::kNone,   OpKind::kScan,       OpKind::kWriteL,
      OpKind::kReadMax, OpKind::kPost,      OpKind::kTreeUpdate,
      OpKind::kTreeScan, OpKind::kInput,    OpKind::kOutput,
      OpKind::kExecute, OpKind::kUser,      OpKind::kU2Execute,
      OpKind::kU2Insert, OpKind::kU2Remove, OpKind::kU2Contains,
      OpKind::kScenarioOp, OpKind::kEnqueue, OpKind::kDequeue,
      OpKind::kUnion,    OpKind::kFind,
  };
  for (OpKind k : kAll) {
    if (name == op_kind_name(k)) return k;
  }
  APRAM_CHECK_MSG(false, "unknown op kind name");
  return OpKind::kNone;  // unreachable
}

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kNone:
      return "none";
    case Phase::kCollect:
      return "collect";
    case Phase::kDoubleCollect:
      return "double_collect";
    case Phase::kRefresh:
      return "refresh";
    case Phase::kRound:
      return "round";
    case Phase::kPublish:
      return "publish";
    case Phase::kUser:
      return "user";
    case Phase::kFastPath:
      return "fast_path";
    case Phase::kSlowPath:
      return "slow_path";
  }
  return "?";
}

namespace {
thread_local Tracer* tls_span_tracer = nullptr;
thread_local SpanStack tls_spans;

// The ring owner contract of Tracer::emit: only emit when the thread has a
// model pid that maps to one of the tracer's rings.
int emitting_pid(const Tracer* tracer) {
  const int pid = thread_pid();
  if (pid < 0 || pid >= tracer->num_rings()) return -1;
  return pid;
}
}  // namespace

void set_thread_span_tracer(Tracer* tracer) {
  tls_span_tracer = tracer;
  tls_spans.depth = 0;
}

Tracer* thread_span_tracer() { return tls_span_tracer; }

std::uint64_t thread_op() { return tls_spans.current(); }

void rt_op_begin(OpKind kind) {
  Tracer* tracer = tls_span_tracer;
  if (tracer == nullptr) return;
  const int pid = emitting_pid(tracer);
  if (pid < 0) return;
  const std::uint64_t id = tracer->next_op_id();
  tls_spans.push(id, kind);
  tracer->emit(TraceEvent{tracer->now_ns(), pid, EventKind::kOpBegin,
                          /*object=*/-1, static_cast<std::uint64_t>(kind),
                          id});
}

void rt_op_end(OpKind kind) {
  Tracer* tracer = tls_span_tracer;
  if (tracer == nullptr) return;
  const int pid = emitting_pid(tracer);
  if (pid < 0) return;
  const SpanStack::Frame frame = tls_spans.pop();
  tracer->emit(TraceEvent{tracer->now_ns(), pid, EventKind::kOpEnd,
                          /*object=*/-1, static_cast<std::uint64_t>(kind),
                          frame.op_id});
}

void rt_op_phase(Phase phase, int index) {
  Tracer* tracer = tls_span_tracer;
  if (tracer == nullptr) return;
  const int pid = emitting_pid(tracer);
  if (pid < 0) return;
  tracer->emit(TraceEvent{tracer->now_ns(), pid, EventKind::kPhase, index,
                          static_cast<std::uint64_t>(phase),
                          tls_spans.current()});
}

void rt_op_help(int object) {
  Tracer* tracer = tls_span_tracer;
  if (tracer == nullptr) return;
  const int pid = emitting_pid(tracer);
  if (pid < 0) return;
  tracer->emit(TraceEvent{tracer->now_ns(), pid, EventKind::kHelp, object,
                          /*arg=*/0, tls_spans.current()});
}

}  // namespace apram::obs
