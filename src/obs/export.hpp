// apram::obs — exporters: machine-readable JSON and the human table format
// the bench harness already prints (util/table).
//
// The JSON schema is deliberately flat so CI can diff and assert on it:
//
//   {
//     "name": "bench_e4_scan_ops",
//     "counters":   { "sim.reads.p0": 35, ... },
//     "gauges":     { "e4.n": 6, ... },
//     "histograms": { "rt.scan.ns": { "count": 10, "sum": 123,
//                                     "mean": 12.3, "p50": 10, "p90": 14,
//                                     "p99": 15, "p999": 15.9,
//                                     "buckets": [[0,1],[2,4],...] } },
//     "events":     [ { "when": 0, "pid": 1, "kind": "read", "object": 3,
//                       "arg": 0, "op": 7 }, ... ]        // only if a tracer
//   }
//
// Histogram buckets are [lower_bound, count] pairs for non-empty buckets of
// the power-of-two histogram.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace apram::obs {

// Streams the registry (and optionally the tracer's surviving events) as one
// JSON object.
void export_json(std::ostream& os, const Registry& reg,
                 const Tracer* tracer = nullptr,
                 const std::string& name = "");

std::string to_json(const Registry& reg, const Tracer* tracer = nullptr,
                    const std::string& name = "");

// Writes export_json to `path` (aborts if the file cannot be written — a
// missing metrics artifact must fail loudly in CI, not silently pass).
void write_metrics_json(const std::string& path, const Registry& reg,
                        const Tracer* tracer = nullptr,
                        const std::string& name = "");

// Resolves a BARE artifact filename to a directory that is not the caller's
// cwd: $APRAM_ARTIFACT_DIR if set, else the running binary's directory
// (so source-dir invocations of tests/benches don't litter the tree), else
// the cwd as a last resort. A filename containing '/' is an explicit
// destination and is returned unchanged. Default artifact paths (test
// teardowns, BenchObs) must go through this; explicit --metrics_out values
// must not.
std::string artifact_path(const std::string& filename);

// Human-readable registry dump using the bench harness's table format.
Table registry_table(const Registry& reg, const std::string& title);

}  // namespace apram::obs
