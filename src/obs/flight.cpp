#include "obs/flight.hpp"

#include <atomic>
#include <cstdio>

#include "obs/analyze.hpp"
#include "obs/export.hpp"
#include "obs/replay_artifact.hpp"

namespace apram::obs {

std::string FlightRecorder::dump(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string stem = stem_ + "-" + std::to_string(dumps_);
  ++dumps_;
  if (snapshot_hook_) snapshot_hook_();

  std::vector<TraceEvent> events;
  Tracer::CollectStats stats;
  std::uint64_t open_spans = 0;
  std::uint64_t truncated = 0;
  if (tracer_ != nullptr) {
    events = tracer_->events(stats);
    const TraceAnalysis a = analyze(events);
    open_spans = a.open_ops;
    truncated = a.truncated_ops;
  }

  // The dump's own accounting rides in the artifact as flight.* gauges so
  // the reader knows how much of the run the rings still held.
  auto g = [&](const char* name, std::uint64_t v) {
    registry_->gauge(name).set(static_cast<std::int64_t>(v));
  };
  g("flight.open_spans", open_spans);
  g("flight.truncated_ops", truncated);
  g("flight.survived", stats.survived);
  g("flight.synthesized", stats.synthesized);
  g("flight.dropped", tracer_ != nullptr ? tracer_->dropped() : 0);
  g("flight.sampled_out", tracer_ != nullptr ? tracer_->sampled_out() : 0);
  g("flight.dumps", dumps_);

  auto path_of = [&](const std::string& suffix) {
    const std::string file = stem + suffix;
    return dir_.empty() ? artifact_path(file) : dir_ + "/" + file;
  };

  const std::string metrics_path = path_of(".metrics.json");
  write_metrics_json(metrics_path, *registry_, tracer_,
                     "flight: " + reason);

  if (tracer_ != nullptr) {
    std::vector<std::string> comments;
    comments.push_back("flight dump: " + reason);
    comments.push_back("open_spans=" + std::to_string(open_spans) +
                       " truncated_ops=" + std::to_string(truncated) +
                       " dropped=" + std::to_string(tracer_->dropped()) +
                       " sampled_out=" +
                       std::to_string(tracer_->sampled_out()));
    write_schedule_file(path_of(".schedule"), schedule_from_trace(events),
                        comments);
  }

  std::fprintf(stderr, "[obs::flight] dumped '%s' -> %s\n", reason.c_str(),
               metrics_path.c_str());
  return metrics_path;
}

namespace {
std::atomic<FlightRecorder*> g_panic_recorder{nullptr};
}  // namespace

void set_panic_recorder(FlightRecorder* rec) {
  g_panic_recorder.store(rec, std::memory_order_release);
}

std::string panic_dump(const std::string& reason) {
  FlightRecorder* rec = g_panic_recorder.load(std::memory_order_acquire);
  if (rec == nullptr) return "";
  return rec->dump(reason);
}

}  // namespace apram::obs
