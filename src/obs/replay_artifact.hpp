// apram::obs — replay artifacts.
//
// Simulator executions are pure functions of (program, schedule), and every
// scheduler grant performs exactly one shared-memory access. A recorded sim
// trace therefore IS the schedule: projecting the access events onto their
// pids, in step order, reproduces the exact grant sequence, and feeding that
// sequence to sim::FixedScheduler (via sim::replay) re-executes the run
// byte-for-byte.
//
// The artifact format is a trivially diffable text file:
//
//   # apram-schedule v1
//   2
//   0
//   1
//   ...
//
// one pid per line, in grant order. Lines starting with '#' are comments.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace apram::obs {

// Projects a sim trace onto its scheduler grant sequence: one entry per
// shared-memory access event (kRead/kWrite/kCas), ordered by step. Non-access
// events (spawn/done/crash/user) are skipped — they consume no grants.
std::vector<int> schedule_from_trace(const std::vector<TraceEvent>& events);

// `comments` lines (if any) are written after the header as '# '-prefixed
// annotations — seeds, fault plans, violation descriptions. The loader
// ignores them, so annotated artifacts replay like plain ones. Comment
// lines must not contain newlines.
void save_schedule(std::ostream& os, const std::vector<int>& schedule,
                   const std::vector<std::string>& comments = {});
std::vector<int> load_schedule(std::istream& is);

// File convenience wrappers; abort on I/O failure.
void write_schedule_file(const std::string& path,
                         const std::vector<int>& schedule,
                         const std::vector<std::string>& comments = {});
std::vector<int> read_schedule_file(const std::string& path);

}  // namespace apram::obs
