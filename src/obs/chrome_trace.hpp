// apram::obs — Chrome/Perfetto trace-event export.
//
// Converts a Tracer's event stream into the Trace Event JSON format that
// chrome://tracing and ui.perfetto.dev load directly:
//
//   * one track (tid) per model process, named "pid N",
//   * operation spans as nested B/E duration events (name = op kind),
//   * phases and shared-memory accesses as thread-scoped instants,
//   * helps as flow arrows from the helping CAS to the helped operation
//     (heuristic: the latest preceding successful CAS on the same object by
//     another pid — exact under the simulator's total step order, best-effort
//     for rt timestamps),
//   * crashes as process-scoped instants.
//
// A span whose kOpEnd is missing (the op crashed, or the trace was drained
// mid-operation) renders as an unclosed B event: the viewer extends it to the
// end of the track, which is the honest picture. A kOpEnd whose begin was
// lost to ring overwrite is dropped (its op carries a kTruncated marker).
//
// Timestamps: the JSON `ts` field is microseconds. Simulator traces tick in
// global steps (one step = 1 µs, so step indices read directly off the
// ruler); rt traces tick in nanoseconds (divided by 1000). kAuto picks per
// trace: a max timestamp ≥ 1e9 can only be nanoseconds here.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace apram::obs {

enum class TraceTimebase {
  kAuto,
  kSimSteps,     // TraceEvent::when is a global step index
  kNanoseconds,  // TraceEvent::when is ns since tracer epoch
};

// Streams `events` (as returned by Tracer::events()/drain(), i.e. already
// (when, pid)-sorted) as one Trace Event JSON object.
void export_chrome_trace(std::ostream& os,
                         const std::vector<TraceEvent>& events,
                         TraceTimebase timebase = TraceTimebase::kAuto,
                         const std::string& process_name = "apram");

// Writes export_chrome_trace to `path`; aborts if the file cannot be
// written (a missing CI artifact must fail loudly).
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        TraceTimebase timebase = TraceTimebase::kAuto,
                        const std::string& process_name = "apram");

}  // namespace apram::obs
