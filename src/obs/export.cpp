#include "obs/export.hpp"

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

namespace apram::obs {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void export_json(std::ostream& os, const Registry& reg, const Tracer* tracer,
                 const std::string& name) {
  os << "{\n";
  if (!name.empty()) {
    os << "  \"name\": ";
    json_escape(os, name);
    os << ",\n";
  }

  os << "  \"counters\": {";
  bool first = true;
  for (const Counter* c : reg.counters()) {
    os << (first ? "\n" : ",\n") << "    ";
    json_escape(os, c->name());
    os << ": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"gauges\": {";
  first = true;
  for (const Gauge* g : reg.gauges()) {
    os << (first ? "\n" : ",\n") << "    ";
    json_escape(os, g->name());
    os << ": " << g->value();
    first = false;
  }
  // Synthesized health gauge: always present so analyzers can assert on it.
  // Zero means every per-shard attribution in this artifact is exact; see
  // obs::pinning_degraded().
  os << (first ? "\n" : ",\n") << "    \"obs.pinning_degraded\": "
     << pinning_degraded();
  os << "\n  },\n";

  os << "  \"histograms\": {";
  first = true;
  for (const Histogram* h : reg.histograms()) {
    const Histogram::Snapshot snap = h->snapshot();
    os << (first ? "\n" : ",\n") << "    ";
    json_escape(os, h->name());
    os << ": { \"count\": " << snap.count << ", \"sum\": " << snap.sum
       << ", \"mean\": " << snap.mean() << ", \"p50\": " << snap.percentile(50)
       << ", \"p90\": " << snap.percentile(90)
       << ", \"p99\": " << snap.percentile(99)
       << ", \"p999\": " << snap.percentile(99.9) << ", \"buckets\": [";
    bool bfirst = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = snap.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      os << (bfirst ? "" : ", ") << '[' << Histogram::bucket_floor(b) << ", "
         << n << ']';
      bfirst = false;
    }
    os << "] }";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}";

  if (tracer != nullptr) {
    os << ",\n  \"events\": [";
    first = true;
    for (const TraceEvent& ev : tracer->events()) {
      os << (first ? "\n" : ",\n") << "    { \"when\": " << ev.when
         << ", \"pid\": " << ev.pid << ", \"kind\": \"" << kind_name(ev.kind)
         << "\", \"object\": " << ev.object << ", \"arg\": " << ev.arg
         << ", \"op\": " << ev.op << " }";
      first = false;
    }
    os << (first ? "" : "\n  ") << "]";
  }
  os << "\n}\n";
}

std::string to_json(const Registry& reg, const Tracer* tracer,
                    const std::string& name) {
  std::ostringstream os;
  export_json(os, reg, tracer, name);
  return os.str();
}

void write_metrics_json(const std::string& path, const Registry& reg,
                        const Tracer* tracer, const std::string& name) {
  std::ofstream out(path);
  APRAM_CHECK_MSG(out.good(), "cannot open metrics output file");
  export_json(out, reg, tracer, name);
  out.flush();
  APRAM_CHECK_MSG(out.good(), "metrics artifact write failed");
}

std::string artifact_path(const std::string& filename) {
  if (filename.empty() || filename.find('/') != std::string::npos) {
    return filename;  // explicit destination, caller's choice
  }
  if (const char* dir = std::getenv("APRAM_ARTIFACT_DIR");
      dir != nullptr && dir[0] != '\0') {
    std::string d(dir);
    if (d.back() != '/') d.push_back('/');
    return d + filename;
  }
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len > 0) {
    const std::string exe(buf, static_cast<std::size_t>(len));
    const std::size_t slash = exe.rfind('/');
    if (slash != std::string::npos) {
      return exe.substr(0, slash + 1) + filename;
    }
  }
  return filename;  // no binary dir resolvable: fall back to the cwd
}

Table registry_table(const Registry& reg, const std::string& title) {
  Table table(title, {"metric", "type", "value", "detail"});
  for (const Counter* c : reg.counters()) {
    table.add(c->name()).add("counter").add(c->value()).add("").end_row();
  }
  for (const Gauge* g : reg.gauges()) {
    table.add(g->name()).add("gauge").add(g->value()).add("").end_row();
  }
  for (const Histogram* h : reg.histograms()) {
    const Histogram::Snapshot snap = h->snapshot();
    table.add(h->name())
        .add("histogram")
        .add(snap.count)
        .add("sum=" + std::to_string(snap.sum))
        .end_row();
  }
  return table;
}

}  // namespace apram::obs
