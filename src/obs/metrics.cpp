#include "obs/metrics.hpp"

#include <cstdio>

namespace apram::obs {

namespace {
std::atomic<int> g_next_shard{0};
std::atomic<std::uint64_t> g_pinning_degraded{0};
thread_local int tls_shard = -1;
thread_local int tls_pid = -1;
}  // namespace

int thread_pid() { return tls_pid; }

void set_thread_pid(int pid) { tls_pid = pid; }

int this_shard() {
  if (tls_shard < 0) {
    tls_shard = g_next_shard.fetch_add(1, std::memory_order_relaxed) %
                kMaxShards;
  }
  return tls_shard;
}

void pin_this_shard(int shard) {
  APRAM_CHECK(shard >= 0);
  if (shard >= kMaxShards) {
    // Loud, not fatal: totals stay exact, per-shard attribution blurs.
    // Warn once per process (fetch_add returning 0 elects the first caller)
    // and count every occurrence so exporters can flag the run.
    if (g_pinning_degraded.fetch_add(1, std::memory_order_relaxed) == 0) {
      std::fprintf(stderr,
                   "[apram::obs] warning: pin_this_shard(%d) beyond "
                   "kMaxShards=%d; clamping modulo — per-shard attribution "
                   "is degraded (totals stay exact). See the "
                   "obs.pinning_degraded gauge.\n",
                   shard, kMaxShards);
    }
  }
  tls_shard = shard % kMaxShards;
}

std::uint64_t pinning_degraded() {
  return g_pinning_degraded.load(std::memory_order_relaxed);
}

LatencyRecorder::LatencyRecorder(Registry& registry, const std::string& name)
    : hist_(&registry.histogram(name)) {}

Registry::Registry(int num_shards) : num_shards_(num_shards) {
  APRAM_CHECK(num_shards >= 1 && num_shards <= kMaxShards);
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  APRAM_CHECK_MSG(kinds_.find(name) == kinds_.end(),
                  "metric name registered with a different kind");
  kinds_.emplace(name, Kind::kCounter);
  auto owned = std::make_unique<Counter>(name, num_shards_);
  Counter& ref = *owned;
  counters_.emplace(name, std::move(owned));
  return ref;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  APRAM_CHECK_MSG(kinds_.find(name) == kinds_.end(),
                  "metric name registered with a different kind");
  kinds_.emplace(name, Kind::kGauge);
  auto owned = std::make_unique<Gauge>(name);
  Gauge& ref = *owned;
  gauges_.emplace(name, std::move(owned));
  return ref;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  APRAM_CHECK_MSG(kinds_.find(name) == kinds_.end(),
                  "metric name registered with a different kind");
  kinds_.emplace(name, Kind::kHistogram);
  auto owned = std::make_unique<Histogram>(name, num_shards_);
  Histogram& ref = *owned;
  histograms_.emplace(name, std::move(owned));
  return ref;
}

const Counter* Registry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

std::vector<const Counter*> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Counter*> out;
  out.reserve(counters_.size());
  for (const auto& [_, c] : counters_) out.push_back(c.get());
  return out;
}

std::vector<const Gauge*> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Gauge*> out;
  out.reserve(gauges_.size());
  for (const auto& [_, g] : gauges_) out.push_back(g.get());
  return out;
}

std::vector<const Histogram*> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Histogram*> out;
  out.reserve(histograms_.size());
  for (const auto& [_, h] : histograms_) out.push_back(h.get());
  return out;
}

}  // namespace apram::obs
