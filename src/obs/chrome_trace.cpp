#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/span.hpp"
#include "util/assert.hpp"

namespace apram::obs {

namespace {

struct Emitter {
  std::ostream& os;
  bool first = true;

  std::ostream& event() {
    os << (first ? "\n" : ",\n") << "    ";
    first = false;
    return os;
  }
};

double to_us(std::uint64_t when, TraceTimebase tb) {
  // One simulator step renders as one microsecond so step indices read
  // directly off the viewer's time ruler.
  return tb == TraceTimebase::kNanoseconds
             ? static_cast<double>(when) / 1000.0
             : static_cast<double>(when);
}

TraceTimebase resolve(TraceTimebase tb,
                      const std::vector<TraceEvent>& events) {
  if (tb != TraceTimebase::kAuto) return tb;
  std::uint64_t max_when = 0;
  for (const TraceEvent& ev : events) max_when = std::max(max_when, ev.when);
  // A simulator run of 1e9 global steps is out of scope; an rt run's first
  // nanosecond timestamps typically already exceed it.
  return max_when >= 1000000000ull ? TraceTimebase::kNanoseconds
                                   : TraceTimebase::kSimSteps;
}

}  // namespace

void export_chrome_trace(std::ostream& os,
                         const std::vector<TraceEvent>& events,
                         TraceTimebase timebase,
                         const std::string& process_name) {
  const TraceTimebase tb = resolve(timebase, events);

  std::set<std::uint64_t> truncated;
  std::set<std::int32_t> pids;
  for (const TraceEvent& ev : events) {
    if (ev.kind == EventKind::kTruncated) truncated.insert(ev.op);
    if (ev.pid >= 0) pids.insert(ev.pid);
  }

  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  Emitter out{os};

  out.event() << "{ \"ph\": \"M\", \"pid\": 0, \"name\": \"process_name\", "
                 "\"args\": { \"name\": \""
              << process_name << "\" } }";
  for (std::int32_t pid : pids) {
    out.event() << "{ \"ph\": \"M\", \"pid\": 0, \"tid\": " << pid
                << ", \"name\": \"thread_name\", \"args\": { \"name\": "
                   "\"pid "
                << pid << "\" } }";
  }

  // Per-object last successful CAS, for help flow arrows; per-pid open-span
  // depth, to drop kOpEnd events whose begin was lost to ring overwrite
  // (chrome rejects unbalanced E events).
  std::map<std::int32_t, TraceEvent> last_cas;
  std::map<std::int32_t, int> open_depth;
  std::uint64_t next_flow = 1;

  for (const TraceEvent& ev : events) {
    const double ts = to_us(ev.when, tb);
    switch (ev.kind) {
      case EventKind::kOpBegin:
        if (!truncated.count(ev.op)) {
          ++open_depth[ev.pid];
          out.event() << "{ \"ph\": \"B\", \"pid\": 0, \"tid\": " << ev.pid
                      << ", \"ts\": " << ts << ", \"name\": \""
                      << op_kind_name(static_cast<OpKind>(ev.arg))
                      << "\", \"args\": { \"op\": " << ev.op << " } }";
        }
        break;
      case EventKind::kOpEnd:
        if (!truncated.count(ev.op) && open_depth[ev.pid] > 0) {
          --open_depth[ev.pid];
          out.event() << "{ \"ph\": \"E\", \"pid\": 0, \"tid\": " << ev.pid
                      << ", \"ts\": " << ts << " }";
        }
        break;
      case EventKind::kPhase:
        out.event() << "{ \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, "
                       "\"tid\": "
                    << ev.pid << ", \"ts\": " << ts << ", \"name\": \"phase:"
                    << phase_name(static_cast<Phase>(ev.arg))
                    << "\", \"args\": { \"index\": " << ev.object
                    << ", \"op\": " << ev.op << " } }";
        break;
      case EventKind::kHelp: {
        out.event() << "{ \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, "
                       "\"tid\": "
                    << ev.pid << ", \"ts\": " << ts
                    << ", \"name\": \"helped\", \"args\": { \"object\": "
                    << ev.object << ", \"op\": " << ev.op << " } }";
        auto it = last_cas.find(ev.object);
        if (it != last_cas.end() && it->second.pid != ev.pid) {
          const std::uint64_t id = next_flow++;
          out.event() << "{ \"ph\": \"s\", \"cat\": \"help\", \"name\": "
                         "\"help\", \"id\": "
                      << id << ", \"pid\": 0, \"tid\": " << it->second.pid
                      << ", \"ts\": " << to_us(it->second.when, tb) << " }";
          out.event() << "{ \"ph\": \"f\", \"bp\": \"e\", \"cat\": "
                         "\"help\", \"name\": \"help\", \"id\": "
                      << id << ", \"pid\": 0, \"tid\": " << ev.pid
                      << ", \"ts\": " << ts << " }";
        }
        break;
      }
      case EventKind::kCrash:
        out.event() << "{ \"ph\": \"i\", \"s\": \"p\", \"pid\": 0, "
                       "\"tid\": "
                    << ev.pid << ", \"ts\": " << ts
                    << ", \"name\": \"crash\" }";
        break;
      case EventKind::kRead:
      case EventKind::kWrite:
      case EventKind::kCas:
        if (ev.kind == EventKind::kCas && ev.arg != 0) last_cas[ev.object] = ev;
        out.event() << "{ \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, "
                       "\"tid\": "
                    << ev.pid << ", \"ts\": " << ts << ", \"name\": \""
                    << kind_name(ev.kind) << " r" << ev.object
                    << "\", \"args\": { \"op\": " << ev.op << " } }";
        break;
      case EventKind::kSpawn:
      case EventKind::kDone:
        out.event() << "{ \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, "
                       "\"tid\": "
                    << ev.pid << ", \"ts\": " << ts << ", \"name\": \""
                    << kind_name(ev.kind) << "\" }";
        break;
      case EventKind::kUser:
      case EventKind::kTruncated:
        break;  // kUser payloads are producer-defined; markers are meta-data
    }
  }

  os << (out.first ? "" : "\n  ") << "]\n}\n";
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        TraceTimebase timebase,
                        const std::string& process_name) {
  std::ofstream out(path);
  APRAM_CHECK_MSG(out.good(), "cannot open chrome trace output file");
  export_chrome_trace(out, events, timebase, process_name);
  out.flush();
  APRAM_CHECK_MSG(out.good(), "chrome trace artifact write failed");
}

}  // namespace apram::obs
