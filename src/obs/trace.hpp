// apram::obs — bounded event tracer.
//
// One Tracer holds `num_rings` single-producer ring buffers of fixed
// capacity; ring i is written only by the thread acting as process i (the
// simulator's driver thread for every pid; in rt, the thread the harness
// pinned to pid i). Emitting overwrites the oldest slot when full — the
// newest events always survive, which is what post-mortem debugging wants.
//
// Hot-path budget: one slot copy plus one release store of the ring head.
// No allocation, no locking, no cross-thread stores.
//
// Reading (events()/drain()) is defined at quiescence only: after the sim
// run returns, or after the rt harness has joined its threads (the join
// provides the happens-before edge that makes every slot visible). Reading
// while producers are live is a contract violation, not a data race the
// tracer defends against.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "util/assert.hpp"

namespace apram::obs {

enum class EventKind : std::uint8_t {
  kRead,   // shared-register read (object = register id)
  kWrite,  // shared-register write
  kCas,    // compare-and-swap (arg = 1 on success, 0 on failure)
  kSpawn,  // process/thread started
  kDone,   // process/thread finished
  kCrash,  // process crashed (failure injection)
  kUser,   // free-form, producer-defined
  // Operation spans (obs/span.hpp). `op` is the span's operation id;
  // accesses emitted while a span is open carry the same id.
  kOpBegin,    // operation started (arg = obs::OpKind)
  kOpEnd,      // operation finished (arg = obs::OpKind, self-describing so a
               // surviving end whose begin was overwritten is identifiable)
  kPhase,      // named phase inside the current op (arg = obs::Phase,
               // object = phase index: pass / tree level / round)
  kHelp,       // the current op was helped by a rival (object = structure-
               // local node index; chrome export draws a flow arrow)
  kTruncated,  // synthesized by events()/drain(): op `op` lost its kOpBegin
               // to ring overwrite — analyzers must not count its accesses
};

const char* kind_name(EventKind k);

// Inverse of kind_name for trace loaders; aborts on an unknown name.
EventKind kind_from_name(const std::string& name);

struct TraceEvent {
  std::uint64_t when = 0;   // sim: global step index; rt: ns since epoch
  std::int32_t pid = 0;     // producing process/thread
  EventKind kind = EventKind::kUser;
  std::int32_t object = -1;  // register/object id, -1 when not applicable
  std::uint64_t arg = 0;     // event-specific payload
  std::uint64_t op = 0;      // owning operation id; 0 = no open span
};

class Tracer {
 public:
  // `num_rings` must cover every pid that will emit (ring = event pid).
  Tracer(int num_rings, std::size_t capacity_per_ring);

  int num_rings() const { return static_cast<int>(rings_.size()); }
  std::size_t ring_capacity() const { return cap_; }

  // Producer side — callable only by the thread owning ring ev.pid.
  void emit(const TraceEvent& ev);

  // Installs a deterministic 1-in-N span sampler (obs/sampler.hpp). Events
  // whose op is sampled out are rejected at emit() — they never enter a
  // ring, never count as recorded, and are tallied in sampled_out()
  // instead. Exact subset semantics: the decision is a pure function of
  // (seed, pid, op), so kept spans are complete and per-op bound checks
  // stay valid on the sampled population. Install before producers start;
  // swapping mid-run would split spans.
  void set_sampler(SpanSampler sampler) { sampler_ = sampler; }
  const SpanSampler& sampler() const { return sampler_; }

  // Nanoseconds since this tracer's construction (rt timestamp source).
  std::uint64_t now_ns() const;

  // Fresh operation id for a span (obs/span.hpp). Ids are unique per tracer
  // across sim and rt producers; 0 is reserved for "no span".
  std::uint64_t next_op_id() {
    return next_op_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Quiescent readers -------------------------------------------------

  // All surviving events, merged across rings, ordered by (when, pid). In
  // the simulator `when` is the unique global step, so the order is exact.
  //
  // Ring overwrite can truncate a span: a surviving kOpEnd (or tagged
  // accesses) whose kOpBegin was overwritten. For each such op id a
  // kTruncated marker is synthesized at the ring's earliest surviving
  // timestamp, so analyzers report the op as truncated instead of
  // miscounting its accesses.
  std::vector<TraceEvent> events() const;

  // Exact accounting for one collection pass. The conservation law — every
  // emitted event is in exactly one bucket:
  //
  //   recorded() == survived + dropped()
  //
  // and synthesized kTruncated markers live in NONE of them: they are
  // appended to the OUTPUT vector only, never stored in ring slots, so they
  // can neither overwrite real events nor inflate the drop count.
  // Events a sampler rejected are a fourth, disjoint population
  // (sampled_out()) — rejected before recording, by design not a "drop".
  struct CollectStats {
    std::uint64_t survived = 0;     // real events copied out of the rings
    std::uint64_t synthesized = 0;  // kTruncated markers added to the output
  };

  std::vector<TraceEvent> events(CollectStats& stats) const;

  // events(), then resets every ring.
  std::vector<TraceEvent> drain();

  std::uint64_t recorded() const;  // total events accepted into rings
  std::uint64_t dropped() const;   // overwritten by ring overflow (exact:
                                   // max(0, head − capacity) per ring)
  std::uint64_t sampled_out() const {  // rejected by the span sampler
    return sampled_out_.load(std::memory_order_relaxed);
  }

 private:
  struct Ring {
    alignas(64) std::atomic<std::uint64_t> head{0};
    std::vector<TraceEvent> slots;
  };

  void collect(std::vector<TraceEvent>& out, CollectStats* stats) const;

  std::size_t cap_;
  std::vector<std::unique_ptr<Ring>> rings_;
  SpanSampler sampler_;  // rate 1 (keep everything) unless set_sampler'd
  std::atomic<std::uint64_t> sampled_out_{0};
  std::uint64_t retired_recorded_ = 0;  // carried across drain() resets
  std::uint64_t retired_dropped_ = 0;
  std::atomic<std::uint64_t> next_op_{1};  // 0 is "no span"
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace apram::obs
