// apram::obs — lock-free, per-thread-sharded metrics registry.
//
// The paper's claims are quantitative (exact read/write counts per operation,
// step bounds per theorem), so the measurement substrate must be exact and
// must not perturb the hot paths it measures. The design:
//
//   * Recording one event is ONE relaxed fetch_add on a cache-line-private
//     shard slot (histograms add a branch-free bucket computation). No locks,
//     no stores shared between writer threads, wait-free by construction.
//   * Aggregation happens on read: value() sums the shards. Reads are exact
//     at quiescence (e.g. after joining worker threads) and monotone-
//     approximate while writers run.
//   * Metric handles are created through a Registry and stay valid for the
//     Registry's lifetime; creation takes a mutex (cold path only), so hot
//     code caches `Counter&` references.
//
// Shard selection: each thread lazily claims a shard index via this_shard();
// the rt thread harness pins shard == pid so per-shard numbers line up with
// the model's process ids. Two threads landing on the same shard is safe
// (slots are atomics) — only attribution, never totals, can blur. The blur
// is structural beyond kMaxShards (64): pin_this_shard clamps shard ids
// modulo kMaxShards, so in a >64-thread harness threads 0 and 64 share a
// shard — totals stay exact, per-shard attribution does not. The clamp is
// never silent: the first occurrence per process warns on stderr, every
// occurrence bumps pinning_degraded() (exported as the `obs.pinning_degraded`
// gauge). Keep per-pid readings inside 64 threads, or raise kMaxShards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace apram::obs {

// Upper bound on distinct shard slots; threads beyond this share slots.
inline constexpr int kMaxShards = 64;

// Stable shard index of the calling thread, lazily assigned round-robin.
int this_shard();

// Pins the calling thread's shard (the rt harness pins shard == pid so that
// per-shard readings match process ids). Ids ≥ kMaxShards are clamped
// modulo kMaxShards — the pin succeeds with the attribution blur documented
// in the header comment, a one-time warning goes to stderr, and every
// clamped pin increments pinning_degraded().
void pin_this_shard(int shard);

// Number of pin_this_shard calls that had to clamp (shard ≥ kMaxShards)
// since process start. Zero means every per-shard reading is exact. The
// JSON exporter surfaces this as the `obs.pinning_degraded` gauge.
std::uint64_t pinning_degraded();

namespace detail {
struct alignas(64) Slot {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

// Monotone event counter. add() is one relaxed fetch_add.
class Counter {
 public:
  Counter(std::string name, int num_shards)
      : name_(std::move(name)),
        num_shards_(num_shards),
        slots_(new detail::Slot[static_cast<std::size_t>(num_shards)]) {}

  const std::string& name() const { return name_; }

  void add(std::uint64_t delta = 1) { add_shard(this_shard(), delta); }

  // For callers that know their shard (the single-threaded simulator always
  // records into shard 0 via this path — no TLS lookup).
  void add_shard(int shard, std::uint64_t delta) {
    slots_[static_cast<std::size_t>(shard % num_shards_)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (int s = 0; s < num_shards_; ++s) {
      sum += slots_[static_cast<std::size_t>(s)].v.load(
          std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  std::string name_;
  int num_shards_;
  std::unique_ptr<detail::Slot[]> slots_;
};

// Point-in-time value (set/add, last-writer-wins). Not sharded: a gauge is a
// statement about current state, not a sum of contributions.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<std::int64_t> v_{0};
};

// Power-of-two histogram: bucket i counts values whose bit width is i, i.e.
// bucket 0 holds {0}, bucket i>0 holds [2^(i-1), 2^i). Exact count and sum,
// log-scale distribution — the right shape for step counts and latencies.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bit_width of uint64_t is 0..64

  Histogram(std::string name, int num_shards)
      : name_(std::move(name)), num_shards_(num_shards) {
    shards_.reserve(static_cast<std::size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  const std::string& name() const { return name_; }

  static int bucket_of(std::uint64_t v) {
    int b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  // Lower bound of bucket b (0 for b==0, else 2^(b-1)).
  static std::uint64_t bucket_floor(int b) {
    return b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
  }

  void record(std::uint64_t v) {
    Shard& sh = *shards_[static_cast<std::size_t>(this_shard() % num_shards_)];
    sh.buckets[static_cast<std::size_t>(bucket_of(v))].v.fetch_add(
        1, std::memory_order_relaxed);
    sh.sum.fetch_add(v, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buckets;  // size kBuckets
    double mean() const {
      return count ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
    }

    // Estimated p-th percentile (p in [0, 100]), linearly interpolated
    // inside the power-of-two bucket holding the target rank. Exact up to
    // bucket resolution; edge cases: empty histogram → 0, bucket 0 (the
    // value 0) → 0, the saturated top bucket (values ≥ 2^63) → its floor
    // (no upper edge to interpolate toward).
    double percentile(double p) const {
      if (count == 0) return 0.0;
      if (p < 0.0) p = 0.0;
      if (p > 100.0) p = 100.0;
      const double target = p / 100.0 * static_cast<double>(count);
      double cum = 0.0;
      for (int b = 0; b < kBuckets; ++b) {
        const auto n = static_cast<double>(
            buckets[static_cast<std::size_t>(b)]);
        if (n == 0.0) continue;
        if (cum + n >= target) {
          const auto lo = static_cast<double>(bucket_floor(b));
          if (b == 0 || b == kBuckets - 1) return lo;
          const auto hi = static_cast<double>(bucket_floor(b + 1));
          double within = (target - cum) / n;
          if (within < 0.0) within = 0.0;
          if (within > 1.0) within = 1.0;
          return lo + (hi - lo) * within;
        }
        cum += n;
      }
      // All mass below target can only happen through rounding; report the
      // highest non-empty bucket's floor.
      for (int b = kBuckets - 1; b >= 0; --b) {
        if (buckets[static_cast<std::size_t>(b)] != 0) {
          return static_cast<double>(bucket_floor(b));
        }
      }
      return 0.0;
    }
  };

  Snapshot snapshot() const {
    Snapshot out;
    out.buckets.assign(kBuckets, 0);
    for (const auto& sh : shards_) {
      for (int b = 0; b < kBuckets; ++b) {
        out.buckets[static_cast<std::size_t>(b)] +=
            sh->buckets[static_cast<std::size_t>(b)].v.load(
                std::memory_order_relaxed);
      }
      out.sum += sh->sum.load(std::memory_order_relaxed);
    }
    for (auto c : out.buckets) out.count += c;
    return out;
  }

 private:
  struct Shard {
    detail::Slot buckets[kBuckets];
    alignas(64) std::atomic<std::uint64_t> sum{0};
  };

  std::string name_;
  int num_shards_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Histogram front-end for wall-clock operation latencies. Caches the
// `Histogram&` at construction (cold path) so record()/Timer stay on the
// lock-free hot path. Values are nanoseconds; the JSON exporter emits
// p50/p90/p99/p99.9 next to count/sum/mean for every histogram.
class LatencyRecorder {
 public:
  LatencyRecorder(class Registry& registry, const std::string& name);

  Histogram& histogram() { return *hist_; }

  void record_ns(std::uint64_t ns) { hist_->record(ns); }

  // RAII: records the scope's duration in nanoseconds on destruction.
  class Timer {
   public:
    explicit Timer(LatencyRecorder& rec)
        : rec_(&rec), begin_(std::chrono::steady_clock::now()) {}
    ~Timer() {
      rec_->record_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - begin_)
              .count()));
    }
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

   private:
    LatencyRecorder* rec_;
    std::chrono::steady_clock::time_point begin_;
  };

 private:
  Histogram* hist_;
};

// Named metric store. Creation is mutex-guarded (cold path); returned
// references stay valid for the Registry's lifetime. Names are unique across
// metric kinds — asking for "x" as a counter after creating gauge "x" aborts.
class Registry {
 public:
  explicit Registry(int num_shards = 16);

  int num_shards() const { return num_shards_; }

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Lookup without creation; nullptr when absent (or a different kind).
  const Counter* find_counter(const std::string& name) const;

  // Sorted-by-name views for exporters. The vectors are snapshots of the
  // registration set; the pointed-to metrics keep updating.
  std::vector<const Counter*> counters() const;
  std::vector<const Gauge*> gauges() const;
  std::vector<const Histogram*> histograms() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  int num_shards_;
  mutable std::mutex mu_;
  std::map<std::string, Kind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Measures the growth of a counter across a region of code — the registry
// replacement for the old bespoke `StepDelta`.
class CounterDelta {
 public:
  explicit CounterDelta(const Counter& c) : c_(&c), before_(c.value()) {}

  std::uint64_t delta() const { return c_->value() - before_; }
  void reset() { before_ = c_->value(); }

 private:
  const Counter* c_;
  std::uint64_t before_;
};

// The canonical reads/writes/total triple. Every layer that accounts for
// shared-memory accesses speaks this one type: the simulator's per-process
// step counters (`sim::StepCounts` is an alias), the fault certifier's
// per-pid bounds (`fault::StepBound` is an alias), and AccessDelta regions
// below. A compare-and-swap counts as one write: it is one atomic step of
// the extended model, and folding it into `writes` keeps the paper's
// reads/writes bookkeeping intact for algorithms that never CAS.
struct AccessCounts {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t total() const { return reads + writes; }
};

// CounterDelta over a reads/writes counter pair, yielding AccessCounts.
// The standard way to measure one operation's step cost against metrics a
// World or rt Mem attached (see World::access_delta).
class AccessDelta {
 public:
  AccessDelta(const Counter& reads, const Counter& writes)
      : reads_(reads), writes_(writes) {}

  AccessCounts delta() const { return {reads_.delta(), writes_.delta()}; }
  void reset() {
    reads_.reset();
    writes_.reset();
  }

 private:
  CounterDelta reads_;
  CounterDelta writes_;
};

}  // namespace apram::obs
