#include "obs/contention.hpp"

namespace apram::obs {

#if !defined(APRAM_OBS_CONTENTION_OFF)

namespace {

std::int64_t to_ppm(double rate) {
  return static_cast<std::int64_t>(rate * 1e6 + 0.5);
}

void export_totals(Registry& registry, const std::string& prefix,
                   const ContentionTotals& t) {
  registry.gauge(prefix + ".cas_attempts")
      .set(static_cast<std::int64_t>(t.cas_attempts));
  registry.gauge(prefix + ".cas_failures")
      .set(static_cast<std::int64_t>(t.cas_failures));
  registry.gauge(prefix + ".first_refresh")
      .set(static_cast<std::int64_t>(t.first_refresh));
  registry.gauge(prefix + ".second_refresh")
      .set(static_cast<std::int64_t>(t.second_refresh));
  registry.gauge(prefix + ".helped").set(static_cast<std::int64_t>(t.helped));
  registry.gauge(prefix + ".walks").set(static_cast<std::int64_t>(t.walks()));
  // Rates are parts-per-million (gauges are integers). The raw counts above
  // are the source of truth; apram-trace heatmap recomputes exact ratios.
  registry.gauge(prefix + ".cas_fail_rate").set(to_ppm(t.cas_fail_rate()));
  registry.gauge(prefix + ".double_refresh_rate")
      .set(to_ppm(t.double_refresh_rate()));
}

}  // namespace

void NodeContention::export_gauges(Registry& registry,
                                   const std::string& prefix) const {
  if (nodes_ == 0) return;
  const int levels = num_levels();
  for (int lvl = 0; lvl < levels; ++lvl) {
    export_totals(registry, prefix + ".level" + std::to_string(lvl),
                  level_totals(lvl));
  }
  export_totals(registry, prefix, totals());
}

void HelpTally::export_gauges(Registry& registry,
                              const std::string& prefix) const {
  if (n_ == 0) return;
  std::uint64_t total_given = 0;
  std::uint64_t total_received = 0;
  for (int p = 0; p < n_; ++p) {
    const std::uint64_t g = given(p);
    const std::uint64_t r = received(p);
    total_given += g;
    total_received += r;
    registry.gauge(prefix + ".help_given.p" + std::to_string(p))
        .set(static_cast<std::int64_t>(g));
    registry.gauge(prefix + ".help_received.p" + std::to_string(p))
        .set(static_cast<std::int64_t>(r));
  }
  registry.gauge(prefix + ".help_given")
      .set(static_cast<std::int64_t>(total_given));
  registry.gauge(prefix + ".help_received")
      .set(static_cast<std::int64_t>(total_received));
}

#else  // APRAM_OBS_CONTENTION_OFF

void NodeContention::export_gauges(Registry&, const std::string&) const {}
void HelpTally::export_gauges(Registry&, const std::string&) const {}

#endif

}  // namespace apram::obs
