// apram::obs — instrumentation probe for real-thread (rt) registers.
//
// An RtProbe bundles the metric handles and tracer one instrumented object
// reports into. Registers hold an atomic pointer to a probe; unattached, the
// hot-path overhead is one relaxed load and a predictable branch. Attached,
// each access costs one relaxed fetch_add per counter plus (if a tracer is
// set and the thread has a model pid) one ring-slot write.
//
// Thread identity: trace rings are single-producer per pid, so probe events
// are emitted only from threads that declared which model process they act
// as (rt::parallel_run does this automatically). Threads without a pid still
// count — counters are safe from any thread — but produce no trace events.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace apram::obs {

// Model pid of the calling thread; -1 outside a harness body.
int thread_pid();
void set_thread_pid(int pid);

struct RtProbe {
  Counter* reads = nullptr;
  Counter* writes = nullptr;
  Counter* cas_ops = nullptr;
  Counter* cas_failures = nullptr;  // lost CASes only — the contention signal
  Tracer* tracer = nullptr;
  std::int32_t object = -1;

  void on_read() const {
    if (reads != nullptr) reads->add();
    emit(EventKind::kRead, 0);
  }

  void on_write() const {
    if (writes != nullptr) writes->add();
    emit(EventKind::kWrite, 0);
  }

  void on_cas(bool success) const {
    if (cas_ops != nullptr) cas_ops->add();
    if (!success && cas_failures != nullptr) cas_failures->add();
    emit(EventKind::kCas, success ? 1 : 0);
  }

 private:
  void emit(EventKind kind, std::uint64_t arg) const {
    if (tracer == nullptr) return;
    const int pid = thread_pid();
    if (pid < 0 || pid >= tracer->num_rings()) return;
    tracer->emit(
        TraceEvent{tracer->now_ns(), pid, kind, object, arg, thread_op()});
  }
};

}  // namespace apram::obs
