// apram::obs — operation spans.
//
// The paper's claims are per-operation (a Scan costs n²−1 reads, a TreeScan
// update costs ≤ 1+8·⌈log2 n⌉ accesses, an agreement output finishes in
// (2n+1)·log2(Δ/ε)+O(n) steps), but raw trace events are per-register. A
// span ties the two together: an operation opens a span (kOpBegin), every
// access emitted while it is the innermost open span carries its op id, and
// closing it (kOpEnd) bounds the interval. Phases (kPhase) name the
// algorithm's internal structure — collect passes, tree levels, agreement
// rounds — and kHelp marks the double-refresh helping case.
//
// Two propagation paths, one per backend:
//
//   sim — the World owns a SpanStack per process; sim::Context::op_begin()
//         etc. forward to it, and count_access/count_cas stamp the innermost
//         op id onto every access event. Span calls are local bookkeeping:
//         they cost zero model steps.
//   rt  — thread-local ambient state (set_thread_span_tracer, installed by
//         rt::parallel_run alongside the thread pid); RtBackend::Ctx
//         op_begin() etc. hit it, and RtProbe stamps thread_op() onto every
//         probed access. Without an ambient tracer every call is a cheap
//         no-op (one TLS load and a branch).
//
// Algorithms use the explicit begin/end calls, NOT RAII: a sim coroutine
// frame destroyed by a crash must leave its span open in the trace (that is
// the truth of the execution), which a destructor-emitted end would destroy.
// SpanScope below is RAII sugar for straight-line rt/test code only.
#pragma once

#include <cstdint>
#include <string>

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace apram::obs {

// What operation a span represents (TraceEvent::arg of kOpBegin/kOpEnd).
enum class OpKind : std::uint8_t {
  kNone = 0,
  kScan,        // Figure 5 lattice Scan (§6.2: n²−1 reads, n+1 writes)
  kWriteL,      // Write_L — one Scan with the join discarded
  kReadMax,     // ReadMax — one Scan of ⊥
  kPost,        // one-write snapshot contribution (§6 closing paragraph)
  kTreeUpdate,  // TreeScan update (≤ 1+8·⌈log2 n⌉ accesses)
  kTreeScan,    // TreeScan scan (1 access)
  kInput,       // Figure 2 input()
  kOutput,      // Figure 2 output() (Theorem 5 bound)
  kExecute,     // universal construction execute() (Figure 4)
  kUser,        // free-form
  // universal2 (normalized fast/slow-path simulator). Appended after kUser
  // so the serialized numbers of the older kinds stay stable in traces.
  kU2Execute,   // universal2 one-shot object operation (e.g. counter)
  kU2Insert,    // universal2 sorted-set insert
  kU2Remove,    // universal2 sorted-set remove
  kU2Contains,  // universal2 sorted-set contains (fast-path only)
  // sim scenario suite (appended — see the note above). One scenario
  // operation = one shared-memory access, so apram-trace can certify the
  // per-op cost of million-process scenario runs (`scenario_op = 1`).
  kScenarioOp,
  // farray clients (appended — see the note above): the polylog queue
  // (`queue_op` certifies enqueue+dequeue against the O(log² n) envelope)
  // and the concurrent union-find.
  kEnqueue,  // PolylogQueue enqueue (≤ 1+8·⌈log2 n⌉ accesses)
  kDequeue,  // PolylogQueue dequeue (≤ 2+8·⌈log2 n⌉ accesses)
  kUnion,    // UnionFind unite
  kFind,     // UnionFind find / same_set / num_sets (queries)
};

const char* op_kind_name(OpKind k);
OpKind op_kind_from_name(const std::string& name);

// Named phase inside an operation (TraceEvent::arg of kPhase; the event's
// object field carries the phase index — pass / tree level / round).
enum class Phase : std::uint8_t {
  kNone = 0,
  kCollect,        // one merge pass of the lattice Scan
  kDoubleCollect,  // a double-collect retry (baselines)
  kRefresh,        // one tree level's double-refresh (TreeScan update)
  kRound,          // one Figure 2 output-loop iteration
  kPublish,        // the anchor write of the universal construction
  kUser,
  // universal2 phases (appended — see the OpKind note above). The phase
  // index carries the attempt number on the fast path.
  kFastPath,       // one lock-free fast-path attempt (prepare + decision CAS)
  kSlowPath,       // entered the help queue (announce + help-until-done)
};

const char* phase_name(Phase p);

// Per-producer stack of open spans. Bounded: the deepest nesting in the
// library is execute → read_max → scan (depth 3); 8 leaves headroom for
// user composition. Overflow is a programming error, not a runtime state.
struct SpanStack {
  static constexpr int kMaxDepth = 8;

  struct Frame {
    std::uint64_t op_id = 0;
    OpKind kind = OpKind::kNone;
  };

  Frame frames[kMaxDepth];
  int depth = 0;

  void push(std::uint64_t op_id, OpKind kind) {
    APRAM_CHECK_MSG(depth < kMaxDepth, "span stack overflow");
    frames[depth] = Frame{op_id, kind};
    ++depth;
  }

  Frame pop() {
    APRAM_CHECK_MSG(depth > 0, "op_end without a matching op_begin");
    --depth;
    return frames[depth];
  }

  // Innermost open op id; 0 when no span is open.
  std::uint64_t current() const {
    return depth > 0 ? frames[depth - 1].op_id : 0;
  }
};

// --- rt ambient span state (thread-local) ---------------------------------
//
// Installed by rt::parallel_run next to set_thread_pid; rt algorithm code
// reaches it through RtBackend::Ctx::op_begin() etc., probes through
// thread_op(). Resetting the tracer clears the stack.

void set_thread_span_tracer(Tracer* tracer);
Tracer* thread_span_tracer();

// Innermost op id of the calling thread; 0 outside any span (or without an
// ambient tracer). RtProbe stamps this onto every probed access.
std::uint64_t thread_op();

// Emit span events into the ambient tracer. No-ops when no tracer is
// installed or the thread has no model pid / ring.
void rt_op_begin(OpKind kind);
void rt_op_end(OpKind kind);
void rt_op_phase(Phase phase, int index = -1);
void rt_op_help(int object);

// RAII span for straight-line rt/test/bench code (NOT for sim coroutine
// bodies — see the header comment).
class SpanScope {
 public:
  explicit SpanScope(OpKind kind) : kind_(kind) { rt_op_begin(kind); }
  ~SpanScope() { rt_op_end(kind_); }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  OpKind kind_;
};

}  // namespace apram::obs
