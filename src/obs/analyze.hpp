// apram::obs — offline trace analyzer.
//
// Re-derives the paper's per-operation bounds from a trace alone: spans
// (obs/span.hpp) tie each shared-memory access event to an operation id, so
// counting a trace's tagged accesses per op and comparing against the closed
// forms is an end-to-end check that the *executed* algorithm — not a counter
// someone remembered to bump — meets the theorem:
//
//   scan        §6.2: a lattice Scan costs ≤ n²−1 reads and ≤ n+1 writes
//   tree_update Theorem (TreeScan): an update costs ≤ 1 + 8·⌈log2 n⌉ accesses
//   tree_scan   a TreeScan scan costs exactly 1 access
//   agreement   Theorem 5: an output() finishes within
//               (2n+1)·(log2(Δ/ε)+3) + 8n accesses — the exact slackened
//               constant tests/agreement_test.cpp asserts
//   u2_help     universal2's help discipline: a complete operation emits at
//               most n−1 kHelp events (one per distinct helped process;
//               WaitFreeSim dedups per own-op epoch and never helps itself)
//   queue_op    PolylogQueue: an enqueue/dequeue completes within
//               c·⌈log2 n⌉² shared accesses (c = 12) — the Naderibeni–
//               Ruppert O(log² n) envelope. The register-model
//               implementation actually sits at ≤ 2 + 8·⌈log2 n⌉, so this
//               certifies the paper's polylog claim with generous margin.
//
// Truncation discipline: an op whose kOpBegin was overwritten in the ring
// (marked kTruncated by the Tracer) or never closed has an under-counted
// access total; such ops are excluded from bound checks and reported in
// `TraceAnalysis::truncated_ops` / `open_ops` instead of silently passing.
//
// The `tools/apram-trace` CLI wraps this library over the `events` array of
// a --metrics_out JSON artifact (obs/export.hpp schema).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/contention.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace apram::obs {

// Per-operation totals recovered from a trace.
struct OpStats {
  std::uint64_t op = 0;
  int pid = -1;
  OpKind kind = OpKind::kNone;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  bool opened = false;     // kOpBegin survived
  bool closed = false;     // kOpEnd seen
  bool truncated = false;  // kTruncated marker (ring overwrite ate the begin)
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t cas_ops = 0;
  std::uint64_t phases = 0;  // kPhase events inside this op
  std::uint64_t helps = 0;   // kHelp events inside this op

  // Total shared-memory steps; a CAS is one atomic step of the extended
  // model (same bookkeeping as obs::AccessCounts).
  std::uint64_t accesses() const { return reads + writes + cas_ops; }

  // Eligible for exact bound checking.
  bool complete() const { return opened && closed && !truncated; }
};

struct TraceAnalysis {
  std::vector<OpStats> ops;  // in first-appearance order
  int num_pids = 0;          // max event pid + 1
  std::uint64_t truncated_ops = 0;
  std::uint64_t open_ops = 0;           // begun, never ended (e.g. crashed)
  std::uint64_t untagged_accesses = 0;  // access events outside any span

  const OpStats* find(std::uint64_t op) const;
  std::vector<const OpStats*> complete_of(OpKind kind) const;
};

TraceAnalysis analyze(const std::vector<TraceEvent>& events);

// Loads the `events` array of a metrics JSON artifact written by
// obs::write_metrics_json (aborts on a file/shape it cannot read — a CI
// check must fail loudly, not skip).
std::vector<TraceEvent> load_events_json(const std::string& path);

// True iff the artifact is readable and carries a (possibly empty) "events"
// array. Lets callers fall back to gauge-derived analysis for artifacts
// exported without a tracer; unreadable files probe false (the loud abort
// belongs to whichever loader runs next).
bool metrics_json_has_events(const std::string& path);

// Scalar view of a whole metrics JSON artifact (obs/export.hpp schema):
// counters, gauges, and histogram summaries by name. Bucket arrays are
// skipped — diffing and gauge-derived heatmaps only need the summaries.
struct MetricsDoc {
  struct HistSummary {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    double mean = 0, p50 = 0, p90 = 0, p99 = 0, p999 = 0;
  };

  std::string name;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistSummary> histograms;
};

// Aborts on a file/shape it cannot read (same loud-failure contract as
// load_events_json).
MetricsDoc load_metrics_json(const std::string& path);

// --- contention heatmap ----------------------------------------------------
//
// Re-derives the per-level contention profile that obs::NodeContention
// counts online, but from a trace alone: every farray refresh level opens
// with a kPhase(kRefresh, level) event, the 1–2 CAS attempts that follow
// (until the next phase or the op's end) belong to that level, and a kHelp
// event means both attempts lost. So the trace carries exactly the
// first/second-refresh split the telemetry counters record — computing it
// both ways and comparing is the cross-check obs_test uses.
//
// Per-node rows are keyed by the CAS target's REGISTER id (ev.object of the
// kCas event) — the trace does not know tree-heap indices, only registers;
// within one structure the map is injective, so relative hotness per node
// is faithful.
struct ContentionHeatmap {
  std::vector<ContentionTotals> levels;   // [level], from kPhase(kRefresh, l)
  std::map<int, ContentionTotals> nodes;  // register id → totals
  std::map<int, int> node_level;          // register id → level observed
  std::uint64_t refresh_ops = 0;          // ops that walked ≥ 1 level

  // Level with the highest double-refresh rate (ties → the higher level);
  // -1 when no level saw a walk. In a contended farray run this is the
  // root: every updater's walk ends there, so CAS races concentrate at the
  // top — the acceptance check for the t16 bench heatmap.
  int peak_level() const;
};

ContentionHeatmap contention_heatmap(const std::vector<TraceEvent>& events);

// --- help graph ------------------------------------------------------------
//
// Who-helped-whom adjacency for universal2 operations. In a u2 span, a
// kHelp event's pid is the HELPER (the process whose own op did the work)
// and its object is the HELPED pid (WaitFreeSim dedups per own-op epoch, so
// an op contributes each helped pid at most once). Farray kHelp events
// (object = tree node, not a pid) are excluded by op kind.
struct HelpGraph {
  int num_pids = 0;  // max pid appearing as helper or helped, + 1
  std::map<std::pair<int, int>, std::uint64_t> edges;  // (helper, helped)
  std::uint64_t total_helps = 0;
  std::uint64_t ops_seen = 0;              // u2 ops in the trace
  std::uint64_t max_distinct_helped = 0;   // max per-op distinct helped pids

  std::uint64_t given(int pid) const;     // Σ edges[(pid, *)]
  std::uint64_t received(int pid) const;  // Σ edges[(*, pid)]
};

HelpGraph help_graph(const std::vector<TraceEvent>& events);

// --- bound checks ----------------------------------------------------------

struct BoundViolation {
  std::uint64_t op = 0;
  int pid = -1;
  std::string detail;  // "op 7 pid 2: 17 reads > bound 15 (n=4)"
};

struct BoundReport {
  std::string name;            // canonical bound name
  std::string formula;         // canonical formula string
  std::uint64_t checked = 0;   // complete ops inspected
  std::uint64_t excluded = 0;  // truncated/open ops of the kind, skipped
  std::vector<BoundViolation> violations;

  bool ok() const { return violations.empty(); }
};

// n defaults (n <= 0) to the trace's num_pids.
BoundReport check_scan_bound(const TraceAnalysis& a, int n = 0);
BoundReport check_tree_update_bound(const TraceAnalysis& a, int n = 0);
BoundReport check_tree_scan_bound(const TraceAnalysis& a);
// `log_ratio` is log2(Δ/ε) of the agreement instance being checked.
BoundReport check_agreement_bound(const TraceAnalysis& a, double log_ratio,
                                  int n = 0);
// Checks every complete universal2 operation (kU2Execute / kU2Insert /
// kU2Remove / kU2Contains) for helps <= n-1.
BoundReport check_u2_help_bound(const TraceAnalysis& a, int n = 0);
// Scenario-suite op (kScenarioOp): exactly 1 shared-memory access — the
// per-op cost contract of sim::run_scenario's generated writers, checked on
// traced large-n scenario artifacts.
BoundReport check_scenario_op_bound(const TraceAnalysis& a);
// Polylog-queue ops (kEnqueue / kDequeue): accesses ≤ 12·max(1, ⌈log2 n⌉)²
// (formula "clog2n" — c·⌈log2 n⌉², c = 12; the max(1, ·) keeps n = 1
// meaningful).
BoundReport check_queue_op_bound(const TraceAnalysis& a, int n = 0);

// Canonical formula for a bound name ("scan" → "n^2-1"); empty for unknown
// names. The CLI accepts `--bound name=formula` and requires the formula,
// spaces stripped, to match — a checksum that the invoker and the analyzer
// agree on which theorem is being re-derived.
std::string bound_formula(const std::string& name);

// One human-readable line per report, "PASS"/"FAIL"-prefixed.
std::string format_report(const BoundReport& r);

}  // namespace apram::obs
