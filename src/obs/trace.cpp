#include "obs/trace.hpp"

#include <algorithm>
#include <set>

namespace apram::obs {

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kRead:
      return "read";
    case EventKind::kWrite:
      return "write";
    case EventKind::kCas:
      return "cas";
    case EventKind::kSpawn:
      return "spawn";
    case EventKind::kDone:
      return "done";
    case EventKind::kCrash:
      return "crash";
    case EventKind::kUser:
      return "user";
    case EventKind::kOpBegin:
      return "op_begin";
    case EventKind::kOpEnd:
      return "op_end";
    case EventKind::kPhase:
      return "phase";
    case EventKind::kHelp:
      return "help";
    case EventKind::kTruncated:
      return "truncated";
  }
  return "?";
}

EventKind kind_from_name(const std::string& name) {
  static constexpr EventKind kAll[] = {
      EventKind::kRead,    EventKind::kWrite, EventKind::kCas,
      EventKind::kSpawn,   EventKind::kDone,  EventKind::kCrash,
      EventKind::kUser,    EventKind::kOpBegin, EventKind::kOpEnd,
      EventKind::kPhase,   EventKind::kHelp,  EventKind::kTruncated,
  };
  for (EventKind k : kAll) {
    if (name == kind_name(k)) return k;
  }
  APRAM_CHECK_MSG(false, "unknown trace event kind name");
  return EventKind::kUser;  // unreachable
}

Tracer::Tracer(int num_rings, std::size_t capacity_per_ring)
    : cap_(capacity_per_ring), epoch_(std::chrono::steady_clock::now()) {
  APRAM_CHECK(num_rings >= 1);
  APRAM_CHECK(capacity_per_ring >= 1);
  rings_.reserve(static_cast<std::size_t>(num_rings));
  for (int i = 0; i < num_rings; ++i) {
    auto ring = std::make_unique<Ring>();
    ring->slots.resize(cap_);
    rings_.push_back(std::move(ring));
  }
}

void Tracer::emit(const TraceEvent& ev) {
  const int r = ev.pid >= 0 ? ev.pid : 0;
  APRAM_CHECK_MSG(r < num_rings(), "trace event pid outside tracer rings");
  if (sampler_.active() && !sampler_.keep(ev.pid, ev.op)) {
    sampled_out_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Ring& ring = *rings_[static_cast<std::size_t>(r)];
  const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  ring.slots[static_cast<std::size_t>(h % cap_)] = ev;
  ring.head.store(h + 1, std::memory_order_release);
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::collect(std::vector<TraceEvent>& out,
                     CollectStats* stats) const {
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    const Ring& ring = *rings_[r];
    const std::uint64_t h = ring.head.load(std::memory_order_acquire);
    const std::uint64_t start = h > cap_ ? h - cap_ : 0;
    const std::size_t first = out.size();
    for (std::uint64_t i = start; i < h; ++i) {
      out.push_back(ring.slots[static_cast<std::size_t>(i % cap_)]);
    }
    if (stats != nullptr) stats->survived += h - start;
    if (start == 0) continue;  // nothing overwritten in this ring
    // Ring overflow: any op id referenced by a surviving event of this ring
    // without a surviving kOpBegin lost its opening to overwrite. Mark each
    // once, at the ring's earliest surviving timestamp, so analyzers can
    // exclude the op instead of under-counting its accesses. Markers are
    // appended to `out` ONLY — they never occupy ring slots, so they cannot
    // displace real events or perturb the recorded/dropped conservation law
    // (see CollectStats in the header).
    std::set<std::uint64_t> opened;
    std::set<std::uint64_t> referenced;
    for (std::size_t i = first; i < out.size(); ++i) {
      if (out[i].op == 0) continue;
      if (out[i].kind == EventKind::kOpBegin) {
        opened.insert(out[i].op);
      } else {
        referenced.insert(out[i].op);
      }
    }
    const std::uint64_t earliest = out[first].when;
    const std::int32_t pid = out[first].pid;
    for (std::uint64_t op : referenced) {
      if (opened.count(op) != 0) continue;
      out.push_back(TraceEvent{earliest, pid, EventKind::kTruncated,
                               /*object=*/-1, /*arg=*/0, op});
      if (stats != nullptr) ++stats->synthesized;
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.when != b.when) return a.when < b.when;
                     return a.pid < b.pid;
                   });
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  collect(out, nullptr);
  return out;
}

std::vector<TraceEvent> Tracer::events(CollectStats& stats) const {
  stats = CollectStats{};
  std::vector<TraceEvent> out;
  collect(out, &stats);
  return out;
}

std::vector<TraceEvent> Tracer::drain() {
  std::vector<TraceEvent> out;
  collect(out, nullptr);
  for (auto& ring : rings_) {
    const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
    retired_recorded_ += h;
    retired_dropped_ += h > cap_ ? h - cap_ : 0;
    ring->head.store(0, std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::uint64_t total = retired_recorded_;
  for (const auto& ring : rings_) {
    total += ring->head.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = retired_dropped_;
  for (const auto& ring : rings_) {
    const std::uint64_t h = ring->head.load(std::memory_order_acquire);
    total += h > cap_ ? h - cap_ : 0;
  }
  return total;
}

}  // namespace apram::obs
