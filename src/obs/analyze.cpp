#include "obs/analyze.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "util/assert.hpp"

namespace apram::obs {

namespace {

OpStats& stats_for(std::map<std::uint64_t, OpStats>& by_id,
                   std::vector<std::uint64_t>& order, std::uint64_t op) {
  auto [it, inserted] = by_id.try_emplace(op);
  if (inserted) {
    it->second.op = op;
    order.push_back(op);
  }
  return it->second;
}

}  // namespace

TraceAnalysis analyze(const std::vector<TraceEvent>& events) {
  TraceAnalysis out;
  std::map<std::uint64_t, OpStats> by_id;
  std::vector<std::uint64_t> order;

  for (const TraceEvent& ev : events) {
    if (ev.pid >= 0) out.num_pids = std::max(out.num_pids, ev.pid + 1);
    switch (ev.kind) {
      case EventKind::kOpBegin: {
        OpStats& s = stats_for(by_id, order, ev.op);
        s.pid = ev.pid;
        s.kind = static_cast<OpKind>(ev.arg);
        s.begin = ev.when;
        s.opened = true;
        break;
      }
      case EventKind::kOpEnd: {
        OpStats& s = stats_for(by_id, order, ev.op);
        // kOpEnd is self-describing (arg = kind) precisely so an end whose
        // begin was overwritten still identifies its operation.
        if (!s.opened) {
          s.pid = ev.pid;
          s.kind = static_cast<OpKind>(ev.arg);
        }
        s.end = ev.when;
        s.closed = true;
        break;
      }
      case EventKind::kTruncated:
        stats_for(by_id, order, ev.op).truncated = true;
        break;
      case EventKind::kPhase:
        if (ev.op != 0) ++stats_for(by_id, order, ev.op).phases;
        break;
      case EventKind::kHelp:
        if (ev.op != 0) ++stats_for(by_id, order, ev.op).helps;
        break;
      case EventKind::kRead:
      case EventKind::kWrite:
      case EventKind::kCas: {
        if (ev.op == 0) {
          ++out.untagged_accesses;
          break;
        }
        OpStats& s = stats_for(by_id, order, ev.op);
        if (ev.kind == EventKind::kRead) {
          ++s.reads;
        } else if (ev.kind == EventKind::kWrite) {
          ++s.writes;
        } else {
          ++s.cas_ops;
        }
        break;
      }
      case EventKind::kSpawn:
      case EventKind::kDone:
      case EventKind::kCrash:
      case EventKind::kUser:
        break;
    }
  }

  out.ops.reserve(order.size());
  for (std::uint64_t op : order) {
    OpStats& s = by_id[op];
    // An op referenced only by accesses/ends, with no surviving begin and no
    // marker, is truncated in effect (e.g. collected after a partial drain).
    if (!s.opened) s.truncated = true;
    if (s.truncated) {
      ++out.truncated_ops;
    } else if (!s.closed) {
      ++out.open_ops;
    }
    out.ops.push_back(s);
  }
  return out;
}

const OpStats* TraceAnalysis::find(std::uint64_t op) const {
  for (const OpStats& s : ops) {
    if (s.op == op) return &s;
  }
  return nullptr;
}

std::vector<const OpStats*> TraceAnalysis::complete_of(OpKind kind) const {
  std::vector<const OpStats*> out;
  for (const OpStats& s : ops) {
    if (s.kind == kind && s.complete()) out.push_back(&s);
  }
  return out;
}

// --- metrics-JSON event loader ---------------------------------------------
//
// Reads back exactly what obs::export_json writes: an "events" array of flat
// objects with numeric fields and a quoted "kind". Not a general JSON
// parser — it aborts on anything it does not recognise, which is the right
// behaviour for a CI bound checker (a malformed artifact must fail the
// check, not be half-read).

namespace {

struct Cursor {
  const std::string& s;
  std::size_t i = 0;

  bool done() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  void skip_ws() {
    while (!done() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool consume(char c) {
    skip_ws();
    if (done() || s[i] != c) return false;
    ++i;
    return true;
  }
  void expect(char c) {
    APRAM_CHECK_MSG(consume(c), "malformed events JSON: unexpected token");
  }

  std::string string_lit() {
    expect('"');
    std::string out;
    while (!done() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;  // fields here never escape
      out.push_back(s[i]);
      ++i;
    }
    expect('"');
    return out;
  }

  std::int64_t number() {
    skip_ws();
    std::size_t end = i;
    if (end < s.size() && s[end] == '-') ++end;
    while (end < s.size() && std::isdigit(static_cast<unsigned char>(s[end])))
      ++end;
    APRAM_CHECK_MSG(end > i, "malformed events JSON: expected a number");
    const std::int64_t v = std::stoll(s.substr(i, end - i));
    i = end;
    return v;
  }
};

}  // namespace

std::vector<TraceEvent> load_events_json(const std::string& path) {
  std::ifstream in(path);
  APRAM_CHECK_MSG(in.good(), "cannot open trace artifact");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const std::size_t at = text.find("\"events\"");
  APRAM_CHECK_MSG(at != std::string::npos,
                  "trace artifact has no \"events\" array — was the bench "
                  "run with a tracer attached?");
  Cursor cur{text, at + std::string("\"events\"").size()};
  cur.expect(':');
  cur.expect('[');

  std::vector<TraceEvent> events;
  cur.skip_ws();
  if (cur.consume(']')) return events;
  do {
    cur.expect('{');
    TraceEvent ev;
    do {
      const std::string key = cur.string_lit();
      cur.expect(':');
      if (key == "kind") {
        ev.kind = kind_from_name(cur.string_lit());
      } else {
        const std::int64_t v = cur.number();
        if (key == "when") {
          ev.when = static_cast<std::uint64_t>(v);
        } else if (key == "pid") {
          ev.pid = static_cast<std::int32_t>(v);
        } else if (key == "object") {
          ev.object = static_cast<std::int32_t>(v);
        } else if (key == "arg") {
          ev.arg = static_cast<std::uint64_t>(v);
        } else if (key == "op") {
          ev.op = static_cast<std::uint64_t>(v);
        } else {
          APRAM_CHECK_MSG(false, "malformed events JSON: unknown event key");
        }
      }
    } while (cur.consume(','));
    cur.expect('}');
    events.push_back(ev);
  } while (cur.consume(','));
  cur.expect(']');
  return events;
}

// --- bound checks ----------------------------------------------------------

namespace {

int ceil_log2(int n) {
  int m = 1;
  int h = 0;
  while (m < n) {
    m *= 2;
    ++h;
  }
  return h;
}

int effective_n(const TraceAnalysis& a, int n) { return n > 0 ? n : a.num_pids; }

void check_ops(const TraceAnalysis& a, OpKind kind, BoundReport& report,
               const std::function<void(const OpStats&, BoundReport&)>& one) {
  for (const OpStats& s : a.ops) {
    if (s.kind != kind) continue;
    if (!s.complete()) {
      ++report.excluded;
      continue;
    }
    ++report.checked;
    one(s, report);
  }
}

void violation(BoundReport& report, const OpStats& s, const std::string& what,
               std::uint64_t got, std::uint64_t bound, int n) {
  std::ostringstream os;
  os << "op " << s.op << " pid " << s.pid << ": " << got << ' ' << what
     << " > bound " << bound << " (n=" << n << ")";
  report.violations.push_back(BoundViolation{s.op, s.pid, os.str()});
}

}  // namespace

BoundReport check_scan_bound(const TraceAnalysis& a, int n) {
  const int nn = effective_n(a, n);
  BoundReport report{.name = "scan", .formula = bound_formula("scan")};
  APRAM_CHECK_MSG(nn >= 1, "scan bound needs n >= 1");
  const std::uint64_t un = static_cast<std::uint64_t>(nn);
  const std::uint64_t read_bound = un * un - 1;
  const std::uint64_t write_bound = un + 1;
  check_ops(a, OpKind::kScan, report,
            [&](const OpStats& s, BoundReport& r) {
              if (s.reads > read_bound)
                violation(r, s, "reads", s.reads, read_bound, nn);
              if (s.writes + s.cas_ops > write_bound)
                violation(r, s, "writes", s.writes + s.cas_ops, write_bound,
                          nn);
            });
  return report;
}

BoundReport check_tree_update_bound(const TraceAnalysis& a, int n) {
  const int nn = effective_n(a, n);
  BoundReport report{.name = "tree_update",
                     .formula = bound_formula("tree_update")};
  APRAM_CHECK_MSG(nn >= 1, "tree_update bound needs n >= 1");
  const std::uint64_t bound =
      1 + 8ull * static_cast<std::uint64_t>(ceil_log2(nn));
  check_ops(a, OpKind::kTreeUpdate, report,
            [&](const OpStats& s, BoundReport& r) {
              if (s.accesses() > bound)
                violation(r, s, "accesses", s.accesses(), bound, nn);
            });
  return report;
}

BoundReport check_tree_scan_bound(const TraceAnalysis& a) {
  BoundReport report{.name = "tree_scan",
                     .formula = bound_formula("tree_scan")};
  check_ops(a, OpKind::kTreeScan, report,
            [&](const OpStats& s, BoundReport& r) {
              if (s.accesses() > 1)
                violation(r, s, "accesses", s.accesses(), 1, a.num_pids);
            });
  return report;
}

BoundReport check_agreement_bound(const TraceAnalysis& a, double log_ratio,
                                  int n) {
  const int nn = effective_n(a, n);
  BoundReport report{.name = "agreement",
                     .formula = bound_formula("agreement")};
  APRAM_CHECK_MSG(nn >= 1, "agreement bound needs n >= 1");
  APRAM_CHECK_MSG(log_ratio >= 0.0, "agreement bound needs log2(delta/eps)");
  // Theorem 5 with the same slackened constants tests/agreement_test.cpp
  // asserts: (2n+1)·(log2(Δ/ε)+3) + 8n.
  const double bound =
      (2.0 * nn + 1.0) * (log_ratio + 3.0) + 8.0 * nn;
  const std::uint64_t ubound = static_cast<std::uint64_t>(bound);
  check_ops(a, OpKind::kOutput, report,
            [&](const OpStats& s, BoundReport& r) {
              if (static_cast<double>(s.accesses()) > bound)
                violation(r, s, "accesses", s.accesses(), ubound, nn);
            });
  return report;
}

BoundReport check_u2_help_bound(const TraceAnalysis& a, int n) {
  const int nn = effective_n(a, n);
  BoundReport report{.name = "u2_help", .formula = bound_formula("u2_help")};
  APRAM_CHECK_MSG(nn >= 1, "u2_help bound needs n >= 1");
  const std::uint64_t bound = static_cast<std::uint64_t>(nn) - 1;
  for (OpKind kind : {OpKind::kU2Execute, OpKind::kU2Insert,
                      OpKind::kU2Remove, OpKind::kU2Contains}) {
    check_ops(a, kind, report, [&](const OpStats& s, BoundReport& r) {
      if (s.helps > bound) violation(r, s, "helps", s.helps, bound, nn);
    });
  }
  return report;
}

BoundReport check_queue_op_bound(const TraceAnalysis& a, int n) {
  const int nn = effective_n(a, n);
  BoundReport report{.name = "queue_op", .formula = bound_formula("queue_op")};
  APRAM_CHECK_MSG(nn >= 1, "queue_op bound needs n >= 1");
  // c·⌈log2 n⌉² with c = 12, clamped so n = 1 still has a positive budget.
  const std::uint64_t h =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(ceil_log2(nn)));
  const std::uint64_t bound = 12ull * h * h;
  for (OpKind kind : {OpKind::kEnqueue, OpKind::kDequeue}) {
    check_ops(a, kind, report, [&](const OpStats& s, BoundReport& r) {
      if (s.accesses() > bound)
        violation(r, s, "accesses", s.accesses(), bound, nn);
    });
  }
  return report;
}

BoundReport check_scenario_op_bound(const TraceAnalysis& a) {
  BoundReport report{.name = "scenario_op",
                     .formula = bound_formula("scenario_op")};
  check_ops(a, OpKind::kScenarioOp, report,
            [&](const OpStats& s, BoundReport& r) {
              if (s.accesses() != 1)
                violation(r, s, "accesses", s.accesses(), 1, a.num_pids);
            });
  return report;
}

std::string bound_formula(const std::string& name) {
  if (name == "scan") return "n^2-1";
  if (name == "tree_update") return "1+8ceil(log2n)";
  if (name == "tree_scan") return "1";
  if (name == "agreement") return "(2n+1)(log2(delta/eps)+3)+8n";
  if (name == "u2_help") return "n-1";
  if (name == "scenario_op") return "1";
  // Shorthand the CLI handshake uses for c·⌈log2 n⌉² with c = 12.
  if (name == "queue_op") return "clog2n";
  return "";
}

std::string format_report(const BoundReport& r) {
  std::ostringstream os;
  os << (r.ok() ? "PASS" : "FAIL") << ' ' << r.name << " (" << r.formula
     << "): " << r.checked << " ops checked";
  if (r.excluded != 0) os << ", " << r.excluded << " truncated/open excluded";
  if (!r.ok()) {
    os << ", " << r.violations.size() << " violation(s)";
    for (const BoundViolation& v : r.violations) os << "\n  " << v.detail;
  }
  return os.str();
}

}  // namespace apram::obs
