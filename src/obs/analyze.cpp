#include "obs/analyze.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "util/assert.hpp"

namespace apram::obs {

namespace {

OpStats& stats_for(std::map<std::uint64_t, OpStats>& by_id,
                   std::vector<std::uint64_t>& order, std::uint64_t op) {
  auto [it, inserted] = by_id.try_emplace(op);
  if (inserted) {
    it->second.op = op;
    order.push_back(op);
  }
  return it->second;
}

}  // namespace

TraceAnalysis analyze(const std::vector<TraceEvent>& events) {
  TraceAnalysis out;
  std::map<std::uint64_t, OpStats> by_id;
  std::vector<std::uint64_t> order;

  for (const TraceEvent& ev : events) {
    if (ev.pid >= 0) out.num_pids = std::max(out.num_pids, ev.pid + 1);
    switch (ev.kind) {
      case EventKind::kOpBegin: {
        OpStats& s = stats_for(by_id, order, ev.op);
        s.pid = ev.pid;
        s.kind = static_cast<OpKind>(ev.arg);
        s.begin = ev.when;
        s.opened = true;
        break;
      }
      case EventKind::kOpEnd: {
        OpStats& s = stats_for(by_id, order, ev.op);
        // kOpEnd is self-describing (arg = kind) precisely so an end whose
        // begin was overwritten still identifies its operation.
        if (!s.opened) {
          s.pid = ev.pid;
          s.kind = static_cast<OpKind>(ev.arg);
        }
        s.end = ev.when;
        s.closed = true;
        break;
      }
      case EventKind::kTruncated:
        stats_for(by_id, order, ev.op).truncated = true;
        break;
      case EventKind::kPhase:
        if (ev.op != 0) ++stats_for(by_id, order, ev.op).phases;
        break;
      case EventKind::kHelp:
        if (ev.op != 0) ++stats_for(by_id, order, ev.op).helps;
        break;
      case EventKind::kRead:
      case EventKind::kWrite:
      case EventKind::kCas: {
        if (ev.op == 0) {
          ++out.untagged_accesses;
          break;
        }
        OpStats& s = stats_for(by_id, order, ev.op);
        if (ev.kind == EventKind::kRead) {
          ++s.reads;
        } else if (ev.kind == EventKind::kWrite) {
          ++s.writes;
        } else {
          ++s.cas_ops;
        }
        break;
      }
      case EventKind::kSpawn:
      case EventKind::kDone:
      case EventKind::kCrash:
      case EventKind::kUser:
        break;
    }
  }

  out.ops.reserve(order.size());
  for (std::uint64_t op : order) {
    OpStats& s = by_id[op];
    // An op referenced only by accesses/ends, with no surviving begin and no
    // marker, is truncated in effect (e.g. collected after a partial drain).
    if (!s.opened) s.truncated = true;
    if (s.truncated) {
      ++out.truncated_ops;
    } else if (!s.closed) {
      ++out.open_ops;
    }
    out.ops.push_back(s);
  }
  return out;
}

const OpStats* TraceAnalysis::find(std::uint64_t op) const {
  for (const OpStats& s : ops) {
    if (s.op == op) return &s;
  }
  return nullptr;
}

std::vector<const OpStats*> TraceAnalysis::complete_of(OpKind kind) const {
  std::vector<const OpStats*> out;
  for (const OpStats& s : ops) {
    if (s.kind == kind && s.complete()) out.push_back(&s);
  }
  return out;
}

// --- metrics-JSON event loader ---------------------------------------------
//
// Reads back exactly what obs::export_json writes: an "events" array of flat
// objects with numeric fields and a quoted "kind". Not a general JSON
// parser — it aborts on anything it does not recognise, which is the right
// behaviour for a CI bound checker (a malformed artifact must fail the
// check, not be half-read).

namespace {

struct Cursor {
  const std::string& s;
  std::size_t i = 0;

  bool done() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  void skip_ws() {
    while (!done() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool consume(char c) {
    skip_ws();
    if (done() || s[i] != c) return false;
    ++i;
    return true;
  }
  void expect(char c) {
    APRAM_CHECK_MSG(consume(c), "malformed events JSON: unexpected token");
  }

  std::string string_lit() {
    expect('"');
    std::string out;
    while (!done() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;  // fields here never escape
      out.push_back(s[i]);
      ++i;
    }
    expect('"');
    return out;
  }

  std::int64_t number() {
    skip_ws();
    std::size_t end = i;
    if (end < s.size() && s[end] == '-') ++end;
    while (end < s.size() && std::isdigit(static_cast<unsigned char>(s[end])))
      ++end;
    APRAM_CHECK_MSG(end > i, "malformed events JSON: expected a number");
    const std::int64_t v = std::stoll(s.substr(i, end - i));
    i = end;
    return v;
  }

  // Histogram summaries (mean, percentiles) are streamed with default
  // ostream float formatting — "12.3", "1.2e+07" — so this accepts the
  // full [-+0-9.eE] alphabet and lets stod validate.
  double float_number() {
    skip_ws();
    std::size_t end = i;
    auto in_float = [&](char c) {
      return std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
             c == '+' || c == '.' || c == 'e' || c == 'E';
    };
    while (end < s.size() && in_float(s[end])) ++end;
    APRAM_CHECK_MSG(end > i, "malformed metrics JSON: expected a number");
    const double v = std::stod(s.substr(i, end - i));
    i = end;
    return v;
  }
};

}  // namespace

std::vector<TraceEvent> load_events_json(const std::string& path) {
  std::ifstream in(path);
  APRAM_CHECK_MSG(in.good(), "cannot open trace artifact");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const std::size_t at = text.find("\"events\"");
  APRAM_CHECK_MSG(at != std::string::npos,
                  "trace artifact has no \"events\" array — was the bench "
                  "run with a tracer attached?");
  Cursor cur{text, at + std::string("\"events\"").size()};
  cur.expect(':');
  cur.expect('[');

  std::vector<TraceEvent> events;
  cur.skip_ws();
  if (cur.consume(']')) return events;
  do {
    cur.expect('{');
    TraceEvent ev;
    do {
      const std::string key = cur.string_lit();
      cur.expect(':');
      if (key == "kind") {
        ev.kind = kind_from_name(cur.string_lit());
      } else {
        const std::int64_t v = cur.number();
        if (key == "when") {
          ev.when = static_cast<std::uint64_t>(v);
        } else if (key == "pid") {
          ev.pid = static_cast<std::int32_t>(v);
        } else if (key == "object") {
          ev.object = static_cast<std::int32_t>(v);
        } else if (key == "arg") {
          ev.arg = static_cast<std::uint64_t>(v);
        } else if (key == "op") {
          ev.op = static_cast<std::uint64_t>(v);
        } else {
          APRAM_CHECK_MSG(false, "malformed events JSON: unknown event key");
        }
      }
    } while (cur.consume(','));
    cur.expect('}');
    events.push_back(ev);
  } while (cur.consume(','));
  cur.expect(']');
  return events;
}

bool metrics_json_has_events(const std::string& path) {
  std::ifstream in(path);
  // A probe, not a loader: an unreadable file is "no events here" — the
  // loud abort belongs to whichever loader the caller picks next.
  if (!in.good()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str().find("\"events\"") != std::string::npos;
}

MetricsDoc load_metrics_json(const std::string& path) {
  std::ifstream in(path);
  APRAM_CHECK_MSG(in.good(), "cannot open metrics artifact");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  MetricsDoc doc;

  // The exporter's layout is fixed: optional "name" first, then the three
  // metric sections. Each is located by its literal header — fine for a
  // reader of our own writer, loud (APRAM_CHECK) on anything else.
  if (const std::size_t at = text.find("\"name\": ");
      at != std::string::npos && at < text.find("\"counters\"")) {
    Cursor cur{text, at + std::string("\"name\": ").size()};
    doc.name = cur.string_lit();
  }

  auto section = [&](const char* header) {
    const std::size_t at = text.find(header);
    APRAM_CHECK_MSG(at != std::string::npos,
                    "metrics artifact is missing a metric section");
    Cursor cur{text, at + std::string(header).size()};
    cur.expect(':');
    cur.expect('{');
    return cur;
  };

  {
    Cursor cur = section("\"counters\"");
    cur.skip_ws();
    if (!cur.consume('}')) {
      do {
        const std::string key = cur.string_lit();
        cur.expect(':');
        doc.counters[key] = static_cast<std::uint64_t>(cur.number());
      } while (cur.consume(','));
      cur.expect('}');
    }
  }
  {
    Cursor cur = section("\"gauges\"");
    cur.skip_ws();
    if (!cur.consume('}')) {
      do {
        const std::string key = cur.string_lit();
        cur.expect(':');
        doc.gauges[key] = cur.number();
      } while (cur.consume(','));
      cur.expect('}');
    }
  }
  {
    Cursor cur = section("\"histograms\"");
    cur.skip_ws();
    if (!cur.consume('}')) {
      do {
        const std::string name = cur.string_lit();
        cur.expect(':');
        cur.expect('{');
        MetricsDoc::HistSummary h;
        do {
          const std::string key = cur.string_lit();
          cur.expect(':');
          if (key == "count") {
            h.count = static_cast<std::uint64_t>(cur.number());
          } else if (key == "sum") {
            h.sum = static_cast<std::uint64_t>(cur.number());
          } else if (key == "mean") {
            h.mean = cur.float_number();
          } else if (key == "p50") {
            h.p50 = cur.float_number();
          } else if (key == "p90") {
            h.p90 = cur.float_number();
          } else if (key == "p99") {
            h.p99 = cur.float_number();
          } else if (key == "p999") {
            h.p999 = cur.float_number();
          } else if (key == "buckets") {
            cur.expect('[');
            cur.skip_ws();
            if (!cur.consume(']')) {
              do {
                cur.expect('[');
                cur.number();
                cur.expect(',');
                cur.number();
                cur.expect(']');
              } while (cur.consume(','));
              cur.expect(']');
            }
          } else {
            APRAM_CHECK_MSG(false,
                            "malformed metrics JSON: unknown histogram key");
          }
        } while (cur.consume(','));
        cur.expect('}');
        doc.histograms[name] = h;
      } while (cur.consume(','));
      cur.expect('}');
    }
  }
  return doc;
}

// --- contention heatmap ----------------------------------------------------

namespace {

// One in-flight refresh level of one operation (see the header comment on
// contention_heatmap for the event grammar).
struct LevelSegment {
  int level = -1;
  int node = -1;  // register id of the CAS target
  int attempts = 0;
  int installed_attempt = -1;  // -1 = no successful CAS in this segment
};

void finalize_segment(ContentionHeatmap& hm, LevelSegment& seg) {
  if (seg.level < 0) return;
  if (hm.levels.size() <= static_cast<std::size_t>(seg.level)) {
    hm.levels.resize(static_cast<std::size_t>(seg.level) + 1);
  }
  ContentionTotals t;
  t.cas_attempts = static_cast<std::uint64_t>(seg.attempts);
  t.cas_failures = static_cast<std::uint64_t>(
      seg.attempts - (seg.installed_attempt >= 0 ? 1 : 0));
  if (seg.installed_attempt == 0) {
    t.first_refresh = 1;
  } else if (seg.installed_attempt >= 1) {
    t.second_refresh = 1;
  } else {
    t.helped = 1;  // no CAS of this walk installed — a rival covered it
  }
  hm.levels[static_cast<std::size_t>(seg.level)] += t;
  if (seg.node >= 0) {
    hm.nodes[seg.node] += t;
    hm.node_level[seg.node] = seg.level;
  }
  seg = LevelSegment{};
}

}  // namespace

ContentionHeatmap contention_heatmap(const std::vector<TraceEvent>& events) {
  ContentionHeatmap hm;
  std::map<std::uint64_t, LevelSegment> open;  // op → current level segment
  std::map<std::uint64_t, bool> walked;        // op saw ≥ 1 refresh phase

  for (const TraceEvent& ev : events) {
    if (ev.op == 0) continue;
    switch (ev.kind) {
      case EventKind::kPhase: {
        LevelSegment& seg = open[ev.op];
        finalize_segment(hm, seg);
        if (static_cast<Phase>(ev.arg) == Phase::kRefresh) {
          seg.level = ev.object;
          walked[ev.op] = true;
        }
        break;
      }
      case EventKind::kCas: {
        auto it = open.find(ev.op);
        if (it == open.end() || it->second.level < 0) break;
        LevelSegment& seg = it->second;
        seg.node = ev.object;
        if (ev.arg != 0 && seg.installed_attempt < 0) {
          seg.installed_attempt = seg.attempts;
        }
        ++seg.attempts;
        break;
      }
      case EventKind::kOpEnd:
      case EventKind::kTruncated: {
        auto it = open.find(ev.op);
        if (it != open.end()) {
          finalize_segment(hm, it->second);
          open.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }
  for (auto& [op, seg] : open) finalize_segment(hm, seg);
  for (const auto& [op, w] : walked) {
    if (w) ++hm.refresh_ops;
  }
  return hm;
}

int ContentionHeatmap::peak_level() const {
  int peak = -1;
  double best = -1.0;
  for (std::size_t l = 0; l < levels.size(); ++l) {
    if (levels[l].walks() == 0) continue;
    const double r = levels[l].double_refresh_rate();
    if (r >= best) {  // ties → the higher level (closer to the root)
      best = r;
      peak = static_cast<int>(l);
    }
  }
  return peak;
}

// --- help graph ------------------------------------------------------------

namespace {

bool is_u2_kind(OpKind k) {
  return k == OpKind::kU2Execute || k == OpKind::kU2Insert ||
         k == OpKind::kU2Remove || k == OpKind::kU2Contains;
}

}  // namespace

HelpGraph help_graph(const std::vector<TraceEvent>& events) {
  HelpGraph g;
  // Pass 1: op → kind (begins and self-describing ends both carry it).
  std::map<std::uint64_t, OpKind> kind_of;
  for (const TraceEvent& ev : events) {
    if (ev.kind == EventKind::kOpBegin || ev.kind == EventKind::kOpEnd) {
      kind_of[ev.op] = static_cast<OpKind>(ev.arg);
    }
  }
  // Pass 2: u2 kHelp edges — helper = event pid, helped = event object.
  std::map<std::uint64_t, std::set<int>> helped_of_op;
  for (const TraceEvent& ev : events) {
    if (ev.kind != EventKind::kHelp || ev.op == 0) continue;
    auto it = kind_of.find(ev.op);
    if (it == kind_of.end() || !is_u2_kind(it->second)) continue;
    const int helper = ev.pid;
    const int helped = ev.object;
    if (helper < 0 || helped < 0) continue;
    ++g.edges[{helper, helped}];
    ++g.total_helps;
    g.num_pids = std::max(g.num_pids, std::max(helper, helped) + 1);
    helped_of_op[ev.op].insert(helped);
  }
  for (const auto& [op, kind] : kind_of) {
    if (is_u2_kind(kind)) ++g.ops_seen;
  }
  for (const auto& [op, helped] : helped_of_op) {
    g.max_distinct_helped =
        std::max(g.max_distinct_helped, static_cast<std::uint64_t>(helped.size()));
  }
  return g;
}

std::uint64_t HelpGraph::given(int pid) const {
  std::uint64_t t = 0;
  for (const auto& [edge, count] : edges) {
    if (edge.first == pid) t += count;
  }
  return t;
}

std::uint64_t HelpGraph::received(int pid) const {
  std::uint64_t t = 0;
  for (const auto& [edge, count] : edges) {
    if (edge.second == pid) t += count;
  }
  return t;
}

// --- bound checks ----------------------------------------------------------

namespace {

int ceil_log2(int n) {
  int m = 1;
  int h = 0;
  while (m < n) {
    m *= 2;
    ++h;
  }
  return h;
}

int effective_n(const TraceAnalysis& a, int n) { return n > 0 ? n : a.num_pids; }

void check_ops(const TraceAnalysis& a, OpKind kind, BoundReport& report,
               const std::function<void(const OpStats&, BoundReport&)>& one) {
  for (const OpStats& s : a.ops) {
    if (s.kind != kind) continue;
    if (!s.complete()) {
      ++report.excluded;
      continue;
    }
    ++report.checked;
    one(s, report);
  }
}

void violation(BoundReport& report, const OpStats& s, const std::string& what,
               std::uint64_t got, std::uint64_t bound, int n) {
  std::ostringstream os;
  os << "op " << s.op << " pid " << s.pid << ": " << got << ' ' << what
     << " > bound " << bound << " (n=" << n << ")";
  report.violations.push_back(BoundViolation{s.op, s.pid, os.str()});
}

}  // namespace

BoundReport check_scan_bound(const TraceAnalysis& a, int n) {
  const int nn = effective_n(a, n);
  BoundReport report{.name = "scan", .formula = bound_formula("scan")};
  APRAM_CHECK_MSG(nn >= 1, "scan bound needs n >= 1");
  const std::uint64_t un = static_cast<std::uint64_t>(nn);
  const std::uint64_t read_bound = un * un - 1;
  const std::uint64_t write_bound = un + 1;
  check_ops(a, OpKind::kScan, report,
            [&](const OpStats& s, BoundReport& r) {
              if (s.reads > read_bound)
                violation(r, s, "reads", s.reads, read_bound, nn);
              if (s.writes + s.cas_ops > write_bound)
                violation(r, s, "writes", s.writes + s.cas_ops, write_bound,
                          nn);
            });
  return report;
}

BoundReport check_tree_update_bound(const TraceAnalysis& a, int n) {
  const int nn = effective_n(a, n);
  BoundReport report{.name = "tree_update",
                     .formula = bound_formula("tree_update")};
  APRAM_CHECK_MSG(nn >= 1, "tree_update bound needs n >= 1");
  const std::uint64_t bound =
      1 + 8ull * static_cast<std::uint64_t>(ceil_log2(nn));
  check_ops(a, OpKind::kTreeUpdate, report,
            [&](const OpStats& s, BoundReport& r) {
              if (s.accesses() > bound)
                violation(r, s, "accesses", s.accesses(), bound, nn);
            });
  return report;
}

BoundReport check_tree_scan_bound(const TraceAnalysis& a) {
  BoundReport report{.name = "tree_scan",
                     .formula = bound_formula("tree_scan")};
  check_ops(a, OpKind::kTreeScan, report,
            [&](const OpStats& s, BoundReport& r) {
              if (s.accesses() > 1)
                violation(r, s, "accesses", s.accesses(), 1, a.num_pids);
            });
  return report;
}

BoundReport check_agreement_bound(const TraceAnalysis& a, double log_ratio,
                                  int n) {
  const int nn = effective_n(a, n);
  BoundReport report{.name = "agreement",
                     .formula = bound_formula("agreement")};
  APRAM_CHECK_MSG(nn >= 1, "agreement bound needs n >= 1");
  APRAM_CHECK_MSG(log_ratio >= 0.0, "agreement bound needs log2(delta/eps)");
  // Theorem 5 with the same slackened constants tests/agreement_test.cpp
  // asserts: (2n+1)·(log2(Δ/ε)+3) + 8n.
  const double bound =
      (2.0 * nn + 1.0) * (log_ratio + 3.0) + 8.0 * nn;
  const std::uint64_t ubound = static_cast<std::uint64_t>(bound);
  check_ops(a, OpKind::kOutput, report,
            [&](const OpStats& s, BoundReport& r) {
              if (static_cast<double>(s.accesses()) > bound)
                violation(r, s, "accesses", s.accesses(), ubound, nn);
            });
  return report;
}

BoundReport check_u2_help_bound(const TraceAnalysis& a, int n) {
  const int nn = effective_n(a, n);
  BoundReport report{.name = "u2_help", .formula = bound_formula("u2_help")};
  APRAM_CHECK_MSG(nn >= 1, "u2_help bound needs n >= 1");
  const std::uint64_t bound = static_cast<std::uint64_t>(nn) - 1;
  for (OpKind kind : {OpKind::kU2Execute, OpKind::kU2Insert,
                      OpKind::kU2Remove, OpKind::kU2Contains}) {
    check_ops(a, kind, report, [&](const OpStats& s, BoundReport& r) {
      if (s.helps > bound) violation(r, s, "helps", s.helps, bound, nn);
    });
  }
  return report;
}

BoundReport check_queue_op_bound(const TraceAnalysis& a, int n) {
  const int nn = effective_n(a, n);
  BoundReport report{.name = "queue_op", .formula = bound_formula("queue_op")};
  APRAM_CHECK_MSG(nn >= 1, "queue_op bound needs n >= 1");
  // c·⌈log2 n⌉² with c = 12, clamped so n = 1 still has a positive budget.
  const std::uint64_t h =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(ceil_log2(nn)));
  const std::uint64_t bound = 12ull * h * h;
  for (OpKind kind : {OpKind::kEnqueue, OpKind::kDequeue}) {
    check_ops(a, kind, report, [&](const OpStats& s, BoundReport& r) {
      if (s.accesses() > bound)
        violation(r, s, "accesses", s.accesses(), bound, nn);
    });
  }
  return report;
}

BoundReport check_scenario_op_bound(const TraceAnalysis& a) {
  BoundReport report{.name = "scenario_op",
                     .formula = bound_formula("scenario_op")};
  check_ops(a, OpKind::kScenarioOp, report,
            [&](const OpStats& s, BoundReport& r) {
              if (s.accesses() != 1)
                violation(r, s, "accesses", s.accesses(), 1, a.num_pids);
            });
  return report;
}

std::string bound_formula(const std::string& name) {
  if (name == "scan") return "n^2-1";
  if (name == "tree_update") return "1+8ceil(log2n)";
  if (name == "tree_scan") return "1";
  if (name == "agreement") return "(2n+1)(log2(delta/eps)+3)+8n";
  if (name == "u2_help") return "n-1";
  if (name == "scenario_op") return "1";
  // Shorthand the CLI handshake uses for c·⌈log2 n⌉² with c = 12.
  if (name == "queue_op") return "clog2n";
  return "";
}

std::string format_report(const BoundReport& r) {
  std::ostringstream os;
  os << (r.ok() ? "PASS" : "FAIL") << ' ' << r.name << " (" << r.formula
     << "): " << r.checked << " ops checked";
  if (r.excluded != 0) os << ", " << r.excluded << " truncated/open excluded";
  if (!r.ok()) {
    os << ", " << r.violations.size() << " violation(s)";
    for (const BoundViolation& v : r.violations) os << "\n  " << v.detail;
  }
  return os.str();
}

}  // namespace apram::obs
