#include "obs/replay_artifact.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace apram::obs {

std::vector<int> schedule_from_trace(const std::vector<TraceEvent>& events) {
  std::vector<int> schedule;
  schedule.reserve(events.size());
  for (const TraceEvent& ev : events) {
    switch (ev.kind) {
      case EventKind::kRead:
      case EventKind::kWrite:
      case EventKind::kCas:
        schedule.push_back(ev.pid);
        break;
      default:
        break;
    }
  }
  return schedule;
}

void save_schedule(std::ostream& os, const std::vector<int>& schedule,
                   const std::vector<std::string>& comments) {
  os << "# apram-schedule v1\n";
  for (const std::string& line : comments) {
    APRAM_CHECK_MSG(line.find('\n') == std::string::npos,
                    "schedule comment contains a newline");
    os << "# " << line << '\n';
  }
  for (int pid : schedule) os << pid << '\n';
}

std::vector<int> load_schedule(std::istream& is) {
  std::vector<int> schedule;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    int pid = -1;
    ls >> pid;
    APRAM_CHECK_MSG(!ls.fail() && pid >= 0, "malformed schedule line");
    schedule.push_back(pid);
  }
  return schedule;
}

void write_schedule_file(const std::string& path,
                         const std::vector<int>& schedule,
                         const std::vector<std::string>& comments) {
  std::ofstream out(path);
  APRAM_CHECK_MSG(out.good(), "cannot open schedule output file");
  save_schedule(out, schedule, comments);
  out.flush();
  APRAM_CHECK_MSG(out.good(), "schedule artifact write failed");
}

std::vector<int> read_schedule_file(const std::string& path) {
  std::ifstream in(path);
  APRAM_CHECK_MSG(in.good(), "cannot open schedule input file");
  return load_schedule(in);
}

}  // namespace apram::obs
