// apram::obs — flight recorder.
//
// The tracer already keeps a bounded last-K-events ring per pid; what was
// missing is the ejection seat — a single call that, at the moment a
// certifier detects a wait-freedom violation, lincheck rejects a history,
// or any layer hits an impossible state, freezes everything an engineer
// needs to replay the failure:
//
//   <dir>/<stem>.metrics.json  — the standard metrics artifact (export.hpp
//                                schema): every counter/gauge (including a
//                                contention snapshot, if the owner installed
//                                a snapshot hook), flight.* gauges counting
//                                open spans / truncated ops / drop+sample
//                                accounting, and the surviving events —
//                                loadable by apram-trace and
//                                obs::load_events_json unchanged.
//   <dir>/<stem>.schedule      — the trace projected onto scheduler grants
//                                (replay_artifact.hpp), annotated with the
//                                dump reason and the open spans, feedable to
//                                sim::replay for step-identical re-execution
//                                of sim runs.
//
// dump() is a quiescent-or-crashing-path operation: it reads the rings the
// way events() does, so concurrent producers can blur the very newest
// events but never corrupt the dump. Successive dumps get distinct stems
// (a sequence number), so a campaign that trips twice keeps both.
//
// panic_dump(reason) is the process-global hook: whoever owns the obs
// plumbing installs its recorder once (set_panic_recorder), and any layer —
// lincheck, APRAM_CHECK neighborhoods, signal handlers — can dump without
// threading a FlightRecorder& through APIs that otherwise never touch obs.
// With no recorder installed it is a no-op returning "", so library code
// may call it unconditionally.
#pragma once

#include <functional>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace apram::obs {

class FlightRecorder {
 public:
  // Both pointers must outlive the recorder; `tracer` may be null (dump
  // then writes metrics only — no events, no schedule).
  FlightRecorder(Registry* registry, Tracer* tracer,
                 std::string stem = "flight")
      : registry_(registry), tracer_(tracer), stem_(std::move(stem)) {}

  // Output directory. Unset → obs::artifact_path resolution
  // ($APRAM_ARTIFACT_DIR, else the binary's directory).
  void set_dir(std::string dir) { dir_ = std::move(dir); }

  // Runs immediately before each dump's JSON export — the owner's chance to
  // refresh registry state that is normally exported at teardown (contention
  // gauges, reclaim gauges, ...) so the dump carries a current snapshot.
  void set_snapshot_hook(std::function<void()> hook) {
    snapshot_hook_ = std::move(hook);
  }

  // Writes the artifact pair; returns the metrics JSON path. `reason` is
  // recorded in the artifact name field and the schedule comments.
  std::string dump(const std::string& reason);

  std::uint64_t dumps() const { return dumps_; }

 private:
  Registry* registry_;
  Tracer* tracer_;
  std::string stem_;
  std::string dir_;
  std::function<void()> snapshot_hook_;
  std::mutex mu_;  // serializes dumps; seq under the same lock
  std::uint64_t dumps_ = 0;
};

// Installs `rec` as the process-global panic recorder (nullptr uninstalls).
// The recorder must outlive its installation.
void set_panic_recorder(FlightRecorder* rec);

// Dumps through the installed recorder; returns the metrics JSON path, or
// "" when no recorder is installed.
std::string panic_dump(const std::string& reason);

}  // namespace apram::obs
