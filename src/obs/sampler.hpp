// apram::obs — deterministic 1-in-N operation sampler.
//
// At t16+ the per-pid trace rings overflow and the tracer truncates
// wholesale — the newest events survive, everything earlier is marked
// kTruncated, and `apram-trace check` has nothing left to verify. Sampling
// fixes that with *exact subset semantics*: the keep/drop decision is a
// pure function of (seed, pid, op id), so every event of a kept operation
// survives and every event of a dropped operation disappears — sampled
// spans are complete spans, and per-op bounds (tree_update = 1+8⌈log₂n⌉,
// u2_help = n−1, …) verify on the sampled population exactly as they would
// on a full trace. Only population-level counts (ops/sec, help totals)
// scale by the sampling rate.
//
// Determinism: the decision hashes (seed, pid, op) with splitmix64 — no
// global state, no RNG stream to synchronize. All events carrying a given
// op id are emitted by the op's owner pid (helpers record kHelp into the
// *owner's* span), so one (pid, op) decision covers the whole span. The
// same seed reproduces the same subset across runs; different seeds select
// different subsets (obs_test pins both).
//
// Events with op == 0 (spawn/done/crash, un-spanned accesses) are never
// sampled out — they are population metadata, not span members.
#pragma once

#include <cstdint>

namespace apram::obs {

struct SpanSampler {
  std::uint64_t seed = 0;
  std::uint32_t rate = 1;  // keep 1 op in `rate`; rate <= 1 keeps everything

  bool active() const { return rate > 1; }

  // True iff operation `op` of process `pid` is in the sampled subset.
  bool keep(std::int32_t pid, std::uint64_t op) const {
    if (rate <= 1 || op == 0) return true;
    // splitmix64 over the (seed, pid, op) tuple. Finalizer constants from
    // Sebastiano Vigna's splitmix64; the mix is bijective per input word,
    // so low-entropy (pid, op) pairs still spread uniformly over rate
    // residues.
    std::uint64_t x = seed ^ (static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(pid))
                              << 32) ^ op;
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x = x ^ (x >> 31);
    return x % rate == 0;
  }
};

}  // namespace apram::obs
