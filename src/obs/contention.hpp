// apram::obs — always-on per-node contention telemetry.
//
// The paper's cost story is a helping story: a solo farray write costs
// 1 + 4h accesses, a contended one ≤ 1 + 8h, and the difference is exactly
// how often an internal-node CAS loses and forces the second refresh. This
// header records that difference where it happens — one cell per tree node
// (or help-queue announce cell), counting CAS attempts/failures and
// first-refresh / second-refresh / helped outcomes — cheap enough to stay
// on at 64 threads:
//
//   * One NodeContention per structure, cells sharded by pid so concurrent
//     recorders never contend on a cache line they both write. A shard's
//     cells are contiguous (same thread writes neighbouring nodes), so the
//     grid costs num_shards × num_nodes × 24 bytes, not a cache line per
//     (shard, node).
//   * Recording is on_level_walk(): ONE call per completed level of a
//     refresh walk, ONE relaxed load+store increment (no lock-prefixed RMW
//     — see the method comment) — the walk's outcome (first refresh /
//     second refresh / helped) implies its exact CAS attempt/failure counts
//     under the double-refresh lemma (1/0, 2/1, 2/2), so attempts and
//     failures are derived at read time instead of counted on the hot
//     path. bench_t1 asserts the resulting cost stays <= 3% of an
//     update's p50.
//   * Aggregation (per-node, per-level, whole-structure) happens on read,
//     exact at quiescence (single-writer cells; see on_level_walk for the
//     num_procs > kShards rt caveat), and exports through the standard
//     metrics JSON as
//     `<prefix>.level<k>.cas_fail_rate` / `.double_refresh_rate` gauges
//     (rates in parts-per-million — gauges are integers) next to the raw
//     counts the rates derive from.
//
// Compile-out: configuring with -DAPRAM_OBS_CONTENTION=OFF defines
// APRAM_OBS_CONTENTION_OFF and this class becomes a stateless no-op with
// the identical API — the instrumented hot paths are bit-identical in
// register accesses either way (contention ticks are process-local memory,
// never model registers), which tests/obs_test.cpp pins down.
//
// HelpTally is the companion for universal2's helping discipline: per-pid
// helps-given / helps-received counters (helper writes the helped pid's
// received slot — cross-thread, but help is the slow path by definition),
// exported as `<prefix>.help_given` / `.help_received`.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace apram::obs {

#if defined(APRAM_OBS_CONTENTION_OFF)
inline constexpr bool kContentionEnabled = false;
#else
inline constexpr bool kContentionEnabled = true;
#endif

// A completed level walk's outcome. Under the double-refresh lemma each
// outcome pins the walk's exact CAS attempt/failure pair — first = (1, 0),
// second = (2, 1), helped = (2, 2) — which is what lets the hot path record
// one counter instead of three.
enum class WalkOutcome : int {
  kFirstRefresh = 0,   // installed on the first attempt
  kSecondRefresh = 1,  // first attempt lost, second installed
  kHelped = 2,         // both attempts lost (a rival's refresh covered ours)
};

// Aggregated view of one node / one level / one structure.
struct ContentionTotals {
  std::uint64_t cas_attempts = 0;
  std::uint64_t cas_failures = 0;
  std::uint64_t first_refresh = 0;   // installed on the first attempt
  std::uint64_t second_refresh = 0;  // installed on the second attempt
  std::uint64_t helped = 0;          // both attempts lost (rival covered it)

  // Completed level walks through this node/level.
  std::uint64_t walks() const { return first_refresh + second_refresh + helped; }

  double cas_fail_rate() const {
    return cas_attempts == 0 ? 0.0
                             : static_cast<double>(cas_failures) /
                                   static_cast<double>(cas_attempts);
  }
  // Fraction of walks that needed the second attempt (second refresh OR
  // fully helped) — the knob the 1+4h vs 1+8h gap turns on.
  double double_refresh_rate() const {
    const std::uint64_t w = walks();
    return w == 0 ? 0.0
                  : static_cast<double>(second_refresh + helped) /
                        static_cast<double>(w);
  }

  ContentionTotals& operator+=(const ContentionTotals& o) {
    cas_attempts += o.cas_attempts;
    cas_failures += o.cas_failures;
    first_refresh += o.first_refresh;
    second_refresh += o.second_refresh;
    helped += o.helped;
    return *this;
  }
};

class NodeContention {
 public:
  NodeContention() = default;

  // `num_nodes` cells (callers index them with their structure-local node
  // id); sharding scales with the process count, capped at kShards.
  NodeContention(int num_nodes, int num_procs) {
#if !defined(APRAM_OBS_CONTENTION_OFF)
    APRAM_CHECK(num_nodes >= 1 && num_procs >= 1);
    nodes_ = num_nodes;
    shards_ = 1;
    while (shards_ < num_procs && shards_ < kShards) shards_ *= 2;
    cells_ = std::make_unique<Cell[]>(
        static_cast<std::size_t>(shards_) * static_cast<std::size_t>(nodes_));
    levels_.assign(static_cast<std::size_t>(nodes_), 0);
#else
    (void)num_nodes;
    (void)num_procs;
#endif
  }

  bool enabled() const { return kContentionEnabled && nodes_ > 0; }
  int num_nodes() const { return nodes_; }

  // Declares node's level for per-level aggregation (level 0 = deepest;
  // the farray root is the highest level). Call at construction.
  void set_level(int node, int level) {
#if !defined(APRAM_OBS_CONTENTION_OFF)
    if (nodes_ == 0) return;
    APRAM_CHECK(node >= 0 && node < nodes_ && level >= 0);
    levels_[static_cast<std::size_t>(node)] = level;
#else
    (void)node;
    (void)level;
#endif
  }

  // Records one completed level walk at `node`. ONE relaxed load+store
  // increment on a pid-sharded cell — the outcome determines the walk's CAS
  // attempt/failure counts exactly (see WalkOutcome), so nothing else needs
  // counting. Deliberately NOT fetch_add: a lock-prefixed RMW is a full
  // barrier (~9 ns serialized) while the plain increment is ~1 ns, and the
  // cell has a single writer in every configuration that matters — the
  // simulator drives all pids from one thread, and rt runs with
  // num_procs <= kShards give each pid its own shard row. Two rt pids
  // sharing a shard (num_procs > kShards only) can lose an increment in the
  // load/store window; counts there are a telemetry-grade lower bound.
  // Zero register accesses either way: the model-visible step count is
  // untouched.
  void on_level_walk(int pid, int node, WalkOutcome outcome) {
#if !defined(APRAM_OBS_CONTENTION_OFF)
    if (nodes_ == 0) return;
    Cell& c = cell(pid, node);
    auto& slot = c.outcomes[static_cast<std::size_t>(outcome)];
    slot.store(slot.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
#else
    (void)pid;
    (void)node;
    (void)outcome;
#endif
  }

  // --- quiescent readers ---------------------------------------------------

  ContentionTotals node_totals(int node) const {
    ContentionTotals t;
#if !defined(APRAM_OBS_CONTENTION_OFF)
    if (nodes_ == 0) return t;
    APRAM_CHECK(node >= 0 && node < nodes_);
    for (int s = 0; s < shards_; ++s) {
      const Cell& c =
          cells_[static_cast<std::size_t>(s) * static_cast<std::size_t>(nodes_) +
                 static_cast<std::size_t>(node)];
      t.first_refresh += c.outcomes[0].load(std::memory_order_relaxed);
      t.second_refresh += c.outcomes[1].load(std::memory_order_relaxed);
      t.helped += c.outcomes[2].load(std::memory_order_relaxed);
    }
    // Derived under the double-refresh lemma: first = 1 attempt / 0 lost,
    // second = 2 / 1, helped = 2 / 2.
    t.cas_attempts = t.first_refresh + 2 * (t.second_refresh + t.helped);
    t.cas_failures = t.second_refresh + 2 * t.helped;
#else
    (void)node;
#endif
    return t;
  }

  int num_levels() const {
    int max_level = -1;
    for (int lvl : levels_) max_level = std::max(max_level, lvl);
    return max_level + 1;
  }

  ContentionTotals level_totals(int level) const {
    ContentionTotals t;
    for (int node = 0; node < nodes_; ++node) {
      if (levels_[static_cast<std::size_t>(node)] == level) {
        t += node_totals(node);
      }
    }
    return t;
  }

  ContentionTotals totals() const {
    ContentionTotals t;
    for (int node = 0; node < nodes_; ++node) t += node_totals(node);
    return t;
  }

  // Exports per-level gauges `<prefix>.level<k>.{cas_attempts, cas_failures,
  // first_refresh, second_refresh, helped, walks, cas_fail_rate,
  // double_refresh_rate}` — rates in parts-per-million. No-op (no gauges at
  // all, so `--require-gauges` fails loudly) when compiled out.
  void export_gauges(Registry& registry, const std::string& prefix) const;

 private:
  // Compiled out on purpose when contention is off: the counters below are
  // the entire per-structure memory cost.
  static constexpr int kShards = 16;

  struct Cell {  // 24 bytes, shard-contiguous — see the header comment
    std::atomic<std::uint64_t> outcomes[3]{};  // indexed by WalkOutcome
  };

#if !defined(APRAM_OBS_CONTENTION_OFF)
  Cell& cell(int pid, int node) {
    const int shard = (pid >= 0 ? pid : 0) & (shards_ - 1);
    return cells_[static_cast<std::size_t>(shard) *
                      static_cast<std::size_t>(nodes_) +
                  static_cast<std::size_t>(node)];
  }
#endif

  int nodes_ = 0;
  int shards_ = 0;
  std::unique_ptr<Cell[]> cells_;
  std::vector<int> levels_;  // [nodes_] node → level
};

// Per-pid helps-given / helps-received tally (universal2's helping
// discipline). One cache line per pid; `given` is written only by the
// owner, `received` by whichever helper completed the op.
class HelpTally {
 public:
  HelpTally() = default;

  explicit HelpTally(int num_procs) {
#if !defined(APRAM_OBS_CONTENTION_OFF)
    APRAM_CHECK(num_procs >= 1);
    n_ = num_procs;
    cells_ = std::make_unique<Cell[]>(static_cast<std::size_t>(n_));
#else
    (void)num_procs;
#endif
  }

  bool enabled() const { return kContentionEnabled && n_ > 0; }

  void on_help(int helper, int helped) {
#if !defined(APRAM_OBS_CONTENTION_OFF)
    if (n_ == 0) return;
    APRAM_CHECK(helper >= 0 && helper < n_ && helped >= 0 && helped < n_);
    cells_[static_cast<std::size_t>(helper)].given.fetch_add(
        1, std::memory_order_relaxed);
    cells_[static_cast<std::size_t>(helped)].received.fetch_add(
        1, std::memory_order_relaxed);
#else
    (void)helper;
    (void)helped;
#endif
  }

  std::uint64_t given(int pid) const {
    if (n_ == 0) return 0;
    return cells_[static_cast<std::size_t>(pid)].given.load(
        std::memory_order_relaxed);
  }
  std::uint64_t received(int pid) const {
    if (n_ == 0) return 0;
    return cells_[static_cast<std::size_t>(pid)].received.load(
        std::memory_order_relaxed);
  }
  std::uint64_t total_given() const {
    std::uint64_t t = 0;
    for (int p = 0; p < n_; ++p) t += given(p);
    return t;
  }

  // Exports `<prefix>.help_given` / `.help_received` totals plus per-pid
  // `<prefix>.help_given.p<pid>` gauges. No-op when compiled out.
  void export_gauges(Registry& registry, const std::string& prefix) const;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> given{0};
    std::atomic<std::uint64_t> received{0};
  };

  int n_ = 0;
  std::unique_ptr<Cell[]> cells_;
};

}  // namespace apram::obs
