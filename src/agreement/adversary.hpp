// The Lemma 6 lower-bound adversary for approximate agreement.
//
// Lemma 6 defines a process's *preference* at a point in an execution as the
// value it would return if it ran alone from that point on. The adversary's
// strategy:
//
//   1. Run P until it is about to change Q's preference; likewise Q.
//   2. When each process's next step would change the other's preference,
//      schedule P, Q, or both — whichever keeps the preference gap largest.
//      The three candidate gaps sum to at least the current gap, so the best
//      choice shrinks it by at most 3×.
//   3. Repeat; after k iterations the gap is still ≥ Δ/3^k, so some process
//      must take ⌊log3(Δ/ε)⌋ steps before a *correct* algorithm may let both
//      terminate.
//
// Preferences are computed by deterministic replay (see sim/replay.hpp):
// re-execute the committed schedule prefix on a fresh world, then run the
// process solo — exactly the oracle the proof uses.
//
// The adversary is generic over the algorithm under attack: it takes a
// factory producing two-process agreement executions. Factories are provided
// for the midpoint-convergence object (the correct testbed, where the game
// exhibits the log3 bound) and for the literal Figure 2 object (where the
// game instead surfaces the late-input boundary — see DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "agreement/approx_agreement.hpp"
#include "agreement/midpoint_agreement.hpp"
#include "sim/replay.hpp"

namespace apram {

// A two-process agreement execution: process i inputs inputs[i], then
// outputs. Implementations must be deterministic functions of the schedule.
class AgreementExecution : public sim::Execution {
 public:
  virtual const std::optional<double>& out(int pid) const = 0;
};

// Factory producing fresh, identical executions.
using AgreementFactory =
    std::function<std::unique_ptr<AgreementExecution>()>;

// Figure 2 (ApproxAgreementSim) under test.
AgreementFactory figure2_agreement_factory(double epsilon, double x0,
                                           double x1);

// Midpoint-convergence object (MidpointAgreementSim) under test.
AgreementFactory midpoint_agreement_factory(double epsilon, double x0,
                                            double x1);

struct AdversaryResult {
  // Main-strategy iterations executed while the preference gap was ≥ ε
  // (each shrinks the gap by at most 3×, so a correct algorithm sustains
  // ≥ ⌊log3(Δ/ε)⌋ of them).
  int iterations = 0;
  // Steps committed to the adversarial prefix, per process, up to the point
  // where the gap first fell below ε.
  std::uint64_t steps_while_gap_wide[2] = {0, 0};
  // Total steps committed per process over the whole adversarial run.
  std::uint64_t total_steps[2] = {0, 0};
  // Preference gap when the strategy stopped.
  double final_gap = 0.0;
  // The committed schedule (pids), usable to drive a real execution.
  std::vector<int> schedule;
  // Final outputs of both processes after running the remaining execution
  // to completion under round-robin.
  double outputs[2] = {0.0, 0.0};
};

// Plays the adversary against `factory`'s algorithm. `max_iterations` caps
// strategy iterations as a safety net.
AdversaryResult run_lower_bound_adversary(const AgreementFactory& factory,
                                          double epsilon,
                                          int max_iterations = 256);

}  // namespace apram
