// Two-process convergent approximate agreement (the lower-bound testbed).
//
// Lemma 6's adversary argument applies to *correct* implementations: it
// derives ⌊log3(Δ/ε)⌋ forced steps from the fact that two processes cannot
// both return while their preferences (solo-run outcomes) are more than ε
// apart. Reproducing the paper surfaced that the literal Figure 2 algorithm
// does not satisfy that premise when an input write is delayed past another
// process's decision (see DESIGN.md, "Late-input boundary"), and that in the
// all-inputs-installed regime it converges in O(1) rounds — so the game
// cannot be demonstrated against it.
//
// This object is the classic midpoint-convergence algorithm, correct for two
// processes in the full asynchronous regime (late inputs included):
//
//   output(P): loop
//     read both entries;
//     if the rival's entry is absent        -> return own preference;
//     if |own - rival| < ε/2                -> return own preference;
//     else                                  -> write (own + rival)/2; repeat.
//
// Why it is correct: a process returns only when it is within ε/2 of the
// rival's *current* entry (or the rival never showed up, in which case the
// rival — when it arrives — converges to the returner's frozen entry). After
// P returns p, Q's subsequent writes are midpoints of {q, p}, which only
// move Q toward p; Q returns once within ε/2 of p. Against this object the
// Lemma 6 preference game is live: a solo run converges to (near) the
// rival's frozen value, so the initial preference gap is Δ and the adversary
// can hold the shrink to 3× per iteration.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "agreement/approx_spec.hpp"
#include "sim/world.hpp"

namespace apram {

class MidpointAgreementSim {
 public:
  struct Entry {
    double prefer = 0.0;
    bool present = false;
  };

  MidpointAgreementSim(sim::World& world, int num_procs, double epsilon,
                       const std::string& name = "mid")
      : n_(num_procs), eps_(epsilon) {
    APRAM_CHECK_MSG(num_procs == 2,
                    "midpoint agreement is the two-process testbed");
    APRAM_CHECK(epsilon > 0.0);
    for (int p = 0; p < n_; ++p) {
      r_.push_back(&world.make_register<Entry>(
          name + ".r[" + std::to_string(p) + "]", Entry{}, /*writer=*/p));
    }
  }

  int num_procs() const { return n_; }
  double epsilon() const { return eps_; }

  sim::SimCoro<void> input(sim::Context ctx, double x) {
    const int p = ctx.pid();
    const Entry mine = co_await ctx.read(*r_[static_cast<std::size_t>(p)]);
    if (!mine.present) {
      co_await ctx.write(*r_[static_cast<std::size_t>(p)], Entry{x, true});
    }
  }

  sim::SimCoro<double> output(sim::Context ctx) {
    const int p = ctx.pid();
    const int q = 1 - p;
    for (;;) {
      const Entry mine = co_await ctx.read(*r_[static_cast<std::size_t>(p)]);
      APRAM_CHECK_MSG(mine.present, "output() requires a prior input()");
      const Entry rival = co_await ctx.read(*r_[static_cast<std::size_t>(q)]);
      if (!rival.present || std::fabs(mine.prefer - rival.prefer) < eps_ / 2.0) {
        co_return mine.prefer;
      }
      co_await ctx.write(*r_[static_cast<std::size_t>(p)],
                         Entry{(mine.prefer + rival.prefer) / 2.0, true});
    }
  }

  sim::SimCoro<double> decide(sim::Context ctx, double x) {
    co_await input(ctx, x);
    const double y = co_await output(ctx);
    co_return y;
  }

  Entry peek_entry(int pid) const {
    return r_[static_cast<std::size_t>(pid)]->peek();
  }

 private:
  int n_;
  double eps_;
  std::vector<sim::Register<Entry>*> r_;
};

}  // namespace apram
