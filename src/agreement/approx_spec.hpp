// Sequential specification of the approximate agreement object (Figure 1).
//
// Abstract state: a set X of input values and a set Y of output values.
//   input(P, x):  X' = X ∪ {x}
//   output(P):    returns y with Y' = Y ∪ {y}, range(Y') ⊆ range(X),
//                 |range(Y')| < ε
//
// The spec object is used as a correctness oracle: concurrent executions of
// the Figure 2 algorithm feed their inputs and outputs into it, and the
// postconditions are checked exactly.
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace apram {

// A closed real interval, possibly empty. range(∅) = ∅ with |∅| = 0.
struct RealRange {
  bool empty = true;
  double lo = 0.0;
  double hi = 0.0;

  void extend(double x) {
    if (empty) {
      empty = false;
      lo = hi = x;
    } else {
      if (x < lo) lo = x;
      if (x > hi) hi = x;
    }
  }

  double size() const { return empty ? 0.0 : hi - lo; }
  double midpoint() const { return (lo + hi) / 2.0; }
  bool contains(double x) const { return !empty && lo <= x && x <= hi; }
  bool contains(const RealRange& other) const {
    return other.empty || (!empty && lo <= other.lo && other.hi <= hi);
  }
};

RealRange range_of(std::span<const double> values);

class ApproxAgreementSpec {
 public:
  explicit ApproxAgreementSpec(double epsilon);

  double epsilon() const { return epsilon_; }

  // input(P, x)
  void add_input(double x);

  // output(P) = y. Returns true iff y satisfies the Figure 1 postconditions
  // against the current state; when legal, y is added to Y.
  bool try_output(double y);

  bool has_inputs() const { return !in_range_.empty; }

  const RealRange& input_range() const { return in_range_; }
  const RealRange& output_range() const { return out_range_; }

 private:
  double epsilon_;
  std::vector<double> inputs_;
  RealRange in_range_;
  RealRange out_range_;
};

}  // namespace apram
