#include "agreement/adversary.hpp"

#include <cmath>

#include "sim/scheduler.hpp"

namespace apram {

namespace {

// Shared shape of the two concrete executions: build a world, run
// input-then-output per process, capture the outputs.
template <class Object>
class TwoProcExecution final : public AgreementExecution {
 public:
  TwoProcExecution(double epsilon, double x0, double x1)
      : world_(2), object_(world_, 2, epsilon), outs_(2) {
    const double inputs[2] = {x0, x1};
    for (int pid = 0; pid < 2; ++pid) {
      const double x = inputs[pid];
      world_.spawn(pid, [this, pid, x](sim::Context ctx) -> sim::ProcessTask {
        outs_[static_cast<std::size_t>(pid)] =
            co_await object_.decide(ctx, x);
      });
    }
  }

  sim::World& world() override { return world_; }
  const std::optional<double>& out(int pid) const override {
    return outs_[static_cast<std::size_t>(pid)];
  }

 private:
  sim::World world_;
  Object object_;
  std::vector<std::optional<double>> outs_;
};

// Preference oracle: the value `pid` returns when running alone after
// `prefix` (Lemma 6's definition, computed by replay).
//
// The FixedSchedulers below stay in the default lenient (Divergence::kSkip)
// mode on purpose: gap_for() extends prefixes speculatively, so a prefix may
// carry steps for a process that completes earlier on this re-execution.
double preference(const AgreementFactory& factory,
                  const std::vector<int>& prefix, int pid) {
  auto exec = factory();
  sim::FixedScheduler sched(prefix, sim::FixedScheduler::Fallback::kStop);
  exec->world().run(sched);
  exec->world().run_solo(pid);
  APRAM_CHECK(exec->out(pid).has_value());
  return *exec->out(pid);
}

bool done_after(const AgreementFactory& factory,
                const std::vector<int>& prefix, int pid) {
  auto exec = factory();
  sim::FixedScheduler sched(prefix, sim::FixedScheduler::Fallback::kStop);
  exec->world().run(sched);
  return exec->world().done(pid);
}

// Extends `prefix` with steps of `actor` for as long as those steps leave
// `other`'s preference unchanged. Returns false if `actor` completed without
// ever threatening `other`'s preference (strategy over), true if `actor` is
// now one step away from changing it.
bool advance_until_threatening(const AgreementFactory& factory,
                               std::vector<int>& prefix, int actor,
                               int other) {
  for (;;) {
    if (done_after(factory, prefix, actor)) return false;
    const double before = preference(factory, prefix, other);
    prefix.push_back(actor);
    const double after = preference(factory, prefix, other);
    if (after != before) {
      prefix.pop_back();  // stop *just before* the preference-changing step
      return true;
    }
  }
}

}  // namespace

AgreementFactory figure2_agreement_factory(double epsilon, double x0,
                                           double x1) {
  return [epsilon, x0, x1] {
    return std::make_unique<TwoProcExecution<ApproxAgreementSim>>(epsilon, x0,
                                                                  x1);
  };
}

AgreementFactory midpoint_agreement_factory(double epsilon, double x0,
                                            double x1) {
  return [epsilon, x0, x1] {
    return std::make_unique<TwoProcExecution<MidpointAgreementSim>>(epsilon,
                                                                    x0, x1);
  };
}

AdversaryResult run_lower_bound_adversary(const AgreementFactory& factory,
                                          double epsilon,
                                          int max_iterations) {
  APRAM_CHECK(epsilon > 0.0);

  AdversaryResult result;
  std::vector<int>& prefix = result.schedule;
  bool gap_wide = true;

  auto recount = [&] {
    result.total_steps[0] = result.total_steps[1] = 0;
    for (int pid : prefix) ++result.total_steps[pid];
  };
  auto note_gap = [&](double gap) {
    recount();
    result.final_gap = gap;
    if (gap_wide && gap < epsilon) {
      gap_wide = false;
      for (int pid = 0; pid < 2; ++pid) {
        result.steps_while_gap_wide[pid] = result.total_steps[pid];
      }
    }
  };

  note_gap(std::fabs(preference(factory, prefix, 0) -
                     preference(factory, prefix, 1)));

  for (int iter = 0; iter < max_iterations; ++iter) {
    if (!advance_until_threatening(factory, prefix, 0, 1)) break;
    if (!advance_until_threatening(factory, prefix, 1, 0)) break;

    // Both processes are one step from changing the other's preference.
    // Evaluate the three schedules of Lemma 6 and commit the one keeping
    // the preferences farthest apart.
    auto gap_for = [&](std::initializer_list<int> steps) {
      std::vector<int> candidate = prefix;
      candidate.insert(candidate.end(), steps);
      return std::fabs(preference(factory, candidate, 0) -
                       preference(factory, candidate, 1));
    };
    const double gap_p = gap_for({0});     // P moves: Q's preference changes
    const double gap_q = gap_for({1});     // Q moves: P's preference changes
    const double gap_both = gap_for({0, 1});

    if (gap_wide) ++result.iterations;

    double gap = 0.0;
    if (gap_p >= gap_q && gap_p >= gap_both) {
      prefix.push_back(0);
      gap = gap_p;
    } else if (gap_q >= gap_both) {
      prefix.push_back(1);
      gap = gap_q;
    } else {
      prefix.push_back(0);
      prefix.push_back(1);
      gap = gap_both;
    }
    note_gap(gap);
  }
  recount();
  if (gap_wide) {
    for (int pid = 0; pid < 2; ++pid) {
      result.steps_while_gap_wide[pid] = result.total_steps[pid];
    }
  }

  // Drive the remaining execution to completion and record the outputs so
  // callers can verify the algorithm still met its specification.
  auto exec = factory();
  sim::FixedScheduler replay_sched(prefix, sim::FixedScheduler::Fallback::kStop);
  exec->world().run(replay_sched);
  sim::RoundRobinScheduler rr;
  exec->world().run(rr);
  for (int pid = 0; pid < 2; ++pid) {
    APRAM_CHECK(exec->out(pid).has_value());
    result.outputs[pid] = *exec->out(pid);
  }
  return result;
}

}  // namespace apram
