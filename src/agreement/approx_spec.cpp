#include "agreement/approx_spec.hpp"

#include "util/assert.hpp"

namespace apram {

RealRange range_of(std::span<const double> values) {
  RealRange r;
  for (const double v : values) r.extend(v);
  return r;
}

ApproxAgreementSpec::ApproxAgreementSpec(double epsilon) : epsilon_(epsilon) {
  APRAM_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
}

void ApproxAgreementSpec::add_input(double x) {
  inputs_.push_back(x);
  in_range_.extend(x);
}

bool ApproxAgreementSpec::try_output(double y) {
  if (in_range_.empty) return false;  // output before any input: unspecified
  RealRange candidate = out_range_;
  candidate.extend(y);
  if (!in_range_.contains(candidate)) return false;
  if (candidate.size() >= epsilon_) return false;
  out_range_ = candidate;
  return true;
}

}  // namespace apram
