// Wait-free approximate agreement (Figure 2).
//
// The object is an n-element array r of single-writer entries, each holding
// a preference and a round number (round 0 = ⊥, "no input yet"). A process
// is a *leader* if its round is maximal. The output loop:
//
//   1. scan all entries (one read each, arbitrary order);
//   2. E := preferences of entries whose round trails P's by at most one;
//      L := preferences of the leaders;
//   3. if |range(E)| < ε/2       — return own preference;
//      elif |range(L)| < ε/2 or the advance flag is set
//                               — write [midpoint(L), round+1], clear flag;
//      else                     — set the advance flag (forcing one rescan
//                                 before advancing).
//
// Theorem 5: every output completes within (2n+1)·log2(Δ/ε) + O(n) steps,
// and all outputs lie within an ε-interval inside the input range.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agreement/approx_spec.hpp"
#include "sim/world.hpp"

namespace apram {

class ApproxAgreementSim {
 public:
  // One entry of the shared array r.
  struct Entry {
    double prefer = 0.0;
    std::int64_t round = 0;  // 0 means ⊥: no input yet
  };

  // One register write, as recorded in the write log (used by the tests
  // that check Lemmas 1-3 on actual executions).
  struct WriteRecord {
    int pid;
    std::int64_t round;
    double prefer;
  };

  ApproxAgreementSim(sim::World& world, int num_procs, double epsilon,
                     const std::string& name = "aa")
      : n_(num_procs), eps_(epsilon) {
    APRAM_CHECK(num_procs >= 1);
    APRAM_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
    r_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      r_.push_back(&world.make_register<Entry>(
          name + ".r[" + std::to_string(p) + "]", Entry{}, /*writer=*/p));
    }
  }

  int num_procs() const { return n_; }
  double epsilon() const { return eps_; }

  // input(P, x): installs x as P's initial preference (round 1); subsequent
  // calls have no effect. One read + (first time) one write.
  sim::SimCoro<void> input(sim::Context ctx, double x) {
    const int p = ctx.pid();
    ctx.op_begin(obs::OpKind::kInput);
    const Entry mine = co_await ctx.read(*r_[static_cast<std::size_t>(p)]);
    if (mine.round == 0) {
      co_await ctx.write(*r_[static_cast<std::size_t>(p)],
                         Entry{x, 1});
      log_.push_back(WriteRecord{p, 1, x});
    }
    ctx.op_end(obs::OpKind::kInput);
  }

  // output(P): the Figure 2 loop. P must have called input first (the paper
  // leaves output-before-any-input unspecified; we require the natural
  // discipline instead).
  sim::SimCoro<double> output(sim::Context ctx) {
    const int p = ctx.pid();
    bool advance = false;
    ctx.op_begin(obs::OpKind::kOutput);

    for (int round_iter = 0;; ++round_iter) {
      ctx.op_phase(obs::Phase::kRound, round_iter);
      // Scan r (n reads, fixed order — the paper allows any order).
      std::vector<Entry> entries;
      entries.reserve(static_cast<std::size_t>(n_));
      for (int q = 0; q < n_; ++q) {
        Entry e = co_await ctx.read(*r_[static_cast<std::size_t>(q)]);
        entries.push_back(e);
      }
      const Entry mine = entries[static_cast<std::size_t>(p)];
      APRAM_CHECK_MSG(mine.round >= 1, "output() requires a prior input()");

      std::int64_t max_round = 0;
      for (const Entry& e : entries) max_round = std::max(max_round, e.round);

      RealRange eligible;  // E: rounds within 1 of P's own
      RealRange leaders;   // L: rounds equal to the maximum
      for (const Entry& e : entries) {
        if (e.round == 0) continue;  // ⊥ entries are not in the array yet
        if (e.round >= mine.round - 1) eligible.extend(e.prefer);
        if (e.round == max_round) leaders.extend(e.prefer);
      }

      if (eligible.size() < eps_ / 2.0) {
        ctx.op_end(obs::OpKind::kOutput);
        co_return mine.prefer;
      } else if (leaders.size() < eps_ / 2.0 || advance) {
        co_await ctx.write(
            *r_[static_cast<std::size_t>(p)],
            Entry{leaders.midpoint(), mine.round + 1});
        log_.push_back(WriteRecord{p, mine.round + 1, leaders.midpoint()});
        advance = false;
      } else {
        advance = true;
      }
    }
  }

  // Convenience: input followed by output.
  sim::SimCoro<double> decide(sim::Context ctx, double x) {
    co_await input(ctx, x);
    const double y = co_await output(ctx);
    co_return y;
  }

  // Test/bench introspection: P's current entry (no simulation step).
  Entry peek_entry(int pid) const {
    return r_[static_cast<std::size_t>(pid)]->peek();
  }

  // Every (pid, round, prefer) ever written, in write order — the X_r sets
  // of Lemmas 1-3, reconstructed from the execution itself.
  const std::vector<WriteRecord>& write_log() const { return log_; }

 private:
  int n_;
  double eps_;
  std::vector<sim::Register<Entry>*> r_;
  std::vector<WriteRecord> log_;
};

}  // namespace apram
