// TreeScan / TreeSnapshot — wait-free lattice snapshots with polylogarithmic
// updates, as thin clients of the farray tree.
//
// The stamped-CAS tree that powers them — per-process SWMR leaves, CAS
// internal nodes, the double-refresh helping lemma — lives in
// farray/farray.hpp as the reusable FArray<B, T, F> primitive; this header
// instantiates it over a lattice join (JoinCombiner<L>) and keeps the
// snapshot-specific parts:
//
//   update(P, v): join v into P's local mirror and farray-write the result
//                 (1 write + root-path refresh) — ≤ 1 + 8·⌈log2 n⌉ accesses.
//   scan():       one root read.
//
// Node monotonicity (why scan is ONE read, not a double-collect — the
// lattice-only property the generic FArray does not promise): leaves are
// owner-joined, so each leaf's value sequence is monotone in the lattice
// order; a successful refresh at u read cur, then the children, then
// installed their join. The previous install's child reads happened before
// this one's node read (release/acquire through the node), and child
// sequences are monotone, so the new join dominates the old value. Root
// values therefore form a chain: any two scans are comparable (the Lemma 32
// property) and an update's contribution appears in every scan that starts
// after the update returns — linearizability by the same argument as
// Theorem 33.
//
// Step counts (exact for n a power of two; upper bounds otherwise):
//
//   update, solo:       1 + 4h   (h = ⌈log2 n⌉)
//   update, contended:  ≤ 1 + 8h
//   scan:               1
//
// versus Figure 5's n²−1 reads and n+1 writes per operation (§6.2).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/backend.hpp"
#include "api/rt_backend.hpp"
#include "api/sim_backend.hpp"
#include "farray/farray.hpp"
#include "lattice/lattice.hpp"
#include "obs/span.hpp"
#include "util/assert.hpp"

namespace apram::snapshot {

// The write-identifying stamp moved to the farray layer with the tree;
// re-exported under its historical name.
using farray::Stamped;

// Closed forms, kept under the snapshot names tests and docs use; the tree
// versions are the source of truth.
constexpr int tree_scan_height(int num_procs) {
  return farray::farray_height(num_procs);
}

constexpr std::uint64_t tree_scan_update_solo_accesses(int num_procs) {
  return farray::farray_write_solo_accesses(num_procs);
}

constexpr std::uint64_t tree_scan_update_max_accesses(int num_procs) {
  return farray::farray_write_max_accesses(num_procs);
}

constexpr std::uint64_t tree_scan_scan_accesses() {
  return farray::farray_read_accesses();
}

template <class B, Semilattice L>
  requires api::BackendFor<B, typename L::Value> &&
           api::CasBackendFor<B, Stamped<typename L::Value>>
class TreeScan {
 public:
  using Value = typename L::Value;
  using Node = Stamped<Value>;
  using Ctx = typename B::Ctx;
  template <class T>
  using Coro = typename B::template Coro<T>;
  using Tree = farray::FArray<B, Value, JoinCombiner<L>>;

  TreeScan(typename B::Mem& mem, int num_procs) : tree_(mem, num_procs) {
    caches_.reserve(static_cast<std::size_t>(num_procs));
    for (int p = 0; p < num_procs; ++p) {
      caches_.push_back(std::make_unique<Cache>());
    }
  }

  int num_procs() const { return tree_.num_procs(); }
  int height() const { return tree_.height(); }

  // Joins v into the lattice state; on return the contribution is visible
  // at the root (the farray helping lemma). ≤ 1 + 8·height() accesses.
  Coro<void> update(Ctx ctx, Value v) {
    const int p = ctx.pid();
    Cache& cache = *caches_[static_cast<std::size_t>(p)];
    ctx.op_begin(obs::OpKind::kTreeUpdate);
    Value nv = L::join(std::move(v), cache.leaf);
    cache.leaf = nv;
    co_await tree_.write(ctx, std::move(nv));
    ctx.op_end(obs::OpKind::kTreeUpdate);
  }

  // The join of all contributions of updates that completed before the scan
  // started (and possibly some concurrent ones). One register access.
  Coro<Value> scan(Ctx ctx) {
    ctx.op_begin(obs::OpKind::kTreeScan);
    Value v = co_await tree_.read_f(ctx);
    ctx.op_end(obs::OpKind::kTreeScan);
    co_return v;
  }

  Coro<Value> update_and_scan(Ctx ctx, Value v) {
    co_await update(ctx, std::move(v));
    Value out = co_await scan(ctx);
    co_return out;
  }

  // Test/debug access (forwarded from the tree).
  const typename B::template Reg<Value>& leaf_at(int p) const {
    return tree_.leaf_at(p);
  }
  const typename B::template CasReg<Node>& node_at(int i) const {
    return tree_.node_at(i);
  }

  // Per-node contention telemetry (forwarded from the tree).
  const obs::NodeContention& contention() const { return tree_.contention(); }
  void export_contention_gauges(obs::Registry& registry,
                                const std::string& prefix) const {
    tree_.export_contention_gauges(registry, prefix);
  }

 private:
  struct alignas(64) Cache {
    Value leaf = L::bottom();  // mirror of own leaf (single writer)
  };

  Tree tree_;
  std::vector<std::unique_ptr<Cache>> caches_;  // [n]
};

// Snapshot object over the tagged-vector lattice (end of §6), tree flavour:
// the TreeScan counterpart of AtomicSnapshotSim / AtomicSnapshotRT.
template <class B, class T>
class TreeSnapshot {
 public:
  using Lattice = TaggedVectorLattice<T>;
  using LatticeValue = typename Lattice::Value;
  using View = std::vector<std::optional<T>>;
  using Ctx = typename B::Ctx;
  template <class U>
  using Coro = typename B::template Coro<U>;

  TreeSnapshot(typename B::Mem& mem, int num_procs)
      : n_(num_procs),
        scan_(mem, num_procs),
        next_tag_(static_cast<std::size_t>(num_procs)) {
    for (auto& t : next_tag_) t = std::make_unique<Tag>();
  }

  int num_procs() const { return n_; }

  Coro<void> update(Ctx ctx, T v) {
    const int p = ctx.pid();
    const std::uint64_t tag = ++next_tag_[static_cast<std::size_t>(p)]->value;
    LatticeValue s = Lattice::singleton(static_cast<std::size_t>(n_),
                                        static_cast<std::size_t>(p), tag,
                                        std::move(v));
    co_await scan_.update(ctx, std::move(s));
  }

  Coro<View> scan(Ctx ctx) {
    LatticeValue joined = co_await scan_.scan(ctx);
    co_return unpack(joined);
  }

  Coro<View> update_and_scan(Ctx ctx, T v) {
    co_await update(ctx, std::move(v));
    LatticeValue joined = co_await scan_.scan(ctx);
    co_return unpack(joined);
  }

  TreeScan<B, Lattice>& tree() { return scan_; }

  void export_contention_gauges(obs::Registry& registry,
                                const std::string& prefix) const {
    scan_.export_contention_gauges(registry, prefix);
  }

 private:
  struct alignas(64) Tag {
    std::uint64_t value = 0;
  };

  View unpack(const LatticeValue& joined) const {
    View view(static_cast<std::size_t>(n_));
    for (std::size_t i = 0;
         i < joined.size() && i < static_cast<std::size_t>(n_); ++i) {
      if (joined[i].tag != 0) view[i] = joined[i].value;
    }
    return view;
  }

  int n_;
  TreeScan<B, Lattice> scan_;
  std::vector<std::unique_ptr<Tag>> next_tag_;
};

// --------------------------------------------------------------------------
// rt convenience wrappers: own the Mem, expose the int-pid call style of the
// other rt structures. Thread p may call only the p-indexed entry points'
// update paths; scans are callable by anyone.

template <Semilattice L>
class TreeScanRT {
 public:
  using Value = typename L::Value;

  explicit TreeScanRT(int num_procs)
      : mem_(num_procs), impl_(mem_, num_procs) {}

  int num_procs() const { return impl_.num_procs(); }

  void update(int p, Value v) {
    impl_.update(api::RtBackend::Ctx{p}, std::move(v)).get();
  }
  Value scan(int p) { return impl_.scan(api::RtBackend::Ctx{p}).get(); }
  Value update_and_scan(int p, Value v) {
    return impl_.update_and_scan(api::RtBackend::Ctx{p}, std::move(v)).get();
  }

  // See api::RtBackend::Mem::attach_obs / attach_injector /
  // reclaim_stats / export_reclaim_gauges.
  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    mem_.attach_obs(registry, name, tracer);
  }
  void attach_injector(fault::RtInjector* injector) {
    mem_.attach_injector(injector);
  }
  rt::reclaim::ReclaimStats reclaim_stats() const {
    return mem_.reclaim_stats();
  }
  void export_reclaim_gauges(obs::Registry& registry,
                             const std::string& name) const {
    mem_.export_reclaim_gauges(registry, name);
  }
  void export_contention_gauges(obs::Registry& registry,
                                const std::string& prefix) const {
    impl_.export_contention_gauges(registry, prefix);
  }

 private:
  api::RtBackend::Mem mem_;
  TreeScan<api::RtBackend, L> impl_;
};

template <class T>
class TreeSnapshotRT {
 public:
  using View = std::vector<std::optional<T>>;

  explicit TreeSnapshotRT(int num_procs)
      : mem_(num_procs), impl_(mem_, num_procs) {}

  int num_procs() const { return impl_.num_procs(); }

  void update(int p, T v) {
    impl_.update(api::RtBackend::Ctx{p}, std::move(v)).get();
  }
  View scan(int p) { return impl_.scan(api::RtBackend::Ctx{p}).get(); }
  View update_and_scan(int p, T v) {
    return impl_.update_and_scan(api::RtBackend::Ctx{p}, std::move(v)).get();
  }

  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    mem_.attach_obs(registry, name, tracer);
  }
  void attach_injector(fault::RtInjector* injector) {
    mem_.attach_injector(injector);
  }
  rt::reclaim::ReclaimStats reclaim_stats() const {
    return mem_.reclaim_stats();
  }
  void export_reclaim_gauges(obs::Registry& registry,
                             const std::string& name) const {
    mem_.export_reclaim_gauges(registry, name);
  }
  void export_contention_gauges(obs::Registry& registry,
                                const std::string& prefix) const {
    impl_.export_contention_gauges(registry, prefix);
  }

 private:
  api::RtBackend::Mem mem_;
  TreeSnapshot<api::RtBackend, T> impl_;
};

}  // namespace apram::snapshot
