#include "snapshot/scan_stats.hpp"

namespace apram {

std::uint64_t expected_scan_reads(int n, ScanMode mode) {
  const auto un = static_cast<std::uint64_t>(n);
  switch (mode) {
    case ScanMode::kPlain:
      return un * un + un + 1;  // 1 + n reads in each of n+1 passes
    case ScanMode::kOptimized:
      return un * un - 1;  // (n+1)(n-1): self-reads served from cache
  }
  APRAM_CHECK_MSG(false, "unknown ScanMode");
  return 0;
}

std::uint64_t expected_scan_writes(int n, ScanMode mode) {
  const auto un = static_cast<std::uint64_t>(n);
  switch (mode) {
    case ScanMode::kPlain:
      return un + 2;  // level-0 write + one per pass
    case ScanMode::kOptimized:
      return un + 1;  // final pass returns locally instead of writing
  }
  APRAM_CHECK_MSG(false, "unknown ScanMode");
  return 0;
}

}  // namespace apram
