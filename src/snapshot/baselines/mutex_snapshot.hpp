// Baseline: blocking snapshot (real threads only).
//
// A std::mutex around a plain array — the conventional-synchronization
// strawman the wait-free condition explicitly rules out ("the failure or
// delay of a single process within a critical section ... will prevent the
// non-faulty processes from making progress"). Included as the E5 wall-time
// baseline and to document what wait-freedom costs relative to locks when
// nothing goes wrong.
#pragma once

#include <mutex>
#include <optional>
#include <vector>

namespace apram::rt {

template <class T>
class MutexSnapshot {
 public:
  explicit MutexSnapshot(int num_procs)
      : slots_(static_cast<std::size_t>(num_procs)) {}

  int num_procs() const { return static_cast<int>(slots_.size()); }

  void update(int p, T v) {
    std::lock_guard<std::mutex> lock(mu_);
    slots_[static_cast<std::size_t>(p)] = std::move(v);
  }

  std::vector<std::optional<T>> scan(int /*p*/) {
    std::lock_guard<std::mutex> lock(mu_);
    return slots_;
  }

 private:
  std::mutex mu_;
  std::vector<std::optional<T>> slots_;
};

}  // namespace apram::rt
