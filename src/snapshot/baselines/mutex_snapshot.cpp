#include "snapshot/baselines/mutex_snapshot.hpp"

// Header-only; anchor translation unit.
